package axmltx

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Hot-path micro-benchmarks for the PR 1 optimisations: parallel
// materialization, WAL group commit, pooled serialization. Run with
// `go test -bench 'ParallelMaterialize|WALGroupCommit|SerializeAllocs' -benchmem .`

// benchSlowMat simulates a remote provider with fixed latency; stateless,
// so safe under the store's overlapped invocations.
type benchSlowMat struct{ delay time.Duration }

func (m *benchSlowMat) Invoke(txn string, call *axml.ServiceCall, params []axml.Param) ([]string, error) {
	time.Sleep(m.delay)
	name := strings.TrimPrefix(call.Service(), "svc")
	return []string{fmt.Sprintf("<r%s>v</r%s>", name, name)}, nil
}

func (m *benchSlowMat) ResultName(service string) string {
	return "r" + strings.TrimPrefix(service, "svc")
}

func benchCallDoc(calls int) string {
	var b strings.Builder
	b.WriteString("<D>")
	for i := 1; i <= calls; i++ {
		fmt.Fprintf(&b, `<axml:sc methodName="svc%d" mode="replace"/>`, i)
	}
	b.WriteString("</D>")
	return b.String()
}

// BenchmarkParallelMaterialize compares one full materialization of a
// document with 8 embedded 2ms service calls, sequential vs pooled.
func BenchmarkParallelMaterialize(b *testing.B) {
	const calls = 8
	mat := &benchSlowMat{delay: 2 * time.Millisecond}
	for _, cfg := range []struct {
		name     string
		maxCalls int
	}{{"sequential", 1}, {"parallel8", calls}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := axml.NewStore(wal.NewMemory())
				if _, err := s.AddParsed("D.xml", benchCallDoc(calls)); err != nil {
					b.Fatal(err)
				}
				s.SetMaxConcurrentCalls(cfg.maxCalls)
				if _, err := s.MaterializeAll("B", "D.xml", mat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALGroupCommit compares concurrent append throughput of a
// file-backed log with per-append fsync vs group commit. RunParallel spreads
// appenders over GOMAXPROCS goroutines, the multi-writer shape group commit
// amortizes.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode wal.SyncMode
	}{{"syncEach", wal.SyncEach}, {"groupCommit", wal.SyncGroup}} {
		b.Run(cfg.name, func(b *testing.B) {
			log, err := wal.OpenFileWith(filepath.Join(b.TempDir(), "wal.log"), wal.FileOptions{Sync: cfg.mode})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.ReportAllocs()
			var txn atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := fmt.Sprintf("T%d", txn.Add(1))
				for pb.Next() {
					if _, err := log.Append(&wal.Record{
						Txn: id, Type: wal.TypeInsert, Doc: "D.xml", XML: "<row>payload</row>",
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSerializeAllocs measures MarshalString over a mid-sized document;
// the pooled serialization buffers should keep allocs/op near one (the
// returned string itself).
func BenchmarkSerializeAllocs(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<ATPList>")
	for i := 1; i <= 200; i++ {
		fmt.Fprintf(&sb, `<player rank="%d"><name>Player %d</name><points>%d</points></player>`, i, i, 1000-i)
	}
	sb.WriteString("</ATPList>")
	doc, err := xmldom.ParseString("ATPList.xml", sb.String())
	if err != nil {
		b.Fatal(err)
	}
	root := doc.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xmldom.MarshalString(root)
	}
}
