// Package axmltx is a transactional framework for ActiveXML (AXML)
// repositories — XML documents with embedded Web-service calls hosted on
// peer-to-peer nodes — implementing the protocols of Biswas & Kim,
// "Atomicity for P2P based XML Repositories" (ICDE 2007):
//
//   - dynamic compensation: compensating operations for AXML queries and
//     updates are constructed at run time from the operation log;
//   - nested recovery: faults propagate through the invocation tree, with
//     per-call fault handlers (catch / catchAll / retry on replicas)
//     enabling forward recovery at intermediate peers;
//   - peer-independent recovery: participants return compensating-service
//     definitions with their results, so any peer can drive compensation;
//   - peer disconnection handling by chaining: the active-peer list travels
//     with every invocation, enabling early detection, result redirection
//     past dead parents, and reuse of already-performed work.
//
// # Quick start
//
//	net := axmltx.NewNetwork(0)
//	ap1 := axmltx.NewPeer(net.Join("AP1"), axmltx.Options{Super: true})
//	ap2 := axmltx.NewPeer(net.Join("AP2"), axmltx.Options{})
//
//	ap2.HostDocument("Points.xml", `<Points><row player="Federer"><points>475</points></row></Points>`)
//	ap2.HostQueryService(axmltx.Descriptor{Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml"},
//	    `Select r/points from r in Points//row`)
//
//	ap1.HostDocument("ATPList.xml", `<ATPList><player>
//	    <name><lastname>Federer</lastname></name>
//	    <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2"/>
//	  </player></ATPList>`)
//
//	tx := ap1.Begin()
//	q := axmltx.MustQuery(`Select p/points from p in ATPList//player`)
//	res, err := ap1.Exec(tx, axmltx.NewQueryAction(q))
//	// ... err handling; res.Query.Strings() == ["475"]
//	ap1.Commit(tx) // or ap1.Abort(tx) to compensate everywhere
//
// The names below alias the implementation packages so applications only
// import axmltx.
package axmltx

import (
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/core"
	"axmltx/internal/p2p"
	"axmltx/internal/query"
	"axmltx/internal/replication"
	"axmltx/internal/services"
	"axmltx/internal/wal"
)

// Core engine types.
type (
	// Peer is an AXML peer: document store, service registry and
	// transactional engine on a transport.
	Peer = core.Peer
	// Options configure a peer (super-peer status, recovery mode,
	// chaining, evaluation mode).
	Options = core.Options
	// Txn is a transaction context at a peer.
	Txn = core.Context
	// Chain is the active-peer list of a transaction.
	Chain = core.Chain
	// Metrics exposes a peer's protocol counters.
	Metrics = core.Metrics
	// MetricsSnapshot is a plain copy of Metrics.
	MetricsSnapshot = core.MetricsSnapshot
	// CompensationDef is a shippable compensating-service definition.
	CompensationDef = core.CompensationDef
	// InvokeResponse is the result of a (possibly redirected) invocation.
	InvokeResponse = core.InvokeResponse
	// StreamBatch is one batch of a continuous service's stream.
	StreamBatch = core.StreamBatch
	// Env is the engine environment available to service implementations.
	Env = core.Env
	// FaultHook is application fault-handler code.
	FaultHook = core.FaultHook
	// Scheduler drives periodic (frequency-attribute) materialization.
	Scheduler = core.Scheduler
)

// Networking types.
type (
	// PeerID identifies a peer.
	PeerID = p2p.PeerID
	// Network is the in-memory simulated network.
	Network = p2p.Network
	// Transport moves messages between peers.
	Transport = p2p.Transport
	// Message is the transport unit.
	Message = p2p.Message
	// Pinger is the keep-alive failure detector.
	Pinger = p2p.Pinger
	// TCPTransport runs the protocols over real TCP.
	TCPTransport = p2p.TCPTransport
	// NetStats aggregates simulated-network message counts.
	NetStats = p2p.Stats
)

// Document and service types.
type (
	// Action is an AXML operation (query/insert/delete/replace).
	Action = axml.Action
	// Query is a parsed select-from-where query.
	Query = query.Query
	// Store is a peer's document repository.
	Store = axml.Store
	// Result is the outcome of applying an action.
	Result = axml.Result
	// ServiceCall is a view over an <axml:sc> element.
	ServiceCall = axml.ServiceCall
	// Descriptor describes a service (WSDL-lite).
	Descriptor = services.Descriptor
	// ParamDef declares a service parameter.
	ParamDef = services.ParamDef
	// Service is anything invokable on a peer.
	Service = services.Service
	// Request is a service invocation.
	Request = services.Request
	// Fault is a named service failure.
	Fault = services.Fault
	// Continuous is a subscription-based streaming service.
	Continuous = services.Continuous
	// StreamWatcher detects silence on a stream subscription.
	StreamWatcher = services.StreamWatcher
	// ReplicaTable tracks document and service replica placement.
	ReplicaTable = replication.Table
	// Log is the operation log interface.
	Log = wal.Log
)

// Evaluation modes for embedded service calls.
const (
	// Lazy materializes only the calls a query needs (the AXML default).
	Lazy = axml.Lazy
	// Eager materializes every embedded call.
	Eager = axml.Eager
)

// NewNetwork creates an in-memory network with the given per-message
// latency (0 for fastest simulation).
func NewNetwork(latency time.Duration) *Network { return p2p.NewNetwork(latency) }

// NewPeer assembles a peer with an in-memory operation log.
func NewPeer(t Transport, opts Options) *Peer {
	return core.NewPeer(t, wal.NewMemory(), opts)
}

// NewPeerWithLog assembles a peer over an explicit log (e.g. a durable
// wal.FileLog from OpenFileLog).
func NewPeerWithLog(t Transport, log Log, opts Options) *Peer {
	return core.NewPeer(t, log, opts)
}

// OpenFileLog opens a durable file-backed operation log; with sync true,
// every record is fsynced.
func OpenFileLog(path string, sync bool) (Log, error) { return wal.OpenFile(path, sync) }

// ListenTCP starts a TCP transport for a peer.
func ListenTCP(self PeerID, addr string) (*TCPTransport, error) { return p2p.ListenTCP(self, addr) }

// NewPinger creates a keep-alive failure detector over a transport.
func NewPinger(t Transport, interval time.Duration, failures int, onDown func(PeerID)) *Pinger {
	return p2p.NewPinger(t, interval, failures, onDown)
}

// ParseQuery parses a select-from-where query (trailing ';' tolerated).
func ParseQuery(src string) (*Query, error) { return axml.ParseQuery(src) }

// MustQuery is ParseQuery that panics on error, for literals.
func MustQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// NewQueryAction returns a query action.
func NewQueryAction(q *Query) *Action { return axml.NewQuery(q) }

// NewInsertAction returns an insert of data under each located node.
func NewInsertAction(loc *Query, data string) *Action { return axml.NewInsert(loc, data) }

// NewDeleteAction returns a delete of the located nodes.
func NewDeleteAction(loc *Query) *Action { return axml.NewDelete(loc) }

// NewReplaceAction returns a replace of each located node by data.
func NewReplaceAction(loc *Query, data string) *Action { return axml.NewReplace(loc, data) }

// ParseAction parses the <action> wire form.
func ParseAction(src string) (*Action, error) { return axml.ParseAction(src) }

// NewFuncService adapts a function as a service; the engine environment is
// available via EnvFrom on the passed context.
var NewFuncService = services.NewFuncService

// NewContinuous builds a continuous (streaming) service.
var NewContinuous = services.NewContinuous

// NewStreamWatcher builds a stream-silence detector.
var NewStreamWatcher = services.NewStreamWatcher

// StaticService builds a service returning fixed fragments.
var StaticService = services.StaticService

// EnvFrom extracts the engine environment inside a service body.
var EnvFrom = core.EnvFrom

// FaultNameOf extracts a fault name from an error chain ("" if anonymous).
var FaultNameOf = services.FaultName
