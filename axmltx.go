// Package axmltx is a transactional framework for ActiveXML (AXML)
// repositories — XML documents with embedded Web-service calls hosted on
// peer-to-peer nodes — implementing the protocols of Biswas & Kim,
// "Atomicity for P2P based XML Repositories" (ICDE 2007):
//
//   - dynamic compensation: compensating operations for AXML queries and
//     updates are constructed at run time from the operation log;
//   - nested recovery: faults propagate through the invocation tree, with
//     per-call fault handlers (catch / catchAll / retry on replicas)
//     enabling forward recovery at intermediate peers;
//   - peer-independent recovery: participants return compensating-service
//     definitions with their results, so any peer can drive compensation;
//   - peer disconnection handling by chaining: the active-peer list travels
//     with every invocation, enabling early detection, result redirection
//     past dead parents, and reuse of already-performed work.
//
// # Quick start
//
//	net := axmltx.NewNetwork(0)
//	ap1, _ := axmltx.NewPeer(net.Join("AP1"), axmltx.WithSuper())
//	ap2, _ := axmltx.NewPeer(net.Join("AP2"))
//
//	ap2.HostDocument("Points.xml", `<Points><row player="Federer"><points>475</points></row></Points>`)
//	ap2.HostQueryService(axmltx.Descriptor{Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml"},
//	    `Select r/points from r in Points//row`)
//
//	ap1.HostDocument("ATPList.xml", `<ATPList><player>
//	    <name><lastname>Federer</lastname></name>
//	    <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2"/>
//	  </player></ATPList>`)
//
//	ctx := context.Background()
//	tx := ap1.Begin()
//	q := axmltx.MustQuery(`Select p/points from p in ATPList//player`)
//	res, err := ap1.Exec(ctx, tx, axmltx.NewQueryAction(q))
//	// ... err handling; res.Query.Strings() == ["475"]
//	ap1.Commit(ctx, tx) // or ap1.Abort(ctx, tx) to compensate everywhere
//
// Cancelling ctx (or exceeding its deadline) mid-transaction triggers
// backward recovery: the engine aborts the transaction, compensates every
// peer's logged work, and returns an error matching ErrTimeout.
//
// # Observability
//
// Peers trace every transaction as a span tree mirroring the invocation
// chain and export Prometheus-style metrics:
//
//	ring := axmltx.NewRing(0)
//	reg := axmltx.NewRegistry()
//	ap1, _ := axmltx.NewPeer(net.Join("AP1"), axmltx.WithSuper(),
//	    axmltx.WithTracer(ring), axmltx.WithMetrics(reg))
//	// ... run transactions, then:
//	spans := ring.Trace(tx.ID)                      // the invocation tree
//	http.ListenAndServe(":9100", axmltx.NewHTTPHandler(reg, ring))
//
// The names below alias the implementation packages so applications only
// import axmltx.
package axmltx

import (
	"errors"
	"fmt"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/core"
	"axmltx/internal/membership"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/query"
	"axmltx/internal/replication"
	"axmltx/internal/services"
	"axmltx/internal/wal"
)

// Core engine types.
type (
	// Peer is an AXML peer: document store, service registry and
	// transactional engine on a transport.
	Peer = core.Peer
	// Txn is a transaction context at a peer.
	Txn = core.Context
	// Chain is the active-peer list of a transaction.
	Chain = core.Chain
	// Metrics exposes a peer's protocol counters.
	Metrics = core.Metrics
	// MetricsSnapshot is a plain copy of Metrics.
	MetricsSnapshot = core.MetricsSnapshot
	// CompensationDef is a shippable compensating-service definition.
	CompensationDef = core.CompensationDef
	// InvokeResponse is the result of a (possibly redirected) invocation.
	InvokeResponse = core.InvokeResponse
	// StreamBatch is one batch of a continuous service's stream.
	StreamBatch = core.StreamBatch
	// Env is the engine environment available to service implementations.
	Env = core.Env
	// FaultHook is application fault-handler code.
	FaultHook = core.FaultHook
	// Scheduler drives periodic (frequency-attribute) materialization.
	Scheduler = core.Scheduler
)

// Networking types.
type (
	// PeerID identifies a peer.
	PeerID = p2p.PeerID
	// Network is the in-memory simulated network.
	Network = p2p.Network
	// Transport moves messages between peers.
	Transport = p2p.Transport
	// Message is the transport unit.
	Message = p2p.Message
	// Pinger is the keep-alive failure detector.
	Pinger = p2p.Pinger
	// TCPTransport runs the protocols over real TCP.
	TCPTransport = p2p.TCPTransport
	// NetStats aggregates simulated-network message counts.
	NetStats = p2p.Stats
)

// Document and service types.
type (
	// Action is an AXML operation (query/insert/delete/replace).
	Action = axml.Action
	// Query is a parsed select-from-where query.
	Query = query.Query
	// Store is a peer's document repository.
	Store = axml.Store
	// Result is the outcome of applying an action.
	Result = axml.Result
	// ServiceCall is a view over an <axml:sc> element.
	ServiceCall = axml.ServiceCall
	// Descriptor describes a service (WSDL-lite).
	Descriptor = services.Descriptor
	// ParamDef declares a service parameter.
	ParamDef = services.ParamDef
	// Service is anything invokable on a peer.
	Service = services.Service
	// Request is a service invocation.
	Request = services.Request
	// Fault is a named service failure.
	Fault = services.Fault
	// Continuous is a subscription-based streaming service.
	Continuous = services.Continuous
	// StreamWatcher detects silence on a stream subscription.
	StreamWatcher = services.StreamWatcher
	// ReplicaTable tracks document and service replica placement.
	ReplicaTable = replication.Table
	// Log is the operation log interface.
	Log = wal.Log
)

// Evaluation modes for embedded service calls.
const (
	// Lazy materializes only the calls a query needs (the AXML default).
	Lazy = axml.Lazy
	// Eager materializes every embedded call.
	Eager = axml.Eager
)

// EvalMode selects lazy or eager materialization (Lazy / Eager).
type EvalMode = axml.EvalMode

// WAL durability modes for file-backed operation logs (WithWALSync).
const (
	// SyncNone flushes lazily; only commit/abort barriers force an fsync.
	SyncNone = wal.SyncNone
	// SyncEach fsyncs every log append (full per-record durability).
	SyncEach = wal.SyncEach
	// SyncGroup batches concurrent appenders behind shared fsyncs.
	SyncGroup = wal.SyncGroup
)

// SyncMode is a file log's durability strategy.
type SyncMode = wal.SyncMode

// RecoveryMode selects who drives compensation after a fault (§3.2).
type RecoveryMode int

const (
	// RecoveryNested is originator-driven nested recovery: faults propagate
	// up the invocation tree and the calling peer compensates (the default).
	RecoveryNested RecoveryMode = iota
	// RecoveryPeerIndependent makes every served invocation return a
	// compensating-service definition with its results, so any peer can
	// drive compensation.
	RecoveryPeerIndependent
)

// Observability types, re-exported from the internal obs package.
type (
	// Span is one completed node of a transaction's trace.
	Span = obs.Span
	// Sink receives completed spans (implement it, or use Ring/JSONL).
	Sink = obs.Sink
	// Ring is a bounded in-memory span sink queryable by transaction.
	Ring = obs.Ring
	// JSONL streams spans as JSON Lines to a writer.
	JSONL = obs.JSONL
	// MultiSink fans spans out to several sinks.
	MultiSink = obs.Multi
	// Registry collects counters, gauges and latency histograms and renders
	// them in Prometheus text format.
	Registry = obs.Registry
	// TreeNode is one node of a reassembled span tree.
	TreeNode = obs.TreeNode
	// TraceResponse is the JSON shape of the /trace/{txn} endpoint.
	TraceResponse = obs.TraceResponse
	// Sampler is an adaptive tail-based sampling sink: it always keeps
	// failed, compensated, faulted and slow-percentile transactions and
	// probabilistically drops fast clean commits, with the keep/drop
	// decision propagated to every peer of a transaction.
	Sampler = obs.Sampler
	// SamplerConfig tunes a Sampler (zero value = defaults).
	SamplerConfig = obs.SamplerConfig
	// SamplerStats snapshots a sampler's keep/drop counters.
	SamplerStats = obs.SamplerStats
	// HTTPHandlerConfig assembles the full ops endpoint set of a peer
	// (metrics, traces, healthz, pprof) for NewOpsHandler.
	HTTPHandlerConfig = obs.HandlerConfig
)

// Span kinds (Span.Kind values) emitted by the engine.
const (
	KindTxn        = obs.KindTxn
	KindExec       = obs.KindExec
	KindCall       = obs.KindCall
	KindInvoke     = obs.KindInvoke
	KindServe      = obs.KindServe
	KindRetry      = obs.KindRetry
	KindRedirect   = obs.KindRedirect
	KindReuse      = obs.KindReuse
	KindCompensate = obs.KindCompensate
	KindCommit     = obs.KindCommit
	KindAbort      = obs.KindAbort
	KindMember     = obs.KindMember
	KindCompact    = obs.KindCompact
	KindCacheHit   = obs.KindCacheHit
	KindCacheMiss  = obs.KindCacheMiss
	KindCacheWait  = obs.KindCacheWait
	KindCacheFetch = obs.KindCacheFetch
)

// Gossip membership types, re-exported from internal/membership.
type (
	// Membership is a SWIM-style gossip instance: failure detection
	// (probe / indirect probe / suspect → dead, with incarnation-numbered
	// refutation) plus a self-maintaining replica catalog piggybacked on
	// the gossip exchanges. Bind one to a peer with WithMembership.
	Membership = membership.Gossip
	// MembershipConfig tunes a Membership (probe interval, suspicion
	// rounds, fanout, seeds…); the zero value of every knob is a default.
	MembershipConfig = membership.Config
	// MemberInfo is the diagnostic snapshot served by /members and
	// axmlquery -members.
	MemberInfo = membership.Info
	// CatalogEntry is one origin peer's versioned advertisement of the
	// documents and services it hosts.
	CatalogEntry = membership.CatalogEntry
	// CallAd is one gossiped materialization-cache advertisement: a cached
	// (or in-flight) service-call result peers may fetch instead of
	// re-invoking upstream (see WithCallCache).
	CallAd = membership.CallAd
)

// NewMembership creates a gossip membership instance over a transport
// (typically the same transport the peer runs on). Call Start for the
// background protocol loop, or Tick for deterministic single periods.
var NewMembership = membership.New

// NewRing creates a bounded in-memory span sink (capacity <= 0 selects the
// default).
var NewRing = obs.NewRing

// NewJSONL creates a span sink streaming JSON Lines to w.
var NewJSONL = obs.NewJSONL

// DecodeJSONL parses spans previously written by a JSONL sink.
var DecodeJSONL = obs.DecodeJSONL

// NewRegistry creates an empty metrics registry.
var NewRegistry = obs.NewRegistry

// SpanTree reassembles emitted spans into their invocation forest.
var SpanTree = obs.Tree

// NewHTTPHandler serves /metrics (Prometheus text format), /trace/{txn}
// (the span tree of one transaction as JSON) and /traces (known trace IDs).
// Either argument may be nil to disable that side.
var NewHTTPHandler = obs.NewHandler

// NewOpsHandler builds the full ops endpoint set (metrics, traces, healthz,
// optional pprof, sampled-out awareness) from an HTTPHandlerConfig.
var NewOpsHandler = obs.NewOpsHandler

// NewSampler wraps a sink with adaptive tail-based sampling; use it as the
// WithTracer sink to keep tracing always-on at near-zero cost:
//
//	ring := axmltx.NewRing(0)
//	sampler := axmltx.NewSampler(ring, axmltx.SamplerConfig{KeepRate: 0.05})
//	peer := axmltx.NewPeer(t, axmltx.WithTracer(sampler))
var NewSampler = obs.NewSampler

// Typed errors returned by the engine; match with errors.Is.
var (
	// ErrBadOption reports an Option carrying an invalid value, returned by
	// NewPeer / NewPeerWithLog before any resources are opened.
	ErrBadOption = errors.New("axmltx: invalid option")
	// ErrPeerDown reports an unreachable / disconnected peer.
	ErrPeerDown = core.ErrPeerDown
	// ErrAborted reports that the transaction was aborted.
	ErrAborted = core.ErrAborted
	// ErrCompensated reports an abort whose logged work was undone by
	// dynamic compensation; it matches ErrAborted too.
	ErrCompensated = core.ErrCompensated
	// ErrTimeout reports a context deadline/cancellation or a lock timeout;
	// the transaction has been backward-recovered.
	ErrTimeout = core.ErrTimeout
	// ErrWALSync reports a failed WAL fsync: durability of the affected
	// appends is not guaranteed.
	ErrWALSync = wal.ErrSync
	// ErrWALCorrupt reports a corrupt WAL frame encountered on open/replay.
	ErrWALCorrupt = wal.ErrCorrupt
	// ErrWALClose reports a failure while closing a WAL file or segment.
	ErrWALClose = wal.ErrClose
)

// Option configures a peer assembled by NewPeer or NewPeerWithLog.
type Option interface{ apply(*peerConfig) }

// peerConfig is the resolved construction state options apply to.
type peerConfig struct {
	opts    core.Options
	walPath string
	walSync wal.SyncMode
	walDir  string
	walSeg  wal.SegmentOptions
	// err is the first invalid-option report; NewPeer returns it (wrapped
	// in ErrBadOption) instead of constructing the peer.
	err error
}

// fail records the first invalid-option error.
func (c *peerConfig) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: "+format, append([]any{ErrBadOption}, args...)...)
	}
}

type optionFunc func(*peerConfig)

func (f optionFunc) apply(c *peerConfig) { f(c) }

// WithMembership binds a gossip membership instance (NewMembership) to the
// peer: the replica table is populated and pruned from the gossiped
// catalog and ranked by liveness + observed RTT, failure detection drives
// the disconnection protocol, and Host* registrations are announced to the
// network. The instance must be built over the same transport the peer
// uses; the caller owns its lifecycle (Start/Stop).
func WithMembership(m *Membership) Option {
	return optionFunc(func(c *peerConfig) { c.opts.Membership = m })
}

// WithSuper marks the peer as a trusted super peer that does not
// disconnect (§3.3, starred peers).
func WithSuper() Option {
	return optionFunc(func(c *peerConfig) { c.opts.Super = true })
}

// WithRecovery selects who drives compensation after a fault (§3.2).
func WithRecovery(mode RecoveryMode) Option {
	return optionFunc(func(c *peerConfig) {
		c.opts.PeerIndependent = mode == RecoveryPeerIndependent
	})
}

// WithTracer attaches a span sink; every Exec, Call, invocation,
// compensation, retry and redirect emits a span into it.
func WithTracer(sink Sink) Option {
	return optionFunc(func(c *peerConfig) { c.opts.TraceSink = sink })
}

// WithMetrics registers the peer's protocol counters and latency
// histograms into reg under the shared axml_* schema.
func WithMetrics(reg *Registry) Option {
	return optionFunc(func(c *peerConfig) { c.opts.MetricsRegistry = reg })
}

// WithWALFile gives the peer a durable file-backed operation log at path
// (NewPeer only; combine with WithWALSync for the durability mode).
func WithWALFile(path string) Option {
	return optionFunc(func(c *peerConfig) { c.walPath = path })
}

// WithWALSync selects the durability mode of the WithWALFile log:
// SyncNone, SyncEach or SyncGroup.
func WithWALSync(mode SyncMode) Option {
	return optionFunc(func(c *peerConfig) { c.walSync = mode })
}

// WithWALDir gives the peer a durable segmented operation log in dir:
// size/record-triggered segment rotation, checkpoint snapshots and
// background compaction of covered segments. Takes precedence over
// WithWALFile; WithWALSync and the segment knobs below apply to it.
func WithWALDir(dir string) Option {
	return optionFunc(func(c *peerConfig) { c.walDir = dir })
}

// WithWALSegmentSize caps a WithWALDir segment's size in bytes before
// rotation (zero keeps the 4 MiB default).
func WithWALSegmentSize(n int64) Option {
	return optionFunc(func(c *peerConfig) { c.walSeg.MaxSegmentBytes = n })
}

// WithWALSegmentRecords caps a WithWALDir segment's record count before
// rotation (zero disables the count trigger).
func WithWALSegmentRecords(n int) Option {
	return optionFunc(func(c *peerConfig) { c.walSeg.MaxSegmentRecords = n })
}

// WithWALCheckpointEvery checkpoints a WithWALDir log automatically after
// every n appends since the last checkpoint: a snapshot of the live
// transactions is written and covered segments are compacted away in the
// background, keeping restart replay proportional to live work rather
// than history (zero disables automatic checkpoints; call
// SegmentedLog.Checkpoint/Compact manually).
func WithWALCheckpointEvery(n int) Option {
	return optionFunc(func(c *peerConfig) { c.walSeg.CheckpointEvery = n })
}

// WithEvalMode selects Lazy or Eager materialization.
func WithEvalMode(mode EvalMode) Option {
	return optionFunc(func(c *peerConfig) { c.opts.EvalMode = mode })
}

// WithLockTimeout bounds document lock waits (zero keeps the default).
func WithLockTimeout(d time.Duration) Option {
	return optionFunc(func(c *peerConfig) {
		if d < 0 {
			c.fail("WithLockTimeout(%v): negative timeout", d)
			return
		}
		c.opts.LockTimeout = d
	})
}

// WithMaxConcurrentCalls caps in-flight service invocations during one
// materialization round (1 forces sequential materialization).
func WithMaxConcurrentCalls(n int) Option {
	return optionFunc(func(c *peerConfig) {
		if n < 0 {
			c.fail("WithMaxConcurrentCalls(%d): negative cap", n)
			return
		}
		c.opts.MaxConcurrentCalls = n
	})
}

// WithCallCache enables the semantic materialization cache: embedded
// service-call results are cached under (service, canonicalized params,
// freshness window) — the window taken from the call's frequency attribute
// — and served without re-invocation while fresh, with singleflight dedupe
// of concurrent identical calls and, when the peer runs gossip membership,
// cluster-wide dedupe through call advertisements (fresh results are
// fetched from the advertising peer instead of re-invoking upstream).
// capacity bounds the number of completed entries kept; the oldest entries
// are evicted beyond it.
func WithCallCache(capacity int) Option {
	return optionFunc(func(c *peerConfig) {
		if capacity <= 0 {
			c.fail("WithCallCache(%d): capacity must be positive", capacity)
			return
		}
		c.opts.CallCacheCapacity = capacity
	})
}

// WithCacheTTL sets the freshness window applied to cacheable calls that
// declare no frequency attribute; without it (or with zero) only
// frequency-carrying calls are cached. Requires WithCallCache.
func WithCacheTTL(d time.Duration) Option {
	return optionFunc(func(c *peerConfig) {
		if d < 0 {
			c.fail("WithCacheTTL(%v): negative window", d)
			return
		}
		c.opts.CacheTTL = d
	})
}

// WithoutChaining suppresses active-peer-list propagation — the
// "traditional" baseline for the disconnection experiments (§3.3).
func WithoutChaining() Option {
	return optionFunc(func(c *peerConfig) { c.opts.DisableChaining = true })
}

// WithSlowTxnLog reports origin transactions slower than threshold to fn
// (outcome "committed" or "aborted") and force-keeps their traces when the
// peer samples adaptively. fn may be nil to only force-keep.
func WithSlowTxnLog(threshold time.Duration, fn func(txn string, d time.Duration, outcome string)) Option {
	return optionFunc(func(c *peerConfig) {
		c.opts.SlowTxn = threshold
		c.opts.SlowTxnLog = fn
	})
}

// NewNetwork creates an in-memory network with the given per-message
// latency (0 for fastest simulation).
func NewNetwork(latency time.Duration) *Network { return p2p.NewNetwork(latency) }

// NewPeer assembles a peer with an in-memory operation log, or a durable
// one when WithWALFile / WithWALDir is given. An option carrying an invalid
// value yields an error matching ErrBadOption; a durable log that cannot be
// opened yields the open error. MustPeer keeps the old panicking shape.
func NewPeer(t Transport, opts ...Option) (*Peer, error) {
	cfg := resolve(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	opLog := Log(wal.NewMemory())
	switch {
	case cfg.walDir != "":
		segOpts := cfg.walSeg
		segOpts.Sync = cfg.walSync
		segLog, err := wal.OpenDir(cfg.walDir, segOpts)
		if err != nil {
			return nil, fmt.Errorf("axmltx: open WAL dir %s: %w", cfg.walDir, err)
		}
		opLog = segLog
	case cfg.walPath != "":
		fileLog, err := wal.OpenFileWith(cfg.walPath, wal.FileOptions{Sync: cfg.walSync})
		if err != nil {
			return nil, fmt.Errorf("axmltx: open WAL %s: %w", cfg.walPath, err)
		}
		opLog = fileLog
	}
	return core.NewPeer(t, opLog, cfg.opts), nil
}

// NewPeerWithLog assembles a peer over an explicit log (e.g. one from
// OpenLog); WithWALFile/WithWALDir/WithWALSync are ignored here.
func NewPeerWithLog(t Transport, log Log, opts ...Option) (*Peer, error) {
	cfg := resolve(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	return core.NewPeer(t, log, cfg.opts), nil
}

// MustPeer is NewPeer that panics on error — the pre-1.x constructor shape,
// convenient in tests and demos.
//
// Deprecated: use NewPeer and handle the error.
func MustPeer(t Transport, opts ...Option) *Peer {
	p, err := NewPeer(t, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

func resolve(opts []Option) *peerConfig {
	cfg := &peerConfig{}
	for _, o := range opts {
		o.apply(cfg)
	}
	return cfg
}

// LogOption configures OpenLog.
type LogOption interface{ applyLog(*logConfig) }

// logConfig is the resolved OpenLog state.
type logConfig struct {
	sync      SyncMode
	syncSet   bool
	segmented bool
	seg       SegmentOptions
}

type logOptionFunc func(*logConfig)

func (f logOptionFunc) applyLog(c *logConfig) { f(c) }

// WithLogSync selects the durability mode of an OpenLog log: SyncNone,
// SyncEach or SyncGroup. It applies to file and segmented logs alike and
// overrides the mode embedded in WithLogSegments.
func WithLogSync(mode SyncMode) LogOption {
	return logOptionFunc(func(c *logConfig) { c.sync, c.syncSet = mode, true })
}

// WithLogSegments makes OpenLog treat path as a segmented log directory —
// size/record-triggered segment rotation, checkpoint snapshots and
// background compaction — configured by opts (the zero value uses
// defaults).
func WithLogSegments(opts SegmentOptions) LogOption {
	return logOptionFunc(func(c *logConfig) { c.segmented, c.seg = true, opts })
}

// OpenLog opens (creating if needed) a durable operation log at path: a
// single append-only record file by default, or a segmented directory with
// WithLogSegments. It consolidates the former OpenFileLog / OpenFileLogMode
// / OpenSegmentedLog entry points:
//
//	log, err := axmltx.OpenLog("peer.wal", axmltx.WithLogSync(axmltx.SyncGroup))
//	seg, err := axmltx.OpenLog("waldir", axmltx.WithLogSegments(axmltx.SegmentOptions{}))
func OpenLog(path string, opts ...LogOption) (Log, error) {
	var cfg logConfig
	for _, o := range opts {
		o.applyLog(&cfg)
	}
	if cfg.segmented {
		seg := cfg.seg
		if cfg.syncSet {
			seg.Sync = cfg.sync
		}
		return wal.OpenDir(path, seg)
	}
	return wal.OpenFileWith(path, wal.FileOptions{Sync: cfg.sync})
}

// OpenFileLog opens a durable file-backed operation log; with sync true,
// every record is fsynced.
//
// Deprecated: use OpenLog with WithLogSync(SyncEach).
func OpenFileLog(path string, sync bool) (Log, error) { return wal.OpenFile(path, sync) }

// OpenFileLogMode opens a durable file-backed operation log with an
// explicit durability mode (SyncNone, SyncEach or SyncGroup).
//
// Deprecated: use OpenLog with WithLogSync.
func OpenFileLogMode(path string, mode SyncMode) (Log, error) {
	return OpenLog(path, WithLogSync(mode))
}

// SegmentedLog is a durable operation log split into rotated segment
// files, with checkpoint snapshots and compaction of covered segments
// (see OpenLog / WithWALDir).
type SegmentedLog = wal.SegmentedLog

// SegmentOptions configure a SegmentedLog (rotation thresholds, automatic
// checkpoint cadence, durability mode); the zero value uses defaults.
type SegmentOptions = wal.SegmentOptions

// OpenSegmentedLog opens (or creates) a segmented operation log in a
// directory, replaying existing segments from the latest checkpoint.
//
// Deprecated: use OpenLog with WithLogSegments.
func OpenSegmentedLog(dir string, opts SegmentOptions) (*SegmentedLog, error) {
	return wal.OpenDir(dir, opts)
}

// ListenTCP starts a TCP transport for a peer.
func ListenTCP(self PeerID, addr string) (*TCPTransport, error) { return p2p.ListenTCP(self, addr) }

// NewPinger creates a keep-alive failure detector over a transport.
func NewPinger(t Transport, interval time.Duration, failures int, onDown func(PeerID)) *Pinger {
	return p2p.NewPinger(t, interval, failures, onDown)
}

// ParseQuery parses a select-from-where query (trailing ';' tolerated).
func ParseQuery(src string) (*Query, error) { return axml.ParseQuery(src) }

// MustQuery is ParseQuery that panics on error, for literals.
func MustQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// NewQueryAction returns a query action.
func NewQueryAction(q *Query) *Action { return axml.NewQuery(q) }

// NewInsertAction returns an insert of data under each located node.
func NewInsertAction(loc *Query, data string) *Action { return axml.NewInsert(loc, data) }

// NewDeleteAction returns a delete of the located nodes.
func NewDeleteAction(loc *Query) *Action { return axml.NewDelete(loc) }

// NewReplaceAction returns a replace of each located node by data.
func NewReplaceAction(loc *Query, data string) *Action { return axml.NewReplace(loc, data) }

// ParseAction parses the <action> wire form.
func ParseAction(src string) (*Action, error) { return axml.ParseAction(src) }

// NewFuncService adapts a function as a service; the engine environment is
// available via EnvFrom on the passed context.
var NewFuncService = services.NewFuncService

// NewContinuous builds a continuous (streaming) service.
var NewContinuous = services.NewContinuous

// NewStreamWatcher builds a stream-silence detector.
var NewStreamWatcher = services.NewStreamWatcher

// StaticService builds a service returning fixed fragments.
var StaticService = services.StaticService

// EnvFrom extracts the engine environment inside a service body.
var EnvFrom = core.EnvFrom

// FaultNameOf extracts a fault name from an error chain ("" if anonymous).
var FaultNameOf = services.FaultName
