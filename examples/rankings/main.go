// Rankings walks through §3.1 of the paper verbatim: the ATPList.xml
// document with the getPoints (replace) and getGrandSlamsWonbyYear (merge)
// embedded calls, Query A and Query B with lazy evaluation, the delete /
// replace operations, and the dynamically constructed compensating
// operations for each — printed in the paper's <action> syntax.
package main

import (
	"context"
	"fmt"
	"log"

	"axmltx"
	"axmltx/internal/core"
	"axmltx/internal/xmldom"
)

// atpList is the paper's §3.1 listing.
const atpList = `<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="AP2" methodName="getPoints">
      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear" serviceURL="AP2" methodName="getGrandSlamsWonbyYear">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>2005</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
  <player rank="2">
    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>`

func main() {
	net := axmltx.NewNetwork(0)
	ap1 := mustPeer(axmltx.NewPeer(net.Join("AP1"), axmltx.WithSuper()))
	ap2 := mustPeer(axmltx.NewPeer(net.Join("AP2")))
	must(ap1.HostDocument("ATPList.xml", atpList))

	// AP2 provides the two Web services of the example.
	ap2.HostService(axmltx.StaticService(axmltx.Descriptor{
		Name: "getPoints", ResultName: "points",
	}, `<points>890</points>`))
	ap2.HostService(axmltx.StaticService(axmltx.Descriptor{
		Name: "getGrandSlamsWonbyYear", ResultName: "grandslamswon",
	}, `<grandslamswon year="2005">A, F</grandslamswon>`))

	fmt.Println("### Query A: Select p/citizenship, p/grandslamswon ... (lazy)")
	ctx := context.Background()
	txA := ap1.Begin()
	qa := axmltx.MustQuery(`Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer`)
	resA, err := ap1.Exec(ctx, txA, axmltx.NewQueryAction(qa))
	must(err)
	fmt.Printf("  result: %v\n", resA.Query.Strings())
	fmt.Printf("  materialized: %v (getPoints NOT invoked — lazy evaluation)\n", resA.Materialized)
	fmt.Println("  dynamically constructed compensation for Query A:")
	printCompensation(ap1, txA.ID)
	must(ap1.Abort(ctx, txA))
	fmt.Println("  aborted; the 2005 merge result was deleted again")

	fmt.Println("\n### Query B: Select p/citizenship, p/points ... (lazy)")
	txB := ap1.Begin()
	qb := axmltx.MustQuery(`Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer`)
	resB, err := ap1.Exec(ctx, txB, axmltx.NewQueryAction(qb))
	must(err)
	fmt.Printf("  result: %v\n", resB.Query.Strings())
	fmt.Printf("  materialized: %v (replace mode: 475 -> 890)\n", resB.Materialized)
	fmt.Println("  dynamically constructed compensation for Query B:")
	printCompensation(ap1, txB.ID)
	must(ap1.Abort(ctx, txB))
	verify(ap1)

	fmt.Println("\n### Delete operation (paper's example) and its compensation")
	txD := ap1.Begin()
	del := axmltx.NewDeleteAction(axmltx.MustQuery(
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`))
	resD, err := ap1.Exec(ctx, txD, del)
	must(err)
	fmt.Printf("  deleted: %v\n", resD.DeletedXML)
	printCompensation(ap1, txD.ID)
	must(ap1.Abort(ctx, txD))
	verify(ap1)

	fmt.Println("\n### Replace operation (delete + insert) and its compensation")
	txR := ap1.Begin()
	rep := axmltx.NewReplaceAction(axmltx.MustQuery(
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal`),
		`<citizenship>USA</citizenship>`)
	_, err = ap1.Exec(ctx, txR, rep)
	must(err)
	printCompensation(ap1, txR.ID)
	must(ap1.Abort(ctx, txR))
	verify(ap1)
}

// printCompensation shows the compensating operations the engine would run,
// in the paper's <action> wire syntax.
func printCompensation(p *axmltx.Peer, txn string) {
	for _, a := range core.BuildCompensation(p.Store().Log(), txn) {
		fmt.Printf("    %s\n", a.XML())
	}
}

var initial = func() *xmldom.Document { return xmldom.MustParse("ATPList.xml", atpList) }()

func verify(p *axmltx.Peer) {
	live, _ := p.Store().Snapshot("ATPList.xml")
	fmt.Printf("  document restored to the §3.1 listing: %t\n", live.Equal(initial))
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
