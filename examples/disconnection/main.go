// Disconnection demonstrates §3.3: the active-peer-list ("chaining")
// mechanism on the paper's Figure 2 topology
// [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]. AP3 invokes S6 at AP6
// asynchronously and then disconnects; AP6, unable to return its results,
// walks the chain to the closest live ancestor (AP2), which re-invokes S3
// on a replica peer, reusing AP6's already-performed work. The same run
// without chaining shows the work simply being lost.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"axmltx"
)

func run(chaining bool) {
	net := axmltx.NewNetwork(0)
	opts := func(id axmltx.PeerID) (o []axmltx.Option) {
		if id == "AP1" {
			o = append(o, axmltx.WithSuper())
		}
		if !chaining {
			o = append(o, axmltx.WithoutChaining())
		}
		return o
	}
	peers := map[axmltx.PeerID]*axmltx.Peer{}
	for _, id := range []axmltx.PeerID{"AP1", "AP2", "AP3", "AP3b", "AP4", "AP5", "AP6"} {
		peers[id] = mustPeer(axmltx.NewPeer(net.Join(id), opts(id)...))
	}
	ap1, ap2, ap3, ap3b, ap6 := peers["AP1"], peers["AP2"], peers["AP3"], peers["AP3b"], peers["AP6"]

	// AP6 hosts S6, a slow materialization of grand-slam statistics.
	must(ap6.HostDocument("Stats.xml", `<Stats><slams player="Federer">20</slams></Stats>`))
	release := make(chan struct{})
	ap6.HostService(axmltx.NewFuncService(
		axmltx.Descriptor{Name: "S6", ResultName: "slams", TargetDocument: "Stats.xml"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			env, _ := axmltx.EnvFrom(ctx)
			// The statistics computation writes intermediate state (work
			// that would be lost without chaining).
			loc := axmltx.MustQuery(`Select s from s in Stats`)
			if _, err := env.Peer.Store().Apply(env.Txn.ID,
				axmltx.NewInsertAction(loc, `<cache player="Federer"/>`), env.Peer, axmltx.Lazy); err != nil {
				return nil, err
			}
			<-release // finishes only after AP3 has vanished
			return []string{`<slams player="Federer">20</slams>`}, nil
		}))

	// S3 at AP3: asks AP6 for the stats asynchronously, then AP3 dies.
	ap3.HostService(axmltx.NewFuncService(
		axmltx.Descriptor{Name: "S3", ResultName: "slams"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			env, _ := axmltx.EnvFrom(ctx)
			if err := env.Peer.CallAsync(ctx, env.Txn, "AP6", "S6", nil); err != nil {
				return nil, err
			}
			return []string{`<pending/>`}, nil
		}))
	// The replica of S3 at AP3b consumes AP6's redirected results via an
	// embedded call that the reuse mechanism satisfies without a network
	// round trip.
	must(ap3b.HostDocument("D3.xml", `<D3><axml:sc mode="replace" methodName="S6" serviceURL="AP6"/></D3>`))
	ap3b.HostQueryService(axmltx.Descriptor{
		Name: "S3", ResultName: "slams", TargetDocument: "D3.xml",
	}, `Select d/slams from d in D3`)
	for _, p := range peers {
		p.Replicas().AddService("S3", "AP3")
		p.Replicas().AddService("S3", "AP3b")
	}
	// AP2 hosts a trivial S2 so the chain has the paper's shape.
	must(ap2.HostDocument("D2.xml", `<D2/>`))
	ap2.HostQueryService(axmltx.Descriptor{Name: "S2", ResultName: "none", TargetDocument: "D2.xml"},
		`Select d from d in D2`)

	recovered := make(chan *axmltx.InvokeResponse, 1)
	ap2.OnResult(func(txn string, resp *axmltx.InvokeResponse) {
		if resp.Service == "S3" {
			recovered <- resp
		}
	})

	ctx := context.Background()
	tx := ap1.Begin()
	if _, err := ap1.Call(ctx, tx, "AP2", "S2", nil); err != nil {
		log.Fatal(err)
	}
	ctx2, _ := ap2.Manager().Get(tx.ID)
	if _, err := ap2.Call(ctx, ctx2, "AP3", "S3", nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chain after invocations: %s\n", ctx2.Chain())

	net.Disconnect("AP3")
	fmt.Println("  AP3 disconnected; releasing S6 at AP6 ...")
	close(release)

	select {
	case resp := <-recovered:
		fmt.Printf("  AP2 recovered S3 on a replica; result: %v\n", resp.Fragments)
		must(ap1.Commit(ctx, tx))
		fmt.Println("  transaction committed")
	case <-time.After(300 * time.Millisecond):
		fmt.Println("  nothing arrived at AP2 — AP6's work is lost; aborting")
		must(ap1.Abort(ctx, tx))
	}
	fmt.Printf("  redirects=%d  work reused=%d  nodes lost=%d\n",
		ap6.Metrics().Redirects.Load()+ap2.Metrics().Redirects.Load(),
		ap3b.Metrics().WorkReused.Load(),
		totalLost(peers))
}

func totalLost(peers map[axmltx.PeerID]*axmltx.Peer) int64 {
	var n int64
	for _, p := range peers {
		n += p.Metrics().NodesLost.Load()
	}
	return n
}

func main() {
	fmt.Println("### With chaining (the paper's proposal)")
	run(true)
	fmt.Println("\n### Without chaining (traditional recovery)")
	run(false)
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
