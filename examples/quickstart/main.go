// Quickstart: two peers, one document with an embedded service call, one
// transaction that materializes the call — committed once, aborted once to
// show dynamic compensation restoring the document.
package main

import (
	"context"
	"fmt"
	"log"

	"axmltx"
)

func main() {
	net := axmltx.NewNetwork(0)
	ap1 := mustPeer(axmltx.NewPeer(net.Join("AP1"), axmltx.WithSuper()))
	ap2 := mustPeer(axmltx.NewPeer(net.Join("AP2")))

	// AP2 hosts the points table and exposes it as the getPoints service.
	must(ap2.HostDocument("Points.xml", `<Points>
	  <row player="Roger Federer"><points>475</points></row>
	</Points>`))
	ap2.HostQueryService(axmltx.Descriptor{
		Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml",
		Params: []axmltx.ParamDef{{Name: "name", Required: true}},
	}, `Select r/points from r in Points//row where r/@player = $name`)

	// AP1 hosts an AXML document embedding a call to getPoints at AP2.
	must(ap1.HostDocument("ATPList.xml", `<ATPList>
	  <player rank="1">
	    <name><lastname>Federer</lastname></name>
	    <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2">
	      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
	    </axml:sc>
	  </player>
	</ATPList>`))

	// A query needing p/points lazily materializes the embedded call:
	// AP1 invokes AP2 within the transaction.
	q := axmltx.MustQuery(`Select p/points from p in ATPList//player where p/name/lastname = Federer`)

	ctx := context.Background()
	tx := ap1.Begin()
	res, err := ap1.Exec(ctx, tx, axmltx.NewQueryAction(q))
	must(err)
	fmt.Printf("materialized result: %v\n", res.Query.Strings())
	fmt.Printf("invocation chain:    %s\n", tx.Chain())
	must(ap1.Commit(ctx, tx))
	fmt.Println("committed: the materialized <points> stays in ATPList.xml")

	// Run it again, but abort: dynamic compensation removes exactly the
	// nodes this transaction materialized.
	before, _ := ap1.Store().Snapshot("ATPList.xml")
	tx2 := ap1.Begin()
	_, err = ap1.Exec(ctx, tx2, axmltx.NewQueryAction(q))
	must(err)
	must(ap1.Abort(ctx, tx2))
	after, _ := ap1.Store().Snapshot("ATPList.xml")
	fmt.Printf("aborted: document restored = %t\n", after.Equal(before))
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
