// Nested reproduces the paper's Figure 1 through the public API: the
// transaction TA spans six peers via AXML composition (each intermediate
// document embeds calls to its children), AP5 fails while processing S5,
// and the nested recovery protocol runs — once aborting the whole
// transaction, once recovering forward on a replica so that "only as much
// as required" is undone.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"axmltx"
)

type cluster struct {
	net   *axmltx.Network
	peers map[axmltx.PeerID]*axmltx.Peer
}

func (c *cluster) peer(id axmltx.PeerID, opts ...axmltx.Option) *axmltx.Peer {
	p := mustPeer(axmltx.NewPeer(c.net.Join(id), opts...))
	c.peers[id] = p
	return p
}

// leaf hosts a work document and an update service writing into it.
func (c *cluster) leaf(id axmltx.PeerID, svc, doc, root string) {
	p := c.peer(id)
	must(p.HostDocument(doc, fmt.Sprintf("<%s><log/></%s>", root, root)))
	p.HostUpdateService(axmltx.Descriptor{Name: svc, ResultName: "updateResult", TargetDocument: doc},
		fmt.Sprintf(`<action type="insert"><data><entry svc=%q/></data><location>Select l from l in %s/log;</location></action>`, svc, root))
}

// composite hosts a composition document embedding calls and a query
// service that drives them by lazy materialization.
func (c *cluster) composite(id axmltx.PeerID, svc, root string, scXML string, opts ...axmltx.Option) *axmltx.Peer {
	p, ok := c.peers[id]
	if !ok {
		p = c.peer(id, opts...)
	}
	must(p.HostDocument(root+".xml", fmt.Sprintf("<%s>%s</%s>", root, scXML, root)))
	p.HostQueryService(axmltx.Descriptor{Name: svc, ResultName: "updateResult", TargetDocument: root + ".xml"},
		fmt.Sprintf("Select d/updateResult from d in %s", root))
	return p
}

func build(forward bool) (*cluster, *axmltx.Peer, *atomic.Bool) {
	c := &cluster{net: axmltx.NewNetwork(0), peers: map[axmltx.PeerID]*axmltx.Peer{}}
	c.leaf("AP2", "S2", "D2.xml", "D2")
	c.leaf("AP4", "S4", "D4.xml", "D4")
	c.leaf("AP6", "S6", "D6.xml", "D6")

	// AP5's S5 invokes S6 and then faults.
	ap5 := c.composite("AP5", "S5", "D5", `<axml:sc mode="replace" methodName="S6" serviceURL="AP6"/>`)
	fail := &atomic.Bool{}
	fail.Store(true)
	inner, _ := ap5.Registry().Get("S5")
	ap5.Registry().Register(axmltx.NewFuncService(inner.Descriptor(),
		func(ctx context.Context, params map[string]string) ([]string, error) {
			env, _ := axmltx.EnvFrom(ctx)
			out, err := inner.Invoke(ctx, &axmltx.Request{Txn: env.Txn.ID, Params: params})
			if err != nil {
				return nil, err
			}
			if fail.Load() {
				return nil, &axmltx.Fault{Name: "F5", Msg: "AP5 fails while processing S5"}
			}
			return out, nil
		}))

	handler := ""
	if forward {
		handler = `<axml:catch faultName="F5"><axml:retry times="1"><axml:sc methodName="S5" serviceURL="AP5b"/></axml:retry></axml:catch>`
		c.composite("AP5b", "S5", "D5", `<axml:sc mode="replace" methodName="S6" serviceURL="AP6"/>`)
	}
	c.composite("AP3", "S3", "D3", fmt.Sprintf(
		`<axml:sc mode="replace" methodName="S4" serviceURL="AP4"/><axml:sc mode="replace" methodName="S5" serviceURL="AP5">%s</axml:sc>`, handler))
	origin := c.composite("AP1", "S1", "D1",
		`<axml:sc mode="replace" methodName="S2" serviceURL="AP2"/><axml:sc mode="replace" methodName="S3" serviceURL="AP3"/>`,
		axmltx.WithSuper())
	return c, origin, fail
}

func entries(c *cluster, id axmltx.PeerID, doc string) int {
	d, ok := c.peers[id].Store().Snapshot(doc)
	if !ok {
		return 0
	}
	n := 0
	q := axmltx.MustQuery(fmt.Sprintf("Select l/entry from l in %s//log", d.Root().Name()))
	res, err := c.peers[id].Store().Evaluator().Eval(d, q)
	if err == nil {
		n = len(res.Items)
	}
	return n
}

func run(forward bool) {
	c, origin, _ := build(forward)
	ctx := context.Background()
	tx := origin.Begin()
	_, err := origin.Exec(ctx, tx, axmltx.NewQueryAction(axmltx.MustQuery(`Select d/updateResult from d in D1`)))
	if err != nil {
		fmt.Printf("  TA failed: %v\n", err)
		must(origin.Abort(ctx, tx))
		fmt.Println("  backward recovery: whole transaction aborted")
	} else {
		fmt.Printf("  chain: %s\n", tx.Chain())
		must(origin.Commit(ctx, tx))
		fmt.Println("  forward recovery at AP3 absorbed the fault; TA committed")
	}
	for _, id := range []axmltx.PeerID{"AP2", "AP4", "AP6"} {
		doc := fmt.Sprintf("D%c.xml", id[2])
		fmt.Printf("  %s entries: %d\n", id, entries(c, id, doc))
	}
}

func main() {
	fmt.Println("### Figure 1 — no fault handlers: backward recovery")
	run(false)
	fmt.Println("\n### Figure 1 — catch F5 + retry on replica AP5b: forward recovery")
	run(true)
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
