// Travel is the classic compensation motivation ("the compensation of Book
// Hotel is Cancel Hotel Booking") run on the AXML engine: a trip is booked
// as one distributed transaction across a flight peer, a hotel peer and a
// car-rental peer. When the car rental faults, the nested recovery
// protocol compensates the bookings already made — first peer-dependently
// (Abort messages), then peer-independently (the origin executes shipped
// compensating-service definitions, even though the hotel peer has
// meanwhile disconnected and a replica takes over).
package main

import (
	"context"
	"fmt"
	"log"

	"axmltx"
)

// recovery maps the scenario flag to the engine's recovery mode (§3.2).
func recovery(independent bool) axmltx.Option {
	if independent {
		return axmltx.WithRecovery(axmltx.RecoveryPeerIndependent)
	}
	return axmltx.WithRecovery(axmltx.RecoveryNested)
}

func bookingPeer(net *axmltx.Network, id axmltx.PeerID, kind string, independent bool) *axmltx.Peer {
	p := mustPeer(axmltx.NewPeer(net.Join(id), recovery(independent)))
	doc := kind + ".xml"
	must(p.HostDocument(doc, fmt.Sprintf("<%s><bookings/></%s>", kind, kind)))
	p.HostUpdateService(axmltx.Descriptor{
		Name: "book" + kind, ResultName: "updateResult", TargetDocument: doc,
		Params: []axmltx.ParamDef{{Name: "customer", Required: true}},
	}, fmt.Sprintf(`<action type="insert"><data><booking customer="$customer"/></data><location>Select b from b in %s/bookings;</location></action>`, kind))
	return p
}

func bookings(p *axmltx.Peer, kind string) int {
	doc, ok := p.Store().Snapshot(kind + ".xml")
	if !ok {
		return 0
	}
	n := 0
	for _, b := range doc.Root().Children() {
		if b.Name() == "bookings" {
			n = len(b.Elements())
		}
	}
	return n
}

func run(independent bool, killHotel bool) {
	net := axmltx.NewNetwork(0)
	agency := mustPeer(axmltx.NewPeer(net.Join("Agency"), axmltx.WithSuper(), recovery(independent)))
	flight := bookingPeer(net, "FlightCo", "Flight", independent)
	hotel := bookingPeer(net, "HotelCo", "Hotel", independent)
	hotelReplica := bookingPeer(net, "HotelCo2", "Hotel", independent)
	_ = hotelReplica
	// The car-rental service always faults (no cars left).
	car := mustPeer(axmltx.NewPeer(net.Join("CarCo"), recovery(independent)))
	car.HostService(axmltx.NewFuncService(axmltx.Descriptor{Name: "bookCar", ResultName: "updateResult"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &axmltx.Fault{Name: "no-cars", Msg: "fleet exhausted"}
		}))
	// The agency knows the hotel document is replicated at HotelCo2.
	agency.Replicas().AddDocument("Hotel.xml", "HotelCo2")

	ctx := context.Background()
	tx := agency.Begin()
	params := map[string]string{"customer": "dbiswas"}
	_, err := agency.Call(ctx, tx, "FlightCo", "bookFlight", params)
	must(err)
	_, err = agency.Call(ctx, tx, "HotelCo", "bookHotel", params)
	must(err)
	fmt.Printf("  flight booked (%d), hotel booked (%d)\n", bookings(flight, "Flight"), bookings(hotel, "Hotel"))

	// HotelCo synchronizes its replica [Abiteboul et al.]: an
	// ID-preserving copy, so compensating operations address the same
	// nodes on either holder.
	if snap, ok := hotel.Store().Snapshot("Hotel.xml"); ok {
		hotelReplica.Store().Add(snap)
	}

	if killHotel {
		net.Disconnect("HotelCo")
		fmt.Println("  ... and HotelCo just disconnected!")
	}

	if _, err := agency.Call(ctx, tx, "CarCo", "bookCar", params); err != nil {
		fmt.Printf("  car rental failed: %v\n", err)
		must(agency.Abort(ctx, tx))
		fmt.Printf("  aborted: flight bookings=%d hotel bookings=%d (original peer), %d (replica)\n",
			bookings(flight, "Flight"), bookings(hotel, "Hotel"), bookings(hotelReplica, "Hotel"))
	}
}

func main() {
	fmt.Println("### Peer-dependent recovery (Abort messages cancel the bookings)")
	run(false, false)

	fmt.Println("\n### Peer-independent recovery (compensating-service definitions)")
	run(true, false)

	fmt.Println("\n### Peer-independent recovery with the hotel peer disconnected:")
	fmt.Println("    the shipped definition runs on the Hotel.xml replica holder instead")
	run(true, true)
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
