// Periodic demonstrates the frequency attribute of embedded service calls:
// an ATP live-score document embeds a call to a scores feed with
// frequency="30ms", and the peer's scheduler refreshes it in short
// transactions of its own. When the feed faults, that refresh alone is
// compensated — the document never exposes a half-applied refresh.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"axmltx"
)

func main() {
	net := axmltx.NewNetwork(0)
	ap1 := mustPeer(axmltx.NewPeer(net.Join("AP1")))
	feed := mustPeer(axmltx.NewPeer(net.Join("FeedCo")))

	var seq atomic.Int32
	var failing atomic.Bool
	feed.HostService(axmltx.NewFuncService(
		axmltx.Descriptor{Name: "liveScores", ResultName: "score"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			if failing.Load() {
				return nil, &axmltx.Fault{Name: "feed-down"}
			}
			n := seq.Add(1)
			return []string{fmt.Sprintf(`<score set="%d">Federer %d - %d Nadal</score>`, n, 6, n)}, nil
		}))

	must(ap1.HostDocument("Live.xml", `<Live>
	  <match court="Centre">
	    <axml:sc mode="replace" methodName="liveScores" serviceURL="FeedCo" frequency="30ms"/>
	  </match>
	</Live>`))

	s := ap1.StartScheduler(10 * time.Millisecond)
	defer s.Stop()

	show := func(label string) {
		doc, _ := ap1.Store().Snapshot("Live.xml")
		q := axmltx.MustQuery(`Select m/score from m in Live//match`)
		ev := ap1.Store().Evaluator()
		res, err := ev.Eval(doc, q)
		must(err)
		fmt.Printf("%-28s %v (refreshes=%d, failed=%d)\n", label, res.Strings(), s.Runs(), s.Errors())
	}

	time.Sleep(80 * time.Millisecond)
	show("after ~2 refreshes:")

	failing.Store(true)
	time.Sleep(80 * time.Millisecond)
	show("while the feed is down:")

	failing.Store(false)
	time.Sleep(80 * time.Millisecond)
	show("after the feed recovered:")
}

// mustPeer unwraps a NewPeer result, panicking on bad options.
func mustPeer(p *axmltx.Peer, err error) *axmltx.Peer {
	must(err)
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
