package axmltx_test

import (
	"context"
	"fmt"
	"time"

	"axmltx"
)

// Example shows the minimal AXML transaction: a document with an embedded
// remote call, lazily materialized inside a transaction, then committed.
func Example() {
	net := axmltx.NewNetwork(0)
	ap1, _ := axmltx.NewPeer(net.Join("AP1"), axmltx.WithSuper())
	ap2, _ := axmltx.NewPeer(net.Join("AP2"))

	ap2.HostService(axmltx.StaticService(
		axmltx.Descriptor{Name: "getPoints", ResultName: "points"},
		`<points>475</points>`))
	if err := ap1.HostDocument("ATPList.xml", `<ATPList><player>
	    <name><lastname>Federer</lastname></name>
	    <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2"/>
	  </player></ATPList>`); err != nil {
		fmt.Println(err)
		return
	}

	tx := ap1.Begin()
	res, err := ap1.Exec(bg, tx, axmltx.NewQueryAction(
		axmltx.MustQuery(`Select p/points from p in ATPList//player`)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Query.Strings())
	fmt.Println(tx.Chain())
	_ = ap1.Commit(bg, tx)
	// Output:
	// [475]
	// [AP1* → AP2]
}

// ExamplePeer_Abort shows dynamic compensation: aborting the transaction
// undoes the materialization on the origin document.
func ExamplePeer_Abort() {
	net := axmltx.NewNetwork(0)
	ap1, _ := axmltx.NewPeer(net.Join("AP1"))
	ap1.HostService(axmltx.StaticService(
		axmltx.Descriptor{Name: "feed", ResultName: "v"}, `<v>42</v>`))
	if err := ap1.HostDocument("D.xml",
		`<D><axml:sc mode="replace" methodName="feed"/></D>`); err != nil {
		fmt.Println(err)
		return
	}
	before, _ := ap1.Store().Snapshot("D.xml")

	tx := ap1.Begin()
	if _, err := ap1.Exec(bg, tx, axmltx.NewQueryAction(axmltx.MustQuery(`Select d/v from d in D`))); err != nil {
		fmt.Println(err)
		return
	}
	_ = ap1.Abort(bg, tx)
	after, _ := ap1.Store().Snapshot("D.xml")
	fmt.Println("restored:", after.Equal(before))
	// Output:
	// restored: true
}

// ExampleWithCallCache shows the materialization call cache: two
// transactions materialize the same embedded call, but the provider is
// invoked only once — the second materialization is served from the cache
// while the frequency window keeps the first result fresh.
func ExampleWithCallCache() {
	net := axmltx.NewNetwork(0)
	ap1, err := axmltx.NewPeer(net.Join("AP1"),
		axmltx.WithCallCache(64),
		axmltx.WithCacheTTL(time.Minute))
	if err != nil {
		fmt.Println(err)
		return
	}
	provider, _ := axmltx.NewPeer(net.Join("PR"))

	invocations := 0
	provider.HostService(axmltx.NewFuncService(
		axmltx.Descriptor{Name: "quote", ResultName: "q"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			invocations++
			return []string{`<q>99</q>`}, nil
		}))

	doc := `<Quotes><axml:sc mode="replace" methodName="quote" serviceURL="PR" frequency="1h"/></Quotes>`
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("Q%d.xml", i)
		if err := ap1.HostDocument(name, doc); err != nil {
			fmt.Println(err)
			return
		}
		tx := ap1.Begin()
		res, err := ap1.Exec(bg, tx, axmltx.NewQueryAction(
			axmltx.MustQuery(fmt.Sprintf(`Select d/q from d in %s`, name[:2]))))
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(res.Query.Strings())
		_ = ap1.Commit(bg, tx)
	}
	fmt.Println("provider invocations:", invocations)
	// Output:
	// [99]
	// [99]
	// provider invocations: 1
}

// ExampleMustQuery shows the paper's query surface syntax.
func ExampleMustQuery() {
	q := axmltx.MustQuery(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;`)
	fmt.Println(q.String())
	// Output:
	// Select p/citizenship from p in ATPList//player where p/name/lastname = "Federer"
}
