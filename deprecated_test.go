package axmltx_test

import (
	"testing"

	"axmltx"
)

// TestDeprecatedShimsCompile pins the legacy public surface so the
// deprecation path stays source-compatible: the Options struct still works
// as an Option to NewPeer/NewPeerWithLog, and the pre-context *NoCtx
// methods keep their original signatures. The assertions are mostly
// compile-time; the short run-through keeps the shims behaviorally honest.
func TestDeprecatedShimsCompile(t *testing.T) {
	net := axmltx.NewNetwork(0)
	ap1 := axmltx.NewPeer(net.Join("AP1"), axmltx.Options{Super: true})
	ap2 := axmltx.NewPeerWithLog(net.Join("AP2"), mustLog(t), axmltx.Options{
		PeerIndependent: true,
		DisableChaining: true,
	})
	if !ap1.Super() || ap2.Super() {
		t.Fatal("Options shim did not configure the peers")
	}

	// Signature pins for the deprecated context-free methods.
	var (
		_ func(*axmltx.Txn, *axmltx.Action) (*axmltx.Result, error)                     = ap1.ExecNoCtx
		_ func(*axmltx.Txn, axmltx.PeerID, string, map[string]string) ([]string, error) = ap1.CallNoCtx
		_ func(*axmltx.Txn, axmltx.PeerID, string, map[string]string) error             = ap1.CallAsyncNoCtx
		_ func(*axmltx.Txn) error                                                       = ap1.CommitNoCtx
		_ func(*axmltx.Txn) error                                                       = ap1.AbortNoCtx
	)

	if err := ap1.HostDocument("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	tx := ap1.Begin()
	if _, err := ap1.ExecNoCtx(tx, axmltx.NewInsertAction(
		axmltx.MustQuery(`Select d from d in D`), `<x/>`)); err != nil {
		t.Fatal(err)
	}
	if err := ap1.CommitNoCtx(tx); err != nil {
		t.Fatal(err)
	}
}

func mustLog(t *testing.T) axmltx.Log {
	t.Helper()
	log, err := axmltx.OpenFileLogMode(t.TempDir()+"/peer.wal", axmltx.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	return log
}
