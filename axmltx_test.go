package axmltx_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"axmltx"
)

// newPeer builds a test peer, failing the test on construction errors.
func newPeer(t *testing.T, tr axmltx.Transport, opts ...axmltx.Option) *axmltx.Peer {
	t.Helper()
	p, err := axmltx.NewPeer(tr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPublicAPIQuickstart exercises the README quick-start flow through the
// public package only.
func TestPublicAPIQuickstart(t *testing.T) {
	net := axmltx.NewNetwork(0)
	ap1 := newPeer(t, net.Join("AP1"), axmltx.WithSuper())
	ap2 := newPeer(t, net.Join("AP2"))

	if err := ap2.HostDocument("Points.xml",
		`<Points><row player="Roger Federer"><points>475</points></row></Points>`); err != nil {
		t.Fatal(err)
	}
	ap2.HostQueryService(axmltx.Descriptor{
		Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml",
		Params: []axmltx.ParamDef{{Name: "name", Required: true}},
	}, `Select r/points from r in Points//row where r/@player = $name`)

	if err := ap1.HostDocument("ATPList.xml", `<ATPList><player rank="1">
	  <name><lastname>Federer</lastname></name>
	  <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2">
	    <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
	  </axml:sc></player></ATPList>`); err != nil {
		t.Fatal(err)
	}

	tx := ap1.Begin()
	res, err := ap1.Exec(bg, tx, axmltx.NewQueryAction(
		axmltx.MustQuery(`Select p/points from p in ATPList//player`)))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "475" {
		t.Fatalf("result = %v", got)
	}
	if err := ap1.Commit(bg, tx); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIActionsAndAbort(t *testing.T) {
	net := axmltx.NewNetwork(0)
	ap1 := newPeer(t, net.Join("AP1"))
	if err := ap1.HostDocument("D.xml", `<D><item k="1"><v>old</v></item></D>`); err != nil {
		t.Fatal(err)
	}
	before, _ := ap1.Store().Snapshot("D.xml")

	tx := ap1.Begin()
	if _, err := ap1.Exec(bg, tx, axmltx.NewInsertAction(
		axmltx.MustQuery(`Select d from d in D`), `<item k="2"/>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.Exec(bg, tx, axmltx.NewReplaceAction(
		axmltx.MustQuery(`Select i/v from i in D//item where i/@k = 1`), `<v>new</v>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.Exec(bg, tx, axmltx.NewDeleteAction(
		axmltx.MustQuery(`Select i from i in D//item where i/@k = 2`))); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Abort(bg, tx); err != nil {
		t.Fatal(err)
	}
	after, _ := ap1.Store().Snapshot("D.xml")
	if !after.Equal(before) {
		t.Fatal("public-API abort did not restore the document")
	}
}

func TestPublicAPIActionWireForm(t *testing.T) {
	a := axmltx.NewDeleteAction(axmltx.MustQuery(`Select p/citizenship from p in ATPList//player`))
	back, err := axmltx.ParseAction(a.XML())
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != a.Type {
		t.Fatal("wire round trip")
	}
}

func TestPublicAPIFaultsAndHooks(t *testing.T) {
	net := axmltx.NewNetwork(0)
	ap1 := newPeer(t, net.Join("AP1"))
	ap2 := newPeer(t, net.Join("AP2"))
	ap2.HostService(axmltx.NewFuncService(axmltx.Descriptor{Name: "f", ResultName: "x"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &axmltx.Fault{Name: "boom"}
		}))
	tx := ap1.Begin()
	_, err := ap1.Call(bg, tx, "AP2", "f", nil)
	if err == nil || axmltx.FaultNameOf(err) != "boom" {
		t.Fatalf("err = %v", err)
	}
	if err := ap1.Abort(bg, tx); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDurableLog(t *testing.T) {
	dir := t.TempDir()
	log, err := axmltx.OpenLog(dir+"/peer.wal", axmltx.WithLogSync(axmltx.SyncEach))
	if err != nil {
		t.Fatal(err)
	}
	net := axmltx.NewNetwork(0)
	ap1, err := axmltx.NewPeerWithLog(net.Join("AP1"), log)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap1.HostDocument("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	tx := ap1.Begin()
	if _, err := ap1.Exec(bg, tx, axmltx.NewInsertAction(
		axmltx.MustQuery(`Select d from d in D`), `<x/>`)); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Commit(bg, tx); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery sees the records.
	re, err := axmltx.OpenLog(dir+"/peer.wal", axmltx.WithLogSync(axmltx.SyncEach))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if recs := re.TxnRecords(tx.ID); len(recs) < 3 { // begin, insert, commit
		t.Fatalf("recovered %d records", len(recs))
	}
}

func TestPublicAPISegmentedLog(t *testing.T) {
	dir := t.TempDir()
	ring := axmltx.NewRing(0)
	reg := axmltx.NewRegistry()
	net := axmltx.NewNetwork(0)
	ap1 := newPeer(t, net.Join("AP1"),
		axmltx.WithWALDir(dir),
		axmltx.WithWALSegmentRecords(4),
		axmltx.WithWALSync(axmltx.SyncEach),
		axmltx.WithTracer(ring),
		axmltx.WithMetrics(reg))
	if err := ap1.HostDocument("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tx := ap1.Begin()
		if _, err := ap1.Exec(bg, tx, axmltx.NewInsertAction(
			axmltx.MustQuery(`Select d from d in D`), `<x/>`)); err != nil {
			t.Fatal(err)
		}
		if err := ap1.Commit(bg, tx); err != nil {
			t.Fatal(err)
		}
	}
	seg, ok := ap1.Store().Log().(*axmltx.SegmentedLog)
	if !ok {
		t.Fatalf("WithWALDir log is %T, want *SegmentedLog", ap1.Store().Log())
	}
	if seg.Segments() < 2 {
		t.Fatalf("Segments() = %d after 6 txns at 4 records/segment", seg.Segments())
	}
	// Checkpoint with a transaction still in flight: its records are the
	// live state the snapshot must carry across compaction and restart.
	live := ap1.Begin()
	if _, err := ap1.Exec(bg, live, axmltx.NewInsertAction(
		axmltx.MustQuery(`Select d from d in D`), `<y/>`)); err != nil {
		t.Fatal(err)
	}
	if err := seg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	removed, err := seg.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact removed no segments despite a fresh checkpoint")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `axml_wal_segments{peer="AP1"}`) {
		t.Fatalf("/metrics misses the segment gauge:\n%s", sb.String())
	}
	var compacts int
	for _, s := range ring.Spans() {
		if s.Kind == axmltx.KindCompact {
			compacts++
		}
	}
	if compacts == 0 {
		t.Fatal("no wal-compact span emitted")
	}
	if err := ap1.Abort(bg, live); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := axmltx.OpenLog(dir, axmltx.WithLogSegments(axmltx.SegmentOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if recs := re.TxnRecords(live.ID); len(recs) == 0 {
		t.Fatal("reopened segmented log lost the in-flight transaction")
	}
}

// TestPublicAPIBadOption checks that NewPeer rejects invalid option values
// with a typed error instead of constructing a misconfigured peer (MustPeer
// keeps the old panicking shape).
func TestPublicAPIBadOption(t *testing.T) {
	net := axmltx.NewNetwork(0)
	if _, err := axmltx.NewPeer(net.Join("AP1"), axmltx.WithCallCache(0)); !errors.Is(err, axmltx.ErrBadOption) {
		t.Fatalf("WithCallCache(0) err = %v, want ErrBadOption", err)
	}
	if _, err := axmltx.NewPeer(net.Join("AP1"), axmltx.WithCacheTTL(-time.Second)); !errors.Is(err, axmltx.ErrBadOption) {
		t.Fatalf("WithCacheTTL(-1s) err = %v, want ErrBadOption", err)
	}
	if _, err := axmltx.NewPeer(net.Join("AP1"), axmltx.WithLockTimeout(-time.Second)); !errors.Is(err, axmltx.ErrBadOption) {
		t.Fatalf("WithLockTimeout(-1s) err = %v, want ErrBadOption", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPeer with a bad option did not panic")
		}
	}()
	axmltx.MustPeer(net.Join("AP2"), axmltx.WithMaxConcurrentCalls(-1))
}

func TestPublicAPIScheduler(t *testing.T) {
	net := axmltx.NewNetwork(0)
	ap1 := newPeer(t, net.Join("AP1"))
	ap1.HostService(axmltx.StaticService(axmltx.Descriptor{Name: "tick", ResultName: "t"}, `<t/>`))
	if err := ap1.HostDocument("Feed.xml",
		`<Feed><axml:sc mode="merge" methodName="tick" frequency="1ms"/></Feed>`); err != nil {
		t.Fatal(err)
	}
	s := ap1.StartScheduler(time.Hour)
	defer s.Stop()
	s.RunDue(time.Now())
	if s.Runs() != 1 {
		t.Fatalf("runs = %d", s.Runs())
	}
	doc, _ := ap1.Store().Snapshot("Feed.xml")
	var b strings.Builder
	for _, n := range doc.Root().Children() {
		b.WriteString(n.Name())
	}
	if !strings.Contains(b.String(), "axml:sc") {
		t.Fatal("document shape broken")
	}
}
