package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/membership"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// countingProvider joins the network as PR hosting a "quote" service that
// counts upstream invocations and optionally delays, so cache tests can
// assert exactly how many calls escaped the cache.
func countingProvider(net *p2p.Network, delay time.Duration) (*Peer, *atomic.Int32) {
	pr := NewPeer(net.Join("PR"), wal.NewMemory(), Options{})
	var calls atomic.Int32
	pr.HostService(services.NewFuncService(
		services.Descriptor{Name: "quote", ResultName: "q"},
		func(cctx contextT, params map[string]string) ([]string, error) {
			calls.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			return []string{`<q>99</q>`}, nil
		}))
	return pr, &calls
}

// quoteDoc is a document whose materialization invokes quote@PR under a
// one-hour freshness window — the same semantic cache key in every test.
const quoteDoc = `<Q><axml:sc mode="replace" methodName="quote" serviceURL="PR" frequency="1h"/></Q>`

// materializeQuote runs one transaction that materializes every call of the
// named document and commits.
func materializeQuote(t *testing.T, p *Peer, doc string) {
	t.Helper()
	txc := p.Begin()
	if _, err := p.Store().MaterializeAll(txc.ID, doc, p); err != nil {
		t.Fatalf("materialize %s: %v", doc, err)
	}
	if err := p.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
}

// TestCacheHitAcrossTransactions: the second materialization of the same
// call (same service, params, window) is served from the cache — one
// upstream invocation total.
func TestCacheHitAcrossTransactions(t *testing.T) {
	net := p2p.NewNetwork(0)
	_, calls := countingProvider(net, 0)
	ap := NewPeer(net.Join("AP1"), wal.NewMemory(), Options{CallCacheCapacity: 16})
	for _, doc := range []string{"A.xml", "B.xml"} {
		if err := ap.HostDocument(doc, quoteDoc); err != nil {
			t.Fatal(err)
		}
		materializeQuote(t, ap, doc)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("upstream invocations = %d, want 1", n)
	}
	snap := ap.Metrics().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestCacheSingleflightConcurrent: two goroutines materialize the identical
// embedded call at the same peer concurrently (in different documents, so
// document locks don't serialize them). Singleflight must collapse them
// into exactly one upstream invocation. Run under -race in CI.
func TestCacheSingleflightConcurrent(t *testing.T) {
	net := p2p.NewNetwork(0)
	_, calls := countingProvider(net, 50*time.Millisecond)
	ap := NewPeer(net.Join("AP1"), wal.NewMemory(), Options{CallCacheCapacity: 16})
	docs := []string{"A.xml", "B.xml"}
	for _, doc := range docs {
		if err := ap.HostDocument(doc, quoteDoc); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, doc := range docs {
		wg.Add(1)
		go func(doc string) {
			defer wg.Done()
			materializeQuote(t, ap, doc)
		}(doc)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("upstream invocations = %d, want 1 (singleflight)", n)
	}
	snap := ap.Metrics().Snapshot()
	if snap.CacheWaits != 1 {
		t.Fatalf("cache waits = %d, want 1", snap.CacheWaits)
	}
	for _, doc := range docs {
		d, _ := ap.Store().Snapshot(doc)
		if got := xmldom.MarshalString(d.Root()); !strings.Contains(got, "99") {
			t.Fatalf("%s missing materialized result: %s", doc, got)
		}
	}
}

// TestCacheClusterFetch: AP2 materializes and advertises the cached call
// through gossip; AP3 then materializes the same call and fetches AP2's
// result over KindCacheFetch instead of re-invoking the provider.
func TestCacheClusterFetch(t *testing.T) {
	net := p2p.NewNetwork(0)
	_, calls := countingProvider(net, 0)

	mk := func(id p2p.PeerID, seed p2p.PeerID) (*Peer, *membership.Gossip) {
		tr := net.Join(id)
		g := membership.New(tr, membership.Config{Seeds: []p2p.PeerID{seed}})
		p := NewPeer(tr, wal.NewMemory(), Options{Membership: g, CallCacheCapacity: 16})
		return p, g
	}
	ap2, g2 := mk("AP2", "AP3")
	ap3, g3 := mk("AP3", "AP2")
	for _, p := range []*Peer{ap2, ap3} {
		if err := p.HostDocument("Q.xml", quoteDoc); err != nil {
			t.Fatal(err)
		}
	}

	materializeQuote(t, ap2, "Q.xml")
	if n := calls.Load(); n != 1 {
		t.Fatalf("upstream invocations after AP2 = %d, want 1", n)
	}
	// Two protocol periods propagate AP2's call advertisement to AP3.
	for i := 0; i < 3; i++ {
		g2.Tick(bg)
		g3.Tick(bg)
	}

	materializeQuote(t, ap3, "Q.xml")
	if n := calls.Load(); n != 1 {
		t.Fatalf("upstream invocations after AP3 = %d, want 1 (cluster fetch)", n)
	}
	snap := ap3.Metrics().Snapshot()
	if snap.CacheFetches != 1 {
		t.Fatalf("AP3 cache fetches = %d, want 1", snap.CacheFetches)
	}
}

// TestCacheInvalidationOnWrite: a write to a document a cached call
// materialized into withdraws the entry, so the next materialization goes
// upstream again.
func TestCacheInvalidationOnWrite(t *testing.T) {
	net := p2p.NewNetwork(0)
	_, calls := countingProvider(net, 0)
	ap := NewPeer(net.Join("AP1"), wal.NewMemory(), Options{CallCacheCapacity: 16})
	if err := ap.HostDocument("A.xml", quoteDoc); err != nil {
		t.Fatal(err)
	}
	materializeQuote(t, ap, "A.xml")

	// A write into the caller document invalidates the cached entry.
	txc := ap.Begin()
	loc, err := axml.ParseQuery(`Select d from d in A`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Exec(bg, txc, axml.NewInsert(loc, `<note/>`)); err != nil {
		t.Fatal(err)
	}
	if err := ap.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	if inv := ap.Metrics().Snapshot().CacheInvalidations; inv == 0 {
		t.Fatal("write did not invalidate the cached call")
	}

	if err := ap.HostDocument("B.xml", quoteDoc); err != nil {
		t.Fatal(err)
	}
	materializeQuote(t, ap, "B.xml")
	if n := calls.Load(); n != 2 {
		t.Fatalf("upstream invocations = %d, want 2 after invalidation", n)
	}
}

// TestCacheKeyCanonicalization: parameter order does not split the cache.
func TestCacheKeyCanonicalization(t *testing.T) {
	a := cacheKey("svc", []axml.Param{{Name: "x", Value: "1"}, {Name: "y", Value: "2"}}, time.Hour)
	b := cacheKey("svc", []axml.Param{{Name: "y", Value: "2"}, {Name: "x", Value: "1"}}, time.Hour)
	if a != b {
		t.Fatalf("key differs on param order:\n%s\n%s", a, b)
	}
	c := cacheKey("svc", []axml.Param{{Name: "x", Value: "1"}, {Name: "y", Value: "2"}}, time.Minute)
	if a == c {
		t.Fatal("key ignores the freshness window")
	}
}
