package core

import (
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

const atpXML = `<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" methodName="getPoints">
      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" methodName="getGrandSlamsWonbyYear">
      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
  <player rank="2">
    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>`

type tableMat struct {
	results map[string][]string
	names   map[string]string
}

func (m *tableMat) Invoke(txn string, call *axml.ServiceCall, params []axml.Param) ([]string, error) {
	return m.results[call.Service()], nil
}

func (m *tableMat) ResultName(service string) string { return m.names[service] }

func newCompStore(t *testing.T) (*axml.Store, *xmldom.Document) {
	t.Helper()
	s := axml.NewStore(wal.NewMemory())
	doc, err := s.AddParsed("ATPList.xml", atpXML)
	if err != nil {
		t.Fatal(err)
	}
	return s, doc
}

func applyOrFatal(t *testing.T, s *axml.Store, txn, locSrc string, build func(loc *axml.Action)) {
	t.Helper()
	loc, err := axml.ParseQuery(locSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := &axml.Action{Location: loc, Pos: -1}
	build(a)
	if _, err := s.Apply(txn, a, nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
}

// assertRestored checks the document is structurally identical to the
// pre-transaction snapshot after compensation.
func assertRestored(t *testing.T, s *axml.Store, snapshot *xmldom.Document) {
	t.Helper()
	live, _ := s.Get("ATPList.xml")
	if !live.Equal(snapshot) {
		t.Fatalf("compensation did not restore the document:\nwant: %s\ngot:  %s",
			xmldom.MarshalString(snapshot.Root()), xmldom.MarshalString(live.Root()))
	}
}

func TestCompensateDelete(t *testing.T) {
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T1",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })
	affected, err := Compensate(s, "T1")
	if err != nil {
		t.Fatal(err)
	}
	if affected == 0 {
		t.Fatal("no nodes affected")
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateInsert(t *testing.T) {
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T1",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<points>5000</points>` })
	if _, err := Compensate(s, "T1"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateReplace(t *testing.T) {
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T1",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionReplace; a.Data = `<citizenship>USA</citizenship>` })
	if _, err := Compensate(s, "T1"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateQueryMaterializationReplaceMode(t *testing.T) {
	// Paper Query B: lazy evaluation materializes getPoints (replace mode,
	// 475 -> 890); compensation must restore 475.
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	mat := &tableMat{results: map[string][]string{
		"getPoints": {`<points>890</points>`},
	}}
	q, _ := axml.ParseQuery(`Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer`)
	if _, err := s.Apply("TB", axml.NewQuery(q), mat, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	live, _ := s.Get("ATPList.xml")
	if live.Equal(snapshot) {
		t.Fatal("materialization had no effect")
	}
	if _, err := Compensate(s, "TB"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateQueryMaterializationMergeMode(t *testing.T) {
	// Paper Query A: merge mode appends the 2005 result; compensation
	// deletes exactly that node.
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	mat := &tableMat{results: map[string][]string{
		"getGrandSlamsWonbyYear": {`<grandslamswon year="2005">A, F</grandslamswon>`},
	}}
	q, _ := axml.ParseQuery(`Select p/grandslamswon from p in ATPList//player where p/name/lastname = Federer`)
	if _, err := s.Apply("TA", axml.NewQuery(q), mat, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	if _, err := Compensate(s, "TA"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateMixedOperationSequence(t *testing.T) {
	// Insert, then delete part of what existed, then replace, then delete
	// the earlier insert — reverse-order compensation must untangle all.
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<coach>Toni</coach>` })
	applyOrFatal(t, s, "T",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })
	applyOrFatal(t, s, "T",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionReplace; a.Data = `<citizenship>USA</citizenship>` })
	applyOrFatal(t, s, "T",
		`Select p/coach from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })
	if _, err := Compensate(s, "T"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateInsertThenDeleteOfSameNode(t *testing.T) {
	// The tricky identity case: T inserts X then deletes X. Compensation
	// re-inserts X (restoring its identity) and then deletes it again —
	// net zero, no duplicate.
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<temp>x</temp>` })
	applyOrFatal(t, s, "T",
		`Select p/temp from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })
	if _, err := Compensate(s, "T"); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
}

func TestCompensateIdempotent(t *testing.T) {
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })
	if _, err := Compensate(s, "T"); err != nil {
		t.Fatal(err)
	}
	// Second run is a no-op.
	affected, err := Compensate(s, "T")
	if err != nil {
		t.Fatal(err)
	}
	if affected != 0 {
		t.Fatalf("second compensation affected %d nodes", affected)
	}
	assertRestored(t, s, snapshot)
	if !AlreadyCompensated(s.Log(), "T") {
		t.Fatal("AlreadyCompensated false after compensation")
	}
}

func TestCompensateOnlyTargetTxn(t *testing.T) {
	s, _ := newCompStore(t)
	applyOrFatal(t, s, "T1",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<a1/>` })
	applyOrFatal(t, s, "T2",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<a2/>` })
	if _, err := Compensate(s, "T1"); err != nil {
		t.Fatal(err)
	}
	live, _ := s.Get("ATPList.xml")
	found := map[string]bool{}
	live.Root().Walk(func(n *xmldom.Node) bool {
		found[n.Name()] = true
		return true
	})
	if found["a1"] {
		t.Fatal("T1's insert survived its compensation")
	}
	if !found["a2"] {
		t.Fatal("T2's insert was wrongly compensated")
	}
}

func TestBuildCompensationReverseOrder(t *testing.T) {
	s, _ := newCompStore(t)
	applyOrFatal(t, s, "T",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<first/>` })
	applyOrFatal(t, s, "T",
		`Select p from p in ATPList//player where p/name/lastname = Nadal`,
		func(a *axml.Action) { a.Type = axml.ActionInsert; a.Data = `<second/>` })
	actions := BuildCompensation(s.Log(), "T")
	if len(actions) != 2 {
		t.Fatalf("actions = %d", len(actions))
	}
	// Both are deletes; the LAST insert is compensated FIRST.
	if actions[0].Type != axml.ActionDelete || actions[1].Type != axml.ActionDelete {
		t.Fatal("compensation of insert must be delete")
	}
	if actions[0].TargetID <= actions[1].TargetID {
		t.Fatalf("not reverse order: %d then %d", actions[0].TargetID, actions[1].TargetID)
	}
}

func TestCompensationDefRoundTripAndExecute(t *testing.T) {
	s, doc := newCompStore(t)
	snapshot := doc.Clone()
	applyOrFatal(t, s, "T",
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`,
		func(a *axml.Action) { a.Type = axml.ActionDelete })

	def := BuildCompensationDef(s, "T", "AP2", "deleteCitizenship")
	if def.Peer != "AP2" || def.Service != "deleteCitizenship" || len(def.Actions) != 1 {
		t.Fatalf("def = %+v", def)
	}
	if def.Nodes == 0 {
		t.Fatal("def cost not estimated")
	}
	back, err := DecodeCompensationDef(def.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Executing the shipped definition restores the document.
	if _, err := back.Execute(s); err != nil {
		t.Fatal(err)
	}
	assertRestored(t, s, snapshot)
	// Executing again (or locally compensating) is a no-op.
	if n, err := back.Execute(s); err != nil || n != 0 {
		t.Fatalf("re-execute = %d, %v", n, err)
	}
	if n, err := Compensate(s, "T"); err != nil || n != 0 {
		t.Fatalf("local compensate after def = %d, %v", n, err)
	}
}

func TestDecodeCompensationDefGarbage(t *testing.T) {
	if _, err := DecodeCompensationDef([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestHasCommitted(t *testing.T) {
	s, _ := newCompStore(t)
	if HasCommitted(s.Log(), "T") {
		t.Fatal("empty log reports committed")
	}
	if _, err := s.Log().Append(&wal.Record{Txn: "T", Type: wal.TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if !HasCommitted(s.Log(), "T") {
		t.Fatal("commit record not seen")
	}
}
