package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"axmltx/internal/p2p"
)

// InvokeRequest is the payload of a KindInvoke message.
type InvokeRequest struct {
	// Txn is the global transaction ID.
	Txn string
	// Origin is the transaction's origin peer.
	Origin p2p.PeerID
	// Caller is the invoking peer (the parent in the invocation tree).
	Caller p2p.PeerID
	// Service names the service to execute.
	Service string
	// Params are the resolved parameters.
	Params map[string]string
	// Chain is the active peer list so far, already extended with the
	// callee (§3.3: "AP3 passes the list of active peers also while
	// invoking the service S6 of AP6"). Nil when chaining is disabled —
	// the "traditional" baseline.
	Chain *Chain
	// Async asks the callee to acknowledge immediately and push the result
	// later as a KindResult message (data-intensive/continuous flows).
	Async bool
	// Reused carries result fragments salvaged from a disconnected
	// participant's children, keyed by the service that produced them; the
	// callee uses them instead of re-invoking those services (§3.3 case b
	// work reuse).
	Reused map[string][]string
}

// InvokeResponse is the payload of a successful invocation reply (or of a
// KindResult push for async invocations).
type InvokeResponse struct {
	// Service echoes the executed service (needed on async pushes).
	Service string
	// Fragments are the service's result XML fragments.
	Fragments []string
	// Chain is the callee's updated active peer list, including every
	// sub-invocation it made; the caller adopts it.
	Chain *Chain
	// Comp is the gob-encoded CompensationDef for the callee's effects;
	// nil unless the system runs peer-independent recovery.
	Comp []byte
	// Nodes is the number of XML nodes the invocation touched at the
	// callee (and below), the paper's cost measure; disconnection
	// accounting uses it to value lost work.
	Nodes int
}

// ChainUpdate is the payload of KindChainUpdate: a participant extended the
// invocation tree and shares the updated active peer list with its
// ancestors, so that any of them can run the disconnection protocol with
// full knowledge of the tree (§3.3 scenario c requires AP2 to know about
// AP6).
type ChainUpdate struct {
	Txn   string
	Chain *Chain
}

// DisconnectNotice is the payload of KindDisconnect: peer Dead was observed
// disconnected during Txn. Detected tells the receiver who noticed.
type DisconnectNotice struct {
	Txn      string
	Dead     p2p.PeerID
	Detected p2p.PeerID
}

// RedirectResult is the payload of KindRedirect: the sender finished
// Service for Txn but its parent Dead is unreachable, so the results are
// handed to an ancestor instead (§3.3 case b).
type RedirectResult struct {
	Txn      string
	Dead     p2p.PeerID
	Service  string
	Response InvokeResponse
}

// StreamBatch is the payload of KindStream: batch Seq of a continuous
// service, sent directly between siblings (§3.3 case d).
type StreamBatch struct {
	Txn       string
	Service   string
	Seq       int
	Fragments []string
}

// CacheFetchRequest is the payload of KindCacheFetch: the sender found a
// gossip advertisement for Key and asks the advertising peer for its cached
// materialization result instead of re-invoking upstream.
type CacheFetchRequest struct {
	// Key is the semantic cache key (service, canonicalized params,
	// freshness window).
	Key string
	// Service names the advertised service (for tracing and metrics).
	Service string
}

// CacheFetchResponse answers a CacheFetchRequest. Found is false when the
// entry expired or was invalidated since it was advertised; the requester
// then falls back to its own upstream invocation.
type CacheFetchResponse struct {
	Key     string
	Service string
	Found   bool
	// Fragments is the cached result.
	Fragments []string
	// FetchedUnixNano is when the owner performed the upstream invocation;
	// the requester re-checks freshness against its own clock.
	FetchedUnixNano int64
	// WindowNanos is the freshness window the entry was cached under.
	WindowNanos int64
}

// FragFetchRequest is the payload of KindFragFetch: the sender is
// assembling a sharded document and asks a catalog-advertised holder for
// one fragment (or, with an ID of the "<doc>#spine" form, for the spine).
type FragFetchRequest struct {
	// ID is the fragment ID ("<doc>#<root node ID>", internal/axml) or the
	// "<doc>#spine" pseudo-ID naming the document spine.
	ID string
}

// FragFetchResponse answers a FragFetchRequest. Found is false when the
// holder no longer has the fragment (it migrated away since the
// advertisement); the requester then tries the next advertised holder.
type FragFetchResponse struct {
	ID    string
	Found bool
	// Fragment fields, mirroring axml.Fragment; for a spine fetch only Doc,
	// XML and Manifest are set.
	Doc     string
	Root    uint64
	Parent  uint64
	Pos     int
	XML     string
	Nodes   int
	Version uint64
	// Manifest lists the document's complete fragment ID set (spine fetches
	// only): the assembling peer must gather exactly these fragments, no
	// matter how migration has scattered the advertisements.
	Manifest []string
}

// FragMigrateRequest is the payload of KindFragMigrate: the sender hands a
// fragment off to the receiver (its dominant caller). The shipped Version
// is already bumped past every advertised copy, so the receiver's
// announcement outranks the sender's until the sender withdraws.
type FragMigrateRequest struct {
	ID      string
	Doc     string
	Root    uint64
	Parent  uint64
	Pos     int
	XML     string
	Nodes   int
	Version uint64
}

// FragMigrateResponse acknowledges a FragMigrateRequest. OK is false when
// the receiver refused the fragment (e.g. shutting down); the sender then
// keeps ownership and compensates the handoff.
type FragMigrateResponse struct {
	ID string
	OK bool
}

// encodeBufs recycles gob scratch buffers for the legacy encoder, which the
// cross-version compatibility test and the codec benchmarks still exercise.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledEncodeCap bounds pooled buffer capacity so one oversized payload
// doesn't pin memory.
const maxPooledEncodeCap = 1 << 16

// encodeGob is the legacy (pre-binary) wire encoding. Kept because decode
// still accepts its output: peers running the previous version interoperate
// with current ones during a rolling upgrade.
func encodeGob(v any) []byte {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		// All wire types are plain data; an encode failure is a programming
		// error.
		panic(fmt.Sprintf("core: encode %T: %v", v, err))
	}
	out := append([]byte(nil), buf.Bytes()...)
	if buf.Cap() <= maxPooledEncodeCap {
		encodeBufs.Put(buf)
	}
	return out
}

func decodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("core: decode %T: %w", v, err)
	}
	return nil
}
