package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"axmltx/internal/p2p"
	"axmltx/internal/services"
)

// Typed error taxonomy of the transaction engine. Callers branch with
// errors.Is/As instead of matching message strings; the same codes travel in
// p2p.Message.Code so the taxonomy survives peer boundaries, and spans
// record them as their outcome code.
var (
	// ErrPeerDown reports that a peer could not be reached. It is the
	// transport's unreachable error, so transport failures match without
	// wrapping.
	ErrPeerDown = p2p.ErrUnreachable

	// ErrAborted reports that the transaction was (or is being) aborted.
	ErrAborted = errors.New("core: transaction aborted")

	// ErrCompensated reports an abort whose effects were rolled back by
	// running compensations (the paper's backward recovery). It wraps
	// ErrAborted, so errors.Is(err, ErrAborted) also holds.
	ErrCompensated = fmt.Errorf("%w, updates compensated", ErrAborted)

	// ErrTimeout reports that the caller's context deadline expired or was
	// cancelled; the engine maps it to backward recovery with compensation.
	ErrTimeout = errors.New("core: transaction deadline exceeded")
)

// Wire/span codes of the taxonomy. Faults carry "fault:<name>" so catch
// handlers keep their name-based dispatch.
const (
	CodeAborted     = "aborted"
	CodeCompensated = "compensated"
	CodeTimeout     = "timeout"
	CodePeerDown    = "peer-down"
	CodeError       = "error"
	codeFaultPrefix = "fault:"
)

// ErrCode maps an error to its taxonomy code; nil maps to "".
func ErrCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCompensated):
		return CodeCompensated
	case errors.Is(err, ErrAborted):
		return CodeAborted
	case errors.Is(err, ErrTimeout),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return CodeTimeout
	case errors.Is(err, ErrPeerDown):
		return CodePeerDown
	}
	if name := services.FaultName(err); name != "" {
		return codeFaultPrefix + name
	}
	return CodeError
}

// errFromWire reconstructs a typed error from a reply's code, fault subject
// and message, so errors.Is/As hold across peer boundaries exactly as they
// do locally. Unknown codes degrade to an opaque error carrying msg.
func errFromWire(code, subject, msg string) error {
	if subject != "" {
		// Named fault: keep the Fault type for catch-handler dispatch and
		// chain the taxonomy sentinel underneath when one applies.
		msg = strings.TrimPrefix(msg, "fault "+subject+": ")
		f := &services.Fault{Name: subject, Msg: msg}
		switch code {
		case CodeTimeout:
			f.Err = ErrTimeout
		case CodePeerDown:
			f.Err = ErrPeerDown
		}
		return f
	}
	switch code {
	case CodeAborted:
		return fmt.Errorf("%w (remote: %s)", ErrAborted, msg)
	case CodeCompensated:
		return fmt.Errorf("%w (remote: %s)", ErrCompensated, msg)
	case CodeTimeout:
		return fmt.Errorf("%w (remote: %s)", ErrTimeout, msg)
	case CodePeerDown:
		return fmt.Errorf("%w (remote: %s)", ErrPeerDown, msg)
	}
	return errors.New(msg)
}
