package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/services"
)

// TestIsolationConcurrentCounter runs many concurrent read-modify-write
// transactions against one document. Document-level strict 2PL must
// serialize them: the final counter equals the number of successful
// transactions, with lock-timeout losers retrying.
func TestIsolationConcurrentCounter(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{LockTimeout: 250 * time.Millisecond})
	if err := ap1.HostDocument("Counter.xml", `<Counter><value>0</value></Counter>`); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	var committed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for attempt := 0; attempt < 50; attempt++ {
					if incrementOnce(ap1) {
						mu.Lock()
						committed++
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	doc, _ := ap1.Store().Snapshot("Counter.xml")
	got, err := strconv.Atoi(doc.Root().FirstElement("value").TextContent())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	want := int(committed)
	mu.Unlock()
	if got != want {
		t.Fatalf("counter = %d, committed txns = %d (lost updates!)", got, want)
	}
	if want == 0 {
		t.Fatal("no transaction ever succeeded")
	}
}

// incrementOnce runs one read-modify-write transaction; false on lock
// conflict (aborted, to be retried).
func incrementOnce(p *Peer) bool {
	txc := p.Begin()
	q, _ := axml.ParseQuery(`Select c/value from c in Counter`)
	res, err := p.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		_ = p.Abort(bg, txc)
		return false
	}
	cur, err := strconv.Atoi(res.Query.Items[0].Value())
	if err != nil {
		_ = p.Abort(bg, txc)
		return false
	}
	rep := axml.NewReplace(q, fmt.Sprintf("<value>%d</value>", cur+1))
	if _, err := p.Exec(bg, txc, rep); err != nil {
		_ = p.Abort(bg, txc)
		return false
	}
	return p.Commit(bg, txc) == nil
}

// TestIsolationAcrossPeers: two origins contending for one participant's
// document; the loser's fault is a lock-timeout, and after the winner
// commits the loser succeeds.
func TestIsolationAcrossPeers(t *testing.T) {
	c := newCluster(t)
	host := c.add("HOST", Options{LockTimeout: 40 * time.Millisecond})
	o1 := c.add("O1", Options{})
	o2 := c.add("O2", Options{})
	hostEntryService(t, host, "W", "D.xml")

	tx1 := o1.Begin()
	if _, err := o1.Call(bg, tx1, "HOST", "W", nil); err != nil {
		t.Fatal(err)
	}
	tx2 := o2.Begin()
	_, err := o2.Call(bg, tx2, "HOST", "W", nil)
	var f *services.Fault
	if !errors.As(err, &f) || f.Name != "lock-timeout" {
		t.Fatalf("err = %v", err)
	}
	if err := o1.Commit(bg, tx1); err != nil {
		t.Fatal(err)
	}
	if _, err := o2.Call(bg, tx2, "HOST", "W", nil); err != nil {
		t.Fatal(err)
	}
	if err := o2.Commit(bg, tx2); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, host, "D.xml") != 2 {
		t.Fatalf("entries = %d", entryCount(t, host, "D.xml"))
	}
}
