// Package core implements the paper's transactional framework for AXML
// systems: transaction contexts and their manager, dynamic compensation
// constructed from the operation log (§3.1), the nested and peer-independent
// recovery protocols (§3.2), and chaining-based handling of peer
// disconnection (§3.3).
package core

import (
	"strings"
	"sync"

	"axmltx/internal/p2p"
)

// Chain is the "list of active peers" of §3.3: the invocation tree of a
// transaction, passed along with every invocation so that any participant
// can locate the parents, children, siblings and super peers of any other
// participant when a disconnection is detected.
//
// The paper's notation [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]] is an
// invocation tree; Chain stores it as a flat node list with parent indexes,
// which gob-encodes compactly for propagation.
type Chain struct {
	Nodes []ChainNode
}

// ChainNode is one participant in the invocation tree.
type ChainNode struct {
	Peer    p2p.PeerID
	Super   bool   // trusted peer that does not disconnect (starred)
	Service string // service invoked at this peer ("" for the origin)
	Parent  int    // index of the invoking node, -1 for the origin
}

// NewChain starts a chain at the origin peer.
func NewChain(origin p2p.PeerID, super bool) *Chain {
	return &Chain{Nodes: []ChainNode{{Peer: origin, Super: super, Parent: -1}}}
}

// Clone returns an independent copy; chains are value-propagated between
// peers, never shared.
func (c *Chain) Clone() *Chain {
	return &Chain{Nodes: append([]ChainNode(nil), c.Nodes...)}
}

// indexOf returns the first node index for peer, or -1. A peer appears once
// per transaction in the paper's scenarios; re-invocation of the same peer
// keeps the first position.
func (c *Chain) indexOf(peer p2p.PeerID) int {
	for i, n := range c.Nodes {
		if n.Peer == peer {
			return i
		}
	}
	return -1
}

// Contains reports whether peer participates in the chain.
func (c *Chain) Contains(peer p2p.PeerID) bool { return c.indexOf(peer) >= 0 }

// Add records that parent invoked service on child, returning the updated
// chain (the receiver is not modified). Unknown parents are ignored and the
// chain returned unchanged — a defensive behaviour for redirected messages.
func (c *Chain) Add(parent, child p2p.PeerID, service string, super bool) *Chain {
	pi := c.indexOf(parent)
	if pi < 0 || c.Contains(child) {
		return c.Clone()
	}
	out := c.Clone()
	out.Nodes = append(out.Nodes, ChainNode{Peer: child, Super: super, Service: service, Parent: pi})
	return out
}

// ParentOf returns the peer that invoked `peer`, or "" for the origin or an
// unknown peer.
func (c *Chain) ParentOf(peer p2p.PeerID) p2p.PeerID {
	i := c.indexOf(peer)
	if i < 0 || c.Nodes[i].Parent < 0 {
		return ""
	}
	return c.Nodes[c.Nodes[i].Parent].Peer
}

// ChildrenOf returns the peers whose services `peer` invoked, in invocation
// order.
func (c *Chain) ChildrenOf(peer p2p.PeerID) []p2p.PeerID {
	i := c.indexOf(peer)
	if i < 0 {
		return nil
	}
	var out []p2p.PeerID
	for _, n := range c.Nodes {
		if n.Parent == i {
			out = append(out, n.Peer)
		}
	}
	return out
}

// SiblingsOf returns the other children of peer's parent.
func (c *Chain) SiblingsOf(peer p2p.PeerID) []p2p.PeerID {
	i := c.indexOf(peer)
	if i < 0 || c.Nodes[i].Parent < 0 {
		return nil
	}
	var out []p2p.PeerID
	for j, n := range c.Nodes {
		if n.Parent == c.Nodes[i].Parent && j != i {
			out = append(out, n.Peer)
		}
	}
	return out
}

// DescendantsOf returns every peer beneath `peer` in the invocation tree.
func (c *Chain) DescendantsOf(peer p2p.PeerID) []p2p.PeerID {
	i := c.indexOf(peer)
	if i < 0 {
		return nil
	}
	var out []p2p.PeerID
	var rec func(idx int)
	rec = func(idx int) {
		for j, n := range c.Nodes {
			if n.Parent == idx {
				out = append(out, n.Peer)
				rec(j)
			}
		}
	}
	rec(i)
	return out
}

// AncestorsOf returns peer's ancestors, closest first (parent, grandparent,
// …, origin).
func (c *Chain) AncestorsOf(peer p2p.PeerID) []p2p.PeerID {
	i := c.indexOf(peer)
	if i < 0 {
		return nil
	}
	var out []p2p.PeerID
	for p := c.Nodes[i].Parent; p >= 0; p = c.Nodes[p].Parent {
		out = append(out, c.Nodes[p].Peer)
	}
	return out
}

// Origin returns the chain's root peer.
func (c *Chain) Origin() p2p.PeerID {
	for _, n := range c.Nodes {
		if n.Parent < 0 {
			return n.Peer
		}
	}
	return ""
}

// ServiceAt returns the service invoked at peer ("" for the origin).
func (c *Chain) ServiceAt(peer p2p.PeerID) string {
	i := c.indexOf(peer)
	if i < 0 {
		return ""
	}
	return c.Nodes[i].Service
}

// IsSuper reports whether peer is marked as a super peer in the chain.
func (c *Chain) IsSuper(peer p2p.PeerID) bool {
	i := c.indexOf(peer)
	return i >= 0 && c.Nodes[i].Super
}

// Peers returns all participants in insertion order.
func (c *Chain) Peers() []p2p.PeerID {
	out := make([]p2p.PeerID, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Peer
	}
	return out
}

// ClosestLiveAncestor returns peer's nearest ancestor for which alive
// returns true — "AP6 can try the next closest peer (AP1)" (§3.3 case b).
func (c *Chain) ClosestLiveAncestor(peer p2p.PeerID, alive func(p2p.PeerID) bool) (p2p.PeerID, bool) {
	for _, a := range c.AncestorsOf(peer) {
		if alive(a) {
			return a, true
		}
	}
	return "", false
}

// ClosestSuperAncestor returns peer's nearest super-peer ancestor — "or the
// closest super peer in the list".
func (c *Chain) ClosestSuperAncestor(peer p2p.PeerID) (p2p.PeerID, bool) {
	i := c.indexOf(peer)
	if i < 0 {
		return "", false
	}
	for p := c.Nodes[i].Parent; p >= 0; p = c.Nodes[p].Parent {
		if c.Nodes[p].Super {
			return c.Nodes[p].Peer, true
		}
	}
	return "", false
}

// Merge folds other's nodes into a copy of c: peers unknown to c are added
// under their parent (resolved by peer ID). Chains only ever grow by Add,
// so merging the upward-propagated copies held by different participants
// converges on the full invocation tree.
func (c *Chain) Merge(other *Chain) *Chain {
	out := c.Clone()
	if other == nil {
		return out
	}
	// Iterate until no progress: a node's parent may itself be new.
	for changed := true; changed; {
		changed = false
		for _, n := range other.Nodes {
			if out.Contains(n.Peer) {
				if n.Super {
					out.markSuper(n.Peer, true)
				}
				continue
			}
			if n.Parent < 0 {
				continue // a second root cannot happen within one txn
			}
			parentPeer := other.Nodes[n.Parent].Peer
			pi := out.indexOf(parentPeer)
			if pi < 0 {
				continue // parent not merged yet; retry next pass
			}
			out.Nodes = append(out.Nodes, ChainNode{
				Peer: n.Peer, Super: n.Super, Service: n.Service, Parent: pi,
			})
			changed = true
		}
	}
	return out
}

// markSuper sets the super flag on peer's node; the callee fixes its own
// flag when it receives a chain, since only it knows its trust status.
func (c *Chain) markSuper(peer p2p.PeerID, super bool) {
	if i := c.indexOf(peer); i >= 0 {
		c.Nodes[i].Super = super
	}
}

// SphereOfAtomicity reports whether atomicity can be guaranteed despite
// disconnection: true iff every participant is a super peer (§3.3, after
// Alonso & Hagen's Spheres of Atomicity).
func (c *Chain) SphereOfAtomicity() bool {
	for _, n := range c.Nodes {
		if !n.Super {
			return false
		}
	}
	return true
}

// String renders the paper's bracket notation, e.g.
// [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]].
func (c *Chain) String() string {
	if len(c.Nodes) == 0 {
		return "[]"
	}
	rootIdx := 0
	for i, n := range c.Nodes {
		if n.Parent < 0 {
			rootIdx = i
			break
		}
	}
	var render func(idx int) string
	render = func(idx int) string {
		n := c.Nodes[idx]
		label := string(n.Peer)
		if n.Super {
			label += "*"
		}
		var kids []int
		for j, m := range c.Nodes {
			if m.Parent == idx {
				kids = append(kids, j)
			}
		}
		switch len(kids) {
		case 0:
			return label
		case 1:
			return label + " → " + render(kids[0])
		default:
			parts := make([]string, len(kids))
			for i, k := range kids {
				parts[i] = "[" + render(k) + "]"
			}
			return label + " → " + strings.Join(parts, " || ")
		}
	}
	return "[" + render(rootIdx) + "]"
}

// chainLock guards concurrent chain updates inside a context.
type chainLock struct {
	mu    sync.Mutex
	chain *Chain
}

func (cl *chainLock) get() *Chain {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.chain
}

func (cl *chainLock) set(c *Chain) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.chain = c
}

// update applies f to the chain atomically and returns the new chain.
func (cl *chainLock) update(f func(*Chain) *Chain) *Chain {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.chain = f(cl.chain)
	return cl.chain
}
