package core

import (
	"testing"

	"axmltx/internal/p2p"
	"axmltx/internal/xmldom"
)

func TestAsyncInvokeDeliversResultAndRecordsChild(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{PeerIndependent: true})
	ap2 := c.add("AP2", Options{PeerIndependent: true})
	hostEntryService(t, ap2, "S2", "D2.xml")
	if !ap1.Super() && ap1.ID() != "AP1" {
		t.Fatal("accessors")
	}

	got := make(chan *InvokeResponse, 1)
	ap1.OnResult(func(txn string, resp *InvokeResponse) { got <- resp })
	var downSeen []p2p.PeerID
	ap1.OnPeerDownHook(func(txn string, dead p2p.PeerID) { downSeen = append(downSeen, dead) })

	txc := ap1.Begin()
	if err := ap1.CallAsync(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-got:
		if resp.Service != "S2" || len(resp.Fragments) != 1 {
			t.Fatalf("resp = %+v", resp)
		}
		if resp.Nodes == 0 {
			t.Fatal("async result carries no work accounting")
		}
	case <-timeAfter():
		t.Fatal("async result never delivered")
	}
	// handleResult recorded the child with its compensation definition.
	waitFor(t, func() bool {
		kids := txc.Children()
		return len(kids) == 1 && kids[0].Comp != nil
	})
	// Abort uses it.
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return entryCount(t, ap2, "D2.xml") == 0 })
	if len(downSeen) != 0 {
		t.Fatalf("spurious down events: %v", downSeen)
	}
}

func TestAsyncFailureAbortsParticipantLocally(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	hostEntryService(t, ap2, "S2", "D2.xml")
	flag := failFlag(t, ap2, "S2", "F2")
	flag.Store(true)

	txc := ap1.Begin()
	if err := ap1.CallAsync(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	// The async participant aborts itself and compensates; the origin gets
	// an abort notification.
	waitFor(t, func() bool { return entryCount(t, ap2, "D2.xml") == 0 })
	waitFor(t, func() bool { return txc.Status() == StatusAborted })
}

func TestCompDefShippedToOriginDirectly(t *testing.T) {
	// Depth-2 chain AP1 → AP2 → AP3 with peer independence: AP3's
	// definition reaches AP1 directly; when AP2 dies before the abort,
	// AP1 still compensates AP3.
	c := newCluster(t)
	ap1 := c.add("AP1", Options{PeerIndependent: true})
	ap2 := c.add("AP2", Options{PeerIndependent: true})
	ap3 := c.add("AP3", Options{PeerIndependent: true})
	hostEntryService(t, ap3, "S3", "D3.xml")
	ap2.HostService(compositeCalling(t, "S2", "AP3", "S3"))

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	// The origin holds AP3's definition even though it never talked to
	// AP3 (handleCompDef path).
	defs := txc.CompDefs()
	found := false
	for _, d := range defs {
		if d.Peer == "AP3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("origin lacks AP3's definition: %+v", defs)
	}

	c.net.Disconnect("AP2")
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap3, "D3.xml") != 0 {
		t.Fatal("AP3 not compensated via origin-held definition")
	}
}

func TestCompensationFallsBackToDocumentReplica(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{PeerIndependent: true})
	ap2 := c.add("AP2", Options{PeerIndependent: true})
	ap2r := c.add("AP2r", Options{PeerIndependent: true})
	hostEntryService(t, ap2, "S2", "D2.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	// Synchronize the replica (ID-preserving copy) and register it.
	snap, _ := ap2.Store().Snapshot("D2.xml")
	ap2r.Store().Add(snap)
	ap1.Replicas().AddDocument("D2.xml", "AP2r")

	c.net.Disconnect("AP2")
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	// The replica holder executed the shipped definition.
	if entryCount(t, ap2r, "D2.xml") != 0 {
		t.Fatal("replica not compensated")
	}
	if ap1.Metrics().CompServicesRun.Load() != 1 {
		t.Fatal("comp def not routed")
	}
}

func TestCompensationReplicaAllDeadAccountsLoss(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{PeerIndependent: true})
	ap2 := c.add("AP2", Options{PeerIndependent: true})
	hostEntryService(t, ap2, "S2", "D2.xml")
	ap1.Replicas().AddDocument("D2.xml", "AP2dead")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	c.net.Disconnect("AP2")
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if ap1.Metrics().NodesLost.Load() == 0 {
		t.Fatal("unrecoverable compensation not accounted as loss")
	}
	_ = xmldom.InvalidID
}
