package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// cluster wires peers over one in-memory network. When sink is set before
// peers are added, every peer traces into it (the trace-shape tests set one
// ring for the whole deployment).
type cluster struct {
	t     *testing.T
	net   *p2p.Network
	peers map[p2p.PeerID]*Peer
	sink  obs.Sink
}

func newCluster(t *testing.T) *cluster {
	return &cluster{t: t, net: p2p.NewNetwork(0), peers: make(map[p2p.PeerID]*Peer)}
}

func (c *cluster) add(id p2p.PeerID, opts Options) *Peer {
	if opts.TraceSink == nil {
		opts.TraceSink = c.sink
	}
	p := NewPeer(c.net.Join(id), wal.NewMemory(), opts)
	c.peers[id] = p
	return p
}

// announce registers service providers in every peer's replication table.
func (c *cluster) announce(service string, providers ...p2p.PeerID) {
	for _, p := range c.peers {
		for _, prov := range providers {
			p.Replicas().AddService(service, prov)
		}
	}
}

// hostEntryService gives a peer a document plus an update service that
// inserts one <entry/> into it — the standard "unit of work" of the
// recovery experiments (local effects that must be compensated on abort).
func hostEntryService(t *testing.T, p *Peer, service, doc string) {
	t.Helper()
	root := strings.TrimSuffix(doc, ".xml")
	if err := p.HostDocument(doc, fmt.Sprintf(`<%s><log/></%s>`, root, root)); err != nil {
		t.Fatal(err)
	}
	p.HostUpdateService(services.Descriptor{
		Name: service, ResultName: "updateResult", TargetDocument: doc,
	}, fmt.Sprintf(`<action type="insert"><data><entry svc=%q/></data><location>Select l from l in %s/log;</location></action>`, service, root))
}

// entryCount counts <entry/> nodes in a peer's document. It reads a
// snapshot taken under the store lock, since scenario tests count entries
// while asynchronous invocations may still be mutating the document.
func entryCount(t *testing.T, p *Peer, doc string) int {
	t.Helper()
	d, ok := p.Store().Snapshot(doc)
	if !ok {
		t.Fatalf("document %s missing", doc)
	}
	n := 0
	d.Root().Walk(func(x *xmldom.Node) bool {
		if x.Name() == "entry" {
			n++
		}
		return true
	})
	return n
}

func TestLocalTransactionCommit(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	hostEntryService(t, ap1, "S1", "D1.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap1, "D1.xml") != 1 {
		t.Fatal("entry missing after commit")
	}
	if ap1.Metrics().TxnsCommitted.Load() != 1 {
		t.Fatal("commit metric")
	}
	// Committed work cannot be aborted.
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err) // Abort on terminal context is a no-op, not an error
	}
	if entryCount(t, ap1, "D1.xml") != 1 {
		t.Fatal("commit was undone")
	}
}

func TestRemoteInvokeAndAbortCascades(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	hostEntryService(t, ap1, "S1", "D1.xml")
	hostEntryService(t, ap2, "S2", "D2.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	out, err := ap1.Call(bg, txc, "AP2", "S2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "insertedID") {
		t.Fatalf("remote result = %v", out)
	}
	if entryCount(t, ap2, "D2.xml") != 1 {
		t.Fatal("remote effect missing")
	}

	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap1, "D1.xml") != 0 {
		t.Fatal("local effect not compensated")
	}
	if entryCount(t, ap2, "D2.xml") != 0 {
		t.Fatal("remote effect not compensated (abort did not cascade)")
	}
	if ap1.Metrics().AbortsSent.Load() != 1 || ap2.Metrics().AbortsReceived.Load() != 1 {
		t.Fatalf("abort messages: sent=%d received=%d",
			ap1.Metrics().AbortsSent.Load(), ap2.Metrics().AbortsReceived.Load())
	}
}

func TestRemoteInvokeCommitCascades(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	hostEntryService(t, ap2, "S2", "D2.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// The participant context is finished and a late abort is refused.
	ap2.handleAbort(&p2p.Message{Kind: p2p.KindAbort, Txn: txc.ID, From: "AP1"})
	if entryCount(t, ap2, "D2.xml") != 1 {
		t.Fatal("stray abort undid committed work")
	}
}

func TestPeerIndependentCompensation(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{PeerIndependent: true})
	ap2 := c.add("AP2", Options{PeerIndependent: true})
	hostEntryService(t, ap2, "S2", "D2.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	// The invocation returned a compensating-service definition.
	kids := txc.Children()
	if len(kids) != 1 || kids[0].Comp == nil {
		t.Fatalf("children = %+v", kids)
	}
	if ap2.Metrics().CompServicesBuilt.Load() != 1 {
		t.Fatal("comp def not built at participant")
	}

	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap2, "D2.xml") != 0 {
		t.Fatal("shipped compensation did not restore the participant")
	}
	// No abort message was needed: the comp def was executed instead.
	if ap2.Metrics().AbortsReceived.Load() != 0 {
		t.Fatal("peer-independent abort still sent Abort messages")
	}
	if ap1.Metrics().CompServicesRun.Load() != 1 || ap2.Metrics().Compensations.Load() != 1 {
		t.Fatal("compensation metrics")
	}
}

func TestEmbeddedCallMaterializesRemoteService(t *testing.T) {
	// The AXML flow: AP1 hosts a document embedding a call to getPoints at
	// AP2; querying it lazily invokes AP2 and merges results.
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	if err := ap1.HostDocument("ATPList.xml", `<ATPList><player>
	    <name><lastname>Federer</lastname></name>
	    <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2"/>
	  </player></ATPList>`); err != nil {
		t.Fatal(err)
	}
	if err := ap2.HostDocument("Points.xml", `<Points><row player="Federer"><points>475</points></row></Points>`); err != nil {
		t.Fatal(err)
	}
	ap2.HostQueryService(services.Descriptor{
		Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml",
	}, `Select r/points from r in Points//row`)

	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select p/points from p in ATPList//player where p/name/lastname = Federer`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "475" {
		t.Fatalf("materialized query = %v", got)
	}
	// The chain recorded the remote invocation.
	if ch := txc.Chain(); !ch.Contains("AP2") || ch.ParentOf("AP2") != "AP1" {
		t.Fatalf("chain = %s", txc.Chain())
	}
	if err := ap1.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// Abort after commit changes nothing; the materialized node persists.
	doc, _ := ap1.Store().Get("ATPList.xml")
	if !strings.Contains(xmldom.MarshalString(doc.Root()), "<points>475</points>") {
		t.Fatal("materialized result missing after commit")
	}
}

func TestMaterializationAbortRestoresCallerDocument(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	if err := ap1.HostDocument("D.xml", `<D><axml:sc mode="replace" methodName="getVal" serviceURL="AP2"/></D>`); err != nil {
		t.Fatal(err)
	}
	ap2.HostService(services.StaticService(
		services.Descriptor{Name: "getVal", ResultName: "val"}, `<val>42</val>`))

	snapshot, _ := ap1.Store().Snapshot("D.xml")
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "42" {
		t.Fatalf("result = %v", got)
	}
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	live, _ := ap1.Store().Get("D.xml")
	if !live.Equal(snapshot) {
		t.Fatal("abort did not undo the query's materialization")
	}
}

func TestFaultHandlerRetrySameProvider(t *testing.T) {
	// <axml:retry times="3"> against a service that fails twice then
	// succeeds: forward recovery without involving the application.
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	var calls atomic.Int32
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "flaky", ResultName: "val"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			if calls.Add(1) <= 2 {
				return nil, &services.Fault{Name: "A", Msg: "transient"}
			}
			return []string{`<val>ok</val>`}, nil
		}))
	if err := ap1.HostDocument("D.xml", `<D>
	  <axml:sc mode="replace" methodName="flaky" serviceURL="AP2">
	    <axml:catch faultName="A"><axml:retry times="3" wait="1ms"/></axml:catch>
	  </axml:sc>
	</D>`); err != nil {
		t.Fatal(err)
	}

	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("result = %v", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d", calls.Load())
	}
	m := ap1.Metrics()
	if m.ForwardRecoveries.Load() != 1 || m.RetriesAttempted.Load() != 2 {
		t.Fatalf("forward=%d retries=%d", m.ForwardRecoveries.Load(), m.RetriesAttempted.Load())
	}
}

func TestFaultHandlerRetryOnReplica(t *testing.T) {
	// The failing provider never recovers; the retry handler switches to a
	// replica provider from the replication table.
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2b := c.add("AP2b", Options{})
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "svc", ResultName: "val"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "A"}
		}))
	ap2b.HostService(services.StaticService(
		services.Descriptor{Name: "svc", ResultName: "val"}, `<val>replica</val>`))
	c.announce("svc", "AP2", "AP2b")

	if err := ap1.HostDocument("D.xml", `<D>
	  <axml:sc mode="replace" methodName="svc" serviceURL="AP2">
	    <axml:catchAll><axml:retry times="2"/></axml:catchAll>
	  </axml:sc>
	</D>`); err != nil {
		t.Fatal(err)
	}
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "replica" {
		t.Fatalf("result = %v", got)
	}
}

func TestFaultHandlerExplicitAlternative(t *testing.T) {
	// The retry block names the replacement call explicitly:
	// <axml:retry><axml:sc serviceURL="AP3" .../></axml:retry>.
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	c.add("AP2", Options{}) // hosts nothing: invocation fails
	ap3 := c.add("AP3", Options{})
	ap3.HostService(services.StaticService(
		services.Descriptor{Name: "svc", ResultName: "val"}, `<val>alt</val>`))

	if err := ap1.HostDocument("D.xml", `<D>
	  <axml:sc mode="replace" methodName="svc" serviceURL="AP2">
	    <axml:catchAll><axml:retry times="1"><axml:sc methodName="svc" serviceURL="AP3"/></axml:retry></axml:catchAll>
	  </axml:sc>
	</D>`); err != nil {
		t.Fatal(err)
	}
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "alt" {
		t.Fatalf("result = %v", got)
	}
}

func TestFaultHookHandlesFault(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "svc", ResultName: "val"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "B"}
		}))
	if err := ap1.HostDocument("D.xml", `<D>
	  <axml:sc mode="replace" methodName="svc" serviceURL="AP2">
	    <axml:catch faultName="B"/>
	  </axml:sc>
	</D>`); err != nil {
		t.Fatal(err)
	}
	var hookRan atomic.Bool
	ap1.RegisterFaultHook("svc", "B", func(txn string, sc *axml.ServiceCall, fault string) error {
		hookRan.Store(true)
		return nil // handled
	})
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	if _, err := ap1.Exec(bg, txc, axml.NewQuery(q)); err != nil {
		t.Fatal(err)
	}
	if !hookRan.Load() {
		t.Fatal("hook never ran")
	}
	if ap1.Metrics().ForwardRecoveries.Load() != 1 {
		t.Fatal("hook success should count as forward recovery")
	}
}

func TestUnhandledFaultPropagates(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "svc", ResultName: "val"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "X"}
		}))
	if err := ap1.HostDocument("D.xml", `<D>
	  <axml:sc mode="replace" methodName="svc" serviceURL="AP2">
	    <axml:catch faultName="OTHER"><axml:retry times="5"/></axml:catch>
	  </axml:sc>
	</D>`); err != nil {
		t.Fatal(err)
	}
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	_, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err == nil {
		t.Fatal("fault swallowed")
	}
	var f *services.Fault
	if !errors.As(err, &f) || f.Name != "X" {
		t.Fatalf("err = %v", err)
	}
	if ap1.Metrics().BackwardRecoveries.Load() != 1 {
		t.Fatal("unmatched fault should count backward recovery")
	}
}

func TestLockConflictSurfacesAsFault(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{LockTimeout: 30 * time.Millisecond})
	hostEntryService(t, ap1, "S1", "D1.xml")

	tx1 := ap1.Begin()
	if _, err := ap1.Call(bg, tx1, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	tx2 := ap1.Begin()
	_, err := ap1.Call(bg, tx2, "AP1", "S1", nil)
	var f *services.Fault
	if !errors.As(err, &f) || f.Name != "lock-timeout" {
		t.Fatalf("err = %v", err)
	}
	// After tx1 finishes, tx2 can proceed.
	if err := ap1.Commit(bg, tx1); err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.Call(bg, tx2, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Abort(bg, tx2); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap1, "D1.xml") != 1 {
		t.Fatal("isolation broken: expected exactly tx1's entry")
	}
}

func TestExecOnFinishedTransactionRefused(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	hostEntryService(t, ap1, "S1", "D1.xml")
	txc := ap1.Begin()
	if err := ap1.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	loc, _ := axml.ParseQuery(`Select l from l in D1/log`)
	if _, err := ap1.Exec(bg, txc, axml.NewInsert(loc, `<entry/>`)); err == nil {
		t.Fatal("Exec on committed txn accepted")
	}
	if _, err := ap1.Call(bg, txc, "AP1", "S1", nil); err == nil {
		t.Fatal("Call on committed txn accepted")
	}
	if err := ap1.Commit(bg, txc); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestAdminDescriptors(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	hostEntryService(t, ap2, "S2", "D2.xml")
	resp, err := ap1.Transport().Request(context.Background(), "AP2",
		&p2p.Message{Kind: p2p.KindAdmin, Subject: "descriptors"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Payload), `name="S2"`) {
		t.Fatalf("descriptors = %s", resp.Payload)
	}
	resp, err = ap1.Transport().Request(context.Background(), "AP2",
		&p2p.Message{Kind: p2p.KindAdmin, Subject: "documents"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Payload), "D2.xml") {
		t.Fatalf("documents = %s", resp.Payload)
	}
}
