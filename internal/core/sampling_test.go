package core

import (
	"context"
	"testing"

	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
)

// samplingPair builds a two-peer cluster where each peer runs its own
// adaptive sampler over its own ring: AP1 (the origin) drops virtually every
// clean commit, AP2 (the participant) would keep virtually every one by its
// local coin — so any agreement between the two must come from the wire.
func samplingPair(t *testing.T) (c *cluster, origin, part *Peer, rings map[p2p.PeerID]*obs.Ring, samplers map[p2p.PeerID]*obs.Sampler) {
	t.Helper()
	c = newCluster(t)
	rings = make(map[p2p.PeerID]*obs.Ring)
	samplers = make(map[p2p.PeerID]*obs.Sampler)
	rates := map[p2p.PeerID]float64{"AP1": 1e-12, "AP2": 1 - 1e-12}
	for _, id := range []p2p.PeerID{"AP1", "AP2"} {
		ring := obs.NewRing(0)
		s := obs.NewSampler(ring, obs.SamplerConfig{KeepRate: rates[id]})
		rings[id] = ring
		samplers[id] = s
		c.add(id, Options{TraceSink: s})
	}
	origin, part = c.peers["AP1"], c.peers["AP2"]
	hostEntryService(t, part, "S2", "D2.xml")
	return c, origin, part, rings, samplers
}

// TestSamplingDropPropagatesOverWire: the origin's drop decision rides the
// Message.Span marker, so the participant drops its half of the trace even
// though its own coin would have kept it.
func TestSamplingDropPropagatesOverWire(t *testing.T) {
	_, origin, _, rings, samplers := samplingPair(t)

	txc := origin.Begin()
	if _, err := origin.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	if err := origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// The origin flushes at the txn root; the participant at its (async)
	// commit span.
	waitFor(t, func() bool { return samplers["AP1"].WasSampledOut(txc.ID) })
	waitFor(t, func() bool { return samplers["AP2"].WasSampledOut(txc.ID) })
	for id, ring := range rings {
		if got := len(ring.Trace(txc.ID)); got != 0 {
			t.Errorf("%s leaked %d spans of the dropped transaction", id, got)
		}
	}
}

// TestSamplingUntracedCallerLeavesCoinInCharge: a caller with no tracer
// sends no span reference at all — that is not a keep hint, and the
// participant's own coin must stay in charge (otherwise any peer serving
// untraced clients would keep every trace and sampling would be dead).
func TestSamplingUntracedCallerLeavesCoinInCharge(t *testing.T) {
	c := newCluster(t)
	c.add("AP1", Options{}) // untraced origin: no sink, no sampler
	ring := obs.NewRing(0)
	sampler := obs.NewSampler(ring, obs.SamplerConfig{KeepRate: 1e-12})
	c.add("AP2", Options{TraceSink: sampler})
	origin, part := c.peers["AP1"], c.peers["AP2"]
	hostEntryService(t, part, "S2", "D2.xml")

	txc := origin.Begin()
	if _, err := origin.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	if err := origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sampler.WasSampledOut(txc.ID) })
	if got := len(ring.Trace(txc.ID)); got != 0 {
		t.Errorf("participant kept %d spans of a clean commit its coin dropped", got)
	}
}

// TestSamplingErrorOverridesDropHint: a failing service forces the
// participant to keep its part of the trace even when the origin marked the
// transaction drop-eligible — keep upgrades are local and conservative.
func TestSamplingErrorOverridesDropHint(t *testing.T) {
	_, origin, part, rings, samplers := samplingPair(t)
	part.HostService(services.NewFuncService(
		services.Descriptor{Name: "boom", ResultName: "x"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "F9", Msg: "injected"}
		}))

	txc := origin.Begin()
	if _, err := origin.Call(bg, txc, "AP2", "boom", nil); err == nil {
		t.Fatal("expected the fault to surface")
	}
	if err := origin.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	// The failed serve span is interesting, so AP2 keeps its buffer at the
	// (async) abort flush; the origin's abort is interesting too.
	waitFor(t, func() bool { return len(rings["AP2"].Trace(txc.ID)) > 0 })
	waitFor(t, func() bool { return len(rings["AP1"].Trace(txc.ID)) > 0 })
	for _, id := range []p2p.PeerID{"AP1", "AP2"} {
		if samplers[id].WasSampledOut(txc.ID) {
			t.Errorf("%s sampled out a failed transaction", id)
		}
	}
	serve := findSpan(rings["AP2"].Trace(txc.ID), byKind(obs.KindServe, "AP2", "boom"))
	if serve == nil || serve.Outcome != obs.OutcomeError {
		t.Fatalf("failing serve span missing or clean: %+v", serve)
	}
}
