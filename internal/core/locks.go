package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLockTimeout is returned when a transaction cannot acquire a document
// lock within the configured wait; the engine surfaces it as a fault so the
// standard recovery machinery (retry handlers, abort) applies. Timeout also
// breaks deadlocks between transactions.
var ErrLockTimeout = errors.New("core: lock wait timeout")

// LockMode is the requested access.
type LockMode uint8

const (
	// LockShared allows concurrent readers.
	LockShared LockMode = iota + 1
	// LockExclusive is required by any document-modifying operation —
	// including queries, since lazy materialization writes (§3.1); this is
	// why the paper considers classic XML lock protocols ill-suited to
	// "active" documents, and why our isolation unit is the document.
	LockExclusive
)

// LockTable provides per-document two-phase locking with txn ownership,
// re-entrancy and lock upgrade. Growth happens as operations execute;
// shrink happens only at commit/abort (strict 2PL), which combined with
// compensation-based recovery gives the relaxed isolation of the framework.
type LockTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[string]*docLock
	timeout time.Duration
}

type docLock struct {
	// holders maps txn -> mode currently held.
	holders map[string]LockMode
}

// NewLockTable creates a table with the given acquisition timeout.
func NewLockTable(timeout time.Duration) *LockTable {
	lt := &LockTable{locks: make(map[string]*docLock), timeout: timeout}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

// Acquire obtains doc for txn in the given mode, blocking up to the table
// timeout. Re-acquiring an already-held lock succeeds immediately; holding
// shared and requesting exclusive upgrades when no other holder exists.
func (lt *LockTable) Acquire(txn, doc string, mode LockMode) error {
	deadline := time.Now().Add(lt.timeout)
	lt.mu.Lock()
	defer lt.mu.Unlock()

	// The condition-variable wait cannot time out by itself; a waker
	// goroutine broadcasts at the deadline so waiters can re-check.
	timerFired := false
	timer := time.AfterFunc(lt.timeout, func() {
		lt.mu.Lock()
		timerFired = true
		lt.mu.Unlock()
		lt.cond.Broadcast()
	})
	defer timer.Stop()

	for {
		dl, ok := lt.locks[doc]
		if !ok {
			dl = &docLock{holders: make(map[string]LockMode)}
			lt.locks[doc] = dl
		}
		if lt.grantable(dl, txn, mode) {
			if cur, held := dl.holders[txn]; !held || mode > cur {
				dl.holders[txn] = mode
			}
			return nil
		}
		if timerFired || time.Now().After(deadline) {
			return fmt.Errorf("%w: txn %s on %q", ErrLockTimeout, txn, doc)
		}
		lt.cond.Wait()
	}
}

// grantable implements the compatibility matrix with upgrade support; the
// caller holds lt.mu.
func (lt *LockTable) grantable(dl *docLock, txn string, mode LockMode) bool {
	for holder, held := range dl.holders {
		if holder == txn {
			continue
		}
		if mode == LockExclusive || held == LockExclusive {
			return false
		}
	}
	return true
}

// ReleaseAll frees every lock held by txn (commit/abort time, strict 2PL).
func (lt *LockTable) ReleaseAll(txn string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for doc, dl := range lt.locks {
		if _, ok := dl.holders[txn]; ok {
			delete(dl.holders, txn)
			if len(dl.holders) == 0 {
				delete(lt.locks, doc)
			}
		}
	}
	lt.cond.Broadcast()
}

// Held reports the mode txn holds on doc (0 when none), for tests.
func (lt *LockTable) Held(txn, doc string) LockMode {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if dl, ok := lt.locks[doc]; ok {
		return dl.holders[txn]
	}
	return 0
}
