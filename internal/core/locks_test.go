package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLockSharedCompatible(t *testing.T) {
	lt := NewLockTable(50 * time.Millisecond)
	if err := lt.Acquire("t1", "d", LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire("t2", "d", LockShared); err != nil {
		t.Fatal(err)
	}
	if lt.Held("t1", "d") != LockShared || lt.Held("t2", "d") != LockShared {
		t.Fatal("Held")
	}
}

func TestLockExclusiveConflicts(t *testing.T) {
	lt := NewLockTable(30 * time.Millisecond)
	if err := lt.Acquire("t1", "d", LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire("t2", "d", LockShared); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("shared under exclusive: %v", err)
	}
	if err := lt.Acquire("t2", "d", LockExclusive); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("exclusive under exclusive: %v", err)
	}
	// Different document is free.
	if err := lt.Acquire("t2", "other", LockExclusive); err != nil {
		t.Fatal(err)
	}
}

func TestLockReentrantAndUpgrade(t *testing.T) {
	lt := NewLockTable(30 * time.Millisecond)
	if err := lt.Acquire("t1", "d", LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire("t1", "d", LockShared); err != nil {
		t.Fatal("re-acquire failed")
	}
	if err := lt.Acquire("t1", "d", LockExclusive); err != nil {
		t.Fatal("upgrade failed with sole holder")
	}
	if lt.Held("t1", "d") != LockExclusive {
		t.Fatal("upgrade not recorded")
	}
	// Downgrade request keeps exclusive.
	if err := lt.Acquire("t1", "d", LockShared); err != nil {
		t.Fatal(err)
	}
	if lt.Held("t1", "d") != LockExclusive {
		t.Fatal("downgrade clobbered mode")
	}
}

func TestLockReleaseWakesWaiters(t *testing.T) {
	lt := NewLockTable(2 * time.Second)
	if err := lt.Acquire("t1", "d", LockExclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- lt.Acquire("t2", "d", LockExclusive)
	}()
	time.Sleep(10 * time.Millisecond)
	lt.ReleaseAll("t1")
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if lt.Held("t1", "d") != 0 {
		t.Fatal("t1 still holds after release")
	}
}

func TestLockTimeoutBreaksDeadlock(t *testing.T) {
	lt := NewLockTable(60 * time.Millisecond)
	if err := lt.Acquire("t1", "a", LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire("t2", "b", LockExclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(2)
	go func() { defer wg.Done(); err1 = lt.Acquire("t1", "b", LockExclusive) }()
	go func() { defer wg.Done(); err2 = lt.Acquire("t2", "a", LockExclusive) }()
	wg.Wait()
	if err1 == nil && err2 == nil {
		t.Fatal("deadlock not broken")
	}
}

func TestLockManyConcurrentTxns(t *testing.T) {
	lt := NewLockTable(2 * time.Second)
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			txn := string(rune('a' + n))
			if err := lt.Acquire(txn, "d", LockExclusive); err != nil {
				t.Error(err)
				return
			}
			counter++ // exclusive lock protects this
			lt.ReleaseAll(txn)
		}(i)
	}
	wg.Wait()
	if counter != 20 {
		t.Fatalf("counter = %d (lost updates => broken exclusion)", counter)
	}
}
