package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
)

func TestStrayAbortUnknownTxnHarmless(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap1.handleAbort(&p2p.Message{Kind: p2p.KindAbort, Txn: "ghost", From: "AP9"})
	if ap1.Metrics().Compensations.Load() != 0 {
		t.Fatal("compensated a transaction that never ran")
	}
}

func TestInvokeUnknownServiceIsFault(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	c.add("AP2", Options{})
	txc := ap1.Begin()
	_, err := ap1.Call(bg, txc, "AP2", "nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandleCompensateGarbage(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	if _, err := ap1.handleCompensate(&p2p.Message{Kind: p2p.KindCompensate, Payload: []byte{1, 2}}); err == nil {
		t.Fatal("garbage compensation accepted")
	}
}

func TestAbortWithUnreachableChildBestEffort(t *testing.T) {
	// Peer-dependent mode: when a participant is unreachable at abort
	// time, the abort proceeds locally (the participant's effects are
	// orphaned — exactly what E4 measures).
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	hostEntryService(t, ap2, "S2", "D2.xml")
	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	c.net.Disconnect("AP2")
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if txc.Status() != StatusAborted {
		t.Fatal("abort did not complete locally")
	}
	// AP2 keeps its (orphaned) entry: the known peer-dependent weakness.
	if entryCount(t, ap2, "D2.xml") != 1 {
		t.Fatal("unreachable peer was somehow compensated")
	}
}

func TestRelativeDisconnectNoticeDelegatesToParent(t *testing.T) {
	// The paper's future-work direction ("uncles, cousins"): any relative
	// holding the chain can report a death; a non-parent delegates to the
	// dead peer's parent, which runs the recovery.
	c := newCluster(t)
	f := buildFig1(t, c, "")
	txc := f.origin.Begin()
	if _, err := f.origin.Exec(bg, txc, f.q); err != nil {
		t.Fatal(err)
	}
	// AP6 dies after the run; its uncle-ish relative AP4 (a leaf in the
	// other branch) is notified and must delegate to AP5 (the parent).
	c.net.Disconnect("AP6")
	ap4 := f.peers["AP4"]
	notice := encode(&DisconnectNotice{Txn: txc.ID, Dead: "AP6", Detected: "AP4"})
	if err := ap4.Transport().Send(context.Background(), "AP4",
		&p2p.Message{Kind: p2p.KindDisconnect, Txn: txc.ID, Payload: notice}); err != nil {
		t.Fatal(err)
	}
	// AP5 (parent of AP6) received the delegated notice and, without a
	// replica of S6, aborted by the nested protocol — cascading to the
	// whole transaction.
	waitFor(t, func() bool {
		ctx5, ok := f.peers["AP5"].Manager().Get(txc.ID)
		return ok && ctx5.Status() == StatusAborted
	})
}

func TestReusedResultsConsumedInsteadOfInvocation(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	c.add("AP2", Options{}) // hosts nothing; would fail if invoked
	if err := ap1.HostDocument("D.xml",
		`<D><axml:sc mode="replace" methodName="ghost" serviceURL="AP2"/></D>`); err != nil {
		t.Fatal(err)
	}
	txc := ap1.Begin()
	txc.storeReused(map[string][]string{"ghost": {`<val>saved</val>`}})
	q, _ := axml.ParseQuery(`Select d/val from d in D`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "saved" {
		t.Fatalf("result = %v", got)
	}
	if ap1.Metrics().WorkReused.Load() != 1 {
		t.Fatal("reuse not counted")
	}
}

func TestAsyncLocalInvocationExecutesSynchronously(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	hostEntryService(t, ap1, "S1", "D1.xml")
	txc := ap1.Begin()
	if err := ap1.CallAsync(bg, txc, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap1, "D1.xml") != 1 {
		t.Fatal("local async did not execute")
	}
}

func TestHandleUnknownMessageKind(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	c.add("AP2", Options{})
	_, err := ap1.Transport().Request(context.Background(), "AP2",
		&p2p.Message{Kind: "wat"})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFaultNameOfClassification(t *testing.T) {
	if faultNameOf(p2p.ErrUnreachable) != FaultDisconnected {
		t.Fatal("unreachable should classify as disconnected")
	}
	if faultNameOf(&services.Fault{Name: "X"}) != "X" {
		t.Fatal("named fault lost")
	}
	if faultNameOf(errors.New("anon")) != "" {
		t.Fatal("anonymous error should have no name")
	}
}

func TestInvocationErrorMessageNotDoubled(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2.HostService(services.NewFuncService(services.Descriptor{Name: "f"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "boom", Msg: "root cause"}
		}))
	txc := ap1.Begin()
	_, err := ap1.Call(bg, txc, "AP2", "f", nil)
	if err == nil {
		t.Fatal("no error")
	}
	if strings.Count(err.Error(), "boom") != 1 {
		t.Fatalf("fault name duplicated: %v", err)
	}
	if !strings.Contains(err.Error(), "root cause") {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestCommitNotifiesMultiLevelParticipants(t *testing.T) {
	c := newCluster(t)
	f := buildFig1(t, c, "")
	txc := f.origin.Begin()
	if _, err := f.origin.Exec(bg, txc, f.q); err != nil {
		t.Fatal(err)
	}
	if err := f.origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// Commit cascaded through AP3 and AP5 to the leaves: their contexts
	// are gone and their effects permanent.
	for _, id := range []p2p.PeerID{"AP2", "AP3", "AP4", "AP5", "AP6"} {
		if _, ok := f.peers[id].Manager().Get(txc.ID); ok {
			t.Errorf("%s still holds a context after commit", id)
		}
	}
	// A very late abort at a leaf changes nothing.
	f.peers["AP6"].handleAbort(&p2p.Message{Kind: p2p.KindAbort, Txn: txc.ID, From: "AP5"})
	if n := entryCount(t, f.peers["AP6"], "D6.xml"); n != 1 {
		t.Fatalf("late abort destroyed committed work: entries=%d", n)
	}
}
