package core

import (
	"sync/atomic"

	"axmltx/internal/obs"
)

// Metrics counts protocol events at one peer. All counters are safe for
// concurrent update; Snapshot returns a consistent-enough copy for
// experiment reporting (individual counters are atomic; cross-counter skew
// is irrelevant for aggregated runs).
type Metrics struct {
	// TxnsBegun / TxnsCommitted / TxnsAborted count transaction outcomes
	// at their origin peer.
	TxnsBegun     atomic.Int64
	TxnsCommitted atomic.Int64
	TxnsAborted   atomic.Int64

	// InvocationsServed counts services executed at this peer.
	InvocationsServed atomic.Int64
	// InvocationsMade counts remote invocations issued by this peer.
	InvocationsMade atomic.Int64

	// Compensations counts local compensation runs; NodesUndone the total
	// XML nodes they touched (the paper's cost measure).
	Compensations atomic.Int64
	NodesUndone   atomic.Int64

	// ForwardRecoveries counts faults absorbed by fault handlers (retry or
	// application hooks); BackwardRecoveries counts faults propagated to
	// the parent.
	ForwardRecoveries  atomic.Int64
	BackwardRecoveries atomic.Int64
	// RetriesAttempted counts individual retry invocations.
	RetriesAttempted atomic.Int64

	// AbortsSent / AbortsReceived count "Abort TA" messages.
	AbortsSent     atomic.Int64
	AbortsReceived atomic.Int64

	// DisconnectsDetected counts peer-death observations (failed sends,
	// ping timeouts, stream silences); Redirects counts results re-routed
	// past a dead parent (§3.3 case b); WorkReused counts materialized
	// results salvaged into a forward recovery.
	DisconnectsDetected atomic.Int64
	Redirects           atomic.Int64
	WorkReused          atomic.Int64
	// NodesLost totals the subtree sizes of work discarded because of
	// disconnection — the "loss of effort" §3.3 minimizes.
	NodesLost atomic.Int64

	// CompServicesBuilt counts compensating-service definitions constructed
	// for peer-independent recovery; CompServicesRun counts executions of
	// shipped definitions.
	CompServicesBuilt atomic.Int64
	CompServicesRun   atomic.Int64

	// Materialization call-cache events. CacheHits counts results served
	// from the local cache within their freshness window; CacheMisses
	// counts materializations that went upstream; CacheWaits counts
	// followers served by a concurrent in-flight invocation (singleflight);
	// CacheFetches counts results fetched from an advertising peer instead
	// of re-invoking upstream; CacheInvalidations counts entries dropped by
	// writes or compensation touching their documents.
	CacheHits          atomic.Int64
	CacheMisses        atomic.Int64
	CacheWaits         atomic.Int64
	CacheFetches       atomic.Int64
	CacheInvalidations atomic.Int64

	// Document-sharding events. FragFetches counts remote fragment fetches
	// made during assembly; FragMigrations counts completed heat-driven
	// handoffs out of this peer; FragPromotions counts shadow copies
	// re-promoted after a migration destination died (compensation).
	FragFetches    atomic.Int64
	FragMigrations atomic.Int64
	FragPromotions atomic.Int64
}

// Register exports every counter into an obs.Registry as a function-backed
// gauge labeled with the peer ID. The atomics stay the single source of
// truth; the registry reads them at scrape time, so peers, benchmarks and
// simulations all emit the same metric schema.
func (m *Metrics) Register(reg *obs.Registry, peer string) {
	if reg == nil {
		return
	}
	labels := obs.Labels{"peer": peer}
	for _, c := range []struct {
		name string
		v    *atomic.Int64
	}{
		{"axml_txns_begun", &m.TxnsBegun},
		{"axml_txns_committed", &m.TxnsCommitted},
		{"axml_txns_aborted", &m.TxnsAborted},
		{"axml_invocations_served", &m.InvocationsServed},
		{"axml_invocations_made", &m.InvocationsMade},
		{"axml_compensations", &m.Compensations},
		{"axml_nodes_undone", &m.NodesUndone},
		{"axml_forward_recoveries", &m.ForwardRecoveries},
		{"axml_backward_recoveries", &m.BackwardRecoveries},
		{"axml_retries_attempted", &m.RetriesAttempted},
		{"axml_aborts_sent", &m.AbortsSent},
		{"axml_aborts_received", &m.AbortsReceived},
		{"axml_disconnects_detected", &m.DisconnectsDetected},
		{"axml_redirects", &m.Redirects},
		{"axml_work_reused", &m.WorkReused},
		{"axml_nodes_lost", &m.NodesLost},
		{"axml_comp_services_built", &m.CompServicesBuilt},
		{"axml_comp_services_run", &m.CompServicesRun},
		{"axml_cache_hits", &m.CacheHits},
		{"axml_cache_misses", &m.CacheMisses},
		{"axml_cache_waits", &m.CacheWaits},
		{"axml_cache_fetches", &m.CacheFetches},
		{"axml_cache_invalidations", &m.CacheInvalidations},
		{"axml_frag_fetches", &m.FragFetches},
		{"axml_frag_migrations", &m.FragMigrations},
		{"axml_frag_promotions", &m.FragPromotions},
	} {
		reg.Gauge(c.name, labels, c.v.Load)
	}
}

// MetricsSnapshot is a plain-values copy of Metrics.
type MetricsSnapshot struct {
	TxnsBegun, TxnsCommitted, TxnsAborted      int64
	InvocationsServed, InvocationsMade         int64
	Compensations, NodesUndone                 int64
	ForwardRecoveries, BackwardRecoveries      int64
	RetriesAttempted                           int64
	AbortsSent, AbortsReceived                 int64
	DisconnectsDetected, Redirects, WorkReused int64
	NodesLost                                  int64
	CompServicesBuilt, CompServicesRun         int64
	CacheHits, CacheMisses, CacheWaits         int64
	CacheFetches, CacheInvalidations           int64
	FragFetches, FragMigrations                int64
	FragPromotions                             int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		TxnsBegun:           m.TxnsBegun.Load(),
		TxnsCommitted:       m.TxnsCommitted.Load(),
		TxnsAborted:         m.TxnsAborted.Load(),
		InvocationsServed:   m.InvocationsServed.Load(),
		InvocationsMade:     m.InvocationsMade.Load(),
		Compensations:       m.Compensations.Load(),
		NodesUndone:         m.NodesUndone.Load(),
		ForwardRecoveries:   m.ForwardRecoveries.Load(),
		BackwardRecoveries:  m.BackwardRecoveries.Load(),
		RetriesAttempted:    m.RetriesAttempted.Load(),
		AbortsSent:          m.AbortsSent.Load(),
		AbortsReceived:      m.AbortsReceived.Load(),
		DisconnectsDetected: m.DisconnectsDetected.Load(),
		Redirects:           m.Redirects.Load(),
		WorkReused:          m.WorkReused.Load(),
		NodesLost:           m.NodesLost.Load(),
		CompServicesBuilt:   m.CompServicesBuilt.Load(),
		CompServicesRun:     m.CompServicesRun.Load(),
		CacheHits:           m.CacheHits.Load(),
		CacheMisses:         m.CacheMisses.Load(),
		CacheWaits:          m.CacheWaits.Load(),
		CacheFetches:        m.CacheFetches.Load(),
		CacheInvalidations:  m.CacheInvalidations.Load(),
		FragFetches:         m.FragFetches.Load(),
		FragMigrations:      m.FragMigrations.Load(),
		FragPromotions:      m.FragPromotions.Load(),
	}
}

// Add accumulates another snapshot into s (for cluster-wide totals).
func (s *MetricsSnapshot) Add(o MetricsSnapshot) {
	s.TxnsBegun += o.TxnsBegun
	s.TxnsCommitted += o.TxnsCommitted
	s.TxnsAborted += o.TxnsAborted
	s.InvocationsServed += o.InvocationsServed
	s.InvocationsMade += o.InvocationsMade
	s.Compensations += o.Compensations
	s.NodesUndone += o.NodesUndone
	s.ForwardRecoveries += o.ForwardRecoveries
	s.BackwardRecoveries += o.BackwardRecoveries
	s.RetriesAttempted += o.RetriesAttempted
	s.AbortsSent += o.AbortsSent
	s.AbortsReceived += o.AbortsReceived
	s.DisconnectsDetected += o.DisconnectsDetected
	s.Redirects += o.Redirects
	s.WorkReused += o.WorkReused
	s.NodesLost += o.NodesLost
	s.CompServicesBuilt += o.CompServicesBuilt
	s.CompServicesRun += o.CompServicesRun
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheWaits += o.CacheWaits
	s.CacheFetches += o.CacheFetches
	s.CacheInvalidations += o.CacheInvalidations
	s.FragFetches += o.FragFetches
	s.FragMigrations += o.FragMigrations
	s.FragPromotions += o.FragPromotions
}
