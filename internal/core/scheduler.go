package core

import (
	"context"
	"sync"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/xmldom"
)

// Scheduler drives the periodic invocation mode of embedded service calls:
// "An embedded service call may be invoked ... periodically (specified by
// the frequency attribute of the AXML service call tag)" (§1). Each due
// call is materialized in a short transaction of its own, so a failure
// compensates that refresh only.
type Scheduler struct {
	peer *Peer
	tick time.Duration

	mu      sync.Mutex
	lastRun map[xmldom.NodeID]time.Time
	cancel  chan struct{}
	done    chan struct{}
	runs    int64
	errs    int64
}

// StartScheduler launches a scheduler scanning this peer's documents every
// tick for frequency-annotated service calls that are due. Stop it with
// Stop.
func (p *Peer) StartScheduler(tick time.Duration) *Scheduler {
	s := &Scheduler{
		peer:    p,
		tick:    tick,
		lastRun: make(map[xmldom.NodeID]time.Time),
		cancel:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Scheduler) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.cancel:
			return
		case <-ticker.C:
			s.RunDue(time.Now())
		}
	}
}

// Stop terminates the scheduler and waits for the loop to exit.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	select {
	case <-s.cancel:
	default:
		close(s.cancel)
	}
	s.mu.Unlock()
	<-s.done
}

// Runs returns the number of successful periodic materializations.
func (s *Scheduler) Runs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// Errors returns the number of failed (and compensated) refreshes.
func (s *Scheduler) Errors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs
}

// due is one frequency-annotated call found during a scan.
type due struct {
	doc  string
	scID xmldom.NodeID
}

// RunDue materializes every frequency-annotated call whose interval has
// elapsed at time now. It is exported so tests and simulations can drive
// the scheduler deterministically without the timer loop.
func (s *Scheduler) RunDue(now time.Time) {
	var found []due
	for _, name := range s.peer.Store().Names() {
		snap, ok := s.peer.Store().Snapshot(name)
		if !ok {
			continue
		}
		for _, sc := range axml.TopLevelServiceCalls(snap) {
			freq, ok := sc.Frequency()
			if !ok {
				continue
			}
			s.mu.Lock()
			last, seen := s.lastRun[sc.ID()]
			dueNow := !seen || now.Sub(last) >= freq
			if dueNow {
				s.lastRun[sc.ID()] = now
			}
			s.mu.Unlock()
			if dueNow {
				found = append(found, due{doc: name, scID: sc.ID()})
			}
		}
	}
	for _, d := range found {
		s.refresh(d)
	}
}

// refresh materializes one call in its own transaction.
func (s *Scheduler) refresh(d due) {
	p := s.peer
	bg := context.Background()
	txc := p.Begin()
	if err := p.locks.Acquire(txc.ID, d.doc, LockExclusive); err != nil {
		_ = p.Abort(bg, txc)
		s.countErr()
		return
	}
	if _, err := p.Store().MaterializeCall(txc.ID, d.doc, d.scID, p); err != nil {
		_ = p.Abort(bg, txc)
		s.countErr()
		return
	}
	if err := p.Commit(bg, txc); err != nil {
		s.countErr()
		return
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
}

func (s *Scheduler) countErr() {
	s.mu.Lock()
	s.errs++
	s.mu.Unlock()
}
