package core

import (
	"errors"
	"fmt"
	"sort"

	"axmltx/internal/codec"
	"axmltx/internal/p2p"
)

// The binary wire format: every payload opens with a version byte and a
// message-kind tag, then the fields in declaration order under the varint
// framing of internal/codec. Version bytes occupy 0x01..0x07 — a gob blob
// of any wire struct opens with the uvarint length of its type-descriptor
// message, which is always far larger, so the first byte cleanly separates
// binary payloads from legacy gob ones and decode falls back accordingly.
// A version in the reserved range that this build does not speak is a typed
// error (errWireVersion), not a gob misparse.
const (
	wireVersion    = 0x02
	wireVersionMax = 0x07
)

// Message-kind tags; decode validates the tag against the decode target so
// a payload routed to the wrong handler fails loudly instead of shredding
// fields into the wrong struct.
const (
	wkInvokeRequest byte = iota + 1
	wkInvokeResponse
	wkChainUpdate
	wkDisconnectNotice
	wkRedirectResult
	wkStreamBatch
	wkCacheFetchRequest
	wkCacheFetchResponse
	wkFragFetchRequest
	wkFragFetchResponse
	wkFragMigrateRequest
	wkFragMigrateResponse
)

// errWireVersion reports a payload from a future protocol version.
var errWireVersion = errors.New("core: unsupported wire version")

// encode renders a wire payload in the binary format. The hot-path
// replacement for gob: no reflection, no type descriptors, one output
// allocation per message (strings decode zero-copy on the other side).
func encode(v any) []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Byte(wireVersion)
	switch m := v.(type) {
	case *InvokeRequest:
		w.Byte(wkInvokeRequest)
		appendInvokeRequest(w, m)
	case *InvokeResponse:
		w.Byte(wkInvokeResponse)
		appendInvokeResponse(w, m)
	case *ChainUpdate:
		w.Byte(wkChainUpdate)
		w.String(m.Txn)
		appendChain(w, m.Chain)
	case *DisconnectNotice:
		w.Byte(wkDisconnectNotice)
		w.String(m.Txn)
		w.String(string(m.Dead))
		w.String(string(m.Detected))
	case *RedirectResult:
		w.Byte(wkRedirectResult)
		w.String(m.Txn)
		w.String(string(m.Dead))
		w.String(m.Service)
		appendInvokeResponse(w, &m.Response)
	case *StreamBatch:
		w.Byte(wkStreamBatch)
		w.String(m.Txn)
		w.String(m.Service)
		w.Varint(int64(m.Seq))
		w.Strings(m.Fragments)
	case *CacheFetchRequest:
		w.Byte(wkCacheFetchRequest)
		w.String(m.Key)
		w.String(m.Service)
	case *CacheFetchResponse:
		w.Byte(wkCacheFetchResponse)
		w.String(m.Key)
		w.String(m.Service)
		w.Bool(m.Found)
		w.Strings(m.Fragments)
		w.Varint(m.FetchedUnixNano)
		w.Varint(m.WindowNanos)
	case *FragFetchRequest:
		w.Byte(wkFragFetchRequest)
		w.String(m.ID)
	case *FragFetchResponse:
		w.Byte(wkFragFetchResponse)
		w.String(m.ID)
		w.Bool(m.Found)
		w.String(m.Doc)
		w.Uvarint(m.Root)
		w.Uvarint(m.Parent)
		w.Varint(int64(m.Pos))
		w.String(m.XML)
		w.Varint(int64(m.Nodes))
		w.Uvarint(m.Version)
		w.Strings(m.Manifest)
	case *FragMigrateRequest:
		w.Byte(wkFragMigrateRequest)
		w.String(m.ID)
		w.String(m.Doc)
		w.Uvarint(m.Root)
		w.Uvarint(m.Parent)
		w.Varint(int64(m.Pos))
		w.String(m.XML)
		w.Varint(int64(m.Nodes))
		w.Uvarint(m.Version)
	case *FragMigrateResponse:
		w.Byte(wkFragMigrateResponse)
		w.String(m.ID)
		w.Bool(m.OK)
	default:
		panic(fmt.Sprintf("core: encode: unknown wire type %T", v))
	}
	return w.Finish()
}

// decode parses a wire payload into v: binary payloads by version byte,
// legacy gob payloads otherwise (rolling-upgrade interop). Strings in the
// decoded message alias b, which is freshly allocated per message by every
// transport.
func decode(b []byte, v any) error {
	if len(b) > 0 && b[0] >= 0x01 && b[0] <= wireVersionMax {
		if b[0] != wireVersion {
			return fmt.Errorf("%w: %d (max %d)", errWireVersion, b[0], wireVersion)
		}
		return decodeBinary(b[1:], v)
	}
	return decodeGob(b, v)
}

func decodeBinary(b []byte, v any) error {
	r := codec.NewReader(b)
	kind := r.Byte()
	var want byte
	switch m := v.(type) {
	case *InvokeRequest:
		want = wkInvokeRequest
		if kind == want {
			readInvokeRequest(r, m)
		}
	case *InvokeResponse:
		want = wkInvokeResponse
		if kind == want {
			readInvokeResponse(r, m)
		}
	case *ChainUpdate:
		want = wkChainUpdate
		if kind == want {
			m.Txn = r.String()
			m.Chain = readChain(r)
		}
	case *DisconnectNotice:
		want = wkDisconnectNotice
		if kind == want {
			m.Txn = r.String()
			m.Dead = p2p.PeerID(r.String())
			m.Detected = p2p.PeerID(r.String())
		}
	case *RedirectResult:
		want = wkRedirectResult
		if kind == want {
			m.Txn = r.String()
			m.Dead = p2p.PeerID(r.String())
			m.Service = r.String()
			readInvokeResponse(r, &m.Response)
		}
	case *StreamBatch:
		want = wkStreamBatch
		if kind == want {
			m.Txn = r.String()
			m.Service = r.String()
			m.Seq = int(r.Varint())
			m.Fragments = r.Strings()
		}
	case *CacheFetchRequest:
		want = wkCacheFetchRequest
		if kind == want {
			m.Key = r.String()
			m.Service = r.String()
		}
	case *CacheFetchResponse:
		want = wkCacheFetchResponse
		if kind == want {
			m.Key = r.String()
			m.Service = r.String()
			m.Found = r.Bool()
			m.Fragments = r.Strings()
			m.FetchedUnixNano = r.Varint()
			m.WindowNanos = r.Varint()
		}
	case *FragFetchRequest:
		want = wkFragFetchRequest
		if kind == want {
			m.ID = r.String()
		}
	case *FragFetchResponse:
		want = wkFragFetchResponse
		if kind == want {
			m.ID = r.String()
			m.Found = r.Bool()
			m.Doc = r.String()
			m.Root = r.Uvarint()
			m.Parent = r.Uvarint()
			m.Pos = int(r.Varint())
			m.XML = r.String()
			m.Nodes = int(r.Varint())
			m.Version = r.Uvarint()
			m.Manifest = r.Strings()
		}
	case *FragMigrateRequest:
		want = wkFragMigrateRequest
		if kind == want {
			m.ID = r.String()
			m.Doc = r.String()
			m.Root = r.Uvarint()
			m.Parent = r.Uvarint()
			m.Pos = int(r.Varint())
			m.XML = r.String()
			m.Nodes = int(r.Varint())
			m.Version = r.Uvarint()
		}
	case *FragMigrateResponse:
		want = wkFragMigrateResponse
		if kind == want {
			m.ID = r.String()
			m.OK = r.Bool()
		}
	default:
		return fmt.Errorf("core: decode: unknown wire type %T", v)
	}
	if r.Err() == nil && kind != want {
		return fmt.Errorf("core: decode %T: payload has kind tag %d, want %d", v, kind, want)
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("core: decode %T: %w", v, err)
	}
	return nil
}

func appendInvokeRequest(w *codec.Writer, m *InvokeRequest) {
	w.String(m.Txn)
	w.String(string(m.Origin))
	w.String(string(m.Caller))
	w.String(m.Service)
	appendStringMap(w, m.Params)
	appendChain(w, m.Chain)
	w.Bool(m.Async)
	appendStringsMap(w, m.Reused)
}

func readInvokeRequest(r *codec.Reader, m *InvokeRequest) {
	m.Txn = r.String()
	m.Origin = p2p.PeerID(r.String())
	m.Caller = p2p.PeerID(r.String())
	m.Service = r.String()
	m.Params = readStringMap(r)
	m.Chain = readChain(r)
	m.Async = r.Bool()
	m.Reused = readStringsMap(r)
}

func appendInvokeResponse(w *codec.Writer, m *InvokeResponse) {
	w.String(m.Service)
	w.Strings(m.Fragments)
	appendChain(w, m.Chain)
	w.BytesPrefixed(m.Comp)
	w.Varint(int64(m.Nodes))
}

func readInvokeResponse(r *codec.Reader, m *InvokeResponse) {
	m.Service = r.String()
	m.Fragments = r.Strings()
	m.Chain = readChain(r)
	m.Comp = r.BytesPrefixed()
	m.Nodes = int(r.Varint())
}

// appendChain encodes a possibly-nil invocation tree: presence flag, node
// count, then each node's peer/super/service/parent.
func appendChain(w *codec.Writer, c *Chain) {
	if c == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Uvarint(uint64(len(c.Nodes)))
	for _, n := range c.Nodes {
		w.String(string(n.Peer))
		w.Bool(n.Super)
		w.String(n.Service)
		w.Varint(int64(n.Parent))
	}
}

func readChain(r *codec.Reader) *Chain {
	if !r.Bool() {
		return nil
	}
	n := r.Count(4) // minimal node: 3 empty strings + parent byte
	c := &Chain{Nodes: make([]ChainNode, 0, n)}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, ChainNode{
			Peer:    p2p.PeerID(r.String()),
			Super:   r.Bool(),
			Service: r.String(),
			Parent:  int(r.Varint()),
		})
		if r.Err() != nil {
			return nil
		}
	}
	return c
}

// appendStringMap encodes a map in sorted key order, so equal maps encode
// to equal bytes (the golden fixture test depends on determinism; gob does
// not provide it).
func appendStringMap(w *codec.Writer, m map[string]string) {
	w.Uvarint(uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.String(k)
		w.String(m[k])
	}
}

func readStringMap(r *codec.Reader) map[string]string {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.String()
		if r.Err() != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

func appendStringsMap(w *codec.Writer, m map[string][]string) {
	w.Uvarint(uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.String(k)
		w.Strings(m[k])
	}
}

func readStringsMap(r *codec.Reader) map[string][]string {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.Strings()
		if r.Err() != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

// EncodeWire renders v in the current (binary) wire format. Exported for
// the codec benchmarks in internal/sim and cmd/axmlbench.
func EncodeWire(v any) []byte { return encode(v) }

// DecodeWire parses a wire payload of either format into v.
func DecodeWire(b []byte, v any) error { return decode(b, v) }

// EncodeWireLegacy renders v in the legacy gob wire format, the baseline
// the benchmarks compare against and the input of the cross-version
// compatibility tests.
func EncodeWireLegacy(v any) []byte { return encodeGob(v) }
