package core

import (
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/services"
)

// TestDistributedDocumentFragments realizes §1's "distributed storage of
// parts of an AXML document across multiple peers": AP1's ATPList holds
// players 1–2 locally, while players 3–4 live at AP2 and are pulled in by
// an embedded call — the paper's option (b), copying the required fragment
// to the querying peer. Option (a), shipping the sub-query, is the same
// mechanism with the predicate folded into the remote query service.
func TestDistributedDocumentFragments(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})

	if err := ap2.HostDocument("ATPTail.xml", `<ATPTail>
	  <player rank="3"><name><lastname>Djokovic</lastname></name><citizenship>Serbian</citizenship></player>
	  <player rank="4"><name><lastname>Murray</lastname></name><citizenship>British</citizenship></player>
	</ATPTail>`); err != nil {
		t.Fatal(err)
	}
	// The fragment service ships whole player subtrees.
	ap2.HostQueryService(services.Descriptor{
		Name: "tailPlayers", ResultName: "player", TargetDocument: "ATPTail.xml",
	}, `Select p from p in ATPTail//player`)

	if err := ap1.HostDocument("ATPList.xml", `<ATPList>
	  <player rank="1"><name><lastname>Federer</lastname></name><citizenship>Swiss</citizenship></player>
	  <player rank="2"><name><lastname>Nadal</lastname></name><citizenship>Spanish</citizenship></player>
	  <axml:sc mode="replace" methodName="tailPlayers" serviceURL="AP2"/>
	</ATPList>`); err != nil {
		t.Fatal(err)
	}

	// A query spanning the whole logical document materializes the remote
	// fragment and evaluates over local + copied players uniformly.
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select p/citizenship from p in ATPList//player`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Query.Strings()
	want := []string{"Swiss", "Spanish", "Serbian", "British"}
	if len(got) != len(want) {
		t.Fatalf("citizenships = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("citizenships = %v, want %v", got, want)
		}
	}
	// Sub-query shipping (option a): the predicate evaluates at AP2.
	frag, err := ap1.Call(bg, txc, "AP2", "tailPlayers", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag) != 2 {
		t.Fatalf("fragments = %d", len(frag))
	}
	// Abort removes the copied fragment from AP1 again.
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	txc2 := ap1.Begin()
	q2, _ := axml.ParseQuery(`Select p/name/lastname from p in ATPList//player where p/citizenship = Serbian`)
	res2, err := ap1.Exec(bg, txc2, axml.NewQuery(q2))
	if err != nil {
		t.Fatal(err)
	}
	// The new query re-materializes (replace mode) — Djokovic is found via
	// a fresh copy, proving the aborted copy was removed rather than
	// duplicated.
	if len(res2.Query.Items) != 1 {
		t.Fatalf("after abort+requery = %v", res2.Query.Strings())
	}
	doc, _ := ap1.Store().Snapshot("ATPList.xml")
	count := 0
	for _, sc := range docServiceCalls(doc) {
		count += len(sc.Results())
	}
	if count != 2 {
		t.Fatalf("fragment copies = %d, want 2 (no duplication)", count)
	}
}

// TestRedirectSkipsMultipleDeadAncestors: AP6's results survive even when
// both its parent and grandparent are gone — the redirect walks the chain
// to the super-peer origin.
func TestRedirectSkipsMultipleDeadAncestors(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{Super: true})
	ap2 := c.add("AP2", Options{})
	ap3 := c.add("AP3", Options{})
	ap6 := c.add("AP6", Options{})
	hostEntryService(t, ap6, "S6", "D6.xml")
	release := make(chan struct{})
	gate(t, ap6, "S6", release)

	// Build the chain AP1* → AP2 → AP3 → AP6 with an async tail.
	ap3.HostService(services.NewFuncService(
		services.Descriptor{Name: "S3", ResultName: "updateResult"},
		func(cctx contextT, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			if err := env.Peer.CallAsync(bg, env.Txn, "AP6", "S6", nil); err != nil {
				return nil, err
			}
			return []string{`<updateResult pending="S6"/>`}, nil
		}))
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "S2", ResultName: "updateResult"},
		func(cctx contextT, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			return env.Peer.Call(bg, env.Txn, "AP3", "S3", nil)
		}))

	got := make(chan string, 1)
	ap1.OnResult(func(txn string, resp *InvokeResponse) { got <- resp.Service })

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	c.net.Disconnect("AP3")
	c.net.Disconnect("AP2")
	close(release)

	select {
	case svc := <-got:
		if svc != "S6" {
			t.Fatalf("redirected service = %s", svc)
		}
	case <-timeAfter():
		t.Fatal("redirect never reached the super peer")
	}
	if ap6.Metrics().Redirects.Load() != 1 {
		t.Fatal("redirect not counted at AP6")
	}
}
