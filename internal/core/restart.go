package core

import (
	"fmt"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
)

// RecoverPending rolls back every transaction in the store's log that has
// structural effects but neither committed nor was fully compensated — the
// restart-time recovery pass of a peer. AXML documents are the peer's
// persistent state; after a crash they may contain effects of in-flight
// transactions, and the log's before-images are exactly what is needed to
// compensate them (§3.1's rationale for logging).
//
// It returns the IDs of the transactions it compensated. The pass is
// idempotent: compensation markers make re-runs no-ops.
func RecoverPending(store *axml.Store) ([]string, error) {
	log := store.Log()
	type state struct {
		effects   bool
		committed bool
		order     int
	}
	txns := make(map[string]*state)
	var order []string
	for _, r := range log.Records() {
		st, ok := txns[r.Txn]
		if !ok {
			st = &state{order: len(order)}
			txns[r.Txn] = st
			order = append(order, r.Txn)
		}
		switch r.Type {
		case wal.TypeInsert, wal.TypeDelete:
			st.effects = true
		case wal.TypeCommit:
			st.committed = true
		}
	}
	var recovered []string
	for _, txn := range order {
		st := txns[txn]
		if st.committed || !st.effects {
			continue
		}
		if AlreadyCompensated(log, txn) {
			continue
		}
		if _, err := Compensate(store, txn); err != nil {
			return recovered, fmt.Errorf("core: restart recovery of %s: %w", txn, err)
		}
		recovered = append(recovered, txn)
	}
	return recovered, nil
}

// RecoverPending runs restart-time recovery over this peer's store,
// updating the compensation metrics.
func (p *Peer) RecoverPending() ([]string, error) {
	recovered, err := RecoverPending(p.store)
	if len(recovered) > 0 {
		p.metrics.Compensations.Add(int64(len(recovered)))
	}
	return recovered, err
}

// Restart simulates a crash-restart of the peer: every live transaction
// context is discarded (a crashed process loses its volatile state — no
// abort messages are sent), document locks are released, and restart-time
// recovery compensates whatever the log shows as uncommitted. The store and
// log stand in for the reloaded persistent state, exactly as in
// RecoverPending's model where AXML documents plus the undo log survive the
// crash. The chaos injector uses this as the restart hook after an injected
// crash.
func (p *Peer) Restart() ([]string, error) {
	p.mgr.mu.Lock()
	ids := make([]string, 0, len(p.mgr.ctxs))
	for id := range p.mgr.ctxs {
		ids = append(ids, id)
	}
	p.mgr.ctxs = make(map[string]*Context)
	p.mgr.mu.Unlock()
	for _, id := range ids {
		p.locks.ReleaseAll(id)
	}
	return p.RecoverPending()
}
