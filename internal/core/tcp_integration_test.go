package core

import (
	"strings"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/wal"
)

// TestProtocolsOverTCP runs the full transactional flow — materialization
// of a remote embedded call, commit, and abort with cascaded compensation —
// over real TCP transports instead of the in-memory network.
func TestProtocolsOverTCP(t *testing.T) {
	t1, err := p2p.ListenTCP("AP1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := p2p.ListenTCP("AP2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	t1.AddPeer("AP2", t2.Addr())
	t2.AddPeer("AP1", t1.Addr())

	ap1 := NewPeer(t1, wal.NewMemory(), Options{Super: true})
	ap2 := NewPeer(t2, wal.NewMemory(), Options{PeerIndependent: true})

	if err := ap2.HostDocument("Points.xml",
		`<Points><row player="Roger Federer"><points>475</points></row></Points>`); err != nil {
		t.Fatal(err)
	}
	ap2.HostQueryService(services.Descriptor{
		Name: "getPoints", ResultName: "points", TargetDocument: "Points.xml",
		Params: []services.ParamDef{{Name: "name", Required: true}},
	}, `Select r/points from r in Points//row where r/@player = $name`)
	ap2.HostUpdateService(services.Descriptor{
		Name: "addRow", ResultName: "updateResult", TargetDocument: "Points.xml",
	}, `<action type="insert"><data><row player="New"><points>1</points></row></data><location>Select r from r in Points;</location></action>`)

	if err := ap1.HostDocument("ATPList.xml", `<ATPList><player rank="1">
	  <name><lastname>Federer</lastname></name>
	  <axml:sc mode="replace" methodName="getPoints" serviceURL="AP2">
	    <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
	  </axml:sc></player></ATPList>`); err != nil {
		t.Fatal(err)
	}

	// Materialize over TCP and commit.
	txc := ap1.Begin()
	q, _ := axml.ParseQuery(`Select p/points from p in ATPList//player`)
	res, err := ap1.Exec(bg, txc, axml.NewQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); len(got) != 1 || got[0] != "475" {
		t.Fatalf("result = %v", got)
	}
	if !strings.Contains(txc.Chain().String(), "AP2") {
		t.Fatalf("chain = %s", txc.Chain())
	}
	if err := ap1.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}

	// Remote update, then abort: the peer-independent compensation
	// definition travels back over TCP and is executed at AP2.
	snapshot, _ := ap2.Store().Snapshot("Points.xml")
	tx2 := ap1.Begin()
	if _, err := ap1.Call(bg, tx2, "AP2", "addRow", nil); err != nil {
		t.Fatal(err)
	}
	kids := tx2.Children()
	if len(kids) != 1 || kids[0].Comp == nil {
		t.Fatalf("children = %+v", kids)
	}
	if err := ap1.Abort(bg, tx2); err != nil {
		t.Fatal(err)
	}
	waitForTCP(t, func() bool {
		live, _ := ap2.Store().Snapshot("Points.xml")
		return live.Equal(snapshot)
	})
}

func waitForTCP(t *testing.T, cond func() bool) {
	t.Helper()
	waitFor(t, cond)
}
