package core

import (
	"encoding/hex"
	"errors"
	"reflect"
	"testing"

	"axmltx/internal/codec"
)

// goldenChain is the fixture invocation tree used by every chain-carrying
// message: [AP1* → AP2 → AP3].
func goldenChain() *Chain {
	c := NewChain("AP1", true)
	c = c.Add("AP1", "AP2", "svcB", false)
	c = c.Add("AP2", "AP3", "svcC", false)
	return c
}

// wireFixture pairs one fully-populated instance of each message kind with
// the pinned bytes of its binary encoding. The bytes are part of the wire
// contract: changing them silently would break rolling upgrades, so any
// format change must bump wireVersion and extend decode, not rewrite these.
type wireFixture struct {
	name   string
	msg    any
	fresh  func() any // zero decode target of the same type
	golden string     // hex of EncodeWire(msg)
}

func wireFixtures() []wireFixture {
	return []wireFixture{
		{
			name: "InvokeRequest",
			msg: &InvokeRequest{
				Txn: "txn-1", Origin: "AP1", Caller: "AP2", Service: "svcC",
				Params: map[string]string{"doc": "orders.xml", "qty": "2"},
				Chain:  goldenChain(), Async: true,
				Reused: map[string][]string{"svcD": {"<d/>", "<e/>"}},
			},
			fresh:  func() any { return new(InvokeRequest) },
			golden: "02010574786e2d31034150310341503204737663430203646f630a6f72646572732e786d6c037174790132010303415031010001034150320004737663420003415033000473766343020101047376634402043c642f3e043c652f3e",
		},
		{
			name: "InvokeResponse",
			msg: &InvokeResponse{
				Service: "svcC", Fragments: []string{"<r1/>", "<r2/>"},
				Chain: goldenChain(), Comp: []byte{0xde, 0xad}, Nodes: 7,
			},
			fresh:  func() any { return new(InvokeResponse) },
			golden: "0202047376634302053c72312f3e053c72322f3e0103034150310100010341503200047376634200034150330004737663430202dead0e",
		},
		{
			name:   "ChainUpdate",
			msg:    &ChainUpdate{Txn: "txn-1", Chain: goldenChain()},
			fresh:  func() any { return new(ChainUpdate) },
			golden: "02030574786e2d3101030341503101000103415032000473766342000341503300047376634302",
		},
		{
			name:   "DisconnectNotice",
			msg:    &DisconnectNotice{Txn: "txn-1", Dead: "AP3", Detected: "AP2"},
			fresh:  func() any { return new(DisconnectNotice) },
			golden: "02040574786e2d310341503303415032",
		},
		{
			name: "RedirectResult",
			msg: &RedirectResult{
				Txn: "txn-1", Dead: "AP2", Service: "svcC",
				Response: InvokeResponse{Service: "svcC", Fragments: []string{"<x/>"}, Nodes: 3},
			},
			fresh:  func() any { return new(RedirectResult) },
			golden: "02050574786e2d31034150320473766343047376634301043c782f3e000006",
		},
		{
			name:   "StreamBatch",
			msg:    &StreamBatch{Txn: "txn-1", Service: "svcS", Seq: 4, Fragments: []string{"<b/>"}},
			fresh:  func() any { return new(StreamBatch) },
			golden: "02060574786e2d3104737663530801043c622f3e",
		},
	}
}

// TestGoldenWireBytes pins the exact bytes of every message kind's binary
// encoding. Maps encode in sorted key order, so the encoding is
// deterministic and the pin is stable.
func TestGoldenWireBytes(t *testing.T) {
	for _, f := range wireFixtures() {
		t.Run(f.name, func(t *testing.T) {
			got := hex.EncodeToString(EncodeWire(f.msg))
			if got != f.golden {
				t.Fatalf("encoding changed (bump wireVersion instead of editing the pin)\n   got %s\ngolden %s", got, f.golden)
			}
			// The golden bytes decode back to the fixture.
			out := f.fresh()
			raw, err := hex.DecodeString(f.golden)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeWire(raw, out); err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			if !reflect.DeepEqual(out, f.msg) {
				t.Fatalf("golden decode mismatch:\n got %+v\nwant %+v", out, f.msg)
			}
		})
	}
}

// TestWireCrossVersionInterop asserts the upgrade matrix the version byte
// buys: the current decoder reads both current (binary) and legacy (gob)
// encodings, the legacy decoder still reads legacy bytes, and a payload
// from a future version fails with the typed version error rather than a
// gob misparse.
func TestWireCrossVersionInterop(t *testing.T) {
	for _, f := range wireFixtures() {
		t.Run(f.name, func(t *testing.T) {
			// New decoder ← old encoder.
			out := f.fresh()
			if err := DecodeWire(EncodeWireLegacy(f.msg), out); err != nil {
				t.Fatalf("decode legacy: %v", err)
			}
			if !reflect.DeepEqual(out, f.msg) {
				t.Fatalf("legacy decode mismatch:\n got %+v\nwant %+v", out, f.msg)
			}
			// Old decoder ← old encoder (the pre-upgrade pairing keeps
			// working while both versions coexist).
			out = f.fresh()
			if err := decodeGob(EncodeWireLegacy(f.msg), out); err != nil {
				t.Fatalf("gob round trip: %v", err)
			}
			if !reflect.DeepEqual(out, f.msg) {
				t.Fatalf("gob round trip mismatch:\n got %+v\nwant %+v", out, f.msg)
			}
		})
	}
	// Future version byte: typed error.
	var req InvokeRequest
	err := DecodeWire([]byte{0x05, 0x01, 0x00}, &req)
	if !errors.Is(err, errWireVersion) {
		t.Fatalf("future version: err = %v, want errWireVersion", err)
	}
}

// TestWireKindTagMismatch: a binary payload routed to the wrong decode
// target must fail, not shred fields.
func TestWireKindTagMismatch(t *testing.T) {
	b := EncodeWire(&DisconnectNotice{Txn: "t", Dead: "AP2", Detected: "AP1"})
	var resp InvokeResponse
	if err := DecodeWire(b, &resp); err == nil {
		t.Fatal("decoding a DisconnectNotice payload as InvokeResponse succeeded")
	}
}

// FuzzWireDecode asserts the binary wire decoder never panics or
// over-reads on truncated or bit-flipped frames, and that everything it
// does accept survives a re-encode round trip. Wired into the nightly
// fuzz job.
func FuzzWireDecode(f *testing.F) {
	for _, fx := range wireFixtures() {
		f.Add(EncodeWire(fx.msg))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		targets := []func() any{
			func() any { return new(InvokeRequest) },
			func() any { return new(InvokeResponse) },
			func() any { return new(ChainUpdate) },
			func() any { return new(DisconnectNotice) },
			func() any { return new(RedirectResult) },
			func() any { return new(StreamBatch) },
		}
		for _, fresh := range targets {
			v := fresh()
			if len(b) > 0 && b[0] != wireVersion {
				continue // gob fallback is out of scope for this fuzzer
			}
			if err := DecodeWire(b, v); err != nil {
				if !errors.Is(err, codec.ErrMalformed) && !errors.Is(err, codec.ErrTrailing) &&
					!errors.Is(err, errWireVersion) && err.Error() == "" {
					t.Fatalf("untyped decode error: %v", err)
				}
				continue
			}
			// Accepted input: value round trip must be stable (byte-level
			// identity is not required — non-minimal varints decode fine).
			w := fresh()
			if err := DecodeWire(EncodeWire(v), w); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !reflect.DeepEqual(v, w) {
				t.Fatalf("round trip unstable:\n got %+v\nwant %+v", w, v)
			}
		}
	})
}
