package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
)

// mustInsert builds an insert action for a location query literal.
func mustInsert(t *testing.T, loc string, data string) *axml.Action {
	t.Helper()
	q, err := axml.ParseQuery(loc)
	if err != nil {
		t.Fatal(err)
	}
	return axml.NewInsert(q, data)
}

// spanIndex maps span IDs to spans for parent-chain walks.
func spanIndex(spans []*obs.Span) map[string]*obs.Span {
	idx := make(map[string]*obs.Span, len(spans))
	for _, s := range spans {
		idx[s.ID] = s
	}
	return idx
}

// findSpan returns the first span matching pred, or nil.
func findSpan(spans []*obs.Span, pred func(*obs.Span) bool) *obs.Span {
	for _, s := range spans {
		if pred(s) {
			return s
		}
	}
	return nil
}

// countSpans counts spans matching pred.
func countSpans(spans []*obs.Span, pred func(*obs.Span) bool) int {
	n := 0
	for _, s := range spans {
		if pred(s) {
			n++
		}
	}
	return n
}

// byKind builds a kind/peer/service predicate; empty fields match anything.
func byKind(kind string, peer p2p.PeerID, service string) func(*obs.Span) bool {
	return func(s *obs.Span) bool {
		return (kind == "" || s.Kind == kind) &&
			(peer == "" || s.Peer == string(peer)) &&
			(service == "" || s.Service == service)
	}
}

// ancestry walks the parent chain of s and returns "<kind>@<peer>" hops,
// nearest first, stopping at the root or an unknown parent.
func ancestry(idx map[string]*obs.Span, s *obs.Span) []string {
	var hops []string
	for cur := idx[s.Parent]; cur != nil; cur = idx[cur.Parent] {
		hops = append(hops, cur.Kind+"@"+cur.Peer)
		if cur.Parent == "" {
			break
		}
	}
	return hops
}

// TestTraceShapeFig1Commit runs the paper's Figure 1 transaction to commit
// and checks that the emitted span tree mirrors the invocation chain
// [AP1* → [AP2] || [AP3 → [AP4] || [AP5 → AP6]]] across all six peers.
func TestTraceShapeFig1Commit(t *testing.T) {
	ring := obs.NewRing(0)
	c := newCluster(t)
	c.sink = ring
	f := buildFig1(t, c, "")

	txc := f.origin.Begin()
	if _, err := f.origin.Exec(bg, txc, f.q); err != nil {
		t.Fatal(err)
	}
	if err := f.origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// Commit notifications cascade asynchronously; every participant emits
	// a commit span (origin + 5 participants).
	waitFor(t, func() bool {
		return countSpans(ring.Trace(txc.ID), byKind(obs.KindCommit, "", "")) == 6
	})

	spans := ring.Trace(txc.ID)
	idx := spanIndex(spans)
	tree := obs.Tree(spans)
	if len(tree) != 1 {
		t.Fatalf("trace has %d roots, want 1 (span context lost somewhere)", len(tree))
	}
	root := tree[0].Span
	if root.Kind != obs.KindTxn || root.Peer != "AP1" || root.Outcome != obs.OutcomeOK {
		t.Fatalf("root span = %s@%s outcome=%s", root.Kind, root.Peer, root.Outcome)
	}
	wantChain := "[AP1* → [AP2] || [AP3 → [AP4] || [AP5 → AP6]]]"
	if root.Chain != wantChain {
		t.Errorf("root chain = %s, want %s", root.Chain, wantChain)
	}
	for _, s := range spans {
		if s.Txn != txc.ID {
			t.Fatalf("span %s carries txn %q", s.ID, s.Txn)
		}
		if s.Outcome != obs.OutcomeOK {
			t.Errorf("span %s %s@%s outcome=%s code=%s err=%s",
				s.ID, s.Kind, s.Peer, s.Outcome, s.Code, s.Err)
		}
	}

	// The deepest branch: S6 served at AP6 under AP5's materialization of
	// S5, itself under AP3's materialization of S3, started by AP1's Exec.
	s6 := findSpan(spans, byKind(obs.KindServe, "AP6", "S6"))
	if s6 == nil {
		t.Fatal("no serve span for S6@AP6")
	}
	want := []string{
		"invoke@AP5", "serve@AP5", // S6 invoked during AP5's serve of S5
		"invoke@AP3", "serve@AP3", // S5 invoked during AP3's serve of S3
		"invoke@AP1", "exec@AP1", "txn@AP1", // S3 embedded in AP1's Exec
	}
	got := ancestry(idx, s6)
	if len(got) != len(want) {
		t.Fatalf("S6 ancestry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("S6 ancestry[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	// Sibling branches hang off the same exec span.
	for _, svc := range []struct {
		peer    p2p.PeerID
		service string
	}{{"AP2", "S2"}, {"AP4", "S4"}} {
		if findSpan(spans, byKind(obs.KindServe, svc.peer, svc.service)) == nil {
			t.Errorf("no serve span for %s@%s", svc.service, svc.peer)
		}
	}
	// Leaf work is WAL-logged: the serve span brackets its LSN range.
	if s6.FirstLSN == 0 || s6.LastLSN < s6.FirstLSN {
		t.Errorf("S6 serve LSN range = [%d,%d]", s6.FirstLSN, s6.LastLSN)
	}
}

// TestTraceShapeFig1Abort injects the Figure 1 fault (AP5 fails during S5)
// and checks the error taxonomy on the spans plus the compensation spans of
// backward recovery at every participant.
func TestTraceShapeFig1Abort(t *testing.T) {
	ring := obs.NewRing(0)
	c := newCluster(t)
	c.sink = ring
	f := buildFig1(t, c, "")
	f.failS5.Store(true)

	txc := f.origin.Begin()
	_, err := f.origin.Exec(bg, txc, f.q)
	if err == nil {
		t.Fatal("expected TA to fail")
	}
	if ErrCode(err) != "fault:F5" {
		t.Fatalf("ErrCode = %q, want fault:F5 (err: %v)", ErrCode(err), err)
	}
	if err := f.origin.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	// Abort propagation is partly asynchronous; all six peers compensate.
	waitFor(t, func() bool {
		peers := map[string]bool{}
		for _, s := range ring.Trace(txc.ID) {
			if s.Kind == obs.KindCompensate {
				peers[s.Peer] = true
			}
		}
		return len(peers) == 6
	})

	spans := ring.Trace(txc.ID)
	root := findSpan(spans, byKind(obs.KindTxn, "AP1", ""))
	if root == nil {
		t.Fatal("no txn root span")
	}
	if root.Code != CodeCompensated {
		t.Errorf("root code = %q, want %q", root.Code, CodeCompensated)
	}
	// The failing invocation carries the fault code at every level it
	// crossed: AP5's serve of S5 and AP3's client-side invoke of it.
	for _, probe := range []struct {
		kind string
		peer p2p.PeerID
		svc  string
	}{{obs.KindServe, "AP5", "S5"}, {obs.KindInvoke, "AP3", "S5"}} {
		s := findSpan(spans, byKind(probe.kind, probe.peer, probe.svc))
		if s == nil {
			t.Errorf("no %s span for %s@%s", probe.kind, probe.svc, probe.peer)
			continue
		}
		if s.Outcome != obs.OutcomeError || s.Code != "fault:F5" {
			t.Errorf("%s %s@%s outcome=%s code=%q, want error/fault:F5",
				probe.kind, probe.svc, probe.peer, s.Outcome, s.Code)
		}
	}
	// Compensation spans record how many nodes they undid.
	comp := findSpan(spans, func(s *obs.Span) bool {
		return s.Kind == obs.KindCompensate && s.Peer == "AP6"
	})
	if comp == nil {
		t.Fatal("AP6 emitted no compensate span")
	}
	if comp.Attrs["nodes"] == "" || comp.Attrs["nodes"] == "0" {
		t.Errorf("AP6 compensate span nodes attr = %q", comp.Attrs["nodes"])
	}
}

// TestTraceContextCancellation checks the context-first API contract: an
// expired or cancelled ctx triggers backward recovery — the transaction is
// aborted, logged work is compensated, and the error matches ErrTimeout.
func TestTraceContextCancellation(t *testing.T) {
	t.Run("cancel before Exec", func(t *testing.T) {
		c := newCluster(t)
		p := c.add("AP1", Options{})
		if err := p.HostDocument("D.xml", `<D/>`); err != nil {
			t.Fatal(err)
		}
		snap, _ := p.Store().Snapshot("D.xml")
		txc := p.Begin()
		if _, err := p.Exec(bg, txc, mustInsert(t, `Select d from d in D`, `<x/>`)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := p.Exec(ctx, txc, mustInsert(t, `Select d from d in D`, `<y/>`))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if txc.Status() != StatusAborted {
			t.Fatalf("status = %s, want aborted", txc.Status())
		}
		live, _ := p.Store().Get("D.xml")
		if !live.Equal(snap) {
			t.Fatal("cancellation did not compensate the logged insert")
		}
		// Follow-up operations report the abort through the taxonomy.
		if _, err := p.Exec(bg, txc, mustInsert(t, `Select d from d in D`, `<z/>`)); !errors.Is(err, ErrAborted) {
			t.Fatalf("post-abort err = %v, want ErrAborted", err)
		}
	})

	t.Run("deadline before Commit", func(t *testing.T) {
		c := newCluster(t)
		p := c.add("AP1", Options{})
		if err := p.HostDocument("D.xml", `<D/>`); err != nil {
			t.Fatal(err)
		}
		snap, _ := p.Store().Snapshot("D.xml")
		txc := p.Begin()
		if _, err := p.Exec(bg, txc, mustInsert(t, `Select d from d in D`, `<x/>`)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if err := p.Commit(ctx, txc); !errors.Is(err, ErrTimeout) {
			t.Fatalf("commit err = %v, want ErrTimeout", err)
		}
		live, _ := p.Store().Get("D.xml")
		if !live.Equal(snap) {
			t.Fatal("deadline on commit did not compensate")
		}
	})
}

// TestErrorTaxonomy pins the errors.Is relations of the taxonomy, locally
// and across the wire.
func TestErrorTaxonomy(t *testing.T) {
	if !errors.Is(ErrCompensated, ErrAborted) {
		t.Error("ErrCompensated must match ErrAborted")
	}
	if !errors.Is(ErrPeerDown, p2p.ErrUnreachable) {
		t.Error("ErrPeerDown must match the transport's unreachable error")
	}

	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2.HostService(services.NewFuncService(services.Descriptor{Name: "boom", ResultName: "x"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "F9", Msg: "injected"}
		}))

	// Named faults survive the wire as *services.Fault.
	txc := ap1.Begin()
	_, err := ap1.Call(bg, txc, "AP2", "boom", nil)
	var fault *services.Fault
	if !errors.As(err, &fault) || fault.Name != "F9" {
		t.Fatalf("remote fault err = %v", err)
	}
	if ErrCode(err) != "fault:F9" {
		t.Errorf("ErrCode = %q", ErrCode(err))
	}

	// Unreachable peers surface as ErrPeerDown.
	c.net.Disconnect("AP2")
	if _, err := ap1.Call(bg, txc, "AP2", "boom", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("down-peer err = %v, want ErrPeerDown", err)
	}
	if err := ap1.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}

	// Operations on the aborted transaction match both abort sentinels.
	_, err = ap1.Call(bg, txc, "AP2", "boom", nil)
	if !errors.Is(err, ErrAborted) || !errors.Is(err, ErrCompensated) {
		t.Fatalf("aborted-txn err = %v, want ErrCompensated", err)
	}
}
