package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/p2p"
	"axmltx/internal/xmldom"
)

// fig1 builds the paper's Figure 1 topology:
//
//	AP1 (origin, TA) invokes S2@AP2 and S3@AP3;
//	AP3, processing S3, invokes S4@AP4 and S5@AP5;
//	AP5, processing S5, invokes S6@AP6.
//
// Every peer hosts a document; leaf services (S2, S4, S6) insert an entry
// into their local document; intermediate services are AXML query services
// over documents embedding service calls to their children, so the
// distributed nesting arises from lazy materialization exactly as in AXML.
// failS5, when set, makes AP5's local work fail with fault "F5" *after*
// S6 completed — the Figure 1 failure.
type fig1 struct {
	c       *cluster
	failS5  *atomic.Bool
	origin  *Peer
	peers   map[p2p.PeerID]*Peer
	snaps   map[p2p.PeerID]*xmldom.Document
	q       *axml.Action // the top-level operation driving TA at AP1
	rootDoc string
}

func buildFig1(t *testing.T, c *cluster, handlerXML string) *fig1 {
	t.Helper()
	f := &fig1{c: c, failS5: &atomic.Bool{}, peers: make(map[p2p.PeerID]*Peer), snaps: make(map[p2p.PeerID]*xmldom.Document)}

	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3", "AP4", "AP5", "AP6"} {
		opts := Options{}
		if id == "AP1" {
			opts.Super = true
		}
		f.peers[id] = c.add(id, opts)
	}
	f.origin = f.peers["AP1"]

	// Leaves: S2@AP2, S4@AP4, S6@AP6.
	hostEntryService(t, f.peers["AP2"], "S2", "D2.xml")
	hostEntryService(t, f.peers["AP4"], "S4", "D4.xml")
	hostEntryService(t, f.peers["AP6"], "S6", "D6.xml")

	// AP5: S5 = query over D5, which embeds a call to S6@AP6; the failS5
	// flag injects a fault into AP5's own processing after materialization.
	ap5 := f.peers["AP5"]
	if err := ap5.HostDocument("D5.xml", `<D5>
	  <axml:sc mode="replace" methodName="S6" serviceURL="AP6"/>
	  <fault trigger="maybe"/>
	</D5>`); err != nil {
		t.Fatal(err)
	}
	ap5.HostQueryService(servicesDescriptor("S5", "D5.xml"), `Select d/updateResult from d in D5`)
	// The fault is injected below the service: a faulting materializer
	// wrapper would be invasive, so instead S5's query service is wrapped.
	wrapWithFault(ap5, "S5", f.failS5, "F5")

	// AP3: S3 = query over D3 embedding S4@AP4 and S5@AP5 (handlerXML, if
	// any, attaches fault handlers to the S5 call — the paper's step 3).
	ap3 := f.peers["AP3"]
	if err := ap3.HostDocument("D3.xml", fmt.Sprintf(`<D3>
	  <axml:sc mode="replace" methodName="S4" serviceURL="AP4"/>
	  <axml:sc mode="replace" methodName="S5" serviceURL="AP5">%s</axml:sc>
	</D3>`, handlerXML)); err != nil {
		t.Fatal(err)
	}
	ap3.HostQueryService(servicesDescriptor("S3", "D3.xml"), `Select d/updateResult from d in D3`)

	// AP1: origin document embedding S2@AP2 and S3@AP3.
	if err := f.origin.HostDocument("D1.xml", `<D1>
	  <axml:sc mode="replace" methodName="S2" serviceURL="AP2"/>
	  <axml:sc mode="replace" methodName="S3" serviceURL="AP3"/>
	</D1>`); err != nil {
		t.Fatal(err)
	}
	f.rootDoc = "D1.xml"
	q, err := axml.ParseQuery(`Select d/updateResult from d in D1`)
	if err != nil {
		t.Fatal(err)
	}
	f.q = axml.NewQuery(q)

	for id, p := range f.peers {
		doc := "D" + strings.TrimPrefix(string(id), "AP") + ".xml"
		if snap, ok := p.Store().Snapshot(doc); ok {
			f.snaps[id] = snap
		}
	}
	return f
}

func (f *fig1) assertAllRestored(t *testing.T) {
	t.Helper()
	for id, snap := range f.snaps {
		doc := "D" + strings.TrimPrefix(string(id), "AP") + ".xml"
		live, ok := f.peers[id].Store().Get(doc)
		if !ok {
			t.Fatalf("%s: doc missing", id)
		}
		if !live.Equal(snap) {
			t.Errorf("%s: document not restored:\n%s", id, xmldom.MarshalString(live.Root()))
		}
	}
}

func TestFig1NestedRecoveryFullAbort(t *testing.T) {
	c := newCluster(t)
	f := buildFig1(t, c, "") // no fault handlers anywhere
	f.failS5.Store(true)

	txc := f.origin.Begin()
	_, err := f.origin.Exec(bg, txc, f.q)
	if err == nil {
		t.Fatal("expected TA to fail")
	}
	// Backward propagation reached the origin; the application aborts TA.
	if err := f.origin.Abort(bg, txc); err != nil {
		t.Fatal(err)
	}

	f.assertAllRestored(t)

	// The "Abort TA" message flow of Figure 1: AP5→AP6, AP3→AP4, AP1→AP2.
	for _, tc := range []struct {
		peer p2p.PeerID
		sent int64
		recv int64
	}{
		{"AP5", 1, 0}, // to AP6 (the reply to AP3 carries the abort upward)
		{"AP6", 0, 1},
		{"AP3", 1, 0}, // to AP4
		{"AP4", 0, 1},
		{"AP1", 1, 0}, // to AP2
		{"AP2", 0, 1},
	} {
		m := f.peers[tc.peer].Metrics()
		if m.AbortsSent.Load() != tc.sent || m.AbortsReceived.Load() != tc.recv {
			t.Errorf("%s: aborts sent=%d recv=%d, want %d/%d",
				tc.peer, m.AbortsSent.Load(), m.AbortsReceived.Load(), tc.sent, tc.recv)
		}
	}
	// Every participant that had effects compensated them.
	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3", "AP4", "AP5", "AP6"} {
		if f.peers[id].Metrics().Compensations.Load() == 0 {
			t.Errorf("%s never compensated", id)
		}
	}
}

func TestFig1SuccessCommitsEverywhere(t *testing.T) {
	c := newCluster(t)
	f := buildFig1(t, c, "")

	txc := f.origin.Begin()
	res, err := f.origin.Exec(bg, txc, f.q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Query.Items) == 0 {
		t.Fatal("no results")
	}
	// The chain recorded the full Figure 1 invocation tree.
	chain := txc.Chain()
	want := "[AP1* → [AP2] || [AP3 → [AP4] || [AP5 → AP6]]]"
	if got := chain.String(); got != want {
		t.Fatalf("chain = %s, want %s", got, want)
	}
	if err := f.origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	// Leaf effects persist.
	for _, id := range []p2p.PeerID{"AP2", "AP4", "AP6"} {
		doc := "D" + strings.TrimPrefix(string(id), "AP") + ".xml"
		if entryCount(t, f.peers[id], doc) != 1 {
			t.Errorf("%s: committed entry missing", id)
		}
	}
}

func TestFig1ForwardRecoveryViaReplica(t *testing.T) {
	// Fault handlers on the embedded S5 call at AP3 retry on a replica
	// provider AP5b; the transaction completes despite AP5's failure —
	// "undo only as much as required".
	c := newCluster(t)
	f := buildFig1(t, c, `<axml:catch faultName="F5"><axml:retry times="1"><axml:sc methodName="S5" serviceURL="AP5b"/></axml:retry></axml:catch>`)
	f.failS5.Store(true)

	// Replica of S5 at AP5b with its own copy of D5.
	ap5b := c.add("AP5b", Options{})
	if err := ap5b.HostDocument("D5.xml", `<D5>
	  <axml:sc mode="replace" methodName="S6" serviceURL="AP6"/>
	</D5>`); err != nil {
		t.Fatal(err)
	}
	ap5b.HostQueryService(servicesDescriptor("S5", "D5.xml"), `Select d/updateResult from d in D5`)

	txc := f.origin.Begin()
	if _, err := f.origin.Exec(bg, txc, f.q); err != nil {
		t.Fatal(err)
	}
	if err := f.origin.Commit(bg, txc); err != nil {
		t.Fatal(err)
	}

	m3 := f.peers["AP3"].Metrics()
	if m3.ForwardRecoveries.Load() != 1 {
		t.Fatalf("AP3 forward recoveries = %d", m3.ForwardRecoveries.Load())
	}
	// AP5's partial work was compensated; AP5b's is committed; AP6 was
	// invoked twice (once under AP5, aborted; once under AP5b, committed)
	// leaving exactly one live entry.
	live5, _ := f.peers["AP5"].Store().Get("D5.xml")
	if !live5.Equal(f.snaps["AP5"]) {
		t.Error("AP5 not restored")
	}
	if n := entryCount(t, f.peers["AP6"], "D6.xml"); n != 1 {
		t.Errorf("AP6 entries = %d, want 1", n)
	}
	// The other branches are untouched by the recovery.
	if n := entryCount(t, f.peers["AP4"], "D4.xml"); n != 1 {
		t.Errorf("AP4 entries = %d, want 1 (forward recovery must not undo siblings)", n)
	}
	if n := entryCount(t, f.peers["AP2"], "D2.xml"); n != 1 {
		t.Errorf("AP2 entries = %d, want 1", n)
	}
	if f.origin.Metrics().TxnsCommitted.Load() != 1 {
		t.Error("transaction did not commit")
	}
}
