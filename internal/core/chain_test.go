package core

import (
	"reflect"
	"testing"

	"axmltx/internal/p2p"
)

// fig2Chain builds the paper's example list
// [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]].
func fig2Chain() *Chain {
	c := NewChain("AP1", true)
	c = c.Add("AP1", "AP2", "S2", false)
	c = c.Add("AP2", "AP3", "S3", false)
	c = c.Add("AP3", "AP6", "S6", false)
	c = c.Add("AP2", "AP4", "S4", false)
	c = c.Add("AP4", "AP5", "S5", false)
	return c
}

func TestChainStringMatchesPaperNotation(t *testing.T) {
	got := fig2Chain().String()
	want := "[AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]"
	if got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}

func TestChainRelationships(t *testing.T) {
	c := fig2Chain()
	if c.ParentOf("AP6") != "AP3" || c.ParentOf("AP3") != "AP2" || c.ParentOf("AP1") != "" {
		t.Fatal("ParentOf")
	}
	if got := c.ChildrenOf("AP2"); !reflect.DeepEqual(got, []p2p.PeerID{"AP3", "AP4"}) {
		t.Fatalf("ChildrenOf(AP2) = %v", got)
	}
	if got := c.SiblingsOf("AP3"); !reflect.DeepEqual(got, []p2p.PeerID{"AP4"}) {
		t.Fatalf("SiblingsOf(AP3) = %v", got)
	}
	if got := c.SiblingsOf("AP1"); got != nil {
		t.Fatalf("SiblingsOf(origin) = %v", got)
	}
	if got := c.DescendantsOf("AP2"); !reflect.DeepEqual(got, []p2p.PeerID{"AP3", "AP6", "AP4", "AP5"}) {
		t.Fatalf("DescendantsOf(AP2) = %v", got)
	}
	if got := c.AncestorsOf("AP6"); !reflect.DeepEqual(got, []p2p.PeerID{"AP3", "AP2", "AP1"}) {
		t.Fatalf("AncestorsOf(AP6) = %v", got)
	}
	if c.Origin() != "AP1" {
		t.Fatal("Origin")
	}
	if c.ServiceAt("AP5") != "S5" || c.ServiceAt("AP1") != "" {
		t.Fatal("ServiceAt")
	}
	if !c.IsSuper("AP1") || c.IsSuper("AP2") {
		t.Fatal("IsSuper")
	}
	if len(c.Peers()) != 6 {
		t.Fatal("Peers")
	}
}

func TestChainClosestLiveAncestor(t *testing.T) {
	c := fig2Chain()
	// AP6 returning results finds AP3 dead; AP2 is next, then AP1.
	alive := func(id p2p.PeerID) bool { return id != "AP3" }
	if a, ok := c.ClosestLiveAncestor("AP6", alive); !ok || a != "AP2" {
		t.Fatalf("closest = %v, %v", a, ok)
	}
	alive2 := func(id p2p.PeerID) bool { return id != "AP3" && id != "AP2" }
	if a, ok := c.ClosestLiveAncestor("AP6", alive2); !ok || a != "AP1" {
		t.Fatalf("closest = %v, %v", a, ok)
	}
	dead := func(p2p.PeerID) bool { return false }
	if _, ok := c.ClosestLiveAncestor("AP6", dead); ok {
		t.Fatal("everyone dead but found an ancestor")
	}
	if a, ok := c.ClosestSuperAncestor("AP6"); !ok || a != "AP1" {
		t.Fatalf("super ancestor = %v, %v", a, ok)
	}
}

func TestChainAddIgnoresUnknownParentAndDuplicates(t *testing.T) {
	c := NewChain("AP1", false)
	c2 := c.Add("ghost", "AP2", "S", false)
	if len(c2.Nodes) != 1 {
		t.Fatal("unknown parent extended the chain")
	}
	c3 := c.Add("AP1", "AP2", "S", false)
	c4 := c3.Add("AP1", "AP2", "S-again", false)
	if len(c4.Nodes) != 2 {
		t.Fatal("duplicate child re-added")
	}
}

func TestChainCloneIndependent(t *testing.T) {
	c := fig2Chain()
	cp := c.Clone()
	cp.markSuper("AP2", true)
	if c.IsSuper("AP2") {
		t.Fatal("clone shares nodes")
	}
}

func TestChainSphereOfAtomicity(t *testing.T) {
	c := NewChain("AP1", true)
	c = c.Add("AP1", "AP2", "S", true)
	if !c.SphereOfAtomicity() {
		t.Fatal("all-super chain should guarantee atomicity")
	}
	c = c.Add("AP2", "AP3", "S", false)
	if c.SphereOfAtomicity() {
		t.Fatal("chain with a regular peer cannot guarantee atomicity")
	}
}

func TestChainStringSingleAndEmpty(t *testing.T) {
	if got := (&Chain{}).String(); got != "[]" {
		t.Fatalf("empty = %q", got)
	}
	c := NewChain("AP1", false)
	if got := c.String(); got != "[AP1]" {
		t.Fatalf("single = %q", got)
	}
	c = c.Add("AP1", "AP2", "S", false)
	if got := c.String(); got != "[AP1 → AP2]" {
		t.Fatalf("linear = %q", got)
	}
}

func TestChainUnknownPeerQueries(t *testing.T) {
	c := fig2Chain()
	if c.Contains("ghost") || c.ParentOf("ghost") != "" || c.ChildrenOf("ghost") != nil ||
		c.AncestorsOf("ghost") != nil || c.DescendantsOf("ghost") != nil {
		t.Fatal("unknown peer should yield empty results")
	}
	if _, ok := c.ClosestSuperAncestor("ghost"); ok {
		t.Fatal("unknown peer has a super ancestor")
	}
}
