package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/membership"
	"axmltx/internal/obs"
	obscluster "axmltx/internal/obs/cluster"
	"axmltx/internal/p2p"
	"axmltx/internal/replication"
	"axmltx/internal/services"
	"axmltx/internal/wal"
)

// Options configure a peer's transactional behaviour. The zero value is a
// regular (non-super) peer with peer-dependent recovery, chaining enabled
// and lazy evaluation.
type Options struct {
	// Super marks the peer as a trusted super peer that does not
	// disconnect (§3.3, starred peers).
	Super bool
	// PeerIndependent makes every served invocation return a
	// compensating-service definition with its results, enabling recovery
	// driven by any peer (§3.2).
	PeerIndependent bool
	// DisableChaining suppresses active-peer-list propagation — the
	// "traditional" baseline for the disconnection experiments.
	DisableChaining bool
	// EvalMode selects lazy or eager materialization; zero means Lazy.
	EvalMode axml.EvalMode
	// LockTimeout bounds document lock waits; zero means 2s.
	LockTimeout time.Duration
	// MaxConcurrentCalls caps how many of a materialization round's service
	// invocations may have their network waits in flight at once: 0 means
	// axml.DefaultMaxConcurrentCalls, 1 forces sequential materialization.
	MaxConcurrentCalls int
	// TraceSink receives every span the engine emits (one per Exec, Call,
	// invocation, compensation, retry, redirect…); nil disables tracing. A
	// sink chain containing an *obs.Sampler enables adaptive tail-based
	// sampling: the engine discovers it, propagates its keep/drop decision
	// with every remote invocation, and force-keeps slow transactions.
	TraceSink obs.Sink
	// MetricsRegistry, when set, receives the peer's protocol counters and
	// latency histograms under the shared axml_* schema.
	MetricsRegistry *obs.Registry
	// SlowTxn is the latency above which an origin transaction is reported
	// to SlowTxnLog and force-kept by the sampler; zero disables the hook.
	SlowTxn time.Duration
	// SlowTxnLog receives origin transactions slower than SlowTxn. outcome
	// is "committed" or "aborted". Nil falls back to sampler force-keep only.
	SlowTxnLog func(txn string, d time.Duration, outcome string)
	// Membership, when set, binds a SWIM gossip instance (built over the
	// same transport) to this peer: the replica table is populated/pruned
	// from the gossiped catalog and ranked by liveness + observed RTT,
	// failure detection drives the disconnection protocol (OnPeerDown),
	// Host* registrations are announced to the network, and successful
	// remote invokes feed the RTT estimator.
	Membership *membership.Gossip
	// CallCacheCapacity, when positive, enables the semantic
	// materialization cache: results of embedded service calls are cached
	// under (service, canonicalized params, freshness window) and served
	// without re-invocation while fresh, with singleflight dedupe of
	// concurrent identical calls and — when Membership is set — cluster-wide
	// dedupe through gossip call advertisements. The value bounds the
	// number of completed entries kept.
	CallCacheCapacity int
	// CacheTTL is the freshness window applied to cacheable calls that
	// declare no frequency attribute; zero leaves such calls uncached
	// (only frequency-carrying calls hit the cache).
	CacheTTL time.Duration
	// SLO configures the cluster observability plane's objectives (latency
	// target/quantile, availability, burn-rate window). The plane itself is
	// created whenever both Membership and MetricsRegistry are set; SLO
	// only tunes its judgment and defaults sensibly when zero.
	SLO obscluster.SLOConfig
}

// FaultHook is application-specific fault-handler code attached to
// <axml:catch> blocks (the paper's "<!-- handle the fault --> part can be
// ... some Java code"). Returning nil means the fault is handled (forward
// recovery); returning an error propagates it.
type FaultHook func(txn string, sc *axml.ServiceCall, faultName string) error

// Peer is an AXML peer: a document store, a service registry, and the
// transactional engine implementing the paper's protocols over a Transport.
type Peer struct {
	id        p2p.PeerID
	opts      Options
	transport p2p.Transport
	store     *axml.Store
	registry  *services.Registry
	replicas  *replication.Table
	mgr       *Manager
	locks     *LockTable
	metrics   *Metrics
	tracer    *obs.Tracer
	sampler   *obs.Sampler
	cache     *callCache // nil unless Options.CallCacheCapacity > 0
	plane     *obscluster.Plane

	// Latency histograms (nil-safe: stay nil without a MetricsRegistry).
	histMaterialize *obs.Histogram
	histInvoke      *obs.Histogram
	histWALSync     *obs.Histogram
	histCompensate  *obs.Histogram

	mu         sync.Mutex
	faultHooks map[string]FaultHook // key: service + "/" + faultName
	onResult   func(txn string, resp *InvokeResponse)
	onDown     func(txn string, dead p2p.PeerID)
	streamSink func(batch *StreamBatch)

	// Document-sharding state (shard.go): access-heat scores, shadow copies
	// retained across migration handoffs, and the placement loop.
	frag fragState
}

// NewPeer assembles a peer on the given transport and installs its message
// handler (wrapped to answer pings).
func NewPeer(transport p2p.Transport, log wal.Log, opts Options) *Peer {
	if opts.EvalMode == 0 {
		opts.EvalMode = axml.Lazy
	}
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 2 * time.Second
	}
	p := &Peer{
		id:         transport.Self(),
		opts:       opts,
		transport:  transport,
		store:      axml.NewStore(log),
		registry:   services.NewRegistry(),
		replicas:   replication.New(),
		mgr:        NewManager(transport.Self()),
		locks:      NewLockTable(opts.LockTimeout),
		metrics:    &Metrics{},
		faultHooks: make(map[string]FaultHook),
	}
	p.store.SetMaxConcurrentCalls(opts.MaxConcurrentCalls)
	if opts.CallCacheCapacity > 0 {
		p.cache = newCallCache(opts.CallCacheCapacity)
	}
	p.tracer = obs.NewTracer(string(p.id), opts.TraceSink)
	p.sampler = obs.FindSampler(opts.TraceSink)
	if reg := opts.MetricsRegistry; reg != nil {
		p.RegisterObservability(reg)
	}
	p.frag.init()
	handler := p.handle
	if m := opts.Membership; m != nil {
		// Gossip keeps the replica table current and ranked; failure
		// detection feeds the §3.3 disconnection protocol.
		m.SetTable(p.replicas)
		m.OnDown(func(dead p2p.PeerID) {
			p.OnPeerDown(dead)
			// A dead peer may have been the destination of a fragment
			// handoff; re-promote any shadow copy it stranded.
			p.ReconcileFragments()
		})
		if opts.MetricsRegistry != nil {
			// The cluster observability plane: the local registry is
			// snapshotted each gossip round and piggybacked on sync
			// exchanges; summaries received from other peers merge into the
			// plane, and membership's death verdicts / TTL expiry drop them.
			p.plane = obscluster.NewPlane(string(p.id), opts.MetricsRegistry, opts.SLO)
			m.SetSummarySource(p.plane.Capture)
			m.OnSummary(func(s membership.PeerSummary) { _ = p.plane.Apply(s.Payload) })
			m.OnSummaryDrop(func(dead p2p.PeerID) { p.plane.Drop(string(dead)) })
		}
		handler = m.Intercept(handler)
	}
	transport.SetHandler(p2p.AnswerPings(handler))
	return p
}

// Membership returns the gossip instance bound via Options.Membership, or
// nil when the peer runs with a static replica table.
func (p *Peer) Membership() *membership.Gossip { return p.opts.Membership }

// Cluster returns the peer's cluster observability plane, or nil when the
// peer runs without both Membership and MetricsRegistry.
func (p *Peer) Cluster() *obscluster.Plane { return p.plane }

// noteInvokeRTT feeds a successful remote-invoke round trip into the
// membership RTT estimator (replica ranking), when gossip is enabled.
func (p *Peer) noteInvokeRTT(target p2p.PeerID, d time.Duration) {
	if m := p.opts.Membership; m != nil {
		m.ObserveRTT(target, d)
	}
}

// RegisterObservability exports the peer's protocol counters into reg and
// creates its latency histograms there. Called from NewPeer when Options
// carry a registry; callable later for peers constructed without one.
func (p *Peer) RegisterObservability(reg *obs.Registry) {
	peer := string(p.id)
	p.metrics.Register(reg, peer)
	obs.RegisterProcessMetrics(reg, peer)
	labels := obs.Labels{"peer": peer}
	p.histMaterialize = reg.Histogram("axml_materialize_seconds", labels)
	p.histInvoke = reg.Histogram("axml_invoke_seconds", labels)
	p.histWALSync = reg.Histogram("axml_wal_sync_seconds", labels)
	p.histCompensate = reg.Histogram("axml_compensate_seconds", labels)
	if p.cache != nil {
		reg.Gauge("axml_cache_entries", labels, p.cache.entryCount)
		reg.Gauge("axml_cache_inflight", labels, p.cache.inflightCount)
		reg.Gauge("axml_cache_hit_ratio_pct", labels, func() int64 {
			served := p.metrics.CacheHits.Load() + p.metrics.CacheWaits.Load() +
				p.metrics.CacheFetches.Load()
			total := served + p.metrics.CacheMisses.Load()
			if total == 0 {
				return 0
			}
			return served * 100 / total
		})
	}
	p.store.SetApplyObserver(func(d time.Duration) { p.histMaterialize.Observe(d) })
	if seg, ok := p.store.Log().(*wal.SegmentedLog); ok {
		// Make log compaction visible on /metrics and in traces: a gauge for
		// the current segment count and a wal-compact span per compaction.
		reg.Gauge("axml_wal_segments", labels, func() int64 { return int64(seg.Segments()) })
		seg.SetOnCompact(func(removed, remaining int) {
			sp := p.tracer.Start("wal", "", obs.KindCompact, "")
			sp.SetAttr("removed", strconv.Itoa(removed))
			sp.SetAttr("segments", strconv.Itoa(remaining))
			sp.End("", nil)
		})
	}
}

// Tracer returns the peer's span tracer (nil when tracing is disabled).
func (p *Peer) Tracer() *obs.Tracer { return p.tracer }

// syncLog runs the WAL durability barrier and feeds its latency histogram.
func (p *Peer) syncLog() error {
	start := time.Now()
	err := p.store.Log().Sync()
	p.histWALSync.Observe(time.Since(start))
	return err
}

// chainStr renders the context's active-peer list for span snapshots.
func chainStr(txc *Context) string {
	if ch := txc.Chain(); ch != nil {
		return ch.String()
	}
	return ""
}

// errStatus reports an operation on a non-active transaction, typed so
// errors.Is(err, ErrAborted/ErrCompensated) holds after an abort.
func errStatus(txc *Context) error {
	switch st := txc.Status(); st {
	case StatusAborted:
		if txc.wasCompensated() {
			return fmt.Errorf("core: transaction %s: %w", txc.ID, ErrCompensated)
		}
		return fmt.Errorf("core: transaction %s: %w", txc.ID, ErrAborted)
	default:
		return fmt.Errorf("core: transaction %s is %s", txc.ID, st)
	}
}

// checkCtx maps an expired or cancelled public-API context to the paper's
// backward recovery: the transaction is aborted (with compensation) and the
// caller gets ErrTimeout.
func (p *Peer) checkCtx(ctx context.Context, txc *Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	_ = p.abortContext(txc, "", true)
	return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
}

// ID returns the peer's identity.
func (p *Peer) ID() p2p.PeerID { return p.id }

// Super reports whether this peer is a super peer.
func (p *Peer) Super() bool { return p.opts.Super }

// Store returns the peer's document store.
func (p *Peer) Store() *axml.Store { return p.store }

// Registry returns the peer's service registry.
func (p *Peer) Registry() *services.Registry { return p.registry }

// Replicas returns the peer's replication table.
func (p *Peer) Replicas() *replication.Table { return p.replicas }

// Metrics returns the peer's protocol counters.
func (p *Peer) Metrics() *Metrics { return p.metrics }

// Manager returns the peer's transaction manager.
func (p *Peer) Manager() *Manager { return p.mgr }

// Transport returns the peer's transport.
func (p *Peer) Transport() p2p.Transport { return p.transport }

// RegisterFaultHook installs application handler code for a service's
// fault. faultName "" registers the catchAll hook.
func (p *Peer) RegisterFaultHook(service, faultName string, hook FaultHook) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faultHooks[service+"/"+faultName] = hook
}

func (p *Peer) faultHook(service, faultName string) (FaultHook, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.faultHooks[service+"/"+faultName]; ok {
		return h, true
	}
	h, ok := p.faultHooks[service+"/"]
	return h, ok
}

// OnResult installs a callback for asynchronously pushed invocation
// results (including redirected ones).
func (p *Peer) OnResult(fn func(txn string, resp *InvokeResponse)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onResult = fn
}

// OnPeerDownHook installs a callback fired after the engine processes a
// disconnection it detected or was notified of.
func (p *Peer) OnPeerDownHook(fn func(txn string, dead p2p.PeerID)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onDown = fn
}

// OnStream installs the sink for continuous-service batches streamed to
// this peer.
func (p *Peer) OnStream(fn func(batch *StreamBatch)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.streamSink = fn
}

// HostDocument parses and registers a document on this peer and records
// the replica in the local replication table.
func (p *Peer) HostDocument(name, xml string) error {
	if _, err := p.store.AddParsed(name, xml); err != nil {
		return err
	}
	p.replicas.AddDocument(name, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceDocument(name)
	}
	return nil
}

// HostQueryService registers a query service bound to this peer's store,
// with this peer as materializer (embedded calls reach remote providers)
// and announces it in the replication table.
func (p *Peer) HostQueryService(desc services.Descriptor, template string) {
	p.registry.Register(services.NewQueryService(desc, p.store, template, p, p.opts.EvalMode))
	p.replicas.AddService(desc.Name, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceService(desc.Name)
	}
}

// HostUpdateService registers an update service bound to this peer's store.
func (p *Peer) HostUpdateService(desc services.Descriptor, template string) {
	p.registry.Register(services.NewUpdateService(desc, p.store, template, p))
	p.replicas.AddService(desc.Name, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceService(desc.Name)
	}
}

// HostService registers an arbitrary service implementation.
func (p *Peer) HostService(svc services.Service) {
	p.registry.Register(svc)
	p.replicas.AddService(svc.Descriptor().Name, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceService(svc.Descriptor().Name)
	}
}

// Begin starts a transaction at this (origin) peer.
func (p *Peer) Begin() *Context {
	id := p.mgr.NewTxnID()
	ctx := p.mgr.Begin(id, p.opts.Super)
	ctx.rootSpan = p.tracer.Start(id, "", obs.KindTxn, "")
	ctx.swapSpanID(ctx.rootSpan.ID())
	p.metrics.TxnsBegun.Add(1)
	_, _ = p.store.Log().Append(&wal.Record{Txn: id, Type: wal.TypeBegin})
	return ctx
}

// Exec applies an AXML action locally within the transaction, with this
// peer as materializer (so embedded service calls reach remote peers).
// Errors do not abort the transaction by themselves: the paper's nested
// recovery lets the application decide between forward recovery and abort.
// An expired ctx aborts the transaction with compensation (ErrTimeout).
func (p *Peer) Exec(ctx context.Context, txc *Context, action *axml.Action) (*axml.Result, error) {
	if txc.Status() != StatusActive {
		return nil, errStatus(txc)
	}
	if err := p.checkCtx(ctx, txc); err != nil {
		return nil, err
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindExec, "")
	if doc := action.DocName(); doc != "" {
		sp.SetAttr("doc", doc)
	}
	prevCtx := txc.swapCallCtx(ctx)
	prevSpan := txc.swapSpanID(sp.ID())
	defer func() {
		txc.swapCallCtx(prevCtx)
		txc.swapSpanID(prevSpan)
	}()
	res, err := p.execLocked(txc, action)
	if res != nil {
		sp.SetLSNRange(res.FirstLSN, res.LastLSN)
	}
	if err == nil && action.Type != axml.ActionQuery {
		// A local write touching a document drops every cache entry
		// recorded against it and withdraws its advertisements.
		p.invalidateDocCache(action.DocName())
	}
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	return res, err
}

func (p *Peer) execLocked(txc *Context, action *axml.Action) (*axml.Result, error) {
	if doc := action.DocName(); doc != "" {
		if err := p.locks.Acquire(txc.ID, doc, lockModeFor(action)); err != nil {
			return nil, &services.Fault{Name: "lock-timeout", Msg: err.Error(), Err: ErrTimeout}
		}
	}
	return p.store.Apply(txc.ID, action, p, p.opts.EvalMode)
}

// lockModeFor picks the document lock mode. Every action takes exclusive:
// updates obviously write, and queries may write too because lazy
// evaluation materializes service calls into the document — the "active"
// nature of AXML documents that §2 argues defeats classic XML lock
// protocols.
func lockModeFor(a *axml.Action) LockMode {
	return LockExclusive
}

// Call invokes a service within the transaction from the top level (not
// via an embedded call): locally when this peer provides it, remotely
// otherwise. It returns the result fragments. An expired ctx aborts the
// transaction with compensation (ErrTimeout).
func (p *Peer) Call(ctx context.Context, txc *Context, target p2p.PeerID, service string, params map[string]string) ([]string, error) {
	if txc.Status() != StatusActive {
		return nil, errStatus(txc)
	}
	if err := p.checkCtx(ctx, txc); err != nil {
		return nil, err
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCall, service)
	sp.SetTarget(string(target))
	prevCtx := txc.swapCallCtx(ctx)
	prevSpan := txc.swapSpanID(sp.ID())
	defer func() {
		txc.swapCallCtx(prevCtx)
		txc.swapSpanID(prevSpan)
	}()
	resp, err := p.invokeOnce(txc, target, service, params, false)
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	if err != nil {
		return nil, err
	}
	return resp.Fragments, nil
}

// CallAsync invokes a remote service within the transaction without
// waiting for the result: the callee acknowledges, executes, and pushes the
// result back as a KindResult message (delivered to the OnResult callback
// and recorded as a child invocation). This is the data-flow of the
// disconnection scenarios: a child returning results may find its parent
// gone (§3.3 case b).
func (p *Peer) CallAsync(ctx context.Context, txc *Context, target p2p.PeerID, service string, params map[string]string) error {
	if txc.Status() != StatusActive {
		return errStatus(txc)
	}
	if err := p.checkCtx(ctx, txc); err != nil {
		return err
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCall, service)
	sp.SetTarget(string(target))
	prevCtx := txc.swapCallCtx(ctx)
	prevSpan := txc.swapSpanID(sp.ID())
	defer func() {
		txc.swapCallCtx(prevCtx)
		txc.swapSpanID(prevSpan)
	}()
	_, err := p.invokeOnce(txc, target, service, params, true)
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	return err
}

// Commit makes the transaction's effects permanent everywhere: the local
// commit record is written, locks released, and commit notifications
// cascade to every participant. An expired ctx aborts instead (backward
// recovery) and returns ErrTimeout.
func (p *Peer) Commit(ctx context.Context, txc *Context) error {
	if err := p.checkCtx(ctx, txc); err != nil {
		return err
	}
	if !txc.transition(StatusCommitted) {
		return fmt.Errorf("core: commit of %s transaction %s", txc.Status(), txc.ID)
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCommit, "")
	_, err := p.store.Log().Append(&wal.Record{Txn: txc.ID, Type: wal.TypeCommit})
	if err == nil {
		// Explicit durability barrier: under relaxed per-record syncing the
		// commit record — the decision — must still hit disk before commit
		// notifications fan out.
		err = p.syncLog()
	}
	p.locks.ReleaseAll(txc.ID)
	if txc.Self == txc.Origin {
		p.metrics.TxnsCommitted.Add(1)
	}
	for _, child := range txc.Children() {
		// Best effort: a participant that vanished after completing its
		// work simply never learns of the commit; its effects are already
		// in place.
		_ = p.transport.Send(context.Background(), child.Peer,
			&p2p.Message{Kind: p2p.KindCommit, Txn: txc.ID})
	}
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	p.noteSlowTxn(txc, "committed")
	txc.rootSpan.SetChain(chainStr(txc))
	txc.rootSpan.End(ErrCode(err), err)
	return err
}

// noteSlowTxn applies the slow-transaction hook at an origin terminal:
// transactions slower than Options.SlowTxn are force-kept by the sampler
// (before the root span flushes the buffer) and reported to SlowTxnLog.
// Must run before the root span's End.
func (p *Peer) noteSlowTxn(txc *Context, outcome string) {
	if p.opts.SlowTxn <= 0 || txc.began.IsZero() {
		return
	}
	d := time.Since(txc.began)
	if d < p.opts.SlowTxn {
		return
	}
	p.sampler.ForceKeep(txc.ID)
	if p.opts.SlowTxnLog != nil {
		p.opts.SlowTxnLog(txc.ID, d, outcome)
	}
}

// Abort rolls the transaction back: local effects are compensated and
// abort/compensation messages propagate to the participants (§3.2).
func (p *Peer) Abort(ctx context.Context, txc *Context) error {
	return p.abortContext(txc, "", true)
}

// handle dispatches incoming protocol messages.
func (p *Peer) handle(ctx context.Context, msg *p2p.Message) (*p2p.Message, error) {
	switch msg.Kind {
	case p2p.KindInvoke:
		return p.handleInvoke(msg)
	case p2p.KindAbort:
		p.handleAbort(msg)
		return &p2p.Message{Kind: "abort-ack"}, nil
	case p2p.KindCommit:
		p.handleCommit(msg)
		return &p2p.Message{Kind: "commit-ack"}, nil
	case p2p.KindCompensate:
		return p.handleCompensate(msg)
	case p2p.KindResult:
		p.handleResult(msg)
		return &p2p.Message{Kind: "result-ack"}, nil
	case p2p.KindRedirect:
		return p.handleRedirect(msg)
	case p2p.KindDisconnect:
		p.handleDisconnect(msg)
		return &p2p.Message{Kind: "disconnect-ack"}, nil
	case p2p.KindStream:
		p.handleStream(msg)
		return &p2p.Message{Kind: "stream-ack"}, nil
	case p2p.KindChainUpdate:
		p.handleChainUpdate(msg)
		return &p2p.Message{Kind: "chain-ack"}, nil
	case p2p.KindCompDef:
		p.handleCompDef(msg)
		return &p2p.Message{Kind: "compdef-ack"}, nil
	case p2p.KindCacheFetch:
		return p.handleCacheFetch(msg)
	case p2p.KindFragFetch:
		return p.handleFragFetch(msg)
	case p2p.KindFragMigrate:
		return p.handleFragMigrate(msg)
	case p2p.KindAdmin:
		return p.handleAdmin(msg)
	default:
		return nil, fmt.Errorf("core: peer %s: unknown message kind %q", p.id, msg.Kind)
	}
}

// handleAdmin serves directory-style requests (service descriptors), used
// by cmd/axmlquery and remote tooling.
func (p *Peer) handleAdmin(msg *p2p.Message) (*p2p.Message, error) {
	switch msg.Subject {
	case "descriptors":
		var out string
		for _, name := range p.registry.Names() {
			if svc, ok := p.registry.Get(name); ok {
				out += svc.Descriptor().XML()
			}
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Payload: []byte("<services>" + out + "</services>")}, nil
	case "documents":
		var out string
		for _, name := range p.store.Names() {
			out += "<document>" + name + "</document>"
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Payload: []byte("<documents>" + out + "</documents>")}, nil
	case "members":
		m := p.opts.Membership
		if m == nil {
			return nil, fmt.Errorf("core: peer %s runs without gossip membership", p.id)
		}
		payload, err := json.Marshal(m.Info())
		if err != nil {
			return nil, err
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Payload: payload}, nil
	case "cluster":
		if p.plane == nil {
			return nil, fmt.Errorf("core: peer %s runs without the cluster observability plane", p.id)
		}
		payload, err := json.Marshal(p.plane.View())
		if err != nil {
			return nil, err
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Payload: payload}, nil
	case "metrics":
		reg := p.obsRegistry()
		if reg == nil {
			return nil, fmt.Errorf("core: peer %s exports no metrics registry", p.id)
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			return nil, err
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Payload: []byte(b.String())}, nil
	case "trace":
		ring := ringSink(p.opts.TraceSink)
		if ring == nil {
			return nil, fmt.Errorf("core: peer %s keeps no trace ring", p.id)
		}
		spans := ring.Trace(msg.Txn)
		if len(spans) == 0 {
			if p.sampler.WasSampledOut(msg.Txn) {
				payload, err := json.Marshal(obs.TraceResponse{Txn: msg.Txn, SampledOut: true})
				if err != nil {
					return nil, err
				}
				return &p2p.Message{Kind: p2p.KindAdmin, Txn: msg.Txn, Payload: payload}, nil
			}
			return nil, fmt.Errorf("core: no spans for transaction %q at %s", msg.Txn, p.id)
		}
		payload, err := json.Marshal(obs.TraceResponse{Txn: msg.Txn, Spans: len(spans), Tree: obs.Tree(spans)})
		if err != nil {
			return nil, err
		}
		return &p2p.Message{Kind: p2p.KindAdmin, Txn: msg.Txn, Payload: payload}, nil
	default:
		return nil, fmt.Errorf("core: unknown admin subject %q", msg.Subject)
	}
}

func (p *Peer) obsRegistry() *obs.Registry { return p.opts.MetricsRegistry }

// ringSink digs the queryable ring buffer out of a (possibly fanned-out,
// possibly sampled) trace sink configuration.
func ringSink(s obs.Sink) *obs.Ring {
	switch v := s.(type) {
	case *obs.Ring:
		return v
	case *obs.Sampler:
		return ringSink(v.Next())
	case obs.Multi:
		for _, sub := range v {
			if r := ringSink(sub); r != nil {
				return r
			}
		}
	}
	return nil
}
