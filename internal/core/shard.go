package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/membership"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/shard"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Document sharding: a hosted document can be split into subtree fragments
// (internal/axml) that are placed across peers through the gossip replica
// catalog and reassembled on demand. A placement loop scores per-fragment
// access heat from fetch traffic (weighted by the paper's affected-nodes
// cost measure) and migrates hot fragments toward their dominant callers.
//
// A migration is a WAL-logged handoff with compensation by retention: the
// source ships the fragment at Version+1, logs the handoff, and keeps a
// shadow copy until the catalog shows a live holder. Readers racing the
// handoff prefer the highest advertised version, so they observe either
// complete copy but never a torn fragment; if the destination dies before
// the catalog confirms it, the shadow copy is re-promoted (§3.1's
// compensation discipline applied to placement instead of document state).

// shadowEntry is one retained post-handoff copy: the fragment at its
// shipped version plus the destination the handoff went to, so reconcile
// can distinguish "not yet confirmed" from "destination died".
type shadowEntry struct {
	frag *axml.Fragment
	dest p2p.PeerID
}

// fragState is the per-peer sharding state hanging off Peer.
type fragState struct {
	mu     sync.Mutex
	heat   *shard.Heat
	shadow map[axml.FragmentID]shadowEntry
	seq    uint64 // migration WAL-txn counter
}

func (fs *fragState) init() {
	fs.heat = shard.NewHeat()
	fs.shadow = make(map[axml.FragmentID]shadowEntry)
}

// nextMigTxn returns the WAL transaction ID for the next migration.
func (fs *fragState) nextMigTxn(self p2p.PeerID) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.seq++
	return "frag-mig-" + string(self) + "-" + strconv.FormatUint(fs.seq, 10)
}

// ShardHostedDocument splits a hosted document into spine + fragments and
// advertises every piece through the catalog. The whole document is
// replaced by its sharded form; materialize it again with
// AssembleSharded.
func (p *Peer) ShardHostedDocument(name string, threshold int) error {
	_, frags, err := p.store.ShardDocument(name, threshold)
	if err != nil {
		return err
	}
	spineID := string(axml.SpineFragmentID(name))
	p.replicas.AddFragment(spineID, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceFragment(membership.FragAd{ID: spineID, Doc: name, Spine: true})
	}
	for _, f := range frags {
		p.replicas.AddFragment(string(f.ID), p.id)
		if m := p.opts.Membership; m != nil {
			m.AnnounceFragment(fragAdOf(f))
		}
	}
	return nil
}

// handleFragFetch serves a fragment (or spine) to an assembling peer and
// attributes the serve cost to the caller's heat score.
func (p *Peer) handleFragFetch(msg *p2p.Message) (*p2p.Message, error) {
	var req FragFetchRequest
	if err := decode(msg.Payload, &req); err != nil {
		return nil, err
	}
	resp := FragFetchResponse{ID: req.ID}
	if doc, ok := spineDoc(req.ID); ok {
		if spine, held := p.store.Spine(doc); held {
			resp.Found = true
			resp.Doc = doc
			resp.XML = spine
			if manifest, ok := p.store.Manifest(doc); ok {
				resp.Manifest = make([]string, len(manifest))
				for i, id := range manifest {
					resp.Manifest[i] = string(id)
				}
			}
		}
	} else if f, ok := p.store.GetFragment(axml.FragmentID(req.ID)); ok {
		resp.Found = true
		resp.Doc = f.Doc
		resp.Root = uint64(f.Root)
		resp.Parent = uint64(f.Parent)
		resp.Pos = f.Pos
		resp.XML = f.XML
		resp.Nodes = f.Nodes
		resp.Version = f.Version
		// Heat attribution: weight by subtree size, the cost this serve
		// represents for the caller's assembly.
		p.frag.heat.Observe(req.ID, string(msg.From), float64(f.Nodes))
	}
	return &p2p.Message{Kind: p2p.KindFragFetch, Payload: encode(&resp)}, nil
}

// spineDoc reports whether id is a "<doc>#spine" pseudo-ID and extracts the
// document name.
func spineDoc(id string) (string, bool) {
	const suffix = "#spine"
	if len(id) > len(suffix) && id[len(id)-len(suffix):] == suffix {
		return id[:len(id)-len(suffix)], true
	}
	return "", false
}

// FetchFragment returns the named fragment, from the local store when held
// here (local access still feeds heat, so a fragment whose traffic is
// already local stays put) or from a catalog-advertised holder otherwise.
func (p *Peer) FetchFragment(ctx context.Context, id axml.FragmentID) (*axml.Fragment, error) {
	if f, ok := p.store.GetFragment(id); ok {
		p.frag.heat.Observe(string(id), string(p.id), float64(f.Nodes))
		return f, nil
	}
	resp, err := p.fragFetchRemote(ctx, string(id))
	if err != nil {
		return nil, err
	}
	return &axml.Fragment{
		ID:      axml.FragmentID(resp.ID),
		Doc:     resp.Doc,
		Root:    xmldom.NodeID(resp.Root),
		Parent:  xmldom.NodeID(resp.Parent),
		Pos:     resp.Pos,
		XML:     resp.XML,
		Nodes:   resp.Nodes,
		Version: resp.Version,
	}, nil
}

// fragFetchRemote walks the advertised holders of id (highest version
// first, so a reader racing a migration prefers the handoff destination)
// until one answers with the fragment.
func (p *Peer) fragFetchRemote(ctx context.Context, id string) (*FragFetchResponse, error) {
	owners := p.fragmentOwners(id)
	var lastErr error
	for _, owner := range owners {
		if owner == p.id {
			continue
		}
		sp := p.tracer.Start("", "", obs.KindFragFetch, id)
		sp.SetTarget(string(owner))
		start := time.Now()
		reply, err := p.transport.Request(ctx, owner, &p2p.Message{
			Kind:    p2p.KindFragFetch,
			Subject: id,
			Payload: encode(&FragFetchRequest{ID: id}),
		})
		if err != nil {
			sp.End(ErrCode(err), err)
			lastErr = err
			continue
		}
		var resp FragFetchResponse
		if err := decode(reply.Payload, &resp); err != nil {
			sp.End(ErrCode(err), err)
			lastErr = err
			continue
		}
		if !resp.Found {
			// The advertisement was stale (fragment migrated away between
			// gossip rounds); try the next holder.
			sp.End("", nil)
			lastErr = fmt.Errorf("core: peer %s no longer holds fragment %s", owner, id)
			continue
		}
		p.noteInvokeRTT(owner, time.Since(start))
		p.metrics.FragFetches.Add(1)
		sp.End("", nil)
		return &resp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no holder advertised for fragment %s", id)
	}
	return nil, lastErr
}

// fragmentOwners merges catalog knowledge (version-ranked, live origins)
// with the replication table (RTT-ranked; also the only source for peers
// running without gossip).
func (p *Peer) fragmentOwners(id string) []p2p.PeerID {
	var owners []p2p.PeerID
	if m := p.opts.Membership; m != nil {
		owners = m.FragmentOwners(id)
	}
	seen := make(map[p2p.PeerID]bool, len(owners))
	for _, o := range owners {
		seen[o] = true
	}
	for _, o := range p.replicas.FragmentHolders(id) {
		if !seen[o] {
			owners = append(owners, o)
		}
	}
	return owners
}

// AssembleSharded materializes a sharded document: the spine (local or
// fetched from an advertised holder) plus every manifest fragment, fetched
// concurrently, reassembled with the parallel merge of
// axml.AssembleDocument. The fragment set comes from the manifest fixed at
// split time, not from placement advertisements — a fragment mid-handoff
// may transiently have no advertised holder, and an assembly that silently
// skipped it would be a torn read. Missing fragments fail the assembly
// loudly instead.
func (p *Peer) AssembleSharded(ctx context.Context, name string) (*xmldom.Document, error) {
	spine, ok := p.store.Spine(name)
	var ids []axml.FragmentID
	if ok {
		ids, _ = p.store.Manifest(name)
	} else {
		resp, err := p.fragFetchRemote(ctx, string(axml.SpineFragmentID(name)))
		if err != nil {
			return nil, fmt.Errorf("core: assemble %s: spine: %w", name, err)
		}
		spine = resp.XML
		for _, id := range resp.Manifest {
			ids = append(ids, axml.FragmentID(id))
		}
	}
	if len(ids) == 0 {
		// No manifest travelled with the spine (legacy holder): fall back to
		// the catalog's view.
		ids = p.documentFragmentIDs(name)
	}
	frags := make([]*axml.Fragment, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id axml.FragmentID) {
			defer wg.Done()
			frags[i], errs[i] = p.FetchFragment(ctx, id)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: assemble %s: %w", name, err)
		}
	}
	return axml.AssembleDocument(name, spine, frags)
}

// documentFragmentIDs enumerates the fragments a complete assembly of doc
// needs: the catalog's deduplicated view plus any locally held fragments
// (which a gossip-less peer relies on exclusively).
func (p *Peer) documentFragmentIDs(doc string) []axml.FragmentID {
	seen := make(map[axml.FragmentID]bool)
	var ids []axml.FragmentID
	if m := p.opts.Membership; m != nil {
		ads, _ := m.DocumentFragments(doc)
		for _, ad := range ads {
			id := axml.FragmentID(ad.ID)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	for _, f := range p.store.Fragments() {
		if f.Doc == doc && !seen[f.ID] {
			seen[f.ID] = true
			ids = append(ids, f.ID)
		}
	}
	return ids
}

// MigrateFragment hands a locally held fragment off to another peer. The
// handoff is WAL-logged (begin → ship → commit) and compensated by
// retention: the local copy moves to the shadow table instead of being
// discarded, and ReconcileFragments re-promotes it if the destination dies
// before the catalog confirms a live holder.
func (p *Peer) MigrateFragment(ctx context.Context, id axml.FragmentID, to p2p.PeerID) error {
	f, ok := p.store.GetFragment(id)
	if !ok {
		return fmt.Errorf("core: migrate: fragment %s not held at %s", id, p.id)
	}
	txn := p.frag.nextMigTxn(p.id)
	sp := p.tracer.Start(txn, "", obs.KindFragMigrate, string(id))
	sp.SetTarget(string(to))

	ship := f.Clone()
	ship.Version++
	// Begin record carries the full before-image: crash recovery replays it
	// to learn which fragment was in flight and at what version.
	_, _ = p.store.Log().Append(&wal.Record{
		Txn: txn, Type: wal.TypeBegin, Doc: f.Doc,
		NodeID: uint64(f.Root), ParentID: uint64(f.Parent), Pos: f.Pos,
		XML: f.XML,
	})
	reply, err := p.transport.Request(ctx, to, &p2p.Message{
		Kind:    p2p.KindFragMigrate,
		Subject: string(id),
		Payload: encode(&FragMigrateRequest{
			ID: string(ship.ID), Doc: ship.Doc,
			Root: uint64(ship.Root), Parent: uint64(ship.Parent), Pos: ship.Pos,
			XML: ship.XML, Nodes: ship.Nodes, Version: ship.Version,
		}),
	})
	var resp FragMigrateResponse
	if err == nil {
		err = decode(reply.Payload, &resp)
	}
	if err == nil && !resp.OK {
		err = fmt.Errorf("core: peer %s refused fragment %s", to, id)
	}
	if err != nil {
		// Backward recovery: the handoff never took effect anywhere, so the
		// abort record alone restores the invariant (we still hold and still
		// advertise the fragment).
		_, _ = p.store.Log().Append(&wal.Record{Txn: txn, Type: wal.TypeAbort, Doc: f.Doc})
		sp.End(ErrCode(err), err)
		return err
	}
	// Handoff acknowledged: retain the shipped copy as a shadow, withdraw
	// our advertisement, and forget the fragment's heat (its history belongs
	// to the new owner's placement decisions now).
	p.frag.mu.Lock()
	p.frag.shadow[id] = shadowEntry{frag: ship, dest: to}
	p.frag.mu.Unlock()
	p.store.RemoveFragment(id)
	p.replicas.RemoveFragment(string(id), p.id)
	if m := p.opts.Membership; m != nil {
		m.WithdrawFragment(string(id))
	}
	p.frag.heat.Forget(string(id))
	_, _ = p.store.Log().Append(&wal.Record{Txn: txn, Type: wal.TypeCommit, Doc: f.Doc})
	p.metrics.FragMigrations.Add(1)
	sp.End("", nil)
	return nil
}

// handleFragMigrate accepts a fragment handoff: store it, advertise it.
func (p *Peer) handleFragMigrate(msg *p2p.Message) (*p2p.Message, error) {
	var req FragMigrateRequest
	if err := decode(msg.Payload, &req); err != nil {
		return nil, err
	}
	f := &axml.Fragment{
		ID:      axml.FragmentID(req.ID),
		Doc:     req.Doc,
		Root:    xmldom.NodeID(req.Root),
		Parent:  xmldom.NodeID(req.Parent),
		Pos:     req.Pos,
		XML:     req.XML,
		Nodes:   req.Nodes,
		Version: req.Version,
	}
	p.store.PutFragment(f)
	p.replicas.AddFragment(req.ID, p.id)
	if m := p.opts.Membership; m != nil {
		m.AnnounceFragment(fragAdOf(f))
	}
	return &p2p.Message{Kind: p2p.KindFragMigrate, Payload: encode(&FragMigrateResponse{ID: req.ID, OK: true})}, nil
}

// ReconcileFragments settles every shadow copy: a fragment with a live
// catalog-advertised holder is confirmed (the shadow drops); one whose
// handoff destination died before the catalog confirmed any holder is
// re-promoted at a bumped version, compensating the lost handoff; one whose
// destination is still live but not yet gossiped simply stays shadowed.
// Wired to membership's OnDown, and run opportunistically by PlacementTick.
func (p *Peer) ReconcileFragments() {
	p.frag.mu.Lock()
	pending := make(map[axml.FragmentID]shadowEntry, len(p.frag.shadow))
	for id, e := range p.frag.shadow {
		pending[id] = e
	}
	p.frag.mu.Unlock()

	for id, e := range pending {
		f := e.frag
		alive := false
		for _, o := range p.fragmentOwners(string(id)) {
			if o != p.id && p.ownerLive(o) {
				alive = true
				break
			}
		}
		if alive {
			p.frag.mu.Lock()
			delete(p.frag.shadow, id)
			p.frag.mu.Unlock()
			continue
		}
		if p.ownerLive(e.dest) {
			// Handoff acked but not yet visible through gossip, and the
			// destination is not known dead: keep waiting. Promoting now
			// would fork ownership against a healthy holder.
			continue
		}
		// Compensation: the destination is gone and nobody else advertises
		// the fragment — promote the shadow copy back to ownership, one
		// version past the shipped copy so a revenant destination can never
		// outrank it.
		txn := p.frag.nextMigTxn(p.id)
		_, _ = p.store.Log().Append(&wal.Record{
			Txn: txn, Type: wal.TypeCompensateBegin, Doc: f.Doc,
			NodeID: uint64(f.Root), XML: f.XML,
		})
		promoted := f.Clone()
		promoted.Version++
		p.store.PutFragment(promoted)
		p.replicas.AddFragment(string(id), p.id)
		if m := p.opts.Membership; m != nil {
			m.AnnounceFragment(fragAdOf(promoted))
		}
		p.frag.mu.Lock()
		delete(p.frag.shadow, id)
		p.frag.mu.Unlock()
		_, _ = p.store.Log().Append(&wal.Record{Txn: txn, Type: wal.TypeCompensateEnd, Doc: f.Doc})
		p.metrics.FragPromotions.Add(1)
	}
}

// ownerLive consults the failure detector about an advertised holder;
// without gossip every holder is presumed live (absence of evidence).
func (p *Peer) ownerLive(o p2p.PeerID) bool {
	if m := p.opts.Membership; m != nil {
		return m.Live(o)
	}
	return true
}

// PlacementTick runs one round of the placement loop: plan migrations from
// the current heat scores (destinations filtered by liveness and RTT) and
// execute them. Returns the number of completed migrations.
func (p *Peer) PlacementTick(ctx context.Context) int {
	planner := &shard.Planner{}
	if m := p.opts.Membership; m != nil {
		planner.Live = func(peer string) bool { return m.Live(p2p.PeerID(peer)) }
		planner.RTT = func(peer string) time.Duration { return m.RTT(p2p.PeerID(peer)) }
	}
	var owned []string
	for _, f := range p.store.Fragments() {
		owned = append(owned, string(f.ID))
	}
	moved := 0
	for _, mv := range planner.Plan(string(p.id), owned, p.frag.heat) {
		if err := p.MigrateFragment(ctx, axml.FragmentID(mv.Frag), p2p.PeerID(mv.To)); err == nil {
			moved++
		}
	}
	// Settle earlier handoffs opportunistically; OnDown already reconciles
	// promptly when gossip declares a destination dead.
	p.ReconcileFragments()
	return moved
}

// StartPlacement runs PlacementTick every interval until the returned stop
// function is called (or the context is cancelled).
func (p *Peer) StartPlacement(ctx context.Context, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				p.PlacementTick(ctx)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// fragAdOf renders a fragment's catalog advertisement.
func fragAdOf(f *axml.Fragment) membership.FragAd {
	return membership.FragAd{
		ID:      string(f.ID),
		Doc:     f.Doc,
		Nodes:   f.Nodes,
		Version: f.Version,
	}
}
