package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"axmltx/internal/axml"
	"axmltx/internal/p2p"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// BuildCompensation constructs, from the operation log, the compensating
// operations for everything txn did locally — in reverse order of the
// forward operations, per the compensation model of Garcia-Molina & Salem's
// Sagas and §3.1:
//
//   - an insert is compensated by a delete of the node with the recorded ID;
//   - a delete is compensated by an insert of the logged before-image at the
//     logged parent and position (ordered documents restore exactly);
//   - a query's materialization effects are themselves insert/delete records
//     and compensate the same way — this is the paper's "compensation for a
//     query operation has to be constructed dynamically at run-time".
//
// Compensation is epoch-aware: effects already rolled back by a previous
// compensation run (everything before a CompensateBegin/End bracket,
// including the bracket's own records) are excluded, while effects logged
// *after* a completed compensation belong to a new epoch — a participant
// re-invoked during forward recovery after a local abort — and compensate
// normally.
func BuildCompensation(log wal.Log, txn string) []*axml.Action {
	recs := currentEpoch(log.TxnRecords(txn))
	var out []*axml.Action
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch r.Type {
		case wal.TypeInsert:
			out = append(out, &axml.Action{
				Type:     axml.ActionDelete,
				Doc:      r.Doc,
				TargetID: xmldom.NodeID(r.NodeID),
				Pos:      -1,
			})
		case wal.TypeDelete:
			out = append(out, &axml.Action{
				Type:      axml.ActionInsert,
				Doc:       r.Doc,
				ParentID:  xmldom.NodeID(r.ParentID),
				Pos:       r.Pos,
				Data:      r.XML,
				RestoreID: xmldom.NodeID(r.NodeID),
			})
		}
	}
	return out
}

// currentEpoch returns the structural records of the newest compensation
// epoch: everything after the last completed compensation bracket. Records
// inside a completed bracket (compensation's own effects) and before it
// (already undone) are dropped. An unclosed CompensateBegin (crash
// mid-compensation) does NOT clear the epoch: its records are undos that
// were applied before the crash, so they fold into the epoch and a re-run
// compensates them together with the remaining original effects — first
// re-doing the partially-undone suffix, then undoing everything, which is
// consistent at every intermediate step.
func currentEpoch(recs []*wal.Record) []*wal.Record {
	var out []*wal.Record
	var bracket []*wal.Record
	open := false
	for _, r := range recs {
		switch r.Type {
		case wal.TypeCompensateBegin:
			if open {
				// The previous bracket never closed (crash mid-compensation
				// followed by a re-run): its applied undos join the epoch.
				out = append(out, bracket...)
				bracket = nil
			}
			open = true
		case wal.TypeCompensateEnd:
			if open {
				out = out[:0]
				bracket = nil
				open = false
			}
		case wal.TypeInsert, wal.TypeDelete:
			if open {
				bracket = append(bracket, r)
			} else {
				out = append(out, r)
			}
		}
	}
	if open {
		out = append(out, bracket...)
	}
	return out
}

// AlreadyCompensated reports whether txn's local effects are fully rolled
// back: a compensation completed and no new effects were logged since. It
// makes abort idempotent — a context may receive "Abort TA" from several
// directions during disconnection storms.
func AlreadyCompensated(log wal.Log, txn string) bool {
	recs := log.TxnRecords(txn)
	completed := false
	for _, r := range recs {
		if r.Type == wal.TypeCompensateEnd {
			completed = true
			break
		}
	}
	return completed && len(currentEpoch(recs)) == 0
}

// HasCommitted reports whether txn committed locally; committed effects
// must never be compensated by stray abort messages.
func HasCommitted(log wal.Log, txn string) bool {
	for _, r := range log.TxnRecords(txn) {
		if r.Type == wal.TypeCommit {
			return true
		}
	}
	return false
}

// Compensate rolls back txn's local effects on the store and returns the
// number of XML nodes affected (the cost measure). It is idempotent.
func Compensate(store *axml.Store, txn string) (int, error) {
	log := store.Log()
	if AlreadyCompensated(log, txn) {
		return 0, nil
	}
	actions := BuildCompensation(log, txn)
	if _, err := log.Append(&wal.Record{Txn: txn, Type: wal.TypeCompensateBegin}); err != nil {
		return 0, err
	}
	affected := 0
	for _, a := range actions {
		res, err := store.Apply(txn, a, nil, axml.Lazy)
		if err != nil {
			return affected, fmt.Errorf("core: compensate %s: %w", txn, err)
		}
		affected += res.AffectedNodes
	}
	if _, err := log.Append(&wal.Record{Txn: txn, Type: wal.TypeCompensateEnd}); err != nil {
		return affected, err
	}
	return affected, nil
}

// CompensationDef is the definition of a compensating service: "a service
// capable of compensating the modifications at AP_Y which occurred as a
// result of processing the service S" (§3.2). A participant returns it with
// its invocation results; any peer holding the definition can later drive
// compensation by sending it back to (a replica of) the original peer —
// which "does not even need to be aware that the services it is executing
// are, basically, compensating services".
type CompensationDef struct {
	// Txn is the transaction whose effects the definition undoes.
	Txn string
	// Peer is the original peer the actions target.
	Peer p2p.PeerID
	// Service is the forward service this definition compensates.
	Service string
	// Actions are the compensating operations in execution order, as
	// <action> XML (ID-addressed, ready to run on the original peer's
	// store or on a document replica).
	Actions []string
	// Docs lists the documents the actions touch, so a recovering peer can
	// route the definition to a replica holder when the original peer has
	// disconnected.
	Docs []string
	// Nodes is the expected affected-node count, for cost accounting.
	Nodes int
}

// BuildCompensationDef captures txn's current local effects as a shippable
// compensating-service definition.
func BuildCompensationDef(store *axml.Store, txn string, self p2p.PeerID, service string) *CompensationDef {
	actions := BuildCompensation(store.Log(), txn)
	def := &CompensationDef{Txn: txn, Peer: self, Service: service}
	seenDocs := make(map[string]bool)
	for _, a := range actions {
		def.Actions = append(def.Actions, a.XML())
		if a.Type == axml.ActionInsert {
			def.Nodes += countNodes(a.Data)
		} else {
			def.Nodes++
		}
		if a.Doc != "" && !seenDocs[a.Doc] {
			seenDocs[a.Doc] = true
			def.Docs = append(def.Docs, a.Doc)
		}
	}
	return def
}

// countNodes estimates the node count of an XML fragment (1 on parse
// failure, since the action still touches at least one node).
func countNodes(fragment string) int {
	doc, err := xmldom.ParseString("frag", fragment)
	if err != nil {
		return 1
	}
	return doc.Root().SubtreeSize()
}

// Execute runs the definition against a store (normally the original
// peer's). The actions run under the original transaction ID so the
// CompensateBegin/End bracket makes local abort and shipped compensation
// mutually idempotent.
func (d *CompensationDef) Execute(store *axml.Store) (int, error) {
	log := store.Log()
	if AlreadyCompensated(log, d.Txn) {
		return 0, nil
	}
	if _, err := log.Append(&wal.Record{Txn: d.Txn, Type: wal.TypeCompensateBegin}); err != nil {
		return 0, err
	}
	affected := 0
	for _, src := range d.Actions {
		a, err := axml.ParseAction(src)
		if err != nil {
			return affected, fmt.Errorf("core: compensation def for %s: %w", d.Txn, err)
		}
		res, err := store.Apply(d.Txn, a, nil, axml.Lazy)
		if err != nil {
			return affected, fmt.Errorf("core: compensation def for %s: %w", d.Txn, err)
		}
		affected += res.AffectedNodes
	}
	if _, err := log.Append(&wal.Record{Txn: d.Txn, Type: wal.TypeCompensateEnd}); err != nil {
		return affected, err
	}
	return affected, nil
}

// Encode serializes the definition for the wire.
func (d *CompensationDef) Encode() []byte {
	var buf bytes.Buffer
	// Encoding a plain struct of strings/ints cannot fail.
	_ = gob.NewEncoder(&buf).Encode(d)
	return buf.Bytes()
}

// DecodeCompensationDef parses a wire-encoded definition.
func DecodeCompensationDef(b []byte) (*CompensationDef, error) {
	var d CompensationDef
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decode compensation def: %w", err)
	}
	return &d, nil
}
