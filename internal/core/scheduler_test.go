package core

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/services"
)

func TestSchedulerPeriodicMaterialization(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	var calls atomic.Int32
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "feed", ResultName: "tick"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			n := calls.Add(1)
			return []string{"<tick n=\"" + strings.Repeat("i", int(n)) + "\"/>"}, nil
		}))
	if err := ap1.HostDocument("Feed.xml",
		`<Feed><axml:sc mode="replace" methodName="feed" serviceURL="AP2" frequency="10ms"/></Feed>`); err != nil {
		t.Fatal(err)
	}

	s := ap1.StartScheduler(time.Hour) // timer loop idle; we drive RunDue
	defer s.Stop()

	now := time.Now()
	s.RunDue(now) // first scan: due immediately
	if calls.Load() != 1 {
		t.Fatalf("calls = %d after first scan", calls.Load())
	}
	s.RunDue(now.Add(5 * time.Millisecond)) // not yet due
	if calls.Load() != 1 {
		t.Fatalf("refreshed before the interval: %d", calls.Load())
	}
	s.RunDue(now.Add(11 * time.Millisecond)) // due again
	if calls.Load() != 2 {
		t.Fatalf("calls = %d after interval", calls.Load())
	}
	if s.Runs() != 2 || s.Errors() != 0 {
		t.Fatalf("runs=%d errs=%d", s.Runs(), s.Errors())
	}
	// Replace mode: exactly one <tick> lives in the document, the latest.
	doc, _ := ap1.Store().Snapshot("Feed.xml")
	ticks := 0
	var lastAttr string
	for _, sc := range docServiceCalls(doc) {
		for _, r := range sc.Results() {
			ticks++
			lastAttr, _ = r.Attr("n")
		}
	}
	if ticks != 1 || lastAttr != "ii" {
		t.Fatalf("ticks=%d last=%q", ticks, lastAttr)
	}
	// Each refresh was its own committed transaction.
	if got := ap1.Metrics().TxnsCommitted.Load(); got != 2 {
		t.Fatalf("committed txns = %d", got)
	}
}

func TestSchedulerFailedRefreshCompensates(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	ap2.HostService(services.NewFuncService(
		services.Descriptor{Name: "broken", ResultName: "tick"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			return nil, &services.Fault{Name: "down"}
		}))
	if err := ap1.HostDocument("Feed.xml",
		`<Feed><axml:sc mode="replace" methodName="broken" serviceURL="AP2" frequency="1ms"><tick n="old"/></axml:sc></Feed>`); err != nil {
		t.Fatal(err)
	}
	snapshot, _ := ap1.Store().Snapshot("Feed.xml")

	s := ap1.StartScheduler(time.Hour)
	defer s.Stop()
	s.RunDue(time.Now())
	if s.Errors() != 1 {
		t.Fatalf("errors = %d", s.Errors())
	}
	// The failed refresh (which deleted the old result before invoking in
	// replace mode... actually invocation precedes the delete) left the
	// document unchanged.
	live, _ := ap1.Store().Snapshot("Feed.xml")
	if !live.Equal(snapshot) {
		t.Fatal("failed refresh corrupted the document")
	}
}

func TestSchedulerTimerLoop(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	var calls atomic.Int32
	ap1.HostService(services.NewFuncService(
		services.Descriptor{Name: "local", ResultName: "tick"},
		func(ctx context.Context, params map[string]string) ([]string, error) {
			calls.Add(1)
			return []string{`<tick/>`}, nil
		}))
	if err := ap1.HostDocument("Feed.xml",
		`<Feed><axml:sc mode="merge" methodName="local" frequency="5ms"/></Feed>`); err != nil {
		t.Fatal(err)
	}
	s := ap1.StartScheduler(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	if calls.Load() < 3 {
		t.Fatalf("timer loop produced only %d refreshes", calls.Load())
	}
	// Stop is idempotent.
	s.Stop()
}
