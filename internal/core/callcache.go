// Semantic materialization cache with singleflight call dedupe.
//
// The paper's lazy evaluation re-invokes a remote service on every
// materialization of an <axml:sc> node, even though the embedded frequency
// attribute already defines a staleness contract (§3.1): a call whose
// frequency is 1h promises that any result younger than an hour is
// acceptable. The cache exploits exactly that contract — entries are keyed
// on (service, canonicalized params, freshness window) and served only
// within their window, so correctness never depends on invalidation
// reaching every copy.
//
// Two dedupe scopes share this structure:
//
//   - process-local: concurrent materializations of the same key elect one
//     leader via a singleflight; followers wait on the leader's flight and
//     reuse its fragments, so N concurrent local materializations perform
//     exactly one upstream invocation;
//   - cluster-wide: completed and in-flight entries are advertised through
//     the gossip replica catalog (internal/membership), and a peer about to
//     invoke first fetches the cached result from the advertising owner
//     over a KindCacheFetch message (recovery.go).
//
// Invalidation is best-effort on top of the window contract: local writes
// and compensations touching a document drop every entry recorded against
// it and withdraw its advertisements; remote copies simply age out.
package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"axmltx/internal/axml"
)

// defaultCacheCapacity bounds completed entries when WithCallCache is
// enabled with a zero capacity.
const defaultCacheCapacity = 1024

// cacheKey canonicalizes one invocation into its cache identity. Parameters
// are sorted by name so textual reorderings of the same call collide, and
// the freshness window is part of the key: a caller demanding 1s freshness
// must never be served an entry cached under a 1h contract.
func cacheKey(service string, params []axml.Param, window time.Duration) string {
	var b strings.Builder
	b.WriteString(service)
	b.WriteByte('|')
	if len(params) > 0 {
		ps := make([]string, 0, len(params))
		for _, p := range params {
			ps = append(ps, p.Name+"="+p.Value)
		}
		sort.Strings(ps)
		b.WriteString(strings.Join(ps, "&"))
	}
	b.WriteByte('|')
	b.WriteString(window.String())
	return b.String()
}

// cacheEntry is one completed materialization result.
type cacheEntry struct {
	service   string
	fragments []string
	fetched   time.Time
	window    time.Duration
	docs      []string // documents whose writes invalidate this entry
}

func (e *cacheEntry) fresh(now time.Time) bool {
	return now.Sub(e.fetched) <= e.window
}

// flight is one in-progress upstream invocation. Followers wait on done;
// the leader fills fragments/err before closing it.
type flight struct {
	done      chan struct{}
	fragments []string
	err       error
}

// callCache is the process-local half of the materialization cache. All
// methods are safe for concurrent use; none blocks while holding the lock
// (waiting on a flight happens outside it).
type callCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	flights map[string]*flight
	byDoc   map[string]map[string]bool // doc name → keys recorded against it
}

func newCallCache(capacity int) *callCache {
	if capacity <= 0 {
		capacity = defaultCacheCapacity
	}
	return &callCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		flights: make(map[string]*flight),
		byDoc:   make(map[string]map[string]bool),
	}
}

// lookup returns the fragments of a fresh entry, or ok=false.
func (c *callCache) lookup(key string, now time.Time) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if !e.fresh(now) {
		c.removeLocked(key, e)
		return nil, false
	}
	return e.fragments, true
}

// peek returns the full entry if present and fresh — the owner side of a
// cache fetch needs the fetch time and window, not just the fragments.
func (c *callCache) peek(key string, now time.Time) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.fresh(now) {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// put stores a completed entry, evicting the stalest entry when over
// capacity. Capacity-evicted keys are returned so the peer can withdraw
// their advertisements.
func (c *callCache) put(key string, e *cacheEntry) (evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.unindexLocked(key, old)
	}
	c.entries[key] = e
	for _, d := range e.docs {
		if c.byDoc[d] == nil {
			c.byDoc[d] = make(map[string]bool)
		}
		c.byDoc[d][key] = true
	}
	for len(c.entries) > c.cap {
		var oldestKey string
		var oldest *cacheEntry
		for k, cand := range c.entries {
			if k == key {
				continue
			}
			if oldest == nil || cand.fetched.Before(oldest.fetched) {
				oldestKey, oldest = k, cand
			}
		}
		if oldest == nil {
			break
		}
		c.removeLocked(oldestKey, oldest)
		evicted = append(evicted, oldestKey)
	}
	return evicted
}

// begin elects the caller as leader for key when no flight exists; a
// follower receives the existing flight to wait on.
func (c *callCache) begin(key string) (fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

// inflight returns the current flight for key, if any, without creating
// one (the non-blocking batch path and the fetch handler use it).
func (c *callCache) inflight(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fl, ok := c.flights[key]
	return fl, ok
}

// finish completes the leader's flight, releasing every waiter.
func (c *callCache) finish(key string, fl *flight, fragments []string, err error) {
	c.mu.Lock()
	fl.fragments, fl.err = fragments, err
	if c.flights[key] == fl {
		delete(c.flights, key)
	}
	c.mu.Unlock()
	close(fl.done)
}

// wait blocks until the flight completes or the bound expires. A timeout
// is not an error for the caller — it falls through to its own upstream
// invocation without registering a new flight.
func (c *callCache) wait(ctx context.Context, fl *flight, bound time.Duration) ([]string, error, bool) {
	timer := time.NewTimer(bound)
	defer timer.Stop()
	select {
	case <-fl.done:
		return fl.fragments, fl.err, true
	case <-ctx.Done():
		return nil, ctx.Err(), false
	case <-timer.C:
		return nil, nil, false
	}
}

// invalidateDoc drops every entry recorded against doc and returns their
// keys so advertisements can be withdrawn.
func (c *callCache) invalidateDoc(doc string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byDoc[doc]
	if len(keys) == 0 {
		return nil
	}
	out := make([]string, 0, len(keys))
	for k := range keys {
		if e, ok := c.entries[k]; ok {
			c.removeLocked(k, e)
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// removeLocked drops one entry and its doc-index references.
func (c *callCache) removeLocked(key string, e *cacheEntry) {
	delete(c.entries, key)
	c.unindexLocked(key, e)
}

func (c *callCache) unindexLocked(key string, e *cacheEntry) {
	for _, d := range e.docs {
		if set := c.byDoc[d]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(c.byDoc, d)
			}
		}
	}
}

// entryCount and inflightCount feed the observability gauges.
func (c *callCache) entryCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.entries))
}

func (c *callCache) inflightCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.flights))
}
