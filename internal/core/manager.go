package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"axmltx/internal/obs"
	"axmltx/internal/p2p"
)

// Status is a transaction context's lifecycle state.
type Status uint8

const (
	// StatusActive means the context is executing operations.
	StatusActive Status = iota + 1
	// StatusCommitted means local effects are permanent.
	StatusCommitted
	// StatusAborted means local effects were compensated.
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Invocation records one completed remote (or local) service invocation
// made while processing this context — the peers that must be told to abort
// or commit, and the compensating-service definitions they returned.
type Invocation struct {
	Peer    p2p.PeerID
	Service string
	// Comp is the compensating-service definition the participant returned
	// with its results (peer-independent recovery, §3.2); nil when running
	// peer-dependent.
	Comp *CompensationDef
}

// Context is the per-peer transaction context TC_A_i: "a data structure
// which encapsulates the transaction id with all the information required
// for concurrency control, commit and recovery" (§3.2).
type Context struct {
	// ID is the global transaction ID (assigned by the origin peer).
	ID string
	// Origin is the peer the transaction was submitted at.
	Origin p2p.PeerID
	// Self is the peer owning this context.
	Self p2p.PeerID
	// Parent is the peer that invoked the service this context serves; ""
	// at the origin.
	Parent p2p.PeerID
	// Service is the service this context is processing ("" at origin).
	Service string

	mu       sync.Mutex
	status   Status
	children []Invocation
	chain    chainLock
	// undoNodes accumulates the affected-node count of compensation, the
	// cost measure reported by experiments.
	undoNodes int
	// reused holds result fragments salvaged from a disconnected peer's
	// children, consumed instead of re-invoking their services (§3.3).
	reused map[string][]string
	// compDefs holds compensating-service definitions sent directly to the
	// origin by (transitive) participants, one per peer (a definition
	// covers every effect of the transaction at that peer).
	compDefs map[p2p.PeerID]*CompensationDef
	// rootSpan is the transaction's root span at the origin peer (nil on
	// participants or when tracing is off); ended by Commit/abort.
	rootSpan *obs.ActiveSpan
	// spanID is the span the next operation under this context should
	// parent on: the root/serve span between operations, the exec/call span
	// while one is running.
	spanID string
	// callCtx is the public-API context of the operation currently running
	// under this transaction, inherited by nested materializer invocations.
	callCtx context.Context
	// compensated records that abort processing ran compensations, so later
	// errors surface ErrCompensated rather than plain ErrAborted.
	compensated bool
	// began is when the origin context was created (zero on participants),
	// the basis of the slow-transaction hook.
	began time.Time
}

// SpanID returns the current tracing parent for operations under this
// context ("" when tracing is off).
func (c *Context) SpanID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spanID
}

// swapSpanID installs id as the tracing parent and returns the previous one.
func (c *Context) swapSpanID(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.spanID
	c.spanID = id
	return prev
}

// swapCallCtx installs the public-API context for the operation now running
// and returns the previous one.
func (c *Context) swapCallCtx(ctx context.Context) context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.callCtx
	c.callCtx = ctx
	return prev
}

// ctxForCalls returns the context nested invocations should run under.
func (c *Context) ctxForCalls() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.callCtx != nil {
		return c.callCtx
	}
	return context.Background()
}

func (c *Context) markCompensated() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compensated = true
}

func (c *Context) wasCompensated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compensated
}

// AddCompDef records a participant's compensating-service definition,
// superseding an earlier one from the same peer (later definitions cover
// more effects).
func (c *Context) AddCompDef(def *CompensationDef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.compDefs == nil {
		c.compDefs = make(map[p2p.PeerID]*CompensationDef)
	}
	c.compDefs[def.Peer] = def
}

// CompDefs returns the stored definitions.
func (c *Context) CompDefs() []*CompensationDef {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*CompensationDef, 0, len(c.compDefs))
	for _, d := range c.compDefs {
		out = append(out, d)
	}
	return out
}

// storeReused merges salvaged results into the context.
func (c *Context) storeReused(m map[string][]string) {
	if len(m) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reused == nil {
		c.reused = make(map[string][]string)
	}
	for k, v := range m {
		c.reused[k] = v
	}
}

// takeReused consumes salvaged results for a service, if any.
func (c *Context) takeReused(service string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frags, ok := c.reused[service]
	if ok {
		delete(c.reused, service)
	}
	return frags, ok
}

// reusedSnapshot copies the salvage map (for re-invocation requests).
func (c *Context) reusedSnapshot() map[string][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.reused) == 0 {
		return nil
	}
	out := make(map[string][]string, len(c.reused))
	for k, v := range c.reused {
		out[k] = v
	}
	return out
}

// Status returns the context's current state.
func (c *Context) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

func (c *Context) setStatus(s Status) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status = s
}

// transition moves Active→to and reports whether this call made the
// transition (false if already in a terminal state).
func (c *Context) transition(to Status) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusActive {
		return false
	}
	c.status = to
	return true
}

// AddChild records a completed invocation.
func (c *Context) AddChild(inv Invocation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.children = append(c.children, inv)
}

// Children returns a snapshot of the completed invocations.
func (c *Context) Children() []Invocation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Invocation(nil), c.children...)
}

// Chain returns the context's current active-peer list.
func (c *Context) Chain() *Chain { return c.chain.get() }

// SetChain replaces the context's active-peer list.
func (c *Context) SetChain(ch *Chain) { c.chain.set(ch) }

// ExtendChain atomically records that parent invoked service on child and
// returns the updated chain. Unlike Chain()+SetChain(), concurrent
// extensions (parallel materialization of one round's calls) cannot lose
// updates, and sibling order is the order of ExtendChain calls.
func (c *Context) ExtendChain(parent, child p2p.PeerID, service string, super bool) *Chain {
	return c.chain.update(func(ch *Chain) *Chain { return ch.Add(parent, child, service, super) })
}

// MergeChain atomically folds other into the context's chain and returns
// the result.
func (c *Context) MergeChain(other *Chain) *Chain {
	return c.chain.update(func(ch *Chain) *Chain { return ch.Merge(other) })
}

// AddUndoNodes accumulates compensation cost.
func (c *Context) AddUndoNodes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.undoNodes += n
}

// UndoNodes returns the accumulated compensation cost.
func (c *Context) UndoNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.undoNodes
}

// Manager tracks the transaction contexts of one peer.
type Manager struct {
	self p2p.PeerID
	mu   sync.Mutex
	ctxs map[string]*Context
	seq  atomic.Uint64
}

// NewManager returns a manager for the given peer.
func NewManager(self p2p.PeerID) *Manager {
	return &Manager{self: self, ctxs: make(map[string]*Context)}
}

// NewTxnID mints a globally unique transaction ID at the origin:
// "T<seq>@<peer>".
func (m *Manager) NewTxnID() string {
	return fmt.Sprintf("T%d@%s", m.seq.Add(1), m.self)
}

// Begin creates the origin context for a new transaction.
func (m *Manager) Begin(id string, super bool) *Context {
	ctx := &Context{ID: id, Origin: m.self, Self: m.self, status: StatusActive, began: time.Now()}
	ctx.SetChain(NewChain(m.self, super))
	m.put(ctx)
	return ctx
}

// BeginParticipant creates (or returns the existing) participant context
// for an incoming invocation. A peer invoked twice within one transaction
// reuses its context, accumulating children across invocations.
func (m *Manager) BeginParticipant(id string, origin, parent p2p.PeerID, service string, chain *Chain) *Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ctx, ok := m.ctxs[id]; ok {
		if chain != nil {
			ctx.SetChain(chain)
		}
		// A peer re-invoked after a local abort (forward recovery redoing
		// part of the tree) starts a fresh epoch: the aborted epoch's
		// children were already notified and its effects compensated.
		ctx.mu.Lock()
		if ctx.status == StatusAborted {
			ctx.status = StatusActive
			ctx.children = nil
		}
		ctx.mu.Unlock()
		return ctx
	}
	ctx := &Context{
		ID: id, Origin: origin, Self: m.self, Parent: parent,
		Service: service, status: StatusActive,
	}
	if chain != nil {
		ctx.SetChain(chain)
	} else {
		ctx.SetChain(NewChain(origin, false))
	}
	m.ctxs[id] = ctx
	return ctx
}

func (m *Manager) put(ctx *Context) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctxs[ctx.ID] = ctx
}

// Get returns the context for a transaction, if present.
func (m *Manager) Get(id string) (*Context, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ctx, ok := m.ctxs[id]
	return ctx, ok
}

// Remove drops a finished context.
func (m *Manager) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.ctxs, id)
}

// Active returns the IDs of contexts still in StatusActive.
func (m *Manager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, ctx := range m.ctxs {
		if ctx.Status() == StatusActive {
			out = append(out, id)
		}
	}
	return out
}
