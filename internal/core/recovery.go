package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/wal"
)

// FaultDisconnected is the fault name synthesized when an invocation target
// is unreachable; <axml:catch faultName="disconnected"> handlers match it.
const FaultDisconnected = "disconnected"

// envKey carries the engine environment through context.Context into
// service bodies, so composite services can make nested invocations within
// the caller's transaction.
type envKey struct{}

// Env is the engine environment visible to service implementations.
type Env struct {
	// Peer is the hosting peer.
	Peer *Peer
	// Txn is the transaction context the invocation runs under.
	Txn *Context
}

// WithEnv attaches an environment to a context.
func WithEnv(ctx context.Context, env *Env) context.Context {
	return context.WithValue(ctx, envKey{}, env)
}

// EnvFrom extracts the engine environment, if present.
func EnvFrom(ctx context.Context) (*Env, bool) {
	env, ok := ctx.Value(envKey{}).(*Env)
	return env, ok
}

// Invoke implements axml.Materializer: it executes the embedded service
// call within txn, applying the call's fault handlers (§3.2) before letting
// a failure propagate. This is where the nested recovery protocol's
// forward-vs-backward choice is made at each intermediate peer.
func (p *Peer) Invoke(txn string, sc *axml.ServiceCall, params []axml.Param) ([]string, error) {
	txc, ok := p.mgr.Get(txn)
	if !ok {
		return nil, fmt.Errorf("core: no context for transaction %s at %s", txn, p.id)
	}
	service := sc.Service()

	// Work salvaged from a disconnected peer's children substitutes for
	// re-invocation (§3.3 case b: "passing the materialized results
	// directly").
	if frags, ok := txc.takeReused(service); ok {
		p.metrics.WorkReused.Add(1)
		sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindReuse, service)
		sp.SetChain(chainStr(txc))
		sp.End("", nil)
		return frags, nil
	}
	if spec, ok := p.cacheSpecFor(sc, params); ok {
		return p.invokeCached(txc, sc, params, spec)
	}
	return p.invokeUpstream(txc, sc, params)
}

// invokeUpstream is the uncached invocation path: resolve the provider,
// invoke once, and run the fault-handler recovery protocol on failure.
func (p *Peer) invokeUpstream(txc *Context, sc *axml.ServiceCall, params []axml.Param) ([]string, error) {
	pm := paramMap(params)
	target := p.resolveTarget(sc)
	resp, err := p.invokeOnce(txc, target, sc.Service(), pm, false)
	if err == nil {
		return resp.Fragments, nil
	}
	return p.recoverInvocation(txc, sc, pm, target, err)
}

// cacheSpec is the cache identity of one cacheable invocation: its key, the
// freshness window the result may be served under, and the documents whose
// writes invalidate it.
type cacheSpec struct {
	key    string
	window time.Duration
	docs   []string
}

// cacheSpecFor decides whether sc's invocation is cacheable. The frequency
// attribute is the staleness contract (§3.1): a declared frequency is the
// window; without one, Options.CacheTTL applies (zero = uncached). Calls to
// locally-known update or continuous services are never cached — updates
// have effects that must happen, streams are not a reusable value.
func (p *Peer) cacheSpecFor(sc *axml.ServiceCall, params []axml.Param) (cacheSpec, bool) {
	if p.cache == nil {
		return cacheSpec{}, false
	}
	window, declared := sc.Frequency()
	if !declared {
		window = p.opts.CacheTTL
	}
	if window <= 0 {
		return cacheSpec{}, false
	}
	service := sc.Service()
	docs := make([]string, 0, 2)
	if doc := sc.Node().Document(); doc != nil && doc.Name() != "" {
		docs = append(docs, doc.Name())
	}
	if svc, ok := p.registry.Get(service); ok {
		desc := svc.Descriptor()
		switch desc.Kind {
		case services.KindUpdate, services.KindContinuous:
			return cacheSpec{}, false
		}
		if desc.TargetDocument != "" && (len(docs) == 0 || docs[0] != desc.TargetDocument) {
			docs = append(docs, desc.TargetDocument)
		}
	}
	return cacheSpec{key: cacheKey(service, params, window), window: window, docs: docs}, true
}

// invokeCached serves a cacheable call through the dedupe ladder: local
// fresh hit, singleflight wait behind a concurrent local leader, fetch from
// a peer advertising the key in the gossip catalog, and only then the
// upstream invocation — whose result is cached and advertised. Served
// results extend no chain and record no child invocation, exactly like
// salvaged work (takeReused): nothing needs committing, aborting or
// compensating at a provider that was never invoked.
func (p *Peer) invokeCached(txc *Context, sc *axml.ServiceCall, params []axml.Param, spec cacheSpec) ([]string, error) {
	service := sc.Service()
	if frags, ok := p.cache.lookup(spec.key, time.Now()); ok {
		p.metrics.CacheHits.Add(1)
		sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCacheHit, service)
		sp.End("", nil)
		return frags, nil
	}
	fl, leader := p.cache.begin(spec.key)
	if !leader {
		// Follower: bounded wait on the leader's in-flight invocation. A
		// failed or overlong flight falls through to this caller's own
		// upstream invocation, without registering a flight of its own.
		sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCacheWait, service)
		frags, err, done := p.cache.wait(txc.ctxForCalls(), fl, p.opts.LockTimeout)
		if done && err == nil {
			p.metrics.CacheWaits.Add(1)
			sp.End("", nil)
			return frags, nil
		}
		sp.SetAttr("fallthrough", "true")
		sp.End(ErrCode(err), err)
		return p.invokeUpstream(txc, sc, params)
	}
	if e, ok := p.fetchFromOwner(txc, spec, service); ok {
		p.cachePut(spec, e)
		p.cache.finish(spec.key, fl, e.fragments, nil)
		return e.fragments, nil
	}
	p.metrics.CacheMisses.Add(1)
	m := p.opts.Membership
	if m != nil {
		// Advertise the in-flight call so remote peers about to invoke the
		// same key can direct a fetch here instead of going upstream.
		m.AnnounceCallInflight(spec.key, service)
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCacheMiss, service)
	prevSpan := txc.swapSpanID(sp.ID())
	frags, err := p.invokeUpstream(txc, sc, params)
	txc.swapSpanID(prevSpan)
	sp.End(ErrCode(err), err)
	if err != nil {
		if m != nil {
			m.WithdrawCall(spec.key)
		}
		p.cache.finish(spec.key, fl, nil, err)
		return nil, err
	}
	p.cachePut(spec, &cacheEntry{
		service: service, fragments: frags,
		fetched: time.Now(), window: spec.window, docs: spec.docs,
	})
	p.cache.finish(spec.key, fl, frags, nil)
	return frags, nil
}

// cachePut stores a completed entry and keeps the gossip catalog in step:
// the key is advertised (replacing any in-flight advertisement) and
// capacity-evicted keys are withdrawn.
func (p *Peer) cachePut(spec cacheSpec, e *cacheEntry) {
	evicted := p.cache.put(spec.key, e)
	if m := p.opts.Membership; m != nil {
		m.AnnounceCall(spec.key, e.service, e.fetched, e.window)
		for _, k := range evicted {
			m.WithdrawCall(k)
		}
	}
}

// fetchFromOwner asks peers advertising spec.key in the gossip catalog for
// their cached result (cluster-scope dedupe). The advertised fetch time is
// re-checked against the local clock before the copy is trusted; a stale,
// withdrawn or unreachable owner is skipped and the next one tried.
func (p *Peer) fetchFromOwner(txc *Context, spec cacheSpec, service string) (*cacheEntry, bool) {
	m := p.opts.Membership
	if m == nil {
		return nil, false
	}
	for _, owner := range m.CallOwners(spec.key) {
		if owner == p.id {
			continue
		}
		sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCacheFetch, service)
		sp.SetTarget(string(owner))
		reply, err := p.transport.Request(txc.ctxForCalls(), owner, &p2p.Message{
			Kind: p2p.KindCacheFetch, Txn: txc.ID, Subject: service,
			Payload: encode(&CacheFetchRequest{Key: spec.key, Service: service}),
		})
		if err != nil || reply == nil || reply.Err != "" {
			sp.SetAttr("miss", "unreachable")
			sp.End(ErrCode(err), err)
			continue
		}
		var resp CacheFetchResponse
		if derr := decode(reply.Payload, &resp); derr != nil || !resp.Found {
			sp.SetAttr("miss", "not-found")
			sp.End("", nil)
			continue
		}
		fetched := time.Unix(0, resp.FetchedUnixNano)
		window := time.Duration(resp.WindowNanos)
		if window <= 0 || time.Since(fetched) > window {
			sp.SetAttr("miss", "stale")
			sp.End("", nil)
			continue
		}
		p.metrics.CacheFetches.Add(1)
		sp.End("", nil)
		return &cacheEntry{
			service: service, fragments: resp.Fragments,
			fetched: fetched, window: window, docs: spec.docs,
		}, true
	}
	return nil, false
}

// handleCacheFetch serves a cached materialization result to a peer that
// found this peer's advertisement in the gossip catalog. A request racing
// an in-flight invocation of the same key waits for it (bounded by the
// lock timeout) instead of reporting a miss.
func (p *Peer) handleCacheFetch(msg *p2p.Message) (*p2p.Message, error) {
	var req CacheFetchRequest
	if err := decode(msg.Payload, &req); err != nil {
		return nil, err
	}
	resp := &CacheFetchResponse{Key: req.Key, Service: req.Service}
	if p.cache != nil {
		e, ok := p.cache.peek(req.Key, time.Now())
		if !ok {
			if fl, inflight := p.cache.inflight(req.Key); inflight {
				ctx, cancel := context.WithTimeout(context.Background(), p.opts.LockTimeout)
				_, _, _ = p.cache.wait(ctx, fl, p.opts.LockTimeout)
				cancel()
				e, ok = p.cache.peek(req.Key, time.Now())
			}
		}
		if ok {
			resp.Found = true
			resp.Fragments = e.fragments
			resp.FetchedUnixNano = e.fetched.UnixNano()
			resp.WindowNanos = int64(e.window)
		}
	}
	return &p2p.Message{Kind: p2p.KindCacheFetch, Txn: msg.Txn, Subject: req.Service,
		Payload: encode(resp)}, nil
}

// invalidateDocCache drops cache entries recorded against the named
// documents and withdraws their gossip advertisements. Remote copies are
// not chased: their staleness stays bounded by the freshness window the
// calls themselves declared.
func (p *Peer) invalidateDocCache(docs ...string) {
	if p.cache == nil {
		return
	}
	m := p.opts.Membership
	for _, doc := range docs {
		if doc == "" {
			continue
		}
		// Actions reference documents by query root ("A") while the cache
		// indexes entries under the stored name ("A.xml"); canonicalize so
		// both forms hit the same index.
		if d, ok := p.store.Get(doc); ok {
			doc = d.Name()
		}
		for _, key := range p.cache.invalidateDoc(doc) {
			p.metrics.CacheInvalidations.Add(1)
			if m != nil {
				m.WithdrawCall(key)
			}
		}
	}
}

// txnDocs collects the distinct documents a transaction's WAL records
// touched, for cache invalidation after compensation restored them.
func txnDocs(log wal.Log, txn string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, rec := range log.TxnRecords(txn) {
		if rec.Doc != "" && !seen[rec.Doc] {
			seen[rec.Doc] = true
			out = append(out, rec.Doc)
		}
	}
	return out
}

// ResultName implements axml.Materializer via the local registry.
func (p *Peer) ResultName(service string) string { return p.registry.ResultName(service) }

// resolveTarget picks the provider of an embedded call: the explicit
// serviceURL (peer ID) if any, the local registry, then the replication
// table's ranked providers.
func (p *Peer) resolveTarget(sc *axml.ServiceCall) p2p.PeerID {
	if url := sc.URL(); url != "" {
		return p2p.PeerID(url)
	}
	if _, ok := p.registry.Get(sc.Service()); ok {
		return p.id
	}
	if alt, ok := p.replicas.Alternative(sc.Service()); ok {
		return alt
	}
	return p.id // will fail with unknown service, the honest error
}

// recoverInvocation applies the service call's fault handlers to a failed
// invocation: application hooks first, then retry (with wait, and with an
// alternative provider when the handler or the replication table supplies
// one). A handled fault counts as forward recovery; an unhandled one is
// propagated (backward recovery).
func (p *Peer) recoverInvocation(txc *Context, sc *axml.ServiceCall, params map[string]string, failed p2p.PeerID, cause error) ([]string, error) {
	faultName := faultNameOf(cause)
	handler, ok := sc.HandlerFor(faultName)
	if !ok {
		p.metrics.BackwardRecoveries.Add(1)
		return nil, cause
	}
	// Application-specific handler code (the paper's "Java code" slot).
	if hook, ok := p.faultHook(sc.Service(), handler.FaultName); ok {
		if err := hook(txc.ID, sc, faultName); err == nil {
			p.metrics.ForwardRecoveries.Add(1)
			return nil, nil
		}
	}
	if handler.Retry == nil {
		p.metrics.BackwardRecoveries.Add(1)
		return nil, cause
	}
	excluded := []p2p.PeerID{failed}
	lastErr := cause
	for attempt := 0; attempt < handler.Retry.Times; attempt++ {
		if handler.Retry.Wait > 0 {
			time.Sleep(handler.Retry.Wait)
		}
		p.metrics.RetriesAttempted.Add(1)
		target, service, pm := failed, sc.Service(), params
		if alt := handler.Retry.Alt; alt != nil {
			// The optional <axml:sc> inside retry names the replacement
			// invocation (typically the same service on a replica peer).
			service = alt.Service()
			pm = paramMapOf(alt, params)
			if alt.URL() != "" {
				target = p2p.PeerID(alt.URL())
			}
		}
		if target == failed {
			// Pick a replica provider, excluding everyone who failed.
			if alt, ok := p.replicas.Alternative(service, excluded...); ok {
				target = alt
			}
		}
		if target == failed && faultNameOf(lastErr) == FaultDisconnected {
			// No alternative provider for a dead peer: retrying is futile.
			break
		}
		rsp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindRetry, service)
		rsp.SetTarget(string(target))
		rsp.SetAttr("attempt", strconv.Itoa(attempt+1))
		prevSpan := txc.swapSpanID(rsp.ID())
		resp, err := p.invokeOnce(txc, target, service, pm, false)
		txc.swapSpanID(prevSpan)
		rsp.SetChain(chainStr(txc))
		rsp.End(ErrCode(err), err)
		if err == nil {
			p.metrics.ForwardRecoveries.Add(1)
			return resp.Fragments, nil
		}
		lastErr = err
		excluded = append(excluded, target)
	}
	p.metrics.BackwardRecoveries.Add(1)
	return nil, lastErr
}

// paramMapOf binds an alternative call's own literal params, falling back
// to the original invocation's parameters.
func paramMapOf(sc *axml.ServiceCall, orig map[string]string) map[string]string {
	out := make(map[string]string, len(orig))
	for k, v := range orig {
		out[k] = v
	}
	for _, prm := range sc.Params() {
		if prm.Value != "" {
			out[prm.Name] = prm.Value
		}
	}
	return out
}

func paramMap(params []axml.Param) map[string]string {
	out := make(map[string]string, len(params))
	for _, prm := range params {
		out[prm.Name] = prm.Value
	}
	return out
}

// faultNameOf classifies an error: unreachable peers become the synthetic
// "disconnected" fault, named service faults keep their name, anything
// else is anonymous ("" matches only catchAll).
func faultNameOf(err error) string {
	if errors.Is(err, p2p.ErrUnreachable) {
		return FaultDisconnected
	}
	return services.FaultName(err)
}

// invokeOnce performs a single local or remote invocation within txc,
// recording the completed child invocation and adopting the callee's chain.
func (p *Peer) invokeOnce(txc *Context, target p2p.PeerID, service string, params map[string]string, async bool) (*InvokeResponse, error) {
	if target == p.id || target == "" {
		sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindInvoke, service)
		sp.SetTarget(string(p.id))
		start := time.Now()
		frags, err := p.executeLocalService(txc, service, params)
		p.histInvoke.Observe(time.Since(start))
		sp.SetChain(chainStr(txc))
		sp.End(ErrCode(err), err)
		if err != nil {
			return nil, err
		}
		return &InvokeResponse{Service: service, Fragments: frags, Chain: txc.Chain()}, nil
	}
	msg, sp := p.prepareRemoteInvoke(txc, target, service, params, async)
	start := time.Now()
	reply, err := p.transport.Request(txc.ctxForCalls(), target, msg)
	elapsed := time.Since(start)
	p.histInvoke.Observe(elapsed)
	if err == nil {
		p.noteInvokeRTT(target, elapsed)
	}
	return p.finishRemoteInvoke(txc, target, service, async, reply, err, sp)
}

// prepareRemoteInvoke performs the synchronous bookkeeping that must happen
// in invocation order — metrics, chain extension and ancestor propagation —
// and returns the wire message plus the opened client-side invoke span
// (whose ID travels in the message, parenting the participant's serve
// span). Chain sibling order is the order of prepareRemoteInvoke calls,
// which parallel materialization keeps equal to document order.
func (p *Peer) prepareRemoteInvoke(txc *Context, target p2p.PeerID, service string, params map[string]string, async bool) (*p2p.Message, *obs.ActiveSpan) {
	p.metrics.InvocationsMade.Add(1)
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindInvoke, service)
	sp.SetTarget(string(target))
	req := &InvokeRequest{
		Txn:     txc.ID,
		Origin:  txc.Origin,
		Caller:  p.id,
		Service: service,
		Params:  params,
		Async:   async,
	}
	if !p.opts.DisableChaining {
		req.Chain = txc.ExtendChain(p.id, target, service, false)
		// Share the extended active peer list with our ancestors before
		// the invocation runs: should we die mid-flight, they already know
		// the subtree below us (§3.3 — AP2 must know about AP6).
		p.propagateChain(txc)
	}
	// The span reference carries the sampler's keep/drop decision to the
	// participant, so all peers of a deployment retain or drop the same
	// transactions without coordination.
	msg := &p2p.Message{Kind: p2p.KindInvoke, Txn: txc.ID, Subject: service,
		Payload: encode(req), Span: obs.EncodeWireSpan(sp.ID(), p.sampler.DropEligible(txc.ID))}
	return msg, sp
}

// finishRemoteInvoke processes a remote invocation's reply: error mapping,
// chain adoption, the child-invocation record, and closing the invoke span
// opened by prepareRemoteInvoke.
func (p *Peer) finishRemoteInvoke(txc *Context, target p2p.PeerID, service string, async bool, reply *p2p.Message, err error, sp *obs.ActiveSpan) (*InvokeResponse, error) {
	resp, err := p.finishRemoteReply(txc, target, service, async, reply, err)
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	return resp, err
}

func (p *Peer) finishRemoteReply(txc *Context, target p2p.PeerID, service string, async bool, reply *p2p.Message, err error) (*InvokeResponse, error) {
	if err != nil {
		if errors.Is(err, p2p.ErrUnreachable) {
			p.metrics.DisconnectsDetected.Add(1)
		}
		return nil, err
	}
	if reply.Err != "" {
		// The error reply is the "Abort TA" message from the participant
		// to its invoker (it has already aborted its local context). The
		// typed code reconstructs an errors.Is-compatible error.
		return nil, errFromWire(reply.Code, reply.Subject, reply.Err)
	}
	if async {
		return &InvokeResponse{Service: service}, nil
	}
	var resp InvokeResponse
	if err := decode(reply.Payload, &resp); err != nil {
		return nil, err
	}
	if resp.Chain != nil && !p.opts.DisableChaining {
		txc.MergeChain(resp.Chain)
	}
	inv := Invocation{Peer: target, Service: service}
	if len(resp.Comp) > 0 {
		if def, err := DecodeCompensationDef(resp.Comp); err == nil {
			inv.Comp = def
		}
	}
	txc.AddChild(inv)
	return &resp, nil
}

// InvokesLocally implements axml.LocalityHinter: calls that resolve to this
// very peer re-enter the local store when executed, so the materializer's
// worker pool must keep them sequential.
func (p *Peer) InvokesLocally(sc *axml.ServiceCall) bool {
	target := p.resolveTarget(sc)
	return target == p.id || target == ""
}

// InvokeBatch implements axml.BatchInvoker: it overlaps the network waits
// of one materialization round's independent calls while performing every
// piece of transaction bookkeeping strictly in call order, in three phases —
// (1) sequential: salvage reuse, target resolution, chain extension and
// propagation; (2) concurrent: the transport round trips, bounded by limit;
// (3) sequential: reply processing, chain adoption, child records, and the
// per-call fault-handler recovery protocol for failures. The result is
// byte-identical WAL and chain state to sequential execution; only the
// remote waits overlap.
func (p *Peer) InvokeBatch(txn string, calls []*axml.ServiceCall, params [][]axml.Param, limit int) []axml.InvokeOutcome {
	out := make([]axml.InvokeOutcome, len(calls))
	txc, ok := p.mgr.Get(txn)
	if !ok {
		err := fmt.Errorf("core: no context for transaction %s at %s", txn, p.id)
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	type pending struct {
		i       int
		target  p2p.PeerID
		service string
		pm      map[string]string
		msg     *p2p.Message
		sp      *obs.ActiveSpan
		spec    cacheSpec
		fl      *flight // non-nil when this call leads a cache flight
	}
	var remote []pending
	for i, sc := range calls {
		service := sc.Service()
		pm := paramMap(params[i])
		if frags, ok := txc.takeReused(service); ok {
			p.metrics.WorkReused.Add(1)
			sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindReuse, service)
			sp.SetChain(chainStr(txc))
			sp.End("", nil)
			out[i].Fragments = frags
			continue
		}
		spec, cacheable := p.cacheSpecFor(sc, params[i])
		if cacheable {
			if frags, ok := p.cache.lookup(spec.key, time.Now()); ok {
				p.metrics.CacheHits.Add(1)
				sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindCacheHit, service)
				sp.End("", nil)
				out[i].Fragments = frags
				continue
			}
		}
		target := p.resolveTarget(sc)
		if target == p.id || target == "" {
			// Local execution re-enters the store; the materializer filters
			// these out of batches, but handle stragglers correctly. Invoke
			// runs the full cache protocol itself.
			out[i].Fragments, out[i].Err = p.Invoke(txn, sc, params[i])
			continue
		}
		var fl *flight
		if cacheable {
			// Non-blocking singleflight: waiting here on a flight led by an
			// earlier entry of this very batch would deadlock (it completes
			// only in phase 3 of this goroutine), so followers proceed as if
			// uncached. Leaders complete their flight in phase 3; the
			// cluster-fetch ladder is skipped — the batch exists to overlap
			// these very network waits.
			if lead, leader := p.cache.begin(spec.key); leader {
				fl = lead
				if m := p.opts.Membership; m != nil {
					m.AnnounceCallInflight(spec.key, service)
				}
			}
		}
		msg, sp := p.prepareRemoteInvoke(txc, target, service, pm, false)
		remote = append(remote, pending{
			i: i, target: target, service: service, pm: pm, msg: msg, sp: sp,
			spec: spec, fl: fl,
		})
	}
	replies := make([]*p2p.Message, len(remote))
	errs := make([]error, len(remote))
	if limit < 1 {
		limit = 1
	}
	callCtx := txc.ctxForCalls()
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for k, pr := range remote {
		sem <- struct{}{}
		wg.Add(1)
		go func(k int, pr pending) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			replies[k], errs[k] = p.transport.Request(callCtx, pr.target, pr.msg)
			elapsed := time.Since(start)
			p.histInvoke.Observe(elapsed)
			if errs[k] == nil {
				p.noteInvokeRTT(pr.target, elapsed)
			}
		}(k, pr)
	}
	wg.Wait()
	for k, pr := range remote {
		resp, err := p.finishRemoteInvoke(txc, pr.target, pr.service, false, replies[k], errs[k], pr.sp)
		var frags []string
		if err == nil {
			frags = resp.Fragments
		} else {
			frags, err = p.recoverInvocation(txc, calls[pr.i], pr.pm, pr.target, err)
		}
		if pr.fl != nil {
			if err == nil {
				p.metrics.CacheMisses.Add(1)
				p.cachePut(pr.spec, &cacheEntry{
					service: pr.service, fragments: frags,
					fetched: time.Now(), window: pr.spec.window, docs: pr.spec.docs,
				})
				p.cache.finish(pr.spec.key, pr.fl, frags, nil)
			} else {
				if m := p.opts.Membership; m != nil {
					m.WithdrawCall(pr.spec.key)
				}
				p.cache.finish(pr.spec.key, pr.fl, nil, err)
			}
		}
		out[pr.i].Fragments, out[pr.i].Err = frags, err
	}
	return out
}

// propagateChain shares txc's current chain with every ancestor of this
// peer, best effort and one-way.
func (p *Peer) propagateChain(txc *Context) {
	chain := txc.Chain()
	if chain == nil {
		return
	}
	payload := encode(&ChainUpdate{Txn: txc.ID, Chain: chain})
	bg := context.Background()
	for _, ancestor := range chain.AncestorsOf(p.id) {
		_ = p.transport.Send(bg, ancestor, &p2p.Message{
			Kind: p2p.KindChainUpdate, Txn: txc.ID, Payload: payload,
		})
	}
}

// handleChainUpdate merges a propagated active peer list into the local
// context.
func (p *Peer) handleChainUpdate(msg *p2p.Message) {
	var cu ChainUpdate
	if err := decode(msg.Payload, &cu); err != nil || cu.Chain == nil {
		return
	}
	if txc, ok := p.mgr.Get(cu.Txn); ok && !p.opts.DisableChaining {
		txc.SetChain(txc.Chain().Merge(cu.Chain))
	}
}

// executeLocalService runs a registry service under txc with the engine
// environment attached, acquiring the service's declared document lock.
func (p *Peer) executeLocalService(txc *Context, service string, params map[string]string) ([]string, error) {
	svc, ok := p.registry.Get(service)
	if !ok {
		return nil, fmt.Errorf("%w: %q at %s", services.ErrUnknownService, service, p.id)
	}
	desc := svc.Descriptor()
	if desc.TargetDocument != "" {
		if err := p.locks.Acquire(txc.ID, desc.TargetDocument, LockExclusive); err != nil {
			return nil, &services.Fault{Name: "lock-timeout", Msg: err.Error()}
		}
	}
	cctx := WithEnv(context.Background(), &Env{Peer: p, Txn: txc})
	frags, err := p.registry.Invoke(cctx, service, &services.Request{Txn: txc.ID, Params: params})
	if err == nil && desc.Kind == services.KindUpdate {
		// The update just changed its target document: cached results read
		// from it are no longer the freshest available.
		p.invalidateDocCache(desc.TargetDocument)
	}
	return frags, err
}

// handleInvoke serves an incoming invocation (the participant side).
func (p *Peer) handleInvoke(msg *p2p.Message) (*p2p.Message, error) {
	var req InvokeRequest
	if err := decode(msg.Payload, &req); err != nil {
		return nil, err
	}
	var chain *Chain
	if req.Chain != nil && !p.opts.DisableChaining {
		chain = req.Chain.Clone()
		chain.markSuper(p.id, p.opts.Super)
	}
	txc := p.mgr.BeginParticipant(req.Txn, req.Origin, req.Caller, req.Service, chain)
	txc.storeReused(req.Reused)
	p.metrics.InvocationsServed.Add(1)
	// The serve span parents on the caller's invoke span carried in the
	// message, stitching one trace tree across the peer boundary. It also
	// becomes this context's parent hint for nested and later spans. The
	// wire reference additionally carries the caller's sampling decision.
	parentSpan, dropHint := obs.DecodeWireSpan(msg.Span)
	if msg.Span != "" {
		// An empty reference means the caller doesn't trace at all — that is
		// no hint, and the local coin stays in charge. Treating it as "keep"
		// would disable sampling on every peer serving untraced clients.
		p.sampler.Hint(req.Txn, dropHint)
	}
	sp := p.tracer.Start(req.Txn, parentSpan, obs.KindServe, req.Service)
	sp.SetTarget(string(req.Caller))
	txc.swapSpanID(sp.ID())

	if req.Async {
		// Acknowledge, run the service, then push the result — the flow
		// where a child may find its parent gone when returning results.
		go p.runAsync(txc, &req, sp)
		return &p2p.Message{Kind: "invoke-ack"}, nil
	}

	logBefore := len(p.store.Log().TxnRecords(req.Txn))
	frags, err := p.executeLocalService(txc, req.Service, req.Params)
	setServeLSNRange(sp, p.store.Log(), req.Txn, logBefore)
	if err != nil {
		// The paper's step 1 at a failed peer: abort the local context,
		// notify the peers whose services we invoked; the error reply
		// carries the abort to the invoker.
		sp.SetChain(chainStr(txc))
		sp.End(ErrCode(err), err)
		_ = p.abortContext(txc, req.Caller, false)
		return &p2p.Message{Kind: p2p.KindResult, Txn: req.Txn,
			Subject: faultNameOf(err), Err: err.Error(), Code: ErrCode(err)}, nil
	}
	sp.SetChain(chainStr(txc))
	sp.End("", nil)
	resp := &InvokeResponse{
		Service:   req.Service,
		Fragments: frags,
		Chain:     txc.Chain(),
		Nodes:     workNodesSince(p.store.Log(), req.Txn, logBefore),
	}
	if p.opts.PeerIndependent {
		def := BuildCompensationDef(p.store, req.Txn, p.id, req.Service)
		p.metrics.CompServicesBuilt.Add(1)
		resp.Comp = def.Encode()
		p.sendCompDefToOrigin(&req, resp.Comp)
	}
	return &p2p.Message{Kind: p2p.KindResult, Txn: req.Txn, Payload: encode(resp)}, nil
}

// sendCompDefToOrigin also ships the compensating-service definition to
// the origin peer directly ("The compensating service definitions can also
// be sent to the origin peer directly", §3.2): should an intermediate peer
// later disconnect, the origin can still drive this participant's
// compensation without the invocation path.
func (p *Peer) sendCompDefToOrigin(req *InvokeRequest, payload []byte) {
	if req.Origin == "" || req.Origin == p.id || req.Origin == req.Caller {
		return // the caller already receives the definition with the reply
	}
	_ = p.transport.Send(context.Background(), req.Origin, &p2p.Message{
		Kind: p2p.KindCompDef, Txn: req.Txn, Payload: payload,
	})
}

// handleCompDef stores a definition shipped directly by a participant.
func (p *Peer) handleCompDef(msg *p2p.Message) {
	def, err := DecodeCompensationDef(msg.Payload)
	if err != nil {
		return
	}
	if txc, ok := p.mgr.Get(msg.Txn); ok {
		txc.AddCompDef(def)
	}
}

// runAsync executes a deferred invocation and pushes the result to the
// caller, redirecting up the chain when the caller has disconnected (§3.3
// case b).
func (p *Peer) runAsync(txc *Context, req *InvokeRequest, sp *obs.ActiveSpan) {
	logBefore := len(p.store.Log().TxnRecords(req.Txn))
	frags, err := p.executeLocalService(txc, req.Service, req.Params)
	setServeLSNRange(sp, p.store.Log(), req.Txn, logBefore)
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	if err != nil {
		_ = p.abortContext(txc, "", true)
		return
	}
	resp := &InvokeResponse{
		Service:   req.Service,
		Fragments: frags,
		Chain:     txc.Chain(),
		Nodes:     workNodesSince(p.store.Log(), req.Txn, logBefore),
	}
	if p.opts.PeerIndependent {
		resp.Comp = BuildCompensationDef(p.store, req.Txn, p.id, req.Service).Encode()
		p.metrics.CompServicesBuilt.Add(1)
		p.sendCompDefToOrigin(req, resp.Comp)
	}
	msg := &p2p.Message{Kind: p2p.KindResult, Txn: req.Txn, Subject: req.Service, Payload: encode(resp)}
	if err := p.transport.Send(context.Background(), req.Caller, msg); err == nil {
		return
	}
	// Parent unreachable while returning results: scenario (b).
	p.metrics.DisconnectsDetected.Add(1)
	p.redirectPastDeadParent(txc, req.Caller, req.Service, resp)
}

// handleResult receives an asynchronously pushed invocation result.
func (p *Peer) handleResult(msg *p2p.Message) {
	var resp InvokeResponse
	if err := decode(msg.Payload, &resp); err != nil {
		return
	}
	if txc, ok := p.mgr.Get(msg.Txn); ok {
		if resp.Chain != nil && !p.opts.DisableChaining {
			txc.SetChain(txc.Chain().Merge(resp.Chain))
		}
		inv := Invocation{Peer: msg.From, Service: resp.Service}
		if len(resp.Comp) > 0 {
			if def, err := DecodeCompensationDef(resp.Comp); err == nil {
				inv.Comp = def
			}
		}
		txc.AddChild(inv)
	}
	p.mu.Lock()
	cb := p.onResult
	p.mu.Unlock()
	if cb != nil {
		cb(msg.Txn, &resp)
	}
}

// abortContext rolls back the local context and propagates "Abort TA":
// to every completed child invocation, and — when notifyParent — to the
// invoking peer. skip names a peer that must not be re-notified (the one
// the abort came from). Peer-independent mode sends participants their own
// compensating-service definitions instead of abort messages.
func (p *Peer) abortContext(txc *Context, skip p2p.PeerID, notifyParent bool) error {
	if !txc.transition(StatusAborted) {
		return nil // already terminal; idempotent
	}
	if txc.Self == txc.Origin {
		p.metrics.TxnsAborted.Add(1)
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindAbort, txc.Service)
	_, _ = p.store.Log().Append(&wal.Record{Txn: txc.ID, Type: wal.TypeAbort})
	// The abort decision must be durable before compensation starts: a crash
	// mid-compensation must replay as an abort, not an in-flight transaction.
	_ = p.syncLog()

	csp := p.tracer.Start(txc.ID, sp.ID(), obs.KindCompensate, "")
	compStart := time.Now()
	affected, err := Compensate(p.store, txc.ID)
	p.histCompensate.Observe(time.Since(compStart))
	csp.SetAttr("nodes", strconv.Itoa(affected))
	csp.End(ErrCode(err), err)
	txc.markCompensated()
	p.metrics.Compensations.Add(1)
	p.metrics.NodesUndone.Add(int64(affected))
	txc.AddUndoNodes(affected)
	p.locks.ReleaseAll(txc.ID)
	if p.cache != nil {
		// Compensation just rewrote these documents; drop entries recorded
		// against them and withdraw their advertisements.
		p.invalidateDocCache(txnDocs(p.store.Log(), txc.ID)...)
	}

	bg := context.Background()
	// Definitions shipped directly by transitive participants let the
	// origin compensate peers whose invocation path has broken; a peer
	// already covered as a direct child is handled there.
	extraDefs := make(map[p2p.PeerID]*CompensationDef)
	for _, def := range txc.CompDefs() {
		extraDefs[def.Peer] = def
	}
	for _, child := range txc.Children() {
		delete(extraDefs, child.Peer)
		if child.Peer == skip {
			continue
		}
		if child.Comp != nil {
			// Peer-independent recovery: drive the participant's
			// compensation directly; it "does not even need to be aware"
			// this is compensation.
			p.metrics.CompServicesRun.Add(1)
			payload := child.Comp.Encode()
			err := p.transport.Send(bg, child.Peer, &p2p.Message{
				Kind: p2p.KindCompensate, Txn: txc.ID, Payload: payload, Span: sp.ID(),
			})
			if err != nil {
				// The original peer disconnected: run the definition on a
				// replica of the affected document instead — the payoff of
				// peer independence under churn (§3.3).
				p.metrics.DisconnectsDetected.Add(1)
				p.sendCompToReplica(txc.ID, child, payload)
			}
			continue
		}
		p.metrics.AbortsSent.Add(1)
		_ = p.transport.Send(bg, child.Peer, &p2p.Message{Kind: p2p.KindAbort, Txn: txc.ID})
	}
	for peer, def := range extraDefs {
		if peer == skip || peer == p.id {
			continue
		}
		p.metrics.CompServicesRun.Add(1)
		payload := def.Encode()
		if err := p.transport.Send(bg, peer, &p2p.Message{
			Kind: p2p.KindCompensate, Txn: txc.ID, Payload: payload, Span: sp.ID(),
		}); err != nil {
			p.sendCompToReplica(txc.ID, Invocation{Peer: peer, Comp: def}, payload)
		}
	}
	if notifyParent && txc.Parent != "" && txc.Parent != skip {
		p.metrics.AbortsSent.Add(1)
		_ = p.transport.Send(bg, txc.Parent, &p2p.Message{Kind: p2p.KindAbort, Txn: txc.ID})
	}
	sp.SetChain(chainStr(txc))
	sp.End(ErrCode(err), err)
	if txc.rootSpan != nil {
		p.noteSlowTxn(txc, "aborted")
		// Close the origin's transaction root span with the abort outcome
		// so /trace shows a complete tree for aborted transactions.
		txc.rootSpan.SetChain(chainStr(txc))
		txc.rootSpan.End(CodeCompensated, nil)
		txc.rootSpan = nil
	}
	return err
}

// sendCompToReplica routes a compensating-service definition to a live
// holder of a replica of the affected document(s) when the original peer is
// unreachable.
func (p *Peer) sendCompToReplica(txn string, child Invocation, payload []byte) {
	bg := context.Background()
	tried := map[p2p.PeerID]bool{child.Peer: true, p.id: true}
	for _, doc := range child.Comp.Docs {
		for _, holder := range p.replicas.DocumentReplicas(doc) {
			if tried[holder] {
				continue
			}
			tried[holder] = true
			if err := p.transport.Send(bg, holder, &p2p.Message{
				Kind: p2p.KindCompensate, Txn: txn, Payload: payload,
			}); err == nil {
				return
			}
		}
	}
	// No reachable replica: atomicity cannot be guaranteed for this
	// participant (the Spheres of Atomicity caveat).
	p.metrics.NodesLost.Add(int64(child.Comp.Nodes))
}

// handleAbort processes an incoming "Abort TA".
func (p *Peer) handleAbort(msg *p2p.Message) {
	p.metrics.AbortsReceived.Add(1)
	txc, ok := p.mgr.Get(msg.Txn)
	if !ok {
		// No live context (e.g. already removed): still compensate any
		// logged effects, idempotently — unless the transaction committed
		// here, in which case a stray abort must not undo durable work.
		if HasCommitted(p.store.Log(), msg.Txn) {
			return
		}
		affected, _ := Compensate(p.store, msg.Txn)
		if affected > 0 {
			p.metrics.Compensations.Add(1)
			p.metrics.NodesUndone.Add(int64(affected))
		}
		if p.cache != nil {
			p.invalidateDocCache(txnDocs(p.store.Log(), msg.Txn)...)
		}
		return
	}
	// Continue propagation away from the sender: to children, and upward
	// unless the abort came from the parent.
	_ = p.abortContext(txc, msg.From, msg.From != txc.Parent)
}

// handleCommit processes a commit notification, cascading to children.
func (p *Peer) handleCommit(msg *p2p.Message) {
	txc, ok := p.mgr.Get(msg.Txn)
	if !ok {
		return
	}
	if !txc.transition(StatusCommitted) {
		return
	}
	sp := p.tracer.Start(msg.Txn, txc.SpanID(), obs.KindCommit, txc.Service)
	defer func() { sp.End("", nil) }()
	_, _ = p.store.Log().Append(&wal.Record{Txn: msg.Txn, Type: wal.TypeCommit})
	// Same durability barrier as the origin's Commit: the decision record
	// must be on disk before this participant cascades it.
	_ = p.syncLog()
	p.locks.ReleaseAll(msg.Txn)
	for _, child := range txc.Children() {
		if child.Peer == msg.From {
			continue
		}
		_ = p.transport.Send(context.Background(), child.Peer,
			&p2p.Message{Kind: p2p.KindCommit, Txn: msg.Txn})
	}
	p.mgr.Remove(msg.Txn)
}

// handleCompensate executes a shipped compensating-service definition.
func (p *Peer) handleCompensate(msg *p2p.Message) (*p2p.Message, error) {
	def, err := DecodeCompensationDef(msg.Payload)
	if err != nil {
		return nil, err
	}
	parent, _ := obs.DecodeWireSpan(msg.Span)
	if txc, ok := p.mgr.Get(def.Txn); ok && parent == "" {
		parent = txc.SpanID()
	}
	sp := p.tracer.Start(def.Txn, parent, obs.KindCompensate, def.Service)
	start := time.Now()
	affected, err := def.Execute(p.store)
	p.histCompensate.Observe(time.Since(start))
	sp.SetAttr("nodes", strconv.Itoa(affected))
	sp.End(ErrCode(err), err)
	if err != nil {
		return nil, err
	}
	p.metrics.Compensations.Add(1)
	p.metrics.NodesUndone.Add(int64(affected))
	p.locks.ReleaseAll(def.Txn)
	p.invalidateDocCache(def.Docs...)
	if txc, ok := p.mgr.Get(def.Txn); ok {
		txc.transition(StatusAborted)
	}
	return &p2p.Message{Kind: "compensate-ack"}, nil
}

// setServeLSNRange brackets the WAL records a served invocation appended
// (those after index from) onto its span.
func setServeLSNRange(sp *obs.ActiveSpan, log wal.Log, txn string, from int) {
	if sp == nil {
		return
	}
	recs := log.TxnRecords(txn)
	if len(recs) > from {
		sp.SetLSNRange(recs[from].LSN, recs[len(recs)-1].LSN)
	}
}

// workNodesSince values the work a transaction performed at this peer from
// log records appended after index from — the affected-node cost measure.
func workNodesSince(log wal.Log, txn string, from int) int {
	recs := log.TxnRecords(txn)
	total := 0
	for i := from; i < len(recs); i++ {
		switch recs[i].Type {
		case wal.TypeInsert, wal.TypeDelete:
			total += countNodes(recs[i].XML)
		}
	}
	return total
}
