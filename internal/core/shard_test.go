package core

import (
	"strings"
	"testing"

	"axmltx/internal/membership"
	"axmltx/internal/p2p"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// shardTestDoc has three fragment-sized player subtrees plus a small meta
// child that stays in the spine.
const shardTestDoc = `<league>
  <player><name>Federer</name><ranking>1</ranking><points>8000</points></player>
  <player><name>Djokovic</name><ranking>2</ranking><points>7500</points></player>
  <player><name>Murray</name><ranking>3</ranking><points>7000</points></player>
  <meta/>
</league>`

// shardCluster builds n gossip-enabled peers, shards shardTestDoc on the
// first, and gossips until every peer sees every fragment advertisement.
func shardCluster(t *testing.T, n int) (*p2p.Network, []*Peer, []*membership.Gossip) {
	t.Helper()
	net := p2p.NewNetwork(0)
	ids := make([]p2p.PeerID, n)
	for i := range ids {
		ids[i] = p2p.PeerID(string(rune('A' + i)))
	}
	peers := make([]*Peer, n)
	gossips := make([]*membership.Gossip, n)
	for i, id := range ids {
		tr := net.Join(id)
		g := membership.New(tr, membership.Config{Seeds: []p2p.PeerID{ids[(i+1)%n]}, Fanout: 2})
		gossips[i] = g
		peers[i] = NewPeer(tr, wal.NewMemory(), Options{Membership: g})
	}
	if err := peers[0].HostDocument("league", shardTestDoc); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].ShardHostedDocument("league", 0); err != nil {
		t.Fatal(err)
	}
	converge(t, peers, gossips, func() bool {
		for _, p := range peers[1:] {
			ads, spine := p.opts.Membership.DocumentFragments("league")
			if len(ads) != 3 || len(spine) != 1 {
				return false
			}
		}
		return true
	})
	return net, peers, gossips
}

func converge(t *testing.T, peers []*Peer, gossips []*membership.Gossip, ok func() bool) {
	t.Helper()
	for i := 0; i < 200 && !ok(); i++ {
		for _, g := range gossips {
			g.Tick(bg)
		}
	}
	if !ok() {
		t.Fatal("cluster did not converge")
	}
}

func TestShardAssembleRemote(t *testing.T) {
	_, peers, _ := shardCluster(t, 3)
	ref, err := xmldom.ParseString("league", shardTestDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Both a non-holder and the sharding peer itself reassemble correctly.
	for _, p := range []*Peer{peers[2], peers[0]} {
		got, err := p.AssembleSharded(bg, "league")
		if err != nil {
			t.Fatalf("peer %s: %v", p.ID(), err)
		}
		if !got.Equal(ref) {
			t.Fatalf("peer %s assembled wrong document:\n%s", p.ID(), xmldom.DocumentString(got))
		}
	}
	if got := peers[2].Metrics().FragFetches.Load(); got < 3 {
		t.Fatalf("remote assembler made %d fragment fetches, want >= 3", got)
	}
}

func TestShardMigrationHandoff(t *testing.T) {
	_, peers, gossips := shardCluster(t, 3)
	a, b, c := peers[0], peers[1], peers[2]
	frags := a.Store().Fragments()
	id := frags[0].ID

	if err := a.MigrateFragment(bg, id, b.ID()); err != nil {
		t.Fatal(err)
	}
	if _, held := a.Store().GetFragment(id); held {
		t.Fatal("source still holds migrated fragment")
	}
	f, held := b.Store().GetFragment(id)
	if !held {
		t.Fatal("destination does not hold migrated fragment")
	}
	if f.Version != frags[0].Version+1 {
		t.Fatalf("shipped version = %d, want %d", f.Version, frags[0].Version+1)
	}
	// After convergence the third peer prefers the destination and the
	// document still assembles identically everywhere.
	converge(t, peers, gossips, func() bool {
		owners := c.opts.Membership.FragmentOwners(string(id))
		return len(owners) == 1 && owners[0] == b.ID()
	})
	ref, _ := xmldom.ParseString("league", shardTestDoc)
	got, err := c.AssembleSharded(bg, "league")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatal("post-migration assembly differs")
	}
	// The handoff left a begin/commit pair in the WAL.
	var begins, commits int
	for _, r := range a.Store().Log().Records() {
		if strings.HasPrefix(r.Txn, "frag-mig-") {
			switch r.Type {
			case wal.TypeBegin:
				begins++
			case wal.TypeCommit:
				commits++
			}
		}
	}
	if begins != 1 || commits != 1 {
		t.Fatalf("migration WAL records: %d begins, %d commits", begins, commits)
	}
}

func TestShardMigrationCrashPromotesShadow(t *testing.T) {
	net, peers, gossips := shardCluster(t, 3)
	a, b, c := peers[0], peers[1], peers[2]
	id := a.Store().Fragments()[0].ID

	if err := a.MigrateFragment(bg, id, b.ID()); err != nil {
		t.Fatal(err)
	}
	shipped, _ := b.Store().GetFragment(id)
	// Destination dies right after the handoff; gossip failure detection
	// fires OnDown at the source, which reconciles the shadow copy.
	net.Disconnect(b.ID())
	converge(t, []*Peer{a, c}, []*membership.Gossip{gossips[0], gossips[2]}, func() bool {
		_, held := a.Store().GetFragment(id)
		return held
	})
	promoted, _ := a.Store().GetFragment(id)
	if promoted.Version <= shipped.Version {
		t.Fatalf("promoted version %d does not outrank shipped %d", promoted.Version, shipped.Version)
	}
	if a.Metrics().FragPromotions.Load() != 1 {
		t.Fatalf("promotions = %d, want 1", a.Metrics().FragPromotions.Load())
	}
	// Compensation is WAL-logged.
	var compBegin, compEnd bool
	for _, r := range a.Store().Log().Records() {
		if strings.HasPrefix(r.Txn, "frag-mig-") {
			switch r.Type {
			case wal.TypeCompensateBegin:
				compBegin = true
			case wal.TypeCompensateEnd:
				compEnd = true
			}
		}
	}
	if !compBegin || !compEnd {
		t.Fatal("promotion did not log compensation records")
	}
	// The document assembles correctly from the promoted copy.
	ref, _ := xmldom.ParseString("league", shardTestDoc)
	got, err := c.AssembleSharded(bg, "league")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatal("post-promotion assembly differs")
	}
}

func TestShardPlacementFollowsHeat(t *testing.T) {
	_, peers, gossips := shardCluster(t, 3)
	a, c := peers[0], peers[2]
	id := a.Store().Fragments()[0].ID

	// A skewed workload: one remote caller hammers one fragment.
	for i := 0; i < 10; i++ {
		if _, err := c.FetchFragment(bg, id); err != nil {
			t.Fatal(err)
		}
	}
	if moved := a.PlacementTick(bg); moved != 1 {
		t.Fatalf("placement moved %d fragments, want 1", moved)
	}
	if _, held := c.Store().GetFragment(id); !held {
		t.Fatal("hot fragment did not move to its dominant caller")
	}
	// Subsequent fetches at the caller are local; the other fragments, with
	// no skewed traffic, stayed put.
	if n := len(a.Store().Fragments()); n != 2 {
		t.Fatalf("source retains %d fragments, want 2", n)
	}
	converge(t, peers, gossips, func() bool {
		owners := peers[1].opts.Membership.FragmentOwners(string(id))
		return len(owners) == 1 && owners[0] == c.ID()
	})
}
