package core

import (
	"encoding/json"
	"testing"

	"axmltx/internal/membership"
	"axmltx/internal/obs"
	obscluster "axmltx/internal/obs/cluster"
	"axmltx/internal/p2p"
	"axmltx/internal/wal"
)

// TestClusterPlaneWiring checks NewPeer's plane assembly end to end: with
// Membership + MetricsRegistry the plane exists, gossip rounds federate
// each peer's transaction counters into the other's merged view, and the
// "cluster" admin subject serves the view over the wire.
func TestClusterPlaneWiring(t *testing.T) {
	net := p2p.NewNetwork(0)
	mk := func(id, seed p2p.PeerID) (*Peer, *membership.Gossip) {
		tr := net.Join(id)
		reg := obs.NewRegistry()
		g := membership.New(tr, membership.Config{Seeds: []p2p.PeerID{seed}, Registry: reg})
		p := NewPeer(tr, wal.NewMemory(), Options{
			Membership:      g,
			MetricsRegistry: reg,
			SLO:             obscluster.SLOConfig{Availability: 0.99},
		})
		return p, g
	}
	ap1, g1 := mk("AP1", "AP2")
	ap2, g2 := mk("AP2", "AP1")
	if ap1.Cluster() == nil || ap2.Cluster() == nil {
		t.Fatal("plane not constructed despite Membership + MetricsRegistry")
	}

	// One committed transaction on each peer, then gossip until federated.
	for _, p := range []*Peer{ap1, ap2} {
		txc := p.Begin()
		if err := p.Commit(bg, txc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		g1.Tick(bg)
		g2.Tick(bg)
	}

	view := ap1.Cluster().View()
	if len(view.Peers) != 2 {
		t.Fatalf("AP1 merged view has %d peers, want 2: %+v", len(view.Peers), view.Peers)
	}
	if view.Committed != 2 {
		t.Fatalf("merged committed = %d, want 2 (one per peer)", view.Committed)
	}
	if view.SLO.AvailabilityTarget != 0.99 {
		t.Fatalf("SLO target not threaded through Options: %+v", view.SLO)
	}

	// The admin subject serves the same view remotely.
	resp, err := ap1.Transport().Request(bg, "AP2",
		&p2p.Message{Kind: p2p.KindAdmin, Subject: "cluster"})
	if err != nil {
		t.Fatal(err)
	}
	var remote obscluster.View
	if err := json.Unmarshal(resp.Payload, &remote); err != nil {
		t.Fatalf("cluster admin payload: %v\n%s", err, resp.Payload)
	}
	if remote.Self != "AP2" || len(remote.Peers) != 2 {
		t.Fatalf("remote view: self %q, %d peers", remote.Self, len(remote.Peers))
	}
}

// TestClusterAdminWithoutPlane pins the error path: no registry, no plane,
// and the admin subject says so instead of serving an empty view.
func TestClusterAdminWithoutPlane(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	ap2 := c.add("AP2", Options{})
	_ = ap2
	resp, err := ap1.Transport().Request(bg, "AP2",
		&p2p.Message{Kind: p2p.KindAdmin, Subject: "cluster"})
	if err == nil && resp.Err == "" {
		t.Fatal("cluster admin subject served without a plane")
	}
	if ap1.Cluster() != nil {
		t.Fatal("plane constructed without MetricsRegistry")
	}
}
