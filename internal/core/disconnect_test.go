package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/xmldom"
)

// fig2 builds the paper's Figure 2 topology for the disconnection
// scenarios: [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]. AP2 is the working
// origin of the transaction's interesting subtree: the transaction is
// submitted at AP1 (a super peer) which invokes S2@AP2; AP2 invokes S3@AP3
// and S4@AP4; AP3 invokes S6@AP6; AP4 invokes S5@AP5.
//
// For the disconnection tests the S3/S6 branch runs asynchronously (the
// paper's data-intensive flow), driven by explicit steps so that each
// scenario's timing is deterministic.
type fig2 struct {
	c     *cluster
	peers map[p2p.PeerID]*Peer
}

func buildFig2(t *testing.T, c *cluster) *fig2 {
	t.Helper()
	f := &fig2{c: c, peers: make(map[p2p.PeerID]*Peer)}
	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3", "AP4", "AP5", "AP6"} {
		opts := Options{}
		if id == "AP1" {
			opts.Super = true
		}
		f.peers[id] = c.add(id, opts)
	}
	hostEntryService(t, f.peers["AP5"], "S5", "D5.xml")
	hostEntryService(t, f.peers["AP6"], "S6", "D6.xml")
	hostEntryService(t, f.peers["AP4"], "S4sub", "D4.xml") // AP4's own work
	hostEntryService(t, f.peers["AP3"], "S3sub", "D3.xml") // AP3's own work
	return f
}

// startTxn begins the transaction at AP1 and builds the chain down to AP2
// by invoking a trivial S2 there.
func (f *fig2) startTxn(t *testing.T) (*Context, *Context) {
	t.Helper()
	hostEntryService(t, f.peers["AP2"], "S2", "D2.xml")
	txc := f.peers["AP1"].Begin()
	if _, err := f.peers["AP1"].Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	ctx2, ok := f.peers["AP2"].Manager().Get(txc.ID)
	if !ok {
		t.Fatal("AP2 has no context")
	}
	return txc, ctx2
}

func TestF2aLeafDisconnectionDetectedByParent(t *testing.T) {
	// (a) AP6 disconnects; AP3 detects it when invoking S6 and follows the
	// nested recovery protocol (here: no handler, so abort).
	c := newCluster(t)
	f := buildFig2(t, c)
	txc, ctx2 := f.startTxn(t)
	_ = ctx2

	// AP2 invokes S3sub at AP3 so AP3 joins the chain with local effects.
	ap2 := f.peers["AP2"]
	ctx2got, _ := ap2.Manager().Get(txc.ID)
	if _, err := ap2.Call(bg, ctx2got, "AP3", "S3sub", nil); err != nil {
		t.Fatal(err)
	}
	// AP3 now invokes S6@AP6 — but AP6 has disconnected.
	c.net.Disconnect("AP6")
	ap3 := f.peers["AP3"]
	ctx3, _ := ap3.Manager().Get(txc.ID)
	_, err := ap3.Call(bg, ctx3, "AP6", "S6", nil)
	if !errors.Is(err, p2p.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if ap3.Metrics().DisconnectsDetected.Load() != 1 {
		t.Fatal("disconnection not detected")
	}
	// Nested recovery: abort the whole transaction from the origin.
	if err := f.peers["AP1"].Abort(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap3, "D3.xml") != 0 || entryCount(t, ap2, "D2.xml") != 0 {
		t.Fatal("effects not compensated after leaf disconnection")
	}
}

func TestF2bParentDisconnectionDetectedByChild(t *testing.T) {
	// (b) AP3 invokes S6@AP6 asynchronously, then disconnects; AP6 detects
	// the death when returning results and redirects them to AP2 (next in
	// the active peer list), which recovers forward by re-invoking S3 on a
	// replica AP3b, reusing AP6's materialized results.
	c := newCluster(t)
	ring := obs.NewRing(0)
	c.sink = ring
	f := buildFig2(t, c)

	// S3: composite service at AP3 — does local work, then invokes S6
	// asynchronously, then "dies" before AP6 can return results.
	ap3 := f.peers["AP3"]
	release := make(chan struct{})
	ap3.HostService(services.NewFuncService(
		services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			if _, err := env.Peer.Call(bg, env.Txn, "AP3", "S3sub", nil); err != nil {
				return nil, err
			}
			if err := env.Peer.CallAsync(bg, env.Txn, "AP6", "S6", nil); err != nil {
				return nil, err
			}
			return []string{`<updateResult pending="S6"/>`}, nil
		}))

	// Replica of S3 at AP3b: consumes reused S6 results instead of
	// re-invoking AP6 (count S6 executions to prove reuse).
	ap3b := c.add("AP3b", Options{})
	if err := ap3b.HostDocument("D3.xml", `<D3><axml:sc mode="replace" methodName="S6" serviceURL="AP6"/></D3>`); err != nil {
		t.Fatal(err)
	}
	ap3b.HostQueryService(servicesDescriptor("S3", "D3.xml"), `Select d/updateResult from d in D3`)

	var s6Calls atomic.Int32
	wrapCount(f.peers["AP6"], "S6", &s6Calls)

	// Gate S6 so it completes only after AP3 has died.
	inner, _ := f.peers["AP6"].Registry().Get("S6")
	f.peers["AP6"].Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			<-release
			env, _ := EnvFrom(cctx)
			return inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params})
		}))

	txc, ctx2 := f.startTxn(t)
	ap2 := f.peers["AP2"]
	for _, p := range f.peers {
		p.Replicas().AddService("S3", "AP3")
		p.Replicas().AddService("S3", "AP3b")
	}
	ap3b.Replicas().AddService("S6", "AP6")

	recovered := make(chan struct{}, 1)
	ap2.OnResult(func(txn string, resp *InvokeResponse) {
		if resp.Service == "S3" {
			recovered <- struct{}{}
		}
	})
	if _, err := ap2.Call(bg, ctx2, "AP3", "S3", nil); err != nil {
		t.Fatal(err)
	}
	// AP3 dies; unblock S6 at AP6, whose result push AP6→AP3 now fails.
	c.net.Disconnect("AP3")
	close(release)

	select {
	case <-recovered:
	case <-time.After(5 * time.Second):
		t.Fatal("AP2 never recovered via redirect + replica")
	}
	if err := f.peers["AP1"].Commit(bg, txc); err != nil {
		t.Fatal(err)
	}

	// AP6 redirected its results past the dead parent.
	if f.peers["AP6"].Metrics().Redirects.Load() != 1 {
		t.Error("AP6 did not redirect")
	}
	if ap2.Metrics().Redirects.Load() != 1 {
		t.Error("AP2 did not receive the redirect")
	}
	// Work reuse: S6 ran exactly once; AP3b consumed the salvaged result.
	if got := s6Calls.Load(); got != 1 {
		t.Errorf("S6 executed %d times, want 1 (reuse failed)", got)
	}
	if ap3b.Metrics().WorkReused.Load() != 1 {
		t.Error("AP3b did not reuse the redirected work")
	}
	// Forward recovery happened at AP2 (the closest live ancestor).
	if ap2.Metrics().ForwardRecoveries.Load() != 1 {
		t.Error("AP2 did not forward-recover")
	}
	// AP3b's document now carries the reused updateResult.
	d3b, _ := ap3b.Store().Get("D3.xml")
	if !strings.Contains(marshal(d3b), "<updateResult") {
		t.Errorf("AP3b doc missing reused results: %s", marshal(d3b))
	}

	// Trace shape of case (b): AP6 emits a redirect span naming the dead
	// parent and the live ancestor it delivered to; AP2 mirrors it on the
	// receiving side and emits the replica retry; AP3b emits the work-reuse
	// span instead of a fresh invocation of S6.
	spans := ring.Trace(txc.ID)
	redir6 := findSpan(spans, byKind(obs.KindRedirect, "AP6", "S6"))
	if redir6 == nil {
		t.Fatal("AP6 emitted no redirect span")
	}
	if redir6.Attrs["dead"] != "AP3" || redir6.Target != "AP2" || redir6.Outcome != obs.OutcomeOK {
		t.Errorf("AP6 redirect span dead=%q target=%q outcome=%s, want AP3/AP2/ok",
			redir6.Attrs["dead"], redir6.Target, redir6.Outcome)
	}
	redir2 := findSpan(spans, byKind(obs.KindRedirect, "AP2", "S6"))
	if redir2 == nil {
		t.Fatal("AP2 emitted no receiving-side redirect span")
	}
	if redir2.Parent != redir6.ID {
		t.Errorf("AP2 redirect parent = %q, want AP6's redirect %q (wire span propagation)",
			redir2.Parent, redir6.ID)
	}
	retry := findSpan(spans, byKind(obs.KindRetry, "AP2", "S3"))
	if retry == nil {
		t.Fatal("AP2 emitted no replica-retry span")
	}
	if retry.Attrs["dead"] != "AP3" || retry.Attrs["reused"] != "true" || retry.Target != "AP3b" {
		t.Errorf("AP2 retry span dead=%q reused=%q target=%q, want AP3/true/AP3b",
			retry.Attrs["dead"], retry.Attrs["reused"], retry.Target)
	}
	if reuse := findSpan(spans, byKind(obs.KindReuse, "AP3b", "S6")); reuse == nil {
		t.Error("AP3b emitted no work-reuse span")
	}
}

func TestF2cChildDisconnectionDetectedByParentPing(t *testing.T) {
	// (c) AP3 dies while processing; AP2's keep-alive detector notices.
	// AP2 then informs AP3's descendants (AP6, preventing wasted effort)
	// and forward-recovers S3 on the replica AP3b.
	c := newCluster(t)
	ring := obs.NewRing(0)
	c.sink = ring
	f := buildFig2(t, c)
	ap2, ap3, ap6 := f.peers["AP2"], f.peers["AP3"], f.peers["AP6"]

	// S3 at AP3: local work + sync invocation of S6@AP6, then it blocks
	// forever (the peer will die mid-processing).
	dead := make(chan struct{})
	ap3.HostService(services.NewFuncService(
		services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			if _, err := env.Peer.Call(bg, env.Txn, "AP3", "S3sub", nil); err != nil {
				return nil, err
			}
			if _, err := env.Peer.Call(bg, env.Txn, "AP6", "S6", nil); err != nil {
				return nil, err
			}
			<-dead // never returns: AP3 has crashed
			return nil, nil
		}))

	ap3b := c.add("AP3b", Options{})
	hostEntryService(t, ap3b, "S3", "D3b.xml")
	for _, p := range f.peers {
		p.Replicas().AddService("S3", "AP3")
		p.Replicas().AddService("S3", "AP3b")
	}

	txc, ctx2 := f.startTxn(t)
	// Invoke S3 asynchronously so AP2 is not blocked on the dead peer.
	if err := ap2.CallAsync(bg, ctx2, "AP3", "S3", nil); err != nil {
		t.Fatal(err)
	}
	// Wait until AP6's entry exists (S6 completed under AP3).
	waitFor(t, func() bool { return entryCount(t, ap6, "D6.xml") == 1 })

	// AP3 dies. AP2's pinger detects it.
	c.net.Disconnect("AP3")
	recovered := make(chan struct{}, 1)
	ap2.OnResult(func(txn string, resp *InvokeResponse) {
		if resp.Service == "S3" {
			recovered <- struct{}{}
		}
	})
	pinger := p2p.NewPinger(ap2.Transport(), 5*time.Millisecond, 1, func(id p2p.PeerID) {
		ap2.OnPeerDown(id)
	})
	pinger.Watch("AP3")
	pinger.ProbeNow(context.Background())

	select {
	case <-recovered:
	case <-time.After(5 * time.Second):
		t.Fatal("AP2 never recovered after ping detection")
	}
	// AP6 was informed and compensated its (doomed) work.
	waitFor(t, func() bool { return entryCount(t, ap6, "D6.xml") == 0 })
	if ap6.Metrics().NodesLost.Load() == 0 {
		t.Error("AP6 did not account lost work")
	}
	// AP3b carries the redone work; commit finalizes.
	if err := f.peers["AP1"].Commit(bg, txc); err != nil {
		t.Fatal(err)
	}
	if entryCount(t, ap3b, "D3b.xml") != 1 {
		t.Error("replica has no redone work")
	}
	if ap2.Metrics().ForwardRecoveries.Load() != 1 {
		t.Error("AP2 did not forward-recover")
	}

	// Trace shape of case (c): AP2's forward recovery is a retry span naming
	// the dead child and the replica it succeeded on (no salvage here — the
	// replica redoes the work), and AP6's doomed work shows up as a
	// compensate span.
	spans := ring.Trace(txc.ID)
	retry := findSpan(spans, byKind(obs.KindRetry, "AP2", "S3"))
	if retry == nil {
		t.Fatal("AP2 emitted no replica-retry span")
	}
	if retry.Attrs["dead"] != "AP3" || retry.Target != "AP3b" || retry.Outcome != obs.OutcomeOK {
		t.Errorf("AP2 retry span dead=%q target=%q outcome=%s, want AP3/AP3b/ok",
			retry.Attrs["dead"], retry.Target, retry.Outcome)
	}
	if retry.Attrs["reused"] == "true" {
		t.Error("case (c) has no salvaged results; retry span must not claim reuse")
	}
	if comp := findSpan(spans, byKind(obs.KindCompensate, "AP6", "")); comp == nil {
		t.Error("AP6 emitted no compensate span for its doomed work")
	}
	close(dead)
}

func TestF2dSiblingDisconnectionDetectedByStreamSilence(t *testing.T) {
	// (d) AP3 streams continuous data directly to its sibling AP4; when
	// the stream goes silent, AP4 notifies AP3's parent (AP2) and children
	// (AP6) via the active peer list.
	c := newCluster(t)
	f := buildFig2(t, c)
	ap2, ap3, ap4, ap6 := f.peers["AP2"], f.peers["AP3"], f.peers["AP4"], f.peers["AP6"]

	// S3 at AP3: does local work and invokes S6@AP6 (so AP6 is in the
	// chain as AP3's child), then returns; streaming happens separately.
	ap3.HostService(services.NewFuncService(
		services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			if _, err := env.Peer.Call(bg, env.Txn, "AP3", "S3sub", nil); err != nil {
				return nil, err
			}
			return env.Peer.Call(bg, env.Txn, "AP6", "S6", nil)
		}))
	txc, ctx2 := f.startTxn(t)
	if _, err := ap2.Call(bg, ctx2, "AP3", "S3", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ap2.Call(bg, ctx2, "AP4", "S4sub", nil); err != nil {
		t.Fatal(err)
	}

	// AP4 subscribes to AP3's stream with a silence watcher.
	var batches atomic.Int32
	silence := make(chan struct{}, 1)
	watcher := services.NewStreamWatcher(60*time.Millisecond, func() { silence <- struct{}{} })
	ap4.OnStream(func(b *StreamBatch) {
		batches.Add(1)
		watcher.Observe()
	})
	watcher.Start()

	// AP3 streams three batches, then disconnects.
	for seq := 0; seq < 3; seq++ {
		if err := ap3.StreamTo("AP4", &StreamBatch{Txn: txc.ID, Service: "S3", Seq: seq,
			Fragments: []string{fmt.Sprintf("<tick n=%q/>", fmt.Sprint(seq))}}); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Disconnect("AP3")

	select {
	case <-silence:
	case <-time.After(5 * time.Second):
		t.Fatal("stream silence never detected")
	}
	if batches.Load() != 3 {
		t.Fatalf("batches = %d", batches.Load())
	}

	// AP4 uses the chain to notify AP3's parent and children.
	ctx4, ok := ap4.Manager().Get(txc.ID)
	if !ok {
		t.Fatal("AP4 has no context")
	}
	ap4.NotifySiblingDown(txc.ID, "AP3")
	_ = ctx4

	// AP6 (child of the dead peer) stopped and compensated; AP2 (parent)
	// ran recovery — with no S3 replica registered, the nested protocol
	// aborts the transaction.
	waitFor(t, func() bool { return entryCount(t, ap6, "D6.xml") == 0 })
	waitFor(t, func() bool { return entryCount(t, ap2, "D2.xml") == 0 })
	if ap2.Metrics().BackwardRecoveries.Load() == 0 {
		t.Error("AP2 should have backward-recovered (no replica)")
	}
	// AP4's own work was compensated by the abort cascade.
	waitFor(t, func() bool { return entryCount(t, ap4, "D4.xml") == 0 })
}

func TestTraditionalBaselineLosesRedirectedWork(t *testing.T) {
	// With chaining disabled, AP6 cannot redirect past its dead parent:
	// the work is lost (NodesLost accounting) and nobody is informed.
	c := newCluster(t)
	ap2 := c.add("AP2", Options{DisableChaining: true})
	ap3 := c.add("AP3", Options{DisableChaining: true})
	ap6 := c.add("AP6", Options{DisableChaining: true})
	_ = ap2
	hostEntryService(t, ap6, "S6", "D6.xml")

	release := make(chan struct{})
	gate(t, ap6, "S6", release)
	ap3.HostService(services.NewFuncService(
		services.Descriptor{Name: "S3", ResultName: "updateResult"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, _ := EnvFrom(cctx)
			if err := env.Peer.CallAsync(bg, env.Txn, "AP6", "S6", nil); err != nil {
				return nil, err
			}
			return []string{`<updateResult/>`}, nil
		}))

	txc := ap2.Begin()
	if _, err := ap2.Call(bg, txc, "AP3", "S3", nil); err != nil {
		t.Fatal(err)
	}
	c.net.Disconnect("AP3")
	close(release)

	waitFor(t, func() bool { return ap6.Metrics().NodesLost.Load() > 0 })
	if ap6.Metrics().Redirects.Load() != 0 {
		t.Fatal("baseline should not redirect")
	}
	if ap2.Metrics().Redirects.Load() != 0 {
		t.Fatal("AP2 received a redirect in baseline mode")
	}
}

func TestSpheresOfAtomicity(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{Super: true})
	ap2 := c.add("AP2", Options{Super: true})
	ap3 := c.add("AP3", Options{}) // regular peer
	hostEntryService(t, ap2, "S2", "D2.xml")
	hostEntryService(t, ap3, "S3", "D3.xml")

	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP2", "S2", nil); err != nil {
		t.Fatal(err)
	}
	if !ap1.SpheresOfAtomicityHolds(txc) {
		t.Fatal("all-super participant set should guarantee atomicity")
	}
	if _, err := ap1.Call(bg, txc, "AP3", "S3", nil); err != nil {
		t.Fatal(err)
	}
	if ap1.SpheresOfAtomicityHolds(txc) {
		t.Fatal("regular participant must break the sphere")
	}
}

// waitFor polls cond until true or fails the test.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never satisfied")
}

// marshal serializes a document's root for diagnostics.
func marshal(d *xmldom.Document) string {
	if d == nil || d.Root() == nil {
		return ""
	}
	return xmldom.MarshalString(d.Root())
}
