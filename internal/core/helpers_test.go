package core

import (
	"context"
	"sync/atomic"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/xmldom"
)

// contextT keeps service closures in tests short.
type contextT = context.Context

// bg is the default context tests pass to the ctx-first engine API.
var bg = context.Background()

// p2pID aliases the peer identifier type for helper brevity.
type p2pID = p2p.PeerID

// timeAfter is the standard test timeout channel.
func timeAfter() <-chan time.Time { return time.After(5 * time.Second) }

// docServiceCalls lists a (snapshot) document's service calls.
func docServiceCalls(doc *xmldom.Document) []*axml.ServiceCall {
	return axml.ServiceCalls(doc)
}

// servicesDescriptor builds the standard descriptor used by the scenario
// services: they produce <updateResult> fragments over a target document.
func servicesDescriptor(name, doc string) services.Descriptor {
	return services.Descriptor{Name: name, ResultName: "updateResult", TargetDocument: doc}
}

// wrapWithFault replaces a registered service with a wrapper that runs the
// original and then fails with the named fault while flag is set — the
// standard failure-injection device of the scenario tests: the peer
// performs (and logs) its work, then its processing fails, exactly like
// AP5 in Figure 1.
func wrapWithFault(p *Peer, name string, flag *atomic.Bool, faultName string) {
	inner, ok := p.Registry().Get(name)
	if !ok {
		panic("wrapWithFault: no such service " + name)
	}
	p.Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, ok := EnvFrom(cctx)
			if !ok {
				panic("wrapWithFault: no engine environment")
			}
			out, err := inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params})
			if err != nil {
				return nil, err
			}
			if flag.Load() {
				return nil, &services.Fault{Name: faultName, Msg: "injected"}
			}
			return out, nil
		}))
}

// failFlag wraps a registered service with fault injection and returns the
// flag controlling it.
func failFlag(t interface{ Helper() }, p *Peer, name, faultName string) *atomic.Bool {
	t.Helper()
	flag := &atomic.Bool{}
	wrapWithFault(p, name, flag, faultName)
	return flag
}

// compositeCalling builds a service that invokes target/service within the
// caller's transaction and relays the fragments.
func compositeCalling(t interface{ Helper() }, name string, target string, service string) services.Service {
	t.Helper()
	return services.NewFuncService(services.Descriptor{Name: name, ResultName: "updateResult"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, ok := EnvFrom(cctx)
			if !ok {
				panic("compositeCalling: no engine environment")
			}
			return env.Peer.Call(bg, env.Txn, p2pPeerID(target), service, params)
		})
}

// p2pPeerID converts for readability at call sites.
func p2pPeerID(s string) (id p2pID) { return p2pID(s) }

// gate replaces a service with a wrapper that blocks until release closes,
// so tests control exactly when the service's work completes.
func gate(t interface{ Fatal(...any) }, p *Peer, name string, release <-chan struct{}) {
	inner, ok := p.Registry().Get(name)
	if !ok {
		t.Fatal("gate: no such service " + name)
	}
	p.Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			<-release
			env, _ := EnvFrom(cctx)
			return inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params})
		}))
}

// wrapCount replaces a service with a wrapper counting invocations.
func wrapCount(p *Peer, name string, counter *atomic.Int32) {
	inner, _ := p.Registry().Get(name)
	p.Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			counter.Add(1)
			env, _ := EnvFrom(cctx)
			return inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params})
		}))
}
