package core

import (
	"path/filepath"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

func TestRecoverPendingCompensatesInFlightTxn(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "peer.wal")
	log, err := wal.OpenFile(logPath, true)
	if err != nil {
		t.Fatal(err)
	}
	store := axml.NewStore(log)
	if _, err := store.AddParsed("D.xml", `<D><a>orig</a></D>`); err != nil {
		t.Fatal(err)
	}
	snapshot, _ := store.Snapshot("D.xml")

	// T1 commits; T2 is in flight at "crash" time.
	loc, _ := axml.ParseQuery(`Select d from d in D`)
	if _, err := log.Append(&wal.Record{Txn: "T1", Type: wal.TypeBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply("T1", axml.NewInsert(loc, `<committed/>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(&wal.Record{Txn: "T1", Type: wal.TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(&wal.Record{Txn: "T2", Type: wal.TypeBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply("T2", axml.NewInsert(loc, `<uncommitted/>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	locA, _ := axml.ParseQuery(`Select d/a from d in D`)
	if _, err := store.Apply("T2", axml.NewReplace(locA, `<a>dirty</a>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": the documents are the persistent state (they carry T2's
	// uncommitted effects); the log is reopened and recovery runs.
	relog, err := wal.OpenFile(logPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	restore := axml.NewStore(relog)
	dirtyDoc, _ := store.Snapshot("D.xml")
	restore.Add(dirtyDoc)

	recovered, err := RecoverPending(restore)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "T2" {
		t.Fatalf("recovered = %v", recovered)
	}
	// T2's effects are gone; T1's survive.
	live, _ := restore.Get("D.xml")
	wantDoc := snapshot.Clone()
	frag, _ := xmldom.ParseFragment(wantDoc, `<committed/>`)
	if err := wantDoc.AppendChild(wantDoc.Root(), frag); err != nil {
		t.Fatal(err)
	}
	if !live.Equal(wantDoc) {
		t.Fatalf("after recovery:\n got: %s\nwant: %s",
			xmldom.MarshalString(live.Root()), xmldom.MarshalString(wantDoc.Root()))
	}
	// Idempotent.
	again, err := RecoverPending(restore)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second pass recovered %v", again)
	}
}

func TestRecoverPendingViaPeer(t *testing.T) {
	c := newCluster(t)
	ap1 := c.add("AP1", Options{})
	hostEntryService(t, ap1, "S1", "D1.xml")
	txc := ap1.Begin()
	if _, err := ap1.Call(bg, txc, "AP1", "S1", nil); err != nil {
		t.Fatal(err)
	}
	// The peer "restarts" without committing: the same store/log stand in
	// for the reloaded persistent state.
	recovered, err := ap1.RecoverPending()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered = %v", recovered)
	}
	if entryCount(t, ap1, "D1.xml") != 0 {
		t.Fatal("pending effects survived restart recovery")
	}
}
