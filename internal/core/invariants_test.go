package core

import (
	"strings"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

func TestCheckLSNMonotonic(t *testing.T) {
	log := wal.NewMemory()
	for i := 0; i < 5; i++ {
		if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeBegin}); err != nil {
			t.Fatal(err)
		}
	}
	recs := log.Records()
	// Gaps are fine (a checkpoint trimmed resolved transactions)…
	if err := CheckLSNMonotonic([]*wal.Record{recs[0], recs[3]}); err != nil {
		t.Fatalf("gapped but increasing sequence flagged: %v", err)
	}
	// …but regressions and duplicates are not.
	if err := CheckLSNMonotonic([]*wal.Record{recs[3], recs[1]}); err == nil {
		t.Fatal("LSN regression not flagged")
	}
	if err := CheckLSNMonotonic([]*wal.Record{recs[2], recs[2]}); err == nil {
		t.Fatal("duplicate LSN not flagged")
	}
}

func TestCheckReplayConsistency(t *testing.T) {
	log := wal.NewMemory()
	for i := 0; i < 5; i++ {
		if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeBegin}); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckReplayConsistency(log.Records()); err != nil {
		t.Fatalf("contiguous log flagged: %v", err)
	}
	recs := log.Records()
	gapped := []*wal.Record{recs[0], recs[2]}
	if err := CheckReplayConsistency(gapped); err == nil {
		t.Fatal("LSN gap not flagged")
	}
}

func TestCheckReverseCompensationOrder(t *testing.T) {
	log := wal.NewMemory()
	store := axml.NewStore(log)
	if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := axml.ParseQuery(`Select d/log from d in D`)
	for i := 0; i < 3; i++ {
		if _, err := store.Apply("T", axml.NewInsert(loc, `<entry/>`), nil, axml.Lazy); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Compensate(store, "T"); err != nil {
		t.Fatal(err)
	}
	if err := CheckReverseCompensationOrder(log, "T"); err != nil {
		t.Fatalf("correct compensation flagged: %v", err)
	}
	if err := CheckCompensationComplete(log, "T"); err != nil {
		t.Fatalf("complete compensation flagged: %v", err)
	}

	// A forged bracket in forward (not reverse) order must be flagged.
	flog := wal.NewMemory()
	mk := func(typ wal.Type, node uint64) {
		if _, err := flog.Append(&wal.Record{Txn: "T", Type: typ, Doc: "D.xml", NodeID: node}); err != nil {
			t.Fatal(err)
		}
	}
	mk(wal.TypeInsert, 1)
	mk(wal.TypeInsert, 2)
	if _, err := flog.Append(&wal.Record{Txn: "T", Type: wal.TypeCompensateBegin}); err != nil {
		t.Fatal(err)
	}
	mk(wal.TypeDelete, 1) // wrong: node 2 must be undone first
	mk(wal.TypeDelete, 2)
	if _, err := flog.Append(&wal.Record{Txn: "T", Type: wal.TypeCompensateEnd}); err != nil {
		t.Fatal(err)
	}
	err := CheckReverseCompensationOrder(flog, "T")
	if err == nil || !strings.Contains(err.Error(), "reverse order") {
		t.Fatalf("forward-order bracket not flagged: %v", err)
	}
}

func TestCheckCompensationCompleteUncompensated(t *testing.T) {
	log := wal.NewMemory()
	store := axml.NewStore(log)
	if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := axml.ParseQuery(`Select d/log from d in D`)
	if _, err := store.Apply("T", axml.NewInsert(loc, `<entry/>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	if err := CheckCompensationComplete(log, "T"); err == nil {
		t.Fatal("uncompensated uncommitted effects not flagged")
	}
	if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if err := CheckCompensationComplete(log, "T"); err != nil {
		t.Fatalf("committed txn flagged: %v", err)
	}
}

// TestCrashMidCompensationRecovers exercises the unclosed-bracket epoch
// fold: a compensation run crashes halfway (one of two undos applied, no
// CompensateEnd); the recovery re-run must restore the document exactly and
// leave a log the invariant checkers accept.
func TestCrashMidCompensationRecovers(t *testing.T) {
	log := wal.NewMemory()
	store := axml.NewStore(log)
	if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
		t.Fatal(err)
	}
	snap, _ := store.Snapshot("D.xml")
	loc, _ := axml.ParseQuery(`Select d/log from d in D`)
	if _, err := store.Apply("T", axml.NewInsert(loc, `<a/>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply("T", axml.NewInsert(loc, `<b/>`), nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}

	// Partial compensation: bracket opened, only the first undo (of <b/>)
	// applied, then "crash" — no CompensateEnd.
	actions := BuildCompensation(log, "T")
	if len(actions) != 2 {
		t.Fatalf("expected 2 undo actions, got %d", len(actions))
	}
	if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeCompensateBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply("T", actions[0], nil, axml.Lazy); err != nil {
		t.Fatal(err)
	}

	if AlreadyCompensated(log, "T") {
		t.Fatal("partial compensation reported as complete")
	}
	// Recovery re-runs compensation over the folded epoch.
	if _, err := Compensate(store, "T"); err != nil {
		t.Fatal(err)
	}
	live, _ := store.Get("D.xml")
	if !live.Equal(snap) {
		t.Fatalf("document not restored:\n got: %s\nwant: %s",
			xmldom.MarshalString(live.Root()), xmldom.MarshalString(snap.Root()))
	}
	if !AlreadyCompensated(log, "T") {
		t.Fatal("recovery did not complete compensation")
	}
	if err := CheckCompensationComplete(log, "T"); err != nil {
		t.Fatal(err)
	}
	if err := CheckReverseCompensationOrder(log, "T"); err != nil {
		t.Fatal(err)
	}
}
