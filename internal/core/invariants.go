package core

import (
	"fmt"

	"axmltx/internal/wal"
)

// Invariant checkers over a peer's WAL, exported for the conformance suite
// (internal/chaos) and property tests. They formalize the relaxed-atomicity
// guarantees of §3.1–§3.3 as machine-checkable predicates:
//
//   - CheckReplayConsistency: the log itself is replayable — LSNs are
//     strictly increasing and contiguous, so a reopened log (FileLog with
//     torn-tail truncation) yields exactly the prefix that was durable.
//   - CheckCompensationComplete: a transaction that did not commit locally
//     has no surviving effects; one that committed was never compensated.
//   - CheckReverseCompensationOrder: every completed compensation bracket
//     undoes its epoch's effects in exact reverse order (the Sagas rule
//     §3.1 builds on).

// CheckReplayConsistency verifies that the record sequence has strictly
// increasing, contiguous LSNs — the property WAL replay after crash-restart
// depends on. An empty log is trivially consistent.
func CheckReplayConsistency(recs []*wal.Record) error {
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			return fmt.Errorf("core: LSN gap: record %d has LSN %d after LSN %d",
				i, recs[i].LSN, recs[i-1].LSN)
		}
	}
	return nil
}

// CheckLSNMonotonic verifies strictly increasing LSNs without requiring
// contiguity — the replay invariant for checkpointed segmented logs, where
// a checkpoint snapshot legitimately drops the records of resolved
// transactions and leaves gaps in the surviving sequence.
func CheckLSNMonotonic(recs []*wal.Record) error {
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			return fmt.Errorf("core: LSN regression: record %d has LSN %d after LSN %d",
				i, recs[i].LSN, recs[i-1].LSN)
		}
	}
	return nil
}

// CheckCompensationComplete verifies txn's terminal state at one peer:
// if it committed locally, it must not (also) be fully compensated; if it
// did not commit, no structural effects may survive in the current epoch —
// every insert/delete was rolled back by a completed compensation bracket.
// Callers invoke it after the global outcome is known (for the commit case,
// only the peers that were told to commit carry a commit record; stragglers
// look like the abort case and must be reconciled first).
func CheckCompensationComplete(log wal.Log, txn string) error {
	recs := log.TxnRecords(txn)
	if HasCommitted(log, txn) {
		if AlreadyCompensated(log, txn) {
			return fmt.Errorf("core: txn %s both committed and fully compensated", txn)
		}
		return nil
	}
	if n := len(currentEpoch(recs)); n > 0 {
		return fmt.Errorf("core: txn %s did not commit but %d effect record(s) remain uncompensated", txn, n)
	}
	return nil
}

// CheckReverseCompensationOrder verifies that every completed compensation
// bracket in txn's log undoes the effects of its epoch in exact reverse
// order: the i-th compensating record must undo the (n-i)-th forward record
// — a delete of the node an insert created, or an insert restoring the node
// a delete removed (matched by node ID, falling back to the logged
// before-image for restores that had to re-parse). Records of an unclosed
// bracket (crash mid-compensation) fold into the epoch, mirroring how
// recovery re-runs them.
func CheckReverseCompensationOrder(log wal.Log, txn string) error {
	recs := log.TxnRecords(txn)
	var epoch, bracket []*wal.Record
	open := false
	brackets := 0
	for _, r := range recs {
		switch r.Type {
		case wal.TypeCompensateBegin:
			if open {
				epoch = append(epoch, bracket...)
				bracket = nil
			}
			open = true
		case wal.TypeCompensateEnd:
			if !open {
				continue
			}
			brackets++
			if err := checkUndoesReverse(epoch, bracket); err != nil {
				return fmt.Errorf("core: txn %s compensation bracket %d: %w", txn, brackets, err)
			}
			epoch, bracket, open = epoch[:0], nil, false
		case wal.TypeInsert, wal.TypeDelete:
			if open {
				bracket = append(bracket, r)
			} else {
				epoch = append(epoch, r)
			}
		}
	}
	return nil
}

// checkUndoesReverse verifies comp[i] undoes eff[len(eff)-1-i] for every i.
func checkUndoesReverse(eff, comp []*wal.Record) error {
	if len(comp) != len(eff) {
		return fmt.Errorf("%d compensating record(s) for %d effect(s)", len(comp), len(eff))
	}
	for i, c := range comp {
		e := eff[len(eff)-1-i]
		if undoes(e, c) {
			continue
		}
		return fmt.Errorf("record %d (%s node %d) does not undo effect (%s node %d) in reverse order",
			i, typeName(c.Type), c.NodeID, typeName(e.Type), e.NodeID)
	}
	return nil
}

// undoes reports whether compensating record c undoes forward record e.
func undoes(e, c *wal.Record) bool {
	if e.Doc != c.Doc {
		return false
	}
	switch {
	case e.Type == wal.TypeInsert && c.Type == wal.TypeDelete:
		return c.NodeID == e.NodeID
	case e.Type == wal.TypeDelete && c.Type == wal.TypeInsert:
		// The restore normally re-attaches the very node (same ID); when the
		// node had to be re-parsed (fresh store after restart) the IDs
		// differ but the before-image matches.
		return c.NodeID == e.NodeID || c.XML == e.XML
	}
	return false
}

func typeName(t wal.Type) string {
	switch t {
	case wal.TypeInsert:
		return "insert"
	case wal.TypeDelete:
		return "delete"
	default:
		return fmt.Sprintf("type(%d)", t)
	}
}
