package core

import (
	"context"

	"axmltx/internal/obs"
	"axmltx/internal/p2p"
)

// This file implements §3.3: handling peer disconnection using the chained
// active-peer list. The scenarios map onto engine events as follows:
//
//	(a) leaf disconnection, detected by the parent: the synchronous
//	    invocation (or the ping detector) surfaces ErrUnreachable, which
//	    the nested recovery machinery in recovery.go treats as the
//	    "disconnected" fault — handlers/replica retry, else abort.
//	(b) parent disconnection, detected by the child returning results:
//	    runAsync's push fails; redirectPastDeadParent walks the chain to
//	    the closest live ancestor (or super peer) and hands it the results
//	    together with a disconnection notice.
//	(c) child disconnection, detected by the parent's keep-alive pinger:
//	    OnPeerDown notifies the dead peer's descendants (so they stop
//	    wasting effort) and attempts forward recovery, reusing any
//	    redirected descendant work.
//	(d) sibling disconnection, detected by a missed stream batch: the
//	    sibling notifies the dead peer's parent and children, which then
//	    proceed as in (b)/(c).

// redirectPastDeadParent implements the child side of scenario (b): the
// results of `service` could not be delivered to dead; send them to the
// closest live ancestor from the active peer list, falling back to the
// closest super peer, so the work is not discarded.
func (p *Peer) redirectPastDeadParent(txc *Context, dead p2p.PeerID, service string, resp *InvokeResponse) {
	chain := txc.Chain()
	if chain == nil || p.opts.DisableChaining {
		// Traditional recovery: nobody to hand the results to; the work is
		// lost and will be discarded when recovery reaches us.
		p.metrics.NodesLost.Add(int64(resp.Nodes))
		return
	}
	sp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindRedirect, service)
	sp.SetAttr("dead", string(dead))
	sp.SetChain(chain.String())
	payload := &RedirectResult{Txn: txc.ID, Dead: dead, Service: service, Response: *resp}
	msg := &p2p.Message{Kind: p2p.KindRedirect, Txn: txc.ID, Subject: service,
		Payload: encode(payload), Span: sp.ID()}
	bg := context.Background()

	// "AP6 can send the results directly to AP2 ... it is very likely that
	// even AP2 might have disconnected. Given this, AP6 can try the next
	// closest peer or the closest super peer in the list."
	tried := map[p2p.PeerID]bool{dead: true}
	for _, ancestor := range chain.AncestorsOf(dead) {
		if tried[ancestor] {
			continue
		}
		tried[ancestor] = true
		if err := p.transport.Send(bg, ancestor, msg); err == nil {
			p.metrics.Redirects.Add(1)
			sp.SetTarget(string(ancestor))
			sp.End("", nil)
			return
		}
		p.metrics.DisconnectsDetected.Add(1)
	}
	if superPeer, ok := chain.ClosestSuperAncestor(dead); ok && !tried[superPeer] {
		if err := p.transport.Send(bg, superPeer, msg); err == nil {
			p.metrics.Redirects.Add(1)
			sp.SetTarget(string(superPeer))
			sp.End("", nil)
			return
		}
	}
	// Every ancestor is gone; the work really is lost.
	p.metrics.NodesLost.Add(int64(resp.Nodes))
	sp.End(CodePeerDown, ErrPeerDown)
}

// handleRedirect is the ancestor side of scenario (b): record the salvaged
// work, inform ourselves of the disconnection, and run the nested recovery
// protocol for the dead peer's invocation.
func (p *Peer) handleRedirect(msg *p2p.Message) (*p2p.Message, error) {
	var rr RedirectResult
	if err := decode(msg.Payload, &rr); err != nil {
		return nil, err
	}
	p.metrics.Redirects.Add(1)
	sp := p.tracer.Start(rr.Txn, msg.Span, obs.KindRedirect, rr.Service)
	sp.SetAttr("dead", string(rr.Dead))
	sp.SetTarget(string(msg.From))
	sp.End("", nil)
	txc, ok := p.mgr.Get(rr.Txn)
	if ok {
		// The redirected fragments substitute for the dead subtree's
		// service when we (or an alternative peer we engage) re-invoke.
		txc.storeReused(map[string][]string{rr.Service: rr.Response.Fragments})
		if len(rr.Response.Comp) > 0 {
			if def, err := DecodeCompensationDef(rr.Response.Comp); err == nil {
				txc.AddChild(Invocation{Peer: p2p.PeerID(msg.From), Service: rr.Service, Comp: def})
			}
		}
	}
	p.noteDisconnection(rr.Txn, rr.Dead, p.id)
	p.mu.Lock()
	cb := p.onResult
	p.mu.Unlock()
	if cb != nil {
		cb(rr.Txn, &rr.Response)
	}
	return &p2p.Message{Kind: "redirect-ack"}, nil
}

// OnPeerDown is the entry point for scenario (c): the keep-alive detector
// (or any caller) reports a peer dead. For every active transaction whose
// chain includes the dead peer, the engine notifies the dead peer's
// relatives and recovers.
func (p *Peer) OnPeerDown(dead p2p.PeerID) {
	p.metrics.DisconnectsDetected.Add(1)
	for _, txn := range p.mgr.Active() {
		txc, ok := p.mgr.Get(txn)
		if !ok {
			continue
		}
		chain := txc.Chain()
		if chain == nil || !chain.Contains(dead) {
			continue
		}
		p.noteDisconnection(txn, dead, p.id)
	}
	p.replicas.RemovePeer(dead)
}

// NotifySiblingDown is the entry point for scenario (d): a sibling detected
// the producer of its stream silent. Using the chain, it notifies the dead
// peer's parent and children, which then follow scenarios (c) and (b)
// respectively.
func (p *Peer) NotifySiblingDown(txn string, dead p2p.PeerID) {
	p.metrics.DisconnectsDetected.Add(1)
	txc, ok := p.mgr.Get(txn)
	if !ok {
		return
	}
	chain := txc.Chain()
	if chain == nil || p.opts.DisableChaining {
		return
	}
	bg := context.Background()
	notice := &DisconnectNotice{Txn: txn, Dead: dead, Detected: p.id}
	payload := encode(notice)
	targets := append([]p2p.PeerID{}, chain.ChildrenOf(dead)...)
	if parent := chain.ParentOf(dead); parent != "" {
		targets = append(targets, parent)
	}
	for _, t := range targets {
		if t == p.id {
			p.noteDisconnection(txn, dead, p.id)
			continue
		}
		_ = p.transport.Send(bg, t, &p2p.Message{Kind: p2p.KindDisconnect, Txn: txn, Payload: payload})
	}
}

// handleDisconnect processes a disconnection notice about another peer.
func (p *Peer) handleDisconnect(msg *p2p.Message) {
	var notice DisconnectNotice
	if err := decode(msg.Payload, &notice); err != nil {
		return
	}
	p.noteDisconnection(notice.Txn, notice.Dead, notice.Detected)
}

// noteDisconnection reacts to "peer dead during txn" according to our
// position in the chain relative to the dead peer:
//
//   - we are its parent → recover the subtree: descendants of dead are told
//     to stop, then forward recovery via an alternative provider (reusing
//     salvaged descendant work), else nested abort;
//   - we are a descendant → our work is doomed unless redirected; abort the
//     local context to stop wasting effort ("prevent them from wasting
//     effort (doing work which is ultimately going to be discarded)");
//   - otherwise (ancestor levels above the parent, siblings) → forward the
//     responsibility to the parent if it is alive, else handle it here as
//     the closest live ancestor.
func (p *Peer) noteDisconnection(txn string, dead p2p.PeerID, detectedBy p2p.PeerID) {
	txc, ok := p.mgr.Get(txn)
	if !ok {
		return
	}
	p.mu.Lock()
	cb := p.onDown
	p.mu.Unlock()
	if cb != nil {
		defer cb(txn, dead)
	}
	chain := txc.Chain()
	if chain == nil || p.opts.DisableChaining || !chain.Contains(dead) {
		// Without chaining the only safe reaction is the nested recovery
		// protocol from our own position: abort.
		_ = p.abortContext(txc, "", true)
		return
	}
	// Descendant of the dead peer: stop work, discard local effects.
	for _, anc := range chain.AncestorsOf(p.id) {
		if anc == dead {
			p.metrics.NodesLost.Add(int64(workNodesSince(p.store.Log(), txn, 0)))
			_ = p.abortContext(txc, "", false)
			return
		}
	}
	if chain.ParentOf(dead) == p.id {
		p.recoverDeadChild(txc, chain, dead)
		return
	}
	// We are a further ancestor or a sibling: delegate to the dead peer's
	// parent when reachable, otherwise act as the closest live ancestor.
	parent := chain.ParentOf(dead)
	if parent != "" && parent != p.id {
		notice := &DisconnectNotice{Txn: txn, Dead: dead, Detected: detectedBy}
		if err := p.transport.Send(context.Background(), parent,
			&p2p.Message{Kind: p2p.KindDisconnect, Txn: txn, Payload: encode(notice)}); err == nil {
			return
		}
		p.metrics.DisconnectsDetected.Add(1)
	}
	p.recoverDeadChild(txc, chain, dead)
}

// recoverDeadChild performs the parent-side recovery of scenario (c): tell
// the orphaned descendants to stop, then try to redo the dead peer's
// service on an alternative provider (forward recovery), reusing any
// salvaged results; if no alternative exists, abort by the nested protocol.
func (p *Peer) recoverDeadChild(txc *Context, chain *Chain, dead p2p.PeerID) {
	bg := context.Background()
	notice := encode(&DisconnectNotice{Txn: txc.ID, Dead: dead, Detected: p.id})
	for _, desc := range chain.DescendantsOf(dead) {
		_ = p.transport.Send(bg, desc, &p2p.Message{Kind: p2p.KindDisconnect, Txn: txc.ID, Payload: notice})
	}

	service := chain.ServiceAt(dead)
	if service == "" {
		_ = p.abortContext(txc, "", true)
		return
	}
	if alt, ok := p.replicas.Alternative(service, dead); ok && txc.Status() == StatusActive {
		rsp := p.tracer.Start(txc.ID, txc.SpanID(), obs.KindRetry, service)
		rsp.SetTarget(string(alt))
		rsp.SetAttr("dead", string(dead))
		req := &InvokeRequest{
			Txn:     txc.ID,
			Origin:  txc.Origin,
			Caller:  p.id,
			Service: service,
			Reused:  txc.reusedSnapshot(),
		}
		if !p.opts.DisableChaining {
			req.Chain = chain.Add(p.id, alt, service, false)
		}
		if len(req.Reused) > 0 {
			p.metrics.WorkReused.Add(int64(len(req.Reused)))
			rsp.SetAttr("reused", "true")
		}
		msg := &p2p.Message{Kind: p2p.KindInvoke, Txn: txc.ID, Subject: service,
			Payload: encode(req), Span: rsp.ID()}
		reply, err := p.transport.Request(bg, alt, msg)
		if err == nil && reply.Err == "" {
			var resp InvokeResponse
			if decode(reply.Payload, &resp) == nil {
				if resp.Chain != nil && !p.opts.DisableChaining {
					txc.SetChain(resp.Chain)
				}
				inv := Invocation{Peer: alt, Service: service}
				if len(resp.Comp) > 0 {
					if def, derr := DecodeCompensationDef(resp.Comp); derr == nil {
						inv.Comp = def
					}
				}
				txc.AddChild(inv)
				p.metrics.ForwardRecoveries.Add(1)
				rsp.SetChain(chainStr(txc))
				rsp.End("", nil)
				p.mu.Lock()
				cb := p.onResult
				p.mu.Unlock()
				if cb != nil {
					cb(txc.ID, &resp)
				}
				return
			}
		}
		code := CodePeerDown
		if err == nil && reply != nil && reply.Code != "" {
			code = reply.Code
		}
		rsp.End(code, err)
	}
	p.metrics.BackwardRecoveries.Add(1)
	_ = p.abortContext(txc, "", true)
}

// StreamTo pushes one continuous-service batch directly to a sibling
// (scenario d's data flow). It returns the transport error so the producer
// notices subscriber death.
func (p *Peer) StreamTo(target p2p.PeerID, batch *StreamBatch) error {
	return p.transport.Send(context.Background(), target,
		&p2p.Message{Kind: p2p.KindStream, Txn: batch.Txn, Subject: batch.Service, Payload: encode(batch)})
}

// handleStream delivers a stream batch to the registered sink.
func (p *Peer) handleStream(msg *p2p.Message) {
	var batch StreamBatch
	if err := decode(msg.Payload, &batch); err != nil {
		return
	}
	p.mu.Lock()
	sink := p.streamSink
	p.mu.Unlock()
	if sink != nil {
		sink(&batch)
	}
}

// SpheresOfAtomicityHolds reports whether the transaction's atomicity is
// guaranteed despite possible disconnections: all participants in the
// chain are super peers (§3.3, Spheres of Atomicity).
func (p *Peer) SpheresOfAtomicityHolds(txc *Context) bool {
	chain := txc.Chain()
	return chain != nil && chain.SphereOfAtomicity()
}
