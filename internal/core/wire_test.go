package core

import (
	"reflect"
	"testing"
)

func TestWireInvokeRequestRoundTrip(t *testing.T) {
	in := &InvokeRequest{
		Txn: "T1@AP1", Origin: "AP1", Caller: "AP2", Service: "S3",
		Params: map[string]string{"name": "Roger Federer"},
		Chain:  fig2Chain(),
		Async:  true,
		Reused: map[string][]string{"S6": {"<r/>", "<r2/>"}},
	}
	var out InvokeRequest
	if err := decode(encode(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Txn != in.Txn || out.Service != in.Service || !out.Async {
		t.Fatalf("out = %+v", out)
	}
	if !reflect.DeepEqual(out.Params, in.Params) || !reflect.DeepEqual(out.Reused, in.Reused) {
		t.Fatal("maps mangled")
	}
	if out.Chain.String() != in.Chain.String() {
		t.Fatalf("chain = %s", out.Chain)
	}
}

func TestWireInvokeResponseRoundTrip(t *testing.T) {
	in := &InvokeResponse{
		Service: "S3", Fragments: []string{"<a/>", "<b/>"},
		Chain: NewChain("AP1", true), Comp: []byte{1, 2, 3}, Nodes: 7,
	}
	var out InvokeResponse
	if err := decode(encode(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Fragments, in.Fragments) || out.Nodes != 7 || len(out.Comp) != 3 {
		t.Fatalf("out = %+v", out)
	}
}

func TestWireNoticePayloads(t *testing.T) {
	dn := &DisconnectNotice{Txn: "T", Dead: "AP3", Detected: "AP6"}
	var dn2 DisconnectNotice
	if err := decode(encode(dn), &dn2); err != nil || dn2 != *dn {
		t.Fatalf("disconnect notice: %+v, %v", dn2, err)
	}
	rr := &RedirectResult{Txn: "T", Dead: "AP3", Service: "S6",
		Response: InvokeResponse{Service: "S6", Fragments: []string{"<x/>"}}}
	var rr2 RedirectResult
	if err := decode(encode(rr), &rr2); err != nil || rr2.Response.Fragments[0] != "<x/>" {
		t.Fatalf("redirect: %+v, %v", rr2, err)
	}
	sb := &StreamBatch{Txn: "T", Service: "S3", Seq: 4, Fragments: []string{"<t/>"}}
	var sb2 StreamBatch
	if err := decode(encode(sb), &sb2); err != nil || sb2.Seq != 4 {
		t.Fatalf("stream: %+v, %v", sb2, err)
	}
	cu := &ChainUpdate{Txn: "T", Chain: fig2Chain()}
	var cu2 ChainUpdate
	if err := decode(encode(cu), &cu2); err != nil || cu2.Chain.String() != cu.Chain.String() {
		t.Fatalf("chain update: %v", err)
	}
}

func TestWireDecodeGarbage(t *testing.T) {
	var out InvokeRequest
	if err := decode([]byte{0xff, 0x01}, &out); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestChainMerge(t *testing.T) {
	// AP2 knows only its own path; a descendant's chain brings the rest.
	partial := NewChain("AP1", true)
	partial = partial.Add("AP1", "AP2", "S2", false)
	full := fig2Chain()

	merged := partial.Merge(full)
	if merged.String() != full.String() {
		t.Fatalf("merged = %s, want %s", merged, full)
	}
	// Merge is idempotent and nil-safe.
	if merged.Merge(nil).String() != merged.String() {
		t.Fatal("nil merge changed the chain")
	}
	if merged.Merge(full).String() != merged.String() {
		t.Fatal("re-merge changed the chain")
	}
	// Merge propagates super flags.
	flagged := fig2Chain()
	flagged.markSuper("AP4", true)
	if !merged.Merge(flagged).IsSuper("AP4") {
		t.Fatal("super flag not merged")
	}
	// The receiver is never mutated.
	if partial.Contains("AP6") {
		t.Fatal("merge mutated receiver")
	}
}

func TestMetricsSnapshotAndAdd(t *testing.T) {
	var m Metrics
	m.TxnsBegun.Add(2)
	m.NodesUndone.Add(7)
	m.Redirects.Add(1)
	s1 := m.Snapshot()
	if s1.TxnsBegun != 2 || s1.NodesUndone != 7 || s1.Redirects != 1 {
		t.Fatalf("snapshot = %+v", s1)
	}
	var total MetricsSnapshot
	total.Add(s1)
	total.Add(s1)
	if total.TxnsBegun != 4 || total.NodesUndone != 14 {
		t.Fatalf("total = %+v", total)
	}
}
