package core

import (
	"strings"
	"sync"
	"testing"
)

func TestManagerNewTxnIDsUnique(t *testing.T) {
	m := NewManager("AP1")
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := m.NewTxnID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate txn id %s", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for id := range seen {
		if !strings.HasSuffix(id, "@AP1") {
			t.Fatalf("id %s not origin-scoped", id)
		}
	}
}

func TestManagerBeginAndLookup(t *testing.T) {
	m := NewManager("AP1")
	ctx := m.Begin("T1@AP1", true)
	if ctx.Origin != "AP1" || ctx.Self != "AP1" || ctx.Status() != StatusActive {
		t.Fatalf("ctx = %+v", ctx)
	}
	if !ctx.Chain().IsSuper("AP1") {
		t.Fatal("origin chain should carry super flag")
	}
	got, ok := m.Get("T1@AP1")
	if !ok || got != ctx {
		t.Fatal("lookup failed")
	}
	m.Remove("T1@AP1")
	if _, ok := m.Get("T1@AP1"); ok {
		t.Fatal("removed context still present")
	}
}

func TestManagerBeginParticipantIdempotent(t *testing.T) {
	m := NewManager("AP3")
	chain := NewChain("AP1", true).Add("AP1", "AP3", "S3", false)
	c1 := m.BeginParticipant("T1@AP1", "AP1", "AP1", "S3", chain)
	c2 := m.BeginParticipant("T1@AP1", "AP1", "AP1", "S3", nil)
	if c1 != c2 {
		t.Fatal("participant context duplicated")
	}
	if c1.Parent != "AP1" || c1.Service != "S3" {
		t.Fatalf("ctx = %+v", c1)
	}
}

func TestManagerParticipantRevivedAfterAbort(t *testing.T) {
	m := NewManager("AP3")
	c1 := m.BeginParticipant("T1@AP1", "AP1", "AP1", "S3", nil)
	c1.AddChild(Invocation{Peer: "AP4", Service: "S4"})
	if !c1.transition(StatusAborted) {
		t.Fatal("transition failed")
	}
	// Re-invocation (forward recovery) revives the context with a clean
	// child list.
	c2 := m.BeginParticipant("T1@AP1", "AP1", "AP1", "S3", nil)
	if c2 != c1 {
		t.Fatal("revival created a new context")
	}
	if c2.Status() != StatusActive {
		t.Fatalf("status = %v", c2.Status())
	}
	if len(c2.Children()) != 0 {
		t.Fatal("aborted epoch's children survived revival")
	}
	// A committed context is NOT revived into activity.
	c3 := m.BeginParticipant("T2@AP1", "AP1", "AP1", "S3", nil)
	c3.transition(StatusCommitted)
	c4 := m.BeginParticipant("T2@AP1", "AP1", "AP1", "S3", nil)
	if c4.Status() != StatusCommitted {
		t.Fatal("committed context was revived")
	}
}

func TestManagerActive(t *testing.T) {
	m := NewManager("AP1")
	a := m.Begin("T1@AP1", false)
	m.Begin("T2@AP1", false)
	a.transition(StatusCommitted)
	active := m.Active()
	if len(active) != 1 || active[0] != "T2@AP1" {
		t.Fatalf("active = %v", active)
	}
}

func TestContextTransitions(t *testing.T) {
	m := NewManager("AP1")
	ctx := m.Begin("T1@AP1", false)
	if !ctx.transition(StatusAborted) {
		t.Fatal("first transition failed")
	}
	if ctx.transition(StatusCommitted) {
		t.Fatal("terminal context transitioned again")
	}
	if ctx.Status() != StatusAborted {
		t.Fatal("status changed after terminal")
	}
}

func TestContextReusedResults(t *testing.T) {
	m := NewManager("AP1")
	ctx := m.Begin("T1@AP1", false)
	if _, ok := ctx.takeReused("S6"); ok {
		t.Fatal("empty context had reused results")
	}
	ctx.storeReused(map[string][]string{"S6": {"<r/>"}})
	ctx.storeReused(nil) // no-op
	snap := ctx.reusedSnapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	frags, ok := ctx.takeReused("S6")
	if !ok || len(frags) != 1 {
		t.Fatal("takeReused failed")
	}
	if _, ok := ctx.takeReused("S6"); ok {
		t.Fatal("reused results not consumed")
	}
	// The snapshot taken earlier is unaffected by consumption.
	if len(snap["S6"]) != 1 {
		t.Fatal("snapshot aliased")
	}
	if ctx.reusedSnapshot() != nil {
		t.Fatal("empty snapshot should be nil")
	}
}

func TestContextCompDefs(t *testing.T) {
	m := NewManager("AP1")
	ctx := m.Begin("T1@AP1", false)
	ctx.AddCompDef(&CompensationDef{Txn: "T1@AP1", Peer: "AP3", Nodes: 1})
	ctx.AddCompDef(&CompensationDef{Txn: "T1@AP1", Peer: "AP3", Nodes: 5}) // supersedes
	ctx.AddCompDef(&CompensationDef{Txn: "T1@AP1", Peer: "AP4", Nodes: 2})
	defs := ctx.CompDefs()
	if len(defs) != 2 {
		t.Fatalf("defs = %d", len(defs))
	}
	for _, d := range defs {
		if d.Peer == "AP3" && d.Nodes != 5 {
			t.Fatal("later definition did not supersede")
		}
	}
}

func TestContextUndoNodesAccumulates(t *testing.T) {
	m := NewManager("AP1")
	ctx := m.Begin("T1@AP1", false)
	ctx.AddUndoNodes(3)
	ctx.AddUndoNodes(4)
	if ctx.UndoNodes() != 7 {
		t.Fatalf("undo nodes = %d", ctx.UndoNodes())
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusActive: "active", StatusCommitted: "committed", StatusAborted: "aborted", Status(9): "Status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q", s, got)
		}
	}
}
