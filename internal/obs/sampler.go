package obs

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sampler is an adaptive, tail-based sampling sink: it buffers every span of
// a transaction until the transaction reaches a terminal span at this peer
// (the origin's txn root, or a participant's commit/abort span), then keeps
// or drops the whole buffer at once.
//
// The keep rules are monotone — a transaction can only be upgraded from
// "drop" to "keep", never the reverse:
//
//   - any error span, or any abort/compensate/fault/retry/redirect span,
//     forces keep (failed and recovered transactions are always traced);
//   - a terminal span slower than the SlowQuantile of recently observed
//     terminal durations forces keep (the adaptive part: the cutoff follows
//     the workload, so "slow" means slow *for this peer right now*);
//   - ForceKeep (the engine's slow-transaction hook) forces keep;
//   - otherwise a fast, clean commit survives with probability KeepRate,
//     decided by a deterministic coin over the transaction ID (KeepCoin).
//
// Because the coin is a pure function of the transaction ID, every peer of a
// deployment flips it identically without coordination. The origin
// additionally propagates its decision in Message.Span (EncodeWireSpan /
// DecodeWireSpan), so peers agree on the drop side even if a transport
// rewrites transaction IDs; keep upgrades stay local and conservative — a
// peer that saw an error keeps its part of the trace even when the rest of
// the deployment dropped theirs.
type Sampler struct {
	next Sink
	cfg  SamplerConfig

	mu      sync.Mutex
	pending map[string]*txnBuffer
	order   []string // pending transactions, oldest first (overflow eviction)
	hints   map[string]bool
	window  []time.Duration // recent terminal durations, ring-buffered
	wnext   int
	wfull   bool
	decided map[string]bool // txn -> kept; bounded memory of past decisions
	dorder  []string

	txnsKept    atomic.Int64
	txnsDropped atomic.Int64
	spansIn     atomic.Int64
	spansOut    atomic.Int64
}

// SamplerConfig tunes a Sampler. The zero value selects the defaults.
type SamplerConfig struct {
	// KeepRate is the fraction of fast, clean commits kept (default 0.05).
	KeepRate float64
	// SlowQuantile is the quantile of recent terminal-span durations above
	// which a transaction is always kept (default 0.95).
	SlowQuantile float64
	// Window is how many recent terminal durations feed the slow cutoff
	// (default 256).
	Window int
	// MaxPending bounds the buffered in-flight transactions; when exceeded
	// the oldest is flushed as kept (a transaction still running when that
	// many others completed is slow by definition). Default 1024.
	MaxPending int
	// MaxDecisions bounds the remembered keep/drop decisions, used to route
	// late spans and to answer "was this sampled out?" (default 4096).
	MaxDecisions int
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.KeepRate <= 0 {
		c.KeepRate = 0.05
	}
	if c.SlowQuantile <= 0 || c.SlowQuantile >= 1 {
		c.SlowQuantile = 0.95
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = 4096
	}
	return c
}

// SamplerStats is a snapshot of a sampler's counters.
type SamplerStats struct {
	TxnsKept    int64
	TxnsDropped int64
	SpansIn     int64
	SpansOut    int64
}

type txnBuffer struct {
	spans  []*Span
	forced bool
}

// NewSampler wraps next with adaptive tail-based sampling. A nil next panics
// at the first Emit, like any other sink misconfiguration.
func NewSampler(next Sink, cfg SamplerConfig) *Sampler {
	c := cfg.withDefaults()
	return &Sampler{
		next:    next,
		cfg:     c,
		pending: make(map[string]*txnBuffer),
		hints:   make(map[string]bool),
		window:  make([]time.Duration, c.Window),
		decided: make(map[string]bool),
	}
}

// Next returns the wrapped sink, so ring-buffer discovery (core's admin
// endpoints) can descend through a sampler.
func (s *Sampler) Next() Sink {
	if s == nil {
		return nil
	}
	return s.next
}

// interesting reports whether a span forces its transaction to be kept.
func interesting(sp *Span) bool {
	if sp.Outcome != OutcomeOK {
		return true
	}
	switch sp.Kind {
	case KindAbort, KindCompensate, KindFault, KindRetry, KindRedirect:
		return true
	}
	return false
}

// terminal reports whether a span completes its transaction at this peer.
func terminal(sp *Span) bool {
	switch sp.Kind {
	case KindTxn, KindCommit, KindAbort:
		return true
	}
	return false
}

// Emit implements Sink.
func (s *Sampler) Emit(sp *Span) {
	s.spansIn.Add(1)
	s.mu.Lock()
	if kept, ok := s.decided[sp.Txn]; ok {
		// Late span of an already-decided transaction (e.g. a compensation
		// landing after the abort flush): follow the decision, except that
		// an interesting late span still surfaces on its own.
		s.mu.Unlock()
		if kept || interesting(sp) {
			s.spansOut.Add(1)
			s.next.Emit(sp)
		}
		return
	}
	buf := s.pending[sp.Txn]
	if buf == nil {
		buf = &txnBuffer{}
		s.pending[sp.Txn] = buf
		s.order = append(s.order, sp.Txn)
	}
	buf.spans = append(buf.spans, sp)
	if interesting(sp) {
		buf.forced = true
	}
	if !terminal(sp) {
		var spill []*Span
		if len(s.pending) > s.cfg.MaxPending {
			spill = s.evictOldestLocked()
		}
		s.mu.Unlock()
		s.forward(spill)
		return
	}
	d := sp.Duration()
	slow := s.observeLocked(d)
	keep := buf.forced || slow || s.keepCoinLocked(sp.Txn)
	spans := s.decideLocked(sp.Txn, keep)
	s.mu.Unlock()
	s.forward(spans)
}

// forward emits a flushed buffer outside the sampler lock.
func (s *Sampler) forward(spans []*Span) {
	for _, sp := range spans {
		s.spansOut.Add(1)
		s.next.Emit(sp)
	}
}

// decideLocked commits a keep/drop decision and returns the spans to emit.
func (s *Sampler) decideLocked(txn string, keep bool) []*Span {
	buf := s.pending[txn]
	delete(s.pending, txn)
	delete(s.hints, txn)
	for i, t := range s.order {
		if t == txn {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.decided[txn] = keep
	s.dorder = append(s.dorder, txn)
	if len(s.dorder) > s.cfg.MaxDecisions {
		delete(s.decided, s.dorder[0])
		s.dorder = s.dorder[1:]
	}
	if keep {
		s.txnsKept.Add(1)
		if buf != nil {
			return buf.spans
		}
		return nil
	}
	s.txnsDropped.Add(1)
	return nil
}

// evictOldestLocked flushes the oldest pending transaction as kept: if it is
// still running after MaxPending others completed, it is slow, and slow
// transactions are kept.
func (s *Sampler) evictOldestLocked() []*Span {
	if len(s.order) == 0 {
		return nil
	}
	return s.decideLocked(s.order[0], true)
}

// observeLocked records a terminal duration and reports whether it clears
// the adaptive slow cutoff. With fewer than 16 observations the cutoff is
// not yet trusted and nothing counts as slow.
func (s *Sampler) observeLocked(d time.Duration) bool {
	s.window[s.wnext] = d
	s.wnext = (s.wnext + 1) % len(s.window)
	if s.wnext == 0 {
		s.wfull = true
	}
	n := s.wnext
	if s.wfull {
		n = len(s.window)
	}
	if n < 16 {
		return false
	}
	// Count how many recent durations d strictly beats; slow means beating
	// the SlowQuantile share of the window (counting avoids re-sorting, and
	// strict comparison keeps a constant-latency workload from flagging
	// every tied duration as slow).
	beaten := 0
	for i := 0; i < n; i++ {
		if d > s.window[i] {
			beaten++
		}
	}
	return float64(beaten)/float64(n) >= s.cfg.SlowQuantile
}

// keepCoinLocked resolves the probabilistic decision for a fast, clean
// commit: a propagated wire hint wins, otherwise the deterministic coin.
func (s *Sampler) keepCoinLocked(txn string) bool {
	if drop, ok := s.hints[txn]; ok {
		return !drop
	}
	return KeepCoin(txn, s.cfg.KeepRate)
}

// KeepCoin is the deterministic head coin shared by every peer: FNV-1a of
// the transaction ID mapped to [0,1) and compared against rate. Same
// transaction ID, same verdict, on every peer, with no coordination.
func KeepCoin(txn string, rate float64) bool {
	h := fnv.New64a()
	_, _ = h.Write([]byte(txn))
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return u < rate
}

// Hint records a keep/drop hint propagated from another peer (the wire
// marker of DecodeWireSpan). drop=true marks the transaction drop-eligible;
// local keep rules still override.
func (s *Sampler) Hint(txn string, drop bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, done := s.decided[txn]; done {
		return
	}
	s.hints[txn] = drop
}

// DropEligible reports the probabilistic side of the decision for a
// transaction — the value a peer propagates with its invocations. It never
// consults the tail rules (those are local upgrades applied at flush time).
func (s *Sampler) DropEligible(txn string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.keepCoinLocked(txn)
}

// ForceKeep upgrades a transaction to keep before its terminal span arrives
// (the engine's slow-transaction hook).
func (s *Sampler) ForceKeep(txn string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, done := s.decided[txn]; done {
		return
	}
	buf := s.pending[txn]
	if buf == nil {
		buf = &txnBuffer{}
		s.pending[txn] = buf
		s.order = append(s.order, txn)
	}
	buf.forced = true
}

// WasSampledOut reports whether the transaction was deliberately dropped —
// the signal that lets /trace/{txn} answer 200-empty instead of 404.
func (s *Sampler) WasSampledOut(txn string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kept, ok := s.decided[txn]
	return ok && !kept
}

// Stats snapshots the sampler counters.
func (s *Sampler) Stats() SamplerStats {
	if s == nil {
		return SamplerStats{}
	}
	return SamplerStats{
		TxnsKept:    s.txnsKept.Load(),
		TxnsDropped: s.txnsDropped.Load(),
		SpansIn:     s.spansIn.Load(),
		SpansOut:    s.spansOut.Load(),
	}
}

// Register exports the sampler's counters into a metrics registry.
func (s *Sampler) Register(reg *Registry, peer string) {
	if s == nil || reg == nil {
		return
	}
	labels := Labels{"peer": peer}
	reg.Gauge("axml_trace_txns_kept", labels, s.txnsKept.Load)
	reg.Gauge("axml_trace_txns_dropped", labels, s.txnsDropped.Load)
	reg.Gauge("axml_trace_spans_in", labels, s.spansIn.Load)
	reg.Gauge("axml_trace_spans_out", labels, s.spansOut.Load)
}

// FindSampler digs a sampler out of a (possibly fanned-out) sink chain.
func FindSampler(s Sink) *Sampler {
	switch v := s.(type) {
	case *Sampler:
		return v
	case Multi:
		for _, sub := range v {
			if sm := FindSampler(sub); sm != nil {
				return sm
			}
		}
	}
	return nil
}

// wireDropMarker is appended to a span reference on the wire when the
// sender's sampler ruled the transaction drop-eligible. Span IDs are
// "<peer>#<seq>" and never contain '~'.
const wireDropMarker = "~"

// EncodeWireSpan renders the Message.Span field: the sender's active span ID
// plus the keep/drop marker when the transaction is drop-eligible.
func EncodeWireSpan(spanID string, dropEligible bool) string {
	if dropEligible {
		return spanID + wireDropMarker
	}
	return spanID
}

// DecodeWireSpan splits a Message.Span field into the parent span ID and the
// propagated drop hint. Absent marker means "keep or undecided".
func DecodeWireSpan(ref string) (spanID string, dropEligible bool) {
	if strings.HasSuffix(ref, wireDropMarker) {
		return strings.TrimSuffix(ref, wireDropMarker), true
	}
	return ref, false
}
