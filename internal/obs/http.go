package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// NewHandler serves the observability HTTP surface of a peer:
//
//	GET /metrics       — Prometheus text exposition of the registry
//	GET /trace/{txn}   — JSON span tree of one transaction from the ring
//	GET /traces        — JSON list of transaction IDs present in the ring
//
// Either argument may be nil; the corresponding endpoint then answers 404.
func NewHandler(reg *Registry, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.NotFound(w, r)
			return
		}
		txn := strings.TrimPrefix(r.URL.Path, "/trace/")
		if txn == "" {
			http.Error(w, "obs: missing transaction id", http.StatusBadRequest)
			return
		}
		spans := ring.Trace(txn)
		if len(spans) == 0 {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TraceResponse{Txn: txn, Spans: len(spans), Tree: Tree(spans)})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.NotFound(w, r)
			return
		}
		seen := make(map[string]bool)
		var txns []string
		for _, s := range ring.Spans() {
			if !seen[s.Txn] {
				seen[s.Txn] = true
				txns = append(txns, s.Txn)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(txns)
	})
	return mux
}

// TraceResponse is the /trace/{txn} payload.
type TraceResponse struct {
	Txn   string      `json:"txn"`
	Spans int         `json:"spans"`
	Tree  []*TreeNode `json:"tree"`
}
