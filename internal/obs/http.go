package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// HandlerConfig assembles the full operations surface of a peer. Every
// field is optional; missing pieces degrade to 404 (or, for Ready, to
// "always ready").
type HandlerConfig struct {
	// Registry backs GET /metrics.
	Registry *Registry
	// Ring backs GET /trace/{txn} and GET /traces.
	Ring *Ring
	// Sampler, when set, lets /trace/{txn} distinguish a transaction that
	// was deliberately sampled out (200 with an empty tree and
	// sampledOut=true) from one the peer never saw (404).
	Sampler *Sampler
	// Ready backs GET /healthz: nil error → 200, non-nil → 503 with the
	// error message. A nil func means always ready.
	Ready func() error
	// Members, when set, backs GET /members with its JSON-marshaled return
	// value — the gossip membership + replica-catalog view of the peer
	// (internal/membership.Gossip.Info; typed as any so obs does not import
	// membership).
	Members func() any
	// Cluster, when set, backs GET /cluster with its JSON-marshaled return
	// value — the merged cluster observability view
	// (internal/obs/cluster.Plane.View; typed as any so obs does not import
	// its own subpackage).
	Cluster func() any
	// ClusterMetrics, when set, backs GET /cluster/metrics with federated
	// Prometheus text: every known peer's series, peer-labeled
	// (internal/obs/cluster.Plane.WritePrometheus).
	ClusterMetrics func(w io.Writer) error
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler serves the observability HTTP surface of a peer:
//
//	GET /metrics       — Prometheus text exposition of the registry
//	GET /trace/{txn}   — JSON span tree of one transaction from the ring
//	GET /traces        — JSON list of transaction IDs present in the ring
//
// Either argument may be nil; the corresponding endpoint then answers 404.
// For the full operations surface (healthz, pprof, sampled-out awareness)
// use NewOpsHandler.
func NewHandler(reg *Registry, ring *Ring) http.Handler {
	return NewOpsHandler(HandlerConfig{Registry: reg, Ring: ring})
}

// NewOpsHandler builds the peer's operations endpoint set from cfg. On top
// of the NewHandler surface it serves:
//
//	GET /healthz          — readiness: {"status":"ok"} or 503 with the error
//	GET /cluster          — merged cluster observability view (JSON)
//	GET /cluster/metrics  — federated Prometheus text, peer-labeled
//	GET /debug/pprof/     — net/http/pprof (when cfg.Pprof)
func NewOpsHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ring == nil {
			http.NotFound(w, r)
			return
		}
		txn := strings.TrimPrefix(r.URL.Path, "/trace/")
		if txn == "" {
			http.Error(w, "obs: missing transaction id", http.StatusBadRequest)
			return
		}
		spans, known := cfg.Ring.TraceLookup(txn)
		if !known {
			if cfg.Sampler.WasSampledOut(txn) {
				// The peer saw this transaction and deliberately dropped its
				// spans: answer 200 with an empty tree, not 404, so callers
				// can tell "sampled out" from "never happened here".
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(TraceResponse{Txn: txn, SampledOut: true})
				return
			}
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TraceResponse{Txn: txn, Spans: len(spans), Tree: Tree(spans)})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ring == nil {
			http.NotFound(w, r)
			return
		}
		seen := make(map[string]bool)
		var txns []string
		for _, s := range cfg.Ring.Spans() {
			if !seen[s.Txn] {
				seen[s.Txn] = true
				txns = append(txns, s.Txn)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(txns)
	})
	mux.HandleFunc("/members", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Members == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Members())
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Cluster == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Cluster())
	})
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.ClusterMetrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.ClusterMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.Ready != nil {
			if err := cfg.Ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]string{"status": "unavailable", "error": err.Error()})
				return
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// TraceResponse is the /trace/{txn} payload.
type TraceResponse struct {
	Txn   string      `json:"txn"`
	Spans int         `json:"spans"`
	Tree  []*TreeNode `json:"tree"`
	// SampledOut marks a transaction whose spans were deliberately dropped
	// by adaptive sampling (200-empty rather than 404-unknown).
	SampledOut bool `json:"sampledOut,omitempty"`
}
