package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to a metric (typically {"peer": "AP1"}).
type Labels map[string]string

// render returns the Prometheus label suffix, keys sorted, or "".
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith returns the label suffix with one extra pair appended (used
// for histogram "le" labels).
func renderWith(base string, k, v string) string {
	if base == "" {
		return fmt.Sprintf("{%s=%q}", k, v)
	}
	return fmt.Sprintf("%s,%s=%q}", strings.TrimSuffix(base, "}"), k, v)
}

// RenderWith is renderWith for packages that re-render exported series
// (the cluster plane's federated text output).
func RenderWith(base string, k, v string) string { return renderWith(base, k, v) }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultBuckets are the histogram upper bounds in seconds: exponential
// from 100µs to 10s, sized for the framework's latencies (materialize,
// invoke round-trip, fsync, compensation).
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. A nil *Histogram is valid
// and ignores observations, so the engine can observe unconditionally even
// when no registry was configured.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over DefaultBuckets.
func NewHistogram() *Histogram {
	h := &Histogram{bounds: DefaultBuckets}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Bounds returns the histogram's upper bucket bounds in seconds. The slice
// is shared and must not be mutated.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket observation counts:
// len(Bounds())+1 entries, the last being the +Inf bucket. Counts are
// per-bucket (not cumulative), matching the internal storage; cumulative
// le-semantics are a rendering concern.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// metricKey identifies one labeled series within a family.
type metricKey struct {
	name   string
	labels string
}

// Registry collects counters, gauges and histograms and renders them in
// the Prometheus text exposition format. It is the single export schema
// shared by production peers (axmlpeer /metrics), benchmarks (axmlbench)
// and simulations, so experiment output and operations dashboards read the
// same names.
type Registry struct {
	mu       sync.Mutex
	types    map[string]string // family name -> counter|gauge|histogram
	counters map[metricKey]*Counter
	gauges   map[metricKey]func() int64
	hists    map[metricKey]*Histogram
	order    []metricKey // registration order for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types:    make(map[string]string),
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]func() int64),
		hists:    make(map[metricKey]*Histogram),
	}
}

// histSuffixes are the derived series names a histogram family occupies in
// the exposition format besides its own: name_bucket, name_sum, name_count.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

// note registers the series key once and records the family type. A family
// re-registered with a conflicting type, or a name that collides with the
// derived series of a histogram family (either direction), panics with a
// message naming both parties — silently clobbering the type map would make
// /metrics emit one family under two # TYPE lines.
func (r *Registry) note(name, typ, labels string) (metricKey, bool) {
	key := metricKey{name: name, labels: labels}
	if t, ok := r.types[name]; ok && t != typ {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, re-registered as %s", name, t, typ))
	}
	if _, ok := r.types[name]; !ok {
		// New family: check both collision directions against histogram
		// derived names before committing it to the type map.
		for _, suf := range histSuffixes {
			if base := strings.TrimSuffix(name, suf); base != name {
				if t, ok := r.types[base]; ok && t == "histogram" {
					panic(fmt.Sprintf("obs: metric %q collides with series %q derived from histogram %q", name, name, base))
				}
			}
			if typ == "histogram" {
				if t, ok := r.types[name+suf]; ok {
					panic(fmt.Sprintf("obs: histogram %q derives series %q which is already registered as a %s", name, name+suf, t))
				}
			}
		}
	}
	r.types[name] = typ
	_, c := r.counters[key]
	_, g := r.gauges[key]
	_, h := r.hists[key]
	if c || g || h {
		return key, false
	}
	r.order = append(r.order, key)
	return key, true
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key, fresh := r.note(name, "counter", labels.render())
	if fresh {
		r.counters[key] = &Counter{}
	}
	return r.counters[key]
}

// Gauge registers a function-backed gauge; fn is called at scrape time.
// Registering the same name+labels again replaces the function — this is
// how core.Metrics counters export without changing their atomic storage.
func (r *Registry) Gauge(name string, labels Labels, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key, _ := r.note(name, "gauge", labels.render())
	r.gauges[key] = fn
}

// Histogram returns the histogram for name+labels, creating it on first
// use.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key, fresh := r.note(name, "histogram", labels.render())
	if fresh {
		r.hists[key] = NewHistogram()
	}
	return r.hists[key]
}

// WritePrometheus renders every registered metric in the text exposition
// format, in registration order with one # TYPE line per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]metricKey(nil), r.order...)
	types := make(map[string]string, len(r.types))
	for k, v := range r.types {
		types[k] = v
	}
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	for _, key := range order {
		if !typed[key.name] {
			typed[key.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", key.name, types[key.name]); err != nil {
				return err
			}
		}
		var err error
		switch {
		case counters[key] != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", key.name, key.labels, counters[key].Value())
		case gauges[key] != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", key.name, key.labels, gauges[key]())
		case hists[key] != nil:
			err = writeHistogram(w, key, hists[key])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders cumulative le-buckets plus _sum and _count.
func writeHistogram(w io.Writer, key metricKey, h *Histogram) error {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := renderWith(key.labels, "le", formatBound(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", key.name, le, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	le := renderWith(key.labels, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", key.name, le, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", key.name, key.labels, h.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", key.name, key.labels, h.Count())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
