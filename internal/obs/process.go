package obs

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors axml_process_uptime_seconds. Process-wide: multiple
// in-process peers (simulations, tests) share one start time, which is the
// truth — they share one process.
var processStart = time.Now()

// memSampler caches runtime.ReadMemStats. ReadMemStats stops the world, so
// scrapes, gossip summary captures and multiple registered gauges share one
// sample per refresh window instead of each paying the pause.
type memSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (s *memSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.at.IsZero() || time.Since(s.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
	}
	return s.ms
}

var procMem memSampler

// RegisterProcessMetrics exports Go runtime / process health gauges on reg,
// labeled with the peer ID (in-process clusters share one registry):
//
//	axml_process_goroutines        — runtime.NumGoroutine
//	axml_process_heap_bytes        — MemStats.HeapAlloc
//	axml_process_gc_pause_ns_total — MemStats.PauseTotalNs
//	axml_process_uptime_seconds    — seconds since process start
//
// These are the local families behind the cluster plane's health bits.
// Registering twice for the same peer is harmless (gauge functions replace).
func RegisterProcessMetrics(reg *Registry, peer string) {
	if reg == nil {
		return
	}
	labels := Labels{"peer": peer}
	reg.Gauge("axml_process_goroutines", labels, func() int64 {
		return int64(runtime.NumGoroutine())
	})
	reg.Gauge("axml_process_heap_bytes", labels, func() int64 {
		ms := procMem.sample()
		return int64(ms.HeapAlloc)
	})
	reg.Gauge("axml_process_gc_pause_ns_total", labels, func() int64 {
		ms := procMem.sample()
		return int64(ms.PauseTotalNs)
	})
	reg.Gauge("axml_process_uptime_seconds", labels, func() int64 {
		return int64(time.Since(processStart).Seconds())
	})
}
