// Package obs is the observability layer of the AXML transactional
// framework: structured tracing of the per-transaction invocation tree and
// a metrics exporter for the protocol counters and latency histograms.
//
// Every transaction produces a span tree mirroring the paper's active-peer
// list [AP1* → AP2 → …]: one span per Exec/Call, per remote invocation
// (client and server side), per compensation, retry, redirect and reuse of
// salvaged work. Spans carry the peer ID, service, a chain snapshot, the
// WAL LSN range the operation logged, and a typed outcome code, so the
// recovery decisions of §3.2–3.3 leave an inspectable event record instead
// of only counter increments.
//
// Sinks are pluggable: a lock-protected ring buffer (queryable from tests,
// cmd/axmlquery and the /trace HTTP endpoint), a JSONL file exporter, and
// fan-out to several sinks at once. The metrics side is a small
// Prometheus-text-format registry (counters, gauges, histograms) that
// core.Metrics and the engine's latency histograms register into.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span kinds emitted by the engine. One kind per protocol event the paper
// distinguishes.
const (
	// KindTxn is the root span of a transaction at its origin peer,
	// spanning Begin to Commit/Abort.
	KindTxn = "txn"
	// KindExec covers one Peer.Exec (a local AXML action, including the
	// materialization it triggers).
	KindExec = "exec"
	// KindCall covers one top-level Peer.Call/CallAsync.
	KindCall = "call"
	// KindInvoke is the client side of one service invocation (local or
	// remote), including the network round trip.
	KindInvoke = "invoke"
	// KindServe is the participant side of an incoming invocation.
	KindServe = "serve"
	// KindRetry is one retry attempt of the nested recovery protocol
	// (§3.2), possibly against a replica provider.
	KindRetry = "retry"
	// KindRedirect is a result re-routed past a dead parent (§3.3 case b).
	KindRedirect = "redirect"
	// KindReuse marks salvaged work consumed instead of re-invocation
	// (§3.3: "passing the materialized results directly").
	KindReuse = "reuse"
	// KindCompensate is a compensation run: the local undo of an abort or
	// the execution of a shipped compensating-service definition.
	KindCompensate = "compensate"
	// KindCommit covers commit processing at a peer.
	KindCommit = "commit"
	// KindFragFetch is the client side of one remote fragment fetch during
	// sharded-document assembly.
	KindFragFetch = "frag-fetch"
	// KindFragMigrate covers one heat-driven fragment migration (handoff to
	// the dominant caller, WAL-logged with compensation).
	KindFragMigrate = "frag-migrate"
	// KindAbort covers abort processing (including local compensation) at
	// a peer.
	KindAbort = "abort"
	// KindFault is an injected fault (internal/chaos): a message dropped,
	// delayed, duplicated or reordered, a peer crash/restart, or a
	// partition, parented under the span of the message it hit.
	KindFault = "fault"
	// KindMember is a membership state transition observed by the SWIM
	// failure detector (internal/membership): a peer joining, becoming
	// suspect, being declared dead, or refuting a false suspicion.
	KindMember = "member"
	// KindCompact is one WAL compaction: segments wholly covered by a
	// checkpoint were deleted (attrs carry removed/remaining counts).
	KindCompact = "wal-compact"
	// KindCacheHit marks a materialization served from the local call
	// cache within its freshness window — no invocation happened.
	KindCacheHit = "cache-hit"
	// KindCacheMiss marks a materialization that went upstream because no
	// fresh cached result or live advertisement existed.
	KindCacheMiss = "cache-miss"
	// KindCacheWait marks a materialization that waited on a concurrent
	// in-flight invocation of the same key (singleflight follower).
	KindCacheWait = "cache-wait"
	// KindCacheFetch marks a cached result fetched from the advertising
	// peer (cluster-scope dedupe) instead of re-invoking upstream.
	KindCacheFetch = "cache-fetch"
)

// Outcome values.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// Span is one completed node of a transaction's trace. The transaction ID
// doubles as the trace ID; span IDs are "<peer>#<seq>" and therefore unique
// across the whole deployment without coordination.
type Span struct {
	Txn     string `json:"txn"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Peer    string `json:"peer"`
	Kind    string `json:"kind"`
	Service string `json:"service,omitempty"`
	// Target is the remote peer an invoke/redirect span talked to.
	Target string    `json:"target,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Chain is the active-peer-list snapshot (bracket notation) when the
	// span ended; empty for spans that never saw a chain.
	Chain string `json:"chain,omitempty"`
	// FirstLSN/LastLSN bracket the WAL records the operation produced at
	// this peer; both zero when it logged nothing.
	FirstLSN uint64 `json:"firstLSN,omitempty"`
	LastLSN  uint64 `json:"lastLSN,omitempty"`
	// Outcome is "ok" or "error"; Code is the typed error-taxonomy code
	// ("aborted", "compensated", "timeout", "peer-down", "fault:<name>").
	Outcome string `json:"outcome"`
	Code    string `json:"code,omitempty"`
	Err     string `json:"err,omitempty"`
	// Attrs carries kind-specific details (dead peer, undone node counts…).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock length.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Sink receives completed spans. Implementations must be safe for
// concurrent use; Emit must not retain or mutate the span after returning
// (the tracer hands over ownership of a fresh copy).
type Sink interface {
	Emit(*Span)
}

// Tracer mints spans for one peer. A nil *Tracer is valid and disables
// tracing: every method is nil-safe so the engine never branches.
type Tracer struct {
	peer string
	sink Sink
	seq  atomic.Uint64
}

// NewTracer returns a tracer emitting into sink, or nil when sink is nil
// (tracing disabled).
func NewTracer(peer string, sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{peer: peer, sink: sink}
}

// Start opens a span. parent is the parent span ID ("" for a root). The
// returned *ActiveSpan is nil-safe: on a nil tracer it is nil, and all its
// methods no-op.
func (t *Tracer) Start(txn, parent, kind, service string) *ActiveSpan {
	if t == nil {
		return nil
	}
	id := t.peer + "#" + itoa(t.seq.Add(1))
	return &ActiveSpan{
		t: t,
		s: Span{
			Txn: txn, ID: id, Parent: parent, Peer: t.peer,
			Kind: kind, Service: service, Start: time.Now(),
		},
	}
}

// itoa is strconv.FormatUint without the import churn at call sites.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ActiveSpan is a span under construction. It is owned by the goroutine
// that started it until End; concurrent mutation is not supported.
type ActiveSpan struct {
	t *Tracer
	s Span
}

// ID returns the span's ID, or "" on a nil span (tracing disabled), so it
// can be propagated unconditionally.
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.s.ID
}

// SetTarget records the remote peer the span talked to.
func (a *ActiveSpan) SetTarget(peer string) {
	if a != nil {
		a.s.Target = peer
	}
}

// SetChain records the active-peer-list snapshot.
func (a *ActiveSpan) SetChain(chain string) {
	if a != nil {
		a.s.Chain = chain
	}
}

// SetLSNRange records the WAL records the operation produced.
func (a *ActiveSpan) SetLSNRange(first, last uint64) {
	if a != nil {
		a.s.FirstLSN, a.s.LastLSN = first, last
	}
}

// SetAttr records a kind-specific detail.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.s.Attrs == nil {
		a.s.Attrs = make(map[string]string, 2)
	}
	a.s.Attrs[k] = v
}

// End completes the span and emits it. code is the typed error-taxonomy
// code ("" for success); err supplies the message. Outcome is OK only when
// both are empty/nil.
func (a *ActiveSpan) End(code string, err error) {
	if a == nil {
		return
	}
	a.s.End = time.Now()
	a.s.Code = code
	if err != nil {
		a.s.Err = err.Error()
	}
	if err == nil && code == "" {
		a.s.Outcome = OutcomeOK
	} else {
		a.s.Outcome = OutcomeError
	}
	cp := a.s
	a.t.sink.Emit(&cp)
}

// TreeNode is one node of a reassembled span tree.
type TreeNode struct {
	Span     *Span       `json:"span"`
	Children []*TreeNode `json:"children,omitempty"`
}

// Tree reassembles spans into their parent/child forest. Roots (parent
// empty or unknown — e.g. the parent span is held by a disconnected peer
// whose sink we cannot read) come first in start order; children are
// ordered by start time, then ID, for deterministic traversal.
func Tree(spans []*Span) []*TreeNode {
	nodes := make(map[string]*TreeNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &TreeNode{Span: s}
	}
	var roots []*TreeNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *TreeNode)
	byStart := func(ns []*TreeNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Span.Start.Equal(ns[j].Span.Start) {
				return ns[i].Span.Start.Before(ns[j].Span.Start)
			}
			return ns[i].Span.ID < ns[j].Span.ID
		})
	}
	sortKids = func(n *TreeNode) {
		byStart(n.Children)
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	byStart(roots)
	for _, r := range roots {
		sortKids(r)
	}
	return roots
}

// Walk visits the tree depth-first, parents before children.
func (n *TreeNode) Walk(fn func(*TreeNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
