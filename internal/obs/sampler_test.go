package obs

import (
	"fmt"
	"testing"
	"time"
)

// coinTxn returns a transaction ID whose deterministic keep coin at rate
// lands on the wanted side.
func coinTxn(t *testing.T, rate float64, keep bool) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("T%d", i)
		if KeepCoin(id, rate) == keep {
			return id
		}
	}
	t.Fatalf("no transaction ID with coin=%t at rate %v", keep, rate)
	return ""
}

// span builds a clean span of the given kind with a fixed 1ms duration.
func span(txn, id, kind string) *Span {
	t0 := time.Unix(1000, 0)
	return &Span{
		Txn: txn, ID: id, Peer: "P", Kind: kind,
		Start: t0, End: t0.Add(time.Millisecond), Outcome: OutcomeOK,
	}
}

func TestKeepCoinDeterministic(t *testing.T) {
	for _, txn := range []string{"T1@AP1", "T2@AP1", "xyz"} {
		first := KeepCoin(txn, 0.5)
		for i := 0; i < 10; i++ {
			if KeepCoin(txn, 0.5) != first {
				t.Fatalf("coin for %q flipped", txn)
			}
		}
	}
	keeps := 0
	for i := 0; i < 10000; i++ {
		if KeepCoin(fmt.Sprintf("T%d@AP1", i), 0.05) {
			keeps++
		}
	}
	// Expected 500; a wide tolerance still catches a broken hash mapping.
	if keeps < 250 || keeps > 750 {
		t.Fatalf("kept %d/10000 at rate 0.05", keeps)
	}
	if KeepCoin("anything", 0) {
		t.Fatal("rate 0 must never keep")
	}
	if !KeepCoin("anything", 1) {
		t.Fatal("rate 1 must always keep")
	}
}

func TestSamplerDropsFastCommit(t *testing.T) {
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	txn := coinTxn(t, 0.05, false)
	s.Emit(span(txn, "P#1", KindExec))
	s.Emit(span(txn, "P#2", KindTxn))
	if got := len(ring.Spans()); got != 0 {
		t.Fatalf("dropped txn leaked %d spans", got)
	}
	if !s.WasSampledOut(txn) {
		t.Fatal("WasSampledOut must report the drop")
	}
	st := s.Stats()
	if st.TxnsDropped != 1 || st.TxnsKept != 0 || st.SpansIn != 2 || st.SpansOut != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// A late clean span follows the drop decision; a late interesting one
	// still surfaces.
	s.Emit(span(txn, "P#3", KindExec))
	if len(ring.Spans()) != 0 {
		t.Fatal("late clean span of a dropped txn must not emit")
	}
	late := span(txn, "P#4", KindCompensate)
	late.Outcome = OutcomeError
	late.Code = "compensated"
	s.Emit(late)
	if got := len(ring.Spans()); got != 1 {
		t.Fatalf("late interesting span must emit, got %d", got)
	}
}

func TestSamplerKeepsCoinWinner(t *testing.T) {
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	txn := coinTxn(t, 0.05, true)
	s.Emit(span(txn, "P#1", KindExec))
	s.Emit(span(txn, "P#2", KindTxn))
	spans := ring.Spans()
	if len(spans) != 2 || spans[0].ID != "P#1" || spans[1].ID != "P#2" {
		t.Fatalf("kept txn must flush in emission order, got %v", spans)
	}
	if s.WasSampledOut(txn) {
		t.Fatal("kept txn reported as sampled out")
	}
}

func TestSamplerKeepsInteresting(t *testing.T) {
	for _, kind := range []string{KindAbort, KindCompensate, KindFault, KindRetry, KindRedirect} {
		ring := NewRing(64)
		s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
		txn := coinTxn(t, 0.05, false) // the coin alone would drop it
		s.Emit(span(txn, "P#1", kind))
		if kind != KindAbort { // abort is terminal itself
			s.Emit(span(txn, "P#2", KindTxn))
		}
		if len(ring.Spans()) == 0 {
			t.Fatalf("kind %s must force keep", kind)
		}
	}
	// An error outcome forces keep regardless of kind.
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	txn := coinTxn(t, 0.05, false)
	bad := span(txn, "P#1", KindServe)
	bad.Outcome = OutcomeError
	bad.Code = "timeout"
	s.Emit(bad)
	s.Emit(span(txn, "P#2", KindCommit))
	if len(ring.Spans()) != 2 {
		t.Fatal("error span must force keep of the whole buffer")
	}
}

func TestSamplerAdaptiveSlowKeep(t *testing.T) {
	ring := NewRing(256)
	s := NewSampler(ring, SamplerConfig{KeepRate: 1e-12})
	// Twenty fast terminals build the window; all drop-eligible by coin.
	emitted := 0
	for i := 0; emitted < 20; i++ {
		txn := fmt.Sprintf("warm%d", i)
		if KeepCoin(txn, 1e-12) {
			continue
		}
		s.Emit(span(txn, fmt.Sprintf("P#%d", emitted), KindCommit))
		emitted++
	}
	if got := len(ring.Spans()); got != 0 {
		t.Fatalf("warmup leaked %d spans", got)
	}
	// A terminal 100x slower than everything in the window must be kept even
	// though its coin would drop it.
	slowTxn := coinTxn(t, 1e-12, false)
	slow := span(slowTxn, "P#99", KindTxn)
	slow.End = slow.Start.Add(100 * time.Millisecond)
	s.Emit(slow)
	if got := len(ring.Spans()); got != 1 {
		t.Fatalf("slow txn must be kept, got %d spans", got)
	}
}

func TestSamplerHintPropagation(t *testing.T) {
	// A drop hint from the origin overrides this peer's keep coin…
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	txn := coinTxn(t, 0.05, true)
	s.Hint(txn, true)
	s.Emit(span(txn, "P#1", KindCommit))
	if len(ring.Spans()) != 0 {
		t.Fatal("wire drop hint must override the local coin")
	}
	// …and a keep hint overrides a drop coin.
	ring2 := NewRing(64)
	s2 := NewSampler(ring2, SamplerConfig{KeepRate: 0.05})
	txn2 := coinTxn(t, 0.05, false)
	s2.Hint(txn2, false)
	s2.Emit(span(txn2, "P#1", KindCommit))
	if len(ring2.Spans()) != 1 {
		t.Fatal("wire keep hint must override the local coin")
	}
}

func TestSamplerForceKeep(t *testing.T) {
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	txn := coinTxn(t, 0.05, false)
	s.ForceKeep(txn) // the engine's slow-transaction hook, before any span
	s.Emit(span(txn, "P#1", KindExec))
	s.Emit(span(txn, "P#2", KindTxn))
	if len(ring.Spans()) != 2 {
		t.Fatal("ForceKeep must keep the transaction")
	}
	// Nil receiver safety, as used by the engine when sampling is off.
	var nilS *Sampler
	nilS.ForceKeep("T")
	nilS.Hint("T", true)
	if nilS.DropEligible("T") || nilS.WasSampledOut("T") {
		t.Fatal("nil sampler must report keep/unknown")
	}
}

func TestSamplerPendingOverflow(t *testing.T) {
	ring := NewRing(64)
	s := NewSampler(ring, SamplerConfig{KeepRate: 0.05, MaxPending: 2})
	s.Emit(span("Ta", "P#1", KindExec))
	s.Emit(span("Tb", "P#2", KindExec))
	s.Emit(span("Tc", "P#3", KindExec)) // third pending txn evicts the oldest
	spans := ring.Spans()
	if len(spans) != 1 || spans[0].Txn != "Ta" {
		t.Fatalf("overflow must flush the oldest pending txn as kept, got %v", spans)
	}
	if st := s.Stats(); st.TxnsKept != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
}

func TestWireSpanMarker(t *testing.T) {
	if got := EncodeWireSpan("AP1#3", true); got != "AP1#3~" {
		t.Fatalf("encode drop: %q", got)
	}
	if got := EncodeWireSpan("AP1#3", false); got != "AP1#3" {
		t.Fatalf("encode keep: %q", got)
	}
	id, drop := DecodeWireSpan("AP1#3~")
	if id != "AP1#3" || !drop {
		t.Fatalf("decode drop: %q %t", id, drop)
	}
	id, drop = DecodeWireSpan("AP1#3")
	if id != "AP1#3" || drop {
		t.Fatalf("decode keep: %q %t", id, drop)
	}
}

func TestFindSampler(t *testing.T) {
	ring := NewRing(4)
	s := NewSampler(ring, SamplerConfig{})
	if FindSampler(ring) != nil {
		t.Fatal("plain ring has no sampler")
	}
	if FindSampler(s) != s {
		t.Fatal("direct sampler not found")
	}
	if FindSampler(Multi{ring, s}) != s {
		t.Fatal("sampler inside Multi not found")
	}
}
