package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRingTraceLookupAfterEviction(t *testing.T) {
	ring := NewRing(3)
	tr := NewTracer("P", ring)
	for i := 0; i < 5; i++ {
		tr.Start("T", "", KindExec, "s").End("", nil)
	}
	spans, known := ring.TraceLookup("T")
	if !known {
		t.Fatal("txn with live spans must be known")
	}
	if len(spans) != 3 || spans[0].ID != "P#3" || spans[2].ID != "P#5" {
		t.Fatalf("index out of sync with eviction: %v", spans)
	}
	if _, known := ring.TraceLookup("absent"); known {
		t.Fatal("unknown txn reported as known")
	}
	// Evict T entirely with spans of another transaction: the index entry
	// must disappear, not linger half-evicted.
	for i := 0; i < 3; i++ {
		tr.Start("U", "", KindExec, "s").End("", nil)
	}
	if _, known := ring.TraceLookup("T"); known {
		t.Fatal("fully evicted txn must be unknown")
	}
	if spans, _ := ring.TraceLookup("U"); len(spans) != 3 {
		t.Fatalf("U index: %v", spans)
	}
}

// TestRingConcurrentUse hammers a small ring with concurrent writers while
// readers reassemble trees through the HTTP handler — the eviction/index
// consistency check that the race detector turns into a correctness gate.
func TestRingConcurrentUse(t *testing.T) {
	ring := NewRing(64)
	srv := httptest.NewServer(NewOpsHandler(HandlerConfig{Ring: ring}))
	defer srv.Close()

	const writers, readers, perWorker = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := NewTracer(fmt.Sprintf("P%d", w), ring)
			for i := 0; i < perWorker; i++ {
				txn := fmt.Sprintf("T%d", i%7)
				root := tr.Start(txn, "", KindTxn, "")
				tr.Start(txn, root.ID(), KindExec, "q").End("", nil)
				root.End("", nil)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/trace/T%d", i%7))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode == 200 {
					var tre TraceResponse
					if err := json.NewDecoder(resp.Body).Decode(&tre); err != nil {
						t.Errorf("decode mid-eviction trace: %v", err)
					}
				}
				resp.Body.Close()
				_, _ = ring.TraceLookup("T0")
				_ = ring.Spans()
			}
		}()
	}
	wg.Wait()
}

func TestOpsHandlerSampledOutAndHealth(t *testing.T) {
	ring := NewRing(16)
	sampler := NewSampler(ring, SamplerConfig{KeepRate: 0.05})
	var mu sync.Mutex
	ready := fmt.Errorf("wal replay in progress")
	srv := httptest.NewServer(NewOpsHandler(HandlerConfig{
		Registry: NewRegistry(),
		Ring:     ring,
		Sampler:  sampler,
		Ready: func() error {
			mu.Lock()
			defer mu.Unlock()
			return ready
		},
		Pprof: true,
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	// Drop a fast clean commit through the sampler, then ask for its trace:
	// 200 + sampledOut, not 404.
	dropped := coinTxn(t, 0.05, false)
	sampler.Emit(span(dropped, "P#1", KindTxn))
	code, body := get("/trace/" + dropped)
	if code != 200 {
		t.Fatalf("sampled-out trace: %d %q", code, body)
	}
	var tre TraceResponse
	if err := json.Unmarshal([]byte(body), &tre); err != nil {
		t.Fatal(err)
	}
	if !tre.SampledOut || tre.Spans != 0 {
		t.Fatalf("sampled-out response: %+v", tre)
	}
	if code, _ := get("/trace/never-seen"); code != 404 {
		t.Fatalf("unknown txn must 404, got %d", code)
	}

	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "wal replay") {
		t.Fatalf("/healthz while starting: %d %q", code, body)
	}
	mu.Lock()
	ready = nil
	mu.Unlock()
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz ready: %d %q", code, body)
	}

	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	// Without Pprof the debug surface stays unmounted.
	plain := httptest.NewServer(NewOpsHandler(HandlerConfig{Ring: ring}))
	defer plain.Close()
	resp, err := plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof mounted without opt-in: %d", resp.StatusCode)
	}
}
