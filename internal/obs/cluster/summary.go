// Package cluster is the cluster observability plane: each peer
// periodically snapshots its obs.Registry into a compact Summary, the
// membership layer piggybacks the encoded summary on SWIM gossip sync
// exchanges (version-bumped per origin, expired on peer death), and any
// peer merges what it has heard into a cluster-wide view — federated
// Prometheus text with peer labels, cluster p50/p99 estimated from merged
// histogram buckets, and an SLO engine tracking error-budget burn rate.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"axmltx/internal/codec"
	"axmltx/internal/obs"
)

// summaryVersion is the wire version of the encoded summary payload. The
// payload travels as opaque bytes inside membership's gossip messages, so
// it versions independently of the gossip codec.
const summaryVersion = 0x01

// walStallBound is the latency above which a WAL fsync counts as a stall
// in the health digest: observations in axml_wal_sync_seconds buckets
// whose upper bound exceeds this (plus the +Inf bucket).
const walStallBound = 0.1

// Health are the per-peer health bits digested at capture time, so remote
// peers can read a one-line status without walking the full series set.
type Health struct {
	Committed      int64 `json:"committed"`
	Aborted        int64 `json:"aborted"`
	Goroutines     int64 `json:"goroutines"`
	HeapBytes      int64 `json:"heap_bytes"`
	GCPauseTotalNs int64 `json:"gc_pause_ns_total"`
	UptimeSeconds  int64 `json:"uptime_seconds"`
	SuspectPeers   int64 `json:"suspect_peers"`
	CacheHitPct    int64 `json:"cache_hit_pct"`
	WALSyncStalls  int64 `json:"wal_sync_stalls"`
}

// Summary is one peer's metric snapshot: the full exported series set plus
// the digested health bits. Origin uniqueness and freshness ordering are
// membership's job (per-origin version numbers); TakenUnixNano is the
// capture wall time used for display ages and same-origin tie-breaking.
type Summary struct {
	Origin        string       `json:"origin"`
	TakenUnixNano int64        `json:"taken_unix_nano"`
	Health        Health       `json:"health"`
	Series        []obs.Series `json:"series"`
}

// digest computes the health bits from an exported series set. core.Metrics
// exports everything as function-backed gauges, so the interesting families
// are matched by name, not metric type.
func digest(series []obs.Series) Health {
	var h Health
	for i := range series {
		s := &series[i]
		switch s.Name {
		case "axml_txns_committed":
			h.Committed += s.Value
		case "axml_txns_aborted":
			h.Aborted += s.Value
		case "axml_process_goroutines":
			h.Goroutines = s.Value
		case "axml_process_heap_bytes":
			h.HeapBytes = s.Value
		case "axml_process_gc_pause_ns_total":
			h.GCPauseTotalNs = s.Value
		case "axml_process_uptime_seconds":
			h.UptimeSeconds = s.Value
		case "axml_members":
			if strings.Contains(s.Labels, `state="suspect"`) {
				h.SuspectPeers += s.Value
			}
		case "axml_cache_hit_ratio_pct":
			h.CacheHitPct = s.Value
		case "axml_wal_sync_seconds":
			for i, c := range s.Buckets {
				if i >= len(s.Bounds) || s.Bounds[i] > walStallBound {
					h.WALSyncStalls += c
				}
			}
		}
	}
	return h
}

// Series type tags on the wire.
const (
	stCounter   byte = 1
	stGauge     byte = 2
	stHistogram byte = 3
)

// Encode serializes the summary with the shared binary codec. Histogram
// bounds round-trip exactly via their IEEE-754 bit patterns.
func (s *Summary) Encode() []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Byte(summaryVersion)
	w.String(s.Origin)
	w.Varint(s.TakenUnixNano)
	h := &s.Health
	for _, v := range []int64{
		h.Committed, h.Aborted, h.Goroutines, h.HeapBytes, h.GCPauseTotalNs,
		h.UptimeSeconds, h.SuspectPeers, h.CacheHitPct, h.WALSyncStalls,
	} {
		w.Varint(v)
	}
	w.Uvarint(uint64(len(s.Series)))
	for i := range s.Series {
		se := &s.Series[i]
		w.String(se.Name)
		w.String(se.Labels)
		switch se.Type {
		case "counter":
			w.Byte(stCounter)
			w.Varint(se.Value)
		case "histogram":
			w.Byte(stHistogram)
			w.Uvarint(uint64(len(se.Bounds)))
			for _, b := range se.Bounds {
				w.Uvarint(math.Float64bits(b))
			}
			w.Uvarint(uint64(len(se.Buckets)))
			for _, c := range se.Buckets {
				w.Varint(c)
			}
			w.Varint(se.Count)
			w.Varint(se.SumNs)
		default: // gauge (and any future scalar type degrades to one)
			w.Byte(stGauge)
			w.Varint(se.Value)
		}
	}
	return w.Finish()
}

// DecodeSummary parses an encoded summary payload.
func DecodeSummary(b []byte) (*Summary, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("cluster: empty summary payload")
	}
	if b[0] != summaryVersion {
		return nil, fmt.Errorf("cluster: unsupported summary version 0x%02x", b[0])
	}
	r := codec.NewReader(b[1:])
	s := &Summary{}
	s.Origin = r.StringCopy()
	s.TakenUnixNano = r.Varint()
	h := &s.Health
	for _, p := range []*int64{
		&h.Committed, &h.Aborted, &h.Goroutines, &h.HeapBytes, &h.GCPauseTotalNs,
		&h.UptimeSeconds, &h.SuspectPeers, &h.CacheHitPct, &h.WALSyncStalls,
	} {
		*p = r.Varint()
	}
	n := r.Count(3) // name(1) + labels(1) + type tag(1) minimum per series
	if n > 0 {
		s.Series = make([]obs.Series, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		var se obs.Series
		se.Name = r.StringCopy()
		se.Labels = r.StringCopy()
		switch r.Byte() {
		case stCounter:
			se.Type = "counter"
			se.Value = r.Varint()
		case stHistogram:
			se.Type = "histogram"
			nb := r.Count(1)
			if nb > 0 {
				se.Bounds = make([]float64, nb)
				for j := 0; j < nb; j++ {
					se.Bounds[j] = math.Float64frombits(r.Uvarint())
				}
			}
			nc := r.Count(1)
			if nc > 0 {
				se.Buckets = make([]int64, nc)
				for j := 0; j < nc; j++ {
					se.Buckets[j] = r.Varint()
				}
			}
			se.Count = r.Varint()
			se.SumNs = r.Varint()
		default:
			se.Type = "gauge"
			se.Value = r.Varint()
		}
		s.Series = append(s.Series, se)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("cluster: decode summary: %w", err)
	}
	return s, nil
}
