package cluster

import "time"

// SLOConfig configures the plane's service-level objectives. The zero value
// tracks latency on axml_invoke_seconds at p99 with no targets: the status
// still reports estimates and rates, it just never judges them.
type SLOConfig struct {
	// LatencyFamily is the histogram family the latency objective reads.
	// Default "axml_invoke_seconds".
	LatencyFamily string
	// LatencyQuantile is the quantile judged against LatencyTarget.
	// Default 0.99.
	LatencyQuantile float64
	// LatencyTarget is the cluster latency objective at LatencyQuantile;
	// 0 disables the latency judgment.
	LatencyTarget time.Duration
	// Availability is the fraction of transactions that must commit
	// (e.g. 0.999 allows one abort per thousand); 0 disables burn-rate
	// judgment.
	Availability float64
	// Window is the sliding window burn rate is computed over.
	// Default 5 minutes.
	Window time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyFamily == "" {
		c.LatencyFamily = "axml_invoke_seconds"
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile > 1 {
		c.LatencyQuantile = 0.99
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	return c
}

// SLOStatus is the engine's judgment of the merged cluster state.
type SLOStatus struct {
	// Latency objective: the cluster estimate at LatencyQuantile over the
	// configured family's merged buckets, vs the target (0 = no target).
	LatencyFamily   string  `json:"latency_family"`
	LatencyQuantile float64 `json:"latency_quantile"`
	LatencyMs       float64 `json:"latency_ms"`
	LatencyCount    int64   `json:"latency_count"`
	LatencyTargetMs float64 `json:"latency_target_ms,omitempty"`
	LatencyOK       bool    `json:"latency_ok"`

	// Availability objective: lifetime totals plus the sliding-window error
	// rate and burn rate. BurnRate is the window error rate divided by the
	// budget rate (1 - Availability): 1.0 burns exactly the budget, above
	// 1.0 exhausts it early. BudgetRemaining is the fraction of the
	// window's error budget left (negative = overspent).
	Committed          int64   `json:"committed"`
	Aborted            int64   `json:"aborted"`
	Availability       float64 `json:"availability"`
	AvailabilityTarget float64 `json:"availability_target,omitempty"`
	AvailabilityOK     bool    `json:"availability_ok"`
	WindowSeconds      float64 `json:"window_seconds"`
	WindowGood         int64   `json:"window_good"`
	WindowBad          int64   `json:"window_bad"`
	ErrorRate          float64 `json:"error_rate"`
	BurnRate           float64 `json:"burn_rate"`
	BudgetRemaining    float64 `json:"budget_remaining"`
}

// sloSample is one point of the burn-rate history: the merged cluster
// commit/abort totals as of a capture.
type sloSample struct {
	at   time.Time
	good int64
	bad  int64
}

// maxHistory caps the burn-rate history length independently of the window,
// so a misconfigured long window cannot grow memory without bound.
const maxHistory = 4096

// recordLocked appends the current merged totals to the burn-rate history
// and trims samples older than the window. Callers hold p.mu.
func (p *Plane) recordLocked(now time.Time) {
	good, bad := p.totalsLocked()
	p.history = append(p.history, sloSample{at: now, good: good, bad: bad})
	cutoff := now.Add(-p.cfg.Window - p.cfg.Window/4) // keep a little slack past the window
	i := 0
	for i < len(p.history)-1 && p.history[i].at.Before(cutoff) {
		i++
	}
	if over := len(p.history) - maxHistory; over > i {
		i = over
	}
	if i > 0 {
		p.history = append(p.history[:0], p.history[i:]...)
	}
}

// evalLocked computes the SLO status from the merged summaries and the
// burn-rate history. Callers hold p.mu.
func (p *Plane) evalLocked(now time.Time) SLOStatus {
	cfg := p.cfg
	st := SLOStatus{
		LatencyFamily:      cfg.LatencyFamily,
		LatencyQuantile:    cfg.LatencyQuantile,
		LatencyTargetMs:    float64(cfg.LatencyTarget) / float64(time.Millisecond),
		AvailabilityTarget: cfg.Availability,
		WindowSeconds:      cfg.Window.Seconds(),
	}

	good, bad := p.totalsLocked()
	st.Committed, st.Aborted = good, bad
	if good+bad > 0 {
		st.Availability = float64(good) / float64(good+bad)
	}

	sec, cnt := p.quantileLocked(cfg.LatencyFamily, cfg.LatencyQuantile)
	st.LatencyMs = sec * 1e3
	st.LatencyCount = cnt
	st.LatencyOK = cfg.LatencyTarget <= 0 || sec*float64(time.Second) <= float64(cfg.LatencyTarget)

	// Window deltas against the cluster state as of the window start: the
	// newest history sample at or before now-Window (falling back to zero —
	// the lifetime — when history is younger than the window).
	var base sloSample
	cutoff := now.Add(-cfg.Window)
	for _, s := range p.history {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	wg, wb := good-base.good, bad-base.bad
	if wg < 0 {
		wg = 0
	}
	if wb < 0 {
		wb = 0
	}
	st.WindowGood, st.WindowBad = wg, wb
	if wg+wb > 0 {
		st.ErrorRate = float64(wb) / float64(wg+wb)
	}
	st.AvailabilityOK = true
	if budget := 1 - cfg.Availability; cfg.Availability > 0 && budget > 0 {
		st.BurnRate = st.ErrorRate / budget
		st.AvailabilityOK = st.BurnRate <= 1
		if allowed := budget * float64(wg+wb); allowed > 0 {
			st.BudgetRemaining = 1 - float64(wb)/allowed
		} else {
			st.BudgetRemaining = 1
		}
	}
	return st
}
