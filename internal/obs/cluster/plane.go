package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"axmltx/internal/obs"
)

// Plane is one peer's half of the cluster observability plane: it captures
// the local registry into gossip-able summaries, merges summaries received
// from other peers, and serves the combined view. All methods are safe for
// concurrent use.
//
// Wiring: membership calls Capture once per summary round (via
// Gossip.SetSummarySource), feeds received payloads to Apply (OnSummary)
// and death/TTL expirations to Drop (OnSummaryDrop). core.NewPeer does this
// automatically when both Membership and MetricsRegistry are configured.
type Plane struct {
	self string
	reg  *obs.Registry
	cfg  SLOConfig

	mu        sync.Mutex
	summaries map[string]*Summary // origin -> latest summary, self included
	history   []sloSample
}

// NewPlane builds a plane for peer self over reg (which may be shared by
// several in-process peers). Process metrics are registered as a side
// effect so the health bits always have local families to read.
func NewPlane(self string, reg *obs.Registry, cfg SLOConfig) *Plane {
	obs.RegisterProcessMetrics(reg, self)
	return &Plane{
		self:      self,
		reg:       reg,
		cfg:       cfg.withDefaults(),
		summaries: make(map[string]*Summary),
	}
}

// Self returns the peer ID the plane captures for.
func (p *Plane) Self() string { return p.self }

// Capture snapshots the local registry into a Summary, stores it as this
// peer's own entry, records a burn-rate sample, and returns the encoded
// payload for gossip piggybacking. The registry export runs outside p.mu:
// gauge functions may take other locks (membership's gauges lock the gossip
// state machine), and membership itself calls Capture outside its lock for
// the same reason.
func (p *Plane) Capture() []byte {
	if p.reg == nil {
		return nil
	}
	series := p.reg.Export()
	s := &Summary{
		Origin:        p.self,
		TakenUnixNano: time.Now().UnixNano(),
		Series:        series,
		Health:        digest(series),
	}
	blob := s.Encode()
	p.mu.Lock()
	p.summaries[p.self] = s
	p.recordLocked(time.Now())
	p.mu.Unlock()
	return blob
}

// Apply merges one summary payload received via gossip. Per-origin version
// ordering is membership's job; the capture-time check here additionally
// makes Apply idempotent and safe for out-of-order delivery.
func (p *Plane) Apply(payload []byte) error {
	s, err := DecodeSummary(payload)
	if err != nil {
		return err
	}
	if s.Origin == "" || s.Origin == p.self {
		return nil
	}
	p.mu.Lock()
	if old := p.summaries[s.Origin]; old == nil || s.TakenUnixNano >= old.TakenUnixNano {
		p.summaries[s.Origin] = s
	}
	p.mu.Unlock()
	return nil
}

// Drop removes an origin's summary — membership calls this when it declares
// the origin dead or when the summary outlives its TTL without a refresh.
func (p *Plane) Drop(origin string) {
	p.mu.Lock()
	if origin != p.self {
		delete(p.summaries, origin)
	}
	p.mu.Unlock()
}

// Origins returns the sorted set of peers currently contributing summaries.
func (p *Plane) Origins() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.summaries))
	for id := range p.summaries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Quantile estimates the q-quantile in seconds over family's histogram
// buckets merged across every known peer (and label set), plus the merged
// observation count.
func (p *Plane) Quantile(family string, q float64) (float64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quantileLocked(family, q)
}

func (p *Plane) quantileLocked(family string, q float64) (float64, int64) {
	var bounds []float64
	var buckets []int64
	var count int64
	for _, s := range p.summaries {
		for i := range s.Series {
			se := &s.Series[i]
			if se.Name != family || se.Type != "histogram" {
				continue
			}
			if bounds == nil {
				bounds = se.Bounds
			} else if len(se.Bounds) != len(bounds) {
				continue // mismatched bucket layout; skip rather than misalign
			}
			buckets = mergeBuckets(buckets, se.Buckets)
			count += se.Count
		}
	}
	return BucketQuantile(bounds, buckets, q), count
}

// totalsLocked sums committed/aborted health bits across every summary.
func (p *Plane) totalsLocked() (good, bad int64) {
	for _, s := range p.summaries {
		good += s.Health.Committed
		bad += s.Health.Aborted
	}
	return good, bad
}

// PeerDigest is one peer's row in the cluster view.
type PeerDigest struct {
	Origin        string `json:"origin"`
	TakenUnixNano int64  `json:"taken_unix_nano"`
	AgeMs         int64  `json:"age_ms"`
	Series        int    `json:"series"`
	Health        Health `json:"health"`
}

// FamilyQuantiles summarizes one histogram family merged across the
// cluster.
type FamilyQuantiles struct {
	Family string  `json:"family"`
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// View is the merged cluster state served from /cluster and the "cluster"
// admin subject.
type View struct {
	Self         string            `json:"self"`
	Peers        []PeerDigest      `json:"peers"`
	Committed    int64             `json:"committed"`
	Aborted      int64             `json:"aborted"`
	Availability float64           `json:"availability"`
	Latency      []FamilyQuantiles `json:"latency"`
	SLO          SLOStatus         `json:"slo"`
}

// View merges everything the plane has heard into the cluster state.
func (p *Plane) View() View {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()

	v := View{Self: p.self}
	origins := make([]string, 0, len(p.summaries))
	families := make(map[string]bool)
	for id, s := range p.summaries {
		origins = append(origins, id)
		for i := range s.Series {
			if s.Series[i].Type == "histogram" {
				families[s.Series[i].Name] = true
			}
		}
	}
	sort.Strings(origins)
	for _, id := range origins {
		s := p.summaries[id]
		v.Peers = append(v.Peers, PeerDigest{
			Origin:        s.Origin,
			TakenUnixNano: s.TakenUnixNano,
			AgeMs:         now.Sub(time.Unix(0, s.TakenUnixNano)).Milliseconds(),
			Series:        len(s.Series),
			Health:        s.Health,
		})
	}

	v.Committed, v.Aborted = p.totalsLocked()
	if t := v.Committed + v.Aborted; t > 0 {
		v.Availability = float64(v.Committed) / float64(t)
	}

	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		p50, cnt := p.quantileLocked(f, 0.50)
		p99, _ := p.quantileLocked(f, 0.99)
		if cnt == 0 {
			continue
		}
		v.Latency = append(v.Latency, FamilyQuantiles{
			Family: f, Count: cnt, P50Ms: p50 * 1e3, P99Ms: p99 * 1e3,
		})
	}

	v.SLO = p.evalLocked(now)
	return v
}

// WritePrometheus renders the merged cluster state in the Prometheus text
// exposition format: every peer's series (peer labels are already baked
// into each summary), grouped per family under one # TYPE line, origins in
// sorted order. Duplicate name+labels across origins keep the first
// (sorted-origin) writer — in-process simulations sharing one registry
// would otherwise repeat identical series per peer.
func (p *Plane) WritePrometheus(w io.Writer) error {
	p.mu.Lock()
	origins := make([]string, 0, len(p.summaries))
	for id := range p.summaries {
		origins = append(origins, id)
	}
	sort.Strings(origins)
	sums := make([]*Summary, 0, len(origins))
	for _, id := range origins {
		sums = append(sums, p.summaries[id])
	}
	p.mu.Unlock()

	type familyGroup struct {
		typ    string
		series []*obs.Series
	}
	var order []string
	groups := make(map[string]*familyGroup)
	seen := make(map[string]bool) // name + labels dedupe
	for _, s := range sums {
		for i := range s.Series {
			se := &s.Series[i]
			key := se.Name + se.Labels
			if seen[key] {
				continue
			}
			seen[key] = true
			g := groups[se.Name]
			if g == nil {
				g = &familyGroup{typ: se.Type}
				groups[se.Name] = g
				order = append(order, se.Name)
			}
			g.series = append(g.series, se)
		}
	}

	for _, name := range order {
		g := groups[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, g.typ); err != nil {
			return err
		}
		for _, se := range g.series {
			if err := writeSeries(w, se); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one exported series in the text format; histograms
// get cumulative le-buckets plus _sum and _count, like obs.WritePrometheus.
func writeSeries(w io.Writer, se *obs.Series) error {
	if se.Type != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %d\n", se.Name, se.Labels, se.Value)
		return err
	}
	cum := int64(0)
	for i, bound := range se.Bounds {
		if i < len(se.Buckets) {
			cum += se.Buckets[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			se.Name, obs.RenderWith(se.Labels, "le", fmt.Sprintf("%g", bound)), cum); err != nil {
			return err
		}
	}
	if len(se.Buckets) > len(se.Bounds) {
		cum += se.Buckets[len(se.Bounds)]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		se.Name, obs.RenderWith(se.Labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n",
		se.Name, se.Labels, time.Duration(se.SumNs).Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", se.Name, se.Labels, se.Count)
	return err
}
