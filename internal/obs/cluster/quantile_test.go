package cluster_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"axmltx/internal/obs"
	"axmltx/internal/obs/cluster"
	"axmltx/internal/sim"
)

// TestBucketQuantilePinnedToPercentile pins the bucket estimator against the
// repo-wide exact nearest-rank percentile (sim.Percentile): for any sample
// set, the estimate must land within the width of the bucket containing the
// exact value — the estimator's documented error bound. Three shapes of
// latency distribution across several seeds.
func TestBucketQuantilePinnedToPercentile(t *testing.T) {
	draws := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(20 * time.Millisecond)))
		},
		"exponential": func(r *rand.Rand) time.Duration {
			return time.Duration(r.ExpFloat64() * float64(2*time.Millisecond))
		},
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Intn(10) == 0 {
				return 50*time.Millisecond + time.Duration(r.Int63n(int64(100*time.Millisecond)))
			}
			return 200*time.Microsecond + time.Duration(r.Int63n(int64(time.Millisecond)))
		},
	}
	for name, draw := range draws {
		for seed := int64(1); seed <= 4; seed++ {
			r := rand.New(rand.NewSource(seed))
			reg := obs.NewRegistry()
			h := reg.Histogram("q_test_seconds", nil)
			samples := make([]time.Duration, 1000)
			for i := range samples {
				samples[i] = draw(r)
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			bounds, buckets := h.Bounds(), h.BucketCounts()
			for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
				exact := sim.Percentile(samples, q).Seconds()
				est := cluster.BucketQuantile(bounds, buckets, q)
				tol := cluster.BucketWidth(bounds, exact)
				if math.IsInf(tol, 1) {
					// Exact value beyond the last finite bound: the estimator
					// clamps there by contract.
					if est != bounds[len(bounds)-1] {
						t.Errorf("%s seed %d q%.2f: exact %.6fs beyond bounds, estimate %.6fs did not clamp to %.6fs",
							name, seed, q, exact, est, bounds[len(bounds)-1])
					}
					continue
				}
				if diff := math.Abs(est - exact); diff > tol {
					t.Errorf("%s seed %d q%.2f: estimate %.6fs vs exact %.6fs, diff %.6fs exceeds bucket width %.6fs",
						name, seed, q, est, exact, diff, tol)
				}
			}
		}
	}
}

// TestBucketQuantileBoundaries pins the estimator's edge behavior: an empty
// histogram, a rank falling exactly on a bucket's cumulative count (the
// bucket's upper bound must come back exactly), and mass in the +Inf bucket
// (clamped to the largest finite bound).
func TestBucketQuantileBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	if got := cluster.BucketQuantile(bounds, []int64{0, 0, 0, 0}, 0.99); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
	if got := cluster.BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("nil histogram: got %v, want 0", got)
	}
	// 10 observations in the first bucket, 10 in the second: rank at q=0.5 is
	// 10, exactly the first bucket's cumulative count, so the estimate is the
	// first upper bound exactly.
	if got := cluster.BucketQuantile(bounds, []int64{10, 10, 0, 0}, 0.5); got != 0.001 {
		t.Errorf("boundary rank: got %v, want 0.001", got)
	}
	// All mass past the last finite bound: clamp.
	if got := cluster.BucketQuantile(bounds, []int64{0, 0, 0, 7}, 0.99); got != 0.1 {
		t.Errorf("+Inf clamp: got %v, want 0.1", got)
	}
	// Interpolation halfway through the second bucket.
	got := cluster.BucketQuantile(bounds, []int64{0, 10, 0, 0}, 0.5)
	want := 0.001 + (0.01-0.001)*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("interpolation: got %v, want %v", got, want)
	}
}

// TestBucketWidth pins the tolerance helper the cross-checks rely on.
func TestBucketWidth(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	cases := []struct {
		v, want float64
	}{
		{0.0005, 0.001},    // first bucket: width is the first bound
		{0.005, 0.009},     // interior
		{0.01, 0.009},      // on a bound: belongs to the bucket it closes
		{0.05, 0.09},       // last finite bucket
		{0.5, math.Inf(1)}, // beyond the last bound
		{0.001, 0.001},     // exactly the first bound
	}
	for _, c := range cases {
		got := cluster.BucketWidth(bounds, c.v)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("BucketWidth(%v) = %v, want +Inf", c.v, got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BucketWidth(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if got := cluster.BucketWidth(nil, 1); !math.IsInf(got, 1) {
		t.Errorf("BucketWidth with no bounds = %v, want +Inf", got)
	}
}
