package cluster_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"axmltx/internal/obs"
	"axmltx/internal/obs/cluster"
)

// regFor builds a registry resembling one live peer: protocol gauges, a
// latency histogram with a few observations, and membership state gauges.
func regFor(peer string, committed, aborted int64, lat ...time.Duration) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Gauge("axml_txns_committed", obs.Labels{"peer": peer}, func() int64 { return committed })
	reg.Gauge("axml_txns_aborted", obs.Labels{"peer": peer}, func() int64 { return aborted })
	reg.Gauge("axml_members", obs.Labels{"peer": peer, "state": "suspect"}, func() int64 { return 1 })
	h := reg.Histogram("axml_invoke_seconds", obs.Labels{"peer": peer})
	for _, d := range lat {
		h.Observe(d)
	}
	return reg
}

func TestSummaryEncodeDecodeRoundTrip(t *testing.T) {
	reg := regFor("AP1", 42, 3, time.Millisecond, 5*time.Millisecond, 80*time.Millisecond)
	reg.Counter("axml_custom_total", obs.Labels{"peer": "AP1"}).Add(7)
	series := reg.Export()
	s := &cluster.Summary{
		Origin:        "AP1",
		TakenUnixNano: 123456789,
		Series:        series,
	}
	blob := s.Encode()
	got, err := cluster.DecodeSummary(blob)
	if err != nil {
		t.Fatalf("DecodeSummary: %v", err)
	}
	if got.Origin != s.Origin || got.TakenUnixNano != s.TakenUnixNano {
		t.Fatalf("identity fields: got %q/%d, want %q/%d", got.Origin, got.TakenUnixNano, s.Origin, s.TakenUnixNano)
	}
	if len(got.Series) != len(series) {
		t.Fatalf("series count: got %d, want %d", len(got.Series), len(series))
	}
	for i := range series {
		if !reflect.DeepEqual(got.Series[i], series[i]) {
			t.Errorf("series %d (%s): round-trip mismatch\n got %+v\nwant %+v",
				i, series[i].Name, got.Series[i], series[i])
		}
	}
}

func TestDecodeSummaryRejectsGarbage(t *testing.T) {
	if _, err := cluster.DecodeSummary(nil); err == nil {
		t.Error("empty payload: want error")
	}
	if _, err := cluster.DecodeSummary([]byte{0x7f, 1, 2}); err == nil {
		t.Error("unknown version: want error")
	}
	reg := regFor("AP1", 1, 0, time.Millisecond)
	s := &cluster.Summary{Origin: "AP1", Series: reg.Export()}
	blob := s.Encode()
	if _, err := cluster.DecodeSummary(blob[:len(blob)/2]); err == nil {
		t.Error("truncated payload: want error")
	}
	if _, err := cluster.DecodeSummary(append(blob, 0xff)); err == nil {
		t.Error("trailing bytes: want error")
	}
}

// TestCaptureDigestsHealth checks that Capture fills the health bits from the
// well-known families: transaction totals, suspect count from the labeled
// membership gauge, and the process metrics NewPlane registers itself.
func TestCaptureDigestsHealth(t *testing.T) {
	reg := regFor("AP1", 42, 3, time.Millisecond)
	p := cluster.NewPlane("AP1", reg, cluster.SLOConfig{})
	blob := p.Capture()
	s, err := cluster.DecodeSummary(blob)
	if err != nil {
		t.Fatalf("DecodeSummary: %v", err)
	}
	if s.Health.Committed != 42 || s.Health.Aborted != 3 {
		t.Errorf("transaction totals: got %d/%d, want 42/3", s.Health.Committed, s.Health.Aborted)
	}
	if s.Health.SuspectPeers != 1 {
		t.Errorf("suspect peers: got %d, want 1", s.Health.SuspectPeers)
	}
	if s.Health.Goroutines <= 0 {
		t.Errorf("goroutines: got %d, want > 0 (process metrics registered by NewPlane)", s.Health.Goroutines)
	}
	if s.Health.HeapBytes <= 0 {
		t.Errorf("heap bytes: got %d, want > 0", s.Health.HeapBytes)
	}
}

// TestPlaneMergeAndDrop drives two planes by hand: B applies A's captured
// payload, merges its histogram into cluster quantiles, then drops A on
// (simulated) death. The self summary must survive a bogus drop.
func TestPlaneMergeAndDrop(t *testing.T) {
	regA := regFor("AP1", 10, 0, time.Millisecond, time.Millisecond, time.Millisecond)
	regB := regFor("AP2", 20, 10, 4*time.Millisecond)
	a := cluster.NewPlane("AP1", regA, cluster.SLOConfig{})
	b := cluster.NewPlane("AP2", regB, cluster.SLOConfig{})

	blob := a.Capture()
	b.Capture()
	if err := b.Apply(blob); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got, want := b.Origins(), []string{"AP1", "AP2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("origins after merge: got %v, want %v", got, want)
	}

	view := b.View()
	if view.Committed != 30 || view.Aborted != 10 {
		t.Errorf("merged totals: got %d/%d, want 30/10", view.Committed, view.Aborted)
	}
	if view.Availability != 0.75 {
		t.Errorf("availability: got %v, want 0.75", view.Availability)
	}
	if len(view.Peers) != 2 || view.Peers[0].Origin != "AP1" || view.Peers[1].Origin != "AP2" {
		t.Fatalf("peer digests: got %+v", view.Peers)
	}
	if _, cnt := b.Quantile("axml_invoke_seconds", 0.5); cnt != 4 {
		t.Errorf("merged histogram count: got %d, want 4", cnt)
	}

	// Applying the same payload again is idempotent; a stale re-send (older
	// TakenUnixNano) never rolls the view backwards.
	if err := b.Apply(blob); err != nil {
		t.Fatalf("re-Apply: %v", err)
	}
	if _, cnt := b.Quantile("axml_invoke_seconds", 0.5); cnt != 4 {
		t.Errorf("count after duplicate apply: got %d, want 4", cnt)
	}

	b.Drop("AP1")
	if got, want := b.Origins(), []string{"AP2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("origins after drop: got %v, want %v", got, want)
	}
	b.Drop("AP2") // self: must be refused
	if got, want := b.Origins(), []string{"AP2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("self summary dropped: got %v, want %v", got, want)
	}
}

// TestPlaneWritePrometheus checks the federated text output: one # TYPE line
// per family, every origin's peer-labeled series present, histograms
// rendered as cumulative le-buckets.
func TestPlaneWritePrometheus(t *testing.T) {
	regA := regFor("AP1", 1, 0, time.Millisecond)
	regB := regFor("AP2", 2, 0, time.Millisecond)
	a := cluster.NewPlane("AP1", regA, cluster.SLOConfig{})
	b := cluster.NewPlane("AP2", regB, cluster.SLOConfig{})
	blob := a.Capture()
	b.Capture()
	if err := b.Apply(blob); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	var sb strings.Builder
	if err := b.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`axml_txns_committed{peer="AP1"} 1`,
		`axml_txns_committed{peer="AP2"} 2`,
		`axml_invoke_seconds_count{peer="AP1"} 1`,
		`axml_invoke_seconds_count{peer="AP2"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated output missing %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE axml_txns_committed gauge"); n != 1 {
		t.Errorf("TYPE line for axml_txns_committed appears %d times, want 1", n)
	}
	if n := strings.Count(out, "# TYPE axml_invoke_seconds histogram"); n != 1 {
		t.Errorf("TYPE line for axml_invoke_seconds appears %d times, want 1", n)
	}
}

// TestSLOBurnRate drives the engine's arithmetic through View: a fresh
// history means the window deltas are the lifetime totals, so with a 1%
// error budget and exactly 1% errors the burn rate is 1.0 (on budget), and
// a 0.1% budget pushes it to 10x (budget exhausted early).
func TestSLOBurnRate(t *testing.T) {
	reg := regFor("AP1", 99, 1, 5*time.Millisecond)
	p := cluster.NewPlane("AP1", reg, cluster.SLOConfig{
		Availability:  0.99,
		LatencyTarget: time.Second,
	})
	p.Capture()
	v := p.View()
	if v.SLO.ErrorRate != 0.01 {
		t.Errorf("error rate: got %v, want 0.01", v.SLO.ErrorRate)
	}
	if diff := v.SLO.BurnRate - 1.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("burn rate: got %v, want 1.0", v.SLO.BurnRate)
	}
	if !v.SLO.AvailabilityOK {
		t.Error("burning exactly the budget must still be OK")
	}
	if !v.SLO.LatencyOK {
		t.Errorf("latency %vms is under the 1s target, want OK", v.SLO.LatencyMs)
	}
	if v.SLO.BudgetRemaining > 1e-9 || v.SLO.BudgetRemaining < -1e-9 {
		t.Errorf("budget remaining: got %v, want 0 (exactly spent)", v.SLO.BudgetRemaining)
	}

	tight := cluster.NewPlane("AP1", reg, cluster.SLOConfig{
		Availability:  0.999,
		LatencyTarget: time.Microsecond,
	})
	tight.Capture()
	tv := tight.View()
	if diff := tv.SLO.BurnRate - 10.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("tight burn rate: got %v, want 10.0", tv.SLO.BurnRate)
	}
	if tv.SLO.AvailabilityOK {
		t.Error("10x burn must not be OK")
	}
	if tv.SLO.LatencyOK {
		t.Errorf("latency %vms is over the 1µs target, want not OK", tv.SLO.LatencyMs)
	}
	if tv.SLO.BudgetRemaining >= 0 {
		t.Errorf("tight budget remaining: got %v, want negative (overspent)", tv.SLO.BudgetRemaining)
	}
}
