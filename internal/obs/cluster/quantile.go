package cluster

import (
	"math"
	"sort"
)

// BucketQuantile estimates the q-quantile (0 < q <= 1) of a bucketed
// histogram, in seconds. buckets holds per-bucket counts with one final
// +Inf bucket (len(bounds)+1 entries, the obs.Series layout).
//
// The rank is the repo-wide nearest-rank definition (ceil(q*N), 1-based —
// the same rank sim.Percentile selects on a sorted sample), located by a
// cumulative walk over the buckets, then linearly interpolated inside the
// containing bucket. Because the estimate lands in the same bucket as the
// exact nearest-rank sample, its error is bounded by that bucket's width
// (see BucketWidth); when the rank falls exactly on a bucket's cumulative
// count the bucket's upper bound is returned exactly. Ranks landing in the
// +Inf bucket clamp to the largest finite bound — the estimator cannot see
// past it.
func BucketQuantile(bounds []float64, buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 || len(buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range buckets {
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= len(bounds) {
			break // +Inf bucket: clamp below
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		return lower + (bounds[i]-lower)*float64(rank-cum)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// BucketWidth returns the width of the bucket containing value v — the
// documented error bound of BucketQuantile around an exact sample at v.
// Values beyond the last finite bound have no bound (+Inf).
func BucketWidth(bounds []float64, v float64) float64 {
	if len(bounds) == 0 {
		return math.Inf(1)
	}
	i := sort.SearchFloat64s(bounds, v)
	if i >= len(bounds) {
		return math.Inf(1)
	}
	if i == 0 {
		return bounds[0]
	}
	return bounds[i] - bounds[i-1]
}

// mergeBuckets adds src into dst element-wise, growing dst as needed.
func mergeBuckets(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, c := range src {
		dst[i] += c
	}
	return dst
}
