package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Ring is an in-memory ring-buffer sink holding the most recent spans. It
// is the default sink for tests, cmd/axmlquery and the /trace endpoint.
//
// A per-transaction index is maintained alongside the buffer so that
// /trace/{txn} lookups are O(spans of that txn) and always observe a
// consistent snapshot: the index is updated under the same mutex that
// performs eviction, so a concurrent reader never sees a half-evicted
// trace.
type Ring struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	full  bool
	total int64
	byTxn map[string][]*Span
}

// DefaultRingCapacity bounds memory when callers pass capacity <= 0.
const DefaultRingCapacity = 4096

// NewRing returns a ring buffer keeping the last capacity spans
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{
		buf:   make([]*Span, capacity),
		byTxn: make(map[string][]*Span),
	}
}

// Emit implements Sink.
func (r *Ring) Emit(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		// Eviction order equals emission order, so the evicted span is
		// always the head of its transaction's bucket.
		bucket := r.byTxn[old.Txn]
		if len(bucket) > 0 && bucket[0] == old {
			if len(bucket) == 1 {
				delete(r.byTxn, old.Txn)
			} else {
				r.byTxn[old.Txn] = bucket[1:]
			}
		}
	}
	r.buf[r.next] = s
	r.byTxn[s.Txn] = append(r.byTxn[s.Txn], s)
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
}

// Spans returns the buffered spans in emission order.
func (r *Ring) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Span
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Trace returns the buffered spans of one transaction in emission order.
func (r *Ring) Trace(txn string) []*Span {
	spans, _ := r.TraceLookup(txn)
	return spans
}

// TraceLookup returns the buffered spans of one transaction in emission
// order, plus whether the transaction is known to the ring at all. The
// returned slice is a snapshot taken under the ring lock — eviction after
// the call cannot mutate it, so encoders never observe a half-evicted tree.
func (r *Ring) TraceLookup(txn string) (spans []*Span, known bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	bucket, ok := r.byTxn[txn]
	if !ok {
		return nil, false
	}
	return append([]*Span(nil), bucket...), true
}

// Total returns the number of spans ever emitted (including evicted ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONL is a sink writing one JSON object per line — the portable exchange
// format for traces (axmlbench -trace, axmlpeer -trace).
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing to w. Call Flush (or Close on the
// underlying writer after Flush) before reading the output.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. Encoding errors are sticky and reported by Flush.
func (j *JSONL) Emit(s *Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(s)
}

// Flush writes buffered lines through and returns the first error seen.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// DecodeJSONL reads spans back from a JSONL stream; blank lines are
// skipped. It is the inverse of the JSONL sink.
func DecodeJSONL(r io.Reader) ([]*Span, error) {
	dec := json.NewDecoder(r)
	var out []*Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: decode jsonl span %d: %w", len(out), err)
		}
		out = append(out, &s)
	}
}

// Multi fans spans out to several sinks.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(s *Span) {
	for _, sink := range m {
		if sink != nil {
			sink.Emit(s)
		}
	}
}
