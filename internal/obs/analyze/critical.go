package analyze

import (
	"sort"
	"time"

	"axmltx/internal/obs"
)

// Segment is one stretch of a transaction's critical path: during
// [Start,End) the span named here was the latest-finishing work in flight,
// so shortening it (and nothing else) would have shortened the transaction.
type Segment struct {
	Span  *obs.Span
	Class CostClass
	Start time.Time
	End   time.Time
}

// Duration is the segment's length.
func (s Segment) Duration() time.Duration { return s.End.Sub(s.Start) }

// CriticalPath extracts the transaction's critical path: the chain of spans
// that determined its end-to-end latency. The walk starts at the primary
// root (the txn span when present, otherwise the latest-ending root) and
// repeatedly steps into the latest-ending child overlapping the remaining
// window — the standard backward critical-path scan over an interval tree.
// Windows are clamped so cross-peer clock skew cannot produce negative or
// overlapping segments, and ties break on (End, Start, ID) so the result is
// deterministic for identical input. Each returned segment is attributed to
// exactly one cost class; segments come back in chronological order.
func CriticalPath(t *Trace) []Segment {
	root := primaryRoot(t)
	if root == nil {
		return nil
	}
	var segs []Segment
	walkCritical(root, root.Span.Start, root.Span.End, &segs)
	sort.Slice(segs, func(i, j int) bool {
		if !segs[i].Start.Equal(segs[j].Start) {
			return segs[i].Start.Before(segs[j].Start)
		}
		return segs[i].Span.ID < segs[j].Span.ID
	})
	return segs
}

// primaryRoot picks the root the critical path hangs off: the txn span when
// the trace includes its origin, otherwise the latest-ending root (ties on
// ID for determinism).
func primaryRoot(t *Trace) *obs.TreeNode {
	var best *obs.TreeNode
	for _, r := range t.Roots {
		if r.Span.Kind == obs.KindTxn {
			return r
		}
		if best == nil || laterNode(r, best) {
			best = r
		}
	}
	return best
}

// laterNode reports whether a's span outranks b's for latest-ending
// selection: later End, then later Start, then greater ID.
func laterNode(a, b *obs.TreeNode) bool {
	as, bs := a.Span, b.Span
	if !as.End.Equal(bs.End) {
		return as.End.After(bs.End)
	}
	if !as.Start.Equal(bs.Start) {
		return as.Start.After(bs.Start)
	}
	return as.ID > bs.ID
}

// walkCritical appends node's critical segments within [start,end) to segs,
// recursing into the latest-ending overlapping child at each backward step.
func walkCritical(n *obs.TreeNode, start, end time.Time, segs *[]Segment) {
	if !end.After(start) {
		return
	}
	cls := Classify(n.Span)
	cursor := end
	for cursor.After(start) {
		child := latestChildBefore(n, start, cursor)
		if child == nil {
			*segs = append(*segs, Segment{Span: n.Span, Class: cls, Start: start, End: cursor})
			return
		}
		cs, ce := clamp(child.Span.Start, child.Span.End, start, cursor)
		if ce.Before(cursor) {
			// The node itself was the latest work between the child's end
			// and the cursor: self time on the critical path.
			*segs = append(*segs, Segment{Span: n.Span, Class: cls, Start: ce, End: cursor})
		}
		walkCritical(child, cs, ce, segs)
		cursor = cs
	}
}

// latestChildBefore returns the child of n with the latest End that overlaps
// [start,cursor), or nil. Ties break like laterNode, keeping the scan
// deterministic when children end at the same instant.
func latestChildBefore(n *obs.TreeNode, start, cursor time.Time) *obs.TreeNode {
	var best *obs.TreeNode
	for _, c := range n.Children {
		cs, ce := clamp(c.Span.Start, c.Span.End, start, cursor)
		if !ce.After(cs) {
			continue // no overlap with the remaining window
		}
		if best == nil || laterNode(c, best) {
			best = c
		}
	}
	return best
}

// ClassTotals sums critical-path time per cost class.
func ClassTotals(segs []Segment) map[CostClass]time.Duration {
	out := make(map[CostClass]time.Duration)
	for _, s := range segs {
		out[s.Class] += s.Duration()
	}
	return out
}
