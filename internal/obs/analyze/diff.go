package analyze

import (
	"sort"
	"time"

	"axmltx/internal/obs"
)

// PathStat aggregates the spans sharing one structural path (root-to-node
// frame signature) within a trace: how many there were and how much time
// they took in total. Retries of the same invocation fold into one entry
// with Count > 1.
type PathStat struct {
	Path  string
	Count int
	Total time.Duration
}

// PathDelta is one structural path present in both traces with its
// per-trace count and total duration.
type PathDelta struct {
	Path   string
	CountA int
	CountB int
	TotalA time.Duration
	TotalB time.Duration
}

// Delta is the latency difference B−A.
func (d PathDelta) Delta() time.Duration { return d.TotalB - d.TotalA }

// Diff is the structural and latency comparison of two traces of the same
// scenario (two chaos seeds, or pre/post a code change).
type Diff struct {
	TxnA, TxnB string
	// DurationA/B are the end-to-end trace extents.
	DurationA, DurationB time.Duration
	// OnlyA/OnlyB are structural paths present in one trace only — the
	// divergence: injected faults, retries, redirects, compensations that
	// the other run did not perform.
	OnlyA, OnlyB []PathStat
	// Changed are paths present in both, ordered by |latency delta|
	// descending so the dominating shift comes first.
	Changed []PathDelta
	// FaultsA/B list the injected-fault spans of each trace explicitly, so
	// a seed comparison surfaces what chaos actually did even when the
	// fault hit a structurally identical path.
	FaultsA, FaultsB []*obs.Span
}

// DiffTraces aligns two traces by structural path signature and reports
// what only one of them did, how shared paths shifted in latency, and the
// fault spans of each. Output ordering is deterministic: OnlyA/OnlyB sort
// by path, Changed by |delta| descending then path.
func DiffTraces(a, b *Trace) *Diff {
	pa, pb := pathStats(a), pathStats(b)
	d := &Diff{
		TxnA: a.Txn, TxnB: b.Txn,
		DurationA: a.Duration(), DurationB: b.Duration(),
		FaultsA: faultSpans(a), FaultsB: faultSpans(b),
	}
	for path, sa := range pa {
		if sb, ok := pb[path]; ok {
			d.Changed = append(d.Changed, PathDelta{
				Path: path, CountA: sa.Count, CountB: sb.Count,
				TotalA: sa.Total, TotalB: sb.Total,
			})
		} else {
			d.OnlyA = append(d.OnlyA, sa)
		}
	}
	for path, sb := range pb {
		if _, ok := pa[path]; !ok {
			d.OnlyB = append(d.OnlyB, sb)
		}
	}
	sort.Slice(d.OnlyA, func(i, j int) bool { return d.OnlyA[i].Path < d.OnlyA[j].Path })
	sort.Slice(d.OnlyB, func(i, j int) bool { return d.OnlyB[i].Path < d.OnlyB[j].Path })
	sort.Slice(d.Changed, func(i, j int) bool {
		di, dj := absDur(d.Changed[i].Delta()), absDur(d.Changed[j].Delta())
		if di != dj {
			return di > dj
		}
		return d.Changed[i].Path < d.Changed[j].Path
	})
	return d
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// pathStats folds a trace into per-signature stats. The signature is the
// root-to-node chain of frames ("kind(service)@peer;…"), which is stable
// across runs of the same scenario: span IDs and timestamps differ, the
// structure does not — except where the runs genuinely diverged.
func pathStats(t *Trace) map[string]PathStat {
	out := make(map[string]PathStat)
	var walk func(n *obs.TreeNode, prefix string)
	walk = func(n *obs.TreeNode, prefix string) {
		path := Frame(n.Span)
		if prefix != "" {
			path = prefix + ";" + path
		}
		s := out[path]
		s.Path = path
		s.Count++
		s.Total += n.Span.Duration()
		out[path] = s
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	for _, r := range t.Roots {
		walk(r, "")
	}
	return out
}

// faultSpans extracts a trace's injected-fault spans in start order.
func faultSpans(t *Trace) []*obs.Span {
	var out []*obs.Span
	for _, s := range t.Spans {
		if s.Kind == obs.KindFault {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
