// Package analyze turns recorded span trees (internal/obs) into answers:
// which edge of the invocation chain dominated commit latency, whether
// compensation time went to WAL sync or network round trips, and how two
// runs of the same scenario diverged.
//
// The package is pure analysis — it consumes spans from any sink (a Ring
// snapshot or a decoded JSONL trace file), reconstructs per-transaction
// DAGs, and derives critical paths, cost-class attribution, folded-stack
// flamegraphs, per-peer/per-service breakdowns and structural diffs. It is
// the library under cmd/axmltrace.
package analyze

import (
	"io"
	"sort"
	"time"

	"axmltx/internal/obs"
)

// Trace is one transaction's reassembled span forest.
type Trace struct {
	// Txn is the transaction (= trace) ID.
	Txn string
	// Spans are the transaction's spans in emission order.
	Spans []*obs.Span
	// Roots is the reassembled forest (the txn root plus any orphans whose
	// parents live on unscraped peers).
	Roots []*obs.TreeNode
	// Start/End bound the whole trace in wall-clock time.
	Start, End time.Time
}

// Duration is the trace's wall-clock extent.
func (t *Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// FromSpans groups spans by transaction and reassembles each group into a
// Trace. Traces are ordered by start time, then transaction ID, for
// deterministic output.
func FromSpans(spans []*obs.Span) []*Trace {
	byTxn := make(map[string][]*obs.Span)
	var order []string
	for _, s := range spans {
		if s == nil || s.Txn == "" {
			continue
		}
		if _, ok := byTxn[s.Txn]; !ok {
			order = append(order, s.Txn)
		}
		byTxn[s.Txn] = append(byTxn[s.Txn], s)
	}
	out := make([]*Trace, 0, len(order))
	for _, txn := range order {
		group := byTxn[txn]
		t := &Trace{Txn: txn, Spans: group, Roots: obs.Tree(group)}
		t.Start, t.End = group[0].Start, group[0].End
		for _, s := range group[1:] {
			if s.Start.Before(t.Start) {
				t.Start = s.Start
			}
			if s.End.After(t.End) {
				t.End = s.End
			}
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Txn < out[j].Txn
	})
	return out
}

// Load decodes a JSONL trace stream and groups it into traces.
func Load(r io.Reader) ([]*Trace, error) {
	spans, err := obs.DecodeJSONL(r)
	if err != nil {
		return nil, err
	}
	return FromSpans(spans), nil
}

// Find returns the trace for one transaction, if present.
func Find(traces []*Trace, txn string) (*Trace, bool) {
	for _, t := range traces {
		if t.Txn == txn {
			return t, true
		}
	}
	return nil, false
}

// CostClass attributes a latency contribution to one resource, the units
// the paper's experiments reason in.
type CostClass string

const (
	// ClassNetwork is remote-invocation round-trip time (including the
	// remote peer's queueing) and injected network faults.
	ClassNetwork CostClass = "network"
	// ClassWALSync is commit/abort processing: the durability barrier and
	// decision propagation.
	ClassWALSync CostClass = "wal-sync"
	// ClassMaterialize is local document materialization (Exec).
	ClassMaterialize CostClass = "materialize"
	// ClassService is service-body execution and transaction bookkeeping.
	ClassService CostClass = "service"
	// ClassCompensation is backward-recovery work: undoing effects and
	// running shipped compensating-service definitions.
	ClassCompensation CostClass = "compensation"
)

// Classify attributes a span to exactly one cost class based on its kind
// and, for invocations, whether it crossed the network (Target differs from
// the span's own peer).
func Classify(sp *obs.Span) CostClass {
	switch sp.Kind {
	case obs.KindExec:
		return ClassMaterialize
	case obs.KindCompensate:
		return ClassCompensation
	case obs.KindCommit, obs.KindAbort:
		return ClassWALSync
	case obs.KindFault:
		return ClassNetwork
	case obs.KindInvoke, obs.KindCall, obs.KindRetry, obs.KindRedirect:
		if sp.Target != "" && sp.Target != sp.Peer {
			return ClassNetwork
		}
		return ClassService
	default: // serve, reuse, txn, unknown kinds
		return ClassService
	}
}

// selfIntervals returns the parts of [start,end) not covered by the node's
// children (clamped to the window) — the span's own time. Used by the
// flamegraph and top breakdowns; the critical path derives its own segments
// during the walk.
func selfIntervals(n *obs.TreeNode, start, end time.Time) []interval {
	ivs := make([]interval, 0, len(n.Children))
	for _, c := range n.Children {
		s, e := clamp(c.Span.Start, c.Span.End, start, end)
		if e.After(s) {
			ivs = append(ivs, interval{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start.Before(ivs[j].start) })
	var out []interval
	cursor := start
	for _, iv := range ivs {
		if iv.start.After(cursor) {
			out = append(out, interval{cursor, iv.start})
		}
		if iv.end.After(cursor) {
			cursor = iv.end
		}
	}
	if end.After(cursor) {
		out = append(out, interval{cursor, end})
	}
	return out
}

type interval struct{ start, end time.Time }

func (iv interval) duration() time.Duration { return iv.end.Sub(iv.start) }

// clamp restricts [s,e) to the window [ws,we).
func clamp(s, e, ws, we time.Time) (time.Time, time.Time) {
	if s.Before(ws) {
		s = ws
	}
	if e.After(we) {
		e = we
	}
	return s, e
}

// selfTime is the span's duration minus its children's coverage.
func selfTime(n *obs.TreeNode) time.Duration {
	var total time.Duration
	for _, iv := range selfIntervals(n, n.Span.Start, n.Span.End) {
		total += iv.duration()
	}
	return total
}
