package analyze

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"axmltx/internal/obs"
)

// ms is a fixed wall-clock instant offset in milliseconds, so synthetic
// traces have exact, skew-free timestamps.
func ms(m int) time.Time { return time.Unix(1000, 0).UTC().Add(time.Duration(m) * time.Millisecond) }

func mkSpan(txn, id, parent, peer, kind, service, target string, startMs, endMs int) *obs.Span {
	return &obs.Span{
		Txn: txn, ID: id, Parent: parent, Peer: peer, Kind: kind,
		Service: service, Target: target,
		Start: ms(startMs), End: ms(endMs), Outcome: obs.OutcomeOK,
	}
}

// syntheticCommit builds a one-hop committed transaction:
//
//	txn@AP1 [0,100) ── exec@AP1 [5,90) ── invoke(S3)@AP1→AP3 [10,80) ── serve(S3)@AP3 [15,75)
//	              └── commit@AP1 [90,99)
func syntheticCommit() []*obs.Span {
	return []*obs.Span{
		mkSpan("T1", "AP1#1", "", "AP1", obs.KindTxn, "", "", 0, 100),
		mkSpan("T1", "AP1#2", "AP1#1", "AP1", obs.KindExec, "q", "", 5, 90),
		mkSpan("T1", "AP1#3", "AP1#2", "AP1", obs.KindInvoke, "S3", "AP3", 10, 80),
		mkSpan("T1", "AP3#1", "AP1#3", "AP3", obs.KindServe, "S3", "", 15, 75),
		mkSpan("T1", "AP1#4", "AP1#1", "AP1", obs.KindCommit, "", "", 90, 99),
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		kind, target, peer string
		want               CostClass
	}{
		{obs.KindExec, "", "AP1", ClassMaterialize},
		{obs.KindCompensate, "", "AP1", ClassCompensation},
		{obs.KindCommit, "", "AP1", ClassWALSync},
		{obs.KindAbort, "", "AP1", ClassWALSync},
		{obs.KindFault, "AP3", "chaos", ClassNetwork},
		{obs.KindInvoke, "AP3", "AP1", ClassNetwork},
		{obs.KindInvoke, "AP1", "AP1", ClassService}, // local invocation
		{obs.KindInvoke, "", "AP1", ClassService},
		{obs.KindCall, "AP2", "AP1", ClassNetwork},
		{obs.KindRetry, "AP5r", "AP3", ClassNetwork},
		{obs.KindRedirect, "AP1", "AP6", ClassNetwork},
		{obs.KindServe, "", "AP3", ClassService},
		{obs.KindReuse, "", "AP3", ClassService},
		{obs.KindTxn, "", "AP1", ClassService},
	}
	for _, c := range cases {
		sp := &obs.Span{Kind: c.kind, Target: c.target, Peer: c.peer}
		if got := Classify(sp); got != c.want {
			t.Errorf("Classify(%s target=%q peer=%q) = %s, want %s", c.kind, c.target, c.peer, got, c.want)
		}
	}
}

func TestCriticalPathSynthetic(t *testing.T) {
	traces := FromSpans(syntheticCommit())
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[0]
	segs := CriticalPath(tr)

	type want struct {
		startMs, endMs int
		class          CostClass
	}
	wants := []want{
		{0, 5, ClassService},      // txn before exec starts
		{5, 10, ClassMaterialize}, // exec before the invocation
		{10, 15, ClassNetwork},    // request leg of the round trip
		{15, 75, ClassService},    // remote service body
		{75, 80, ClassNetwork},    // response leg
		{80, 90, ClassMaterialize},
		{90, 99, ClassWALSync},
		{99, 100, ClassService}, // txn wrap-up after commit
	}
	if len(segs) != len(wants) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(wants), segs)
	}
	for i, w := range wants {
		s := segs[i]
		if !s.Start.Equal(ms(w.startMs)) || !s.End.Equal(ms(w.endMs)) || s.Class != w.class {
			t.Errorf("segment %d = [%s,%s) %s, want [%v,%v) %s",
				i, s.Start, s.End, s.Class, w.startMs, w.endMs, w.class)
		}
	}
	// The path tiles the transaction window exactly: contiguous, no gaps, no
	// overlaps, summing to the end-to-end latency.
	for i := 1; i < len(segs); i++ {
		if !segs[i].Start.Equal(segs[i-1].End) {
			t.Errorf("segment %d not contiguous: %s vs %s", i, segs[i-1].End, segs[i].Start)
		}
	}
	var total time.Duration
	for _, s := range segs {
		total += s.Duration()
	}
	if total != tr.Duration() {
		t.Errorf("critical path sums to %s, trace duration %s", total, tr.Duration())
	}
	if tot := ClassTotals(segs); tot[ClassService] != 66*time.Millisecond || tot[ClassNetwork] != 10*time.Millisecond {
		t.Errorf("class totals: %v", tot)
	}
}

func TestCriticalPathInputOrderIndependent(t *testing.T) {
	spans := syntheticCommit()
	base := CriticalPath(FromSpans(spans)[0])
	rev := make([]*obs.Span, len(spans))
	for i, s := range spans {
		rev[len(spans)-1-i] = s
	}
	again := CriticalPath(FromSpans(rev)[0])
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("critical path depends on span emission order:\n%+v\nvs\n%+v", base, again)
	}
}

func TestFoldedStacks(t *testing.T) {
	tr := FromSpans(syntheticCommit())[0]
	got := FoldedStacks(tr)
	want := []string{
		"txn@AP1 6000",
		"txn@AP1;commit@AP1 9000",
		"txn@AP1;exec(q)@AP1 15000",
		"txn@AP1;exec(q)@AP1;invoke(S3)@AP1 10000",
		"txn@AP1;exec(q)@AP1;invoke(S3)@AP1;serve(S3)@AP3 60000",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("folded stacks:\n%v\nwant\n%v", got, want)
	}
	if all := FoldedStacksAll([]*Trace{tr, tr}); all[0] != "txn@AP1 12000" {
		t.Fatalf("merged stacks: %v", all)
	}
}

func TestTopPeers(t *testing.T) {
	tr := FromSpans(syntheticCommit())[0]
	tops := TopPeers([]*Trace{tr})
	if len(tops) != 2 || tops[0].Key != "AP3" || tops[1].Key != "AP1" {
		t.Fatalf("top peers: %+v", tops)
	}
	// AP3: serve self time 60ms, all service class.
	if tops[0].Total != 60*time.Millisecond || tops[0].ByClass[ClassService] != 60*time.Millisecond {
		t.Fatalf("AP3 entry: %+v", tops[0])
	}
	// AP1: 6+9+15+10 = 40ms across txn/commit/exec/invoke.
	if tops[1].Total != 40*time.Millisecond || tops[1].ByClass[ClassNetwork] != 10*time.Millisecond {
		t.Fatalf("AP1 entry: %+v", tops[1])
	}
}

func TestDiffTracesSurfacesFault(t *testing.T) {
	a := FromSpans(syntheticCommit())[0]

	spansB := syntheticCommit()
	for _, s := range spansB {
		s.Txn = "T2"
	}
	fault := mkSpan("T2", "chaos#1", "AP1#3", "chaos", obs.KindFault, "crash", "AP3", 40, 40)
	fault.Outcome = obs.OutcomeError
	fault.Code = "chaos:crash"
	retry := mkSpan("T2", "AP1#9", "AP1#2", "AP1", obs.KindRetry, "S3", "AP3", 80, 88)
	b := FromSpans(append(spansB, fault, retry))[0]

	d := DiffTraces(a, b)
	if len(d.OnlyA) != 0 {
		t.Fatalf("OnlyA: %+v", d.OnlyA)
	}
	var paths []string
	for _, p := range d.OnlyB {
		paths = append(paths, p.Path)
	}
	joined := strings.Join(paths, "\n")
	if !strings.Contains(joined, "fault(crash)@chaos") || !strings.Contains(joined, "retry(S3)@AP1") {
		t.Fatalf("OnlyB misses the divergence: %v", paths)
	}
	if len(d.FaultsA) != 0 || len(d.FaultsB) != 1 || d.FaultsB[0].Service != "crash" {
		t.Fatalf("faults: A=%v B=%v", d.FaultsA, d.FaultsB)
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"only in B:", "faults in A: none", "fault=crash", "shared paths by |delta|:"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff rendering missing %q:\n%s", want, out)
		}
	}
}

func TestWaterfallRendering(t *testing.T) {
	tr := FromSpans(syntheticCommit())[0]
	var buf bytes.Buffer
	if err := WriteWaterfall(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"txn T1", "serve(S3)@AP3", "materialize", "wal-sync"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}
