package analyze

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"axmltx/internal/chaos"
	"axmltx/internal/obs"
)

// Golden traces are real chaos-conformance runs captured as JSONL (see
// regenGoldens). They pin the analysis end to end: the committed byte
// streams never change, so critical-path extraction and attribution on them
// must be identical run-to-run and match the committed .golden rendering.
//
// Regenerate after intentional span-model or scenario changes with:
//
//	AXML_UPDATE_GOLDEN=1 go test ./internal/obs/analyze -run TestGolden
var updateGolden = os.Getenv("AXML_UPDATE_GOLDEN") != ""

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// regenGolden captures one chaos run's span stream into testdata.
func regenGolden(t *testing.T, file, scenario string, seed int64) {
	t.Helper()
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	rep, err := chaos.Run(chaos.Config{Scenario: scenario, Seed: seed, Sink: jsonl})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("golden source run violates invariants: %v", rep.Violations)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(file), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func loadGoldenTraces(t *testing.T, file string) []*Trace {
	t.Helper()
	f, err := os.Open(goldenPath(file))
	if err != nil {
		t.Fatalf("%v (regenerate with AXML_UPDATE_GOLDEN=1)", err)
	}
	defer f.Close()
	traces, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatalf("%s holds no traces", file)
	}
	return traces
}

// primaryTxnTrace picks the trace that includes its origin's txn root.
func primaryTxnTrace(t *testing.T, traces []*Trace) *Trace {
	t.Helper()
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if s.Kind == obs.KindTxn {
				return tr
			}
		}
	}
	t.Fatal("no trace with a txn root span")
	return nil
}

// TestGoldenFig1Critical pins critical-path extraction on the Figure 1
// commit trace: deterministic, every segment attributed to exactly one cost
// class, gap-free, and byte-identical to the committed rendering.
func TestGoldenFig1Critical(t *testing.T) {
	if updateGolden {
		regenGolden(t, "fig1_commit.jsonl", "fig1", 1)
	}
	tr := primaryTxnTrace(t, loadGoldenTraces(t, "fig1_commit.jsonl"))
	segs := CriticalPath(tr)
	if len(segs) == 0 {
		t.Fatal("empty critical path")
	}
	valid := map[CostClass]bool{
		ClassNetwork: true, ClassWALSync: true, ClassMaterialize: true,
		ClassService: true, ClassCompensation: true,
	}
	for i, s := range segs {
		if !valid[s.Class] {
			t.Errorf("segment %d has unknown cost class %q", i, s.Class)
		}
		if !s.End.After(s.Start) {
			t.Errorf("segment %d is empty or reversed: [%s,%s)", i, s.Start, s.End)
		}
		if i > 0 && segs[i].Start.Before(segs[i-1].End) {
			t.Errorf("segments %d/%d overlap", i-1, i)
		}
	}
	// Identical input, identical output — twice from the same parse and once
	// from a fresh parse of the same bytes.
	if again := CriticalPath(tr); !reflect.DeepEqual(segs, again) {
		t.Fatal("critical path not deterministic on the same trace")
	}
	fresh := primaryTxnTrace(t, loadGoldenTraces(t, "fig1_commit.jsonl"))
	if again := CriticalPath(fresh); !reflect.DeepEqual(segs, again) {
		t.Fatal("critical path not deterministic across parses")
	}

	var buf bytes.Buffer
	if err := WriteCritical(&buf, tr, segs); err != nil {
		t.Fatal(err)
	}
	if updateGolden {
		if err := os.WriteFile(goldenPath("fig1_critical.golden"), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath("fig1_critical.golden"))
	if err != nil {
		t.Fatalf("%v (regenerate with AXML_UPDATE_GOLDEN=1)", err)
	}
	if buf.String() != string(want) {
		t.Fatalf("critical rendering drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

// TestGoldenScenarioBDiff diffs two seeds of disconnection scenario (b) and
// checks the injected crash fault spans surface explicitly on both sides.
func TestGoldenScenarioBDiff(t *testing.T) {
	if updateGolden {
		regenGolden(t, "b_seed1.jsonl", "b", 1)
		regenGolden(t, "b_seed2.jsonl", "b", 2)
	}
	a := primaryTxnTrace(t, loadGoldenTraces(t, "b_seed1.jsonl"))
	b := primaryTxnTrace(t, loadGoldenTraces(t, "b_seed2.jsonl"))
	d := DiffTraces(a, b)
	if len(d.FaultsA) == 0 || len(d.FaultsB) == 0 {
		t.Fatalf("injected fault spans missing: A=%d B=%d", len(d.FaultsA), len(d.FaultsB))
	}
	foundCrash := false
	for _, f := range append(append([]*obs.Span(nil), d.FaultsA...), d.FaultsB...) {
		if f.Service == string(chaos.FaultCrash) {
			foundCrash = true
		}
	}
	if !foundCrash {
		t.Fatalf("scenario (b) diff does not surface the scripted crash: A=%+v B=%+v", d.FaultsA, d.FaultsB)
	}
	// The scenario's recovery machinery shows up in the trace: the child
	// redirects its result past the dead parent (§3.3 case b).
	sawRedirect := false
	for _, s := range a.Spans {
		if s.Kind == obs.KindRedirect {
			sawRedirect = true
		}
	}
	if !sawRedirect {
		t.Error("scenario (b) trace has no redirect span")
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, d); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "fault=crash") {
		t.Errorf("diff rendering does not mention the crash:\n%s", out)
	}
}
