package analyze

import (
	"sort"
	"time"

	"axmltx/internal/obs"
)

// TopEntry aggregates self time for one peer or one service, broken down by
// cost class.
type TopEntry struct {
	// Key is the peer ID or service name.
	Key string
	// Spans counts the spans contributing.
	Spans int
	// Total is the summed self time.
	Total time.Duration
	// ByClass splits Total by cost class.
	ByClass map[CostClass]time.Duration
}

// TopPeers aggregates self time per peer across traces, heaviest first
// (ties on key, so equal-weight peers order deterministically).
func TopPeers(traces []*Trace) []TopEntry {
	return top(traces, func(sp *obs.Span) string { return sp.Peer })
}

// TopServices aggregates self time per service across traces, heaviest
// first. Spans without a service (txn, exec, commit…) land under "-".
func TopServices(traces []*Trace) []TopEntry {
	return top(traces, func(sp *obs.Span) string {
		if sp.Service == "" {
			return "-"
		}
		return sp.Service
	})
}

func top(traces []*Trace, key func(*obs.Span) string) []TopEntry {
	merged := make(map[string]*TopEntry)
	for _, t := range traces {
		for _, r := range t.Roots {
			r.Walk(func(n *obs.TreeNode) {
				st := selfTime(n)
				k := key(n.Span)
				e := merged[k]
				if e == nil {
					e = &TopEntry{Key: k, ByClass: make(map[CostClass]time.Duration)}
					merged[k] = e
				}
				e.Spans++
				e.Total += st
				e.ByClass[Classify(n.Span)] += st
			})
		}
	}
	out := make([]TopEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Key < out[j].Key
	})
	return out
}
