package analyze

import (
	"fmt"
	"sort"
	"strings"

	"axmltx/internal/obs"
)

// Frame renders one flamegraph frame: "kind(service)@peer", with the
// service part omitted for spans that have none.
func Frame(sp *obs.Span) string {
	if sp.Service != "" {
		return sp.Kind + "(" + sp.Service + ")@" + sp.Peer
	}
	return sp.Kind + "@" + sp.Peer
}

// FoldedStacks renders a trace in the folded-stack format flamegraph
// tooling consumes: one line per unique stack, "frame;frame;... <weight>",
// with the weight in microseconds of self time (the span's duration not
// covered by its children). Lines are sorted and stacks with zero self time
// are dropped, so the output is deterministic and minimal.
func FoldedStacks(t *Trace) []string {
	acc := make(map[string]int64)
	var walk func(n *obs.TreeNode, prefix string)
	walk = func(n *obs.TreeNode, prefix string) {
		stack := Frame(n.Span)
		if prefix != "" {
			stack = prefix + ";" + stack
		}
		if us := selfTime(n).Microseconds(); us > 0 {
			acc[stack] += us
		}
		for _, c := range n.Children {
			walk(c, stack)
		}
	}
	for _, r := range t.Roots {
		walk(r, "")
	}
	lines := make([]string, 0, len(acc))
	for stack, us := range acc {
		lines = append(lines, fmt.Sprintf("%s %d", stack, us))
	}
	sort.Strings(lines)
	return lines
}

// FoldedStacksAll folds several traces into one stack set (weights merge).
func FoldedStacksAll(traces []*Trace) []string {
	acc := make(map[string]int64)
	for _, t := range traces {
		for _, line := range FoldedStacks(t) {
			i := strings.LastIndexByte(line, ' ')
			var us int64
			fmt.Sscanf(line[i+1:], "%d", &us)
			acc[line[:i]] += us
		}
	}
	lines := make([]string, 0, len(acc))
	for stack, us := range acc {
		lines = append(lines, fmt.Sprintf("%s %d", stack, us))
	}
	sort.Strings(lines)
	return lines
}
