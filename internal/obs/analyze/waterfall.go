package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"axmltx/internal/obs"
)

// waterfallWidth is the bar width of the rightmost column, in cells.
const waterfallWidth = 40

// WriteWaterfall renders a per-transaction waterfall: the span tree in
// depth-first order with offsets from trace start, durations, cost classes
// and proportional bars. Deterministic for identical input.
func WriteWaterfall(w io.Writer, t *Trace) error {
	fmt.Fprintf(w, "txn %s  spans %d  duration %s\n", t.Txn, len(t.Spans), fmtDur(t.Duration()))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	total := t.Duration()
	var walk func(n *obs.TreeNode, depth int)
	walk = func(n *obs.TreeNode, depth int) {
		sp := n.Span
		indent := strings.Repeat("· ", depth)
		status := ""
		if sp.Outcome != obs.OutcomeOK {
			status = " !" + sp.Code
		}
		fmt.Fprintf(tw, "%s%s\t%s\t%s\t%s\t|%s|%s\n",
			indent, Frame(sp), fmtDur(sp.Start.Sub(t.Start)), fmtDur(sp.Duration()),
			Classify(sp), bar(sp.Start.Sub(t.Start), sp.Duration(), total), status)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return tw.Flush()
}

// bar renders a fixed-width timeline cell with the span's extent marked.
func bar(offset, dur, total time.Duration) string {
	if total <= 0 {
		return strings.Repeat(" ", waterfallWidth)
	}
	from := int(float64(offset) / float64(total) * waterfallWidth)
	to := int(float64(offset+dur) / float64(total) * waterfallWidth)
	if from >= waterfallWidth {
		from = waterfallWidth - 1
	}
	if to <= from {
		to = from + 1
	}
	if to > waterfallWidth {
		to = waterfallWidth
	}
	return strings.Repeat(" ", from) + strings.Repeat("▇", to-from) + strings.Repeat(" ", waterfallWidth-to)
}

// WriteCritical renders a critical path: each segment with its offset,
// length, cost class and owning span, followed by the per-class totals and
// their share of the end-to-end latency.
func WriteCritical(w io.Writer, t *Trace, segs []Segment) error {
	fmt.Fprintf(w, "txn %s  duration %s  critical segments %d\n", t.Txn, fmtDur(t.Duration()), len(segs))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "offset\tlength\tclass\tspan")
	var critical time.Duration
	for _, s := range segs {
		critical += s.Duration()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			fmtDur(s.Start.Sub(t.Start)), fmtDur(s.Duration()), s.Class, Frame(s.Span))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	totals := ClassTotals(segs)
	classes := make([]CostClass, 0, len(totals))
	for c := range totals {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		if totals[classes[i]] != totals[classes[j]] {
			return totals[classes[i]] > totals[classes[j]]
		}
		return classes[i] < classes[j]
	})
	fmt.Fprintf(w, "by class (critical %s):\n", fmtDur(critical))
	for _, c := range classes {
		pct := 0.0
		if critical > 0 {
			pct = float64(totals[c]) / float64(critical) * 100
		}
		fmt.Fprintf(w, "  %-13s %10s  %5.1f%%\n", c, fmtDur(totals[c]), pct)
	}
	return nil
}

// WriteTop renders peer or service aggregates with per-class breakdowns.
func WriteTop(w io.Writer, label string, entries []TopEntry) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tspans\tself\tnetwork\twal-sync\tmaterialize\tservice\tcompensation\n", label)
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			e.Key, e.Spans, fmtDur(e.Total),
			fmtDur(e.ByClass[ClassNetwork]), fmtDur(e.ByClass[ClassWALSync]),
			fmtDur(e.ByClass[ClassMaterialize]), fmtDur(e.ByClass[ClassService]),
			fmtDur(e.ByClass[ClassCompensation]))
	}
	return tw.Flush()
}

// WriteDiff renders a trace comparison: end-to-end delta, paths unique to
// either run, the biggest latency shifts on shared paths, and each run's
// injected-fault spans.
func WriteDiff(w io.Writer, d *Diff) error {
	fmt.Fprintf(w, "A %s (%s)  vs  B %s (%s)  delta %s\n",
		d.TxnA, fmtDur(d.DurationA), d.TxnB, fmtDur(d.DurationB), fmtDelta(d.DurationB-d.DurationA))
	if len(d.OnlyA) > 0 {
		fmt.Fprintln(w, "only in A:")
		for _, s := range d.OnlyA {
			fmt.Fprintf(w, "  %s  ×%d  %s\n", s.Path, s.Count, fmtDur(s.Total))
		}
	}
	if len(d.OnlyB) > 0 {
		fmt.Fprintln(w, "only in B:")
		for _, s := range d.OnlyB {
			fmt.Fprintf(w, "  %s  ×%d  %s\n", s.Path, s.Count, fmtDur(s.Total))
		}
	}
	if len(d.Changed) > 0 {
		fmt.Fprintln(w, "shared paths by |delta|:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  path\tA\tB\tdelta")
		for _, c := range d.Changed {
			fmt.Fprintf(tw, "  %s\t%s ×%d\t%s ×%d\t%s\n",
				c.Path, fmtDur(c.TotalA), c.CountA, fmtDur(c.TotalB), c.CountB, fmtDelta(c.Delta()))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	writeFaults(w, "A", d.FaultsA)
	writeFaults(w, "B", d.FaultsB)
	return nil
}

func writeFaults(w io.Writer, side string, faults []*obs.Span) {
	if len(faults) == 0 {
		fmt.Fprintf(w, "faults in %s: none\n", side)
		return
	}
	fmt.Fprintf(w, "faults in %s:\n", side)
	for _, f := range faults {
		fmt.Fprintf(w, "  %s fault=%s peer=%s target=%s code=%s\n",
			f.ID, f.Service, f.Peer, f.Target, f.Code)
	}
}

// fmtDur renders durations with µs precision so output is compact and
// stable (sub-microsecond jitter does not leak into goldens of synthetic
// traces with whole-µs timestamps).
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// fmtDelta renders a signed duration ("+1ms" / "-1ms" / "+0s").
func fmtDelta(d time.Duration) string {
	if d >= 0 {
		return "+" + fmtDur(d)
	}
	return fmtDur(d)
}
