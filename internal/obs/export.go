package obs

// Series is one exported sample from a Registry: the flattened, typed view
// the cluster observability plane (internal/obs/cluster) snapshots, ships
// through gossip, and merges on the receiving side. Counter and gauge
// series carry Value; histogram series carry Bounds/Buckets/Count/SumNs.
type Series struct {
	Name   string `json:"name"`
	Type   string `json:"type"`             // counter | gauge | histogram
	Labels string `json:"labels,omitempty"` // rendered {k="v",...} suffix, keys sorted
	Value  int64  `json:"value,omitempty"`

	// Histogram payload. Bounds are the upper bucket bounds in seconds;
	// Buckets are the per-bucket (non-cumulative) counts with one extra
	// final +Inf bucket, so len(Buckets) == len(Bounds)+1; Count and SumNs
	// are the observation count and total observed nanoseconds.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
	Count   int64     `json:"count,omitempty"`
	SumNs   int64     `json:"sum_ns,omitempty"`
}

// Export snapshots every registered series in registration order. Like
// WritePrometheus, the registry state is copied under the lock and gauge
// functions are invoked outside it — they may re-enter other locks (the
// membership gauges lock the gossip state machine), so calling them while
// holding r.mu would invert lock order against registration.
func (r *Registry) Export() []Series {
	r.mu.Lock()
	order := append([]metricKey(nil), r.order...)
	types := make(map[string]string, len(r.types))
	for k, v := range r.types {
		types[k] = v
	}
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make([]Series, 0, len(order))
	for _, key := range order {
		s := Series{Name: key.name, Type: types[key.name], Labels: key.labels}
		switch {
		case counters[key] != nil:
			s.Value = counters[key].Value()
		case gauges[key] != nil:
			s.Value = gauges[key]()
		case hists[key] != nil:
			h := hists[key]
			s.Bounds = h.Bounds()
			s.Buckets = h.BucketCounts()
			s.Count = h.Count()
			s.SumNs = int64(h.Sum())
		}
		out = append(out, s)
	}
	return out
}
