package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestExportSnapshot checks the flattened series view: registration order,
// types, counter/gauge values, and the histogram payload (non-cumulative
// buckets with the +Inf tail, count, sum).
func TestExportSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", Labels{"peer": "AP1"}).Add(5)
	reg.Gauge("g_now", Labels{"peer": "AP1"}, func() int64 { return 42 })
	h := reg.Histogram("h_seconds", Labels{"peer": "AP1"})
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(time.Hour) // lands in the +Inf bucket

	out := reg.Export()
	if len(out) != 3 {
		t.Fatalf("exported %d series, want 3", len(out))
	}
	if out[0].Name != "c_total" || out[0].Type != "counter" || out[0].Value != 5 {
		t.Errorf("counter series: %+v", out[0])
	}
	if out[1].Name != "g_now" || out[1].Type != "gauge" || out[1].Value != 42 {
		t.Errorf("gauge series: %+v", out[1])
	}
	hs := out[2]
	if hs.Type != "histogram" || hs.Count != 3 {
		t.Fatalf("histogram series: %+v", hs)
	}
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("bucket layout: %d buckets for %d bounds, want bounds+1", len(hs.Buckets), len(hs.Bounds))
	}
	var total int64
	for _, c := range hs.Buckets {
		total += c
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3 (non-cumulative)", total)
	}
	if hs.Buckets[len(hs.Buckets)-1] != 1 {
		t.Errorf("+Inf bucket holds %d, want the 1h observation", hs.Buckets[len(hs.Buckets)-1])
	}
	if hs.SumNs != int64(time.Hour+time.Millisecond) {
		t.Errorf("sum: got %d ns, want %d", hs.SumNs, int64(time.Hour+time.Millisecond))
	}
	if !strings.Contains(hs.Labels, `peer="AP1"`) {
		t.Errorf("labels: %q", hs.Labels)
	}
}

// TestExportDoesNotAliasHistogramState checks that a later observation does
// not mutate a previously exported snapshot's buckets.
func TestExportDoesNotAliasHistogramState(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", nil)
	h.Observe(time.Millisecond)
	before := reg.Export()[0]
	snap := append([]int64(nil), before.Buckets...)
	h.Observe(time.Millisecond)
	if !reflect.DeepEqual(before.Buckets, snap) {
		t.Error("exported buckets changed after a later Observe — BucketCounts must copy")
	}
}

// mustPanic runs fn and fails unless it panics with a message containing
// each want fragment.
func mustPanic(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		msg, _ := r.(string)
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q missing %q", msg, w)
			}
		}
	}()
	fn()
}

// TestDuplicateRegistrationPanics pins the registration semantics: the same
// family re-registered under a different type must panic with a message
// naming the family and both types — not silently clobber the type map,
// which would render one family under two # TYPE lines.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", nil)
	mustPanic(t, func() { reg.Gauge("c_total", nil, func() int64 { return 0 }) },
		"c_total", "counter", "gauge")
	mustPanic(t, func() { reg.Histogram("c_total", nil) },
		"c_total", "counter", "histogram")

	// Same name and type is fine — same-family series and idempotent reuse.
	c := reg.Counter("c_total", nil)
	if c2 := reg.Counter("c_total", nil); c2 != c {
		t.Error("re-registering the same counter must return the same instance")
	}
	reg.Counter("c_total", Labels{"peer": "AP2"}) // new label set, same family

	// Gauge re-registration replaces the function (core.Metrics relies on
	// this), without panicking.
	reg.Gauge("g_now", nil, func() int64 { return 1 })
	reg.Gauge("g_now", nil, func() int64 { return 2 })
	if v := reg.Export(); v[len(v)-1].Value != 2 {
		t.Error("gauge re-registration must replace the function")
	}
}

// TestHistogramDerivedNameCollisionPanics pins both collision directions
// between scalar families and the _bucket/_sum/_count series a histogram
// derives in the exposition format.
func TestHistogramDerivedNameCollisionPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h_seconds", nil)
	mustPanic(t, func() { reg.Counter("h_seconds_count", nil) }, "h_seconds_count", "h_seconds")
	mustPanic(t, func() { reg.Counter("h_seconds_sum", nil) }, "h_seconds_sum")
	mustPanic(t, func() { reg.Gauge("h_seconds_bucket", nil, func() int64 { return 0 }) }, "h_seconds_bucket")

	reg2 := NewRegistry()
	reg2.Counter("h2_seconds_count", nil)
	mustPanic(t, func() { reg2.Histogram("h2_seconds", nil) }, "h2_seconds", "h2_seconds_count")
}

// TestRegisterProcessMetrics checks the runtime gauges export sane values
// and that double registration stays harmless.
func TestRegisterProcessMetrics(t *testing.T) {
	RegisterProcessMetrics(nil, "AP1") // nil registry: no-op

	reg := NewRegistry()
	RegisterProcessMetrics(reg, "AP1")
	RegisterProcessMetrics(reg, "AP1") // idempotent
	vals := map[string]int64{}
	for _, s := range reg.Export() {
		vals[s.Name] = s.Value
		if !strings.Contains(s.Labels, `peer="AP1"`) {
			t.Errorf("%s labels: %q", s.Name, s.Labels)
		}
	}
	if vals["axml_process_goroutines"] <= 0 {
		t.Errorf("goroutines: %d", vals["axml_process_goroutines"])
	}
	if vals["axml_process_heap_bytes"] <= 0 {
		t.Errorf("heap bytes: %d", vals["axml_process_heap_bytes"])
	}
	if vals["axml_process_uptime_seconds"] < 0 {
		t.Errorf("uptime: %d", vals["axml_process_uptime_seconds"])
	}
	if _, ok := vals["axml_process_gc_pause_ns_total"]; !ok {
		t.Error("gc pause gauge missing")
	}
}
