package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerEmitsIntoRing(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer("AP1", ring)
	root := tr.Start("T1", "", KindTxn, "")
	child := tr.Start("T1", root.ID(), KindExec, "query")
	child.SetChain("[AP1]")
	child.SetLSNRange(3, 7)
	child.SetAttr("doc", "D1.xml")
	child.End("", nil)
	root.End("aborted", errors.New("boom"))

	spans := ring.Trace("T1")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	exec, txn := spans[0], spans[1]
	if exec.Kind != KindExec || exec.Parent != txn.ID || exec.Peer != "AP1" {
		t.Fatalf("exec span malformed: %+v", exec)
	}
	if exec.Chain != "[AP1]" || exec.FirstLSN != 3 || exec.LastLSN != 7 || exec.Attrs["doc"] != "D1.xml" {
		t.Fatalf("exec span details: %+v", exec)
	}
	if exec.Outcome != OutcomeOK {
		t.Fatalf("exec outcome = %s", exec.Outcome)
	}
	if txn.Outcome != OutcomeError || txn.Code != "aborted" || txn.Err != "boom" {
		t.Fatalf("txn span outcome: %+v", txn)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("T", "", KindExec, "s")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetChain("x")
	sp.SetTarget("y")
	sp.SetLSNRange(1, 2)
	sp.SetAttr("k", "v")
	sp.End("", nil)
	if sp.ID() != "" {
		t.Fatal("nil span ID must be empty")
	}
	if NewTracer("AP1", nil) != nil {
		t.Fatal("nil sink must disable tracing")
	}
}

func TestRingEviction(t *testing.T) {
	ring := NewRing(3)
	tr := NewTracer("P", ring)
	for i := 0; i < 5; i++ {
		tr.Start("T", "", KindExec, "s").End("", nil)
	}
	if got := len(ring.Spans()); got != 3 {
		t.Fatalf("ring holds %d, want 3", got)
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d, want 5", ring.Total())
	}
	// Oldest two were evicted; remaining IDs are P#3..P#5 in order.
	if ids := ring.Spans(); ids[0].ID != "P#3" || ids[2].ID != "P#5" {
		t.Fatalf("unexpected ring order: %v, %v, %v", ids[0].ID, ids[1].ID, ids[2].ID)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer("AP2", sink)
	sp := tr.Start("T9", "AP1#1", KindServe, "getPoints")
	sp.SetTarget("AP1")
	sp.SetChain("[AP1* → AP2]")
	sp.SetLSNRange(10, 12)
	sp.SetAttr("nodes", "4")
	sp.End("fault:F5", errors.New("fault F5: injected"))
	tr.Start("T9", "", KindTxn, "").End("", nil)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	back, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(back))
	}
	got := back[0]
	if got.Txn != "T9" || got.ID != "AP2#1" || got.Parent != "AP1#1" ||
		got.Peer != "AP2" || got.Kind != KindServe || got.Service != "getPoints" ||
		got.Target != "AP1" || got.Chain != "[AP1* → AP2]" ||
		got.FirstLSN != 10 || got.LastLSN != 12 ||
		got.Outcome != OutcomeError || got.Code != "fault:F5" ||
		got.Err != "fault F5: injected" || got.Attrs["nodes"] != "4" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if back[1].Outcome != OutcomeOK {
		t.Fatalf("second span outcome: %+v", back[1])
	}
}

func TestTreeReassembly(t *testing.T) {
	ring := NewRing(16)
	tr := NewTracer("AP1", ring)
	root := tr.Start("T1", "", KindTxn, "")
	a := tr.Start("T1", root.ID(), KindExec, "q")
	b := tr.Start("T1", a.ID(), KindInvoke, "S3")
	b.End("", nil)
	a.End("", nil)
	// An orphan whose parent span lives on another (unscraped) peer.
	orphan := tr.Start("T1", "AP9#77", KindServe, "S9")
	orphan.End("", nil)
	root.End("", nil)

	roots := Tree(ring.Trace("T1"))
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (txn + orphan)", len(roots))
	}
	var txnRoot *TreeNode
	for _, r := range roots {
		if r.Span.Kind == KindTxn {
			txnRoot = r
		}
	}
	if txnRoot == nil {
		t.Fatal("no txn root")
	}
	if len(txnRoot.Children) != 1 || txnRoot.Children[0].Span.Kind != KindExec {
		t.Fatalf("txn children: %+v", txnRoot.Children)
	}
	if kids := txnRoot.Children[0].Children; len(kids) != 1 || kids[0].Span.Service != "S3" {
		t.Fatalf("exec children: %+v", kids)
	}
	visited := 0
	txnRoot.Walk(func(*TreeNode) { visited++ })
	if visited != 3 {
		t.Fatalf("walk visited %d, want 3", visited)
	}
}

func TestMultiSink(t *testing.T) {
	r1, r2 := NewRing(4), NewRing(4)
	tr := NewTracer("P", Multi{r1, nil, r2})
	tr.Start("T", "", KindExec, "s").End("", nil)
	if len(r1.Spans()) != 1 || len(r2.Spans()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("axml_txns_total", Labels{"peer": "AP1", "outcome": "committed"})
	c.Add(3)
	// Same series returned on re-registration.
	reg.Counter("axml_txns_total", Labels{"outcome": "committed", "peer": "AP1"}).Inc()
	v := int64(41)
	reg.Gauge("axml_invocations_served", Labels{"peer": "AP1"}, func() int64 { return v })
	h := reg.Histogram("axml_wal_sync_seconds", Labels{"peer": "AP1"})
	h.Observe(300 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(20 * time.Second) // lands in +Inf

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE axml_txns_total counter",
		`axml_txns_total{outcome="committed",peer="AP1"} 4`,
		"# TYPE axml_invocations_served gauge",
		`axml_invocations_served{peer="AP1"} 41`,
		"# TYPE axml_wal_sync_seconds histogram",
		`axml_wal_sync_seconds_bucket{peer="AP1",le="0.0005"} 1`,
		`axml_wal_sync_seconds_bucket{peer="AP1",le="0.0025"} 2`,
		`axml_wal_sync_seconds_bucket{peer="AP1",le="+Inf"} 3`,
		`axml_wal_sync_seconds_count{peer="AP1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if h.Count() != 3 || h.Sum() < 20*time.Second {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestNilHistogramObserve(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must be empty")
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("axml_txns_total", Labels{"peer": "AP1"}).Inc()
	ring := NewRing(16)
	tr := NewTracer("AP1", ring)
	root := tr.Start("T1@AP1", "", KindTxn, "")
	tr.Start("T1@AP1", root.ID(), KindExec, "q").End("", nil)
	root.End("", nil)

	srv := httptest.NewServer(NewHandler(reg, ring))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "axml_txns_total") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, body := get("/trace/T1@AP1")
	if code != 200 {
		t.Fatalf("/trace: %d %q", code, body)
	}
	var tre TraceResponse
	if err := json.Unmarshal([]byte(body), &tre); err != nil {
		t.Fatal(err)
	}
	if tre.Txn != "T1@AP1" || tre.Spans != 2 || len(tre.Tree) != 1 || len(tre.Tree[0].Children) != 1 {
		t.Fatalf("trace response: %+v", tre)
	}
	if code, _ := get("/trace/unknown"); code != 404 {
		t.Fatalf("unknown trace: %d", code)
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, "T1@AP1") {
		t.Fatalf("/traces: %d %q", code, body)
	}
}
