package obs

import (
	"bytes"
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzJSONLRoundTrip throws arbitrary span field values at the JSONL codec
// and asserts encode→decode is the identity. Times compare with Equal (the
// wall-clock reading survives JSON, the monotonic part does not).
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add("T1@AP1", "AP1#1", "", "AP1", KindTxn, "", "", int64(0), int64(1000), "", uint64(0), uint64(0), "", "", "")
	f.Add("T9", "AP2#1", "AP1#1~", "AP2", KindServe, "getPoints", "AP1",
		int64(1700000000), int64(1700000001), "[AP1* → AP2]", uint64(10), uint64(12), "fault:F5", "fault F5: injected", "4")
	f.Add("t\x00z", "p#✓", "~", "漢字", KindFault, "s\nvc", "\"", int64(-1), int64(1)<<40, "]", uint64(1)<<63, uint64(7), "c~", "e\te", "π")
	f.Fuzz(func(t *testing.T, txn, id, parent, peer, kind, service, target string,
		startNs, endNs int64, chain string, firstLSN, lastLSN uint64, code, errMsg, attr string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD, so only valid
		// strings can round-trip byte-identically.
		for _, s := range []string{txn, id, parent, peer, kind, service, target, chain, code, errMsg, attr} {
			if !utf8.ValidString(s) {
				t.Skip("invalid UTF-8 input")
			}
		}
		in := &Span{
			Txn: txn, ID: id, Parent: parent, Peer: peer, Kind: kind,
			Service: service, Target: target,
			Start: time.Unix(0, startNs).UTC(), End: time.Unix(0, endNs).UTC(),
			Chain: chain, FirstLSN: firstLSN, LastLSN: lastLSN,
			Outcome: OutcomeError, Code: code, Err: errMsg,
		}
		if attr != "" {
			in.Attrs = map[string]string{"k": attr}
		}
		var buf bytes.Buffer
		sink := NewJSONL(&buf)
		sink.Emit(in)
		if err := sink.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		back, err := DecodeJSONL(&buf)
		if err != nil {
			t.Fatalf("decode own output: %v", err)
		}
		if len(back) != 1 {
			t.Fatalf("decoded %d spans, want 1", len(back))
		}
		got := back[0]
		if got.Txn != in.Txn || got.ID != in.ID || got.Parent != in.Parent ||
			got.Peer != in.Peer || got.Kind != in.Kind || got.Service != in.Service ||
			got.Target != in.Target || got.Chain != in.Chain ||
			got.FirstLSN != in.FirstLSN || got.LastLSN != in.LastLSN ||
			got.Outcome != in.Outcome || got.Code != in.Code || got.Err != in.Err {
			t.Fatalf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
		}
		if !got.Start.Equal(in.Start) || !got.End.Equal(in.End) {
			t.Fatalf("time mismatch: %v/%v vs %v/%v", got.Start, got.End, in.Start, in.End)
		}
		if attr != "" && got.Attrs["k"] != attr {
			t.Fatalf("attr mismatch: %q", got.Attrs["k"])
		}
		// The wire marker must survive any span ID the codec can carry.
		encID, drop := DecodeWireSpan(EncodeWireSpan(got.ID, true))
		if !drop || encID != got.ID {
			t.Fatalf("wire marker round trip on %q", got.ID)
		}
	})
}
