package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// appendTxn appends a begin/insert/commit (or not) triple for txn.
func appendTxn(t *testing.T, l Log, txn string, commit bool) {
	t.Helper()
	for _, r := range []*Record{
		{Txn: txn, Type: TypeBegin, Doc: "d.xml"},
		{Txn: txn, Type: TypeInsert, Doc: "d.xml", NodeID: 5, ParentID: 1, XML: "<a/>"},
	} {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if commit {
		if _, err := l.Append(&Record{Txn: txn, Type: TypeCommit}); err != nil {
			t.Fatalf("Append commit: %v", err)
		}
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSegmentName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestSegmentedRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	want := l.Records()
	if len(want) != 15 {
		t.Fatalf("records = %d, want 15", len(want))
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("Segments = %d, want >= 3 after 15 records at 4/segment", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch: got %d records, want %d", len(got), len(want))
	}
	// LSNs keep advancing after reopen.
	lsn, err := re.Append(&Record{Txn: "t-after", Type: TypeBegin})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 16 {
		t.Fatalf("post-reopen LSN = %d, want 16", lsn)
	}
}

func TestSegmentedRotationByBytes(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	if got := l.Segments(); got < 2 {
		t.Fatalf("Segments = %d, want >= 2 with 256-byte segments", got)
	}
}

func TestSegmentedCheckpointTrimsResolved(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendTxn(t, l, "done-1", true)
	appendTxn(t, l, "live-1", false)
	appendTxn(t, l, "done-2", true)
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("post-checkpoint records = %d, want 2 (live txn only)", len(recs))
	}
	for _, r := range recs {
		if r.Txn != "live-1" {
			t.Fatalf("unexpected surviving txn %q", r.Txn)
		}
	}
	// LSNs are preserved, not renumbered.
	if recs[0].LSN != 4 || recs[1].LSN != 5 {
		t.Fatalf("live LSNs = %d,%d, want 4,5", recs[0].LSN, recs[1].LSN)
	}
	want := l.Records()
	next, err := l.Append(&Record{Txn: "live-1", Type: TypeCommit})
	if err != nil {
		t.Fatal(err)
	}
	if next != 9 {
		t.Fatalf("post-checkpoint LSN = %d, want 9 (checkpoint preserves counter)", next)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	if len(got) != len(want)+1 {
		t.Fatalf("replayed %d records, want %d", len(got), len(want)+1)
	}
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Fatal("checkpointed replay does not match pre-restart view")
	}
}

func TestSegmentedCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	var hookRemoved, hookRemaining int
	l.SetOnCompact(func(removed, remaining int) { hookRemoved, hookRemaining = removed, remaining })
	for i := 0; i < 6; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	before := l.Segments()
	if before < 4 {
		t.Fatalf("Segments = %d, want >= 4", before)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	removed, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != before {
		t.Fatalf("Compact removed %d, want %d (all pre-checkpoint segments)", removed, before)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("Segments after compact = %d, want 1", got)
	}
	if hookRemoved != removed || hookRemaining != 1 {
		t.Fatalf("OnCompact got (%d,%d), want (%d,1)", hookRemoved, hookRemaining, removed)
	}
	if len(segFiles(t, dir)) != 1 {
		t.Fatalf("disk has %v, want 1 segment", segFiles(t, dir))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 0 {
		t.Fatalf("replay after full compact = %d records, want 0 (everything resolved)", got)
	}
	if lsn, _ := re.Append(&Record{Txn: "x", Type: TypeBegin}); lsn != 19 {
		t.Fatalf("LSN after compacted replay = %d, want 19", lsn)
	}
}

func TestSegmentedAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 4, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The background compactor must have kept the directory bounded: without
	// it 120 records at 4/segment is 30 segments.
	if n := len(segFiles(t, dir)); n >= 30 {
		t.Fatalf("auto checkpoint never compacted: %d segments", n)
	}
	re, err := OpenDir(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if lsn, _ := re.Append(&Record{Txn: "x", Type: TypeBegin}); lsn != 121 {
		t.Fatalf("LSN after auto-checkpointed replay = %d, want 121", lsn)
	}
}

func TestSegmentedGroupCommitAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{
		FileOptions:       FileOptions{Sync: SyncGroup},
		MaxSegmentRecords: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				txn := fmt.Sprintf("t-%d-%d", w, i)
				if _, err := l.Append(&Record{Txn: txn, Type: TypeBegin}); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Append: %v", err)
	}
	if got := len(l.Records()); got != writers*each {
		t.Fatalf("records = %d, want %d", got, writers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != writers*each {
		t.Fatalf("replayed %d, want %d", got, writers*each)
	}
}

func TestSegmentedTornTailLastSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	want := l.Records()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	lastPath := filepath.Join(dir, files[len(files)-1])
	f, err := os.OpenFile(lastPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\x07torn-record-fragment"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail replay: got %d records, want %d", len(got), len(want))
	}
}

func TestSegmentedCorruptEarlierSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, SegmentOptions{MaxSegmentRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		appendTxn(t, l, fmt.Sprintf("t-%d", i), true)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("want >= 3 segments, got %v", files)
	}
	// Flip a byte in the middle of the FIRST segment: unlike the last
	// segment's torn tail this is a durability violation, not a crash
	// artifact, and must be reported.
	first := filepath.Join(dir, files[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, SegmentOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenDir = %v, want ErrCorrupt", err)
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 42, 99999999} {
		got, ok := parseSegmentName(segmentName(n))
		if !ok || got != n {
			t.Fatalf("parse(%q) = %d,%v", segmentName(n), got, ok)
		}
	}
	for _, bad := range []string{"x.seg", "0001.seg", "00000001.wal", "00000001.seg.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parse(%q) accepted", bad)
		}
	}
}
