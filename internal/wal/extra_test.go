package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeBegin: "begin", TypeInsert: "insert", TypeDelete: "delete",
		TypeSetText: "settext", TypeMaterialize: "materialize",
		TypeCommit: "commit", TypeAbort: "abort",
		TypeCompensateBegin: "compensate-begin", TypeCompensateEnd: "compensate-end",
		Type(99): "Type(99)",
	} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestFileLogCorruptMiddleFrameTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(&Record{Txn: "t", Type: TypeInsert, XML: "<node/>"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second frame's body: its CRC breaks, so
	// recovery keeps only the first record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := binary.LittleEndian.Uint32(raw[0:4])
	second := 8 + int(firstLen)
	raw[second+8+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 1 {
		t.Fatalf("recovered %d records, want 1 (corruption cuts the tail)", got)
	}
}

func TestFileLogImplausibleLengthTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "len.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Txn: "t", Type: TypeInsert}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31) // absurd length
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 1 {
		t.Fatalf("recovered %d records", got)
	}
}

func TestFileLogConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := l.Append(&Record{Txn: "t", Type: TypeInsert, XML: "<x/>"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 200 {
		t.Fatalf("recovered %d records", got)
	}
}

func TestFileLogOpenBadPath(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal"), false); err == nil {
		t.Fatal("open into missing directory succeeded")
	}
}

func TestFileLogTxnRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, txn := range []string{"a", "b", "a"} {
		if _, err := l.Append(&Record{Txn: txn, Type: TypeInsert}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(l.TxnRecords("a")); got != 2 {
		t.Fatalf("txn a records = %d", got)
	}
}
