package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryAppendAssignsSequentialLSNs(t *testing.T) {
	l := NewMemory()
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append(&Record{Txn: "t1", Type: TypeInsert})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestMemoryTxnRecordsFiltersAndOrders(t *testing.T) {
	l := NewMemory()
	for i := 0; i < 10; i++ {
		txn := "a"
		if i%2 == 1 {
			txn = "b"
		}
		if _, err := l.Append(&Record{Txn: txn, Type: TypeInsert, Pos: i}); err != nil {
			t.Fatal(err)
		}
	}
	recs := l.TxnRecords("a")
	if len(recs) != 5 {
		t.Fatalf("txn a records = %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatal("records out of LSN order")
		}
	}
	if len(l.TxnRecords("missing")) != 0 {
		t.Fatal("missing txn should have no records")
	}
}

func TestMemoryAppendCopiesRecord(t *testing.T) {
	l := NewMemory()
	r := &Record{Txn: "t", Type: TypeDelete, XML: "<a/>"}
	if _, err := l.Append(r); err != nil {
		t.Fatal(err)
	}
	r.XML = "mutated"
	if l.Records()[0].XML != "<a/>" {
		t.Fatal("log shares memory with caller's record")
	}
}

func TestMemoryClosedAppendFails(t *testing.T) {
	l := NewMemory()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemoryConcurrentAppends(t *testing.T) {
	l := NewMemory()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := l.Append(&Record{Txn: "t", Type: TypeInsert}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	recs := l.Records()
	if len(recs) != n*20 {
		t.Fatalf("records = %d", len(recs))
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Record{
		{Txn: "t1", Type: TypeBegin, Doc: "ATPList.xml"},
		{Txn: "t1", Type: TypeDelete, Doc: "ATPList.xml", NodeID: 7, ParentID: 3, Pos: 1, XML: "<citizenship>Swiss</citizenship>"},
		{Txn: "t1", Type: TypeCommit},
	}
	for _, r := range want {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].XML != want[i].XML || got[i].NodeID != want[i].NodeID {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d", i, got[i].LSN)
		}
	}
	// Appends continue the LSN sequence after recovery.
	lsn, err := re.Append(&Record{Txn: "t2", Type: TypeBegin})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-recovery lsn = %d", lsn)
	}
}

func TestFileLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Txn: "t", Type: TypeInsert, XML: "<node/>"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage bytes.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Records()); got != 3 {
		t.Fatalf("recovered %d records, want 3", got)
	}
	// The log must accept appends after truncating the torn tail, and a
	// further recovery must see them.
	if _, err := re.Append(&Record{Txn: "t", Type: TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := len(re2.Records()); got != 4 {
		t.Fatalf("after torn-tail append, recovered %d records, want 4", got)
	}
}

func TestFileLogClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{}); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestPropertyFileLogRecoversExactlyWhatWasAppended(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(xmls []string) bool {
		i++
		path := filepath.Join(dir, "p", "")
		_ = os.MkdirAll(path, 0o755)
		path = filepath.Join(path, "log")
		_ = os.Remove(path)
		l, err := OpenFile(path, false)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, x := range xmls {
			if _, err := l.Append(&Record{Txn: "t", Type: TypeDelete, XML: x}); err != nil {
				t.Log(err)
				return false
			}
		}
		if err := l.Close(); err != nil {
			t.Log(err)
			return false
		}
		re, err := OpenFile(path, false)
		if err != nil {
			t.Log(err)
			return false
		}
		defer re.Close()
		got := re.Records()
		if len(got) != len(xmls) {
			return false
		}
		for i, r := range got {
			if r.XML != xmls[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordString(t *testing.T) {
	r := &Record{LSN: 3, Txn: "TA@AP1#1", Type: TypeDelete, Doc: "d.xml", NodeID: 9}
	s := r.String()
	for _, want := range []string{"TA@AP1#1", "delete", "d.xml"} {
		if !containsStr(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
