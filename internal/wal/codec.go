package wal

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"axmltx/internal/codec"
)

// Record bodies inside CRC frames are versioned: the first byte of the blob
// selects the codec. Version 2 is the hand-rolled binary encoding (varint
// framing over internal/codec); version 3 is a checkpoint body (segmented
// logs only). Anything else is treated as a legacy gob blob — gob streams of
// Record always open with a multi-byte type-descriptor message whose length
// prefix is far above 3, so the dispatch byte cannot collide — which keeps
// WAL files written before the binary codec replayable.
const (
	blobBinaryV2   = 0x02
	blobCheckpoint = 0x03
)

// appendRecordBinary appends the version-2 binary encoding of r to w.
func appendRecordBinary(w *codec.Writer, r *Record) {
	w.Byte(blobBinaryV2)
	w.Uvarint(r.LSN)
	w.String(r.Txn)
	w.Byte(byte(r.Type))
	w.String(r.Doc)
	w.Uvarint(r.NodeID)
	w.Uvarint(r.ParentID)
	w.Varint(int64(r.Pos))
	w.String(r.XML)
	w.String(r.OldText)
	w.String(r.NewText)
	w.String(r.Service)
}

// readRecordBinary decodes the fields following the version byte. Strings
// alias blob (frame bodies are freshly allocated per frame and never
// recycled, so the aliasing is safe and keeps replay allocation-free beyond
// the frame read itself).
func readRecordBinary(rd *codec.Reader) *Record {
	r := &Record{}
	r.LSN = rd.Uvarint()
	r.Txn = rd.String()
	r.Type = Type(rd.Byte())
	r.Doc = rd.String()
	r.NodeID = rd.Uvarint()
	r.ParentID = rd.Uvarint()
	r.Pos = int(rd.Varint())
	r.XML = rd.String()
	r.OldText = rd.String()
	r.NewText = rd.String()
	r.Service = rd.String()
	return r
}

// DecodeRecord decodes one frame body: binary v2 blobs by version byte,
// anything else as a legacy gob blob. The error wraps ErrCorrupt.
func DecodeRecord(blob []byte) (*Record, error) {
	if len(blob) > 0 && blob[0] == blobBinaryV2 {
		rd := codec.NewReader(blob[1:])
		r := readRecordBinary(rd)
		if err := rd.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		return r, nil
	}
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: decode frame: %w", ErrCorrupt, err)
	}
	return &r, nil
}

// EncodeRecord renders the binary v2 body of r (no CRC frame), exported for
// the codec benchmarks and fuzz target.
func EncodeRecord(r *Record) []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	appendRecordBinary(w, r)
	return w.Finish()
}

// encodeRecordGob renders the legacy gob body, kept for the cross-version
// compatibility test and the codec benchmarks.
func encodeRecordGob(r *Record) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic(fmt.Sprintf("wal: gob encode: %v", err))
	}
	return buf.Bytes()
}

// checkpoint is the live-transaction snapshot written at the head of a
// fresh segment: the highest LSN assigned so far and the full record lists
// of every transaction that is still unresolved, in LSN order. Replay that
// starts at a checkpoint is therefore O(live transactions), not O(history).
type checkpoint struct {
	LastLSN uint64
	Live    []*Record
}

// appendCheckpoint appends the version-3 checkpoint body.
func appendCheckpoint(w *codec.Writer, ck *checkpoint) {
	w.Byte(blobCheckpoint)
	w.Uvarint(ck.LastLSN)
	w.Uvarint(uint64(len(ck.Live)))
	for _, r := range ck.Live {
		appendRecordBinary(w, r)
	}
}

// decodeCheckpoint decodes a version-3 blob (including the version byte).
func decodeCheckpoint(blob []byte) (*checkpoint, error) {
	if len(blob) == 0 || blob[0] != blobCheckpoint {
		return nil, fmt.Errorf("%w: not a checkpoint frame", ErrCorrupt)
	}
	rd := codec.NewReader(blob[1:])
	ck := &checkpoint{LastLSN: rd.Uvarint()}
	n := rd.Count(12) // a binary record body is ≥ 12 bytes
	for i := 0; i < n; i++ {
		if v := rd.Byte(); v != blobBinaryV2 {
			return nil, fmt.Errorf("%w: checkpoint record %d has version %d", ErrCorrupt, i, v)
		}
		ck.Live = append(ck.Live, readRecordBinary(rd))
	}
	if err := rd.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return ck, nil
}
