package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"axmltx/internal/codec"
)

func sampleRecord() *Record {
	return &Record{
		LSN:      42,
		Txn:      "t-1",
		Type:     TypeDelete,
		Doc:      "orders.xml",
		NodeID:   7,
		ParentID: 3,
		Pos:      -1,
		XML:      "<item id=\"7\"><qty>2</qty></item>",
		OldText:  "old",
		NewText:  "new",
		Service:  "warehouse.lookup",
	}
}

func TestRecordBinaryRoundTrip(t *testing.T) {
	want := sampleRecord()
	got, err := DecodeRecord(EncodeRecord(want))
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestRecordGobCompat pins the cross-version contract: blobs produced by the
// legacy gob encoder still decode, so WAL files written before the binary
// codec replay unchanged.
func TestRecordGobCompat(t *testing.T) {
	want := sampleRecord()
	got, err := DecodeRecord(encodeRecordGob(want))
	if err != nil {
		t.Fatalf("DecodeRecord(gob): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gob decode mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestFileLogReadsLegacyGobFile writes a WAL file with legacy gob frames
// byte-for-byte as the pre-binary FileLog did, then opens it with the
// current implementation and appends more records.
func TestFileLogReadsLegacyGobFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 3; lsn++ {
		r := sampleRecord()
		r.LSN = lsn
		blob := encodeRecordGob(r)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(blob)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(blob))
		if _, err := f.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("OpenFile legacy: %v", err)
	}
	defer l.Close()
	if got := len(l.Records()); got != 3 {
		t.Fatalf("replayed %d records, want 3", got)
	}
	lsn, err := l.Append(&Record{Txn: "t-2", Type: TypeBegin})
	if err != nil {
		t.Fatalf("Append after legacy replay: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("Append assigned LSN %d, want 4", lsn)
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	blob := EncodeRecord(sampleRecord())
	for cut := 1; cut < len(blob); cut++ {
		if _, err := DecodeRecord(blob[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	a, b := sampleRecord(), sampleRecord()
	b.LSN, b.Txn = 43, "t-2"
	want := &checkpoint{LastLSN: 99, Live: []*Record{a, b}}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	appendCheckpoint(w, want)
	got, err := decodeCheckpoint(w.Bytes())
	if err != nil {
		t.Fatalf("decodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestTypedErrors(t *testing.T) {
	if _, err := DecodeRecord([]byte{blobBinaryV2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty binary blob: %v, want ErrCorrupt", err)
	}
	if _, err := decodeCheckpoint(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil checkpoint: %v, want ErrCorrupt", err)
	}
}

// FuzzRecordDecode asserts the WAL blob decoder never panics or over-reads,
// whatever bytes a torn or bit-flipped frame hands it. Wired into the
// nightly fuzz job.
func FuzzRecordDecode(f *testing.F) {
	f.Add(EncodeRecord(sampleRecord()))
	f.Add(encodeRecordGob(sampleRecord()))
	w := codec.GetWriter()
	appendCheckpoint(w, &checkpoint{LastLSN: 7, Live: []*Record{sampleRecord()}})
	f.Add(w.Finish())
	codec.PutWriter(w)
	f.Add([]byte{blobBinaryV2})
	f.Add([]byte{blobCheckpoint, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, blob []byte) {
		if r, err := DecodeRecord(blob); err == nil && blob[0] == blobBinaryV2 {
			// A successful binary decode must re-encode to the same bytes.
			if got := EncodeRecord(r); string(got) != string(blob) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, blob)
			}
		}
		decodeCheckpoint(blob)
	})
}
