package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurable verifies that under SyncGroup every Append that
// returned is on disk: concurrent writers append, the log is closed, and a
// reopen must see every record with intact framing.
func TestGroupCommitDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := OpenFileWith(path, FileOptions{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := &Record{Txn: fmt.Sprintf("T%d", w), Type: TypeInsert, Doc: "D", NodeID: uint64(i)}
				if _, err := l.Append(r); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	if len(got) != writers*each {
		t.Fatalf("reopen saw %d records, want %d", len(got), writers*each)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

// TestGroupCommitWindow exercises the batching window: appends still return
// durable, just after at most one window's delay.
func TestGroupCommitWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "window.wal")
	l, err := OpenFileWith(path, FileOptions{Sync: SyncGroup, GroupCommitWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Txn: "T", Type: TypeInsert}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := len(re.Records()); n != 5 {
		t.Fatalf("got %d records, want 5", n)
	}
}

// TestSyncBarrier verifies the explicit Sync barrier works in every mode
// and that appending after Close fails cleanly.
func TestSyncBarrier(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncEach, SyncGroup} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "barrier.wal")
			l, err := OpenFileWith(path, FileOptions{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil { // empty log: no-op barrier
				t.Fatalf("empty sync: %v", err)
			}
			if _, err := l.Append(&Record{Txn: "T", Type: TypeCommit}); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append(&Record{Txn: "T", Type: TypeInsert}); err != ErrClosed {
				t.Fatalf("append after close: %v, want ErrClosed", err)
			}
			if err := l.Sync(); err != ErrClosed {
				t.Fatalf("sync after close: %v, want ErrClosed", err)
			}
		})
	}
}

// TestGroupCommitCloseUnderLoad closes the log while appenders are active;
// nothing may hang, and records that reported success must survive.
func TestGroupCommitCloseUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closing.wal")
	l, err := OpenFileWith(path, FileOptions{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	var ok sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				lsn, err := l.Append(&Record{Txn: fmt.Sprintf("T%d", w), Type: TypeInsert})
				if err != nil {
					return
				}
				ok.Store(lsn, true)
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seen := make(map[uint64]bool)
	for _, r := range re.Records() {
		seen[r.LSN] = true
	}
	ok.Range(func(k, _ any) bool {
		if !seen[k.(uint64)] {
			t.Errorf("acknowledged LSN %d missing after reopen", k.(uint64))
		}
		return true
	})
}
