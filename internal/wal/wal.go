// Package wal implements the per-peer operation log that makes dynamic
// compensation possible.
//
// The paper's key observation (§3.1) is that the data needed to compensate
// an AXML operation cannot be predicted in advance: the nodes a delete
// removes, the ID an insert produces, the old value a replace overwrites and
// the set of service calls a lazy query materializes are all run-time facts.
// The log records exactly those facts — the results of <location> queries of
// delete operations, inserted node IDs, replaced before-images — so the
// compensating operation can be constructed when (and only if) it is needed.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Type discriminates log records.
type Type uint8

const (
	// TypeBegin marks the start of a transaction (or of a local
	// sub-transaction context on a participant peer).
	TypeBegin Type = iota + 1
	// TypeInsert records an insertion: the new subtree's root NodeID, its
	// parent and position, and the inserted XML.
	TypeInsert
	// TypeDelete records a deletion with full before-image: the deleted
	// subtree's XML, its former parent and position.
	TypeDelete
	// TypeSetText records an in-place text change with old and new value.
	TypeSetText
	// TypeMaterialize brackets the structural effects of one service-call
	// materialization (the effects themselves are Insert/Delete records);
	// it names the service so query compensation is explainable.
	TypeMaterialize
	// TypeCommit marks local commit of a transaction context.
	TypeCommit
	// TypeAbort marks local abort of a transaction context.
	TypeAbort
	// TypeCompensateBegin marks the start of compensation for a
	// transaction, so crash recovery does not re-compensate compensation.
	TypeCompensateBegin
	// TypeCompensateEnd marks completed compensation.
	TypeCompensateEnd
)

func (t Type) String() string {
	switch t {
	case TypeBegin:
		return "begin"
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	case TypeSetText:
		return "settext"
	case TypeMaterialize:
		return "materialize"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCompensateBegin:
		return "compensate-begin"
	case TypeCompensateEnd:
		return "compensate-end"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log entry. Field use depends on Type; unused fields are
// zero.
type Record struct {
	LSN  uint64
	Txn  string // transaction ID
	Type Type
	Doc  string // document name the operation touched

	NodeID   uint64 // subject node (inserted root, deleted root, text node)
	ParentID uint64 // parent at time of operation (insert/delete)
	Pos      int    // child position at time of operation (insert/delete)

	XML     string // inserted subtree (insert) or before-image (delete)
	OldText string // previous value (settext)
	NewText string // new value (settext)

	Service string // materialize: service name
}

// String renders a compact human-readable form for diagnostics.
func (r *Record) String() string {
	return fmt.Sprintf("[%d %s %s doc=%s node=%d]", r.LSN, r.Txn, r.Type, r.Doc, r.NodeID)
}

// Log is an append-only record store. Implementations are safe for
// concurrent use.
type Log interface {
	// Append assigns the next LSN to r, stores it and returns the LSN.
	Append(r *Record) (uint64, error)
	// Records returns a snapshot of all records in LSN order.
	Records() []*Record
	// TxnRecords returns the records of one transaction in LSN order.
	TxnRecords(txn string) []*Record
	// Close releases resources; Append after Close errors.
	Close() error
}

// ErrClosed is returned by Append on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// MemoryLog is an in-memory Log, the default for simulation and tests.
type MemoryLog struct {
	mu      sync.Mutex
	records []*Record
	byTxn   map[string][]*Record
	next    uint64
	closed  bool
}

// NewMemory returns an empty in-memory log.
func NewMemory() *MemoryLog {
	return &MemoryLog{byTxn: make(map[string][]*Record)}
}

// Append implements Log.
func (l *MemoryLog) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.next++
	r.LSN = l.next
	cp := *r
	l.records = append(l.records, &cp)
	l.byTxn[r.Txn] = append(l.byTxn[r.Txn], &cp)
	return r.LSN, nil
}

// Records implements Log.
func (l *MemoryLog) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.records...)
}

// TxnRecords implements Log.
func (l *MemoryLog) TxnRecords(txn string) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.byTxn[txn]...)
}

// Close implements Log.
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Len returns the number of records.
func (l *MemoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// FileLog is a durable Log backed by a file of framed records. Each record
// is an independently gob-encoded blob framed as
//
//	uint32 length | uint32 crc32(blob) | blob
//
// so the file survives process restarts (no cross-session encoder state)
// and Open detects a torn or corrupted tail by length/CRC mismatch and
// truncates it — the standard write-ahead-log recovery contract.
type FileLog struct {
	mu    sync.Mutex
	f     *os.File
	sync  bool
	next  uint64
	mem   *MemoryLog // index over already-read + appended records
	close bool
}

// OpenFile opens (creating if needed) a file-backed log. With sync true,
// every append is fsynced before returning — full durability at the cost of
// latency, matching the D in ACID; with sync false the OS flushes lazily.
func OpenFile(path string, sync bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{f: f, sync: sync, mem: NewMemory()}
	br := bufio.NewReader(f)
	var validEnd int64
	for {
		r, n, err := readFrame(br)
		if err != nil {
			if err != io.EOF {
				// Torn or corrupt tail: keep the clean prefix.
				if terr := f.Truncate(validEnd); terr != nil {
					f.Close()
					return nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
			}
			break
		}
		if _, err := l.mem.Append(r); err != nil {
			f.Close()
			return nil, err
		}
		l.next = r.LSN
		validEnd += int64(n)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return l, nil
}

// readFrame reads one framed record and returns it with the number of bytes
// consumed. Any framing violation (short read, CRC mismatch, undecodable
// blob) is reported as a non-EOF error so the caller truncates.
func readFrame(br *bufio.Reader) (*Record, int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wal: short frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<30 {
		return nil, 0, fmt.Errorf("wal: implausible frame length %d", length)
	}
	blob := make([]byte, length)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, 0, fmt.Errorf("wal: short frame body: %w", err)
	}
	if crc32.ChecksumIEEE(blob) != sum {
		return nil, 0, errors.New("wal: frame checksum mismatch")
	}
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&r); err != nil {
		return nil, 0, fmt.Errorf("wal: decode frame: %w", err)
	}
	return &r, 8 + int(length), nil
}

// Append implements Log.
func (l *FileLog) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.close {
		return 0, ErrClosed
	}
	l.next++
	r.LSN = l.next
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(r); err != nil {
		return 0, fmt.Errorf("wal: encode: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(blob.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(blob.Bytes()))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: write header: %w", err)
	}
	if _, err := l.f.Write(blob.Bytes()); err != nil {
		return 0, fmt.Errorf("wal: write body: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	// Mirror into the in-memory index; MemoryLog assigns the same LSN
	// because it advances in lockstep from 1.
	if _, err := l.mem.Append(r); err != nil {
		return 0, err
	}
	return r.LSN, nil
}

// Records implements Log.
func (l *FileLog) Records() []*Record { return l.mem.Records() }

// TxnRecords implements Log.
func (l *FileLog) TxnRecords(txn string) []*Record { return l.mem.TxnRecords(txn) }

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.close {
		return nil
	}
	l.close = true
	return l.f.Close()
}
