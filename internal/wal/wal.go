// Package wal implements the per-peer operation log that makes dynamic
// compensation possible.
//
// The paper's key observation (§3.1) is that the data needed to compensate
// an AXML operation cannot be predicted in advance: the nodes a delete
// removes, the ID an insert produces, the old value a replace overwrites and
// the set of service calls a lazy query materializes are all run-time facts.
// The log records exactly those facts — the results of <location> queries of
// delete operations, inserted node IDs, replaced before-images — so the
// compensating operation can be constructed when (and only if) it is needed.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"axmltx/internal/codec"
)

// Type discriminates log records.
type Type uint8

const (
	// TypeBegin marks the start of a transaction (or of a local
	// sub-transaction context on a participant peer).
	TypeBegin Type = iota + 1
	// TypeInsert records an insertion: the new subtree's root NodeID, its
	// parent and position, and the inserted XML.
	TypeInsert
	// TypeDelete records a deletion with full before-image: the deleted
	// subtree's XML, its former parent and position.
	TypeDelete
	// TypeSetText records an in-place text change with old and new value.
	TypeSetText
	// TypeMaterialize brackets the structural effects of one service-call
	// materialization (the effects themselves are Insert/Delete records);
	// it names the service so query compensation is explainable.
	TypeMaterialize
	// TypeCommit marks local commit of a transaction context.
	TypeCommit
	// TypeAbort marks local abort of a transaction context.
	TypeAbort
	// TypeCompensateBegin marks the start of compensation for a
	// transaction, so crash recovery does not re-compensate compensation.
	TypeCompensateBegin
	// TypeCompensateEnd marks completed compensation.
	TypeCompensateEnd
)

func (t Type) String() string {
	switch t {
	case TypeBegin:
		return "begin"
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	case TypeSetText:
		return "settext"
	case TypeMaterialize:
		return "materialize"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCompensateBegin:
		return "compensate-begin"
	case TypeCompensateEnd:
		return "compensate-end"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log entry. Field use depends on Type; unused fields are
// zero.
type Record struct {
	LSN  uint64
	Txn  string // transaction ID
	Type Type
	Doc  string // document name the operation touched

	NodeID   uint64 // subject node (inserted root, deleted root, text node)
	ParentID uint64 // parent at time of operation (insert/delete)
	Pos      int    // child position at time of operation (insert/delete)

	XML     string // inserted subtree (insert) or before-image (delete)
	OldText string // previous value (settext)
	NewText string // new value (settext)

	Service string // materialize: service name
}

// String renders a compact human-readable form for diagnostics.
func (r *Record) String() string {
	return fmt.Sprintf("[%d %s %s doc=%s node=%d]", r.LSN, r.Txn, r.Type, r.Doc, r.NodeID)
}

// Log is an append-only record store. Implementations are safe for
// concurrent use.
type Log interface {
	// Append assigns the next LSN to r, stores it and returns the LSN.
	Append(r *Record) (uint64, error)
	// Records returns a snapshot of all records in LSN order.
	Records() []*Record
	// TxnRecords returns the records of one transaction in LSN order.
	TxnRecords(txn string) []*Record
	// Sync blocks until every record appended so far is durable. It is the
	// explicit durability barrier the engine places at TypeCommit/TypeAbort
	// records; in-memory logs treat it as a no-op.
	Sync() error
	// Close releases resources; Append after Close errors.
	Close() error
}

// Typed error classes. Callers branch with errors.Is rather than matching
// raw *os.PathError strings.
var (
	// ErrClosed is returned by Append on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrSync classes every fsync failure (Append under SyncEach, the group
	// commit leader, the explicit Sync barrier, rotation). Durability past a
	// failed fsync is unknown, so these are sticky where it matters.
	ErrSync = errors.New("wal: sync failed")
	// ErrCorrupt classes every framing or decode failure: torn tails, CRC
	// mismatches, malformed record bodies.
	ErrCorrupt = errors.New("wal: corrupt frame")
	// ErrClose classes failures releasing the underlying file.
	ErrClose = errors.New("wal: close failed")
)

// MemoryLog is an in-memory Log, the default for simulation and tests.
type MemoryLog struct {
	mu      sync.Mutex
	records []*Record
	byTxn   map[string][]*Record
	next    uint64
	closed  bool
}

// NewMemory returns an empty in-memory log.
func NewMemory() *MemoryLog {
	return &MemoryLog{byTxn: make(map[string][]*Record)}
}

// Append implements Log.
func (l *MemoryLog) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.next++
	r.LSN = l.next
	cp := *r
	l.records = append(l.records, &cp)
	l.byTxn[r.Txn] = append(l.byTxn[r.Txn], &cp)
	return r.LSN, nil
}

// Records implements Log.
func (l *MemoryLog) Records() []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.records...)
}

// TxnRecords implements Log.
func (l *MemoryLog) TxnRecords(txn string) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Record(nil), l.byTxn[txn]...)
}

// Sync implements Log; an in-memory log has no durability to wait for.
func (l *MemoryLog) Sync() error { return nil }

// Close implements Log.
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// appendExisting stores a record that already carries its LSN (replay from
// a file or a checkpoint, where LSNs may be gapped); the next Append
// continues after the highest LSN seen.
func (l *MemoryLog) appendExisting(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	cp := *r
	l.records = append(l.records, &cp)
	l.byTxn[r.Txn] = append(l.byTxn[r.Txn], &cp)
	if r.LSN > l.next {
		l.next = r.LSN
	}
	return nil
}

// Len returns the number of records.
func (l *MemoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// SyncMode selects a FileLog's durability strategy.
type SyncMode uint8

const (
	// SyncNone leaves flushing to the OS; the explicit Sync() barrier at
	// commit records is the only forced flush (relaxed durability:
	// mid-transaction records may be lost in a crash, commits are not).
	SyncNone SyncMode = iota
	// SyncEach fsyncs every append before returning — full per-record
	// durability at the cost of one fsync per record.
	SyncEach
	// SyncGroup batches concurrent appenders behind one fsync (group
	// commit): every Append still returns only after its record is durable,
	// but appenders arriving while an fsync is in flight share the next one,
	// so N concurrent writers amortize the fsync cost.
	SyncGroup
)

// FileOptions configure OpenFileWith.
type FileOptions struct {
	// Sync selects the durability strategy; the zero value is SyncNone.
	Sync SyncMode
	// GroupCommitWindow (SyncGroup only) is how long the flusher waits
	// after waking, to accumulate a batch before fsyncing. Zero syncs
	// immediately — batching then arises naturally from appenders queueing
	// behind an in-flight fsync.
	GroupCommitWindow time.Duration
}

// FileLog is a durable Log backed by a file of framed records. Each record
// is an independently encoded blob framed as
//
//	uint32 length | uint32 crc32(blob) | blob
//
// so the file survives process restarts (no cross-session encoder state)
// and Open detects a torn or corrupted tail by length/CRC mismatch and
// truncates it — the standard write-ahead-log recovery contract. New frames
// carry binary v2 bodies; files written by earlier versions (gob bodies)
// replay transparently (see DecodeRecord).
type FileLog struct {
	mu    sync.Mutex
	f     *os.File
	opts  FileOptions
	next  uint64
	mem   *MemoryLog // index over already-read + appended records
	close bool

	// Group-commit state (SyncGroup), leader/follower: the first appender to
	// find no fsync in flight becomes the leader and syncs on behalf of
	// everyone whose frame is already in the file; appenders arriving while
	// the leader syncs wait on gcond and are either covered by that fsync or
	// elect the next leader. No dedicated goroutine, no handoff latency.
	gmu     sync.Mutex
	gcond   *sync.Cond
	written uint64 // highest LSN whose frame is in the file
	synced  uint64 // highest LSN known durable
	gerr    error  // sticky fsync failure; durability state unknown past it
	syncing bool   // a leader's fsync is in flight
	gclosed bool   // Close started; no further fsyncs
}

// OpenFile opens (creating if needed) a file-backed log. With sync true,
// every append is fsynced before returning — full durability at the cost of
// latency, matching the D in ACID; with sync false the OS flushes lazily.
func OpenFile(path string, sync bool) (*FileLog, error) {
	mode := SyncNone
	if sync {
		mode = SyncEach
	}
	return OpenFileWith(path, FileOptions{Sync: mode})
}

// OpenFileWith opens (creating if needed) a file-backed log with explicit
// durability options.
func OpenFileWith(path string, opts FileOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{f: f, opts: opts, mem: NewMemory()}
	br := bufio.NewReader(f)
	var validEnd int64
	for {
		blob, n, err := readFrame(br)
		var r *Record
		if err == nil {
			r, err = DecodeRecord(blob)
		}
		if err != nil {
			if err != io.EOF {
				// Torn or corrupt tail: keep the clean prefix.
				if terr := f.Truncate(validEnd); terr != nil {
					f.Close()
					return nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
			}
			break
		}
		if err := l.mem.appendExisting(r); err != nil {
			f.Close()
			return nil, err
		}
		l.next = r.LSN
		validEnd += int64(n)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	if opts.Sync == SyncGroup {
		l.written, l.synced = l.next, l.next
		l.gcond = sync.NewCond(&l.gmu)
	}
	return l, nil
}

// readFrame reads one framed blob and returns it with the number of bytes
// consumed. Any framing violation (short read, CRC mismatch) is reported as
// a non-EOF error wrapping ErrCorrupt so the caller truncates; decoding the
// blob is the caller's business (record vs checkpoint body).
func readFrame(br *bufio.Reader) ([]byte, int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: short frame header: %w", ErrCorrupt, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<30 {
		return nil, 0, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, length)
	}
	blob := make([]byte, length)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, 0, fmt.Errorf("%w: short frame body: %w", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(blob) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return blob, 8 + int(length), nil
}

// frameHeaderZero seeds the 8-byte header placeholder without a per-append
// allocation; the real header is patched in after the body is encoded.
var frameHeaderZero [8]byte

// appendFrame encodes body into w as a complete CRC frame.
func appendFrame(w *codec.Writer, body func(*codec.Writer)) []byte {
	w.Raw(frameHeaderZero[:])
	body(w)
	frame := w.Bytes()
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(frame)-8))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	return frame
}

// Append implements Log.
func (l *FileLog) Append(r *Record) (uint64, error) {
	w := codec.GetWriter()
	defer codec.PutWriter(w)

	l.mu.Lock()
	if l.close {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	l.next++
	r.LSN = l.next
	frame := appendFrame(w, func(w *codec.Writer) { appendRecordBinary(w, r) })
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: write frame: %w", err)
	}
	if l.opts.Sync == SyncEach {
		if err := l.f.Sync(); err != nil {
			l.mu.Unlock()
			return 0, fmt.Errorf("%w: %w", ErrSync, err)
		}
	}
	// Mirror into the in-memory index with the LSN just assigned.
	if err := l.mem.appendExisting(r); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	lsn := r.LSN
	l.mu.Unlock()

	if l.opts.Sync == SyncGroup {
		// The frame is written in LSN order under l.mu, so it — and every
		// earlier frame — is in the file; wait for a covering fsync.
		if err := l.waitDurable(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// waitDurable blocks until an fsync covering lsn completed (group commit).
// The first caller to find no fsync in flight becomes the leader: it syncs
// once for every frame already in the file, then wakes the rest; followers
// re-check and either return (covered) or elect the next leader.
func (l *FileLog) waitDurable(lsn uint64) error {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	if lsn > l.written {
		l.written = lsn
	}
	for {
		if l.gerr != nil {
			// A failed fsync leaves durability unknown; fail everything from
			// here on rather than pretend.
			return l.gerr
		}
		if l.synced >= lsn {
			return nil
		}
		if l.gclosed {
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			if w := l.opts.GroupCommitWindow; w > 0 {
				// Accumulate a batch before snapshotting the target.
				l.gmu.Unlock()
				time.Sleep(w)
				l.gmu.Lock()
			}
			target := l.written
			l.gmu.Unlock()
			err := l.f.Sync()
			l.gmu.Lock()
			l.syncing = false
			if err != nil {
				l.gerr = fmt.Errorf("%w: %w", ErrSync, err)
			} else if target > l.synced {
				l.synced = target
			}
			l.gcond.Broadcast()
			continue
		}
		l.gcond.Wait()
	}
}

// Sync implements Log: an explicit durability barrier over everything
// appended so far. Under SyncEach every record is already durable; under
// SyncGroup it shares the group fsync; under SyncNone it is the one forced
// flush — the engine calls it at TypeCommit/TypeAbort records so commit
// durability is identical across modes.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	if l.close {
		l.mu.Unlock()
		return ErrClosed
	}
	last := l.next
	if l.opts.Sync != SyncGroup {
		err := l.f.Sync()
		l.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %w", ErrSync, err)
		}
		return nil
	}
	l.mu.Unlock()
	if last == 0 {
		return nil
	}
	return l.waitDurable(last)
}

// Records implements Log.
func (l *FileLog) Records() []*Record { return l.mem.Records() }

// TxnRecords implements Log.
func (l *FileLog) TxnRecords(txn string) []*Record { return l.mem.TxnRecords(txn) }

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	if l.close {
		l.mu.Unlock()
		return nil
	}
	l.close = true
	l.mu.Unlock()
	if l.opts.Sync == SyncGroup {
		// Stop group commit: fail waiters not covered by the in-flight
		// fsync, and wait that fsync out before closing the file under it.
		l.gmu.Lock()
		l.gclosed = true
		l.gcond.Broadcast()
		for l.syncing {
			l.gcond.Wait()
		}
		l.gmu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrClose, err)
	}
	return nil
}
