package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"axmltx/internal/codec"
)

// SegmentOptions configure OpenDir.
type SegmentOptions struct {
	FileOptions
	// MaxSegmentBytes rotates the active segment once it exceeds this many
	// bytes; 0 means the 4 MiB default.
	MaxSegmentBytes int64
	// MaxSegmentRecords rotates the active segment once it holds this many
	// records; 0 disables record-count rotation.
	MaxSegmentRecords int
	// CheckpointEvery runs an automatic checkpoint + compaction in the
	// background after this many appends since the last checkpoint; 0 means
	// checkpoints are taken only by explicit Checkpoint calls.
	CheckpointEvery int
}

// DefaultMaxSegmentBytes is the rotation threshold when none is configured.
const DefaultMaxSegmentBytes = 4 << 20

// segmentName renders the file name of segment n. Segments are named by a
// monotonic segment number — not by first LSN, which could collide when a
// checkpoint rotates without intervening appends.
func segmentName(n uint64) string { return fmt.Sprintf("%08d.seg", n) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "%08d.seg", &n); err != nil || segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// SegmentedLog is a durable Log over a directory of segment files, each a
// sequence of CRC frames exactly as FileLog writes them. It adds:
//
//   - rotation: the active segment is closed and a new one started when it
//     exceeds MaxSegmentBytes or MaxSegmentRecords;
//   - checkpoints: a rotation that writes, as the first frame of the fresh
//     segment, a snapshot of every live (unresolved) transaction's records
//     plus the highest LSN, so replay restarts from the snapshot instead of
//     the full history;
//   - compaction: deleting every segment older than the latest durable
//     checkpoint, whose state the checkpoint wholly covers.
//
// Only the last segment can have a torn tail: rotation fsyncs a segment
// before opening its successor, so every non-last segment is fully durable.
// A transaction is live until its log shows TypeCommit or TypeCompensateEnd
// — exactly the transactions core.RecoverPending would still act on.
type SegmentedLog struct {
	mu       sync.Mutex
	dir      string
	opts     SegmentOptions
	f        *os.File // active segment
	segnum   uint64   // active segment number
	nsegs    int      // segment files on disk
	segBytes int64    // bytes in the active segment
	segRecs  int      // records in the active segment
	next     uint64   // last assigned LSN
	mem      *MemoryLog
	sinceCk  int        // appends since the last checkpoint
	minSeg   uint64     // lowest segment file on disk (compaction floor)
	ckSeg    uint64     // segment whose head holds the latest durable checkpoint (0: none)
	ckBusy   bool       // background checkpoint in flight
	ckDone   *sync.Cond // signals ckBusy clearing (Close waits on it)
	closed   bool
	onComp   func(removed, remaining int)

	// Group commit (SyncGroup), the FileLog leader/follower protocol plus a
	// rotation generation: a leader snapshots the active file and gen under
	// gmu; if rotation bumped gen while its fsync was in flight, the outcome
	// is discarded (rotation's own fsync already covered the old segment,
	// and an fsync error on the just-closed handle is expected noise).
	gmu     sync.Mutex
	gcond   *sync.Cond
	gf      *os.File // active file as seen by group commit
	gen     uint64   // bumped by every rotation
	written uint64
	synced  uint64
	gerr    error
	syncing bool
	gclosed bool
}

// OpenDir opens (creating if needed) a segmented log in dir. Existing
// segments are scanned in order; replay state resets at each segment-head
// checkpoint; a torn tail in the last segment is truncated away (earlier
// segments are always fully durable, so corruption there is an error).
func OpenDir(dir string, opts SegmentOptions) (*SegmentedLog, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	var segs []uint64
	for _, e := range names {
		if n, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	l := &SegmentedLog{dir: dir, opts: opts, mem: NewMemory()}
	l.ckDone = sync.NewCond(&l.mu)
	for i, n := range segs {
		if err := l.replaySegment(n, i == len(segs)-1); err != nil {
			return nil, err
		}
	}
	l.nsegs = len(segs)
	if len(segs) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
		l.nsegs = 1
		l.minSeg = 1
	} else {
		l.minSeg = segs[0]
		// Reopen the last segment for appending at its valid end.
		last := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, segmentName(last)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		if _, err := f.Seek(l.segBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek: %w", err)
		}
		l.f, l.segnum = f, last
	}
	if opts.Sync == SyncGroup {
		l.gcond = sync.NewCond(&l.gmu)
		l.gf = l.f
		l.written, l.synced = l.next, l.next
	}
	return l, nil
}

// replaySegment reads segment n into the in-memory index. A checkpoint
// frame at the head of a segment resets the index to the snapshot. last
// marks the final segment, the only one allowed a torn tail; when the tail
// is torn, the file is truncated to the valid prefix and segBytes/segRecs
// describe it.
func (l *SegmentedLog) replaySegment(n uint64, last bool) error {
	path := filepath.Join(l.dir, segmentName(n))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	br := bufio.NewReader(f)
	var validEnd int64
	recs := 0
	first := true
	var ferr error
	for {
		blob, nb, err := readFrame(br)
		if err != nil {
			ferr = err
			break
		}
		if first && len(blob) > 0 && blob[0] == blobCheckpoint {
			ck, err := decodeCheckpoint(blob)
			if err != nil {
				ferr = err
				break
			}
			nm := NewMemory()
			for _, r := range ck.Live {
				if err := nm.appendExisting(r); err != nil {
					f.Close()
					return err
				}
			}
			if ck.LastLSN > nm.next {
				nm.next = ck.LastLSN
			}
			l.mem = nm
			l.next = ck.LastLSN
			l.ckSeg = n
		} else {
			r, err := DecodeRecord(blob)
			if err != nil {
				ferr = err
				break
			}
			if err := l.mem.appendExisting(r); err != nil {
				f.Close()
				return err
			}
			if r.LSN > l.next {
				l.next = r.LSN
			}
		}
		first = false
		validEnd += int64(nb)
		recs++
	}
	f.Close()
	if ferr != nil && ferr != io.EOF {
		if !last {
			return fmt.Errorf("wal: segment %s: %w", segmentName(n), ferr)
		}
		// Torn or corrupt tail of the final segment: keep the clean prefix.
		if terr := os.Truncate(path, validEnd); terr != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", terr)
		}
	}
	if last {
		l.segBytes, l.segRecs = validEnd, recs
	}
	return nil
}

// openSegmentLocked creates segment n and makes it active. Caller holds
// l.mu (or is still constructing l).
func (l *SegmentedLog) openSegmentLocked(n uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(n)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	syncDir(l.dir)
	l.f, l.segnum, l.segBytes, l.segRecs = f, n, 0, 0
	return nil
}

// syncDir fsyncs a directory so freshly created or removed segment files
// survive a crash. Best effort: not every platform supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// rotateLocked fsyncs and closes the active segment and opens its
// successor. Caller holds l.mu. After it returns, every record appended so
// far is durable (rotation is itself a durability barrier), which is what
// lets group commit release waiters on the closed segment and lets
// non-last segments be trusted during replay.
func (l *SegmentedLog) rotateLocked() error {
	old := l.f
	lastLSN := l.next
	if err := old.Sync(); err != nil {
		l.failGroupLocked(fmt.Errorf("%w: rotate: %w", ErrSync, err))
		return fmt.Errorf("%w: rotate: %w", ErrSync, err)
	}
	group := l.opts.Sync == SyncGroup
	if group {
		// Hold gmu across close+reopen: a group-commit leader must never be
		// able to snapshot the just-closed handle paired with a generation
		// that is still current, or its doomed fsync would poison the group.
		l.gmu.Lock()
		defer l.gmu.Unlock()
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("%w: rotate: %w", ErrClose, err)
	}
	if err := l.openSegmentLocked(l.segnum + 1); err != nil {
		return err
	}
	l.nsegs++
	if group {
		l.gen++
		l.gf = l.f
		if lastLSN > l.synced {
			l.synced = lastLSN
		}
		l.gcond.Broadcast()
	}
	return nil
}

// failGroupLocked poisons group commit after a rotation fsync failure so
// waiters do not report durability that was never established.
func (l *SegmentedLog) failGroupLocked(err error) {
	if l.opts.Sync != SyncGroup {
		return
	}
	l.gmu.Lock()
	if l.gerr == nil {
		l.gerr = err
	}
	l.gcond.Broadcast()
	l.gmu.Unlock()
}

// Append implements Log.
func (l *SegmentedLog) Append(r *Record) (uint64, error) {
	w := codec.GetWriter()
	defer codec.PutWriter(w)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.segBytes >= l.opts.MaxSegmentBytes ||
		(l.opts.MaxSegmentRecords > 0 && l.segRecs >= l.opts.MaxSegmentRecords) {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	l.next++
	r.LSN = l.next
	frame := appendFrame(w, func(w *codec.Writer) { appendRecordBinary(w, r) })
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: write frame: %w", err)
	}
	l.segBytes += int64(len(frame))
	l.segRecs++
	if l.opts.Sync == SyncEach {
		if err := l.f.Sync(); err != nil {
			l.mu.Unlock()
			return 0, fmt.Errorf("%w: %w", ErrSync, err)
		}
	}
	if err := l.mem.appendExisting(r); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	lsn := r.LSN
	l.sinceCk++
	kick := l.opts.CheckpointEvery > 0 && l.sinceCk >= l.opts.CheckpointEvery && !l.ckBusy
	if kick {
		l.ckBusy = true
	}
	l.mu.Unlock()

	if kick {
		go l.backgroundCheckpoint()
	}
	if l.opts.Sync == SyncGroup {
		if err := l.waitDurable(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// backgroundCheckpoint is the compactor: checkpoint, then drop the
// segments the checkpoint covers.
func (l *SegmentedLog) backgroundCheckpoint() {
	defer func() {
		l.mu.Lock()
		l.ckBusy = false
		l.ckDone.Broadcast()
		l.mu.Unlock()
	}()
	if err := l.Checkpoint(); err != nil {
		return
	}
	_, _ = l.Compact()
}

// waitDurable is FileLog's group-commit protocol plus the rotation
// generation check (see the SegmentedLog field comments).
func (l *SegmentedLog) waitDurable(lsn uint64) error {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	if lsn > l.written {
		l.written = lsn
	}
	for {
		if l.gerr != nil {
			return l.gerr
		}
		if l.synced >= lsn {
			return nil
		}
		if l.gclosed {
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			if w := l.opts.GroupCommitWindow; w > 0 {
				l.gmu.Unlock()
				time.Sleep(w)
				l.gmu.Lock()
			}
			target := l.written
			f, gen := l.gf, l.gen
			l.gmu.Unlock()
			err := f.Sync()
			l.gmu.Lock()
			l.syncing = false
			if gen != l.gen {
				// Rotation superseded this fsync: its own fsync covered every
				// frame the old segment held, and err (if any) is the expected
				// failure of syncing a just-closed handle. Re-evaluate.
				l.gcond.Broadcast()
				continue
			}
			if err != nil {
				l.gerr = fmt.Errorf("%w: %w", ErrSync, err)
			} else if target > l.synced {
				l.synced = target
			}
			l.gcond.Broadcast()
			continue
		}
		l.gcond.Wait()
	}
}

// liveRecordsLocked returns the records of every unresolved transaction in
// LSN order. A transaction is resolved once its log shows TypeCommit or
// TypeCompensateEnd — the states core.RecoverPending skips on restart.
func (l *SegmentedLog) liveRecordsLocked() []*Record {
	resolved := make(map[string]bool)
	for txn, recs := range l.mem.byTxn {
		for _, r := range recs {
			if r.Type == TypeCommit || r.Type == TypeCompensateEnd {
				resolved[txn] = true
				break
			}
		}
	}
	var live []*Record
	for _, r := range l.mem.records {
		if !resolved[r.Txn] {
			live = append(live, r)
		}
	}
	return live
}

// Checkpoint rotates to a fresh segment whose first frame snapshots the
// live transactions and the highest LSN, fsyncing it before returning:
// once Checkpoint succeeds, every older segment is redundant and Compact
// may delete it. Replay after a checkpoint is O(live transactions), not
// O(history); the in-memory index is trimmed to the same view so memory is
// bounded too.
func (l *SegmentedLog) Checkpoint() error {
	w := codec.GetWriter()
	defer codec.PutWriter(w)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	live := l.liveRecordsLocked()
	if err := l.rotateLocked(); err != nil {
		return err
	}
	frame := appendFrame(w, func(w *codec.Writer) {
		appendCheckpoint(w, &checkpoint{LastLSN: l.next, Live: live})
	})
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	// The checkpoint must be durable before it can license compaction.
	if err := l.f.Sync(); err != nil {
		l.failGroupLocked(fmt.Errorf("%w: checkpoint: %w", ErrSync, err))
		return fmt.Errorf("%w: checkpoint: %w", ErrSync, err)
	}
	l.segBytes += int64(len(frame))
	l.segRecs++
	l.ckSeg = l.segnum
	l.sinceCk = 0

	// Trim the index to the snapshot view — identical to what a restart
	// would replay.
	nm := NewMemory()
	for _, r := range live {
		if err := nm.appendExisting(r); err != nil {
			return err
		}
	}
	nm.next = l.next
	l.mem = nm
	return nil
}

// Compact deletes every segment older than the latest durable checkpoint's
// segment and returns how many were removed. Safe to call at any time; a
// crash mid-compaction just leaves leftover segments whose content the
// next replay supersedes at the checkpoint.
func (l *SegmentedLog) Compact() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.ckSeg == 0 {
		return 0, nil
	}
	// Walk the floor up to the checkpoint segment, tolerating holes: a
	// crash mid-compaction leaves an arbitrary subset already deleted, and
	// the survivors must still be reclaimed on the next pass.
	removed := 0
	for n := l.minSeg; n < l.ckSeg; n++ {
		err := os.Remove(filepath.Join(l.dir, segmentName(n)))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			l.minSeg = n
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		removed++
	}
	l.minSeg = l.ckSeg
	if removed > 0 {
		syncDir(l.dir)
		l.nsegs -= removed
	}
	if cb := l.onComp; cb != nil && removed > 0 {
		remaining := l.nsegs
		l.mu.Unlock()
		cb(removed, remaining)
		l.mu.Lock()
	}
	return removed, nil
}

// Segments returns the number of segment files currently on disk.
func (l *SegmentedLog) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nsegs
}

// SetOnCompact installs a hook invoked after each compaction that removed
// at least one segment, with the removed and remaining counts. Used by the
// engine to emit the wal-compact span and keep the segment gauge honest
// without wal importing obs.
func (l *SegmentedLog) SetOnCompact(fn func(removed, remaining int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onComp = fn
}

// Records implements Log. After a checkpoint the snapshot view is
// returned: live transactions' records plus everything appended since —
// exactly what a restart would replay (LSNs may be gapped).
func (l *SegmentedLog) Records() []*Record { return l.memSnapshot().Records() }

// TxnRecords implements Log.
func (l *SegmentedLog) TxnRecords(txn string) []*Record { return l.memSnapshot().TxnRecords(txn) }

// memSnapshot returns the current index under l.mu (checkpointing swaps
// the index wholesale).
func (l *SegmentedLog) memSnapshot() *MemoryLog {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mem
}

// Sync implements Log: the explicit durability barrier, as FileLog.
func (l *SegmentedLog) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	last := l.next
	if l.opts.Sync != SyncGroup {
		err := l.f.Sync()
		l.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %w", ErrSync, err)
		}
		return nil
	}
	l.mu.Unlock()
	if last == 0 {
		return nil
	}
	return l.waitDurable(last)
}

// Close implements Log. A kicked background checkpoint runs to completion
// first — ckDone.Wait reacquires l.mu, so no new kick can slip in between
// the busy flag clearing and closed being set.
func (l *SegmentedLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.ckBusy {
		l.ckDone.Wait()
	}
	l.closed = true
	l.mu.Unlock()
	if l.opts.Sync == SyncGroup {
		l.gmu.Lock()
		l.gclosed = true
		l.gcond.Broadcast()
		for l.syncing {
			l.gcond.Wait()
		}
		l.gmu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrClose, err)
	}
	return nil
}
