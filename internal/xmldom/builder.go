package xmldom

// Builder provides fluent construction of subtrees within a document. All
// methods panic on structural misuse (attaching under text nodes etc.),
// which is acceptable because builders are used for literal construction in
// tests, examples and service results, never on untrusted input.
type Builder struct {
	doc *Document
	cur *Node
}

// Build starts a builder positioned at a new detached element of the
// document. Finish with Node() to obtain the built subtree.
func Build(d *Document, name string) *Builder {
	return &Builder{doc: d, cur: d.CreateElement(name)}
}

// Node returns the subtree root built so far.
func (b *Builder) Node() *Node { return b.cur }

// Attr sets an attribute on the current element.
func (b *Builder) Attr(name, value string) *Builder {
	b.cur.SetAttr(name, value)
	return b
}

// Text appends a text child to the current element.
func (b *Builder) Text(s string) *Builder {
	mustAppend(b.doc, b.cur, b.doc.CreateText(s))
	return b
}

// Child appends a new element child and descends into it.
func (b *Builder) Child(name string) *Builder {
	el := b.doc.CreateElement(name)
	mustAppend(b.doc, b.cur, el)
	return &Builder{doc: b.doc, cur: el}
}

// Leaf appends an element child containing only the given text and stays at
// the current element. It covers the common <name>value</name> shape.
func (b *Builder) Leaf(name, text string) *Builder {
	el := b.doc.CreateElement(name)
	mustAppend(b.doc, b.cur, el)
	if text != "" {
		mustAppend(b.doc, el, b.doc.CreateText(text))
	}
	return b
}

// Attach appends an existing detached node under the current element.
func (b *Builder) Attach(n *Node) *Builder {
	mustAppend(b.doc, b.cur, n)
	return b
}

// Up returns a builder positioned at the current element's parent. It
// panics if the element is detached, because that always indicates a
// construction bug.
func (b *Builder) Up() *Builder {
	if b.cur.Parent() == nil {
		panic("xmldom: Builder.Up above subtree root")
	}
	return &Builder{doc: b.doc, cur: b.cur.Parent()}
}

func mustAppend(d *Document, parent, child *Node) {
	if err := d.AppendChild(parent, child); err != nil {
		panic("xmldom: builder append: " + err.Error())
	}
}
