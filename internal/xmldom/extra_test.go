package xmldom

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		ElementNode: "element", TextNode: "text", CommentNode: "comment", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q", k, got)
		}
	}
}

func TestSetTextOnElementPanics(t *testing.T) {
	doc := NewDocument("d")
	el := doc.CreateElement("e")
	defer func() {
		if recover() == nil {
			t.Fatal("SetText on element did not panic")
		}
	}()
	el.SetText("x")
}

func TestSetTextOnTextNode(t *testing.T) {
	doc := NewDocument("d")
	n := doc.CreateText("old")
	n.SetText("new")
	if n.Text() != "new" {
		t.Fatal("SetText")
	}
}

func TestSetRootErrors(t *testing.T) {
	doc := NewDocument("d")
	root := doc.CreateElement("r")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	if err := doc.SetRoot(doc.CreateElement("r2")); err != ErrHasRoot {
		t.Fatalf("second root err = %v", err)
	}
	other := NewDocument("o")
	empty := NewDocument("e")
	if err := empty.SetRoot(other.CreateElement("x")); err != ErrForeignNode {
		t.Fatalf("foreign root err = %v", err)
	}
	// Attached node cannot become a root.
	child := doc.CreateElement("c")
	if err := doc.AppendChild(root, child); err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.Detach(root); err != nil {
		t.Fatal(err)
	}
	if err := doc.SetRoot(child); err != ErrAttached {
		t.Fatalf("attached root err = %v", err)
	}
}

func TestDetachErrors(t *testing.T) {
	doc := NewDocument("d")
	root := doc.CreateElement("r")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	other := NewDocument("o")
	if _, _, err := doc.Detach(other.CreateElement("x")); err != ErrForeignNode {
		t.Fatalf("foreign detach err = %v", err)
	}
	loose := doc.CreateElement("loose")
	if _, _, err := doc.Detach(loose); err != ErrDetached {
		t.Fatalf("detached detach err = %v", err)
	}
	if err := doc.Remove(loose); err != ErrDetached {
		t.Fatalf("remove detached err = %v", err)
	}
}

func TestNodeCountAndByIDMisses(t *testing.T) {
	doc := MustParse("d", `<r><a/><b/></r>`)
	if doc.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", doc.NodeCount())
	}
	if doc.ByID(9999) != nil {
		t.Fatal("ByID miss should be nil")
	}
	empty := NewDocument("e")
	if empty.NodeCount() != 0 {
		t.Fatal("empty NodeCount")
	}
}

func TestPathForTextNode(t *testing.T) {
	doc := MustParse("d", `<r>hello</r>`)
	text := doc.Root().Child(0)
	if p := text.Path(); !strings.Contains(p, "#text") {
		t.Fatalf("Path = %q", p)
	}
}

func TestChildOutOfRange(t *testing.T) {
	doc := MustParse("d", `<r><a/></r>`)
	if doc.Root().Child(-1) != nil || doc.Root().Child(5) != nil {
		t.Fatal("out-of-range Child should be nil")
	}
	if doc.Root().Index() != -1 {
		t.Fatal("root Index should be -1")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	doc := NewDocument("d")
	b := Build(doc, "root")
	defer func() {
		if recover() == nil {
			t.Fatal("Up above root did not panic")
		}
	}()
	b.Up()
}

func TestBuilderFluentTree(t *testing.T) {
	doc := NewDocument("d")
	n := Build(doc, "order").
		Attr("id", "7").
		Leaf("customer", "Serge").
		Child("items").
		Leaf("item", "XML book").
		Up().
		Text("trailing").
		Node()
	if err := doc.SetRoot(n); err != nil {
		t.Fatal(err)
	}
	s := MarshalString(n)
	for _, want := range []string{`id="7"`, "<customer>Serge</customer>", "<item>XML book</item>", "trailing"} {
		if !strings.Contains(s, want) {
			t.Fatalf("built tree %q missing %q", s, want)
		}
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalIndentMixedContent(t *testing.T) {
	doc := MustParse("d", `<r><only-text>abc</only-text><mixed>t<e/></mixed><!--c--></r>`)
	out := MarshalIndent(doc.Root(), "  ")
	if !strings.Contains(out, "<only-text>abc</only-text>") {
		t.Fatalf("text-only element broken:\n%s", out)
	}
	if !strings.Contains(out, "<!--c-->") {
		t.Fatalf("comment lost:\n%s", out)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	doc := MustParse("d", `<r><a/></r>`)
	// Corrupt the parent link directly (white-box).
	a := doc.Root().FirstElement("a")
	a.parent = nil
	if err := doc.Validate(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestEqualNilCases(t *testing.T) {
	doc := MustParse("d", `<r/>`)
	var nilNode *Node
	if !nilNode.Equal(nil) {
		t.Fatal("nil == nil")
	}
	if doc.Root().Equal(nil) || nilNode.Equal(doc.Root()) {
		t.Fatal("nil vs node")
	}
	empty1, empty2 := NewDocument("a"), NewDocument("b")
	if !empty1.Equal(empty2) {
		t.Fatal("two empty documents should be equal")
	}
	if empty1.Equal(doc) {
		t.Fatal("empty vs non-empty")
	}
}

func TestAdoptTextAndComment(t *testing.T) {
	src := MustParse("s", `<r>text<!--note--></r>`)
	dst := NewDocument("d")
	cp := dst.Adopt(src.Root())
	if cp.ChildCount() != 2 {
		t.Fatalf("adopted children = %d", cp.ChildCount())
	}
	if cp.Child(0).Kind() != TextNode || cp.Child(1).Kind() != CommentNode {
		t.Fatal("kinds lost in adoption")
	}
}
