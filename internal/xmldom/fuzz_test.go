package xmldom

import "testing"

// FuzzParse guards the XML parser: no panics, and every accepted document
// survives a serialize/parse round trip structurally unchanged.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<r/>`,
		`<ATPList date="18042005"><player rank="1"><name>Roger</name></player></ATPList>`,
		`<r><axml:sc mode="replace"><axml:params/></axml:sc></r>`,
		`<a>text<!--comment--><b x="1&amp;2"/></a>`,
		`<r>`,
		`<<>>`,
		`<a xmlns:axml="http://activexml.net"><axml:sc/></a>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString("fuzz", src)
		if err != nil {
			return
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("accepted document invalid: %v", err)
		}
		out := MarshalString(doc.Root())
		re, err := ParseString("fuzz2", out)
		if err != nil {
			t.Fatalf("serialized form unparseable: %q -> %q: %v", src, out, err)
		}
		if !re.Equal(doc) {
			t.Fatalf("round trip changed structure: %q -> %q", src, out)
		}
	})
}
