package xmldom

import (
	"errors"
	"fmt"
)

// Document owns a tree of nodes and the ID index over them. A document has
// at most one root element; nodes created by the document but not yet
// attached are "detached" and still indexed, so a deleted subtree can be
// re-attached by a compensating insert with its original IDs intact.
type Document struct {
	name   string
	root   *Node
	nextID NodeID
	index  map[NodeID]*Node
}

// Errors reported by tree mutations.
var (
	ErrForeignNode   = errors.New("xmldom: node belongs to a different document")
	ErrAttached      = errors.New("xmldom: node is already attached")
	ErrDetached      = errors.New("xmldom: node is not attached")
	ErrNotElement    = errors.New("xmldom: node is not an element")
	ErrCycle         = errors.New("xmldom: attaching a node under its own descendant")
	ErrHasRoot       = errors.New("xmldom: document already has a root")
	ErrNoSuchNode    = errors.New("xmldom: no node with that ID")
	ErrBadPosition   = errors.New("xmldom: insert position out of range")
	ErrRootOperation = errors.New("xmldom: operation not valid on the root")
)

// NewDocument returns an empty document with the given name (e.g. the file
// name "ATPList.xml" it is known by in the repository).
func NewDocument(name string) *Document {
	return &Document{
		name:  name,
		index: make(map[NodeID]*Node),
	}
}

// Name returns the document's repository name.
func (d *Document) Name() string { return d.name }

// Root returns the root element, or nil for an empty document.
func (d *Document) Root() *Node { return d.root }

// SetRoot installs root as the document root. The node must belong to this
// document and be detached.
func (d *Document) SetRoot(root *Node) error {
	if d.root != nil {
		return ErrHasRoot
	}
	if root.doc != d {
		return ErrForeignNode
	}
	if root.parent != nil {
		return ErrAttached
	}
	d.root = root
	return nil
}

// ByID returns the node with the given ID (attached or detached), or nil.
func (d *Document) ByID(id NodeID) *Node { return d.index[id] }

// NodeCount returns the number of nodes currently attached to the tree.
func (d *Document) NodeCount() int {
	if d.root == nil {
		return 0
	}
	return d.root.SubtreeSize()
}

// CreateElement returns a new detached element node owned by this document.
func (d *Document) CreateElement(name string) *Node {
	return d.newNode(ElementNode, name, "")
}

// CreateText returns a new detached text node owned by this document.
func (d *Document) CreateText(text string) *Node {
	return d.newNode(TextNode, "", text)
}

// CreateComment returns a new detached comment node.
func (d *Document) CreateComment(text string) *Node {
	return d.newNode(CommentNode, "", text)
}

func (d *Document) newNode(kind Kind, name, text string) *Node {
	d.nextID++
	n := &Node{id: d.nextID, kind: kind, name: name, text: text, doc: d}
	d.index[n.id] = n
	return n
}

// CreateElementWithID returns a new detached element carrying a specific
// ID. It exists for checkpoint restore: a reloaded document must keep the
// IDs the operation log's compensation records address. The ID must be
// non-zero and unused; the allocator advances past it.
func (d *Document) CreateElementWithID(name string, id NodeID) (*Node, error) {
	if id == InvalidID {
		return nil, fmt.Errorf("xmldom: cannot create node with the invalid ID")
	}
	if _, taken := d.index[id]; taken {
		return nil, fmt.Errorf("xmldom: ID %d already in use", id)
	}
	n := &Node{id: id, kind: ElementNode, name: name, doc: d}
	d.index[id] = n
	if id > d.nextID {
		d.nextID = id
	}
	return n, nil
}

// EnsureNextID raises the ID allocator so that future nodes get IDs above
// min; restore uses it before creating unsaved (text) nodes so they cannot
// collide with element IDs yet to be restored.
func (d *Document) EnsureNextID(min NodeID) {
	if min > d.nextID {
		d.nextID = min
	}
}

// AppendChild attaches child as the last child of parent.
func (d *Document) AppendChild(parent, child *Node) error {
	return d.InsertChild(parent, child, len(parent.children))
}

// InsertChild attaches child under parent at position pos (0 ≤ pos ≤ number
// of children). Positional insertion is what makes compensation of deletes
// in ordered documents exact: the compensating insert restores the deleted
// subtree at the position recorded in the log.
func (d *Document) InsertChild(parent, child *Node, pos int) error {
	if parent.doc != d || child.doc != d {
		return ErrForeignNode
	}
	if parent.kind != ElementNode {
		return ErrNotElement
	}
	if child.parent != nil {
		return ErrAttached
	}
	if child == parent || child.IsAncestorOf(parent) {
		return ErrCycle
	}
	if pos < 0 || pos > len(parent.children) {
		return ErrBadPosition
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[pos+1:], parent.children[pos:])
	parent.children[pos] = child
	child.parent = parent
	return nil
}

// InsertBefore attaches child immediately before ref, which must be
// attached. It implements the "insert before/after a specific node"
// semantics from XQuery! updates.
func (d *Document) InsertBefore(ref, child *Node) error {
	if ref.parent == nil {
		return ErrDetached
	}
	return d.InsertChild(ref.parent, child, ref.Index())
}

// InsertAfter attaches child immediately after ref, which must be attached.
func (d *Document) InsertAfter(ref, child *Node) error {
	if ref.parent == nil {
		return ErrDetached
	}
	return d.InsertChild(ref.parent, child, ref.Index()+1)
}

// Detach removes n from its parent and returns its former position. The
// subtree stays owned and indexed by the document so it can be re-attached
// (compensating insert) with identical IDs. Detaching the root empties the
// document.
func (d *Document) Detach(n *Node) (parent *Node, pos int, err error) {
	if n.doc != d {
		return nil, 0, ErrForeignNode
	}
	if n == d.root {
		d.root = nil
		return nil, 0, nil
	}
	if n.parent == nil {
		return nil, 0, ErrDetached
	}
	parent = n.parent
	pos = n.Index()
	parent.children = append(parent.children[:pos], parent.children[pos+1:]...)
	n.parent = nil
	return parent, pos, nil
}

// Remove permanently deletes the subtree rooted at n: it is detached and
// every node in it is dropped from the ID index. Use Detach when the subtree
// may be re-attached later.
func (d *Document) Remove(n *Node) error {
	if _, _, err := d.Detach(n); err != nil {
		return err
	}
	n.Walk(func(m *Node) bool {
		delete(d.index, m.id)
		return true
	})
	return nil
}

// Adopt deep-copies foreign (a node from another document, or nil-doc
// literal trees) into this document with fresh IDs, returning the detached
// copy. Attributes and child order are preserved.
func (d *Document) Adopt(foreign *Node) *Node {
	var cp *Node
	switch foreign.kind {
	case ElementNode:
		cp = d.CreateElement(foreign.name)
		cp.attrs = append([]Attr(nil), foreign.attrs...)
	case TextNode:
		cp = d.CreateText(foreign.text)
	case CommentNode:
		cp = d.CreateComment(foreign.text)
	}
	for _, c := range foreign.children {
		child := d.Adopt(c)
		child.parent = cp
		cp.children = append(cp.children, child)
	}
	return cp
}

// Clone returns a deep copy of the whole document, with node IDs preserved
// (the copy has the same ID→structure mapping as the original). Cloning is
// used for snapshot comparison in tests and for shipping document fragments
// between peers.
func (d *Document) Clone() *Document {
	cp := NewDocument(d.name)
	cp.nextID = d.nextID
	if d.root != nil {
		cp.root = cloneInto(cp, d.root, nil)
	}
	return cp
}

func cloneInto(dst *Document, n *Node, parent *Node) *Node {
	cp := &Node{id: n.id, kind: n.kind, name: n.name, text: n.text, doc: dst, parent: parent}
	cp.attrs = append([]Attr(nil), n.attrs...)
	dst.index[cp.id] = cp
	for _, c := range n.children {
		cp.children = append(cp.children, cloneInto(dst, c, cp))
	}
	return cp
}

// Equal reports structural equality of the two documents' trees (IDs,
// comments and insignificant whitespace ignored).
func (d *Document) Equal(other *Document) bool {
	if d.root == nil || other.root == nil {
		return d.root == other.root
	}
	return d.root.Equal(other.root)
}

// Validate checks internal invariants (index consistency, parent/child
// symmetry, ID uniqueness) and returns a descriptive error on violation.
// It backs the property-based tests.
func (d *Document) Validate() error {
	seen := make(map[NodeID]bool)
	var check func(n *Node, parent *Node) error
	check = func(n *Node, parent *Node) error {
		if n.doc != d {
			return fmt.Errorf("node %d: wrong document", n.id)
		}
		if n.parent != parent {
			return fmt.Errorf("node %d: parent link broken", n.id)
		}
		if seen[n.id] {
			return fmt.Errorf("node %d: duplicate ID", n.id)
		}
		seen[n.id] = true
		if got := d.index[n.id]; got != n {
			return fmt.Errorf("node %d: not in index", n.id)
		}
		if n.id > d.nextID {
			return fmt.Errorf("node %d: ID beyond nextID %d", n.id, d.nextID)
		}
		if n.kind != ElementNode && len(n.children) > 0 {
			return fmt.Errorf("node %d: non-element with children", n.id)
		}
		for _, c := range n.children {
			if err := check(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	if d.root != nil {
		if err := check(d.root, nil); err != nil {
			return err
		}
	}
	return nil
}
