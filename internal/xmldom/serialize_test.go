package xmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	doc, err := ParseString("t", `<ATPList date="18042005"><player rank="1"><name><firstname>Roger</firstname></name></player></ATPList>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Name() != "ATPList" {
		t.Fatalf("root = %q", root.Name())
	}
	if v, _ := root.Attr("date"); v != "18042005" {
		t.Fatalf("date = %q", v)
	}
	player := root.FirstElement("player")
	if player == nil {
		t.Fatal("no player")
	}
	if got := player.FirstElement("name").TextContent(); got != "Roger" {
		t.Fatalf("name text = %q", got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePreservesAXMLPrefix(t *testing.T) {
	doc, err := ParseString("t", `<r><axml:sc mode="replace" methodName="getPoints"><axml:params/></axml:sc></r>`)
	if err != nil {
		t.Fatal(err)
	}
	sc := doc.Root().FirstElement("axml:sc")
	if sc == nil {
		t.Fatalf("axml:sc not found in %s", MarshalString(doc.Root()))
	}
	if sc.FirstElement("axml:params") == nil {
		t.Fatal("axml:params not found")
	}
}

func TestParseSkipsInsignificantWhitespace(t *testing.T) {
	doc := MustParse("t", "<r>\n  <a/>\n  <b/>\n</r>")
	if got := doc.Root().ChildCount(); got != 2 {
		t.Fatalf("children = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<r>", "<r></x>", "just text"} {
		if _, err := ParseString("t", bad); err == nil {
			t.Fatalf("ParseString(%q) succeeded", bad)
		}
	}
}

func TestSerializeEscaping(t *testing.T) {
	doc := NewDocument("d")
	el := doc.CreateElement("e")
	el.SetAttr("a", `x<y"&`)
	if err := doc.SetRoot(el); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(el, doc.CreateText("a<b&c>d")); err != nil {
		t.Fatal(err)
	}
	s := MarshalString(el)
	reparsed, err := ParseString("d", s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if v, _ := reparsed.Root().Attr("a"); v != `x<y"&` {
		t.Fatalf("attr round trip = %q", v)
	}
	if got := reparsed.Root().TextContent(); got != "a<b&c>d" {
		t.Fatalf("text round trip = %q", got)
	}
}

func TestSelfClosingAndComments(t *testing.T) {
	doc := MustParse("t", `<r><empty/><!--hello--><full>x</full></r>`)
	out := MarshalString(doc.Root())
	if !strings.Contains(out, "<empty/>") {
		t.Fatalf("self-closing lost: %s", out)
	}
	if !strings.Contains(out, "<!--hello-->") {
		t.Fatalf("comment lost: %s", out)
	}
}

func TestDocumentStringHasHeader(t *testing.T) {
	doc := MustParse("t", `<r/>`)
	s := DocumentString(doc)
	if !strings.HasPrefix(s, "<?xml") {
		t.Fatalf("no XML header: %q", s)
	}
}

func TestMarshalIndentReparsesEqual(t *testing.T) {
	doc := MustParse("t", `<r a="1"><b>text</b><c><d/></c></r>`)
	pretty := MarshalIndent(doc.Root(), "  ")
	re, err := ParseString("t", pretty)
	if err != nil {
		t.Fatalf("reparse indented: %v\n%s", err, pretty)
	}
	if !re.Equal(doc) {
		t.Fatalf("indent round trip changed structure:\n%s", pretty)
	}
}

func TestParseFragment(t *testing.T) {
	doc := MustParse("t", `<r/>`)
	frag, err := ParseFragment(doc, `<citizenship>Swiss</citizenship>`)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Document() != doc || frag.Parent() != nil {
		t.Fatal("fragment not detached in target doc")
	}
	if err := doc.AppendChild(doc.Root(), frag); err != nil {
		t.Fatal(err)
	}
	if doc.Root().FirstElement("citizenship").TextContent() != "Swiss" {
		t.Fatal("fragment content")
	}
}

// randomTree builds a random document of bounded size, used by the
// round-trip property tests.
func randomTree(r *rand.Rand, maxNodes int) *Document {
	doc := NewDocument("rand")
	names := []string{"a", "b", "player", "points", "axml:sc", "grandslamswon"}
	root := doc.CreateElement("root")
	if err := doc.SetRoot(root); err != nil {
		panic(err)
	}
	nodes := []*Node{root}
	budget := 1 + r.Intn(maxNodes)
	for i := 0; i < budget; i++ {
		parent := nodes[r.Intn(len(nodes))]
		switch r.Intn(3) {
		case 0, 1:
			el := doc.CreateElement(names[r.Intn(len(names))])
			if r.Intn(2) == 0 {
				el.SetAttr("k", string(rune('a'+r.Intn(26))))
			}
			if doc.AppendChild(parent, el) == nil {
				nodes = append(nodes, el)
			}
		case 2:
			_ = doc.AppendChild(parent, doc.CreateText("v"+string(rune('0'+r.Intn(10)))))
		}
	}
	return doc
}

func TestPropertySerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 40)
		s := MarshalString(doc.Root())
		re, err := ParseString("rand", s)
		if err != nil {
			t.Logf("reparse failed for %q: %v", s, err)
			return false
		}
		return re.Equal(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValidateAfterRandomMutations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 30)
		// Random detach/reattach churn must preserve invariants.
		var all []*Node
		doc.Root().Walk(func(n *Node) bool { all = append(all, n); return true })
		for i := 0; i < 10 && len(all) > 1; i++ {
			n := all[1+r.Intn(len(all)-1)]
			if n.Parent() == nil {
				continue
			}
			parent, pos, err := doc.Detach(n)
			if err != nil {
				t.Logf("detach: %v", err)
				return false
			}
			if r.Intn(2) == 0 {
				if err := doc.InsertChild(parent, n, pos); err != nil {
					t.Logf("reinsert: %v", err)
					return false
				}
			} else {
				// Reattach at a random element that is not inside n.
				target := parent
				for _, cand := range all {
					if cand.Kind() == ElementNode && cand != n && !n.IsAncestorOf(cand) && cand.Parent() != nil || cand == doc.Root() {
						if r.Intn(3) == 0 {
							target = cand
							break
						}
					}
				}
				if target.Kind() != ElementNode {
					target = doc.Root()
				}
				if err := doc.AppendChild(target, n); err != nil {
					t.Logf("reattach: %v", err)
					return false
				}
			}
		}
		return doc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneEqualAndIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r, 30)
		cp := doc.Clone()
		if !cp.Equal(doc) || cp.Validate() != nil {
			return false
		}
		// Mutating the clone must not affect the original.
		before := MarshalString(doc.Root())
		cp.Root().SetAttr("mutated", "yes")
		if err := cp.AppendChild(cp.Root(), cp.CreateElement("extra")); err != nil {
			return false
		}
		return MarshalString(doc.Root()) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
