package xmldom

import (
	"strings"
	"testing"
)

func buildPlayer(t *testing.T) (*Document, *Node) {
	t.Helper()
	doc := NewDocument("ATPList.xml")
	root := Build(doc, "ATPList").Attr("date", "18042005").Node()
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	player := Build(doc, "player").Attr("rank", "1").Node()
	name := player.doc.CreateElement("name")
	if err := doc.AppendChild(player, name); err != nil {
		t.Fatal(err)
	}
	first := doc.CreateElement("firstname")
	if err := doc.AppendChild(name, first); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(first, doc.CreateText("Roger")); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(root, player); err != nil {
		t.Fatal(err)
	}
	return doc, player
}

func TestCreateAndAttach(t *testing.T) {
	doc, player := buildPlayer(t)
	if doc.Root().Name() != "ATPList" {
		t.Fatalf("root name = %q", doc.Root().Name())
	}
	if player.Parent() != doc.Root() {
		t.Fatal("player not attached to root")
	}
	if got := player.FirstElement("name").FirstElement("firstname").TextContent(); got != "Roger" {
		t.Fatalf("text = %q", got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIDsAreUniqueAndStable(t *testing.T) {
	doc, player := buildPlayer(t)
	id := player.ID()
	if doc.ByID(id) != player {
		t.Fatal("ByID lookup failed")
	}
	if _, _, err := doc.Detach(player); err != nil {
		t.Fatal(err)
	}
	if doc.ByID(id) != player {
		t.Fatal("detached node dropped from index")
	}
	if err := doc.AppendChild(doc.Root(), player); err != nil {
		t.Fatal(err)
	}
	if player.ID() != id {
		t.Fatal("ID changed across detach/attach")
	}
}

func TestInsertChildPositions(t *testing.T) {
	doc := NewDocument("d")
	root := doc.CreateElement("r")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	a, b, c := doc.CreateElement("a"), doc.CreateElement("b"), doc.CreateElement("c")
	if err := doc.AppendChild(root, a); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(root, c); err != nil {
		t.Fatal(err)
	}
	if err := doc.InsertChild(root, b, 1); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got := root.Child(i).Name(); got != w {
			t.Fatalf("child[%d] = %q, want %q", i, got, w)
		}
	}
	if b.Index() != 1 {
		t.Fatalf("b.Index() = %d", b.Index())
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	doc := NewDocument("d")
	root := doc.CreateElement("r")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	mid := doc.CreateElement("mid")
	if err := doc.AppendChild(root, mid); err != nil {
		t.Fatal(err)
	}
	before, after := doc.CreateElement("before"), doc.CreateElement("after")
	if err := doc.InsertBefore(mid, before); err != nil {
		t.Fatal(err)
	}
	if err := doc.InsertAfter(mid, after); err != nil {
		t.Fatal(err)
	}
	got := []string{root.Child(0).Name(), root.Child(1).Name(), root.Child(2).Name()}
	if got[0] != "before" || got[1] != "mid" || got[2] != "after" {
		t.Fatalf("order = %v", got)
	}
}

func TestInsertErrors(t *testing.T) {
	doc := NewDocument("d")
	root := doc.CreateElement("r")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	child := doc.CreateElement("c")
	if err := doc.AppendChild(root, child); err != nil {
		t.Fatal(err)
	}

	other := NewDocument("other")
	foreign := other.CreateElement("f")
	if err := doc.AppendChild(root, foreign); err != ErrForeignNode {
		t.Fatalf("foreign append err = %v", err)
	}
	if err := doc.AppendChild(root, child); err != ErrAttached {
		t.Fatalf("double attach err = %v", err)
	}
	text := doc.CreateText("t")
	if err := doc.AppendChild(text, doc.CreateElement("x")); err != ErrNotElement {
		t.Fatalf("append under text err = %v", err)
	}
	grand := doc.CreateElement("g")
	if err := doc.AppendChild(child, grand); err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.Detach(child); err != nil {
		t.Fatal(err)
	}
	if err := doc.AppendChild(grand, child); err != ErrCycle {
		t.Fatalf("cycle err = %v", err)
	}
	if err := doc.InsertChild(root, doc.CreateElement("y"), 99); err != ErrBadPosition {
		t.Fatalf("bad position err = %v", err)
	}
}

func TestDetachAndReattachPreservesSubtree(t *testing.T) {
	doc, player := buildPlayer(t)
	snapshot := MarshalString(player)
	parent, pos, err := doc.Detach(player)
	if err != nil {
		t.Fatal(err)
	}
	if parent != doc.Root() || pos != 0 {
		t.Fatalf("parent/pos = %v/%d", parent, pos)
	}
	if err := doc.InsertChild(parent, player, pos); err != nil {
		t.Fatal(err)
	}
	if got := MarshalString(player); got != snapshot {
		t.Fatalf("subtree changed:\n%s\n%s", got, snapshot)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDropsIndexEntries(t *testing.T) {
	doc, player := buildPlayer(t)
	var ids []NodeID
	player.Walk(func(n *Node) bool { ids = append(ids, n.ID()); return true })
	if err := doc.Remove(player); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if doc.ByID(id) != nil {
			t.Fatalf("node %d still indexed after Remove", id)
		}
	}
}

func TestDetachRootEmptiesDocument(t *testing.T) {
	doc, _ := buildPlayer(t)
	root := doc.Root()
	if _, _, err := doc.Detach(root); err != nil {
		t.Fatal(err)
	}
	if doc.Root() != nil {
		t.Fatal("root still set")
	}
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptCopiesAcrossDocuments(t *testing.T) {
	_, player := buildPlayer(t)
	dst := NewDocument("dst")
	cp := dst.Adopt(player)
	if cp.Document() != dst {
		t.Fatal("adopted node has wrong document")
	}
	if !cp.Equal(player) {
		t.Fatal("adopted copy not structurally equal")
	}
	// Mutating the copy must not touch the original.
	cp.SetAttr("rank", "2")
	if v, _ := player.Attr("rank"); v != "1" {
		t.Fatal("original mutated through adopted copy")
	}
}

func TestCloneDocumentPreservesIDs(t *testing.T) {
	doc, player := buildPlayer(t)
	cp := doc.Clone()
	if !cp.Equal(doc) {
		t.Fatal("clone not equal")
	}
	if cp.ByID(player.ID()) == nil {
		t.Fatal("clone lost node ID")
	}
	if cp.ByID(player.ID()) == player {
		t.Fatal("clone shares nodes with original")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttrOperations(t *testing.T) {
	doc := NewDocument("d")
	el := doc.CreateElement("e")
	el.SetAttr("a", "1")
	el.SetAttr("b", "2")
	el.SetAttr("a", "3") // replace in place
	if v, ok := el.Attr("a"); !ok || v != "3" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if el.Attrs()[0].Name != "a" {
		t.Fatal("replace changed attribute position")
	}
	if el.AttrDefault("missing", "def") != "def" {
		t.Fatal("AttrDefault")
	}
	if !el.RemoveAttr("b") || el.RemoveAttr("b") {
		t.Fatal("RemoveAttr")
	}
}

func TestNodeHelpers(t *testing.T) {
	doc, player := buildPlayer(t)
	if !doc.Root().IsAncestorOf(player) {
		t.Fatal("IsAncestorOf false for root")
	}
	if player.IsAncestorOf(doc.Root()) {
		t.Fatal("IsAncestorOf true for child")
	}
	if player.SubtreeSize() != 4 { // player, name, firstname, text
		t.Fatalf("SubtreeSize = %d", player.SubtreeSize())
	}
	if !strings.Contains(player.Path(), "/ATPList/player[0]") {
		t.Fatalf("Path = %q", player.Path())
	}
	if player.LocalName() != "player" {
		t.Fatal("LocalName")
	}
	sc := doc.CreateElement("axml:sc")
	if sc.LocalName() != "sc" {
		t.Fatalf("LocalName with prefix = %q", sc.LocalName())
	}
}

func TestEqualIgnoresAttrOrderAndComments(t *testing.T) {
	a := MustParse("a", `<r x="1" y="2"><c/></r>`)
	b := MustParse("b", `<r y="2" x="1"><!--note--><c/></r>`)
	if !a.Equal(b) {
		t.Fatal("documents should be equal")
	}
	c := MustParse("c", `<r x="1" y="2"><c/><c/></r>`)
	if a.Equal(c) {
		t.Fatal("different child counts reported equal")
	}
	d := MustParse("d", `<r x="1" y="OTHER"><c/></r>`)
	if a.Equal(d) {
		t.Fatal("different attr values reported equal")
	}
}

func TestEqualChildOrderSignificant(t *testing.T) {
	a := MustParse("a", `<r><x/><y/></r>`)
	b := MustParse("b", `<r><y/><x/></r>`)
	if a.Equal(b) {
		t.Fatal("child order must be significant")
	}
}

func TestTextContentConcatenation(t *testing.T) {
	d := MustParse("d", `<r>Hello <b>world</b>!</r>`)
	if got := d.Root().TextContent(); got != "Hello world!" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestElementsAndFirstElement(t *testing.T) {
	d := MustParse("d", `<r>text<a/>more<b/><a/></r>`)
	if n := len(d.Root().Elements()); n != 3 {
		t.Fatalf("Elements = %d", n)
	}
	if d.Root().FirstElement("b") == nil || d.Root().FirstElement("zz") != nil {
		t.Fatal("FirstElement")
	}
}

func TestWalkPruning(t *testing.T) {
	d := MustParse("d", `<r><skip><deep/></skip><keep/></r>`)
	var visited []string
	d.Root().Walk(func(n *Node) bool {
		if n.Kind() == ElementNode {
			visited = append(visited, n.Name())
		}
		return n.Name() != "skip"
	})
	for _, v := range visited {
		if v == "deep" {
			t.Fatal("walk did not prune below skip")
		}
	}
	if len(visited) != 3 {
		t.Fatalf("visited = %v", visited)
	}
}
