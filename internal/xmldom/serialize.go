package xmldom

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Serialize writes the subtree rooted at n as XML to w. Attribute and child
// order are preserved; text is escaped. No insignificant whitespace is
// added, so Serialize∘Parse is the identity on canonical trees.
func Serialize(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n)
	return sw.err
}

// serializeBufs recycles the scratch buffers behind MarshalString: logging
// and wire encoding serialize subtrees constantly, and regrowing a builder
// from zero for every record is pure allocator churn.
var serializeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufCap bounds the capacity of buffers returned to the pool, so
// one giant document doesn't pin its worth of memory forever.
const maxPooledBufCap = 1 << 16

// MarshalString returns the subtree rooted at n as an XML string.
func MarshalString(n *Node) string {
	buf := serializeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	// bytes.Buffer never fails, so the error is always nil.
	_ = Serialize(buf, n)
	out := buf.String()
	if buf.Cap() <= maxPooledBufCap {
		serializeBufs.Put(buf)
	}
	return out
}

// MarshalIndent returns the subtree pretty-printed with the given indent,
// for human-facing output (examples, CLI). Indented output inserts
// whitespace text nodes on re-parse, which Equal ignores.
func MarshalIndent(n *Node, indent string) string {
	var b strings.Builder
	writeIndented(&b, n, indent, 0)
	return b.String()
}

// DocumentString serializes a whole document, including the XML declaration.
func DocumentString(d *Document) string {
	if d.Root() == nil {
		return xml.Header
	}
	return xml.Header + MarshalString(d.Root())
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

// writeEscaped streams str through esc directly into the underlying writer,
// allocating nothing when str contains none of chars (the common case for
// element text and attribute values).
func (s *stickyWriter) writeEscaped(str string, esc *strings.Replacer, chars string) {
	if s.err != nil {
		return
	}
	if !strings.ContainsAny(str, chars) {
		_, s.err = io.WriteString(s.w, str)
		return
	}
	_, s.err = esc.WriteString(s.w, str)
}

func writeNode(w *stickyWriter, n *Node) {
	switch n.kind {
	case TextNode:
		w.writeEscaped(n.text, textEscaper, textEscapeChars)
	case CommentNode:
		w.WriteString("<!--")
		w.WriteString(n.text)
		w.WriteString("-->")
	case ElementNode:
		w.WriteString("<")
		w.WriteString(n.name)
		for _, a := range n.attrs {
			w.WriteString(" ")
			w.WriteString(a.Name)
			w.WriteString(`="`)
			w.writeEscaped(a.Value, attrEscaper, attrEscapeChars)
			w.WriteString(`"`)
		}
		if len(n.children) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteString(">")
		for _, c := range n.children {
			writeNode(w, c)
		}
		w.WriteString("</")
		w.WriteString(n.name)
		w.WriteString(">")
	}
}

func writeIndented(b *strings.Builder, n *Node, indent string, depth int) {
	pad := strings.Repeat(indent, depth)
	switch n.kind {
	case TextNode:
		if t := strings.TrimSpace(n.text); t != "" {
			b.WriteString(pad)
			b.WriteString(escapeText(t))
			b.WriteString("\n")
		}
	case CommentNode:
		b.WriteString(pad)
		b.WriteString("<!--")
		b.WriteString(n.text)
		b.WriteString("-->\n")
	case ElementNode:
		b.WriteString(pad)
		b.WriteString("<")
		b.WriteString(n.name)
		for _, a := range n.attrs {
			fmt.Fprintf(b, ` %s=%q`, a.Name, a.Value)
		}
		onlyText := true
		for _, c := range n.children {
			if c.kind != TextNode {
				onlyText = false
				break
			}
		}
		switch {
		case len(n.children) == 0:
			b.WriteString("/>\n")
		case onlyText:
			b.WriteString(">")
			b.WriteString(escapeText(n.TextContent()))
			b.WriteString("</")
			b.WriteString(n.name)
			b.WriteString(">\n")
		default:
			b.WriteString(">\n")
			for _, c := range n.children {
				writeIndented(b, c, indent, depth+1)
			}
			b.WriteString(pad)
			b.WriteString("</")
			b.WriteString(n.name)
			b.WriteString(">\n")
		}
	}
}

const (
	textEscapeChars = "&<>"
	attrEscapeChars = "&<>\"\n\t"
)

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "\n", "&#10;", "\t", "&#9;",
)

func escapeText(s string) string {
	if !strings.ContainsAny(s, textEscapeChars) {
		return s
	}
	return textEscaper.Replace(s)
}

func escapeAttr(s string) string {
	if !strings.ContainsAny(s, attrEscapeChars) {
		return s
	}
	return attrEscaper.Replace(s)
}

// Parse reads an XML document from r into a new Document with the given
// repository name. Processing instructions and directives are skipped;
// comments are kept.
func Parse(name string, r io.Reader) (*Document, error) {
	doc := NewDocument(name)
	dec := xml.NewDecoder(r)
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := doc.CreateElement(qualName(t.Name))
			for _, a := range t.Attr {
				el.SetAttr(qualName(a.Name), a.Value)
			}
			if len(stack) == 0 {
				if err := doc.SetRoot(el); err != nil {
					return nil, fmt.Errorf("xmldom: parse %s: %w", name, err)
				}
			} else if err := doc.AppendChild(stack[len(stack)-1], el); err != nil {
				return nil, fmt.Errorf("xmldom: parse %s: %w", name, err)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldom: parse %s: unbalanced end element", name)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace outside the root
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue // insignificant whitespace
			}
			parent := stack[len(stack)-1]
			if err := doc.AppendChild(parent, doc.CreateText(text)); err != nil {
				return nil, fmt.Errorf("xmldom: parse %s: %w", name, err)
			}
		case xml.Comment:
			if len(stack) == 0 {
				continue
			}
			parent := stack[len(stack)-1]
			if err := doc.AppendChild(parent, doc.CreateComment(string(t))); err != nil {
				return nil, fmt.Errorf("xmldom: parse %s: %w", name, err)
			}
		}
	}
	if doc.Root() == nil {
		return nil, fmt.Errorf("xmldom: parse %s: no root element", name)
	}
	return doc, nil
}

// ParseString is Parse over a string.
func ParseString(name, s string) (*Document, error) {
	return Parse(name, strings.NewReader(s))
}

// MustParse is ParseString that panics on error; for tests and literals.
func MustParse(name, s string) *Document {
	d, err := ParseString(name, s)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseFragment parses an XML fragment (one element) and returns it as a
// detached node adopted into dst. It is how <data> payloads of update
// actions become tree nodes.
func ParseFragment(dst *Document, s string) (*Node, error) {
	tmp, err := ParseString("fragment", s)
	if err != nil {
		return nil, err
	}
	return dst.Adopt(tmp.Root()), nil
}

// qualName renders an xml.Name with its prefix. encoding/xml resolves
// namespaces to URLs; AXML markup uses the conventional "axml" prefix, so we
// map the AXML namespace (and unresolvable prefixes, which the decoder
// leaves as the space verbatim) back to prefix:local form.
func qualName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	if strings.Contains(n.Space, "://") {
		// A resolved namespace URL. Only the AXML namespace is meaningful
		// to us; anything else keeps its local name.
		if strings.Contains(n.Space, "activexml") {
			return "axml:" + n.Local
		}
		return n.Local
	}
	return n.Space + ":" + n.Local
}
