// Package xmldom implements an ordered, mutable XML document tree with
// stable per-node identifiers.
//
// The tree is the storage substrate for AXML documents. Node identity
// matters transactionally: the paper's compensation for an insert operation
// is "delete the node having the corresponding ID", so identifiers must be
// unique within a document, survive detachment, and be preserved when a
// compensating insert re-attaches a previously deleted subtree.
//
// The package is not safe for concurrent mutation of one document; callers
// (the transaction layer) serialize access with document latches.
package xmldom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node uniquely within its document. IDs are never
// reused for the lifetime of a document, even after the node is deleted.
type NodeID uint64

// InvalidID is the zero NodeID; no live node ever has it.
const InvalidID NodeID = 0

// Kind discriminates the node variants stored in the tree.
type Kind uint8

const (
	// ElementNode is a named element with attributes and children.
	ElementNode Kind = iota + 1
	// TextNode is a leaf holding character data.
	TextNode
	// CommentNode is a leaf holding a comment; comments round-trip through
	// parse/serialize but are invisible to queries.
	CommentNode
)

func (k Kind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute. Attribute order is preserved on parse and
// serialize so documents round-trip byte-identically.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of a document tree. All mutation goes through methods so
// the parent/child links and the document's ID index stay consistent.
type Node struct {
	id       NodeID
	kind     Kind
	name     string // element name, including prefix (e.g. "axml:sc")
	text     string // text/comment content
	attrs    []Attr
	parent   *Node
	children []*Node
	doc      *Document
}

// ID returns the node's document-unique identifier.
func (n *Node) ID() NodeID { return n.id }

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Name returns the element name; it is empty for text and comment nodes.
func (n *Node) Name() string { return n.name }

// Text returns the character data of a text or comment node, or "" for
// elements. Use TextContent for the concatenated text below an element.
func (n *Node) Text() string { return n.text }

// SetText replaces the character data of a text or comment node.
func (n *Node) SetText(s string) {
	if n.kind == ElementNode {
		panic("xmldom: SetText on element node")
	}
	n.text = s
}

// Parent returns the parent node, or nil for the root and detached nodes.
func (n *Node) Parent() *Node { return n.parent }

// Document returns the owning document, or nil for detached foreign nodes.
func (n *Node) Document() *Document { return n.doc }

// Children returns the node's children in document order. The returned slice
// is the node's own; callers must not mutate it.
func (n *Node) Children() []*Node { return n.children }

// ChildCount returns the number of children.
func (n *Node) ChildCount() int { return len(n.children) }

// Child returns the i-th child, or nil if out of range.
func (n *Node) Child(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	return n.children[i]
}

// Index returns the node's position among its parent's children, or -1 for
// a detached or root node.
func (n *Node) Index() int {
	if n.parent == nil {
		return -1
	}
	for i, c := range n.parent.children {
		if c == n {
			return i
		}
	}
	return -1
}

// Attrs returns the attributes in document order; the slice is the node's
// own and must not be mutated by callers.
func (n *Node) Attrs() []Attr { return n.attrs }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute's value, or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets or replaces the named attribute, preserving position when the
// attribute already exists.
func (n *Node) SetAttr(name, value string) {
	for i := range n.attrs {
		if n.attrs[i].Name == name {
			n.attrs[i].Value = value
			return
		}
	}
	n.attrs = append(n.attrs, Attr{Name: name, Value: value})
}

// RemoveAttr deletes the named attribute if present and reports whether it
// was present.
func (n *Node) RemoveAttr(name string) bool {
	for i := range n.attrs {
		if n.attrs[i].Name == name {
			n.attrs = append(n.attrs[:i], n.attrs[i+1:]...)
			return true
		}
	}
	return false
}

// TextContent returns the concatenation of all text beneath the node, in
// document order. For a text node it is the node's own text.
func (n *Node) TextContent() string {
	switch n.kind {
	case TextNode:
		return n.text
	case CommentNode:
		return ""
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.children {
		switch c.kind {
		case TextNode:
			b.WriteString(c.text)
		case ElementNode:
			c.appendText(b)
		}
	}
}

// Elements returns the element children only, in document order.
func (n *Node) Elements() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		if c.kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FirstElement returns the first element child with the given name, or nil.
func (n *Node) FirstElement(name string) *Node {
	for _, c := range n.children {
		if c.kind == ElementNode && c.name == name {
			return c
		}
	}
	return nil
}

// LocalName returns the element name with any namespace prefix removed.
func (n *Node) LocalName() string {
	if i := strings.IndexByte(n.name, ':'); i >= 0 {
		return n.name[i+1:]
	}
	return n.name
}

// IsAncestorOf reports whether n is a (strict) ancestor of other.
func (n *Node) IsAncestorOf(other *Node) bool {
	for p := other.parent; p != nil; p = p.parent {
		if p == n {
			return true
		}
	}
	return false
}

// Walk visits n and every descendant in document order. Returning false from
// fn prunes the walk below that node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// SubtreeSize returns the number of nodes in the subtree rooted at n,
// including n itself. It is the paper's "number of XML nodes affected"
// cost measure for operations on the subtree.
func (n *Node) SubtreeSize() int {
	size := 1
	for _, c := range n.children {
		size += c.SubtreeSize()
	}
	return size
}

// Path returns a human-readable absolute path of element names from the
// document root to n, for diagnostics (e.g. "/ATPList/player[0]/name").
func (n *Node) Path() string {
	if n.parent == nil {
		if n.kind == ElementNode {
			return "/" + n.name
		}
		return "/" + n.kind.String()
	}
	idx := 0
	for _, sib := range n.parent.children {
		if sib == n {
			break
		}
		if sib.kind == n.kind && sib.name == n.name {
			idx++
		}
	}
	label := n.name
	if n.kind != ElementNode {
		label = "#" + n.kind.String()
	}
	return fmt.Sprintf("%s/%s[%d]", n.parent.Path(), label, idx)
}

// Equal reports deep structural equality with other, ignoring node IDs and
// comments. Attribute order is ignored; child order is significant.
func (n *Node) Equal(other *Node) bool {
	if n == nil || other == nil {
		return n == other
	}
	if n.kind != other.kind || n.name != other.name || n.text != other.text {
		return false
	}
	if len(n.attrs) != len(other.attrs) {
		return false
	}
	as, bs := sortedAttrs(n.attrs), sortedAttrs(other.attrs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	ac, bc := significantChildren(n), significantChildren(other)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !ac[i].Equal(bc[i]) {
			return false
		}
	}
	return true
}

func sortedAttrs(attrs []Attr) []Attr {
	out := append([]Attr(nil), attrs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// significantChildren filters comment nodes and whitespace-only text nodes
// and merges adjacent text nodes, none of which are distinguishable after a
// serialize/parse round trip and so are irrelevant to structural equality.
func significantChildren(n *Node) []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		if c.kind == CommentNode {
			continue
		}
		if c.kind == TextNode && strings.TrimSpace(c.text) == "" {
			continue
		}
		if c.kind == TextNode && len(out) > 0 && out[len(out)-1].kind == TextNode {
			merged := &Node{kind: TextNode, text: out[len(out)-1].text + c.text}
			out[len(out)-1] = merged
			continue
		}
		out = append(out, c)
	}
	return out
}
