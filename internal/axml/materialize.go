package axml

import (
	"errors"
	"fmt"
	"sync"

	"axmltx/internal/query"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Materializer supplies service invocation to the document engine. The
// engine stays transport-agnostic: the peer layer implements Materializer by
// invoking local services directly and remote ones over the network, inside
// the calling transaction.
type Materializer interface {
	// Invoke executes the service named by the call with resolved
	// parameters, within transaction txn, and returns the result as XML
	// fragments (zero or more sibling elements). Errors become faults
	// handled by the recovery protocol. Implementations must be safe for
	// concurrent use: the store overlaps the network waits of one
	// materialization round's independent calls (SetMaxConcurrentCalls).
	Invoke(txn string, call *ServiceCall, params []Param) ([]string, error)
	// ResultName reports the element name the named service produces, or
	// "" when unknown. Lazy evaluation uses it to decide whether a query
	// needs a call that has no previous results to reveal its shape.
	ResultName(service string) string
}

// LocalityHinter is optionally implemented by a Materializer to report
// whether invoking a call would execute on this very peer. Local execution
// re-enters the store (a peer's composition document routinely calls the
// peer's own services), so such calls are kept on the strictly sequential
// path; only genuinely remote waits are overlapped by the worker pool.
type LocalityHinter interface {
	InvokesLocally(sc *ServiceCall) bool
}

// InvokeOutcome is the result of one invocation performed by a BatchInvoker.
type InvokeOutcome struct {
	Fragments []string
	Err       error
}

// BatchInvoker is optionally implemented by a Materializer that can overlap
// the network waits of several independent invocations itself while keeping
// its per-transaction bookkeeping (notably the active-peer chain of §3.3)
// in call order. When implemented, the store's round prefetch delegates to
// it instead of running its own generic worker pool, so chain extension and
// child-invocation records stay deterministic.
type BatchInvoker interface {
	// InvokeBatch invokes calls[i] with params[i], at most limit network
	// waits in flight at once, and returns one outcome per call.
	InvokeBatch(txn string, calls []*ServiceCall, params [][]Param, limit int) []InvokeOutcome
}

// ErrNoMaterializer is returned when evaluation needs a service call
// materialized but no Materializer was supplied.
var ErrNoMaterializer = errors.New("axml: query requires materialization but no materializer is configured")

// maxMaterializeRounds bounds fixpoint iteration in one evaluation:
// results may themselves be service calls, and a pathological service that
// keeps returning new calls must not loop the engine forever.
const maxMaterializeRounds = 8

// materializeForQuery performs the materialization phase of query
// evaluation (§3.1). Under Lazy, only service calls whose (known or
// declared) result names intersect the names the query references are
// invoked; under Eager, every top-level call is. The set of calls actually
// materialized is determined at run time — which is precisely why the
// paper's compensation must be constructed dynamically.
func (s *Store) materializeForQuery(txn string, doc *xmldom.Document, q *query.Query, mat Materializer, mode EvalMode, res *Result) error {
	needed := make(map[string]bool)
	for _, n := range q.Names() {
		needed[n] = true
	}
	visited := make(map[xmldom.NodeID]bool)
	for round := 0; round < maxMaterializeRounds; round++ {
		var due []*ServiceCall
		for _, sc := range TopLevelServiceCalls(doc) {
			if visited[sc.ID()] {
				continue
			}
			if mode == Eager || s.callMayProduce(sc, needed, mat) {
				due = append(due, sc)
			}
		}
		if len(due) == 0 {
			return nil
		}
		if mat == nil {
			return fmt.Errorf("%w (service %q)", ErrNoMaterializer, due[0].Service())
		}
		for _, sc := range due {
			visited[sc.ID()] = true
		}
		if err := s.materializeRound(txn, doc, due, mat, res); err != nil {
			return err
		}
	}
	return nil
}

// materializeRound materializes one round's due calls. Calls whose network
// waits can safely overlap are invoked first through a bounded worker pool
// (prefetchInvocations); then every call is processed strictly in document
// order — prefetched results are merged, the rest take the sequential path —
// so the WAL record sequence and therefore compensation are identical to
// fully sequential execution.
func (s *Store) materializeRound(txn string, doc *xmldom.Document, due []*ServiceCall, mat Materializer, res *Result) error {
	pre := s.prefetchInvocations(txn, doc, due, mat)
	for i, sc := range due {
		if r, ok := pre[i]; ok {
			if r.err != nil {
				return fmt.Errorf("axml: materialize %s: %w", sc.Describe(), r.err)
			}
			if !attached(doc, sc.Node()) {
				// Detached while the pool ran (or by an earlier call in this
				// round); its results have nowhere to go.
				continue
			}
			if err := s.mergeResults(txn, doc, sc, r.fragments, res); err != nil {
				return err
			}
			continue
		}
		// The call may have been detached by a previous materialization
		// in this round (replace mode discarding an sc result).
		if !attached(doc, sc.Node()) {
			continue
		}
		if err := s.materializeCall(txn, doc, sc, mat, res); err != nil {
			return err
		}
	}
	return nil
}

// prefetched is the outcome of one pooled Invoke.
type prefetched struct {
	fragments []string
	err       error
}

// prefetchInvocations overlaps the Invoke network waits of the round's
// independent calls through a bounded worker pool and returns their results
// keyed by position in due. Called (and returning) with s.mu held; the lock
// is released only while the pool runs, exactly like the sequential path
// releases it around each single Invoke.
//
// A call stays off the pool (sequential fallback) when any of:
//   - it has nested service-call parameters — resolving those logs WAL
//     records, whose order must match sequential execution;
//   - the materializer reports it executes locally (LocalityHinter) — local
//     execution re-enters this store;
//   - an earlier replace-mode due call's existing results contain it — that
//     call's merge would detach it, and sequential execution would
//     therefore never invoke it.
func (s *Store) prefetchInvocations(txn string, doc *xmldom.Document, due []*ServiceCall, mat Materializer) map[int]*prefetched {
	if mat == nil || len(due) < 2 {
		return nil
	}
	limit := s.concurrencyFor(len(due))
	if limit <= 1 {
		return nil
	}
	hinter, _ := mat.(LocalityHinter)
	// Existing result roots of earlier replace-mode calls: anything beneath
	// them may be discarded before its own turn comes.
	var hazards []*xmldom.Node
	type job struct {
		i      int
		sc     *ServiceCall
		params []Param
	}
	var jobs []job
	for i, sc := range due {
		eligible := true
		for _, h := range hazards {
			if h == sc.Node() || h.IsAncestorOf(sc.Node()) {
				eligible = false
				break
			}
		}
		if sc.Mode() == ModeReplace {
			hazards = append(hazards, sc.Results()...)
		}
		if !eligible || (hinter != nil && hinter.InvokesLocally(sc)) {
			continue
		}
		params := sc.Params()
		for _, p := range params {
			if p.Nested != nil {
				eligible = false
				break
			}
		}
		if eligible {
			jobs = append(jobs, job{i: i, sc: sc, params: params})
		}
	}
	if len(jobs) < 2 {
		return nil // nothing to overlap
	}
	out := make(map[int]*prefetched, len(jobs))
	if bi, ok := mat.(BatchInvoker); ok {
		calls := make([]*ServiceCall, len(jobs))
		params := make([][]Param, len(jobs))
		for k, j := range jobs {
			calls[k], params[k] = j.sc, j.params
		}
		s.mu.Unlock()
		outcomes := bi.InvokeBatch(txn, calls, params, limit)
		s.mu.Lock()
		for k := range jobs {
			if k < len(outcomes) {
				out[jobs[k].i] = &prefetched{fragments: outcomes[k].Fragments, err: outcomes[k].Err}
			}
		}
		return out
	}
	var omu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, limit)
	s.mu.Unlock()
	for _, j := range jobs {
		sem <- struct{}{}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			frags, err := mat.Invoke(txn, j.sc, j.params)
			omu.Lock()
			out[j.i] = &prefetched{fragments: frags, err: err}
			omu.Unlock()
		}(j)
	}
	wg.Wait()
	s.mu.Lock()
	return out
}

// callMayProduce reports whether sc could contribute nodes the query needs:
// its existing results carry a needed name, or the registry declares a
// needed result name. A call whose result shape is unknowable (no previous
// results and no declaration — typically a call to a remote service) must
// be materialized conservatively: lazy evaluation may only skip calls it
// can prove irrelevant.
func (s *Store) callMayProduce(sc *ServiceCall, needed map[string]bool, mat Materializer) bool {
	names := sc.ResultNames()
	for _, n := range names {
		if needed[n] {
			return true
		}
	}
	var declared string
	if mat != nil {
		declared = mat.ResultName(sc.Service())
	}
	if declared != "" {
		return needed[declared]
	}
	// No declaration: previous results, when present, are the only shape
	// evidence; with no evidence at all, materialize conservatively.
	return len(names) == 0
}

// materializeCall invokes one service call and merges its results into the
// document according to the call's mode, logging every structural effect
// under txn. Parameters that are themselves service calls are materialized
// first (nested local invocation).
func (s *Store) materializeCall(txn string, doc *xmldom.Document, sc *ServiceCall, mat Materializer, res *Result) error {
	if mat == nil {
		return fmt.Errorf("%w (service %q)", ErrNoMaterializer, sc.Service())
	}
	params, err := s.resolveParams(txn, doc, sc, mat, res)
	if err != nil {
		return err
	}
	// Release the store lock for the invocation: the service may be local
	// to this very peer, in which case its execution re-enters Apply (a
	// peer's composition document routinely calls the peer's own update
	// services). Transaction-level isolation is the lock table's job, not
	// this mutex's.
	s.mu.Unlock()
	fragments, err := mat.Invoke(txn, sc, params)
	s.mu.Lock()
	if err != nil {
		return fmt.Errorf("axml: materialize %s: %w", sc.Describe(), err)
	}
	if !attached(doc, sc.Node()) {
		// The call was detached while the lock was released (e.g. a nested
		// materialization in replace mode discarded it); its results have
		// nowhere to go.
		return nil
	}
	return s.mergeResults(txn, doc, sc, fragments, res)
}

// mergeResults applies one successful invocation to the document under the
// store lock: the materialize record, replace-mode discard of previous
// results, and insertion of the result fragments — the paper's run-time
// facts that dynamic compensation is built from.
func (s *Store) mergeResults(txn string, doc *xmldom.Document, sc *ServiceCall, fragments []string, res *Result) error {
	if lsn, lerr := s.log.Append(&wal.Record{
		Txn:     txn,
		Type:    wal.TypeMaterialize,
		Doc:     doc.Name(),
		NodeID:  uint64(sc.ID()),
		Service: sc.Service(),
	}); lerr == nil {
		res.noteLSN(lsn)
	}
	res.Materialized = append(res.Materialized, sc.Service())

	if sc.Mode() == ModeReplace {
		for _, old := range sc.Results() {
			if err := s.deleteNode(txn, doc, old, res); err != nil {
				return err
			}
		}
	}
	for _, frag := range fragments {
		n, err := xmldom.ParseFragment(doc, frag)
		if err != nil {
			return fmt.Errorf("axml: service %q returned malformed XML: %w", sc.Service(), err)
		}
		if err := doc.AppendChild(sc.Node(), n); err != nil {
			return err
		}
		s.logInsert(txn, doc, n, res)
	}
	return nil
}

// attached reports whether n is reachable from the document root.
func attached(doc *xmldom.Document, n *xmldom.Node) bool {
	for ; n != nil; n = n.Parent() {
		if n == doc.Root() {
			return true
		}
	}
	return false
}

// resolveParams materializes nested service-call parameters and returns the
// flat parameter list the service is invoked with.
func (s *Store) resolveParams(txn string, doc *xmldom.Document, sc *ServiceCall, mat Materializer, res *Result) ([]Param, error) {
	params := sc.Params()
	for i, p := range params {
		if p.Nested == nil {
			continue
		}
		if err := s.materializeCall(txn, doc, p.Nested, mat, res); err != nil {
			return nil, fmt.Errorf("axml: parameter %q of %s: %w", p.Name, sc.Describe(), err)
		}
		var text string
		for _, r := range p.Nested.Results() {
			text += r.TextContent()
		}
		params[i].Value = text
	}
	return params, nil
}

// MaterializeCall invokes one service call outside query evaluation (e.g.
// the periodic "frequency" trigger), under the store lock.
func (s *Store) MaterializeCall(txn string, docName string, scID xmldom.NodeID, mat Materializer) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.lookup(docName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDocument, docName)
	}
	n := doc.ByID(scID)
	if n == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchNode, scID)
	}
	sc, ok := AsServiceCall(n)
	if !ok {
		return nil, fmt.Errorf("axml: node %d is not a service call", scID)
	}
	res := &Result{}
	if err := s.materializeCall(txn, doc, sc, mat, res); err != nil {
		return nil, err
	}
	return res, nil
}

// MaterializeAll eagerly materializes every top-level service call of the
// named document, returning the combined result. It is the engine behind
// Eager evaluation benchmarks and document warm-up.
func (s *Store) MaterializeAll(txn string, docName string, mat Materializer) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.lookup(docName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDocument, docName)
	}
	res := &Result{}
	visited := make(map[xmldom.NodeID]bool)
	for round := 0; round < maxMaterializeRounds; round++ {
		var due []*ServiceCall
		for _, sc := range TopLevelServiceCalls(doc) {
			if visited[sc.ID()] || !attached(doc, sc.Node()) {
				continue
			}
			visited[sc.ID()] = true
			due = append(due, sc)
		}
		if len(due) == 0 {
			break
		}
		if err := s.materializeRound(txn, doc, due, mat, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
