package axml

import (
	"strings"
	"testing"

	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

const shardDocSrc = `<league>
  <player><name>Federer</name><rank>1</rank><points>8370</points></player>
  <player><name>Roddick</name><rank>2</rank><points>5655</points></player>
  <player><name>Hewitt</name><rank>3</rank><points>4335</points></player>
  <meta/>
</league>`

func shardStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("league.xml", shardDocSrc); err != nil {
		t.Fatalf("AddParsed: %v", err)
	}
	return s
}

func fragIDs(frags []*Fragment) map[FragmentID]bool {
	out := make(map[FragmentID]bool, len(frags))
	for _, f := range frags {
		out[f.ID] = true
	}
	return out
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	s := shardStore(t)
	ref, _ := s.Snapshot("league.xml")
	spine, frags, err := SplitDocument(ref, 4)
	if err != nil {
		t.Fatalf("SplitDocument: %v", err)
	}
	if len(frags) != 3 {
		t.Fatalf("want 3 player fragments, got %d", len(frags))
	}
	got, err := AssembleDocument("league.xml", spine, frags)
	if err != nil {
		t.Fatalf("AssembleDocument: %v", err)
	}
	if !got.Equal(ref) {
		t.Fatalf("assembled document differs from original:\n%s\nvs\n%s",
			xmldom.DocumentString(got), xmldom.DocumentString(ref))
	}
	// Node IDs survive the round trip: every fragment root is findable by
	// its original ID in the assembled tree.
	for _, f := range frags {
		n := got.ByID(f.Root)
		if n == nil || n.Kind() != xmldom.ElementNode {
			t.Fatalf("fragment root %d missing after assembly", f.Root)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("assembled document invalid: %v", err)
	}
}

// TestFragmentIDStability is the contract the catalog depends on: the
// fragment ID of an untouched subtree is identical across sibling inserts,
// deletes and replaces, and across a persistence round trip — the same
// subtree always shards to the same ID.
func TestFragmentIDStability(t *testing.T) {
	s := shardStore(t)
	doc, _ := s.Get("league.xml")
	_, before, err := SplitDocument(doc, 4)
	if err != nil {
		t.Fatalf("SplitDocument: %v", err)
	}
	stable := before[1] // Roddick's subtree, untouched by every mutation below

	// Insert a sibling before it, delete the first player, replace the
	// third player's subtree: the middle subtree keeps its node IDs.
	root := doc.Root()
	newPlayer, err := xmldom.ParseFragment(doc, `<player><name>Nadal</name><rank>0</rank><points>9000</points></player>`)
	if err != nil {
		t.Fatalf("ParseFragment: %v", err)
	}
	if err := doc.InsertChild(root, newPlayer, 0); err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	players := root.Elements()
	if err := doc.Remove(players[1]); err != nil { // old first player
		t.Fatalf("Remove: %v", err)
	}
	replacement, err := xmldom.ParseFragment(doc, `<player><name>Safin</name><rank>3</rank><points>4000</points></player>`)
	if err != nil {
		t.Fatalf("ParseFragment: %v", err)
	}
	players = root.Elements()
	old := players[len(players)-2]
	pos := old.Index()
	if err := doc.Remove(old); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := doc.InsertChild(root, replacement, pos); err != nil {
		t.Fatalf("InsertChild: %v", err)
	}

	_, after, err := SplitDocument(doc, 4)
	if err != nil {
		t.Fatalf("SplitDocument after mutations: %v", err)
	}
	if !fragIDs(after)[stable.ID] {
		t.Fatalf("stable subtree changed fragment ID: %s not in %v", stable.ID, fragIDs(after))
	}
	var now *Fragment
	for _, f := range after {
		if f.ID == stable.ID {
			now = f
		}
	}
	if now.XML != stable.XML {
		t.Fatalf("stable subtree body changed:\n%s\nvs\n%s", now.XML, stable.XML)
	}
}

// TestFragmentIDStabilityAcrossPersist re-materializes the document through
// the checkpoint format (the same encode/decode path fragments ship over)
// and verifies the same subtrees shard to the same IDs.
func TestFragmentIDStabilityAcrossPersist(t *testing.T) {
	s := shardStore(t)
	doc, _ := s.Get("league.xml")
	_, before, err := SplitDocument(doc, 4)
	if err != nil {
		t.Fatalf("SplitDocument: %v", err)
	}

	dir := t.TempDir()
	if err := s.SaveAll(dir); err != nil {
		t.Fatalf("SaveAll: %v", err)
	}
	s2 := NewStore(wal.NewMemory())
	if _, err := s2.LoadAll(dir); err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	doc2, ok := s2.Get("league.xml")
	if !ok {
		t.Fatal("reloaded store misses league.xml")
	}
	_, after, err := SplitDocument(doc2, 4)
	if err != nil {
		t.Fatalf("SplitDocument after reload: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("fragment count changed across persist: %d vs %d", len(after), len(before))
	}
	for _, f := range before {
		if !fragIDs(after)[f.ID] {
			t.Fatalf("fragment %s lost across persist round trip", f.ID)
		}
	}
}

func TestStoreShardAndFragmentTable(t *testing.T) {
	s := shardStore(t)
	ref, _ := s.Snapshot("league.xml")
	spine, frags, err := s.ShardDocument("league.xml", 4)
	if err != nil {
		t.Fatalf("ShardDocument: %v", err)
	}
	if _, ok := s.Get("league.xml"); ok {
		t.Fatal("sharded document still resolvable as a whole doc")
	}
	if got, ok := s.Spine("league.xml"); !ok || got != spine {
		t.Fatal("spine not recorded")
	}
	manifest, ok := s.Manifest("league.xml")
	if !ok || len(manifest) != len(frags) {
		t.Fatalf("manifest holds %d fragment IDs, want %d", len(manifest), len(frags))
	}
	for i, f := range frags {
		if manifest[i] != f.ID {
			t.Fatalf("manifest[%d] = %s, want %s", i, manifest[i], f.ID)
		}
	}
	if got := len(s.Fragments()); got != len(frags) {
		t.Fatalf("fragment table holds %d fragments, want %d", got, len(frags))
	}
	// Stale put (lower version) must not roll the table back.
	f := frags[0].Clone()
	f.Version = 9
	s.PutFragment(f)
	stale := frags[0].Clone()
	stale.Version = 2
	stale.XML = "<player/>"
	s.PutFragment(stale)
	got, _ := s.GetFragment(f.ID)
	if got.Version != 9 || strings.Contains(got.XML, "<player/>") {
		t.Fatalf("stale PutFragment overwrote newer version: %+v", got)
	}
	// Reassemble from the table.
	assembled, err := AssembleDocument("league.xml", spine, frags)
	if err != nil {
		t.Fatalf("AssembleDocument: %v", err)
	}
	if !assembled.Equal(ref) {
		t.Fatal("assembled sharded document differs from original")
	}
	if !s.RemoveFragment(frags[0].ID) || s.RemoveFragment(frags[0].ID) {
		t.Fatal("RemoveFragment bookkeeping wrong")
	}
}

func TestParseFragmentID(t *testing.T) {
	id := MakeFragmentID("a#b.xml", 17)
	doc, root, err := ParseFragmentID(id)
	if err != nil || doc != "a#b.xml" || root != 17 {
		t.Fatalf("ParseFragmentID(%q) = %q,%d,%v", id, doc, root, err)
	}
	if _, _, err := ParseFragmentID("nohash"); err == nil {
		t.Fatal("malformed ID accepted")
	}
}
