package axml

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// fakeMaterializer implements Materializer from a static table and records
// which services were invoked. The mutex makes it safe for the store's
// overlapped per-round invocations.
type fakeMaterializer struct {
	results     map[string][]string // service -> result fragments
	resultNames map[string]string   // service -> declared result element name
	mu          sync.Mutex
	invoked     []string
	params      map[string][]Param
	fail        map[string]error
}

func newFakeMaterializer() *fakeMaterializer {
	return &fakeMaterializer{
		results:     make(map[string][]string),
		resultNames: make(map[string]string),
		params:      make(map[string][]Param),
		fail:        make(map[string]error),
	}
}

func (f *fakeMaterializer) Invoke(txn string, call *ServiceCall, params []Param) ([]string, error) {
	f.mu.Lock()
	f.invoked = append(f.invoked, call.Service())
	f.params[call.Service()] = params
	err := f.fail[call.Service()]
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	res, ok := f.results[call.Service()]
	if !ok {
		return nil, fmt.Errorf("no such service %q", call.Service())
	}
	return res, nil
}

func (f *fakeMaterializer) ResultName(service string) string { return f.resultNames[service] }

func newTestStore(t *testing.T) (*Store, *wal.MemoryLog) {
	t.Helper()
	log := wal.NewMemory()
	s := NewStore(log)
	if _, err := s.AddParsed("ATPList.xml", atpListXML); err != nil {
		t.Fatal(err)
	}
	return s, log
}

// atpListXML is the paper's §3.1 document.
const atpListXML = `<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints" methodName="getPoints">
      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear" methodName="getGrandSlamsWonbyYear">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>2005</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
  <player rank="2">
    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>`

func mustParseQ(s string) *Action {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return NewQuery(q)
}

func TestStoreLookupByVariants(t *testing.T) {
	s, _ := newTestStore(t)
	for _, name := range []string{"ATPList.xml", "ATPList"} {
		if _, ok := s.Get(name); !ok {
			t.Errorf("Get(%q) failed", name)
		}
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "ATPList.xml" {
		t.Errorf("Names() = %v", names)
	}
}

func TestApplyDeletePaperExample(t *testing.T) {
	s, log := newTestStore(t)
	// §3.1: delete Federer's citizenship.
	loc, err := ParseQuery(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply("T1", NewDelete(loc), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeletedXML) != 1 || res.DeletedXML[0] != "<citizenship>Swiss</citizenship>" {
		t.Fatalf("deleted = %v", res.DeletedXML)
	}
	// The delete is logged with its before-image and position so
	// compensation can be constructed later.
	recs := log.TxnRecords("T1")
	if len(recs) != 1 || recs[0].Type != wal.TypeDelete {
		t.Fatalf("records = %v", recs)
	}
	if recs[0].XML != "<citizenship>Swiss</citizenship>" || recs[0].ParentID == 0 {
		t.Fatalf("delete record = %+v", recs[0])
	}
	// The document no longer has the node.
	check := mustParseQ(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`)
	qres, err := s.Apply("T1", check, nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Query.Items) != 0 {
		t.Fatal("citizenship still present after delete")
	}
}

func TestApplyInsertReturnsIDs(t *testing.T) {
	s, log := newTestStore(t)
	loc, _ := ParseQuery(`Select p from p in ATPList//player where p/name/lastname = Nadal`)
	res, err := s.Apply("T1", NewInsert(loc, `<points>5000</points>`), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InsertedIDs) != 1 {
		t.Fatalf("inserted IDs = %v", res.InsertedIDs)
	}
	doc, _ := s.Get("ATPList.xml")
	n := doc.ByID(res.InsertedIDs[0])
	if n == nil || n.Name() != "points" || n.TextContent() != "5000" {
		t.Fatalf("inserted node = %v", n)
	}
	recs := log.TxnRecords("T1")
	if len(recs) != 1 || recs[0].Type != wal.TypeInsert || recs[0].NodeID != uint64(res.InsertedIDs[0]) {
		t.Fatalf("insert record = %+v", recs)
	}
}

func TestApplyReplaceDecomposesToDeletePlusInsert(t *testing.T) {
	s, log := newTestStore(t)
	// §3.1 replace example: change Nadal's citizenship.
	loc, _ := ParseQuery(`Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal`)
	res, err := s.Apply("T1", NewReplace(loc, `<citizenship>USA</citizenship>`), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeletedXML) != 1 || len(res.InsertedIDs) != 1 {
		t.Fatalf("res = %+v", res)
	}
	recs := log.TxnRecords("T1")
	if len(recs) != 2 || recs[0].Type != wal.TypeDelete || recs[1].Type != wal.TypeInsert {
		t.Fatalf("records = %v", recs)
	}
	// Replacement is at the same position as the original.
	if recs[0].Pos != recs[1].Pos || recs[0].ParentID != recs[1].ParentID {
		t.Fatalf("replace moved the node: %+v vs %+v", recs[0], recs[1])
	}
	qres, _ := s.Apply("T1", mustParseQ(`Select p/citizenship from p in ATPList//player where p/name/lastname = Nadal`), nil, Lazy)
	if got := qres.Query.Strings(); !reflect.DeepEqual(got, []string{"USA"}) {
		t.Fatalf("after replace = %v", got)
	}
}

func TestQueryAMaterializesOnlyGrandSlams(t *testing.T) {
	s, _ := newTestStore(t)
	mat := newFakeMaterializer()
	mat.results["getGrandSlamsWonbyYear"] = []string{`<grandslamswon year="2005">A, F</grandslamswon>`}
	mat.results["getPoints"] = []string{`<points>890</points>`}

	// Paper Query A: citizenship + grandslamswon → only the slams call is
	// materialized, not getPoints.
	res, err := s.Apply("TA", mustParseQ(
		`Select p/citizenship, p/grandslamswon from p in ATPList//player where p/name/lastname = Federer`), mat, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mat.invoked, []string{"getGrandSlamsWonbyYear"}) {
		t.Fatalf("invoked = %v", mat.invoked)
	}
	// Merge mode: 2005 result appended after 2003 and 2004.
	got := res.Query.Strings()
	want := []string{"Swiss", "A, W", "A, U", "A, F"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query A result = %v, want %v", got, want)
	}
	// Parameters were resolved from the document.
	params := mat.params["getGrandSlamsWonbyYear"]
	if len(params) != 2 || params[0].Value != "Roger Federer" {
		t.Fatalf("params = %+v", params)
	}
}

func TestQueryBMaterializesOnlyPoints(t *testing.T) {
	s, log := newTestStore(t)
	mat := newFakeMaterializer()
	mat.results["getPoints"] = []string{`<points>890</points>`}
	mat.results["getGrandSlamsWonbyYear"] = []string{`<grandslamswon year="2005">A, F</grandslamswon>`}

	// Paper Query B: citizenship + points → only getPoints materialized.
	res, err := s.Apply("TB", mustParseQ(
		`Select p/citizenship, p/points from p in ATPList//player where p/name/lastname = Federer`), mat, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mat.invoked, []string{"getPoints"}) {
		t.Fatalf("invoked = %v", mat.invoked)
	}
	// Replace mode: 475 replaced by 890.
	got := res.Query.Strings()
	want := []string{"Swiss", "890"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query B result = %v, want %v", got, want)
	}
	// Replace-mode materialization logs delete(old result) + insert(new).
	var types []wal.Type
	for _, r := range log.TxnRecords("TB") {
		types = append(types, r.Type)
	}
	want2 := []wal.Type{wal.TypeMaterialize, wal.TypeDelete, wal.TypeInsert}
	if !reflect.DeepEqual(types, want2) {
		t.Fatalf("log types = %v, want %v", types, want2)
	}
}

func TestEagerMaterializesEverything(t *testing.T) {
	s, _ := newTestStore(t)
	mat := newFakeMaterializer()
	mat.results["getPoints"] = []string{`<points>890</points>`}
	mat.results["getGrandSlamsWonbyYear"] = []string{`<grandslamswon year="2005">A, F</grandslamswon>`}
	_, err := s.Apply("TE", mustParseQ(
		`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`), mat, Eager)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.invoked) != 2 {
		t.Fatalf("eager invoked = %v", mat.invoked)
	}
}

func TestLazyUsesDeclaredResultNameWhenNoPriorResults(t *testing.T) {
	log := wal.NewMemory()
	s := NewStore(log)
	if _, err := s.AddParsed("D.xml", `<D><item><axml:sc methodName="fetch" mode="replace"/></item></D>`); err != nil {
		t.Fatal(err)
	}
	mat := newFakeMaterializer()
	mat.results["fetch"] = []string{`<price>10</price>`}
	mat.resultNames["fetch"] = "price"

	res, err := s.Apply("T", mustParseQ(`Select i/price from i in D//item`), mat, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mat.invoked, []string{"fetch"}) {
		t.Fatalf("invoked = %v", mat.invoked)
	}
	if got := res.Query.Strings(); !reflect.DeepEqual(got, []string{"10"}) {
		t.Fatalf("result = %v", got)
	}
	// A query not touching "price" must not invoke it.
	mat.invoked = nil
	if _, err := s.Apply("T", mustParseQ(`Select i/other from i in D//item`), mat, Lazy); err != nil {
		t.Fatal(err)
	}
	if len(mat.invoked) != 0 {
		t.Fatalf("lazy over-invoked: %v", mat.invoked)
	}
}

func TestMaterializationResultIsAnotherServiceCall(t *testing.T) {
	log := wal.NewMemory()
	s := NewStore(log)
	if _, err := s.AddParsed("D.xml", `<D><axml:sc methodName="indirect" mode="replace"><val>old</val></axml:sc></D>`); err != nil {
		t.Fatal(err)
	}
	mat := newFakeMaterializer()
	// indirect returns another service call, which in turn produces val.
	mat.results["indirect"] = []string{`<axml:sc methodName="direct" mode="replace"/>`}
	mat.results["direct"] = []string{`<val>new</val>`}
	mat.resultNames["indirect"] = "val"
	mat.resultNames["direct"] = "val"

	res, err := s.Apply("T", mustParseQ(`Select d/val from d in D`), mat, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Query.Strings(); !reflect.DeepEqual(got, []string{"new"}) {
		t.Fatalf("result = %v (invoked %v)", got, mat.invoked)
	}
	if !reflect.DeepEqual(mat.invoked, []string{"indirect", "direct"}) {
		t.Fatalf("invoked = %v", mat.invoked)
	}
}

func TestNestedParamMaterializedFirst(t *testing.T) {
	log := wal.NewMemory()
	s := NewStore(log)
	_, err := s.AddParsed("D.xml", `<D>
	  <axml:sc methodName="outer" mode="replace">
	    <axml:params><axml:param name="p"><axml:value><axml:sc methodName="inner" mode="replace"/></axml:value></axml:param></axml:params>
	  </axml:sc>
	</D>`)
	if err != nil {
		t.Fatal(err)
	}
	mat := newFakeMaterializer()
	mat.results["inner"] = []string{`<v>42</v>`}
	mat.results["outer"] = []string{`<out>ok</out>`}
	mat.resultNames["outer"] = "out"

	res, err := s.Apply("T", mustParseQ(`Select d/out from d in D`), mat, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mat.invoked, []string{"inner", "outer"}) {
		t.Fatalf("invoked order = %v", mat.invoked)
	}
	// The inner result became outer's parameter value.
	if p := mat.params["outer"]; len(p) != 1 || p[0].Value != "42" {
		t.Fatalf("outer params = %+v", p)
	}
	if got := res.Query.Strings(); !reflect.DeepEqual(got, []string{"ok"}) {
		t.Fatalf("result = %v", got)
	}
}

func TestQueryWithoutMaterializerFailsOnlyWhenNeeded(t *testing.T) {
	s, _ := newTestStore(t)
	// Needs getPoints but no materializer.
	_, err := s.Apply("T", mustParseQ(
		`Select p/points from p in ATPList//player where p/name/lastname = Federer`), nil, Lazy)
	if !errors.Is(err, ErrNoMaterializer) {
		t.Fatalf("err = %v", err)
	}
	// Pure structural query works without one.
	if _, err := s.Apply("T", mustParseQ(
		`Select p/name from p in ATPList//player`), nil, Lazy); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeServiceFaultPropagates(t *testing.T) {
	s, _ := newTestStore(t)
	mat := newFakeMaterializer()
	mat.fail["getPoints"] = errors.New("fault A")
	_, err := s.Apply("T", mustParseQ(
		`Select p/points from p in ATPList//player where p/name/lastname = Federer`), mat, Lazy)
	if err == nil {
		t.Fatal("expected fault to propagate")
	}
}

func TestApplyDeleteByID(t *testing.T) {
	s, _ := newTestStore(t)
	doc, _ := s.Get("ATPList.xml")
	var target *xmldom.Node
	doc.Root().Walk(func(n *xmldom.Node) bool {
		if n.Name() == "citizenship" && target == nil {
			target = n
		}
		return true
	})
	res, err := s.Apply("T", &Action{Type: ActionDelete, Doc: "ATPList.xml", TargetID: target.ID(), Pos: -1}, nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeletedXML) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// Deleting again is a no-op (already detached).
	res2, err := s.Apply("T", &Action{Type: ActionDelete, Doc: "ATPList.xml", TargetID: target.ID(), Pos: -1}, nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.DeletedXML) != 0 {
		t.Fatal("double delete by ID should be a no-op")
	}
	// Deleting a nonexistent ID errors.
	if _, err := s.Apply("T", &Action{Type: ActionDelete, Doc: "ATPList.xml", TargetID: 99999, Pos: -1}, nil, Lazy); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

func TestApplyInsertRestoreReattachesOriginalSubtree(t *testing.T) {
	s, _ := newTestStore(t)
	loc, _ := ParseQuery(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`)
	del, err := s.Apply("T", NewDelete(loc), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Get("ATPList.xml")
	deletedID := uint64(0)
	for _, r := range s.Log().TxnRecords("T") {
		if r.Type == wal.TypeDelete {
			deletedID = r.NodeID
		}
	}
	rec := s.Log().TxnRecords("T")[0]
	restore := &Action{
		Type: ActionInsert, Doc: "ATPList.xml",
		ParentID: xmldom.NodeID(rec.ParentID), Pos: rec.Pos,
		Data: del.DeletedXML[0], RestoreID: xmldom.NodeID(deletedID),
	}
	res, err := s.Apply("T", restore, nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InsertedIDs) != 1 || uint64(res.InsertedIDs[0]) != deletedID {
		t.Fatalf("restore did not preserve ID: %v vs %d", res.InsertedIDs, deletedID)
	}
	n := doc.ByID(xmldom.NodeID(deletedID))
	if n.Parent() == nil || n.TextContent() != "Swiss" {
		t.Fatal("subtree not reattached")
	}
}

func TestApplyDeleteRootRefused(t *testing.T) {
	s, _ := newTestStore(t)
	loc, _ := ParseQuery(`Select p from p in ATPList`)
	if _, err := s.Apply("T", NewDelete(loc), nil, Lazy); err == nil {
		t.Fatal("deleting root must fail")
	}
}

func TestApplyDeleteNestedTargetsPruned(t *testing.T) {
	log := wal.NewMemory()
	s := NewStore(log)
	if _, err := s.AddParsed("D.xml", `<D><a><x/><a><x/></a></a></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := ParseQuery(`Select n from n in D//a`)
	res, err := s.Apply("T", NewDelete(loc), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	// Outer <a> subsumes the inner one: exactly one delete.
	if len(res.DeletedXML) != 1 {
		t.Fatalf("deleted = %v", res.DeletedXML)
	}
}

func TestApplyErrors(t *testing.T) {
	s, _ := newTestStore(t)
	locMissing, _ := ParseQuery(`Select p/nothing from p in ATPList//player`)
	if _, err := s.Apply("T", NewDelete(locMissing), nil, Lazy); !errors.Is(err, ErrNoTargets) {
		t.Fatalf("delete no targets err = %v", err)
	}
	otherDoc, _ := ParseQuery(`Select p from p in Missing//x`)
	if _, err := s.Apply("T", NewQuery(otherDoc), nil, Lazy); !errors.Is(err, ErrNoSuchDocument) {
		t.Fatalf("missing doc err = %v", err)
	}
	if _, err := s.Apply("T", &Action{Type: ActionInsert}, nil, Lazy); err == nil {
		t.Fatal("invalid action accepted")
	}
}

func TestAffectedNodesAccounting(t *testing.T) {
	s, _ := newTestStore(t)
	loc, _ := ParseQuery(`Select p from p in ATPList//player where p/name/lastname = Nadal`)
	res, err := s.Apply("T", NewDelete(loc), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	// Nadal subtree: player, name, firstname+text, lastname+text,
	// citizenship+text = 8 nodes.
	if res.AffectedNodes != 8 {
		t.Fatalf("affected = %d", res.AffectedNodes)
	}
}

func TestSnapshotIsolatedFromStore(t *testing.T) {
	s, _ := newTestStore(t)
	snap, ok := s.Snapshot("ATPList.xml")
	if !ok {
		t.Fatal("snapshot failed")
	}
	loc, _ := ParseQuery(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`)
	if _, err := s.Apply("T", NewDelete(loc), nil, Lazy); err != nil {
		t.Fatal(err)
	}
	live, _ := s.Get("ATPList.xml")
	if live.Equal(snap) {
		t.Fatal("snapshot should differ after delete")
	}
}

func TestMaterializeCallDirect(t *testing.T) {
	s, _ := newTestStore(t)
	mat := newFakeMaterializer()
	mat.results["getPoints"] = []string{`<points>999</points>`}
	doc, _ := s.Get("ATPList.xml")
	var scID xmldom.NodeID
	for _, sc := range ServiceCalls(doc) {
		if sc.Service() == "getPoints" {
			scID = sc.ID()
		}
	}
	res, err := s.MaterializeCall("T", "ATPList.xml", scID, mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InsertedIDs) != 1 || len(res.DeletedXML) != 1 {
		t.Fatalf("res = %+v", res)
	}
	qres, _ := s.Apply("T", mustParseQ(`Select p/points from p in ATPList//player where p/name/lastname = Federer`), mat, Lazy)
	if got := qres.Query.Strings(); !reflect.DeepEqual(got, []string{"999"}) {
		t.Fatalf("points = %v", got)
	}
}

func TestMaterializeAllEager(t *testing.T) {
	s, _ := newTestStore(t)
	mat := newFakeMaterializer()
	mat.results["getPoints"] = []string{`<points>890</points>`}
	mat.results["getGrandSlamsWonbyYear"] = []string{`<grandslamswon year="2005">A, F</grandslamswon>`}
	res, err := s.MaterializeAll("T", "ATPList.xml", mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Materialized) != 2 {
		t.Fatalf("materialized = %v", res.Materialized)
	}
}
