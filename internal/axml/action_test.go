package axml

import (
	"strings"
	"testing"

	"axmltx/internal/query"
)

func TestActionXMLRoundTrip(t *testing.T) {
	loc := query.MustParse(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`)
	cases := []*Action{
		NewDelete(loc),
		NewInsert(loc, `<citizenship>Swiss</citizenship>`),
		NewReplace(loc, `<citizenship>USA</citizenship>`),
		NewQuery(loc),
		{Type: ActionDelete, Doc: "ATPList.xml", TargetID: 42, Pos: -1},
		{Type: ActionInsert, Doc: "ATPList.xml", ParentID: 7, Pos: 2, Data: "<x/>", RestoreID: 9},
	}
	for _, a := range cases {
		wire := a.XML()
		back, err := ParseAction(wire)
		if err != nil {
			t.Fatalf("ParseAction(%s): %v", wire, err)
		}
		if back.Type != a.Type || back.Data != a.Data || back.TargetID != a.TargetID ||
			back.ParentID != a.ParentID || back.RestoreID != a.RestoreID {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", a, back)
		}
		if (a.Location == nil) != (back.Location == nil) {
			t.Fatalf("location presence mismatch for %s", wire)
		}
		if a.Location != nil && back.Location.String() != a.Location.String() {
			t.Fatalf("location mismatch: %q vs %q", a.Location.String(), back.Location.String())
		}
		if a.Pos >= 0 && back.Pos != a.Pos {
			t.Fatalf("pos mismatch: %d vs %d", a.Pos, back.Pos)
		}
	}
}

func TestActionXMLMatchesPaperShape(t *testing.T) {
	loc := query.MustParse(`Select p/citizenship from p in ATPList//player where p/name/lastname = Federer`)
	wire := NewDelete(loc).XML()
	for _, want := range []string{`<action type="delete"`, "<location>", "Select p/citizenship"} {
		if !strings.Contains(wire, want) {
			t.Fatalf("wire %q missing %q", wire, want)
		}
	}
}

func TestParseActionPaperExample(t *testing.T) {
	// Verbatim shape from §3.1 (compensating insert for the delete).
	src := `<action type="insert">
	  <data><citizenship>Swiss</citizenship></data>
	  <location>
	    Select p/citizenship/.. from p in ATPList//player where p/name/lastname = Federer;
	  </location>
	</action>`
	a, err := ParseAction(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != ActionInsert {
		t.Fatalf("type = %v", a.Type)
	}
	if a.Data != `<citizenship>Swiss</citizenship>` {
		t.Fatalf("data = %q", a.Data)
	}
	sel := a.Location.Selects[0]
	if sel[len(sel)-1].Axis != query.AxisParent {
		t.Fatal("location should end with parent step")
	}
}

func TestActionValidate(t *testing.T) {
	loc := query.MustParse(`Select p from p in D//x`)
	bad := []*Action{
		{Type: ActionQuery},
		{Type: ActionInsert, Location: loc},   // no data
		{Type: ActionInsert, Data: "<x/>"},    // no location/IDs
		{Type: ActionDelete},                  // no location/IDs
		{Type: ActionReplace, Location: loc},  // no data
		{Type: ActionDelete, TargetID: 5},     // ID without doc
		{Type: ActionType(99), Location: loc}, // bad type
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted %+v", i, a)
		}
	}
	good := []*Action{
		NewQuery(loc),
		NewInsert(loc, "<x/>"),
		{Type: ActionDelete, Doc: "d", TargetID: 5},
		{Type: ActionInsert, Doc: "d", ParentID: 3, Data: "<x/>"},
		{Type: ActionReplace, Doc: "d", TargetID: 5, Data: "<x/>"},
	}
	for i, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("case %d: Validate() rejected: %v", i, err)
		}
	}
}

func TestParseActionErrors(t *testing.T) {
	bad := []string{
		`not xml`,
		`<wrong/>`,
		`<action type="nonsense"/>`,
		`<action type="delete" targetID="abc"/>`,
		`<action type="insert" parentID="-1"/>`,
		`<action type="delete" doc="d" targetID="1" pos="x"/>`,
		`<action type="query"><location>garbage !!</location></action>`,
		`<action type="insert" doc="d" parentID="3" restoreID="zz"><data><x/></data></action>`,
	}
	for _, src := range bad {
		if _, err := ParseAction(src); err == nil {
			t.Errorf("ParseAction(%q) succeeded", src)
		}
	}
}

func TestParseActionTypeValues(t *testing.T) {
	for s, want := range map[string]ActionType{
		"query": ActionQuery, "INSERT": ActionInsert, " delete ": ActionDelete, "Replace": ActionReplace,
	} {
		got, err := ParseActionType(s)
		if err != nil || got != want {
			t.Errorf("ParseActionType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseActionType("upsert"); err == nil {
		t.Error("upsert accepted")
	}
}

func TestActionDataWithMultipleSiblings(t *testing.T) {
	src := `<action type="insert" doc="d" parentID="1"><data><a/><b/></data></action>`
	a, err := ParseAction(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data != "<a/><b/>" {
		t.Fatalf("data = %q", a.Data)
	}
}
