package axml

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"axmltx/internal/query"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Store is a peer's document repository: a set of AXML documents plus the
// operation log through which every mutation flows. The store serializes
// all operations behind one mutex; concurrency control between transactions
// (latching, waiting) is layered above in the transaction manager.
type Store struct {
	mu   sync.Mutex
	docs map[string]*xmldom.Document
	// frags and spines hold the fragment-addressed form of sharded
	// documents (fragment.go): a sharded document exists as a spine plus
	// the subset of its fragments this peer currently owns, and is
	// reassembled on demand. manifests records, per sharded document, the
	// complete fragment ID set fixed at split time — the authoritative
	// answer to "which fragments must an assembly gather", independent of
	// where migration has scattered them.
	frags     map[FragmentID]*Fragment
	spines    map[string]string
	manifests map[string][]FragmentID
	log       wal.Log
	eval      *query.Evaluator
	// maxCalls caps how many of a materialization round's due service calls
	// may have their Invoke network waits in flight at once; 0 means
	// DefaultMaxConcurrentCalls, 1 disables the overlap entirely.
	maxCalls int
	// applyObserver, when set, receives the wall-clock duration of every
	// Apply (action evaluation including its materialization rounds).
	applyObserver func(time.Duration)
}

// DefaultMaxConcurrentCalls is the default cap on overlapping service
// invocations within one materialization round (further bounded by the
// number of due calls).
const DefaultMaxConcurrentCalls = 8

// NewStore returns a store writing to log.
func NewStore(log wal.Log) *Store {
	return &Store{
		docs: make(map[string]*xmldom.Document),
		log:  log,
		eval: &query.Evaluator{
			Transparent: map[string]bool{ElemSC: true},
			Hidden:      map[string]bool{ElemParams: true, ElemCatch: true, ElemCatchAll: true, ElemRetry: true},
		},
	}
}

// Log returns the store's operation log.
func (s *Store) Log() wal.Log { return s.log }

// SetMaxConcurrentCalls bounds the per-round service-invocation overlap:
// 0 restores the default (min(DefaultMaxConcurrentCalls, len(due))), 1
// forces strictly sequential materialization.
func (s *Store) SetMaxConcurrentCalls(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.maxCalls = n
}

// concurrencyFor resolves the worker-pool size for a round of n due calls;
// called with s.mu held.
func (s *Store) concurrencyFor(n int) int {
	limit := s.maxCalls
	if limit == 0 {
		limit = DefaultMaxConcurrentCalls
	}
	if limit > n {
		limit = n
	}
	return limit
}

// SetApplyObserver installs a latency callback fired once per Apply with
// the operation's duration (materialization included). Install before the
// store is shared; a nil fn disables observation.
func (s *Store) SetApplyObserver(fn func(time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyObserver = fn
}

// Evaluator returns the AXML-configured query evaluator.
func (s *Store) Evaluator() *query.Evaluator { return s.eval }

// Add registers a document under its name; it replaces any previous
// document with the same name.
func (s *Store) Add(doc *xmldom.Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[doc.Name()] = doc
}

// AddParsed parses src and registers the result.
func (s *Store) AddParsed(name, src string) (*xmldom.Document, error) {
	doc, err := xmldom.ParseString(name, src)
	if err != nil {
		return nil, err
	}
	s.Add(doc)
	return doc, nil
}

// Get returns the named document, matching either the repository name
// ("ATPList.xml"), the name without suffix, or the root element name.
func (s *Store) Get(name string) (*xmldom.Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookup(name)
}

func (s *Store) lookup(name string) (*xmldom.Document, bool) {
	if d, ok := s.docs[name]; ok {
		return d, true
	}
	if d, ok := s.docs[name+".xml"]; ok {
		return d, true
	}
	for _, d := range s.docs {
		if d.Root() != nil && d.Root().Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Names returns the registered document names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.docs))
	for n := range s.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove drops the named document and reports whether it was present.
func (s *Store) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return false
	}
	delete(s.docs, name)
	return true
}

// Snapshot returns an ID-preserving deep copy of the named document, for
// test assertions and for shipping fragments between peers.
func (s *Store) Snapshot(name string) (*xmldom.Document, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.lookup(name)
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// EvalMode selects between the two AXML query evaluation modes (§3.1).
type EvalMode uint8

const (
	// Lazy materializes only the embedded service calls whose results the
	// query may need — the preferred AXML mode.
	Lazy EvalMode = iota + 1
	// Eager materializes every (top-level) embedded service call before
	// evaluating.
	Eager
)

func (m EvalMode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// Result is the outcome of applying an action.
type Result struct {
	// Query holds the evaluation result for query actions.
	Query *query.Result
	// InsertedIDs are the root IDs of subtrees this action inserted
	// (directly or through materialization), in application order.
	InsertedIDs []xmldom.NodeID
	// DeletedXML holds the before-images of subtrees this action deleted.
	DeletedXML []string
	// AffectedNodes counts XML nodes touched (inserted + deleted subtree
	// sizes, plus located nodes for queries) — the paper's cost measure.
	AffectedNodes int
	// Materialized lists the service names invoked during evaluation.
	Materialized []string
	// FirstLSN and LastLSN bracket the log records this action produced;
	// both are zero when the action logged nothing (pure query).
	FirstLSN, LastLSN uint64
}

// opError annotates an error with operation context.
func opError(op string, a *Action, err error) error {
	return fmt.Errorf("axml: %s %s on %q: %w", op, a.Type, a.DocName(), err)
}
