package axml

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

func TestSaveLoadRoundTripPreservesIDs(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(wal.NewMemory())
	doc, err := s.AddParsed("ATPList.xml", `<ATPList date="18042005">
	  <player rank="1"><name><lastname>Federer</lastname></name><citizenship>Swiss</citizenship></player>
	</ATPList>`)
	if err != nil {
		t.Fatal(err)
	}
	player := doc.Root().FirstElement("player")
	playerID := player.ID()

	if err := s.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The live tree stays free of checkpoint attributes.
	if _, ok := player.Attr(idAttr); ok {
		t.Fatal("live tree polluted with checkpoint IDs")
	}

	re := NewStore(wal.NewMemory())
	names, err := re.LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "ATPList.xml" {
		t.Fatalf("names = %v", names)
	}
	loaded, _ := re.Get("ATPList.xml")
	if !loaded.Equal(doc) {
		t.Fatalf("round trip changed structure:\n%s", xmldom.MarshalString(loaded.Root()))
	}
	n := loaded.ByID(playerID)
	if n == nil || n.Name() != "player" {
		t.Fatalf("ID %d not restored (got %v)", playerID, n)
	}
	// No checkpoint attributes leak into the loaded tree.
	if _, ok := n.Attr(idAttr); ok {
		t.Fatal("checkpoint attribute leaked")
	}
	// Fresh IDs do not collide with restored ones.
	el := loaded.CreateElement("new")
	if loaded.ByID(el.ID()) != el || el.ID() <= playerID {
		t.Fatalf("fresh ID %d collides with restored range", el.ID())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryAcrossCheckpointAndLog(t *testing.T) {
	// The full durability story: a transaction's effects are checkpointed
	// mid-flight; after the "crash", LoadAll + the reopened log + the
	// restart pass compensate them on the restored tree, by node ID.
	dir := t.TempDir()
	logPath := filepath.Join(dir, "peer.wal")
	docDir := filepath.Join(dir, "docs")

	log, err := wal.OpenFile(logPath, true)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(log)
	if _, err := s.AddParsed("D.xml", `<D><a>orig</a></D>`); err != nil {
		t.Fatal(err)
	}
	pristine, _ := s.Snapshot("D.xml")

	loc, _ := ParseQuery(`Select d from d in D`)
	if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply("T", NewInsert(loc, `<uncommitted/>`), nil, Lazy); err != nil {
		t.Fatal(err)
	}
	locA, _ := ParseQuery(`Select d/a from d in D`)
	if _, err := s.Apply("T", NewDelete(locA), nil, Lazy); err != nil {
		t.Fatal(err)
	}
	// Checkpoint taken while T is in flight; then the peer "crashes".
	if err := s.SaveAll(docDir); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	relog, err := wal.OpenFile(logPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	restored := NewStore(relog)
	if _, err := restored.LoadAll(docDir); err != nil {
		t.Fatal(err)
	}

	// Restart compensation: the insert is deleted by ID, and the deleted
	// <a> is re-inserted from its logged before-image at its logged parent
	// ID — which only works because the checkpoint preserved IDs.
	actions := buildCompActionsForTest(relog, "T")
	if len(actions) != 2 {
		t.Fatalf("compensation actions = %d", len(actions))
	}
	for _, a := range actions {
		if _, err := restored.Apply("T", a, nil, Lazy); err != nil {
			t.Fatalf("compensate on restored store: %v", err)
		}
	}
	live, _ := restored.Get("D.xml")
	if !live.Equal(pristine) {
		t.Fatalf("restored+compensated != pristine:\n got: %s\nwant: %s",
			xmldom.MarshalString(live.Root()), xmldom.MarshalString(pristine.Root()))
	}
}

// buildCompActionsForTest mirrors core.BuildCompensation without importing
// core (which would create an import cycle in tests): reverse-order inverse
// actions from the log.
func buildCompActionsForTest(log wal.Log, txn string) []*Action {
	recs := log.TxnRecords(txn)
	var out []*Action
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch r.Type {
		case wal.TypeInsert:
			out = append(out, &Action{Type: ActionDelete, Doc: r.Doc, TargetID: xmldom.NodeID(r.NodeID), Pos: -1})
		case wal.TypeDelete:
			out = append(out, &Action{Type: ActionInsert, Doc: r.Doc, ParentID: xmldom.NodeID(r.ParentID), Pos: r.Pos, Data: r.XML, RestoreID: xmldom.NodeID(r.NodeID)})
		}
	}
	return out
}

func TestLoadAllSkipsNonXML(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := NewStore(wal.NewMemory())
	names, err := s.LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("names = %v", names)
	}
}

func TestLoadAllRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte("<unclosed"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(wal.NewMemory())
	if _, err := s.LoadAll(dir); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestSanitizeFileName(t *testing.T) {
	for in, want := range map[string]string{
		"ATPList.xml":  "ATPList.xml",
		"a/b.xml":      "a_b.xml",
		"..":           "_doc.xml",
		"plain":        "plain.xml",
		"../../escape": ".._.._escape.xml",
	} {
		if got := sanitizeFileName(in); got != want {
			t.Errorf("sanitizeFileName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSaveAllCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "docs")
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "D.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), idAttr) {
		t.Fatal("checkpoint lacks node IDs")
	}
}
