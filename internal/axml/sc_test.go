package axml

import (
	"testing"
	"time"

	"axmltx/internal/xmldom"
)

const scDoc = `<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints" serviceURL="AP2" methodName="getPoints">
      <axml:params><axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param></axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear" methodName="getGrandSlamsWonbyYear" frequency="30s">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>2005</axml:value></axml:param>
      </axml:params>
      <axml:catch faultName="A" faultVariable="fa"><axml:retry times="3" wait="10ms"/></axml:catch>
      <axml:catchAll/>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
</ATPList>`

func parseSCDoc(t *testing.T) (*xmldom.Document, *ServiceCall, *ServiceCall) {
	t.Helper()
	doc := xmldom.MustParse("ATPList.xml", scDoc)
	calls := ServiceCalls(doc)
	if len(calls) != 2 {
		t.Fatalf("service calls = %d", len(calls))
	}
	return doc, calls[0], calls[1]
}

func TestServiceCallAttributes(t *testing.T) {
	_, points, slams := parseSCDoc(t)
	if points.Service() != "getPoints" || points.Mode() != ModeReplace || points.URL() != "AP2" {
		t.Fatalf("points call = %s", points.Describe())
	}
	if slams.Service() != "getGrandSlamsWonbyYear" || slams.Mode() != ModeMerge {
		t.Fatalf("slams call = %s", slams.Describe())
	}
	if _, ok := points.Frequency(); ok {
		t.Fatal("points has no frequency")
	}
	if d, ok := slams.Frequency(); !ok || d != 30*time.Second {
		t.Fatalf("slams frequency = %v, %v", d, ok)
	}
}

func TestServiceCallParams(t *testing.T) {
	_, points, slams := parseSCDoc(t)
	p := points.Params()
	if len(p) != 1 || p[0].Name != "name" || p[0].Value != "Roger Federer" {
		t.Fatalf("points params = %+v", p)
	}
	sp := slams.Params()
	if len(sp) != 2 || sp[1].Name != "year" || sp[1].Value != "2005" {
		t.Fatalf("slams params = %+v", sp)
	}
}

func TestServiceCallResults(t *testing.T) {
	_, points, slams := parseSCDoc(t)
	if rs := points.Results(); len(rs) != 1 || rs[0].Name() != "points" {
		t.Fatalf("points results = %v", rs)
	}
	if rs := slams.Results(); len(rs) != 2 {
		t.Fatalf("slams results = %v", rs)
	}
	if names := slams.ResultNames(); len(names) != 1 || names[0] != "grandslamswon" {
		t.Fatalf("result names = %v", names)
	}
}

func TestServiceCallHandlers(t *testing.T) {
	_, points, slams := parseSCDoc(t)
	if hs := points.Handlers(); len(hs) != 0 {
		t.Fatalf("points handlers = %v", hs)
	}
	hs := slams.Handlers()
	if len(hs) != 2 {
		t.Fatalf("slams handlers = %v", hs)
	}
	if hs[0].FaultName != "A" || hs[0].Retry == nil || hs[0].Retry.Times != 3 || hs[0].Retry.Wait != 10*time.Millisecond {
		t.Fatalf("catch A = %+v", hs[0])
	}
	if hs[1].FaultName != "" {
		t.Fatal("second handler should be catchAll")
	}

	if h, ok := slams.HandlerFor("A"); !ok || h.FaultName != "A" {
		t.Fatal("HandlerFor(A)")
	}
	if h, ok := slams.HandlerFor("unknown"); !ok || h.FaultName != "" {
		t.Fatalf("HandlerFor(unknown) = %+v, %v (want catchAll)", h, ok)
	}
	if _, ok := points.HandlerFor("A"); ok {
		t.Fatal("points has no handlers")
	}
}

func TestNestedParamServiceCall(t *testing.T) {
	doc := xmldom.MustParse("D.xml", `<D>
	  <axml:sc methodName="outer" mode="replace">
	    <axml:params>
	      <axml:param name="p">
	        <axml:value><axml:sc methodName="inner" mode="replace"/></axml:value>
	      </axml:param>
	    </axml:params>
	  </axml:sc>
	</D>`)
	top := TopLevelServiceCalls(doc)
	if len(top) != 1 || top[0].Service() != "outer" {
		t.Fatalf("top-level calls = %v", top)
	}
	all := ServiceCalls(doc)
	if len(all) != 2 {
		t.Fatalf("all calls = %d", len(all))
	}
	params := top[0].Params()
	if len(params) != 1 || params[0].Nested == nil || params[0].Nested.Service() != "inner" {
		t.Fatalf("params = %+v", params)
	}
}

func TestNewServiceCall(t *testing.T) {
	doc := xmldom.MustParse("D.xml", `<D/>`)
	sc := NewServiceCall(doc, "getPoints", ModeMerge, map[string]string{"b": "2", "a": "1"})
	if sc.Service() != "getPoints" || sc.Mode() != ModeMerge {
		t.Fatalf("built call = %s", sc.Describe())
	}
	params := sc.Params()
	if len(params) != 2 || params[0].Name != "a" || params[1].Name != "b" {
		t.Fatalf("params not sorted deterministically: %+v", params)
	}
	if err := doc.AppendChild(doc.Root(), sc.Node()); err != nil {
		t.Fatal(err)
	}
	// Round trip through serialization.
	re := xmldom.MustParse("D.xml", xmldom.MarshalString(doc.Root()))
	calls := ServiceCalls(re)
	if len(calls) != 1 || calls[0].Service() != "getPoints" {
		t.Fatal("round trip lost the call")
	}
}

func TestParseModeAndBadFrequency(t *testing.T) {
	if ParseMode("MERGE") != ModeMerge || ParseMode("replace") != ModeReplace || ParseMode("junk") != ModeReplace {
		t.Fatal("ParseMode")
	}
	doc := xmldom.MustParse("D.xml", `<D><axml:sc methodName="x" frequency="garbage"/></D>`)
	sc := ServiceCalls(doc)[0]
	if _, ok := sc.Frequency(); ok {
		t.Fatal("garbage frequency accepted")
	}
}

func TestAsServiceCallRejectsOthers(t *testing.T) {
	doc := xmldom.MustParse("D.xml", `<D><x/></D>`)
	if _, ok := AsServiceCall(doc.Root().FirstElement("x")); ok {
		t.Fatal("non-sc wrapped")
	}
	if _, ok := AsServiceCall(nil); ok {
		t.Fatal("nil wrapped")
	}
}
