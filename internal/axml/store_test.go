package axml

import (
	"errors"
	"strings"
	"testing"

	"axmltx/internal/wal"
)

func TestModeAndEvalModeStrings(t *testing.T) {
	if ModeReplace.String() != "replace" || ModeMerge.String() != "merge" {
		t.Fatal("Mode.String")
	}
	if Lazy.String() != "lazy" || Eager.String() != "eager" {
		t.Fatal("EvalMode.String")
	}
	if ActionQuery.String() != "query" || ActionType(42).String() == "" {
		t.Fatal("ActionType.String")
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	if !s.Remove("D.xml") {
		t.Fatal("remove failed")
	}
	if s.Remove("D.xml") {
		t.Fatal("double remove succeeded")
	}
	if _, ok := s.Get("D.xml"); ok {
		t.Fatal("removed doc still found")
	}
}

func TestStoreAddParsedRejectsBadXML(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<unclosed>`); err == nil {
		t.Fatal("bad XML accepted")
	}
}

func TestMustApplyPanicsOnError(t *testing.T) {
	s := NewStore(wal.NewMemory())
	defer func() {
		if recover() == nil {
			t.Fatal("MustApply did not panic")
		}
	}()
	q, _ := ParseQuery(`Select x from x in Missing`)
	s.MustApply("T", NewQuery(q), nil, Lazy)
}

func TestResultLSNBracket(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D><a/><a/></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := ParseQuery(`Select d/a from d in D`)
	res, err := s.Apply("T", NewDelete(loc), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstLSN == 0 || res.LastLSN < res.FirstLSN {
		t.Fatalf("LSN bracket = [%d, %d]", res.FirstLSN, res.LastLSN)
	}
	if res.LastLSN-res.FirstLSN != 1 { // two deletes
		t.Fatalf("expected two records, bracket = [%d, %d]", res.FirstLSN, res.LastLSN)
	}
}

func TestInsertIntoMultipleTargets(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D><item/><item/><item/></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := ParseQuery(`Select d/item from d in D`)
	res, err := s.Apply("T", NewInsert(loc, `<tag/>`), nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InsertedIDs) != 3 {
		t.Fatalf("inserted = %v", res.InsertedIDs)
	}
}

func TestInsertPositioned(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D><a/><c/></D>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := ParseQuery(`Select d from d in D`)
	a := NewInsert(loc, `<b/>`)
	a.Pos = 1
	if _, err := s.Apply("T", a, nil, Lazy); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Get("D.xml")
	names := []string{}
	for _, c := range doc.Root().Elements() {
		names = append(names, c.Name())
	}
	if strings.Join(names, "") != "abc" {
		t.Fatalf("order = %v", names)
	}
}

func TestMaterializeRoundsCapStopsRunaway(t *testing.T) {
	// A service that returns another call to itself forever must not loop
	// the engine; the round cap bounds it.
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D><axml:sc mode="merge" methodName="loop"/></D>`); err != nil {
		t.Fatal(err)
	}
	mat := newFakeMaterializer()
	mat.results["loop"] = []string{`<axml:sc mode="merge" methodName="loop"/>`}
	q, _ := ParseQuery(`Select d/never from d in D`)
	if _, err := s.Apply("T", NewQuery(q), mat, Lazy); err != nil {
		t.Fatal(err)
	}
	if len(mat.invoked) > maxMaterializeRounds+1 {
		t.Fatalf("runaway: %d invocations", len(mat.invoked))
	}
}

func TestFrequencyOnlyCallNotMaterializedWhenIrrelevant(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml",
		`<D><axml:sc mode="replace" methodName="feed" frequency="10ms"><tick/></axml:sc><other>x</other></D>`); err != nil {
		t.Fatal(err)
	}
	mat := newFakeMaterializer()
	mat.results["feed"] = []string{`<tick/>`}
	q, _ := ParseQuery(`Select d/other from d in D`)
	if _, err := s.Apply("T", NewQuery(q), mat, Lazy); err != nil {
		t.Fatal(err)
	}
	if len(mat.invoked) != 0 {
		t.Fatalf("irrelevant periodic call invoked: %v", mat.invoked)
	}
}

func TestApplyCompensationStyleInsertWithoutRestore(t *testing.T) {
	// RestoreID referencing a non-existent node falls back to Data.
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Get("D.xml")
	a := &Action{
		Type: ActionInsert, Doc: "D.xml",
		ParentID: doc.Root().ID(), Pos: 0,
		Data: `<x/>`, RestoreID: 999,
	}
	res, err := s.Apply("T", a, nil, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InsertedIDs) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if doc.Root().FirstElement("x") == nil {
		t.Fatal("fallback insert missing")
	}
}

func TestReplaceByTargetID(t *testing.T) {
	s := NewStore(wal.NewMemory())
	doc, err := s.AddParsed("D.xml", `<D><v>old</v></D>`)
	if err != nil {
		t.Fatal(err)
	}
	target := doc.Root().FirstElement("v")
	a := &Action{Type: ActionReplace, Doc: "D.xml", TargetID: target.ID(), Data: `<v>new</v>`, Pos: -1}
	if _, err := s.Apply("T", a, nil, Lazy); err != nil {
		t.Fatal(err)
	}
	if got := doc.Root().FirstElement("v").TextContent(); got != "new" {
		t.Fatalf("value = %q", got)
	}
	// Replacing an already-detached target is a no-op (compensation path).
	if _, err := s.Apply("T", a, nil, Lazy); err != nil {
		t.Fatal(err)
	}
	// Replacing the root is refused.
	rootA := &Action{Type: ActionReplace, Doc: "D.xml", TargetID: doc.Root().ID(), Data: `<x/>`, Pos: -1}
	if _, err := s.Apply("T", rootA, nil, Lazy); err == nil {
		t.Fatal("root replace accepted")
	}
}

func TestReplaceNoTargetsErrors(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	loc, _ := ParseQuery(`Select d/missing from d in D`)
	if _, err := s.Apply("T", NewReplace(loc, `<x/>`), nil, Lazy); !errorsIs(err, ErrNoTargets) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Apply("T", NewInsert(loc, `<x/>`), nil, Lazy); !errorsIs(err, ErrNoTargets) {
		t.Fatalf("insert err = %v", err)
	}
}

func TestInsertByParentIDMissing(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D/>`); err != nil {
		t.Fatal(err)
	}
	a := &Action{Type: ActionInsert, Doc: "D.xml", ParentID: 424242, Data: `<x/>`, Pos: -1}
	if _, err := s.Apply("T", a, nil, Lazy); !errorsIs(err, ErrNoSuchNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaterializeCallErrors(t *testing.T) {
	s := NewStore(wal.NewMemory())
	if _, err := s.AddParsed("D.xml", `<D><axml:sc methodName="svc"/><plain/></D>`); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Get("D.xml")
	if _, err := s.MaterializeCall("T", "Missing.xml", 1, newFakeMaterializer()); !errorsIs(err, ErrNoSuchDocument) {
		t.Fatalf("doc err = %v", err)
	}
	if _, err := s.MaterializeCall("T", "D.xml", 999, newFakeMaterializer()); !errorsIs(err, ErrNoSuchNode) {
		t.Fatalf("node err = %v", err)
	}
	plain := doc.Root().FirstElement("plain")
	if _, err := s.MaterializeCall("T", "D.xml", plain.ID(), newFakeMaterializer()); err == nil {
		t.Fatal("non-sc node accepted")
	}
}

func TestStoreEvaluatorConfigured(t *testing.T) {
	s := NewStore(wal.NewMemory())
	ev := s.Evaluator()
	if !ev.Transparent[ElemSC] || !ev.Hidden[ElemParams] {
		t.Fatal("evaluator not AXML-configured")
	}
}

func TestServiceFallsBackToNamespace(t *testing.T) {
	s := NewStore(wal.NewMemory())
	doc, _ := s.AddParsed("D.xml", `<D><axml:sc serviceNameSpace="nsOnly"/></D>`)
	sc := ServiceCalls(doc)[0]
	if sc.Service() != "nsOnly" {
		t.Fatalf("Service() = %q", sc.Service())
	}
}

func errorsIs(err, target error) bool { return err != nil && errors.Is(err, target) }
