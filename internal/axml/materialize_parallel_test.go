package axml

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// jitterMaterializer answers from a static table after a random delay, so
// concurrent invocations complete in scrambled order — the adversarial
// schedule for the determinism guarantee.
type jitterMaterializer struct {
	mu      sync.Mutex
	rng     *rand.Rand
	results map[string][]string
}

func (m *jitterMaterializer) Invoke(txn string, call *ServiceCall, params []Param) ([]string, error) {
	m.mu.Lock()
	d := time.Duration(m.rng.Intn(2000)) * time.Microsecond
	m.mu.Unlock()
	time.Sleep(d)
	res, ok := m.results[call.Service()]
	if !ok {
		return nil, fmt.Errorf("no such service %q", call.Service())
	}
	return res, nil
}

func (m *jitterMaterializer) ResultName(service string) string {
	return "r" + strings.TrimPrefix(service, "svc")
}

// renderLog flattens a transaction's WAL records into comparable strings.
func renderLog(log wal.Log, txn string) []string {
	var out []string
	for _, r := range log.TxnRecords(txn) {
		out = append(out, fmt.Sprintf("%d %s %s %d %d %d %s %q %q",
			r.Type, r.Doc, r.Service, r.NodeID, r.ParentID, r.Pos, r.XML, r.OldText, r.NewText))
	}
	return out
}

// TestParallelMaterializationDeterministic runs the same lazy query once
// with strictly sequential materialization and once with the full worker
// pool under a jittery materializer, and requires byte-identical WAL record
// sequences and document serializations: parallelism may only overlap the
// network waits, never reorder effects.
func TestParallelMaterializationDeterministic(t *testing.T) {
	const calls = 8
	build := func(maxCalls int, seed int64) (*Store, *wal.MemoryLog, *jitterMaterializer) {
		log := wal.NewMemory()
		s := NewStore(log)
		var b strings.Builder
		b.WriteString("<D>")
		for i := 1; i <= calls; i++ {
			fmt.Fprintf(&b, `<axml:sc methodName="svc%d" mode="replace"><r%d>old</r%d></axml:sc>`, i, i, i)
		}
		b.WriteString("</D>")
		if _, err := s.AddParsed("D.xml", b.String()); err != nil {
			t.Fatal(err)
		}
		s.SetMaxConcurrentCalls(maxCalls)
		mat := &jitterMaterializer{rng: rand.New(rand.NewSource(seed)), results: map[string][]string{}}
		for i := 1; i <= calls; i++ {
			mat.results[fmt.Sprintf("svc%d", i)] = []string{fmt.Sprintf("<r%d>new</r%d>", i, i)}
		}
		return s, log, mat
	}
	query := mustParseQ(`Select d/r1, d/r2, d/r3, d/r4, d/r5, d/r6, d/r7, d/r8 from d in D`)

	seqStore, seqLog, seqMat := build(1, 1)
	if _, err := seqStore.Apply("T", query, seqMat, Lazy); err != nil {
		t.Fatal(err)
	}
	wantLog := renderLog(seqLog, "T")
	seqDoc, _ := seqStore.Get("D.xml")
	wantXML := xmldom.MarshalString(seqDoc.Root())

	for trial := 0; trial < 5; trial++ {
		parStore, parLog, parMat := build(DefaultMaxConcurrentCalls, int64(100+trial))
		if _, err := parStore.Apply("T", query, parMat, Lazy); err != nil {
			t.Fatal(err)
		}
		if got := renderLog(parLog, "T"); !reflect.DeepEqual(got, wantLog) {
			t.Fatalf("trial %d: parallel WAL diverged\n got: %v\nwant: %v", trial, got, wantLog)
		}
		parDoc, _ := parStore.Get("D.xml")
		if got := xmldom.MarshalString(parDoc.Root()); got != wantXML {
			t.Fatalf("trial %d: parallel document diverged\n got: %s\nwant: %s", trial, got, wantXML)
		}
	}
}

// Compensation equality follows from the log equality asserted above: the
// paper's dynamic compensation is a pure function of the WAL record
// sequence. The end-to-end restore check lives in internal/sim
// (TestParallelMaterializationCompensates), which can reach the core
// compensation machinery without an import cycle.
