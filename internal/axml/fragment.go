package axml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"axmltx/internal/xmldom"
)

// Fragment-addressed storage: a document can be split into subtree
// fragments that live on different peers and are reassembled on demand.
//
// A fragment is one element subtree detached from its document, addressed
// by a FragmentID derived from the subtree root's stable node ID. Node IDs
// survive persistence (persist.go), compensation (compensating inserts
// re-attach subtrees with their original IDs) and cloning, so a fragment
// keeps its identity across re-materialization, checkpoint/restore and
// migration between peers — exactly the property the operation log's
// compensation records rely on for nodes, lifted to subtrees.
//
// The wire format of a fragment body reuses the checkpoint format: the
// subtree serialized with every element carrying its node ID in the
// reserved idAttr attribute, rebuilt on the far side with
// CreateElementWithID. A fragment therefore round-trips byte-exactly
// through split → ship → assemble.

// FragmentID addresses one subtree fragment cluster-wide. The textual form
// is "<document name>#<root node ID>"; it is stable for the lifetime of
// the subtree because node IDs are never reused within a document.
type FragmentID string

// MakeFragmentID derives the fragment ID for a subtree of doc rooted at
// the element with the given node ID.
func MakeFragmentID(doc string, root xmldom.NodeID) FragmentID {
	return FragmentID(doc + "#" + strconv.FormatUint(uint64(root), 10))
}

// SpineFragmentID is the pseudo fragment ID under which a sharded
// document's spine is advertised and fetched ("<doc>#spine"). It is not a
// real fragment — ParseFragmentID rejects it — but it travels through the
// same catalog and fetch machinery.
func SpineFragmentID(doc string) FragmentID {
	return FragmentID(doc + "#spine")
}

// ParseFragmentID splits a fragment ID back into document name and root
// node ID.
func ParseFragmentID(id FragmentID) (doc string, root xmldom.NodeID, err error) {
	s := string(id)
	i := strings.LastIndexByte(s, '#')
	if i < 0 {
		return "", 0, fmt.Errorf("axml: malformed fragment ID %q", s)
	}
	n, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("axml: malformed fragment ID %q: %w", s, err)
	}
	return s[:i], xmldom.NodeID(n), nil
}

// Fragment is one detached subtree of a sharded document, self-contained
// enough to be shipped to another peer and re-attached during assembly.
type Fragment struct {
	ID   FragmentID
	Doc  string        // owning document name
	Root xmldom.NodeID // node ID of the subtree root element
	// Parent and Pos locate the subtree in the spine: the node ID of the
	// element it hangs under and its child index at split time. Assembly
	// re-inserts fragments in ascending (Parent, Pos) order, which
	// reconstructs the original child order exactly because splitting only
	// removes subtrees, never reorders survivors.
	Parent xmldom.NodeID
	Pos    int
	// XML is the subtree in checkpoint form: idAttr-annotated elements.
	XML string
	// Nodes is the subtree size (the paper's affected-nodes cost measure),
	// advertised through the catalog so placement can weigh fragments.
	Nodes int
	// Version orders ownership handoffs: a migration ships the fragment
	// with Version+1, and readers prefer the highest version they can
	// reach, so an in-flight fetch racing a migration sees either complete
	// copy but never a torn one.
	Version uint64
}

// Clone returns an independent copy of the fragment.
func (f *Fragment) Clone() *Fragment {
	cp := *f
	return &cp
}

// DefaultFragmentThreshold is the minimum subtree size (in nodes) for a
// top-level subtree to be split out as a fragment; smaller subtrees stay
// in the spine.
const DefaultFragmentThreshold = 4

// SplitDocument splits doc into a spine and a set of fragments: every
// element child of the root whose subtree size is at least threshold
// (DefaultFragmentThreshold when threshold <= 0) becomes a fragment; the
// rest of the tree, with those subtrees removed, is the spine, returned in
// the same idAttr-annotated checkpoint form. doc itself is not modified.
func SplitDocument(doc *xmldom.Document, threshold int) (spine string, frags []*Fragment, err error) {
	if threshold <= 0 {
		threshold = DefaultFragmentThreshold
	}
	if doc.Root() == nil {
		return "", nil, fmt.Errorf("axml: split %s: empty document", doc.Name())
	}
	// Work on an annotated clone so the live tree never carries idAttr.
	cp := doc.Clone()
	cp.Root().Walk(func(n *xmldom.Node) bool {
		if n.Kind() == xmldom.ElementNode {
			n.SetAttr(idAttr, strconv.FormatUint(uint64(n.ID()), 10))
		}
		return true
	})
	// Choose fragment roots among the root's element children. Positions
	// are recorded before any detachment so they index the original child
	// order.
	type pick struct {
		node *xmldom.Node
		pos  int
	}
	var picks []pick
	for i, c := range cp.Root().Children() {
		if c.Kind() == xmldom.ElementNode && c.SubtreeSize() >= threshold {
			picks = append(picks, pick{node: c, pos: i})
		}
	}
	for _, p := range picks {
		parentID := p.node.Parent().ID()
		if _, _, err := cp.Detach(p.node); err != nil {
			return "", nil, fmt.Errorf("axml: split %s: %w", doc.Name(), err)
		}
		var b strings.Builder
		if err := xmldom.Serialize(&b, p.node); err != nil {
			return "", nil, fmt.Errorf("axml: split %s: %w", doc.Name(), err)
		}
		frags = append(frags, &Fragment{
			ID:      MakeFragmentID(doc.Name(), p.node.ID()),
			Doc:     doc.Name(),
			Root:    p.node.ID(),
			Parent:  parentID,
			Pos:     p.pos,
			XML:     b.String(),
			Nodes:   p.node.SubtreeSize(),
			Version: 1,
		})
	}
	return xmldom.DocumentString(cp), frags, nil
}

// AssembleDocument rebuilds a document from its spine and fragments. The
// fragment XML bodies are parsed in parallel (the expensive part of
// assembly); re-attachment into the target tree is sequential and ordered
// by (Parent, Pos) so sibling order is reconstructed exactly. Fragments
// whose parent no longer exists in the spine are rejected — a torn or
// mismatched fragment set must fail loudly, never assemble silently wrong.
func AssembleDocument(name, spine string, frags []*Fragment) (*xmldom.Document, error) {
	doc, err := restoreDoc(name, spine)
	if err != nil {
		return nil, fmt.Errorf("axml: assemble %s: %w", name, err)
	}
	if len(frags) == 0 {
		return doc, nil
	}
	// Parse every fragment body concurrently into its own scratch document.
	parsed := make([]*xmldom.Document, len(frags))
	errs := make([]error, len(frags))
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		go func(i int, f *Fragment) {
			defer wg.Done()
			parsed[i], errs[i] = xmldom.ParseString(string(f.ID), f.XML)
		}(i, f)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("axml: assemble %s: fragment %s: %w", name, frags[i].ID, err)
		}
	}
	order := make([]int, len(frags))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		fa, fb := frags[order[a]], frags[order[b]]
		if fa.Parent != fb.Parent {
			return fa.Parent < fb.Parent
		}
		return fa.Pos < fb.Pos
	})
	for _, i := range order {
		f := frags[i]
		parent := doc.ByID(f.Parent)
		if parent == nil {
			return nil, fmt.Errorf("axml: assemble %s: fragment %s: parent node %d not in spine", name, f.ID, f.Parent)
		}
		sub, err := rebuild(doc, parsed[i].Root(), name)
		if err != nil {
			return nil, fmt.Errorf("axml: assemble %s: fragment %s: %w", name, f.ID, err)
		}
		pos := f.Pos
		if n := parent.ChildCount(); pos > n {
			pos = n
		}
		if err := doc.InsertChild(parent, sub, pos); err != nil {
			return nil, fmt.Errorf("axml: assemble %s: fragment %s: %w", name, f.ID, err)
		}
	}
	return doc, nil
}

// --- fragment table -------------------------------------------------------

// PutFragment stores (or replaces) a fragment this peer holds. A stale
// replace — lower version than the stored copy — is ignored, so a delayed
// re-delivery can never roll a fragment back.
func (s *Store) PutFragment(f *Fragment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frags == nil {
		s.frags = make(map[FragmentID]*Fragment)
	}
	if old, ok := s.frags[f.ID]; ok && old.Version > f.Version {
		return
	}
	s.frags[f.ID] = f.Clone()
}

// GetFragment returns a copy of the named fragment, if held locally.
func (s *Store) GetFragment(id FragmentID) (*Fragment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frags[id]
	if !ok {
		return nil, false
	}
	return f.Clone(), true
}

// RemoveFragment drops the named fragment and reports whether it was held.
func (s *Store) RemoveFragment(id FragmentID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.frags[id]; !ok {
		return false
	}
	delete(s.frags, id)
	return true
}

// Fragments returns copies of every locally held fragment, sorted by ID.
func (s *Store) Fragments() []*Fragment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Fragment, 0, len(s.frags))
	for _, f := range s.frags {
		out = append(out, f.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Spine returns the stored spine for a sharded document and whether the
// document is sharded on this peer.
func (s *Store) Spine(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.spines[name]
	return sp, ok
}

// Manifest returns the complete fragment ID set of a sharded document,
// fixed at split time. An assembly must gather exactly these fragments; a
// shorter list means a torn read, so the manifest travels with the spine
// rather than being inferred from (possibly transiently incomplete)
// placement advertisements.
func (s *Store) Manifest(name string) ([]FragmentID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, ok := s.manifests[name]
	if !ok {
		return nil, false
	}
	out := make([]FragmentID, len(ids))
	copy(out, ids)
	return out, true
}

// ShardDocument splits the named (whole) document into a spine plus
// fragments, replacing the whole document with its sharded form: the spine
// is recorded, the fragments enter the local fragment table, and the whole
// document is dropped from the docs map. It returns the fragments for the
// caller to announce/place.
func (s *Store) ShardDocument(name string, threshold int) (string, []*Fragment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.lookup(name)
	if !ok {
		return "", nil, fmt.Errorf("axml: shard: unknown document %q", name)
	}
	spine, frags, err := SplitDocument(doc, threshold)
	if err != nil {
		return "", nil, err
	}
	if s.frags == nil {
		s.frags = make(map[FragmentID]*Fragment)
	}
	if s.spines == nil {
		s.spines = make(map[string]string)
	}
	if s.manifests == nil {
		s.manifests = make(map[string][]FragmentID)
	}
	s.spines[doc.Name()] = spine
	manifest := make([]FragmentID, 0, len(frags))
	for _, f := range frags {
		s.frags[f.ID] = f.Clone()
		manifest = append(manifest, f.ID)
	}
	s.manifests[doc.Name()] = manifest
	delete(s.docs, doc.Name())
	return spine, frags, nil
}
