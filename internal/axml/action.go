package axml

import (
	"fmt"
	"strconv"
	"strings"

	"axmltx/internal/query"
	"axmltx/internal/xmldom"
)

// ActionType enumerates the four AXML operations (§3).
type ActionType uint8

const (
	// ActionQuery evaluates a select-from-where query; under lazy
	// evaluation it may materialize embedded service calls and therefore
	// modify the document.
	ActionQuery ActionType = iota + 1
	// ActionInsert inserts the <data> fragment under each node located by
	// the <location> query and returns the new nodes' unique IDs.
	ActionInsert
	// ActionDelete removes the located nodes.
	ActionDelete
	// ActionReplace is implemented as delete followed by insert at the same
	// position, as the paper prescribes.
	ActionReplace
)

func (t ActionType) String() string {
	switch t {
	case ActionQuery:
		return "query"
	case ActionInsert:
		return "insert"
	case ActionDelete:
		return "delete"
	case ActionReplace:
		return "replace"
	default:
		return fmt.Sprintf("ActionType(%d)", uint8(t))
	}
}

// ParseActionType maps the type attribute of an <action> element.
func ParseActionType(s string) (ActionType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "query":
		return ActionQuery, nil
	case "insert":
		return ActionInsert, nil
	case "delete":
		return ActionDelete, nil
	case "replace":
		return ActionReplace, nil
	default:
		return 0, fmt.Errorf("axml: unknown action type %q", s)
	}
}

// Action is one AXML operation. Target nodes come either from Location (the
// usual path) or, for compensating operations constructed from the log, from
// the explicit ID fields — a compensating delete addresses "the node having
// the corresponding ID" directly, and a compensating insert restores a
// subtree at a recorded parent and position.
type Action struct {
	Type ActionType
	// Data is the XML fragment of insert/replace operations.
	Data string
	// Location selects target nodes; nil when ID addressing is used.
	Location *query.Query
	// Doc names the target document when Location is nil (Location carries
	// the document name itself otherwise).
	Doc string
	// TargetID addresses the node to delete/replace directly by ID.
	TargetID xmldom.NodeID
	// ParentID addresses the insert parent directly by ID.
	ParentID xmldom.NodeID
	// Pos is the insert position under the parent; -1 appends.
	Pos int
	// RestoreID, on an insert, asks the engine to re-attach the detached
	// subtree that still carries this ID (a before-image kept by a delete)
	// instead of parsing Data into fresh nodes. Compensating inserts set it
	// so that node identity survives rollback; when the subtree is not
	// available (e.g. the action runs on a different peer), Data is used.
	RestoreID xmldom.NodeID
}

// NewQuery returns a query action.
func NewQuery(q *query.Query) *Action { return &Action{Type: ActionQuery, Location: q, Pos: -1} }

// NewInsert returns an insert action placing data under each located node.
func NewInsert(loc *query.Query, data string) *Action {
	return &Action{Type: ActionInsert, Location: loc, Data: data, Pos: -1}
}

// NewDelete returns a delete action for the located nodes.
func NewDelete(loc *query.Query) *Action { return &Action{Type: ActionDelete, Location: loc, Pos: -1} }

// NewReplace returns a replace action substituting data for each located
// node.
func NewReplace(loc *query.Query, data string) *Action {
	return &Action{Type: ActionReplace, Location: loc, Data: data, Pos: -1}
}

// Validate checks structural well-formedness of the action.
func (a *Action) Validate() error {
	switch a.Type {
	case ActionQuery:
		if a.Location == nil {
			return fmt.Errorf("axml: query action requires a location")
		}
	case ActionInsert:
		if a.Data == "" {
			return fmt.Errorf("axml: insert action requires data")
		}
		if a.Location == nil && (a.Doc == "" || a.ParentID == 0) {
			return fmt.Errorf("axml: insert action requires a location or doc+parent ID")
		}
	case ActionDelete:
		if a.Location == nil && (a.Doc == "" || a.TargetID == 0) {
			return fmt.Errorf("axml: delete action requires a location or doc+target ID")
		}
	case ActionReplace:
		if a.Data == "" {
			return fmt.Errorf("axml: replace action requires data")
		}
		if a.Location == nil && (a.Doc == "" || a.TargetID == 0) {
			return fmt.Errorf("axml: replace action requires a location or doc+target ID")
		}
	default:
		return fmt.Errorf("axml: invalid action type %d", a.Type)
	}
	return nil
}

// DocName returns the document the action targets.
func (a *Action) DocName() string {
	if a.Location != nil {
		return a.Location.Doc
	}
	return a.Doc
}

// XML serializes the action to its wire form:
//
//	<action type="delete" [doc=".." targetID=".." parentID=".." pos=".."]>
//	  <data>...</data>
//	  <location>Select ...;</location>
//	</action>
//
// ID addressing is an extension over the paper's surface syntax, needed to
// ship compensating operations between peers (peer-independent recovery).
func (a *Action) XML() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<action type=%q`, a.Type.String())
	if a.Doc != "" {
		fmt.Fprintf(&b, ` doc=%q`, a.Doc)
	}
	if a.TargetID != 0 {
		fmt.Fprintf(&b, ` targetID="%d"`, a.TargetID)
	}
	if a.ParentID != 0 {
		fmt.Fprintf(&b, ` parentID="%d"`, a.ParentID)
	}
	if a.Pos >= 0 {
		fmt.Fprintf(&b, ` pos="%d"`, a.Pos)
	}
	if a.RestoreID != 0 {
		fmt.Fprintf(&b, ` restoreID="%d"`, a.RestoreID)
	}
	b.WriteString(">")
	if a.Data != "" {
		b.WriteString("<data>")
		b.WriteString(a.Data)
		b.WriteString("</data>")
	}
	if a.Location != nil {
		b.WriteString("<location>")
		b.WriteString(escapeLocation(a.Location.String()))
		b.WriteString(";</location>")
	}
	b.WriteString("</action>")
	return b.String()
}

var locEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeLocation(s string) string { return locEscaper.Replace(s) }

// ParseAction parses the wire form produced by XML.
func ParseAction(src string) (*Action, error) {
	doc, err := xmldom.ParseString("action", src)
	if err != nil {
		return nil, fmt.Errorf("axml: parse action: %w", err)
	}
	return ActionFromNode(doc.Root())
}

// ActionFromNode builds an Action from a parsed <action> element.
func ActionFromNode(root *xmldom.Node) (*Action, error) {
	if root.Name() != "action" {
		return nil, fmt.Errorf("axml: expected <action>, got <%s>", root.Name())
	}
	t, err := ParseActionType(root.AttrDefault("type", ""))
	if err != nil {
		return nil, err
	}
	a := &Action{Type: t, Pos: -1, Doc: root.AttrDefault("doc", "")}
	if v, ok := root.Attr("targetID"); ok {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("axml: bad targetID %q", v)
		}
		a.TargetID = xmldom.NodeID(id)
	}
	if v, ok := root.Attr("parentID"); ok {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("axml: bad parentID %q", v)
		}
		a.ParentID = xmldom.NodeID(id)
	}
	if v, ok := root.Attr("pos"); ok {
		pos, err := strconv.Atoi(v)
		if err != nil || pos < 0 {
			return nil, fmt.Errorf("axml: bad pos %q", v)
		}
		a.Pos = pos
	}
	if v, ok := root.Attr("restoreID"); ok {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("axml: bad restoreID %q", v)
		}
		a.RestoreID = xmldom.NodeID(id)
	}
	if dataEl := root.FirstElement("data"); dataEl != nil {
		var parts []string
		for _, c := range dataEl.Children() {
			parts = append(parts, xmldom.MarshalString(c))
		}
		a.Data = strings.TrimSpace(strings.Join(parts, ""))
	}
	if locEl := root.FirstElement("location"); locEl != nil {
		q, err := query.Parse(query.CleanSource(locEl.TextContent()))
		if err != nil {
			return nil, fmt.Errorf("axml: parse location: %w", err)
		}
		a.Location = q
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
