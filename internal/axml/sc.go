// Package axml implements the ActiveXML document model: XML documents with
// embedded Web-service calls (<axml:sc> elements), materialization of those
// calls in lazy or eager mode, and the four AXML operations — query, insert,
// delete and replace — applied through an operation log so that every effect
// can be compensated dynamically.
package axml

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"axmltx/internal/xmldom"
)

// Element and attribute names of the AXML vocabulary.
const (
	ElemSC       = "axml:sc"
	ElemParams   = "axml:params"
	ElemParam    = "axml:param"
	ElemValue    = "axml:value"
	ElemCatch    = "axml:catch"
	ElemCatchAll = "axml:catchAll"
	ElemRetry    = "axml:retry"

	AttrMode       = "mode"
	AttrServiceNS  = "serviceNameSpace"
	AttrServiceURL = "serviceURL"
	AttrMethodName = "methodName"
	AttrFrequency  = "frequency"
	AttrName       = "name"
	AttrFaultName  = "faultName"
	AttrFaultVar   = "faultVariable"
	AttrRetryTimes = "times"
	AttrRetryWait  = "wait"
)

// Mode is a service call's result-combination mode.
type Mode uint8

const (
	// ModeReplace replaces the previous invocation results with the new
	// ones.
	ModeReplace Mode = iota + 1
	// ModeMerge appends the new results as siblings of the previous ones.
	ModeMerge
)

func (m Mode) String() string {
	if m == ModeMerge {
		return "merge"
	}
	return "replace"
}

// ParseMode maps the mode attribute value; unknown values default to
// replace, the AXML default.
func ParseMode(s string) Mode {
	if strings.EqualFold(s, "merge") {
		return ModeMerge
	}
	return ModeReplace
}

// ServiceCall is a view over an <axml:sc> element.
type ServiceCall struct {
	node *xmldom.Node
}

// AsServiceCall wraps n when it is an <axml:sc> element.
func AsServiceCall(n *xmldom.Node) (*ServiceCall, bool) {
	if n != nil && n.Kind() == xmldom.ElementNode && n.Name() == ElemSC {
		return &ServiceCall{node: n}, true
	}
	return nil, false
}

// Node returns the underlying element.
func (sc *ServiceCall) Node() *xmldom.Node { return sc.node }

// ID returns the underlying node's ID.
func (sc *ServiceCall) ID() xmldom.NodeID { return sc.node.ID() }

// Mode returns the result-combination mode.
func (sc *ServiceCall) Mode() Mode {
	return ParseMode(sc.node.AttrDefault(AttrMode, "replace"))
}

// Service returns the service name: methodName when present, otherwise
// serviceNameSpace (the paper's listings set both to the same value).
func (sc *ServiceCall) Service() string {
	if m, ok := sc.node.Attr(AttrMethodName); ok && m != "" {
		return m
	}
	return sc.node.AttrDefault(AttrServiceNS, "")
}

// URL returns the serviceURL attribute, which in this implementation names
// the peer hosting the service ("" means any provider known locally).
func (sc *ServiceCall) URL() string { return sc.node.AttrDefault(AttrServiceURL, "") }

// Frequency returns the periodic-invocation interval and whether one is
// declared. The attribute holds a Go duration string (e.g. "30s").
func (sc *ServiceCall) Frequency() (time.Duration, bool) {
	v, ok := sc.node.Attr(AttrFrequency)
	if !ok {
		return 0, false
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, false
	}
	return d, true
}

// Param is one service-call parameter. Either Value is a literal string, or
// Nested points to an embedded service call whose materialized result
// provides the value (the paper's "service call parameters may themselves be
// defined as service calls").
type Param struct {
	Name   string
	Value  string
	Nested *ServiceCall
}

// Params returns the declared parameters in document order.
func (sc *ServiceCall) Params() []Param {
	params := sc.node.FirstElement(ElemParams)
	if params == nil {
		return nil
	}
	var out []Param
	for _, p := range params.Elements() {
		if p.Name() != ElemParam {
			continue
		}
		param := Param{Name: p.AttrDefault(AttrName, "")}
		if v := p.FirstElement(ElemValue); v != nil {
			if nested, ok := AsServiceCall(v.FirstElement(ElemSC)); ok {
				param.Nested = nested
			} else {
				param.Value = v.TextContent()
			}
		} else if nested, ok := AsServiceCall(p.FirstElement(ElemSC)); ok {
			param.Nested = nested
		} else {
			param.Value = p.TextContent()
		}
		out = append(out, param)
	}
	return out
}

// Results returns the previous invocation results: the sc element's children
// that are not parameters or fault handlers.
func (sc *ServiceCall) Results() []*xmldom.Node {
	var out []*xmldom.Node
	for _, c := range sc.node.Elements() {
		switch c.Name() {
		case ElemParams, ElemCatch, ElemCatchAll, ElemRetry:
			continue
		}
		out = append(out, c)
	}
	return out
}

// ResultNames returns the distinct element names of existing results. Lazy
// evaluation uses them to decide whether a query could need this call.
func (sc *ServiceCall) ResultNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range sc.Results() {
		if !seen[r.Name()] {
			seen[r.Name()] = true
			out = append(out, r.Name())
		}
	}
	return out
}

// FaultHandler is a declared fault handler on a service call, on the lines
// of BPEL4WS catch blocks (§3.2). A handler matches a fault by name; an
// empty FaultName is a catchAll. Retry, when non-nil, asks the runtime to
// re-invoke the service (possibly on a replica) instead of aborting.
type FaultHandler struct {
	FaultName string
	FaultVar  string
	Retry     *RetrySpec
}

// RetrySpec mirrors <axml:retry times="" wait=""> with an optional
// alternative service call to use for the retry (the "replicated peer"
// option).
type RetrySpec struct {
	Times int
	Wait  time.Duration
	Alt   *ServiceCall
}

// Handlers returns the declared fault handlers in document order; catchAll
// handlers sort naturally after named ones only if written after them, as
// in BPEL.
func (sc *ServiceCall) Handlers() []FaultHandler {
	var out []FaultHandler
	for _, c := range sc.node.Elements() {
		switch c.Name() {
		case ElemCatch:
			out = append(out, FaultHandler{
				FaultName: c.AttrDefault(AttrFaultName, ""),
				FaultVar:  c.AttrDefault(AttrFaultVar, ""),
				Retry:     retryOf(c),
			})
		case ElemCatchAll:
			out = append(out, FaultHandler{Retry: retryOf(c)})
		}
	}
	return out
}

func retryOf(handler *xmldom.Node) *RetrySpec {
	r := handler.FirstElement(ElemRetry)
	if r == nil {
		return nil
	}
	times, err := strconv.Atoi(r.AttrDefault(AttrRetryTimes, "1"))
	if err != nil || times < 1 {
		times = 1
	}
	wait, err := time.ParseDuration(r.AttrDefault(AttrRetryWait, "0s"))
	if err != nil || wait < 0 {
		wait = 0
	}
	spec := &RetrySpec{Times: times, Wait: wait}
	if alt, ok := AsServiceCall(r.FirstElement(ElemSC)); ok {
		spec.Alt = alt
	}
	return spec
}

// HandlerFor returns the first handler matching faultName: a named match
// wins; otherwise the first catchAll applies. ok is false when no handler
// matches, in which case the fault propagates (backward recovery).
func (sc *ServiceCall) HandlerFor(faultName string) (FaultHandler, bool) {
	handlers := sc.Handlers()
	for _, h := range handlers {
		if h.FaultName != "" && h.FaultName == faultName {
			return h, true
		}
	}
	for _, h := range handlers {
		if h.FaultName == "" {
			return h, true
		}
	}
	return FaultHandler{}, false
}

// ServiceCalls returns every <axml:sc> element in the document, in document
// order, including calls nested inside parameters and results.
func ServiceCalls(doc *xmldom.Document) []*ServiceCall {
	var out []*ServiceCall
	if doc.Root() == nil {
		return nil
	}
	doc.Root().Walk(func(n *xmldom.Node) bool {
		if sc, ok := AsServiceCall(n); ok {
			out = append(out, sc)
		}
		return true
	})
	return out
}

// TopLevelServiceCalls returns the document's service calls that are not
// nested inside another call's parameters (those are materialized as part
// of evaluating the outer call) or fault handlers (those describe
// alternative invocations for recovery, not data to materialize).
func TopLevelServiceCalls(doc *xmldom.Document) []*ServiceCall {
	var out []*ServiceCall
	for _, sc := range ServiceCalls(doc) {
		if !insideParamsOrHandler(sc.node) {
			out = append(out, sc)
		}
	}
	return out
}

func insideParamsOrHandler(n *xmldom.Node) bool {
	for p := n.Parent(); p != nil; p = p.Parent() {
		switch p.Name() {
		case ElemParams, ElemCatch, ElemCatchAll, ElemRetry:
			return true
		}
	}
	return false
}

// NewServiceCall builds a detached <axml:sc> element in doc.
func NewServiceCall(doc *xmldom.Document, service string, mode Mode, params map[string]string) *ServiceCall {
	b := xmldom.Build(doc, ElemSC).
		Attr(AttrMode, mode.String()).
		Attr(AttrServiceNS, service).
		Attr(AttrMethodName, service)
	if len(params) > 0 {
		pb := b.Child(ElemParams)
		// Deterministic order for serialization stability.
		names := make([]string, 0, len(params))
		for k := range params {
			names = append(names, k)
		}
		sortStrings(names)
		for _, name := range names {
			pb.Child(ElemParam).Attr(AttrName, name).Leaf(ElemValue, params[name])
		}
	}
	sc, _ := AsServiceCall(b.Node())
	return sc
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Describe renders a one-line description for logs and errors.
func (sc *ServiceCall) Describe() string {
	return fmt.Sprintf("sc(%s mode=%s url=%q node=%d)", sc.Service(), sc.Mode(), sc.URL(), sc.ID())
}
