package axml

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"axmltx/internal/xmldom"
)

// Document persistence: AXML peers keep their repository as XML files on
// disk. SaveAll/LoadAll implement the peer's checkpoint: together with the
// durable operation log (wal.FileLog) and restart recovery
// (core.RecoverPending), a peer that crashes mid-transaction comes back
// with in-flight effects compensated.
//
// Files are written atomically (temp file + rename) so a crash during a
// checkpoint never leaves a torn document.

// idAttr carries an element's node ID through the checkpoint file. It uses
// a reserved attribute name that is stripped on load; IDs must survive the
// round trip because the operation log's compensation records address
// nodes by ID. Text-node IDs are not persisted — compensation only ever
// addresses elements (location queries match elements, and inserted
// fragment roots are elements).
const idAttr = "axml:nodeid"

// SaveAll checkpoints every document to dir as <name>.xml files with node
// IDs embedded.
func (s *Store) SaveAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("axml: save: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, doc := range s.docs {
		if err := saveDoc(dir, name, doc); err != nil {
			return err
		}
	}
	return nil
}

func saveDoc(dir, name string, doc *xmldom.Document) error {
	// Annotate a clone with node IDs; the live tree stays clean.
	cp := doc.Clone()
	if cp.Root() != nil {
		cp.Root().Walk(func(n *xmldom.Node) bool {
			if n.Kind() == xmldom.ElementNode {
				n.SetAttr(idAttr, fmt.Sprintf("%d", n.ID()))
			}
			return true
		})
	}
	path := filepath.Join(dir, sanitizeFileName(name))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("axml: save %s: %w", name, err)
	}
	if _, err := f.WriteString(xmldom.DocumentString(cp)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("axml: save %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("axml: save %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("axml: save %s: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("axml: save %s: %w", name, err)
	}
	return nil
}

// LoadAll reads every *.xml checkpoint in dir into the store, keyed by file
// name, restoring persisted node IDs. It returns the loaded document names.
func (s *Store) LoadAll(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("axml: load: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return names, fmt.Errorf("axml: load %s: %w", e.Name(), err)
		}
		doc, err := restoreDoc(e.Name(), string(raw))
		if err != nil {
			return names, err
		}
		s.Add(doc)
		names = append(names, e.Name())
	}
	return names, nil
}

// restoreDoc rebuilds a document from its checkpoint, re-establishing the
// persisted element IDs.
func restoreDoc(name, raw string) (*xmldom.Document, error) {
	parsed, err := xmldom.ParseString(name, raw)
	if err != nil {
		return nil, fmt.Errorf("axml: load %s: %w", name, err)
	}
	// First pass: the highest persisted ID bounds the allocator so fresh
	// (text) nodes never collide with elements restored later.
	var maxID uint64
	parsed.Root().Walk(func(n *xmldom.Node) bool {
		if v, ok := n.Attr(idAttr); ok {
			if id, err := strconv.ParseUint(v, 10, 64); err == nil && id > maxID {
				maxID = id
			}
		}
		return true
	})
	doc := xmldom.NewDocument(name)
	doc.EnsureNextID(xmldom.NodeID(maxID))
	root, err := rebuild(doc, parsed.Root(), name)
	if err != nil {
		return nil, err
	}
	if err := doc.SetRoot(root); err != nil {
		return nil, fmt.Errorf("axml: load %s: %w", name, err)
	}
	return doc, nil
}

func rebuild(doc *xmldom.Document, src *xmldom.Node, name string) (*xmldom.Node, error) {
	var n *xmldom.Node
	switch src.Kind() {
	case xmldom.ElementNode:
		if v, ok := src.Attr(idAttr); ok {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("axml: load %s: bad %s %q", name, idAttr, v)
			}
			n, err = doc.CreateElementWithID(src.Name(), xmldom.NodeID(id))
			if err != nil {
				return nil, fmt.Errorf("axml: load %s: %w", name, err)
			}
		} else {
			n = doc.CreateElement(src.Name())
		}
		for _, a := range src.Attrs() {
			if a.Name != idAttr {
				n.SetAttr(a.Name, a.Value)
			}
		}
		for _, c := range src.Children() {
			child, err := rebuild(doc, c, name)
			if err != nil {
				return nil, err
			}
			if err := doc.AppendChild(n, child); err != nil {
				return nil, fmt.Errorf("axml: load %s: %w", name, err)
			}
		}
	case xmldom.TextNode:
		n = doc.CreateText(src.Text())
	case xmldom.CommentNode:
		n = doc.CreateComment(src.Text())
	}
	return n, nil
}

// sanitizeFileName keeps checkpoint files inside dir: path separators in
// document names are flattened.
func sanitizeFileName(name string) string {
	name = strings.ReplaceAll(name, "/", "_")
	name = strings.ReplaceAll(name, string(filepath.Separator), "_")
	if name == "" || name == "." || name == ".." {
		name = "_doc.xml"
	}
	if !strings.HasSuffix(name, ".xml") {
		name += ".xml"
	}
	return name
}
