package axml

import "testing"

// FuzzParseAction guards the action wire-format parser: no panics, and
// every accepted action re-serializes to a parseable equivalent.
func FuzzParseAction(f *testing.F) {
	for _, seed := range []string{
		`<action type="delete"><location>Select p/citizenship from p in ATPList//player where p/name/lastname = Federer;</location></action>`,
		`<action type="insert"><data><citizenship>Swiss</citizenship></data><location>Select p from p in A//b;</location></action>`,
		`<action type="insert" doc="D.xml" parentID="7" pos="2" restoreID="9"><data><x/></data></action>`,
		`<action type="query"><location>Select p from p in D</location></action>`,
		`<action type="replace" doc="d" targetID="5"><data><x/></data></action>`,
		`<action/>`,
		`<action type="delete" targetID="-1"/>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := ParseAction(src)
		if err != nil {
			return
		}
		wire := a.XML()
		b, err := ParseAction(wire)
		if err != nil {
			t.Fatalf("re-parse of XML() failed: %q -> %q: %v", src, wire, err)
		}
		if b.Type != a.Type || b.TargetID != a.TargetID || b.ParentID != a.ParentID {
			t.Fatalf("wire round trip drifted: %+v vs %+v", a, b)
		}
	})
}
