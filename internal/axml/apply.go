package axml

import (
	"errors"
	"fmt"
	"time"

	"axmltx/internal/query"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Errors reported by Apply.
var (
	ErrNoSuchDocument = errors.New("axml: no such document")
	ErrNoTargets      = errors.New("axml: location matched no nodes")
	ErrNoSuchNode     = errors.New("axml: no node with that ID")
	ErrTargetNotElem  = errors.New("axml: target is not an element")
)

// Apply executes one action against the store under transaction txn,
// logging every structural effect so the operation can be compensated. mat
// may be nil, in which case queries evaluate without materialization (pure
// XML mode); mode selects lazy or eager materialization.
//
// Apply holds the store mutex for the whole operation, so an action is
// atomic with respect to other actions on this store.
func (s *Store) Apply(txn string, a *Action, mat Materializer, mode EvalMode) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if obs := s.applyObserver; obs != nil {
		start := time.Now()
		defer func() { obs(time.Since(start)) }()
	}
	doc, ok := s.lookup(a.DocName())
	if !ok {
		return nil, opError("apply", a, fmt.Errorf("%w: %q", ErrNoSuchDocument, a.DocName()))
	}
	res := &Result{}
	var err error
	switch a.Type {
	case ActionQuery:
		err = s.applyQuery(txn, doc, a, mat, mode, res)
	case ActionInsert:
		err = s.applyInsert(txn, doc, a, mat, mode, res)
	case ActionDelete:
		err = s.applyDelete(txn, doc, a, mat, mode, res)
	case ActionReplace:
		err = s.applyReplace(txn, doc, a, mat, mode, res)
	}
	if err != nil {
		return nil, opError("apply", a, err)
	}
	return res, nil
}

// locate resolves the action's target nodes: the location query's result
// nodes, or the directly addressed node. Location evaluation may itself
// materialize service calls (the paper: "The <location> query evaluation
// may involve service call materializations").
func (s *Store) locate(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) ([]*xmldom.Node, error) {
	if a.TargetID != 0 {
		n := doc.ByID(a.TargetID)
		if n == nil {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchNode, a.TargetID)
		}
		if n.Parent() == nil && n != doc.Root() {
			// Already detached (e.g. deleted by a later operation that was
			// compensated first); nothing to do.
			return nil, nil
		}
		return []*xmldom.Node{n}, nil
	}
	if err := s.materializeForQuery(txn, doc, a.Location, mat, mode, res); err != nil {
		return nil, err
	}
	qres, err := s.eval.Eval(doc, a.Location)
	if err != nil {
		return nil, err
	}
	return qres.Nodes(), nil
}

func (s *Store) applyQuery(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) error {
	if err := s.materializeForQuery(txn, doc, a.Location, mat, mode, res); err != nil {
		return err
	}
	qres, err := s.eval.Eval(doc, a.Location)
	if err != nil {
		return err
	}
	res.Query = qres
	res.AffectedNodes += len(qres.Items)
	return nil
}

func (s *Store) applyInsert(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) error {
	// Restoration path: re-attach the original detached subtree by ID so
	// compensation preserves node identity.
	if a.RestoreID != 0 {
		if n := doc.ByID(a.RestoreID); n != nil && n.Parent() == nil && n != doc.Root() {
			parent, pos, err := s.insertTarget(txn, doc, a, mat, mode, res)
			if err != nil {
				return err
			}
			if err := doc.InsertChild(parent, n, pos); err != nil {
				return err
			}
			s.logInsert(txn, doc, n, res)
			return nil
		}
		// Fall through: subtree unavailable, insert from Data.
	}
	targets, err := s.locateInsertParents(txn, doc, a, mat, mode, res)
	if err != nil {
		return err
	}
	for _, parent := range targets {
		if parent.Kind() != xmldom.ElementNode {
			return ErrTargetNotElem
		}
		frags, err := parseFragments(doc, a.Data)
		if err != nil {
			return err
		}
		pos := a.Pos
		if pos < 0 || pos > parent.ChildCount() {
			pos = parent.ChildCount()
		}
		for _, frag := range frags {
			if err := doc.InsertChild(parent, frag, pos); err != nil {
				return err
			}
			s.logInsert(txn, doc, frag, res)
			pos++
		}
	}
	return nil
}

// parseFragments parses data as a sequence of sibling elements.
func parseFragments(doc *xmldom.Document, data string) ([]*xmldom.Node, error) {
	wrapper, err := xmldom.ParseString("fragment", "<frag>"+data+"</frag>")
	if err != nil {
		return nil, err
	}
	children := wrapper.Root().Children()
	if len(children) == 0 {
		return nil, fmt.Errorf("axml: empty data fragment")
	}
	out := make([]*xmldom.Node, 0, len(children))
	for _, c := range children {
		out = append(out, doc.Adopt(c))
	}
	return out, nil
}

// insertTarget resolves the single insert parent/position for a restore
// insert.
func (s *Store) insertTarget(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) (*xmldom.Node, int, error) {
	parents, err := s.locateInsertParents(txn, doc, a, mat, mode, res)
	if err != nil {
		return nil, 0, err
	}
	parent := parents[0]
	pos := a.Pos
	if pos < 0 || pos > parent.ChildCount() {
		pos = parent.ChildCount()
	}
	return parent, pos, nil
}

func (s *Store) locateInsertParents(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) ([]*xmldom.Node, error) {
	if a.ParentID != 0 {
		n := doc.ByID(a.ParentID)
		if n == nil {
			return nil, fmt.Errorf("%w: parent %d", ErrNoSuchNode, a.ParentID)
		}
		return []*xmldom.Node{n}, nil
	}
	if err := s.materializeForQuery(txn, doc, a.Location, mat, mode, res); err != nil {
		return nil, err
	}
	qres, err := s.eval.Eval(doc, a.Location)
	if err != nil {
		return nil, err
	}
	nodes := qres.Nodes()
	if len(nodes) == 0 {
		return nil, ErrNoTargets
	}
	return nodes, nil
}

func (s *Store) applyDelete(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) error {
	targets, err := s.locate(txn, doc, a, mat, mode, res)
	if err != nil {
		return err
	}
	if len(targets) == 0 && a.TargetID == 0 {
		return ErrNoTargets
	}
	for _, n := range pruneNested(targets) {
		if n == doc.Root() {
			return fmt.Errorf("axml: refusing to delete the document root")
		}
		if err := s.deleteNode(txn, doc, n, res); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) applyReplace(txn string, doc *xmldom.Document, a *Action, mat Materializer, mode EvalMode, res *Result) error {
	targets, err := s.locate(txn, doc, a, mat, mode, res)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		if a.TargetID != 0 {
			return nil // already gone; replace of a compensated node
		}
		return ErrNoTargets
	}
	// Replace decomposes into delete + insert at the same position (§3.1).
	for _, n := range pruneNested(targets) {
		if n == doc.Root() {
			return fmt.Errorf("axml: refusing to replace the document root")
		}
		parent := n.Parent()
		pos := n.Index()
		if err := s.deleteNode(txn, doc, n, res); err != nil {
			return err
		}
		frags, err := parseFragments(doc, a.Data)
		if err != nil {
			return err
		}
		for _, frag := range frags {
			if err := doc.InsertChild(parent, frag, pos); err != nil {
				return err
			}
			s.logInsert(txn, doc, frag, res)
			pos++
		}
	}
	return nil
}

// deleteNode detaches n (keeping it indexed so compensation can restore it
// by ID) and logs the deletion with its full before-image.
func (s *Store) deleteNode(txn string, doc *xmldom.Document, n *xmldom.Node, res *Result) error {
	parent, pos, err := doc.Detach(n)
	if err != nil {
		return err
	}
	rec := &wal.Record{
		Txn:    txn,
		Type:   wal.TypeDelete,
		Doc:    doc.Name(),
		NodeID: uint64(n.ID()),
		Pos:    pos,
		XML:    xmldom.MarshalString(n),
	}
	if parent != nil {
		rec.ParentID = uint64(parent.ID())
	}
	lsn, lerr := s.log.Append(rec)
	if lerr != nil {
		return lerr
	}
	res.noteLSN(lsn)
	res.DeletedXML = append(res.DeletedXML, rec.XML)
	res.AffectedNodes += n.SubtreeSize()
	return nil
}

func (s *Store) logInsert(txn string, doc *xmldom.Document, n *xmldom.Node, res *Result) {
	rec := &wal.Record{
		Txn:      txn,
		Type:     wal.TypeInsert,
		Doc:      doc.Name(),
		NodeID:   uint64(n.ID()),
		ParentID: uint64(n.Parent().ID()),
		Pos:      n.Index(),
		XML:      xmldom.MarshalString(n),
	}
	if lsn, err := s.log.Append(rec); err == nil {
		res.noteLSN(lsn)
	}
	res.InsertedIDs = append(res.InsertedIDs, n.ID())
	res.AffectedNodes += n.SubtreeSize()
}

func (r *Result) noteLSN(lsn uint64) {
	if r.FirstLSN == 0 {
		r.FirstLSN = lsn
	}
	r.LastLSN = lsn
}

// pruneNested drops nodes whose ancestor is also in the set: deleting the
// ancestor already removes them, and detaching the ancestor first would
// make the descendant's own detach fail.
func pruneNested(nodes []*xmldom.Node) []*xmldom.Node {
	out := nodes[:0:0]
	for _, n := range nodes {
		covered := false
		for _, m := range nodes {
			if m != n && m.IsAncestorOf(n) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, n)
		}
	}
	return out
}

// MustApply is Apply that panics on error; for examples and benchmarks
// whose inputs are static.
func (s *Store) MustApply(txn string, a *Action, mat Materializer, mode EvalMode) *Result {
	res, err := s.Apply(txn, a, mat, mode)
	if err != nil {
		panic(err)
	}
	return res
}

// ParseQuery parses query source with CleanSource normalization; a
// convenience re-export so API users do not import internal/query directly.
func ParseQuery(src string) (*query.Query, error) {
	return query.Parse(query.CleanSource(src))
}
