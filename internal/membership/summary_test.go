package membership_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"axmltx/internal/membership"
	"axmltx/internal/p2p"
)

// summaries returns the origins node nd currently holds a summary for.
func summaryOrigins(g *membership.Gossip) map[p2p.PeerID]membership.PeerSummary {
	out := make(map[p2p.PeerID]membership.PeerSummary)
	for _, s := range g.Summaries() {
		out[s.Origin] = s
	}
	return out
}

// TestSummaryPropagation wires a source on every peer and checks that after
// convergence each peer holds every origin's payload, with per-origin
// versions that keep climbing as rounds pass (fresh captures replace stale
// ones).
func TestSummaryPropagation(t *testing.T) {
	_, nodes := buildCluster(4, quickCfg())
	ctx := context.Background()
	for _, nd := range nodes {
		id := nd.id
		nd.g.SetSummarySource(func() []byte { return []byte("payload-" + string(id)) })
	}
	tickAll(ctx, nodes, 12, nil)

	for _, nd := range nodes {
		got := summaryOrigins(nd.g)
		if len(got) != len(nodes) {
			t.Fatalf("%s holds %d summaries, want %d: %v", nd.id, len(got), len(nodes), got)
		}
		for _, other := range nodes {
			s, ok := got[other.id]
			if !ok {
				t.Fatalf("%s missing summary from %s", nd.id, other.id)
			}
			if want := "payload-" + string(other.id); string(s.Payload) != want {
				t.Errorf("%s summary from %s: payload %q, want %q", nd.id, other.id, s.Payload, want)
			}
			if s.Version == 0 {
				t.Errorf("%s summary from %s: version 0, want bumped", nd.id, other.id)
			}
		}
	}

	// Versions keep climbing: a later round's capture replaces the old one.
	before := summaryOrigins(nodes[0].g)[nodes[1].id].Version
	tickAll(ctx, nodes, 6, nil)
	after := summaryOrigins(nodes[0].g)[nodes[1].id].Version
	if after <= before {
		t.Errorf("version did not advance: %d -> %d", before, after)
	}
}

// TestSummaryCallbacksAndDeathDrop checks the wiring callbacks: OnSummary
// fires outside the lock for remote payloads, and a death verdict fires
// OnSummaryDrop and removes the dead origin's summary everywhere.
func TestSummaryCallbacksAndDeathDrop(t *testing.T) {
	net, nodes := buildCluster(3, quickCfg())
	ctx := context.Background()
	var mu sync.Mutex
	applied := make(map[p2p.PeerID]int)
	dropped := make(map[p2p.PeerID]int)
	for _, nd := range nodes {
		id := nd.id
		nd.g.SetSummarySource(func() []byte { return []byte("p-" + string(id)) })
	}
	obs := nodes[0]
	obs.g.OnSummary(func(s membership.PeerSummary) {
		mu.Lock()
		applied[s.Origin]++
		mu.Unlock()
	})
	obs.g.OnSummaryDrop(func(origin p2p.PeerID) {
		mu.Lock()
		dropped[origin]++
		mu.Unlock()
	})

	tickAll(ctx, nodes, 10, nil)
	mu.Lock()
	for _, other := range nodes[1:] {
		if applied[other.id] == 0 {
			t.Errorf("OnSummary never fired for %s", other.id)
		}
	}
	if applied[obs.id] != 0 {
		t.Errorf("OnSummary fired %d times for self", applied[obs.id])
	}
	mu.Unlock()

	// Disconnect the last peer; once declared dead its summary must drop.
	deadID := nodes[2].id
	net.Disconnect(deadID)
	skip := map[p2p.PeerID]bool{deadID: true}
	for r := 0; r < 40; r++ {
		tickAll(ctx, nodes, 1, skip)
		if _, ok := summaryOrigins(obs.g)[deadID]; !ok {
			break
		}
	}
	if _, ok := summaryOrigins(obs.g)[deadID]; ok {
		t.Fatalf("%s still holds the dead peer's summary", obs.id)
	}
	mu.Lock()
	if dropped[deadID] == 0 {
		t.Error("OnSummaryDrop never fired for the dead peer")
	}
	mu.Unlock()
	// A dead origin's late-arriving summary must not resurrect.
	tickAll(ctx, nodes, 4, skip)
	if _, ok := summaryOrigins(obs.g)[deadID]; ok {
		t.Error("dead peer's summary resurrected after drop")
	}
}

// TestSummaryDisabled checks SummaryEvery < 0 turns the piggyback off.
func TestSummaryDisabled(t *testing.T) {
	cfg := quickCfg()
	cfg.SummaryEvery = -1
	_, nodes := buildCluster(3, cfg)
	ctx := context.Background()
	for _, nd := range nodes {
		nd.g.SetSummarySource(func() []byte { return []byte("x") })
	}
	tickAll(ctx, nodes, 10, nil)
	for _, nd := range nodes {
		if got := nd.g.Summaries(); len(got) != 0 {
			t.Fatalf("%s holds %d summaries with the piggyback disabled", nd.id, len(got))
		}
	}
}

// TestSummaryTTLExpiry stops refreshing one origin's summary (without
// killing the peer — it keeps gossiping, its source just goes quiet) and
// checks the stale summary ages out everywhere after SummaryTTL.
func TestSummaryTTLExpiry(t *testing.T) {
	cfg := quickCfg()
	cfg.SummaryTTL = 50 * time.Millisecond
	_, nodes := buildCluster(3, cfg)
	ctx := context.Background()
	var quiet bool
	var mu sync.Mutex
	for _, nd := range nodes {
		id := nd.id
		isC := id == nodes[2].id
		nd.g.SetSummarySource(func() []byte {
			if isC {
				mu.Lock()
				q := quiet
				mu.Unlock()
				if q {
					return nil // source dried up: no new capture
				}
			}
			return []byte(fmt.Sprintf("p-%s-%d", id, time.Now().UnixNano()))
		})
	}
	tickAll(ctx, nodes, 8, nil)
	if _, ok := summaryOrigins(nodes[0].g)[nodes[2].id]; !ok {
		t.Fatal("summary never propagated before the quiet phase")
	}

	mu.Lock()
	quiet = true
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		tickAll(ctx, nodes, 1, nil)
		if _, ok := summaryOrigins(nodes[0].g)[nodes[2].id]; !ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := summaryOrigins(nodes[0].g)[nodes[2].id]; ok {
		t.Fatal("stale summary survived past SummaryTTL")
	}
	// The quiet peer itself is still alive and still holds the others'.
	if got := summaryOrigins(nodes[2].g); len(got) < 2 {
		t.Fatalf("quiet peer lost live summaries: %v", got)
	}
}
