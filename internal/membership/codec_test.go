package membership

import (
	"testing"
	"time"
)

func sampleSync() syncMsg {
	return syncMsg{
		From: "AP1",
		Members: []memberRecord{
			{ID: "AP1", State: int(StateAlive), Incarnation: 3, Addr: "127.0.0.1:9001"},
			{ID: "AP2", State: int(StateSuspect), Incarnation: 1},
		},
		Catalog: []CatalogEntry{
			{Origin: "AP1", Version: 4, Docs: []string{"a.xml"}, Services: []string{"svcA"},
				Announced: time.Unix(1700000000, 12345)},
			{Origin: "AP2", Version: 1}, // zero Announced
		},
	}
}

func syncEqual(a, b *syncMsg) bool {
	if a.From != b.From || len(a.Members) != len(b.Members) || len(a.Catalog) != len(b.Catalog) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.Catalog {
		x, y := a.Catalog[i], b.Catalog[i]
		if x.Origin != y.Origin || x.Version != y.Version || !x.Announced.Equal(y.Announced) {
			return false
		}
		if len(x.Docs) != len(y.Docs) || len(x.Services) != len(y.Services) {
			return false
		}
		for j := range x.Docs {
			if x.Docs[j] != y.Docs[j] {
				return false
			}
		}
		for j := range x.Services {
			if x.Services[j] != y.Services[j] {
				return false
			}
		}
	}
	return true
}

func TestSyncMsgBinaryRoundTrip(t *testing.T) {
	in := sampleSync()
	var out syncMsg
	if err := decode(encode(in), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !syncEqual(&in, &out) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
	if !out.Catalog[1].Announced.IsZero() {
		t.Fatal("zero Announced did not survive the round trip")
	}
}

func TestSyncMsgGobCompat(t *testing.T) {
	in := sampleSync()
	var out syncMsg
	if err := decode(encodeGob(in), &out); err != nil {
		t.Fatalf("decode gob: %v", err)
	}
	if !syncEqual(&in, &out) {
		t.Fatalf("gob compat mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestPingReqRoundTrip(t *testing.T) {
	var out pingReq
	if err := decode(encode(pingReq{Target: "AP7"}), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Target != "AP7" {
		t.Fatalf("Target = %q", out.Target)
	}
	out = pingReq{}
	if err := decode(encodeGob(pingReq{Target: "AP7"}), &out); err != nil || out.Target != "AP7" {
		t.Fatalf("gob compat: %v %q", err, out.Target)
	}
}

func TestGossipKindMismatch(t *testing.T) {
	var s syncMsg
	if err := decode(encode(pingReq{Target: "AP1"}), &s); err == nil {
		t.Fatal("pingReq payload decoded as syncMsg")
	}
}

func TestGossipTruncated(t *testing.T) {
	b := encode(sampleSync())
	for cut := 1; cut < len(b); cut += 7 {
		var s syncMsg
		if err := decode(b[:cut], &s); err == nil && cut < len(b) {
			t.Fatalf("truncated payload at %d decoded without error", cut)
		}
	}
}

// sampleSyncWithSummaries extends the sample with the v0x03 piggyback
// section.
func sampleSyncWithSummaries() syncMsg {
	m := sampleSync()
	m.Summaries = []PeerSummary{
		{Origin: "AP1", Version: 7, TakenUnixNano: 1700000000123, Payload: []byte{1, 2, 3}},
		{Origin: "AP2", Version: 1, TakenUnixNano: 1700000000456, Payload: []byte{0xff}},
	}
	return m
}

func TestSyncMsgSummariesRoundTrip(t *testing.T) {
	in := sampleSyncWithSummaries()
	var out syncMsg
	if err := decode(encode(in), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !syncEqual(&in, &out) {
		t.Fatalf("base fields differ:\n in %+v\nout %+v", in, out)
	}
	if len(out.Summaries) != len(in.Summaries) {
		t.Fatalf("summaries: got %d, want %d", len(out.Summaries), len(in.Summaries))
	}
	for i := range in.Summaries {
		a, b := in.Summaries[i], out.Summaries[i]
		if a.Origin != b.Origin || a.Version != b.Version || a.TakenUnixNano != b.TakenUnixNano {
			t.Errorf("summary %d header: got %+v, want %+v", i, b, a)
		}
		if string(a.Payload) != string(b.Payload) {
			t.Errorf("summary %d payload: got %v, want %v", i, b.Payload, a.Payload)
		}
	}
	// The decoded payload must be an independent copy, not a view into the
	// network buffer.
	blob := encode(in)
	var again syncMsg
	if err := decode(blob, &again); err != nil {
		t.Fatalf("decode: %v", err)
	}
	blob[len(blob)-1] ^= 0xff
	if string(again.Summaries[1].Payload) != string(in.Summaries[1].Payload) {
		t.Error("summary payload aliases the wire buffer")
	}
}

// TestSyncMsgLegacyVersionCompat pins rolling-upgrade behavior: 0x02
// (pre-summaries) and 0x03 (pre-fragment-ads) payloads from
// not-yet-upgraded peers still decode; the missing sections come back
// empty.
func TestSyncMsgLegacyVersionCompat(t *testing.T) {
	in := sampleSyncWithSummaries()
	if blob := encode(in); blob[0] != gossipVersion {
		t.Fatalf("encoder writes version 0x%02x, want 0x%02x", blob[0], gossipVersion)
	}

	v02 := encodeVersion(in, gossipVersionNoSummaries)
	var out02 syncMsg
	if err := decode(v02, &out02); err != nil {
		t.Fatalf("decode 0x02: %v", err)
	}
	base := sampleSync()
	if !syncEqual(&base, &out02) {
		t.Fatalf("0x02 decode differs:\n in %+v\nout %+v", base, out02)
	}
	if len(out02.Summaries) != 0 {
		t.Fatalf("0x02 decode produced %d summaries, want 0", len(out02.Summaries))
	}

	v03 := encodeVersion(in, gossipVersionSummaries)
	var out03 syncMsg
	if err := decode(v03, &out03); err != nil {
		t.Fatalf("decode 0x03: %v", err)
	}
	if !syncEqual(&base, &out03) {
		t.Fatalf("0x03 decode differs:\n in %+v\nout %+v", base, out03)
	}
	if len(out03.Summaries) != len(in.Summaries) {
		t.Fatalf("0x03 decode produced %d summaries, want %d", len(out03.Summaries), len(in.Summaries))
	}
	for i := range out03.Catalog {
		if len(out03.Catalog[i].Frags) != 0 {
			t.Fatalf("0x03 decode produced fragment ads: %+v", out03.Catalog[i].Frags)
		}
	}
}

// TestSyncMsgFragAdsRoundTrip covers the v0x04 fragment-advertisement
// section of catalog entries.
func TestSyncMsgFragAdsRoundTrip(t *testing.T) {
	in := sampleSync()
	in.Catalog[0].Frags = []FragAd{
		{ID: "league#7", Doc: "league", Nodes: 12, Version: 3},
		{ID: "league#spine", Doc: "league", Spine: true},
	}
	var out syncMsg
	if err := decode(encode(in), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Catalog) == 0 || len(out.Catalog[0].Frags) != 2 {
		t.Fatalf("frag ads did not round-trip: %+v", out.Catalog)
	}
	for i, want := range in.Catalog[0].Frags {
		if got := out.Catalog[0].Frags[i]; got != want {
			t.Errorf("frag ad %d: got %+v, want %+v", i, got, want)
		}
	}
}
