package membership

import (
	"fmt"
	"time"

	"axmltx/internal/codec"
	"axmltx/internal/p2p"
)

// Gossip payloads use the shared binary wire format: version byte, kind
// tag, varint-framed fields. Sync exchanges are the membership layer's hot
// path — every round ships the full member list and catalog both ways — so
// they get the same zero-copy treatment as the core protocol messages. A
// first byte outside the reserved 0x01..0x07 range is a legacy gob payload
// (gob type-descriptor lengths are always larger) and decodes through the
// old path.
// Version 0x03 appended the metric-summary piggyback section to sync
// messages; version 0x04 appended the fragment-advertisement section to
// catalog entries. Payloads from not-yet-upgraded peers (0x02: no
// summaries; 0x03: no fragment ads) still decode, so a mixed-version
// cluster keeps gossiping through a rolling upgrade — the older peers
// simply contribute no summaries or fragment ads.
const (
	gossipVersionNoSummaries = 0x02
	gossipVersionSummaries   = 0x03
	gossipVersion            = 0x04
	gossipVersionMax         = 0x07
)

const (
	gkSync byte = iota + 1
	gkPingReq
)

func encode(v any) []byte {
	return encodeVersion(v, gossipVersion)
}

// encodeVersion emits the wire format of an older protocol version —
// exercised by the rolling-upgrade compat tests; production traffic always
// encodes at gossipVersion.
func encodeVersion(v any, version byte) []byte {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Byte(version)
	switch m := v.(type) {
	case syncMsg:
		w.Byte(gkSync)
		w.String(string(m.From))
		w.Uvarint(uint64(len(m.Members)))
		for _, r := range m.Members {
			w.String(string(r.ID))
			w.Varint(int64(r.State))
			w.Uvarint(r.Incarnation)
			w.String(r.Addr)
		}
		w.Uvarint(uint64(len(m.Catalog)))
		for i := range m.Catalog {
			appendCatalogEntry(w, &m.Catalog[i], version)
		}
		if version >= gossipVersionSummaries {
			w.Uvarint(uint64(len(m.Summaries)))
			for _, s := range m.Summaries {
				w.String(string(s.Origin))
				w.Uvarint(s.Version)
				w.Varint(s.TakenUnixNano)
				w.BytesPrefixed(s.Payload)
			}
		}
	case pingReq:
		w.Byte(gkPingReq)
		w.String(string(m.Target))
	default:
		panic(fmt.Sprintf("membership: encode: unknown gossip type %T", v))
	}
	return w.Finish()
}

func decode(b []byte, v any) error {
	if len(b) > 0 && b[0] >= 0x01 && b[0] <= gossipVersionMax {
		if b[0] != gossipVersion && b[0] != gossipVersionSummaries && b[0] != gossipVersionNoSummaries {
			return fmt.Errorf("membership: unsupported gossip version %d", b[0])
		}
		return decodeBinary(b[0], b[1:], v)
	}
	return decodeGob(b, v)
}

func decodeBinary(version byte, b []byte, v any) error {
	r := codec.NewReader(b)
	kind := r.Byte()
	var want byte
	switch m := v.(type) {
	case *syncMsg:
		want = gkSync
		if kind == want {
			m.From = p2p.PeerID(r.String())
			n := r.Count(4)
			for i := 0; i < n && r.Err() == nil; i++ {
				m.Members = append(m.Members, memberRecord{
					ID:          p2p.PeerID(r.String()),
					State:       int(r.Varint()),
					Incarnation: r.Uvarint(),
					Addr:        r.String(),
				})
			}
			n = r.Count(5)
			for i := 0; i < n && r.Err() == nil; i++ {
				var e CatalogEntry
				readCatalogEntry(r, &e, version)
				m.Catalog = append(m.Catalog, e)
			}
			if version >= gossipVersionSummaries {
				n = r.Count(4) // origin + version + taken + payload prefix
				for i := 0; i < n && r.Err() == nil; i++ {
					s := PeerSummary{
						Origin:        p2p.PeerID(r.String()),
						Version:       r.Uvarint(),
						TakenUnixNano: r.Varint(),
					}
					if p := r.BytesPrefixed(); len(p) > 0 {
						s.Payload = append([]byte(nil), p...)
					}
					m.Summaries = append(m.Summaries, s)
				}
			}
		}
	case *pingReq:
		want = gkPingReq
		if kind == want {
			m.Target = p2p.PeerID(r.String())
		}
	default:
		return fmt.Errorf("membership: decode: unknown gossip type %T", v)
	}
	if r.Err() == nil && kind != want {
		return fmt.Errorf("membership: decode %T: payload has kind tag %d, want %d", v, kind, want)
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("membership: decode %T: %w", v, err)
	}
	return nil
}

// appendCatalogEntry encodes one advertisement. Announced travels as
// UnixNano behind a presence flag, so the zero time (no announcement yet)
// round-trips as zero and IsZero keeps working on the receiving side.
func appendCatalogEntry(w *codec.Writer, e *CatalogEntry, version byte) {
	w.String(string(e.Origin))
	w.Uvarint(e.Version)
	w.Strings(e.Docs)
	w.Strings(e.Services)
	if e.Announced.IsZero() {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Varint(e.Announced.UnixNano())
	}
	w.Uvarint(uint64(len(e.Calls)))
	for _, ad := range e.Calls {
		w.String(ad.Key)
		w.String(ad.Service)
		w.Bool(ad.Inflight)
		w.Varint(ad.FetchedUnixNano)
		w.Varint(ad.WindowNanos)
	}
	if version >= gossipVersion {
		w.Uvarint(uint64(len(e.Frags)))
		for _, ad := range e.Frags {
			w.String(ad.ID)
			w.String(ad.Doc)
			w.Varint(int64(ad.Nodes))
			w.Uvarint(ad.Version)
			w.Bool(ad.Spine)
		}
	}
}

func readCatalogEntry(r *codec.Reader, e *CatalogEntry, version byte) {
	e.Origin = p2p.PeerID(r.String())
	e.Version = r.Uvarint()
	e.Docs = r.Strings()
	e.Services = r.Strings()
	if r.Bool() {
		e.Announced = time.Unix(0, r.Varint())
	}
	n := r.Count(5) // minimal ad: 2 empty strings + flag + 2 varints
	for i := 0; i < n && r.Err() == nil; i++ {
		e.Calls = append(e.Calls, CallAd{
			Key:             r.String(),
			Service:         r.String(),
			Inflight:        r.Bool(),
			FetchedUnixNano: r.Varint(),
			WindowNanos:     r.Varint(),
		})
	}
	if version >= gossipVersion {
		n = r.Count(5) // minimal ad: 2 empty strings + 2 varints + flag
		for i := 0; i < n && r.Err() == nil; i++ {
			e.Frags = append(e.Frags, FragAd{
				ID:      r.String(),
				Doc:     r.String(),
				Nodes:   int(r.Varint()),
				Version: r.Uvarint(),
				Spine:   r.Bool(),
			})
		}
	}
}
