package membership_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/membership"
	"axmltx/internal/p2p"
	"axmltx/internal/replication"
)

// node bundles one peer's gossip stack for tests.
type node struct {
	id    p2p.PeerID
	g     *membership.Gossip
	tbl   *replication.Table
	downs atomic.Int64
}

// buildCluster wires n peers over an in-memory network, each hosting one
// document ("D<id>") and one service ("S<id>"), seeded in a ring.
func buildCluster(n int, cfg membership.Config) (*p2p.Network, []*node) {
	net := p2p.NewNetwork(0)
	ids := make([]p2p.PeerID, n)
	for i := range ids {
		ids[i] = p2p.PeerID('A' + rune(i))
	}
	nodes := make([]*node, n)
	for i, id := range ids {
		t := net.Join(id)
		c := cfg
		c.Seeds = []p2p.PeerID{ids[(i+1)%n]}
		g := membership.New(t, c)
		nd := &node{id: id, g: g, tbl: replication.New()}
		g.SetTable(nd.tbl)
		g.OnDown(func(p2p.PeerID) { nd.downs.Add(1) })
		t.SetHandler(p2p.AnswerPings(g.Intercept(nil)))
		g.AnnounceDocument("D" + string(id))
		g.AnnounceService("S" + string(id))
		nodes[i] = nd
	}
	return net, nodes
}

func tickAll(ctx context.Context, nodes []*node, rounds int, skip map[p2p.PeerID]bool) {
	for r := 0; r < rounds; r++ {
		for _, nd := range nodes {
			if skip[nd.id] {
				continue
			}
			nd.g.Tick(ctx)
		}
	}
}

func quickCfg() membership.Config {
	return membership.Config{
		ProbeInterval:  20 * time.Millisecond,
		SuspectRounds:  2,
		IndirectProbes: 2,
		Fanout:         2,
	}
}

func TestConvergenceAndCatalogPruning(t *testing.T) {
	ctx := context.Background()
	_, nodes := buildCluster(5, quickCfg())

	converged := func() bool {
		for _, nd := range nodes {
			if len(nd.g.CatalogSnapshot()) != len(nodes) {
				return false
			}
			for _, m := range nd.g.Members() {
				if m.State != "alive" {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 40 && !converged(); i++ {
		tickAll(ctx, nodes, 1, nil)
	}
	if !converged() {
		t.Fatalf("cluster did not converge: %+v", nodes[0].g.Info())
	}
	// Every table must know every placement.
	for _, nd := range nodes {
		for _, other := range nodes {
			if got := nd.tbl.DocumentReplicas("D" + string(other.id)); len(got) != 1 || got[0] != other.id {
				t.Fatalf("peer %s: document D%s replicas = %v", nd.id, other.id, got)
			}
			if _, ok := nd.tbl.Alternative("S" + string(other.id)); !ok {
				t.Fatalf("peer %s: no provider for S%s", nd.id, other.id)
			}
		}
	}

	// Withdrawal bumps the version and prunes remote tables.
	nodes[0].g.WithdrawDocument("D" + string(nodes[0].id))
	tickAll(ctx, nodes, 10, nil)
	for _, nd := range nodes {
		if got := nd.tbl.DocumentReplicas("D" + string(nodes[0].id)); len(got) != 0 {
			t.Fatalf("peer %s still sees withdrawn doc: %v", nd.id, got)
		}
	}
}

func TestFailureDetectionPrunesCatalog(t *testing.T) {
	ctx := context.Background()
	net, nodes := buildCluster(4, quickCfg())
	tickAll(ctx, nodes, 20, nil)

	victim := nodes[len(nodes)-1]
	net.Disconnect(victim.id)
	skip := map[p2p.PeerID]bool{victim.id: true}
	deadEverywhere := func() bool {
		for _, nd := range nodes {
			if nd.id == victim.id {
				continue
			}
			if st, _ := nd.g.StateOf(victim.id); st != membership.StateDead {
				return false
			}
		}
		return true
	}
	for i := 0; i < 60 && !deadEverywhere(); i++ {
		tickAll(ctx, nodes, 1, skip)
	}
	if !deadEverywhere() {
		t.Fatalf("victim %s not declared dead everywhere", victim.id)
	}
	for _, nd := range nodes {
		if nd.id == victim.id {
			continue
		}
		if nd.downs.Load() != 1 {
			t.Fatalf("peer %s: OnDown fired %d times, want 1", nd.id, nd.downs.Load())
		}
		if got := nd.tbl.DocumentReplicas("D" + string(victim.id)); len(got) != 0 {
			t.Fatalf("peer %s still lists dead peer's doc: %v", nd.id, got)
		}
		if alt, ok := nd.tbl.Alternative("S" + string(victim.id)); ok {
			t.Fatalf("peer %s: Alternative returned dead peer %s", nd.id, alt)
		}
	}
}

func TestFalseSuspicionHealsWithoutDeath(t *testing.T) {
	ctx := context.Background()
	cfg := quickCfg()
	cfg.SuspectRounds = 50 // suspicion must not expire during the test
	net, nodes := buildCluster(3, cfg)
	tickAll(ctx, nodes, 15, nil)

	victim := nodes[1]
	// Isolate the victim: direct and indirect probes both fail.
	for _, nd := range nodes {
		if nd.id != victim.id {
			net.BlockLink(nd.id, victim.id)
		}
	}
	skip := map[p2p.PeerID]bool{victim.id: true}
	suspected := func() bool {
		for _, nd := range nodes {
			if nd.id == victim.id {
				continue
			}
			if st, _ := nd.g.StateOf(victim.id); st != membership.StateSuspect {
				return false
			}
		}
		return true
	}
	for i := 0; i < 30 && !suspected(); i++ {
		tickAll(ctx, nodes, 1, skip)
	}
	if !suspected() {
		t.Fatal("victim never suspected")
	}

	// Heal. The victim's next exchanges carry the suspicion back to it; it
	// refutes with a higher incarnation and everyone re-marks it alive.
	for _, nd := range nodes {
		if nd.id != victim.id {
			net.UnblockLink(nd.id, victim.id)
		}
	}
	healed := func() bool {
		for _, nd := range nodes {
			for _, m := range nd.g.Members() {
				if m.State != "alive" {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 40 && !healed(); i++ {
		tickAll(ctx, nodes, 1, nil)
	}
	if !healed() {
		t.Fatalf("suspicion never healed: %+v", nodes[0].g.Members())
	}
	if inc := victim.g.Info().Incarnation; inc == 0 {
		t.Fatal("victim never refuted (incarnation still 0)")
	}
	for _, nd := range nodes {
		if nd.downs.Load() != 0 {
			t.Fatalf("peer %s: OnDown fired on a false suspicion", nd.id)
		}
		// Catalog must be intact: the victim's placements never pruned.
		if got := nd.tbl.DocumentReplicas("D" + string(victim.id)); len(got) != 1 {
			t.Fatalf("peer %s lost victim's doc during false suspicion: %v", nd.id, got)
		}
	}
}

func TestScorerRanksByLivenessAndRTT(t *testing.T) {
	ctx := context.Background()
	net, nodes := buildCluster(4, quickCfg())
	tickAll(ctx, nodes, 20, nil)

	observer := nodes[0]
	// All four peers provide a shared service.
	for _, nd := range nodes {
		nd.g.AnnounceService("Shared")
	}
	tickAll(ctx, nodes, 10, nil)

	// Probe round-trips already feed the RTT EWMA (microseconds on the
	// in-memory network); drown the other providers in slow samples so the
	// last peer is unambiguously fastest.
	fast := nodes[3].id
	for i := 0; i < 20; i++ {
		observer.g.ObserveRTT(nodes[1].id, 80*time.Millisecond)
		observer.g.ObserveRTT(nodes[2].id, 60*time.Millisecond)
	}
	alt, ok := observer.tbl.Alternative("Shared", observer.id)
	if !ok || alt != fast {
		t.Fatalf("Alternative = %v,%v; want fastest peer %s", alt, ok, fast)
	}

	// Kill the fast peer: detection must re-rank to a live provider.
	net.Disconnect(fast)
	skip := map[p2p.PeerID]bool{fast: true}
	for i := 0; i < 60; i++ {
		tickAll(ctx, nodes, 1, skip)
		if st, _ := observer.g.StateOf(fast); st == membership.StateDead {
			break
		}
	}
	if st, _ := observer.g.StateOf(fast); st != membership.StateDead {
		t.Fatal("fast peer never declared dead")
	}
	alt, ok = observer.tbl.Alternative("Shared", observer.id)
	if !ok || alt == fast {
		t.Fatalf("Alternative after death = %v,%v; must avoid dead peer", alt, ok)
	}
}

// TestFragmentAdConvergence covers the fragment-advertisement gossip path:
// announce propagates to every peer's catalog and replication table, a
// higher-version announcement from a migration destination outranks the
// source, and withdrawal prunes everywhere.
func TestFragmentAdConvergence(t *testing.T) {
	ctx := context.Background()
	_, nodes := buildCluster(4, quickCfg())
	tickAll(ctx, nodes, 20, nil)

	a, b, c := nodes[0], nodes[1], nodes[2]
	a.g.AnnounceFragment(membership.FragAd{ID: "doc#5", Doc: "doc", Nodes: 10, Version: 1})
	a.g.AnnounceFragment(membership.FragAd{ID: "doc#spine", Doc: "doc", Spine: true})

	sees := func(nd *node, owners ...p2p.PeerID) bool {
		got := nd.g.FragmentOwners("doc#5")
		if len(got) != len(owners) {
			return false
		}
		for i := range owners {
			if got[i] != owners[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < 40 && !(sees(b, a.id) && sees(c, a.id)); i++ {
		tickAll(ctx, nodes, 1, nil)
	}
	if !sees(c, a.id) {
		t.Fatalf("fragment ad did not converge: owners=%v", c.g.FragmentOwners("doc#5"))
	}
	frags, spine := c.g.DocumentFragments("doc")
	if len(frags) != 1 || frags[0].ID != "doc#5" || frags[0].Version != 1 {
		t.Fatalf("DocumentFragments frags = %+v", frags)
	}
	if len(spine) != 1 || spine[0] != a.id {
		t.Fatalf("DocumentFragments spine holders = %v", spine)
	}
	if got := c.tbl.FragmentHolders("doc#5"); len(got) != 1 || got[0] != a.id {
		t.Fatalf("table fragment holders = %v", got)
	}

	// Migration handoff: destination announces version+1, so readers racing
	// the handoff prefer it even while the source still advertises.
	b.g.AnnounceFragment(membership.FragAd{ID: "doc#5", Doc: "doc", Nodes: 10, Version: 2})
	for i := 0; i < 40 && !sees(c, b.id, a.id); i++ {
		tickAll(ctx, nodes, 1, nil)
	}
	if !sees(c, b.id, a.id) {
		t.Fatalf("destination not preferred: owners=%v", c.g.FragmentOwners("doc#5"))
	}
	if frags, _ := c.g.DocumentFragments("doc"); len(frags) != 1 || frags[0].Version != 2 {
		t.Fatalf("DocumentFragments did not keep highest version: %+v", frags)
	}

	// Source withdraws after the handoff commits.
	a.g.WithdrawFragment("doc#5")
	for i := 0; i < 40 && !sees(c, b.id); i++ {
		tickAll(ctx, nodes, 1, nil)
	}
	if !sees(c, b.id) {
		t.Fatalf("withdrawal did not prune: owners=%v", c.g.FragmentOwners("doc#5"))
	}
	if got := c.tbl.FragmentHolders("doc#5"); len(got) != 1 || got[0] != b.id {
		t.Fatalf("table holders after withdrawal = %v", got)
	}
}
