package membership

import (
	"bytes"
	"encoding/gob"
	"sort"
	"time"

	"axmltx/internal/p2p"
)

// Gossip message subjects carried on p2p.KindGossip.
const (
	// subjectSync is a push-pull anti-entropy exchange: the request carries
	// the sender's full member list + catalog, the response the receiver's.
	subjectSync = "sync"
	// subjectPingReq asks a helper to probe a third peer (SWIM indirect
	// probe); subjectPingAck answers it, with Err set on failure.
	subjectPingReq = "ping-req"
	subjectPingAck = "ping-ack"
)

// CatalogEntry is one origin peer's advertisement of what it hosts. The
// origin is the entry's single writer: it bumps Version on every change,
// and reconciliation keeps, per origin, the highest version seen — no
// vector clocks needed.
type CatalogEntry struct {
	Origin   p2p.PeerID `json:"origin"`
	Version  uint64     `json:"version"`
	Docs     []string   `json:"docs,omitempty"`
	Services []string   `json:"services,omitempty"`
	// Announced is the origin's wall-clock time of the last change; the
	// convergence histogram measures receipt time minus Announced.
	Announced time.Time `json:"announced"`
	// Calls are the origin's materialization-cache advertisements: cached
	// (or in-flight) service-call results other peers may fetch instead of
	// re-invoking upstream (KindCacheFetch in core).
	Calls []CallAd `json:"calls,omitempty"`
	// Frags are the origin's document-fragment holdings: subtree fragments
	// of sharded documents (internal/axml) other peers fetch over
	// KindFragFetch during assembly. Migration moves a fragment between
	// origins by announcing at the destination and withdrawing at the
	// source, each under its own per-origin version bump.
	Frags []FragAd `json:"frags,omitempty"`
}

// FragAd advertises one document fragment held by the origin of its
// CatalogEntry.
type FragAd struct {
	// ID is the fragment ID ("<doc>#<root node ID>", internal/axml).
	ID string `json:"id"`
	// Doc names the sharded document the fragment belongs to, so an
	// assembler can enumerate a document's fragments from the catalog.
	Doc string `json:"doc"`
	// Nodes is the fragment's subtree size, for placement weighing.
	Nodes int `json:"nodes,omitempty"`
	// Version is the fragment content/handoff version. A migration ships
	// Version+1 to the destination; readers racing the handoff prefer the
	// highest advertised version, so they never prefer the source's stale
	// copy once the destination's ad has spread.
	Version uint64 `json:"fragver,omitempty"`
	// Spine marks the origin as holding the document's spine (the sharded
	// document minus its fragments); assembly starts at a spine holder.
	Spine bool `json:"spine,omitempty"`
}

// CallAd advertises one materialization-cache entry (or in-flight upstream
// invocation) held by the origin of its CatalogEntry. Keys are the semantic
// cache keys core derives from (service, canonicalized params, freshness
// window); peers holding a gossip-learned ad fetch the cached result from
// its owner rather than invoking the upstream service again.
type CallAd struct {
	// Key is the semantic cache key.
	Key string `json:"key"`
	// Service names the advertised service (diagnostics only; the key is
	// authoritative).
	Service string `json:"service"`
	// Inflight marks an upstream invocation still in progress: the owner is
	// the cluster-wide dedupe leader for Key and a fetch will block briefly
	// until the result lands.
	Inflight bool `json:"inflight,omitempty"`
	// FetchedUnixNano is when the owner's upstream invocation completed
	// (zero while Inflight).
	FetchedUnixNano int64 `json:"fetched,omitempty"`
	// WindowNanos is the freshness window the result was cached under.
	WindowNanos int64 `json:"window,omitempty"`
}

// fresh reports whether a completed ad is still within its freshness window
// at time now.
func (a CallAd) fresh(now time.Time) bool {
	if a.Inflight || a.FetchedUnixNano == 0 || a.WindowNanos <= 0 {
		return false
	}
	return now.Sub(time.Unix(0, a.FetchedUnixNano)) <= time.Duration(a.WindowNanos)
}

// memberRecord is the wire form of one membership row.
type memberRecord struct {
	ID          p2p.PeerID
	State       int
	Incarnation uint64
	Addr        string
}

// PeerSummary is one origin's metric-summary advertisement, piggybacked on
// sync exchanges for the cluster observability plane (internal/obs/cluster).
// Membership treats Payload as opaque bytes — it versions, relays and
// expires summaries without depending on their encoding. Like catalog
// entries, the origin is the single writer: it bumps Version on every
// refresh and reconciliation keeps the highest version per origin.
type PeerSummary struct {
	Origin        p2p.PeerID `json:"origin"`
	Version       uint64     `json:"version"`
	TakenUnixNano int64      `json:"taken_unix_nano"`
	Payload       []byte     `json:"-"`
}

// storedSummary pairs a received summary with the local receipt time that
// drives SummaryTTL expiry (origin clocks are not trusted for expiry).
type storedSummary struct {
	PeerSummary
	received time.Time
}

// syncMsg is the full push-pull payload (request and response alike).
type syncMsg struct {
	From      p2p.PeerID
	Members   []memberRecord
	Catalog   []CatalogEntry
	Summaries []PeerSummary
}

// pingReq asks the receiver to probe Target on the sender's behalf.
type pingReq struct {
	Target p2p.PeerID
}

// encodeGob is the legacy gossip encoding, kept so mixed-version
// deployments keep exchanging sync messages during a rolling upgrade (the
// current decode accepts both formats; see codec.go).
func encodeGob(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic("membership: gob encode: " + err.Error())
	}
	return buf.Bytes()
}

func decodeGob(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// AnnounceDocument advertises that this peer hosts a replica of doc. The
// local table (when bound) learns it immediately; remote peers learn it on
// the next sync exchange.
func (g *Gossip) AnnounceDocument(doc string) {
	g.mu.Lock()
	if !g.selfDocs[doc] {
		g.selfDocs[doc] = true
		g.selfVersion++
		g.selfAnnounced = g.now()
	}
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.AddDocument(doc, g.self)
	}
}

// AnnounceService advertises that this peer provides svc.
func (g *Gossip) AnnounceService(svc string) {
	g.mu.Lock()
	if !g.selfSvcs[svc] {
		g.selfSvcs[svc] = true
		g.selfVersion++
		g.selfAnnounced = g.now()
	}
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.AddService(svc, g.self)
	}
}

// WithdrawDocument stops advertising a document replica; remote tables
// prune it via the version bump on the next exchange.
func (g *Gossip) WithdrawDocument(doc string) {
	g.mu.Lock()
	if g.selfDocs[doc] {
		delete(g.selfDocs, doc)
		g.selfVersion++
		g.selfAnnounced = g.now()
	}
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.RemoveDocument(doc, g.self)
	}
}

// WithdrawService stops advertising a service.
func (g *Gossip) WithdrawService(svc string) {
	g.mu.Lock()
	if g.selfSvcs[svc] {
		delete(g.selfSvcs, svc)
		g.selfVersion++
		g.selfAnnounced = g.now()
	}
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.RemoveService(svc, g.self)
	}
}

// AnnounceCall advertises a completed materialization-cache entry: this
// peer holds the result for Key, fetched at the given time and fresh for
// window. Remote peers learn it on the next sync exchange and may fetch it
// via KindCacheFetch instead of re-invoking upstream.
func (g *Gossip) AnnounceCall(key, service string, fetched time.Time, window time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.selfCalls[key] = CallAd{
		Key: key, Service: service,
		FetchedUnixNano: fetched.UnixNano(), WindowNanos: int64(window),
	}
	g.selfVersion++
	g.selfAnnounced = g.now()
}

// AnnounceCallInflight advertises that this peer is the dedupe leader for an
// upstream invocation currently in progress: peers about to invoke the same
// key can wait on a fetch from here instead of duplicating the call.
func (g *Gossip) AnnounceCallInflight(key, service string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ad, ok := g.selfCalls[key]; ok && !ad.Inflight {
		// A completed result is already advertised; don't regress it to
		// in-flight (the refresh will overwrite it on completion).
		return
	}
	g.selfCalls[key] = CallAd{Key: key, Service: service, Inflight: true}
	g.selfVersion++
	g.selfAnnounced = g.now()
}

// WithdrawCall stops advertising a cache entry (evicted, invalidated by a
// write or compensation, or the in-flight invocation failed).
func (g *Gossip) WithdrawCall(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.selfCalls[key]; !ok {
		return
	}
	delete(g.selfCalls, key)
	g.selfVersion++
	g.selfAnnounced = g.now()
}

// AnnounceFragment advertises that this peer holds a document fragment
// (replacing any previous ad for the same ID). The local table learns it
// immediately; remote peers learn it on the next sync exchange.
func (g *Gossip) AnnounceFragment(ad FragAd) {
	g.mu.Lock()
	g.selfFrags[ad.ID] = ad
	g.selfVersion++
	g.selfAnnounced = g.now()
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.AddFragment(ad.ID, g.self)
	}
}

// WithdrawFragment stops advertising a fragment (it migrated away).
func (g *Gossip) WithdrawFragment(id string) {
	g.mu.Lock()
	if _, ok := g.selfFrags[id]; !ok {
		g.mu.Unlock()
		return
	}
	delete(g.selfFrags, id)
	g.selfVersion++
	g.selfAnnounced = g.now()
	tbl := g.table
	g.mu.Unlock()
	if tbl != nil {
		tbl.RemoveFragment(id, g.self)
	}
}

// FragmentOwners returns the live peers (self excluded) advertising the
// named fragment, highest advertised version first so a reader racing a
// migration prefers the handoff destination; ties break by peer ID.
func (g *Gossip) FragmentOwners(id string) []p2p.PeerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	type cand struct {
		id  p2p.PeerID
		ver uint64
	}
	var out []cand
	for origin, e := range g.catalog {
		if m := g.members[origin]; m != nil && m.state != StateAlive {
			continue
		}
		for _, ad := range e.Frags {
			if ad.ID == id {
				out = append(out, cand{origin, ad.Version})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ver != out[j].ver {
			return out[i].ver > out[j].ver
		}
		return out[i].id < out[j].id
	})
	ids := make([]p2p.PeerID, len(out))
	for i, c := range out {
		ids[i] = c.id
	}
	return ids
}

// DocumentFragments returns every fragment ad known for the named sharded
// document — the union over all origins (self included), deduplicated by
// fragment ID keeping the highest version — plus the set of live spine
// holders. This is the assembler's view of what a complete document needs.
func (g *Gossip) DocumentFragments(doc string) (frags []FragAd, spineHolders []p2p.PeerID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	best := make(map[string]FragAd)
	note := func(origin p2p.PeerID, ad FragAd, live bool) {
		if ad.Doc != doc {
			return
		}
		if ad.Spine {
			if live {
				spineHolders = append(spineHolders, origin)
			}
			return
		}
		if old, ok := best[ad.ID]; !ok || ad.Version > old.Version {
			best[ad.ID] = ad
		}
	}
	for _, ad := range g.selfFrags {
		note(g.self, ad, true)
	}
	for origin, e := range g.catalog {
		live := true
		if m := g.members[origin]; m != nil && m.state != StateAlive {
			live = false
		}
		for _, ad := range e.Frags {
			note(origin, ad, live)
		}
	}
	for _, ad := range best {
		frags = append(frags, ad)
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].ID < frags[j].ID })
	sort.Slice(spineHolders, func(i, j int) bool { return spineHolders[i] < spineHolders[j] })
	return frags, spineHolders
}

// CallOwners returns the peers currently advertising a cache entry for key,
// best candidate first: live origins with a completed, still-fresh result
// (freshest first), then live origins with the invocation in flight. The
// local peer and Suspect/Dead origins are excluded — a fetch from a
// suspected peer would just burn the caller's timeout.
func (g *Gossip) CallOwners(key string) []p2p.PeerID {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	type cand struct {
		id      p2p.PeerID
		fetched int64
	}
	var done, inflight []cand
	for origin, e := range g.catalog {
		if m := g.members[origin]; m != nil && m.state != StateAlive {
			continue
		}
		for _, ad := range e.Calls {
			if ad.Key != key {
				continue
			}
			if ad.Inflight {
				inflight = append(inflight, cand{origin, 0})
			} else if ad.fresh(now) {
				done = append(done, cand{origin, ad.FetchedUnixNano})
			}
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].fetched != done[j].fetched {
			return done[i].fetched > done[j].fetched
		}
		return done[i].id < done[j].id
	})
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].id < inflight[j].id })
	out := make([]p2p.PeerID, 0, len(done)+len(inflight))
	for _, c := range done {
		out = append(out, c.id)
	}
	for _, c := range inflight {
		out = append(out, c.id)
	}
	return out
}

// CacheOwner implements replication.CacheScorer: it reports whether peer
// (self included) currently advertises a fresh cached result for the named
// service, so the replica table can rank cache owners first when picking a
// retry or recovery target.
func (g *Gossip) CacheOwner(service string, peer p2p.PeerID) bool {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if peer == g.self {
		for _, ad := range g.selfCalls {
			if ad.Service == service && ad.fresh(now) {
				return true
			}
		}
		return false
	}
	e := g.catalog[peer]
	if e == nil {
		return false
	}
	for _, ad := range e.Calls {
		if ad.Service == service && ad.fresh(now) {
			return true
		}
	}
	return false
}

// applyEntryLocked merges one remote catalog entry: higher version wins,
// and the diff against the previously known version is translated into
// table add/remove operations. Entries from dead origins are stored (for
// revival) but not materialized into the table.
func (g *Gossip) applyEntryLocked(e *CatalogEntry, fx *effects) {
	if e.Origin == g.self || e.Origin == "" {
		return
	}
	old := g.catalog[e.Origin]
	if old != nil && e.Version <= old.Version {
		return
	}
	cp := &CatalogEntry{
		Origin:    e.Origin,
		Version:   e.Version,
		Docs:      append([]string(nil), e.Docs...),
		Services:  append([]string(nil), e.Services...),
		Announced: e.Announced,
		Calls:     append([]CallAd(nil), e.Calls...),
		Frags:     append([]FragAd(nil), e.Frags...),
	}
	sort.Strings(cp.Docs)
	sort.Strings(cp.Services)
	sort.Slice(cp.Calls, func(i, j int) bool { return cp.Calls[i].Key < cp.Calls[j].Key })
	sort.Slice(cp.Frags, func(i, j int) bool { return cp.Frags[i].ID < cp.Frags[j].ID })
	g.catalog[e.Origin] = cp
	if !cp.Announced.IsZero() {
		if d := time.Since(cp.Announced); d > 0 {
			fx.converge = append(fx.converge, d)
		}
	}

	var oldDocs, oldSvcs, oldFrags []string
	if old != nil {
		oldDocs, oldSvcs = old.Docs, old.Services
		oldFrags = fragIDsOf(old.Frags)
	}
	newFrags := fragIDsOf(cp.Frags)
	if gone := missingFrom(oldDocs, cp.Docs); len(gone) > 0 {
		fx.removePlacements(cp.Origin, gone, nil)
	}
	if gone := missingFrom(oldSvcs, cp.Services); len(gone) > 0 {
		fx.removePlacements(cp.Origin, nil, gone)
	}
	if gone := missingFrom(oldFrags, newFrags); len(gone) > 0 {
		fx.removeFragments(cp.Origin, gone)
	}
	m := g.members[e.Origin]
	if m != nil && m.state == StateDead {
		return
	}
	if add := missingFrom(cp.Docs, oldDocs); len(add) > 0 {
		fx.addPlacements(cp.Origin, add, nil)
	}
	if add := missingFrom(cp.Services, oldSvcs); len(add) > 0 {
		fx.addPlacements(cp.Origin, nil, add)
	}
	if add := missingFrom(newFrags, oldFrags); len(add) > 0 {
		fx.addFragments(cp.Origin, add)
	}
}

// fragIDsOf projects fragment ads to their IDs for set-diffing.
func fragIDsOf(ads []FragAd) []string {
	if len(ads) == 0 {
		return nil
	}
	out := make([]string, len(ads))
	for i, ad := range ads {
		out[i] = ad.ID
	}
	return out
}

// missingFrom returns the elements of a not present in b.
func missingFrom(a, b []string) []string {
	if len(a) == 0 {
		return nil
	}
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []string
	for _, x := range a {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}

// selfEntryLocked renders this peer's own catalog entry.
func (g *Gossip) selfEntryLocked() CatalogEntry {
	e := CatalogEntry{
		Origin:    g.self,
		Version:   g.selfVersion,
		Announced: g.selfAnnounced,
	}
	for d := range g.selfDocs {
		e.Docs = append(e.Docs, d)
	}
	for s := range g.selfSvcs {
		e.Services = append(e.Services, s)
	}
	for _, ad := range g.selfCalls {
		e.Calls = append(e.Calls, ad)
	}
	for _, ad := range g.selfFrags {
		e.Frags = append(e.Frags, ad)
	}
	sort.Strings(e.Docs)
	sort.Strings(e.Services)
	sort.Slice(e.Calls, func(i, j int) bool { return e.Calls[i].Key < e.Calls[j].Key })
	sort.Slice(e.Frags, func(i, j int) bool { return e.Frags[i].ID < e.Frags[j].ID })
	return e
}

// syncPayloadLocked encodes the full push-pull payload: every known member
// (plus our own record) and every catalog entry (plus our own).
func (g *Gossip) syncPayloadLocked() []byte {
	msg := syncMsg{From: g.self}
	msg.Members = append(msg.Members, memberRecord{
		ID: g.self, State: int(StateAlive), Incarnation: g.incarnation, Addr: g.cfg.AdvertiseAddr,
	})
	ids := make([]p2p.PeerID, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := g.members[id]
		msg.Members = append(msg.Members, memberRecord{
			ID: id, State: int(m.state), Incarnation: m.incarnation, Addr: m.addr,
		})
	}
	if g.selfVersion > 0 {
		msg.Catalog = append(msg.Catalog, g.selfEntryLocked())
	}
	origins := make([]p2p.PeerID, 0, len(g.catalog))
	for o := range g.catalog {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		msg.Catalog = append(msg.Catalog, *g.catalog[o])
	}
	if g.selfSummary != nil {
		msg.Summaries = append(msg.Summaries, *g.selfSummary)
	}
	sids := make([]p2p.PeerID, 0, len(g.summaries))
	for id := range g.summaries {
		sids = append(sids, id)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	for _, id := range sids {
		msg.Summaries = append(msg.Summaries, g.summaries[id].PeerSummary)
	}
	return encode(msg)
}

// Member is the exported view of one membership row (self included).
type Member struct {
	ID          p2p.PeerID `json:"id"`
	State       string     `json:"state"`
	Incarnation uint64     `json:"incarnation"`
	Addr        string     `json:"addr,omitempty"`
	RTTMicros   int64      `json:"rtt_us,omitempty"`
}

// Info is the full diagnostic snapshot served by /members and the
// axmlquery -members admin subject.
type Info struct {
	Self        p2p.PeerID     `json:"self"`
	Incarnation uint64         `json:"incarnation"`
	Round       uint64         `json:"round"`
	Members     []Member       `json:"members"`
	Catalog     []CatalogEntry `json:"catalog"`
}

// Members returns the sorted membership view, self first among equals.
func (g *Gossip) Members() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Member, 0, len(g.members)+1)
	out = append(out, Member{
		ID: g.self, State: StateAlive.String(), Incarnation: g.incarnation, Addr: g.cfg.AdvertiseAddr,
	})
	for id, m := range g.members {
		out = append(out, Member{
			ID: id, State: m.state.String(), Incarnation: m.incarnation, Addr: m.addr,
			RTTMicros: g.rtts[id].Microseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CatalogSnapshot returns the known catalog (own entry included), sorted
// by origin, with sorted doc/service lists — directly comparable across
// peers in convergence tests.
func (g *Gossip) CatalogSnapshot() []CatalogEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]CatalogEntry, 0, len(g.catalog)+1)
	if g.selfVersion > 0 {
		out = append(out, g.selfEntryLocked())
	}
	for _, e := range g.catalog {
		out = append(out, CatalogEntry{
			Origin:    e.Origin,
			Version:   e.Version,
			Docs:      append([]string(nil), e.Docs...),
			Services:  append([]string(nil), e.Services...),
			Announced: e.Announced,
			Calls:     append([]CallAd(nil), e.Calls...),
			Frags:     append([]FragAd(nil), e.Frags...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Info assembles the full snapshot.
func (g *Gossip) Info() Info {
	g.mu.Lock()
	self, inc, round := g.self, g.incarnation, g.round
	g.mu.Unlock()
	return Info{
		Self:        self,
		Incarnation: inc,
		Round:       round,
		Members:     g.Members(),
		Catalog:     g.CatalogSnapshot(),
	}
}
