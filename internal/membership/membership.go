// Package membership is a SWIM-style gossip layer [Das et al., DSN 2002]
// for the AXML peer network: a periodic probe / indirect-probe / suspect →
// dead failure detector (reusing p2p.Pinger for the direct probe) that
// piggybacks replica-catalog state on its gossip exchanges, so every peer's
// replication.Table is populated and pruned automatically instead of being
// hand-maintained.
//
// The paper's forward recovery (§3.2 retry on a replica provider, §3.3
// scenario b re-invocation "on a different peer") and peer-independent
// compensation both depend on knowing which peers are alive and what they
// replicate; at any realistic scale a static table picks dead or stale
// alternatives. Membership closes that loop:
//
//   - failure detection drives replication.Table.RemovePeer (via OnDown,
//     which core.Peer wires to its disconnection protocol), and
//   - the Gossip itself is a replication.Scorer, so Table.Alternative ranks
//     candidates by liveness and smoothed observed RTT (fed from both probe
//     round-trips and core's invoke round-trips).
//
// Protocol sketch (one Tick = one SWIM protocol period):
//
//	Alive --probe timeout (direct + k indirect)--> Suspect
//	Suspect --SuspectRounds periods w/o refutation--> Dead  (OnDown fires)
//	Suspect/Dead --higher incarnation from the peer--> Alive (refutation)
//
// Incarnation numbers make suspicion refutable: when a peer learns it is
// suspected, it bumps its own incarnation and re-gossips itself alive;
// records about a peer are totally ordered by (incarnation, state) with
// Dead > Suspect > Alive at equal incarnation. A healed false suspicion
// therefore converges back to Alive without OnDown ever firing — no
// spurious compensation.
//
// Anti-entropy is full push-pull: each sync request carries the sender's
// complete member list and catalog, and the response carries the
// receiver's; both sides keep, per origin peer, the entry with the highest
// version. Catalog entries are versioned by their origin only — the single
// writer — so reconciliation needs no vector clocks.
package membership

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/replication"
	"axmltx/internal/vclock"
)

// State is a member's position in the SWIM failure-detector state machine.
type State int

const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config tunes the gossip layer. The zero value of every knob gets a sane
// default in New.
type Config struct {
	// Seeds are peers assumed alive at startup (typically the configured
	// neighbors); gossip discovers the rest transitively.
	Seeds []p2p.PeerID
	// ProbeInterval is the SWIM protocol period: one direct probe, the
	// indirect fallback, suspicion bookkeeping and Fanout sync exchanges
	// per period. It is also the direct-probe timeout. Default 1s.
	ProbeInterval time.Duration
	// SuspectRounds is how many protocol periods a suspicion must survive
	// unrefuted before the member is declared dead. Default 3.
	SuspectRounds int
	// IndirectProbes is the number of helper peers asked to ping-req a
	// member whose direct probe failed. Default 2.
	IndirectProbes int
	// Fanout is the number of peers synced with per protocol period.
	// Default 2.
	Fanout int
	// DeadSyncRounds is how often (in protocol periods) one additional sync
	// is attempted with a member currently believed dead, round-robin over
	// the dead set. Without it two cliques that declared each other dead
	// during a partition would never probe across the split again (the ring
	// excludes dead members) and the false verdicts could never be refuted
	// after the network heals. A genuinely dead peer just fails the extra
	// request. Default 4; negative disables.
	DeadSyncRounds int
	// AdvertiseAddr is gossiped alongside this peer's member record so
	// transports with an address book (p2p.TCPTransport) learn how to dial
	// peers they were never explicitly configured with.
	AdvertiseAddr string
	// Sink, when set, receives one obs.KindMember span per membership
	// state transition (join/alive/suspect/dead/refute).
	Sink obs.Sink
	// Registry, when set, exports membership gauges (member counts by
	// state, catalog size, rounds, refutations) and the catalog
	// convergence-latency histogram.
	Registry *obs.Registry
	// Clock is the time source for protocol periods, freshness checks and
	// RTT measurement; nil means the runtime clock. Discrete-event
	// simulations install a virtual clock here so gossip rounds are
	// scheduler-owned timers.
	Clock vclock.Clock
	// SummaryEvery is how often, in protocol periods, the local metric
	// summary source (SetSummarySource) is re-captured and its gossiped
	// version bumped. Default 1; negative disables capture even when a
	// source is installed.
	SummaryEvery int
	// SummaryTTL expires a remote peer's summary that has not been
	// refreshed (no new version received) for this long — the origin is
	// alive but its plane stopped producing, so serving its stale numbers
	// as current would mislead. Death expires summaries immediately,
	// independent of this. Default 30×ProbeInterval.
	SummaryTTL time.Duration
}

// member is the local record about a remote peer.
type member struct {
	state       State
	incarnation uint64
	addr        string
	// suspectedAt is the protocol round at which the current suspicion
	// started; meaningful only while state == StateSuspect.
	suspectedAt uint64
}

// Gossip is one peer's membership instance. Create it with New over the
// peer's transport (the same wrapped transport the core engine uses, so
// fault injection sees gossip traffic too), then either hand it to
// core.NewPeer via Options.Membership — which installs Intercept into the
// peer's handler chain — or, standalone, install
// p2p.AnswerPings(g.Intercept(nil)) yourself.
//
// Gossip never calls Transport.SetHandler; the owner of the transport does.
type Gossip struct {
	self   p2p.PeerID
	t      p2p.Transport
	cfg    Config
	tracer *obs.Tracer
	pinger *p2p.Pinger

	probeMu   sync.Mutex
	probeMiss bool

	mu          sync.Mutex
	members     map[p2p.PeerID]*member
	incarnation uint64 // self incarnation, bumped on refutation
	round       uint64

	selfDocs      map[string]bool
	selfSvcs      map[string]bool
	selfCalls     map[string]CallAd
	selfFrags     map[string]FragAd
	selfVersion   uint64
	selfAnnounced time.Time
	catalog       map[p2p.PeerID]*CatalogEntry

	rtts   map[p2p.PeerID]time.Duration
	table  *replication.Table
	onDown []func(p2p.PeerID)

	// Metric-summary piggyback (the cluster observability plane). The
	// payloads are opaque bytes: membership versions, gossips and expires
	// them but never looks inside, so it does not depend on obs/cluster.
	summarySrc    func() []byte
	onSummary     []func(PeerSummary)
	onSummaryDrop []func(p2p.PeerID)
	selfSummary   *PeerSummary
	summaries     map[p2p.PeerID]*storedSummary
	// summaryFloor refuses resurrection of expired summaries: after a TTL
	// or death expiry, only a capture strictly newer than the dropped one
	// (same-origin clock, so comparable) is accepted again. Without it, a
	// quiet-but-alive origin re-gossiping its stale summary would flip-flop
	// between dropped and re-applied every TTL.
	summaryFloor map[p2p.PeerID]int64

	refutations int64
	deaths      int64
	syncsSent   int64
	syncsRecv   int64

	convHist *obs.Histogram

	loopCancel context.CancelFunc
	loopDone   chan struct{}
}

// New creates a membership instance for the transport's peer. It does not
// start probing; call Start (background loop) or Tick (deterministic
// single protocol period, used by tests and simulations).
func New(t p2p.Transport, cfg Config) *Gossip {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.SuspectRounds <= 0 {
		cfg.SuspectRounds = 3
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 2
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.DeadSyncRounds == 0 {
		cfg.DeadSyncRounds = 4
	}
	if cfg.SummaryEvery == 0 {
		cfg.SummaryEvery = 1
	}
	if cfg.SummaryTTL <= 0 {
		cfg.SummaryTTL = 30 * cfg.ProbeInterval
	}
	g := &Gossip{
		self:         t.Self(),
		t:            t,
		cfg:          cfg,
		tracer:       obs.NewTracer(string(t.Self()), cfg.Sink),
		members:      make(map[p2p.PeerID]*member),
		selfDocs:     make(map[string]bool),
		selfSvcs:     make(map[string]bool),
		selfCalls:    make(map[string]CallAd),
		selfFrags:    make(map[string]FragAd),
		catalog:      make(map[p2p.PeerID]*CatalogEntry),
		rtts:         make(map[p2p.PeerID]time.Duration),
		summaries:    make(map[p2p.PeerID]*storedSummary),
		summaryFloor: make(map[p2p.PeerID]int64),
	}
	g.pinger = p2p.NewPinger(t, cfg.ProbeInterval, 1, func(p2p.PeerID) {
		g.probeMu.Lock()
		g.probeMiss = true
		g.probeMu.Unlock()
	})
	g.pinger.SetClock(cfg.Clock)
	for _, id := range cfg.Seeds {
		if id != g.self {
			g.members[id] = &member{state: StateAlive}
		}
	}
	g.registerMetrics()
	return g
}

// Self returns the local peer ID.
func (g *Gossip) Self() p2p.PeerID { return g.self }

// now reads the configured clock (the runtime clock by default).
func (g *Gossip) now() time.Time { return vclock.Or(g.cfg.Clock).Now() }

// Seed adds peers assumed alive (beyond Config.Seeds), for clusters built
// after construction.
func (g *Gossip) Seed(ids ...p2p.PeerID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, id := range ids {
		if id != g.self {
			if _, ok := g.members[id]; !ok {
				g.members[id] = &member{state: StateAlive}
			}
		}
	}
}

// OnDown registers a callback fired (outside all locks) when a member is
// declared dead. core.Peer wires its disconnection protocol
// (OnPeerDown) here.
func (g *Gossip) OnDown(fn func(p2p.PeerID)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onDown = append(g.onDown, fn)
}

// SetSummarySource installs the local metric-summary producer, called once
// per Config.SummaryEvery protocol periods. The call happens outside the
// membership lock: the producer typically exports gauges that lock back
// into this Gossip (axml_members and friends). A nil payload skips the
// round without bumping the gossiped version.
func (g *Gossip) SetSummarySource(fn func() []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.summarySrc = fn
}

// OnSummary registers a callback fired (outside all locks) whenever a
// remote peer's summary is first seen or refreshed to a higher version.
func (g *Gossip) OnSummary(fn func(PeerSummary)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onSummary = append(g.onSummary, fn)
}

// OnSummaryDrop registers a callback fired (outside all locks) when an
// origin's summary is expired: on its death verdict, or after SummaryTTL
// without a refresh.
func (g *Gossip) OnSummaryDrop(fn func(p2p.PeerID)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onSummaryDrop = append(g.onSummaryDrop, fn)
}

// Summaries returns the currently held summaries (own entry included when
// captured at least once), sorted by origin.
func (g *Gossip) Summaries() []PeerSummary {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PeerSummary, 0, len(g.summaries)+1)
	if g.selfSummary != nil {
		out = append(out, *g.selfSummary)
	}
	for _, s := range g.summaries {
		out = append(out, s.PeerSummary)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// SetTable binds the replication table the catalog materializes into and
// installs this Gossip as its liveness/RTT Scorer. Known catalog entries
// are applied immediately.
func (g *Gossip) SetTable(tbl *replication.Table) {
	fx := &effects{}
	g.mu.Lock()
	g.table = tbl
	for origin, e := range g.catalog {
		m := g.members[origin]
		if m != nil && m.state == StateDead {
			continue
		}
		fx.addPlacements(origin, e.Docs, e.Services)
		fx.addFragments(origin, fragIDsOf(e.Frags))
	}
	for doc := range g.selfDocs {
		fx.addPlacements(g.self, []string{doc}, nil)
	}
	for svc := range g.selfSvcs {
		fx.addPlacements(g.self, nil, []string{svc})
	}
	for id := range g.selfFrags {
		fx.addFragments(g.self, []string{id})
	}
	g.mu.Unlock()
	tbl.SetScorer(g)
	g.runEffects(fx)
}

// Live implements replication.Scorer: only members in StateAlive (or peers
// this instance has never heard of — absence of evidence is not failure)
// qualify as recovery targets. Suspect peers are conservatively excluded
// from Alternative but still rank ahead of nothing in full listings.
func (g *Gossip) Live(id p2p.PeerID) bool {
	if id == g.self {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[id]
	return m == nil || m.state == StateAlive
}

// RTT implements replication.Scorer: the smoothed observed round-trip time
// to the peer (0 when unsampled).
func (g *Gossip) RTT(id p2p.PeerID) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rtts[id]
}

// ObserveRTT feeds one round-trip sample (an invoke round trip from core,
// or a probe round trip from Tick) into the EWMA used for ranking.
func (g *Gossip) ObserveRTT(id p2p.PeerID, d time.Duration) {
	if id == g.self || d <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.observeRTTLocked(id, d)
}

func (g *Gossip) observeRTTLocked(id p2p.PeerID, d time.Duration) {
	if old := g.rtts[id]; old > 0 {
		g.rtts[id] = (old*3 + d) / 4
	} else {
		g.rtts[id] = d
	}
}

// StateOf returns the local view of a member's state; ok is false for
// peers this instance has never heard of.
func (g *Gossip) StateOf(id p2p.PeerID) (State, bool) {
	if id == g.self {
		return StateAlive, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[id]
	if m == nil {
		return StateAlive, false
	}
	return m.state, true
}

// Round returns the number of protocol periods run so far.
func (g *Gossip) Round() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.round
}

// Start launches the background protocol loop (one Tick per
// ProbeInterval). Stop terminates it.
func (g *Gossip) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	g.mu.Lock()
	g.loopCancel = cancel
	g.loopDone = make(chan struct{})
	done := g.loopDone
	g.mu.Unlock()
	go func() {
		defer close(done)
		clock := vclock.Or(g.cfg.Clock)
		for {
			select {
			case <-ctx.Done():
				return
			case <-clock.After(g.cfg.ProbeInterval):
				g.Tick(ctx)
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (g *Gossip) Stop() {
	g.mu.Lock()
	cancel, done := g.loopCancel, g.loopDone
	g.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// Tick runs one SWIM protocol period synchronously: probe one member
// (round-robin over the non-dead ring), escalate expired suspicions, and
// sync (push-pull anti-entropy) with Fanout members. Deterministic given
// the member set and round counter — chaos tests and sim benchmarks drive
// it directly instead of using Start.
func (g *Gossip) Tick(ctx context.Context) {
	g.mu.Lock()
	g.round++
	round := g.round
	ring := g.nonDeadRingLocked()
	g.mu.Unlock()

	var target p2p.PeerID
	var helpers []p2p.PeerID
	if len(ring) > 0 {
		ti := int((round - 1) % uint64(len(ring)))
		target = ring[ti]
		for i := 1; i < len(ring) && len(helpers) < g.cfg.IndirectProbes; i++ {
			h := ring[(ti+i)%len(ring)]
			if h != target {
				helpers = append(helpers, h)
			}
		}
	}

	// Refresh the local metric summary. The source runs strictly outside
	// g.mu: it exports gauges (axml_members, catalog sizes) whose read
	// functions lock back into this Gossip.
	g.mu.Lock()
	src := g.summarySrc
	every := g.cfg.SummaryEvery
	g.mu.Unlock()
	var summaryBlob []byte
	if src != nil && every > 0 && round%uint64(every) == 0 {
		summaryBlob = src()
	}

	fx := &effects{}
	if target != "" {
		ok, rtt := g.probe(ctx, target, helpers)
		g.mu.Lock()
		inc := uint64(0)
		if m := g.members[target]; m != nil {
			inc = m.incarnation
		}
		if ok {
			g.noteAliveLocked(target, inc, "", true, fx)
			g.observeRTTLocked(target, rtt)
		} else {
			g.noteSuspectLocked(target, inc, fx)
		}
		g.mu.Unlock()
	}

	g.mu.Lock()
	for id, m := range g.members {
		if m.state == StateSuspect && round-m.suspectedAt >= uint64(g.cfg.SuspectRounds) {
			g.noteDeadLocked(id, m.incarnation, fx)
		}
	}
	// Prune expired call advertisements so stale cache ads stop propagating;
	// the version bump makes the shrunken entry win on the next exchange.
	// In-flight ads are the leader's responsibility to withdraw (or refresh
	// into a completed ad) and are left alone here.
	now := g.now()
	pruned := false
	for key, ad := range g.selfCalls {
		if !ad.Inflight && !ad.fresh(now) {
			delete(g.selfCalls, key)
			pruned = true
		}
	}
	if pruned {
		g.selfVersion++
		g.selfAnnounced = now
	}
	if summaryBlob != nil {
		v := uint64(1)
		if g.selfSummary != nil {
			v = g.selfSummary.Version + 1
		}
		g.selfSummary = &PeerSummary{
			Origin: g.self, Version: v,
			TakenUnixNano: now.UnixNano(), Payload: summaryBlob,
		}
	}
	// Expire summaries whose origin stopped refreshing: the peer is alive
	// (death expiry is immediate, in noteDeadLocked) but its plane has gone
	// quiet for SummaryTTL, so its numbers are stale, not current.
	cutoff := now.Add(-g.cfg.SummaryTTL)
	for id, s := range g.summaries {
		if s.received.Before(cutoff) {
			g.summaryFloor[id] = s.TakenUnixNano
			delete(g.summaries, id)
			fx.dropSummary(id)
		}
	}
	ring = g.nonDeadRingLocked()
	var fanout []p2p.PeerID
	if len(ring) > 0 {
		ti := int((round - 1) % uint64(len(ring)))
		for i := 1; i < len(ring) && len(fanout) < g.cfg.Fanout; i++ {
			p := ring[(ti+i)%len(ring)]
			if p != target {
				fanout = append(fanout, p)
			}
		}
		if len(fanout) == 0 && target != "" {
			// Two-peer network: the probe target is the only possible
			// gossip partner.
			fanout = append(fanout, target)
		}
	}
	if g.cfg.DeadSyncRounds > 0 && round%uint64(g.cfg.DeadSyncRounds) == 0 {
		// Periodically reach out to one dead member: a false verdict left
		// from a healed partition can only be refuted if somebody still
		// talks across the split; a genuinely dead peer just fails the call.
		if dead := g.deadRingLocked(); len(dead) > 0 {
			di := int(round/uint64(g.cfg.DeadSyncRounds)) % len(dead)
			fanout = append(fanout, dead[di])
		}
	}
	payload := g.syncPayloadLocked()
	g.mu.Unlock()

	g.runEffects(fx)

	for _, peer := range fanout {
		g.syncWith(ctx, peer, payload)
	}
}

// probe runs the direct probe (via the embedded Pinger, so chaos rules on
// KindPing apply) and, on failure, asks helpers to probe indirectly.
func (g *Gossip) probe(ctx context.Context, target p2p.PeerID, helpers []p2p.PeerID) (bool, time.Duration) {
	start := g.now()
	g.probeMu.Lock()
	g.probeMiss = false
	g.probeMu.Unlock()
	g.pinger.Watch(target)
	g.pinger.ProbeNow(ctx)
	g.pinger.Unwatch(target)
	g.probeMu.Lock()
	missed := g.probeMiss
	g.probeMu.Unlock()
	if !missed {
		return true, g.now().Sub(start)
	}
	req := encode(pingReq{Target: target})
	for _, h := range helpers {
		rctx, cancel := context.WithTimeout(ctx, 2*g.cfg.ProbeInterval)
		resp, err := g.t.Request(rctx, h, &p2p.Message{
			Kind: p2p.KindGossip, Subject: subjectPingReq, Payload: req,
		})
		cancel()
		if err == nil && resp != nil && resp.Err == "" {
			return true, g.now().Sub(start)
		}
	}
	return false, 0
}

// syncWith performs one push-pull exchange: send our full state, apply the
// peer's full state from the response.
func (g *Gossip) syncWith(ctx context.Context, peer p2p.PeerID, payload []byte) {
	rctx, cancel := context.WithTimeout(ctx, 2*g.cfg.ProbeInterval)
	resp, err := g.t.Request(rctx, peer, &p2p.Message{
		Kind: p2p.KindGossip, Subject: subjectSync, Payload: payload,
	})
	cancel()
	g.mu.Lock()
	g.syncsSent++
	g.mu.Unlock()
	if err != nil || resp == nil || len(resp.Payload) == 0 {
		return
	}
	var msg syncMsg
	if decode(resp.Payload, &msg) != nil {
		return
	}
	fx := &effects{}
	g.mu.Lock()
	g.applySyncLocked(&msg, fx)
	g.mu.Unlock()
	g.runEffects(fx)
}

// Intercept wraps a protocol handler so KindGossip messages are consumed
// here and everything else passes through (mirroring p2p.AnswerPings).
// core.NewPeer installs it when Options.Membership is set.
func (g *Gossip) Intercept(next p2p.Handler) p2p.Handler {
	return func(ctx context.Context, msg *p2p.Message) (*p2p.Message, error) {
		if msg.Kind != p2p.KindGossip {
			if next == nil {
				return nil, p2p.ErrNoHandler
			}
			return next(ctx, msg)
		}
		switch msg.Subject {
		case subjectSync:
			var in syncMsg
			if err := decode(msg.Payload, &in); err != nil {
				return nil, fmt.Errorf("membership: bad sync payload: %w", err)
			}
			fx := &effects{}
			g.mu.Lock()
			g.syncsRecv++
			g.applySyncLocked(&in, fx)
			out := g.syncPayloadLocked()
			g.mu.Unlock()
			g.runEffects(fx)
			return &p2p.Message{Kind: p2p.KindGossip, Subject: subjectSync, Payload: out}, nil
		case subjectPingReq:
			var req pingReq
			if err := decode(msg.Payload, &req); err != nil {
				return nil, fmt.Errorf("membership: bad ping-req payload: %w", err)
			}
			rctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeInterval)
			_, err := g.t.Request(rctx, req.Target, &p2p.Message{Kind: p2p.KindPing})
			cancel()
			ack := &p2p.Message{Kind: p2p.KindGossip, Subject: subjectPingAck}
			if err != nil {
				ack.Err = "membership: indirect probe failed"
			}
			return ack, nil
		default:
			return nil, fmt.Errorf("membership: unknown gossip subject %q", msg.Subject)
		}
	}
}

// ---- state machine (all *Locked methods require g.mu) ----

// nonDeadRingLocked is the sorted probe/gossip ring: every known member
// not declared dead.
func (g *Gossip) nonDeadRingLocked() []p2p.PeerID {
	ring := make([]p2p.PeerID, 0, len(g.members))
	for id, m := range g.members {
		if m.state != StateDead {
			ring = append(ring, id)
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	return ring
}

// deadRingLocked returns the members currently believed dead, sorted, for
// the periodic dead-sync rotation.
func (g *Gossip) deadRingLocked() []p2p.PeerID {
	var ring []p2p.PeerID
	for id, m := range g.members {
		if m.state == StateDead {
			ring = append(ring, id)
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	return ring
}

// noteAliveLocked records first-hand (direct probe success, message
// receipt) or gossiped evidence that id is alive at the given incarnation.
// SWIM precedence: a gossiped Alive at the same incarnation does NOT clear
// a Suspect — only a higher incarnation (refutation) or first-hand contact
// does.
func (g *Gossip) noteAliveLocked(id p2p.PeerID, inc uint64, addr string, firsthand bool, fx *effects) {
	if id == g.self {
		return
	}
	m := g.members[id]
	if m == nil {
		g.members[id] = &member{state: StateAlive, incarnation: inc, addr: addr}
		fx.event(id, "join", StateAlive, inc)
		fx.learnAddr(id, addr)
		return
	}
	if addr != "" && m.addr == "" {
		m.addr = addr
		fx.learnAddr(id, addr)
	}
	revive := inc > m.incarnation || (firsthand && inc == m.incarnation && m.state == StateSuspect)
	if !revive {
		return
	}
	wasDead := m.state == StateDead
	changed := m.state != StateAlive
	if inc > m.incarnation {
		m.incarnation = inc
	}
	m.state = StateAlive
	if changed {
		fx.event(id, "alive", StateAlive, m.incarnation)
	}
	if wasDead {
		// A dead peer came back with a higher incarnation: re-materialize
		// its catalog entry into the table.
		if e := g.catalog[id]; e != nil {
			fx.addPlacements(id, e.Docs, e.Services)
			fx.addFragments(id, fragIDsOf(e.Frags))
		}
	}
}

// noteSuspectLocked records a suspicion (first-hand probe failure or
// gossip). A suspicion about ourselves is refuted by bumping our own
// incarnation; the bumped record spreads on subsequent syncs.
func (g *Gossip) noteSuspectLocked(id p2p.PeerID, inc uint64, fx *effects) {
	if id == g.self {
		if inc >= g.incarnation {
			g.incarnation = inc + 1
			g.refutations++
			fx.event(g.self, "refute", StateAlive, g.incarnation)
		}
		return
	}
	m := g.members[id]
	if m == nil {
		g.members[id] = &member{state: StateSuspect, incarnation: inc, suspectedAt: g.round}
		fx.event(id, "suspect", StateSuspect, inc)
		return
	}
	if m.state == StateDead {
		return
	}
	if inc > m.incarnation || (inc == m.incarnation && m.state == StateAlive) {
		m.incarnation = inc
		m.state = StateSuspect
		m.suspectedAt = g.round
		fx.event(id, "suspect", StateSuspect, inc)
	}
}

// noteDeadLocked records a death (suspicion timeout here, or gossiped
// verdict). Dead is sticky at a given incarnation: only the peer itself
// can return, by rejoining with a higher incarnation.
func (g *Gossip) noteDeadLocked(id p2p.PeerID, inc uint64, fx *effects) {
	if id == g.self {
		if inc >= g.incarnation {
			g.incarnation = inc + 1
			g.refutations++
			fx.event(g.self, "refute", StateAlive, g.incarnation)
		}
		return
	}
	m := g.members[id]
	if m == nil {
		g.members[id] = &member{state: StateDead, incarnation: inc}
		fx.event(id, "dead", StateDead, inc)
		return
	}
	if m.state == StateDead || inc < m.incarnation {
		return
	}
	m.incarnation = inc
	m.state = StateDead
	g.deaths++
	fx.event(id, "dead", StateDead, inc)
	fx.prunePeer(id)
	if _, ok := g.summaries[id]; ok {
		// A dead peer's metric summary is expired immediately: the catalog
		// keeps dead origins' entries (for revival), but stale metrics
		// presented as a live cluster view would lie.
		g.summaryFloor[id] = g.summaries[id].TakenUnixNano
		delete(g.summaries, id)
		fx.dropSummary(id)
	}
	fx.down(id)
}

// applySyncLocked merges a peer's full state. Receipt of the message is
// itself first-hand evidence the sender is alive.
func (g *Gossip) applySyncLocked(msg *syncMsg, fx *effects) {
	senderInc := uint64(0)
	senderAddr := ""
	for _, r := range msg.Members {
		if r.ID == msg.From {
			senderInc = r.Incarnation
			senderAddr = r.Addr
			break
		}
	}
	if msg.From != "" {
		g.noteAliveLocked(msg.From, senderInc, senderAddr, true, fx)
	}
	for _, r := range msg.Members {
		if r.ID == msg.From {
			continue
		}
		switch State(r.State) {
		case StateAlive:
			g.noteAliveLocked(r.ID, r.Incarnation, r.Addr, false, fx)
		case StateSuspect:
			g.noteSuspectLocked(r.ID, r.Incarnation, fx)
		case StateDead:
			g.noteDeadLocked(r.ID, r.Incarnation, fx)
		}
	}
	for i := range msg.Catalog {
		g.applyEntryLocked(&msg.Catalog[i], fx)
	}
	for i := range msg.Summaries {
		g.applySummaryLocked(&msg.Summaries[i], fx)
	}
}

// applySummaryLocked merges one gossiped metric summary: per origin, the
// highest version wins (same single-writer rule as catalog entries).
// Summaries from origins currently believed dead are refused — death
// expires them, and accepting a relayed older copy would resurrect stale
// metrics without the origin actually being back (a rejoin bumps the
// member state first, after which fresh summaries flow again).
func (g *Gossip) applySummaryLocked(s *PeerSummary, fx *effects) {
	if s.Origin == g.self || s.Origin == "" || len(s.Payload) == 0 {
		return
	}
	if m := g.members[s.Origin]; m != nil && m.state == StateDead {
		return
	}
	if old := g.summaries[s.Origin]; old != nil && s.Version <= old.Version {
		return
	}
	if s.TakenUnixNano <= g.summaryFloor[s.Origin] {
		// Expired and not recaptured since: a relayed stale copy must not
		// resurrect. A genuinely fresh capture carries a newer timestamp.
		return
	}
	delete(g.summaryFloor, s.Origin)
	cp := *s
	cp.Payload = append([]byte(nil), s.Payload...)
	g.summaries[s.Origin] = &storedSummary{PeerSummary: cp, received: g.now()}
	fx.summary(cp)
}

// runEffects executes the side effects collected under g.mu — table
// mutations, OnDown callbacks, address-book learning, spans, convergence
// samples — strictly outside the lock, so neither the table (whose Scorer
// calls back into us) nor arbitrary OnDown work can deadlock against the
// state machine.
func (g *Gossip) runEffects(fx *effects) {
	if fx == nil || fx.empty() {
		return
	}
	g.mu.Lock()
	tbl := g.table
	cbs := make([]func(p2p.PeerID), len(g.onDown))
	copy(cbs, g.onDown)
	sumCbs := make([]func(PeerSummary), len(g.onSummary))
	copy(sumCbs, g.onSummary)
	dropCbs := make([]func(p2p.PeerID), len(g.onSummaryDrop))
	copy(dropCbs, g.onSummaryDrop)
	g.mu.Unlock()

	if tbl != nil {
		for _, op := range fx.tableOps {
			op(tbl)
		}
	}
	if ab, ok := g.t.(addrBook); ok {
		for _, a := range fx.addrs {
			ab.AddPeer(a.id, a.addr)
		}
	}
	for _, d := range fx.converge {
		g.convHist.Observe(d)
	}
	for _, ev := range fx.events {
		sp := g.tracer.Start("", "", obs.KindMember, ev.event)
		sp.SetTarget(string(ev.id))
		sp.SetAttr("state", ev.state.String())
		sp.SetAttr("incarnation", fmt.Sprintf("%d", ev.inc))
		sp.End("", nil)
	}
	for _, s := range fx.summaries {
		for _, cb := range sumCbs {
			cb(s)
		}
	}
	for _, id := range fx.summaryDrops {
		for _, cb := range dropCbs {
			cb(id)
		}
	}
	for _, id := range fx.downs {
		for _, cb := range cbs {
			cb(id)
		}
	}
}

// addrBook is implemented by transports that can learn peer addresses at
// runtime (p2p.TCPTransport); the in-memory network needs none.
type addrBook interface {
	AddPeer(id p2p.PeerID, addr string)
}

// effects accumulates side effects computed under g.mu for execution after
// release.
type effects struct {
	tableOps []func(*replication.Table)
	downs    []p2p.PeerID
	addrs    []struct {
		id   p2p.PeerID
		addr string
	}
	converge     []time.Duration
	events       []memberEvent
	summaries    []PeerSummary
	summaryDrops []p2p.PeerID
}

type memberEvent struct {
	id    p2p.PeerID
	event string
	state State
	inc   uint64
}

func (fx *effects) empty() bool {
	return len(fx.tableOps) == 0 && len(fx.downs) == 0 && len(fx.addrs) == 0 &&
		len(fx.converge) == 0 && len(fx.events) == 0 &&
		len(fx.summaries) == 0 && len(fx.summaryDrops) == 0
}

func (fx *effects) summary(s PeerSummary) { fx.summaries = append(fx.summaries, s) }

func (fx *effects) dropSummary(id p2p.PeerID) { fx.summaryDrops = append(fx.summaryDrops, id) }

func (fx *effects) event(id p2p.PeerID, event string, state State, inc uint64) {
	fx.events = append(fx.events, memberEvent{id: id, event: event, state: state, inc: inc})
}

func (fx *effects) down(id p2p.PeerID) { fx.downs = append(fx.downs, id) }

func (fx *effects) learnAddr(id p2p.PeerID, addr string) {
	if addr == "" {
		return
	}
	fx.addrs = append(fx.addrs, struct {
		id   p2p.PeerID
		addr string
	}{id, addr})
}

func (fx *effects) addPlacements(origin p2p.PeerID, docs, svcs []string) {
	docs = append([]string(nil), docs...)
	svcs = append([]string(nil), svcs...)
	fx.tableOps = append(fx.tableOps, func(t *replication.Table) {
		for _, d := range docs {
			t.AddDocument(d, origin)
		}
		for _, s := range svcs {
			t.AddService(s, origin)
		}
	})
}

func (fx *effects) removePlacements(origin p2p.PeerID, docs, svcs []string) {
	docs = append([]string(nil), docs...)
	svcs = append([]string(nil), svcs...)
	fx.tableOps = append(fx.tableOps, func(t *replication.Table) {
		for _, d := range docs {
			t.RemoveDocument(d, origin)
		}
		for _, s := range svcs {
			t.RemoveService(s, origin)
		}
	})
}

func (fx *effects) addFragments(origin p2p.PeerID, ids []string) {
	if len(ids) == 0 {
		return
	}
	ids = append([]string(nil), ids...)
	fx.tableOps = append(fx.tableOps, func(t *replication.Table) {
		for _, f := range ids {
			t.AddFragment(f, origin)
		}
	})
}

func (fx *effects) removeFragments(origin p2p.PeerID, ids []string) {
	if len(ids) == 0 {
		return
	}
	ids = append([]string(nil), ids...)
	fx.tableOps = append(fx.tableOps, func(t *replication.Table) {
		for _, f := range ids {
			t.RemoveFragment(f, origin)
		}
	})
}

func (fx *effects) prunePeer(id p2p.PeerID) {
	fx.tableOps = append(fx.tableOps, func(t *replication.Table) { t.RemovePeer(id) })
}

// registerMetrics exports the gauges and the convergence histogram.
func (g *Gossip) registerMetrics() {
	reg := g.cfg.Registry
	if reg == nil {
		return
	}
	peer := string(g.self)
	countState := func(s State) func() int64 {
		return func() int64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			n := int64(0)
			if s == StateAlive {
				n++ // self
			}
			for _, m := range g.members {
				if m.state == s {
					n++
				}
			}
			return n
		}
	}
	reg.Gauge("axml_members", obs.Labels{"peer": peer, "state": "alive"}, countState(StateAlive))
	reg.Gauge("axml_members", obs.Labels{"peer": peer, "state": "suspect"}, countState(StateSuspect))
	reg.Gauge("axml_members", obs.Labels{"peer": peer, "state": "dead"}, countState(StateDead))
	reg.Gauge("axml_catalog_documents", obs.Labels{"peer": peer}, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		n := int64(len(g.selfDocs))
		for _, e := range g.catalog {
			n += int64(len(e.Docs))
		}
		return n
	})
	reg.Gauge("axml_catalog_services", obs.Labels{"peer": peer}, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		n := int64(len(g.selfSvcs))
		for _, e := range g.catalog {
			n += int64(len(e.Services))
		}
		return n
	})
	reg.Gauge("axml_gossip_rounds", obs.Labels{"peer": peer}, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.round)
	})
	reg.Gauge("axml_gossip_refutations", obs.Labels{"peer": peer}, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.refutations
	})
	reg.Gauge("axml_gossip_summaries", obs.Labels{"peer": peer}, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		n := int64(len(g.summaries))
		if g.selfSummary != nil {
			n++
		}
		return n
	})
	g.convHist = reg.Histogram("axml_gossip_convergence_seconds", obs.Labels{"peer": peer})
}
