package services

import (
	"context"
	"sync"
	"time"
)

// Continuous is a subscription-based service that pushes batches of result
// fragments to a subscriber at a fixed interval — the paper's "continuous
// services which are responsible for sending updated (streams of) data at
// regular intervals" (§3.3 case d). In the disconnection protocol, a
// sibling that stops receiving the stream on time is the detector of the
// producer's death.
type Continuous struct {
	desc     Descriptor
	interval time.Duration
	gen      func(seq int) []string
}

// NewContinuous builds a continuous service generating batch seq with gen.
func NewContinuous(desc Descriptor, interval time.Duration, gen func(seq int) []string) *Continuous {
	desc.Kind = KindContinuous
	return &Continuous{desc: desc, interval: interval, gen: gen}
}

// Descriptor implements Service.
func (c *Continuous) Descriptor() Descriptor { return c.desc }

// Interval returns the declared push interval.
func (c *Continuous) Interval() time.Duration { return c.interval }

// Invoke implements Service by returning the first batch; callers that
// want the stream use Stream.
func (c *Continuous) Invoke(ctx context.Context, req *Request) ([]string, error) {
	return c.gen(0), nil
}

// Stream pushes batches through emit until ctx is cancelled or emit fails
// (e.g. the subscriber became unreachable). It returns the emit error, or
// nil on cancellation.
func (c *Continuous) Stream(ctx context.Context, emit func(seq int, fragments []string) error) error {
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for seq := 0; ; seq++ {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			if err := emit(seq, c.gen(seq)); err != nil {
				return err
			}
		}
	}
}

// StreamWatcher detects silence on a subscription: if no batch arrives
// within the deadline, it fires onSilence once. It is the sibling-side
// detector of §3.3 case (d).
type StreamWatcher struct {
	deadline  time.Duration
	onSilence func()

	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
	fired   bool
	batches int
}

// NewStreamWatcher builds a watcher; call Reset on every received batch and
// Start to arm it.
func NewStreamWatcher(deadline time.Duration, onSilence func()) *StreamWatcher {
	return &StreamWatcher{deadline: deadline, onSilence: onSilence}
}

// Start arms the watcher.
func (w *StreamWatcher) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arm()
}

func (w *StreamWatcher) arm() {
	if w.timer != nil {
		w.timer.Stop()
	}
	w.timer = time.AfterFunc(w.deadline, func() {
		w.mu.Lock()
		if w.stopped || w.fired {
			w.mu.Unlock()
			return
		}
		w.fired = true
		cb := w.onSilence
		w.mu.Unlock()
		if cb != nil {
			cb()
		}
	})
}

// Observe records a received batch and re-arms the deadline.
func (w *StreamWatcher) Observe() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped || w.fired {
		return
	}
	w.batches++
	w.arm()
}

// Batches returns the number of batches observed.
func (w *StreamWatcher) Batches() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batches
}

// Fired reports whether silence was detected.
func (w *StreamWatcher) Fired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Stop disarms the watcher.
func (w *StreamWatcher) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	if w.timer != nil {
		w.timer.Stop()
	}
}
