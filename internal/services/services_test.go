package services

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/wal"
)

const atp = `<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <points>475</points>
  </player>
  <player rank="2">
    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>`

func newStore(t *testing.T) *axml.Store {
	t.Helper()
	s := axml.NewStore(wal.NewMemory())
	if _, err := s.AddParsed("ATPList.xml", atp); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQueryServiceWithParams(t *testing.T) {
	store := newStore(t)
	svc := NewQueryService(
		Descriptor{Name: "getPoints", ResultName: "points",
			Params: []ParamDef{{Name: "lastname", Required: true}}},
		store,
		`Select p/points from p in ATPList//player where p/name/lastname = $lastname`,
		nil, axml.Lazy)

	out, err := svc.Invoke(context.Background(), &Request{Txn: "T", Params: map[string]string{"lastname": "Federer"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "<points>475</points>" {
		t.Fatalf("out = %v", out)
	}
}

func TestQueryServiceAttributeResult(t *testing.T) {
	store := newStore(t)
	svc := NewQueryService(Descriptor{Name: "getRanks", ResultName: "rank"}, store,
		`Select p/@rank from p in ATPList//player`, nil, axml.Lazy)
	out, err := svc.Invoke(context.Background(), &Request{Txn: "T"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != "<rank>1</rank>" {
		t.Fatalf("out = %v", out)
	}
}

func TestQueryServiceBadTemplate(t *testing.T) {
	store := newStore(t)
	svc := NewQueryService(Descriptor{Name: "bad"}, store, `Select nonsense !!`, nil, axml.Lazy)
	if _, err := svc.Invoke(context.Background(), &Request{Txn: "T"}); err == nil {
		t.Fatal("bad template accepted")
	}
}

func TestUpdateServiceInsertReturnsIDs(t *testing.T) {
	store := newStore(t)
	svc := NewUpdateService(
		Descriptor{Name: "addTitle", Params: []ParamDef{{Name: "lastname", Required: true}, {Name: "title", Required: true}}},
		store,
		`<action type="insert"><data><title>$title</title></data><location>Select p from p in ATPList//player where p/name/lastname = "$lastname";</location></action>`,
		nil)
	out, err := svc.Invoke(context.Background(), &Request{Txn: "T", Params: map[string]string{"lastname": "Federer", "title": "Wimbledon"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !strings.Contains(out[0], "<insertedID>") {
		t.Fatalf("out = %v", out)
	}
	// Verify the document changed.
	check := NewQueryService(Descriptor{Name: "q"}, store,
		`Select p/title from p in ATPList//player where p/name/lastname = "Federer"`, nil, axml.Lazy)
	res, err := check.Invoke(context.Background(), &Request{Txn: "T"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != "<title>Wimbledon</title>" {
		t.Fatalf("check = %v", res)
	}
}

func TestRegistryInvokeValidatesParams(t *testing.T) {
	r := NewRegistry()
	r.Register(StaticService(Descriptor{
		Name: "needsName", ResultName: "x",
		Params: []ParamDef{{Name: "name", Required: true}, {Name: "opt"}},
	}, "<x/>"))

	if _, err := r.Invoke(context.Background(), "needsName", &Request{Params: map[string]string{}}); !errors.Is(err, ErrMissingParam) {
		t.Fatalf("err = %v", err)
	}
	out, err := r.Invoke(context.Background(), "needsName", &Request{Params: map[string]string{"name": "x"}})
	if err != nil || len(out) != 1 {
		t.Fatalf("out = %v, %v", out, err)
	}
	if _, err := r.Invoke(context.Background(), "ghost", &Request{}); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryNamesAndResultName(t *testing.T) {
	r := NewRegistry()
	r.Register(StaticService(Descriptor{Name: "b", ResultName: "vb"}, "<vb/>"))
	r.Register(StaticService(Descriptor{Name: "a", ResultName: "va"}, "<va/>"))
	names := r.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
	if r.ResultName("a") != "va" || r.ResultName("ghost") != "" {
		t.Fatal("ResultName")
	}
}

func TestFaultNameExtraction(t *testing.T) {
	base := &Fault{Name: "A", Msg: "backend down"}
	wrapped := errors.Join(errors.New("ctx"), base)
	if FaultName(wrapped) != "A" {
		t.Fatal("wrapped fault name")
	}
	if FaultName(errors.New("anon")) != "" {
		t.Fatal("anonymous error should have no fault name")
	}
	if !strings.Contains(base.Error(), "backend down") {
		t.Fatal("fault message lost")
	}
}

func TestSubstituteLongestFirst(t *testing.T) {
	got := substitute("x=$year2 y=$year", map[string]string{"year": "2004", "year2": "2005"}, false)
	if got != "x=2005 y=2004" {
		t.Fatalf("got %q", got)
	}
	quoted := substitute("p = $v", map[string]string{"v": `Ro"ger`}, true)
	if quoted != `p = "Roger"` {
		t.Fatalf("quoted = %q", quoted)
	}
}

func TestDescriptorXML(t *testing.T) {
	d := Descriptor{Name: "getPoints", Kind: KindQuery, Doc: "ATP points", ResultName: "points",
		Params: []ParamDef{{Name: "name", Required: true}}}
	x := d.XML()
	for _, want := range []string{`name="getPoints"`, `kind="query"`, `resultName="points"`, `<param name="name" required="true"/>`} {
		if !strings.Contains(x, want) {
			t.Fatalf("descriptor XML %q missing %q", x, want)
		}
	}
}

func TestContinuousStreamAndWatcher(t *testing.T) {
	cont := NewContinuous(Descriptor{Name: "ticker", ResultName: "tick"}, 3*time.Millisecond,
		func(seq int) []string { return []string{"<tick/>"} })

	if d := cont.Interval(); d != 3*time.Millisecond {
		t.Fatal("interval")
	}
	if out, err := cont.Invoke(context.Background(), &Request{}); err != nil || len(out) != 1 {
		t.Fatal("invoke first batch")
	}

	silence := make(chan struct{}, 1)
	w := NewStreamWatcher(50*time.Millisecond, func() { silence <- struct{}{} })
	w.Start()

	ctx, cancel := context.WithCancel(context.Background())
	var received atomic.Int32
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- cont.Stream(ctx, func(seq int, frags []string) error {
			received.Add(1)
			w.Observe()
			if received.Load() >= 3 {
				cancel() // producer "disconnects" after 3 batches
			}
			return nil
		})
	}()

	select {
	case <-silence:
		// Watcher fired after the stream went quiet.
	case <-time.After(2 * time.Second):
		t.Fatal("watcher never fired")
	}
	if received.Load() < 3 {
		t.Fatalf("received = %d", received.Load())
	}
	if !w.Fired() || w.Batches() < 3 {
		t.Fatalf("watcher state: fired=%v batches=%d", w.Fired(), w.Batches())
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("stream err = %v", err)
	}
	w.Stop()
}

func TestStreamStopsOnEmitError(t *testing.T) {
	cont := NewContinuous(Descriptor{Name: "t"}, time.Millisecond, func(seq int) []string { return nil })
	sentinel := errors.New("subscriber gone")
	err := cont.Stream(context.Background(), func(seq int, frags []string) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestWatcherObserveAfterStopIgnored(t *testing.T) {
	w := NewStreamWatcher(10*time.Millisecond, func() { t.Error("fired after stop") })
	w.Start()
	w.Stop()
	w.Observe()
	time.Sleep(30 * time.Millisecond)
}

func TestDescriptorsOfAllServiceTypes(t *testing.T) {
	store := newStore(t)
	q := NewQueryService(Descriptor{Name: "q"}, store, `Select p from p in ATPList`, nil, axml.Lazy)
	if q.Descriptor().Kind != KindQuery {
		t.Fatal("query kind")
	}
	u := NewUpdateService(Descriptor{Name: "u"}, store, `<action type="query"><location>Select p from p in ATPList</location></action>`, nil)
	if u.Descriptor().Kind != KindUpdate {
		t.Fatal("update kind")
	}
	c := NewContinuous(Descriptor{Name: "c"}, time.Second, func(int) []string { return nil })
	if c.Descriptor().Kind != KindContinuous {
		t.Fatal("continuous kind")
	}
	f := NewFuncService(Descriptor{Name: "f"}, func(context.Context, map[string]string) ([]string, error) { return nil, nil })
	if f.Descriptor().Kind != KindGeneric {
		t.Fatal("generic kind default")
	}
}

func TestFaultErrorWithoutMessage(t *testing.T) {
	f := &Fault{Name: "X"}
	if f.Error() != "fault X" {
		t.Fatalf("Error() = %q", f.Error())
	}
}

func TestUpdateServiceBadTemplate(t *testing.T) {
	store := newStore(t)
	svc := NewUpdateService(Descriptor{Name: "bad"}, store, `not xml at all`, nil)
	if _, err := svc.Invoke(context.Background(), &Request{Txn: "T"}); err == nil {
		t.Fatal("bad template accepted")
	}
}

func TestUpdateServiceApplyFailure(t *testing.T) {
	store := newStore(t)
	svc := NewUpdateService(Descriptor{Name: "missing"}, store,
		`<action type="delete"><location>Select p/nothing from p in ATPList//player;</location></action>`, nil)
	if _, err := svc.Invoke(context.Background(), &Request{Txn: "T"}); err == nil {
		t.Fatal("no-target delete should fail")
	}
}
