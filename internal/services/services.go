// Package services implements the Web-service layer of an AXML peer:
// services defined as queries/updates over local AXML documents, generic
// (externally implemented) services, continuous subscription services, a
// registry, and WSDL-lite descriptors.
//
// Services execute data operations only; transaction bracketing, logging
// for compensation and recovery are layered on top by the core engine,
// which invokes services through the registry within a transaction context.
package services

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"axmltx/internal/axml"
	"axmltx/internal/xmldom"
)

// Kind classifies a service for its descriptor.
type Kind string

const (
	// KindQuery services evaluate a select-from-where query over a hosted
	// document.
	KindQuery Kind = "query"
	// KindUpdate services apply an insert/delete/replace action.
	KindUpdate Kind = "update"
	// KindGeneric services are arbitrary functions (simulating external
	// Web services such as getGrandSlamsWon).
	KindGeneric Kind = "generic"
	// KindContinuous services push data streams to subscribers at an
	// interval (§3.3 case d).
	KindContinuous Kind = "continuous"
)

// ParamDef describes one declared parameter.
type ParamDef struct {
	Name     string
	Doc      string
	Required bool
}

// Descriptor is the WSDL-lite description of a service: enough for a caller
// to bind parameters and for the lazy evaluator to know the result element
// name.
type Descriptor struct {
	Name       string
	Kind       Kind
	Doc        string
	Params     []ParamDef
	ResultName string
	// TargetDocument names the hosted document the service reads or
	// writes, so the engine can take the right isolation lock before
	// invoking; empty for services that touch no local document.
	TargetDocument string
}

// XML renders the descriptor in a WSDL-reminiscent XML form, served by
// peers on request.
func (d Descriptor) XML() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<service name=%q kind=%q resultName=%q>`, d.Name, d.Kind, d.ResultName)
	if d.Doc != "" {
		fmt.Fprintf(&b, `<documentation>%s</documentation>`, d.Doc)
	}
	for _, p := range d.Params {
		fmt.Fprintf(&b, `<param name=%q required="%t"/>`, p.Name, p.Required)
	}
	b.WriteString(`</service>`)
	return b.String()
}

// Request is a service invocation as seen by the hosting peer.
type Request struct {
	// Txn is the global transaction the invocation belongs to.
	Txn string
	// Params are the resolved (post-materialization) parameters.
	Params map[string]string
}

// Service is anything invokable on a peer.
type Service interface {
	// Descriptor returns the service's static description.
	Descriptor() Descriptor
	// Invoke executes the service, returning result XML fragments.
	Invoke(ctx context.Context, req *Request) ([]string, error)
}

// Errors returned by the registry and services.
var (
	ErrUnknownService = errors.New("services: unknown service")
	ErrMissingParam   = errors.New("services: missing required parameter")
)

// Fault is a named service failure. Fault names select <axml:catch>
// handlers during recovery; generic errors behave as an anonymous fault
// (matched only by catchAll). Err, when set, is the underlying cause and
// participates in errors.Is/As chains via Unwrap.
type Fault struct {
	Name string
	Msg  string
	Err  error
}

// Error implements error.
func (f *Fault) Error() string {
	if f.Msg == "" {
		return "fault " + f.Name
	}
	return fmt.Sprintf("fault %s: %s", f.Name, f.Msg)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// FaultName extracts the fault name from an error chain, or "" for
// anonymous failures.
func FaultName(err error) string {
	var f *Fault
	if errors.As(err, &f) {
		return f.Name
	}
	return ""
}

// Registry holds a peer's services.
type Registry struct {
	mu   sync.RWMutex
	svcs map[string]Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{svcs: make(map[string]Service)}
}

// Register adds (or replaces) a service under its descriptor name.
func (r *Registry) Register(s Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.svcs[s.Descriptor().Name] = s
}

// Get returns the named service.
func (r *Registry) Get(name string) (Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.svcs[name]
	return s, ok
}

// Names returns the registered service names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.svcs))
	for n := range r.svcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResultName reports the declared result element name for a service, ""
// when unknown — the hook lazy evaluation planning uses.
func (r *Registry) ResultName(service string) string {
	if s, ok := r.Get(service); ok {
		return s.Descriptor().ResultName
	}
	return ""
}

// Invoke looks up and executes a service, validating required parameters.
func (r *Registry) Invoke(ctx context.Context, name string, req *Request) ([]string, error) {
	s, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	for _, p := range s.Descriptor().Params {
		if p.Required {
			if _, ok := req.Params[p.Name]; !ok {
				return nil, fmt.Errorf("%w: %q of service %q", ErrMissingParam, p.Name, name)
			}
		}
	}
	return s.Invoke(ctx, req)
}

// substitute replaces $name placeholders in a template with parameter
// values. Values are inserted as quoted literals in query position, so a
// template says e.g. `where p/name/lastname = $lastname`.
func substitute(template string, params map[string]string, quote bool) string {
	// Longest-name-first so $year2 is not clobbered by $year.
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return len(names[i]) > len(names[j]) })
	out := template
	for _, n := range names {
		v := params[n]
		if quote {
			v = `"` + strings.ReplaceAll(v, `"`, ``) + `"`
		}
		out = strings.ReplaceAll(out, "$"+n, v)
	}
	return out
}

// QueryService exposes a select-from-where query over a store as a service.
// The query template may reference parameters as $name; they are bound as
// quoted literals at invocation time.
type QueryService struct {
	desc     Descriptor
	store    *axml.Store
	template string
	mat      axml.Materializer
	mode     axml.EvalMode
}

// NewQueryService builds a query service. mat supplies nested
// materialization during evaluation and may be nil for static documents.
func NewQueryService(desc Descriptor, store *axml.Store, template string, mat axml.Materializer, mode axml.EvalMode) *QueryService {
	desc.Kind = KindQuery
	return &QueryService{desc: desc, store: store, template: template, mat: mat, mode: mode}
}

// Descriptor implements Service.
func (s *QueryService) Descriptor() Descriptor { return s.desc }

// Invoke implements Service: it evaluates the bound query inside the
// caller's transaction and returns each result as a serialized fragment.
func (s *QueryService) Invoke(ctx context.Context, req *Request) ([]string, error) {
	src := substitute(s.template, req.Params, true)
	q, err := axml.ParseQuery(src)
	if err != nil {
		return nil, fmt.Errorf("services: query %q: %w", s.desc.Name, err)
	}
	res, err := s.store.Apply(req.Txn, axml.NewQuery(q), s.mat, s.mode)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, it := range res.Query.Items {
		if it.Attr != "" {
			v, _ := it.Node.Attr(it.Attr)
			out = append(out, fmt.Sprintf("<%s>%s</%s>", it.Attr, v, it.Attr))
			continue
		}
		out = append(out, xmldom.MarshalString(it.Node))
	}
	return out, nil
}

// UpdateService exposes an update action (insert/delete/replace) over a
// store as a service. The action XML template may reference $name
// parameters; inside <data> they substitute verbatim, inside <location>
// they are quoted by the query parser rules (the template author decides by
// writing quotes or not — substitution here is verbatim; use
// NewQueryService semantics for quoting needs).
type UpdateService struct {
	desc     Descriptor
	store    *axml.Store
	template string
	mat      axml.Materializer
}

// NewUpdateService builds an update service from an <action> XML template.
func NewUpdateService(desc Descriptor, store *axml.Store, template string, mat axml.Materializer) *UpdateService {
	desc.Kind = KindUpdate
	return &UpdateService{desc: desc, store: store, template: template, mat: mat}
}

// Descriptor implements Service.
func (s *UpdateService) Descriptor() Descriptor { return s.desc }

// Invoke implements Service. It applies the action and returns a summary
// fragment carrying the inserted node IDs (the paper: "we assume that the
// [insert] operation returns the (unique) ID of the inserted node").
func (s *UpdateService) Invoke(ctx context.Context, req *Request) ([]string, error) {
	src := substitute(s.template, req.Params, false)
	action, err := axml.ParseAction(src)
	if err != nil {
		return nil, fmt.Errorf("services: update %q: %w", s.desc.Name, err)
	}
	res, err := s.store.Apply(req.Txn, action, s.mat, axml.Lazy)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<updateResult deleted="%d" affected="%d">`, len(res.DeletedXML), res.AffectedNodes)
	for _, id := range res.InsertedIDs {
		fmt.Fprintf(&b, `<insertedID>%d</insertedID>`, id)
	}
	b.WriteString(`</updateResult>`)
	return []string{b.String()}, nil
}

// FuncService adapts a Go function as a generic service; it simulates the
// external Web services of the paper's examples (getPoints, ...) and
// supports scripted fault injection for recovery experiments.
type FuncService struct {
	desc Descriptor
	fn   func(ctx context.Context, params map[string]string) ([]string, error)
}

// NewFuncService wraps fn as a service.
func NewFuncService(desc Descriptor, fn func(ctx context.Context, params map[string]string) ([]string, error)) *FuncService {
	if desc.Kind == "" {
		desc.Kind = KindGeneric
	}
	return &FuncService{desc: desc, fn: fn}
}

// Descriptor implements Service.
func (s *FuncService) Descriptor() Descriptor { return s.desc }

// Invoke implements Service.
func (s *FuncService) Invoke(ctx context.Context, req *Request) ([]string, error) {
	return s.fn(ctx, req.Params)
}

// StaticService always returns fixed fragments; convenient in tests and
// examples.
func StaticService(desc Descriptor, fragments ...string) *FuncService {
	return NewFuncService(desc, func(context.Context, map[string]string) ([]string, error) {
		return fragments, nil
	})
}
