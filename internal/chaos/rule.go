// Package chaos is the deterministic fault-injection layer of the AXML
// transactional framework, in the spirit of FoundationDB-style simulation
// testing and Jepsen-style fault schedules: a p2p.Transport wrapper that
// interposes on every message and, driven by a seeded schedule and a small
// rule DSL, injects message drops, delays, duplications, reorders, peer
// crashes (with optional restart + WAL-replay recovery), asymmetric
// partitions and mid-stream disconnects. Every injected fault emits an
// internal/obs span, so chaos shows up in traces next to the protocol
// events it perturbs.
//
// On top of the wrapper, the conformance runner (runner.go) executes the
// paper's Figure 1 workload and the §3.3 disconnection scenarios (a)–(d)
// under fault schedules across a seed sweep, then asserts the
// relaxed-atomicity invariants exported by internal/core. Failures
// reproduce from a one-line command: axmlbench -run chaos -seed N.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"axmltx/internal/p2p"
)

// Fault identifies one injectable fault type.
type Fault string

const (
	// FaultDrop silently loses the message (one-way sends vanish; requests
	// fail with the typed peer-down error, like a lost datagram + timeout).
	FaultDrop Fault = "drop"
	// FaultDelay sleeps before delivery.
	FaultDelay Fault = "delay"
	// FaultDup delivers the message twice (at-least-once delivery; the
	// protocol's idempotency guards absorb it).
	FaultDup Fault = "dup"
	// FaultReorder holds a one-way message back and delivers it after the
	// next message on the same edge (synchronous requests cannot reorder
	// and pass through unchanged).
	FaultReorder Fault = "reorder"
	// FaultCrash kills a peer: the matched message dies with it and every
	// later delivery to or from the peer fails until it restarts (rule
	// option restart=N, after N blocked deliveries) or the injector heals.
	// Restart runs the peer's hook — core.Peer.Restart, i.e. WAL-replay
	// recovery.
	FaultCrash Fault = "crash"
	// FaultPartition blocks the matched message's (from → to) direction
	// only — an asymmetric partition — until the injector heals.
	FaultPartition Fault = "partition"
	// FaultHangup is a mid-stream disconnect: the request is delivered and
	// processed, but the response is torn down, so the sender sees the peer
	// die mid-conversation while the receiver's work happened.
	FaultHangup Fault = "hangup"
)

// Rule is one clause of a fault schedule: a fault plus matchers and
// modifiers. The zero value of every matcher means "any".
type Rule struct {
	Fault Fault

	// From/To match the message's sender/receiver; Peer names the crash
	// victim explicitly (default: the message's receiver).
	From, To, Peer p2p.PeerID
	// Kind matches the message kind ("invoke", "result", "abort", ...).
	Kind string
	// Service matches the message subject (the service name on
	// invoke/result/redirect/stream messages).
	Service string
	// Depth matches invocations at least this deep in the active-peer
	// chain (1 = invoked by the origin). Only invoke messages carry a
	// chain; other kinds never match a Depth-constrained rule.
	Depth int

	// P is the injection probability per matching message (default 1).
	P float64
	// After skips the first After matching messages (counted per directed
	// edge, deterministically).
	After int
	// Times caps injections (per directed edge); 0 = unlimited.
	Times int
	// Delay is the sleep for delay faults (key "for", e.g. for=5ms).
	Delay time.Duration
	// Restart, for crash faults, revives the peer after that many blocked
	// deliveries, running its restart hook; 0 = stay down until healed.
	Restart int
}

// String renders the rule in the DSL so failing runs print reproducible
// schedules.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(string(r.Fault))
	add := func(k, v string) {
		if v != "" {
			b.WriteByte(' ')
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	add("from", string(r.From))
	add("to", string(r.To))
	add("peer", string(r.Peer))
	add("kind", r.Kind)
	add("service", r.Service)
	if r.Depth > 0 {
		add("depth", strconv.Itoa(r.Depth))
	}
	if r.P > 0 && r.P < 1 {
		add("p", strconv.FormatFloat(r.P, 'g', -1, 64))
	}
	if r.After > 0 {
		add("after", strconv.Itoa(r.After))
	}
	if r.Times > 0 {
		add("times", strconv.Itoa(r.Times))
	}
	if r.Delay > 0 {
		add("for", r.Delay.String())
	}
	if r.Restart > 0 {
		add("restart", strconv.Itoa(r.Restart))
	}
	return b.String()
}

// FormatRules renders a schedule in the DSL.
func FormatRules(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "; ")
}

// ParseRules parses a semicolon-separated fault schedule, e.g.:
//
//	drop kind=invoke to=AP4 p=0.5; crash peer=AP3 kind=result restart=3;
//	partition from=AP2 to=AP4; delay kind=chain for=2ms after=1 times=4
//
// Each clause is a fault name followed by space-separated key=value
// matchers/modifiers (keys: from, to, peer, kind, service, depth, p, after,
// times, for, restart). An empty string parses to an empty schedule.
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(src, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Fields(clause)
		r := Rule{Fault: Fault(fields[0])}
		switch r.Fault {
		case FaultDrop, FaultDelay, FaultDup, FaultReorder, FaultCrash, FaultPartition, FaultHangup:
		default:
			return nil, fmt.Errorf("chaos: unknown fault %q in %q", fields[0], clause)
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: malformed option %q in %q (want key=value)", f, clause)
			}
			var err error
			switch k {
			case "from":
				r.From = p2p.PeerID(v)
			case "to":
				r.To = p2p.PeerID(v)
			case "peer":
				r.Peer = p2p.PeerID(v)
			case "kind":
				r.Kind = v
			case "service":
				r.Service = v
			case "depth":
				r.Depth, err = strconv.Atoi(v)
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.P < 0 || r.P > 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "after":
				r.After, err = strconv.Atoi(v)
			case "times":
				r.Times, err = strconv.Atoi(v)
			case "for":
				r.Delay, err = time.ParseDuration(v)
			case "restart":
				r.Restart, err = strconv.Atoi(v)
			default:
				return nil, fmt.Errorf("chaos: unknown option %q in %q", k, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: option %q in %q: %v", f, clause, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// matches reports whether the rule's matchers accept the message. depth is
// the invocation depth (0 = unknown / not an invoke).
func (r Rule) matches(msg *p2p.Message, depth int) bool {
	if r.From != "" && r.From != msg.From {
		return false
	}
	if r.To != "" && r.To != msg.To {
		return false
	}
	if r.Kind != "" && r.Kind != msg.Kind {
		return false
	}
	if r.Service != "" && r.Service != msg.Subject {
		return false
	}
	if r.Depth > 0 && depth < r.Depth {
		return false
	}
	return true
}
