package chaos

import (
	"context"
	"fmt"
	"time"

	"axmltx/internal/core"
	"axmltx/internal/membership"
	"axmltx/internal/p2p"
	"axmltx/internal/xmldom"
)

// shardSrc is the sharded workload document: three fragment-sized player
// subtrees plus a small meta child that stays in the spine.
const shardSrc = `<league>
  <player><name>Federer</name><ranking>1</ranking><points>8000</points></player>
  <player><name>Djokovic</name><ranking>2</ranking><points>7500</points></player>
  <player><name>Murray</name><ranking>3</ranking><points>7000</points></player>
  <meta/>
</league>`

// runShard drives the skewed-hotspot sharding scenario (sh): AP1 shards a
// document into three fragments advertised through the gossip catalog; AP3
// hammers assembly from across the cluster; AP1 then migrates a fragment to
// AP2, which dies the moment the handoff acks — before its announcement can
// spread. The failure detector must fire OnDown at the source, whose shadow
// copy is re-promoted at a higher version (WAL-logged compensation, §3.1),
// and assembly must converge back to the reference document. Safety — every
// assembly that SUCCEEDS equals the reference, i.e. no reader ever observes
// a torn fragment set — is asserted on every run; the liveness outcomes
// (migration completes, promotion fires, assembly recovers) gate canonical
// runs only.
func runShard(c *Cluster) runResult {
	c.Gossip = &membership.Config{
		ProbeInterval:  5 * time.Millisecond,
		SuspectRounds:  2,
		IndirectProbes: 2,
		Fanout:         2,
	}
	const docName = "L.xml"
	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3", "AP4"} {
		c.Add(id, core.Options{Super: id == "AP1"})
	}
	// The transactional workload runs against AP4, keeping AP2 — the crash
	// victim — out of the transaction so fragment recovery and transaction
	// recovery stay independently observable.
	c.HostEntry("AP4", "S4w", "D4.xml", "D4")
	ap1, ap3 := c.Peers["AP1"], c.Peers["AP3"]
	if err := ap1.HostDocument(docName, shardSrc); err != nil {
		panic(err)
	}
	if err := ap1.ShardHostedDocument(docName, 0); err != nil {
		panic(err)
	}
	c.ConnectGossip()
	bg := context.Background()
	c.GossipRounds(bg, 10) // converged bootstrap
	for i := 0; i < 300; i++ {
		ads, spine := c.Members["AP3"].DocumentFragments(docName)
		if len(ads) == 3 && len(spine) == 1 {
			break
		}
		c.GossipRounds(bg, 1)
	}
	c.SnapshotAll()

	var res runResult
	txc := ap1.Begin()
	res.txn = txc.ID
	if _, err := ap1.Call(bg, txc, "AP4", "S4w", nil); err != nil {
		_ = ap1.Abort(bg, txc)
	} else {
		res.committed = ap1.Commit(bg, txc) == nil
	}

	ref, err := xmldom.ParseString(docName, shardSrc)
	if err != nil {
		panic(err)
	}
	// Skewed read traffic: AP3 repeatedly reassembles the document it holds
	// no fragment of. Under noise individual fetches may fail — only the
	// assemblies that succeed are held to the safety bar.
	assembled := 0
	for i := 0; i < 6; i++ {
		doc, err := ap3.AssembleSharded(bg, docName)
		if err != nil {
			continue
		}
		assembled++
		if !doc.Equal(ref) {
			res.safety = append(res.safety, "AP3 assembled a torn document pre-migration")
		}
	}
	if assembled == 0 {
		res.coherence = append(res.coherence, "no pre-migration assembly succeeded")
	}

	// Migrate the first fragment (deterministic: Fragments() sorts by ID)
	// and crash the destination the instant the handoff acks, before its
	// announcement can spread through the catalog.
	frags := ap1.Store().Fragments()
	if len(frags) == 0 {
		res.coherence = append(res.coherence, "source holds no fragments to migrate")
		return res
	}
	id := frags[0].ID
	baseVersion := frags[0].Version
	if err := ap1.MigrateFragment(bg, id, "AP2"); err != nil {
		res.coherence = append(res.coherence, "migration handoff failed: "+err.Error())
		return res
	}
	c.Inj.Crash("AP2")
	for i := 0; i < 300; i++ {
		if st, ok := c.Members["AP1"].StateOf("AP2"); ok && st == membership.StateDead {
			break
		}
		c.GossipRounds(bg, 1)
	}
	// Death detection fires OnDown → ReconcileFragments at the source; keep
	// gossiping until the shadow copy is promoted back into the store.
	for i := 0; i < 300; i++ {
		if _, held := ap1.Store().GetFragment(id); held {
			break
		}
		c.GossipRounds(bg, 1)
	}
	promoted, held := ap1.Store().GetFragment(id)
	switch {
	case !held:
		res.coherence = append(res.coherence, "source never re-promoted the fragment after the destination died")
	case promoted.Version <= baseVersion+1:
		res.coherence = append(res.coherence, fmt.Sprintf(
			"promoted fragment version %d does not outrank the shipped copy (%d)", promoted.Version, baseVersion+1))
	}
	if held && ap1.Metrics().FragPromotions.Load() == 0 {
		res.coherence = append(res.coherence, "promotion left no FragPromotions trace")
	}

	// Assembly must converge back to the reference from the promoted copy.
	// AP3 may still trust the dead destination's advertisement for a few
	// rounds; fetch fallback plus catalog pruning get it there.
	finalOK := false
	for i := 0; i < 10 && !finalOK; i++ {
		doc, err := ap3.AssembleSharded(bg, docName)
		if err != nil {
			c.GossipRounds(bg, 5)
			continue
		}
		finalOK = true
		if !doc.Equal(ref) {
			res.safety = append(res.safety, "AP3 assembled a torn document post-promotion")
		}
	}
	if !finalOK {
		res.coherence = append(res.coherence, "no assembly succeeded after the fragment owner crash")
	}
	if ap3.Metrics().FragFetches.Load() < 3 {
		res.coherence = append(res.coherence, "AP3 assembled without remote fragment fetches")
	}
	return res
}
