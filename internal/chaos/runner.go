package chaos

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"axmltx/internal/axml"
	"axmltx/internal/core"
	"axmltx/internal/membership"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/replication"
	"axmltx/internal/services"
	"axmltx/internal/xmldom"
)

// Config selects one conformance run: a scenario, a seed, and an optional
// noise schedule layered on top of the scenario's scripted fault.
type Config struct {
	// Scenario is one of Scenarios(): "fig1" (Figure 1 workload, commits),
	// "fig1f" (Figure 1 with the F5 service fault at AP5, aborts), "sphere"
	// (Figure 1 with every peer super — a Sphere of Atomicity), the §3.3
	// disconnection scenarios "a"–"d", and "bg" — scenario "b" rerun with
	// gossip membership maintaining the replica catalog instead of static
	// table entries, plus an extra S3 replica that dies before the workload
	// so forward recovery must pick the live one.
	Scenario string
	// Seed drives every probabilistic decision in the fault schedule.
	Seed int64
	// Faults is an extra noise schedule in the rule DSL (see ParseRules),
	// layered after the scenario's own scripted rules. Empty means a
	// canonical run, which additionally asserts the scenario's liveness
	// outcome (commit/abort, reuse); with noise only safety is asserted.
	Faults string
	// Sink, when non-nil, receives every span of the run — protocol spans
	// and the injector's KindFault spans interleaved.
	Sink obs.Sink
}

// Report is the outcome of one conformance run. Violations empty = the run
// conforms; anything else is a reproducible counterexample (see Repro).
type Report struct {
	Scenario   string
	Seed       int64
	Faults     string // the noise schedule (not the scenario's own rules)
	Txn        string
	Committed  bool
	Canonical  bool
	Injections int
	Restarts   int
	WorkReused int64
	Violations []string
}

// Repro renders the one-line command that replays this run.
func (r *Report) Repro() string {
	s := fmt.Sprintf("axmlbench -run chaos -scenario %s -seed %d", r.Scenario, r.Seed)
	if r.Faults != "" {
		s += fmt.Sprintf(" -faults %q", r.Faults)
	}
	return s
}

// Scenarios lists the conformance scenarios in sweep order.
func Scenarios() []string {
	return []string{"fig1", "fig1f", "sphere", "a", "b", "bg", "c", "d", "cc", "sh"}
}

// scenarioRules returns the scripted fault that defines each scenario —
// the disconnection of §3.3 expressed as a schedule rule, so it rides the
// same injection machinery as the noise.
func scenarioRules(scenario string) ([]Rule, error) {
	switch scenario {
	case "fig1", "fig1f", "sphere", "c", "cc", "sh":
		// fig1* fail (or don't) at the service level; (c), (cc) and (sh)
		// crash programmatically mid-run, no message triggers it.
		return nil, nil
	case "a":
		// Leaf AP6 dies the moment work reaches it (§3.3 case a).
		return []Rule{{Fault: FaultCrash, Peer: "AP6", To: "AP6", Kind: p2p.KindInvoke, Times: 1}}, nil
	case "b", "bg":
		// AP3 dies exactly when AP6 pushes results back to it (§3.3 case b):
		// the child discovers the death and redirects past the dead parent.
		// "bg" keeps the same scripted fault but sources the replica catalog
		// from gossip rather than static table entries.
		return []Rule{{Fault: FaultCrash, Peer: "AP3", To: "AP3", Kind: p2p.KindResult, Times: 1}}, nil
	case "d":
		// AP3 dies mid-stream to its sibling AP4 (§3.3 case d): the third
		// batch never arrives and silence reveals the death.
		return []Rule{{Fault: FaultCrash, Peer: "AP3", To: "AP4", Kind: p2p.KindStream, After: 2, Times: 1}}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown scenario %q (want one of %v)", scenario, Scenarios())
	}
}

// runResult carries what the workload learned before the heal phase.
type runResult struct {
	txn       string
	committed bool
	sphereOK  bool
	// coherence collects the cache-coherence findings of scenario cc and the
	// sharding liveness findings of scenario sh; they gate canonical runs
	// only (noise may legitimately abort the workload before those phases).
	coherence []string
	// safety collects scenario-specific findings that must hold on EVERY
	// run, noise or not — e.g. a successfully assembled sharded document
	// that differs from the reference (a torn fragment set).
	safety []string
}

// Run executes one conformance run: build the scenario's cluster behind the
// injector, drive the workload, heal (lift partitions, restart crashed
// peers through WAL replay), reconcile stragglers with the final decision,
// and check the relaxed-atomicity invariants on every peer's log.
func Run(cfg Config) (*Report, error) {
	if cfg.Scenario == "" {
		cfg.Scenario = "fig1"
	}
	noise, err := ParseRules(cfg.Faults)
	if err != nil {
		return nil, err
	}
	scripted, err := scenarioRules(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	rules := append(append([]Rule(nil), scripted...), noise...)
	inj := NewInjector(cfg.Seed, rules, cfg.Sink)
	c := NewCluster(inj)
	c.Sink = cfg.Sink
	rep := &Report{
		Scenario:  cfg.Scenario,
		Seed:      cfg.Seed,
		Faults:    cfg.Faults,
		Canonical: len(noise) == 0,
	}

	var res runResult
	switch cfg.Scenario {
	case "fig1", "fig1f", "sphere":
		res = runFig1(c, cfg.Scenario)
	case "cc":
		res = runCacheCoherence(c)
	case "sh":
		res = runShard(c)
	default:
		res = runDisconnection(c, cfg.Scenario)
	}
	rep.Txn = res.txn
	rep.Committed = res.committed

	// Heal: chaos ends, crashed peers restart (WAL-replay recovery),
	// partitions lift, held messages flush.
	time.Sleep(10 * time.Millisecond) // let in-flight async work land or fail
	inj.Heal()

	// Reconcile + converge: deliver the final decision to stragglers that
	// were cut off when it was made — the eventual outcome propagation a
	// rejoined peer performs (§3.3) — and poll the invariants until every
	// log is consistent or the deadline expires. Both message handlers are
	// idempotent, so re-sending each round is safe.
	rec := c.Reconciler()
	kind := p2p.KindAbort
	if res.committed {
		kind = p2p.KindCommit
	}
	ids := c.peerIDs()
	deadline := time.Now().Add(3 * time.Second)
	for {
		for _, id := range ids {
			_ = rec.Send(context.Background(), id, &p2p.Message{Kind: kind, Txn: res.txn})
		}
		time.Sleep(5 * time.Millisecond)
		rep.Violations = c.checkInvariants(res.txn, res.committed)
		if len(rep.Violations) == 0 || time.Now().After(deadline) {
			break
		}
	}
	_ = rec.Close()
	rep.Violations = append(rep.Violations, res.safety...)

	rep.Injections = len(inj.Injections())
	rep.Restarts = inj.Restarts()
	var total core.MetricsSnapshot
	for _, p := range c.Peers {
		total.Add(p.Metrics().Snapshot())
	}
	rep.WorkReused = total.WorkReused

	if rep.Canonical {
		rep.Violations = append(rep.Violations, canonicalViolations(cfg.Scenario, c, res, rep)...)
	}
	return rep, nil
}

// peerIDs returns the cluster's peers in sorted order, for deterministic
// reconciliation and reporting.
func (c *Cluster) peerIDs() []p2p.PeerID {
	ids := make([]p2p.PeerID, 0, len(c.Peers))
	for id := range c.Peers {
		ids = append(ids, id)
	}
	sortPeers(ids)
	return ids
}

// checkInvariants runs the per-peer safety checks: replayable logs, reverse
// compensation order, terminal completeness, and — on a global abort —
// every document back to its snapshot.
func (c *Cluster) checkInvariants(txn string, committed bool) []string {
	var out []string
	for _, id := range c.peerIDs() {
		log := c.Logs[id]
		if err := core.CheckReplayConsistency(log.Records()); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", id, err))
		}
		if err := core.CheckReverseCompensationOrder(log, txn); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", id, err))
		}
		if err := core.CheckCompensationComplete(log, txn); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", id, err))
		}
	}
	if !committed {
		out = append(out, c.RestoredViolations()...)
	}
	return out
}

// canonicalViolations asserts the scenario's liveness outcome on noise-free
// runs: the scripted fault alone must produce the paper's result.
func canonicalViolations(scenario string, c *Cluster, res runResult, rep *Report) []string {
	var out []string
	wantCommit := scenario != "fig1f" && scenario != "a"
	if res.committed != wantCommit {
		out = append(out, fmt.Sprintf("canonical %s run: committed=%v, want %v", scenario, res.committed, wantCommit))
	}
	switch scenario {
	case "sphere":
		if !res.sphereOK {
			out = append(out, "canonical sphere run: all-super chain not recognized as a Sphere of Atomicity")
		}
	case "b", "bg":
		if rep.WorkReused == 0 {
			out = append(out, fmt.Sprintf("canonical %s run: redirected results were not reused by the forward recovery", scenario))
		}
		if scenario == "bg" {
			// Forward recovery tries exactly one alternative, so a commit
			// proves the live replica was chosen — but assert the placement
			// directly: the dead replica AP3c must hold no work, the live
			// replica AP3b must hold the recovered invocation.
			if n := c.CountEntries("AP3c", "D3c.xml"); n != 0 {
				out = append(out, fmt.Sprintf("canonical bg run: dead replica AP3c holds %d entr(ies), want 0 (recovery must pick a live replica)", n))
			}
			if n := c.CountEntries("AP3b", "D3b.xml"); n == 0 {
				out = append(out, "canonical bg run: live replica AP3b holds no entries, want the forward-recovered S3 invocation")
			}
		}
	case "c":
		// The dead peer's orphaned descendant must have discarded its work
		// (§3.3: "not continue wasting effort") even though the transaction
		// as a whole commits via the replica.
		if n := c.CountEntries("AP6", "D6.xml"); n != 0 {
			out = append(out, fmt.Sprintf("canonical c run: AP6 kept %d orphaned entr(ies), want 0 (orphaned work discarded)", n))
		}
	case "cc", "sh":
		for _, v := range res.coherence {
			out = append(out, "canonical "+scenario+" run: "+v)
		}
	}
	return out
}

// runFig1 drives the Figure 1 workload: AP1's composite S1 fans out to
// S2@AP2 and S3@AP3; S3 to S4@AP4 and S5@AP5; S5 to S6@AP6. Variant
// "fig1f" injects the paper's F5 service fault at AP5 (nested backward
// recovery aborts everything); "sphere" makes every peer super.
func runFig1(c *Cluster, variant string) runResult {
	ids := []p2p.PeerID{"AP1", "AP2", "AP3", "AP4", "AP5", "AP6"}
	for _, id := range ids {
		c.Add(id, core.Options{Super: variant == "sphere" || id == "AP1"})
	}
	c.HostEntry("AP2", "S2", "D2.xml", "D2")
	c.HostEntry("AP4", "S4", "D4.xml", "D4")
	c.HostEntry("AP6", "S6", "D6.xml", "D6")
	c.HostComposite("AP5", "S5", "D5.xml", "D5", [][2]string{{"S6", "AP6"}}, "")
	if variant == "fig1f" {
		failService(c.Peers["AP5"], "S5", "F5")
	}
	c.HostComposite("AP3", "S3", "D3.xml", "D3", [][2]string{{"S4", "AP4"}, {"S5", "AP5"}}, "")
	c.HostComposite("AP1", "S1", "D1.xml", "D1", [][2]string{{"S2", "AP2"}, {"S3", "AP3"}}, "")
	c.SnapshotAll()

	ap1 := c.Peers["AP1"]
	txc := ap1.Begin()
	res := runResult{txn: txc.ID}
	q, err := axml.ParseQuery("Select d/updateResult from d in D1")
	if err != nil {
		panic(err)
	}
	if _, err := ap1.Exec(context.Background(), txc, axml.NewQuery(q)); err != nil {
		_ = ap1.Abort(context.Background(), txc)
		return res
	}
	res.sphereOK = ap1.SpheresOfAtomicityHolds(txc)
	res.committed = ap1.Commit(context.Background(), txc) == nil
	return res
}

// runDisconnection drives the §3.3 disconnection scenarios over the
// topology [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]] with AP3b replicating
// S3. Every step tolerates noise-induced failure by falling back to a clean
// abort — under noise the runner asserts safety, not the scripted outcome.
func runDisconnection(c *Cluster, scenario string) runResult {
	gossip := scenario == "bg"
	if gossip {
		c.Gossip = &membership.Config{
			ProbeInterval:  5 * time.Millisecond,
			SuspectRounds:  2,
			IndirectProbes: 2,
			Fanout:         2,
		}
	}
	ids := []p2p.PeerID{"AP1", "AP2", "AP3", "AP4", "AP5", "AP6", "AP3b"}
	if gossip {
		ids = append(ids, "AP3c")
	}
	for _, id := range ids {
		c.Add(id, core.Options{Super: id == "AP1"})
	}
	c.HostEntry("AP2", "S2w", "D2.xml", "D2")
	c.HostEntry("AP3", "S3w", "D3.xml", "D3")
	c.HostEntry("AP4", "S4w", "D4.xml", "D4")
	c.HostEntry("AP5", "S5", "D5.xml", "D5")
	c.HostEntry("AP6", "S6", "D6.xml", "D6")
	c.HostEntry("AP3b", "S3", "D3b.xml", "D3b") // replica provider of S3
	if gossip {
		// The catalog is gossip-maintained: hosting announced every placement
		// above, so replicas of S3 spread without static table entries. A
		// second replica AP3c joins, is learned everywhere, and then dies
		// before the workload — the catalog must prune it so forward recovery
		// (which tries exactly one alternative) lands on the live AP3b.
		c.HostEntry("AP3c", "S3", "D3c.xml", "D3c")
		c.ConnectGossip()
		gctx := context.Background()
		ap2r := c.Peers["AP2"].Replicas()
		for i := 0; i < 300; i++ {
			if hasProvider(ap2r, "S3", "AP3b") && hasProvider(ap2r, "S3", "AP3c") {
				break
			}
			c.GossipRounds(gctx, 1)
		}
		c.Inj.Crash("AP3c")
		for i := 0; i < 300; i++ {
			if st, ok := c.Members["AP2"].StateOf("AP3c"); ok && st == membership.StateDead {
				break
			}
			c.GossipRounds(gctx, 1)
		}
	} else {
		for _, p := range c.Peers {
			p.Replicas().AddService("S3", "AP3")
			p.Replicas().AddService("S3", "AP3b")
		}
	}
	c.SnapshotAll()

	ap1, ap2, ap3, ap4 := c.Peers["AP1"], c.Peers["AP2"], c.Peers["AP3"], c.Peers["AP4"]
	bg := context.Background()
	resultCh := make(chan string, 16)
	ap2.OnResult(func(txn string, resp *core.InvokeResponse) {
		select {
		case resultCh <- resp.Service:
		default:
		}
	})

	txc := ap1.Begin()
	res := runResult{txn: txc.ID}
	abort := func() runResult {
		_ = ap1.Abort(bg, txc)
		return res
	}
	finish := func(recovered bool) runResult {
		if recovered {
			res.committed = ap1.Commit(bg, txc) == nil
			return res
		}
		time.Sleep(20 * time.Millisecond)
		return abort()
	}

	// The chain prefix: AP1 → AP2 (S2w); AP2 then drives the branches.
	if _, err := ap1.Call(bg, txc, "AP2", "S2w", nil); err != nil {
		return abort()
	}
	ctx2, ok := ap2.Manager().Get(txc.ID)
	if !ok {
		return abort()
	}

	switch scenario {
	case "a":
		// Leaf AP6 crashes on invocation (scripted rule); AP3 detects and
		// the nested protocol aborts the whole transaction.
		if _, err := ap2.Call(bg, ctx2, "AP3", "S3w", nil); err != nil {
			return abort()
		}
		ctx3, ok := ap3.Manager().Get(txc.ID)
		if !ok {
			return abort()
		}
		if _, err := ap3.Call(bg, ctx3, "AP6", "S6", nil); err != nil {
			return abort()
		}
		// Only reachable when noise pre-empted the scripted crash somehow.
		return finish(true)

	case "b", "bg":
		// AP3 invokes S6 asynchronously, then crashes exactly when AP6
		// pushes the result back (scripted rule); AP6 redirects past the
		// dead parent to AP2, which forward-recovers S3 on AP3b reusing the
		// redirected work. In "bg" the S3 replica set comes from the gossip
		// catalog, already pruned of the dead AP3c.
		release := make(chan struct{})
		var once sync.Once
		rel := func() { once.Do(func() { close(release) }) }
		defer rel()
		gate(c.Peers["AP6"], "S6", release)
		ap3.HostService(services.NewFuncService(
			services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
			func(cctx context.Context, params map[string]string) ([]string, error) {
				env, _ := core.EnvFrom(cctx)
				if _, err := env.Peer.Call(context.Background(), env.Txn, "AP3", "S3w", nil); err != nil {
					return nil, err
				}
				if err := env.Peer.CallAsync(context.Background(), env.Txn, "AP6", "S6", nil); err != nil {
					return nil, err
				}
				return []string{`<updateResult pending="S6"/>`}, nil
			}))
		if _, err := ap2.Call(bg, ctx2, "AP3", "S3", nil); err != nil {
			return abort()
		}
		rel()
		return finish(waitService(resultCh, "S3", 5*time.Second))

	case "c":
		// AP3 dies mid-processing (programmatic crash — nothing on the wire
		// triggers it); AP2's pinger detects the death and forward-recovers
		// S3 on AP3b, while AP6's already-finished work stays orphaned until
		// the commit reaches it.
		hang := make(chan struct{})
		defer close(hang)
		ap3.HostService(services.NewFuncService(
			services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
			func(cctx context.Context, params map[string]string) ([]string, error) {
				env, _ := core.EnvFrom(cctx)
				if _, err := env.Peer.Call(context.Background(), env.Txn, "AP3", "S3w", nil); err != nil {
					return nil, err
				}
				if _, err := env.Peer.Call(context.Background(), env.Txn, "AP6", "S6", nil); err != nil {
					return nil, err
				}
				<-hang
				return nil, nil
			}))
		if err := ap2.CallAsync(bg, ctx2, "AP3", "S3", nil); err != nil {
			return abort()
		}
		waitTrue(2*time.Second, func() bool { return c.CountEntries("AP6", "D6.xml") == 1 })
		c.Inj.Crash("AP3")
		pinger := p2p.NewPinger(ap2.Transport(), time.Millisecond, 1,
			func(id p2p.PeerID) { ap2.OnPeerDown(id) })
		defer pinger.Stop()
		pinger.Watch("AP3")
		pinger.ProbeNow(bg)
		return finish(waitService(resultCh, "S3", 5*time.Second))

	case "d":
		// AP3 streams to its sibling AP4 and crashes mid-stream (scripted
		// rule on the third batch); stream silence reveals the death, AP4
		// notifies via the chain, and AP2 forward-recovers on AP3b.
		ap3.HostService(services.NewFuncService(
			services.Descriptor{Name: "S3", ResultName: "updateResult", TargetDocument: "D3.xml"},
			func(cctx context.Context, params map[string]string) ([]string, error) {
				env, _ := core.EnvFrom(cctx)
				if _, err := env.Peer.Call(context.Background(), env.Txn, "AP3", "S3w", nil); err != nil {
					return nil, err
				}
				return env.Peer.Call(context.Background(), env.Txn, "AP6", "S6", nil)
			}))
		if _, err := ap2.Call(bg, ctx2, "AP3", "S3", nil); err != nil {
			return abort()
		}
		if _, err := ap2.Call(bg, ctx2, "AP4", "S4w", nil); err != nil {
			return abort()
		}
		silence := make(chan struct{}, 1)
		watcher := services.NewStreamWatcher(40*time.Millisecond, func() {
			select {
			case silence <- struct{}{}:
			default:
			}
		})
		ap4.OnStream(func(b *core.StreamBatch) { watcher.Observe() })
		watcher.Start()
		defer watcher.Stop()
		for seq := 0; seq < 3; seq++ {
			_ = ap3.StreamTo("AP4", &core.StreamBatch{Txn: txc.ID, Service: "S3", Seq: seq})
		}
		select {
		case <-silence:
		case <-time.After(5 * time.Second):
		}
		ap4.NotifySiblingDown(txc.ID, "AP3")
		return finish(waitService(resultCh, "S3", 5*time.Second))

	default:
		panic("chaos: unknown scenario " + scenario)
	}
}

// runCacheCoherence drives the cache-coherence scenario (cc): AP2
// materializes a call with a short freshness window and advertises the
// cached result through gossip; AP3 fetches it over KindCacheFetch instead
// of re-invoking the provider. Then AP2 — the cache owner — crashes and the
// window expires while it is gone. Once the failure detector prunes AP2, no
// surviving catalog may still hold a usable advertisement, and AP3's next
// materialization must reach the provider again: no transaction observes a
// result older than its freshness window.
func runCacheCoherence(c *Cluster) runResult {
	c.Gossip = &membership.Config{
		ProbeInterval:  5 * time.Millisecond,
		SuspectRounds:  2,
		IndirectProbes: 2,
		Fanout:         2,
	}
	const window = 40 * time.Millisecond
	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3", "PR"} {
		c.Add(id, core.Options{Super: id == "AP1", CallCacheCapacity: 16})
	}
	var gen atomic.Int64
	c.Peers["PR"].HostService(services.NewFuncService(
		services.Descriptor{Name: "quote", ResultName: "r"},
		func(cctx context.Context, params map[string]string) ([]string, error) {
			return []string{fmt.Sprintf(`<r gen="%d"/>`, gen.Add(1))}, nil
		}))
	src := fmt.Sprintf(`<C><axml:sc mode="replace" methodName="quote" serviceURL="PR" frequency="%s"/></C>`, window)
	host := func(id p2p.PeerID, doc string) {
		if err := c.Peers[id].HostDocument(doc, src); err != nil {
			panic(err)
		}
	}
	host("AP2", "C1.xml")
	host("AP3", "C2.xml")
	c.ConnectGossip()
	bg := context.Background()
	c.GossipRounds(bg, 10) // converged bootstrap
	c.SnapshotAll()

	var res runResult
	// The workload is three independent transactions; after each commit the
	// snapshot baseline moves forward so the abort-restoration invariant
	// always compares the current transaction against the state it started
	// from, even when noise aborts a later step.
	if res.txn, res.committed = materialize(c.Peers["AP2"], "C1.xml"); !res.committed {
		return res
	}
	c.SnapshotAll()
	c.GossipRounds(bg, 6) // propagate AP2's call advertisement
	if res.txn, res.committed = materialize(c.Peers["AP3"], "C2.xml"); !res.committed {
		return res
	}
	c.SnapshotAll()
	fetches := c.Peers["AP3"].Metrics().Snapshot().CacheFetches

	// The cache owner drops off and the freshness window expires while it is
	// gone; survivors must notice and stop trusting its advertisement.
	c.Inj.Crash("AP2")
	time.Sleep(window + window/2)
	for i := 0; i < 300; i++ {
		if st, ok := c.Members["AP3"].StateOf("AP2"); ok && st == membership.StateDead {
			break
		}
		c.GossipRounds(bg, 1)
	}
	now := time.Now()
	for _, id := range []p2p.PeerID{"AP1", "AP3", "PR"} {
		for _, e := range c.Members[id].CatalogSnapshot() {
			if e.Origin != "AP2" {
				continue
			}
			for _, ad := range e.Calls {
				if !ad.Inflight && now.Sub(time.Unix(0, ad.FetchedUnixNano)) <= time.Duration(ad.WindowNanos) {
					res.coherence = append(res.coherence,
						fmt.Sprintf("%s still holds a usable advertisement of the dead owner AP2", id))
				}
			}
		}
	}

	host("AP3", "C3.xml")
	if res.txn, res.committed = materialize(c.Peers["AP3"], "C3.xml"); !res.committed {
		return res
	}
	if n := gen.Load(); n != 2 {
		res.coherence = append(res.coherence, fmt.Sprintf(
			"provider generation = %d after the window expired, want 2 (1 = stale cache reuse, >2 = lost dedupe)", n))
	}
	if fetches == 0 {
		res.coherence = append(res.coherence, "AP3 never fetched the cached result from the owner before the crash")
	}
	if got := docString(c, "AP3", "C2.xml"); !strings.Contains(got, `gen="1"`) {
		res.coherence = append(res.coherence, "AP3's pre-crash fetch did not carry the owner's generation-1 result: "+got)
	}
	if got := docString(c, "AP3", "C3.xml"); !strings.Contains(got, `gen="2"`) {
		res.coherence = append(res.coherence, "AP3's post-expiry materialization is not the provider's generation-2 result: "+got)
	}
	return res
}

// materialize runs one transaction materializing every embedded call of the
// named document, committing on success and aborting on failure.
func materialize(p *core.Peer, doc string) (txn string, committed bool) {
	txc := p.Begin()
	if _, err := p.Store().MaterializeAll(txc.ID, doc, p); err != nil {
		_ = p.Abort(context.Background(), txc)
		return txc.ID, false
	}
	return txc.ID, p.Commit(context.Background(), txc) == nil
}

// docString renders a peer's document snapshot, empty when absent.
func docString(c *Cluster, id p2p.PeerID, doc string) string {
	d, ok := c.Peers[id].Store().Snapshot(doc)
	if !ok || d.Root() == nil {
		return ""
	}
	return xmldom.MarshalString(d.Root())
}

// failService wraps a registered service so it does its work and then fails
// with the named fault — the paper's F5 failure at AP5.
func failService(p *core.Peer, name, faultName string) {
	inner, ok := p.Registry().Get(name)
	if !ok {
		panic("chaos: no such service " + name)
	}
	p.Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			env, ok := core.EnvFrom(cctx)
			if !ok {
				return nil, fmt.Errorf("chaos: no engine environment")
			}
			if _, err := inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params}); err != nil {
				return nil, err
			}
			return nil, &services.Fault{Name: faultName, Msg: "injected service fault"}
		}))
}

// gate wraps a registered service so it blocks until release is closed.
func gate(p *core.Peer, name string, release <-chan struct{}) {
	inner, ok := p.Registry().Get(name)
	if !ok {
		panic("chaos: no such service " + name)
	}
	p.Registry().Register(services.NewFuncService(inner.Descriptor(),
		func(cctx context.Context, params map[string]string) ([]string, error) {
			<-release
			env, _ := core.EnvFrom(cctx)
			return inner.Invoke(cctx, &services.Request{Txn: env.Txn.ID, Params: params})
		}))
}

// waitService drains ch until the named service's result arrives or the
// timeout expires.
func waitService(ch <-chan string, service string, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		select {
		case got := <-ch:
			if got == service {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// hasProvider reports whether the table currently lists id as a provider of
// the service.
func hasProvider(t *replication.Table, svc string, id p2p.PeerID) bool {
	for _, p := range t.ServiceProviders(svc) {
		if p == id {
			return true
		}
	}
	return false
}

// waitTrue polls cond until it holds or the timeout expires.
func waitTrue(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
