package chaos

import (
	"testing"
	"time"

	"axmltx/internal/p2p"
)

func TestParseRulesRoundTrip(t *testing.T) {
	cases := []string{
		"drop kind=invoke to=AP4 p=0.5",
		"crash peer=AP3 kind=result restart=3",
		"partition from=AP2 to=AP4",
		"delay kind=chain for=2ms after=1 times=4",
		"dup kind=commit; reorder from=AP3 to=AP4 kind=stream",
		"hangup service=S3 depth=2",
	}
	for _, src := range cases {
		rules, err := ParseRules(src)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", src, err)
		}
		out := FormatRules(rules)
		again, err := ParseRules(out)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", out, err)
		}
		if FormatRules(again) != out {
			t.Fatalf("round trip diverged: %q -> %q -> %q", src, out, FormatRules(again))
		}
	}
}

func TestParseRulesFields(t *testing.T) {
	rules, err := ParseRules("delay from=AP1 to=AP2 kind=invoke service=S3 depth=2 p=0.25 after=1 times=3 for=5ms; crash peer=AP4 restart=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Fault != FaultDelay || r.From != "AP1" || r.To != "AP2" || r.Kind != "invoke" ||
		r.Service != "S3" || r.Depth != 2 || r.P != 0.25 || r.After != 1 || r.Times != 3 ||
		r.Delay != 5*time.Millisecond {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[1].Fault != FaultCrash || rules[1].Peer != "AP4" || rules[1].Restart != 2 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, src := range []string{
		"explode kind=invoke", // unknown fault
		"drop kindinvoke",     // malformed option
		"drop color=red",      // unknown option
		"drop p=1.5",          // probability out of range
		"delay for=fast",      // bad duration
		"crash restart=soon",  // bad int
	} {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("ParseRules(%q) accepted", src)
		}
	}
	if rules, err := ParseRules("  ; ;  "); err != nil || len(rules) != 0 {
		t.Errorf("blank schedule: rules=%v err=%v", rules, err)
	}
}

func TestRuleMatching(t *testing.T) {
	msg := &p2p.Message{From: "AP3", To: "AP6", Kind: p2p.KindInvoke, Subject: "S6"}
	cases := []struct {
		rule  Rule
		depth int
		want  bool
	}{
		{Rule{Fault: FaultDrop}, 0, true},
		{Rule{Fault: FaultDrop, From: "AP3"}, 0, true},
		{Rule{Fault: FaultDrop, From: "AP2"}, 0, false},
		{Rule{Fault: FaultDrop, To: "AP6", Kind: "invoke"}, 0, true},
		{Rule{Fault: FaultDrop, Kind: "result"}, 0, false},
		{Rule{Fault: FaultDrop, Service: "S6"}, 0, true},
		{Rule{Fault: FaultDrop, Service: "S3"}, 0, false},
		{Rule{Fault: FaultDrop, Depth: 2}, 3, true},
		{Rule{Fault: FaultDrop, Depth: 2}, 1, false},
	}
	for i, tc := range cases {
		if got := tc.rule.matches(msg, tc.depth); got != tc.want {
			t.Errorf("case %d (%s): matches = %v, want %v", i, tc.rule, got, tc.want)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	rules := []Rule{{Fault: FaultDrop, Kind: "invoke", P: 0.5}}
	outcome := func(seed int64) []bool {
		in := NewInjector(seed, rules, nil)
		var got []bool
		for i := 0; i < 64; i++ {
			v := in.decide(&p2p.Message{From: "A", To: "B", Kind: "invoke"}, false)
			got = append(got, v.drop)
		}
		return got
	}
	a, b := outcome(42), outcome(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	c := outcome(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-message schedules")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == 64 {
		t.Fatalf("p=0.5 produced %d/64 drops", drops)
	}
}
