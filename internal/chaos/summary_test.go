package chaos

import (
	"context"
	"fmt"
	"testing"

	"axmltx/internal/core"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
)

// TestClusterSummaryExpiresOnDeath checks the observability plane's death
// path end to end under fault injection, across several seeds: a four-peer
// cluster converges until every peer's merged view carries every origin's
// metric summary, then one peer crashes. Once the failure detector declares
// it dead, every survivor's plane must drop the dead origin — a crashed
// peer's metrics presented as a live cluster view would lie.
func TestClusterSummaryExpiresOnDeath(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	ids := []p2p.PeerID{"AP1", "AP2", "AP3", "AP4"}
	victim := p2p.PeerID("AP3")

	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := NewInjector(seed, nil, nil)
			c := NewCluster(inj)
			c.Gossip = quickGossip(3)
			for _, id := range ids {
				// A registry per peer activates the plane in core.NewPeer
				// (plane wiring needs Membership + MetricsRegistry).
				c.Add(id, core.Options{MetricsRegistry: obs.NewRegistry()})
			}
			ctx := context.Background()
			c.ConnectGossip()

			planes := func() map[p2p.PeerID][]string {
				out := make(map[p2p.PeerID][]string)
				for _, id := range ids {
					if inj.Crashed(id) {
						continue
					}
					out[id] = c.Peers[id].Cluster().Origins()
				}
				return out
			}
			converged := func() bool {
				for _, origins := range planes() {
					if len(origins) != len(ids) {
						return false
					}
				}
				return true
			}
			for i := 0; i < 200 && !converged(); i++ {
				c.GossipRounds(ctx, 1)
			}
			if !converged() {
				t.Fatalf("planes never converged: %v", planes())
			}

			inj.Crash(victim)
			expired := func() bool {
				for id, origins := range planes() {
					if id == victim {
						continue
					}
					for _, o := range origins {
						if o == string(victim) {
							return false
						}
					}
				}
				return true
			}
			// SuspectRounds is 3; give detection + dissemination slack.
			for i := 0; i < 200 && !expired(); i++ {
				c.GossipRounds(ctx, 1)
			}
			if !expired() {
				t.Fatalf("seed %d: crashed peer's summary still served: %v", seed, planes())
			}
			// Survivors must still carry each other.
			for id, origins := range planes() {
				if id == victim {
					continue
				}
				if len(origins) != len(ids)-1 {
					t.Errorf("seed %d: %s view %v, want the %d survivors", seed, id, origins, len(ids)-1)
				}
			}
		})
	}
}
