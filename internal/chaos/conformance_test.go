package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// noiseMixes are the fault schedules the sweep layers over each scenario's
// scripted fault, rotating by seed. Index 0 is the canonical (noise-free)
// run; the rest cover every Fault kind the injector implements.
var noiseMixes = []string{
	"",
	"drop kind=chain p=0.4",
	"dup kind=result p=0.5; dup kind=commit p=0.5",
	"delay kind=invoke p=0.5 for=1ms; delay kind=result p=0.5 for=1ms",
	"crash peer=AP4 kind=invoke to=AP4 p=0.5 restart=2",
	"partition from=AP2 to=AP4 p=0.5",
	"drop kind=abort p=0.3; drop kind=commit p=0.3",
	"reorder kind=stream p=0.5; hangup kind=invoke p=0.2",
	"drop kind=invoke p=0.15; dup kind=abort p=0.4",
}

// sweepSeeds returns how many seeds the sweep covers per scenario. The
// acceptance floor is 32; short mode trims to keep the suite inside its CI
// budget while still crossing every noise mix at least once.
func sweepSeeds(t *testing.T) int {
	if testing.Short() {
		return 2 * len(noiseMixes)
	}
	return 4 * len(noiseMixes) // 36 seeds per scenario
}

// TestConformanceSweep is the tentpole conformance suite: every scenario ×
// a seed sweep, each seed under a rotating noise mix. Safety (replayable
// logs, reverse compensation, terminal completeness, abort restoration)
// must hold on every run; canonical runs additionally assert the paper's
// outcome. Each failure prints its one-line repro, and with CHAOS_RECORD=1
// is appended to testdata/chaos_seeds.txt for the regression harness.
func TestConformanceSweep(t *testing.T) {
	seeds := sweepSeeds(t)
	var recMu sync.Mutex
	record := func(rep *Report) {
		if os.Getenv("CHAOS_RECORD") == "" {
			return
		}
		recMu.Lock()
		defer recMu.Unlock()
		f, err := os.OpenFile(filepath.Join("testdata", "chaos_seeds.txt"),
			os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("CHAOS_RECORD: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "%s %d %s\n", rep.Scenario, rep.Seed, rep.Faults)
	}

	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				faults := noiseMixes[seed%len(noiseMixes)]
				rep, err := Run(Config{Scenario: sc, Seed: int64(seed), Faults: faults})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(rep.Violations) > 0 {
					for _, v := range rep.Violations {
						t.Errorf("seed %d: %s", seed, v)
					}
					t.Errorf("seed %d repro: %s", seed, rep.Repro())
					record(rep)
				}
			}
		})
	}
}

// TestSweepSameSeedSameInjections pins the determinism contract at the run
// level: the same (scenario, seed, faults) triple produces the same
// injection log, which is what makes one-line repros possible.
func TestSweepSameSeedSameInjections(t *testing.T) {
	cfg := Config{Scenario: "fig1", Seed: 11, Faults: "drop kind=invoke p=0.5"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injections != b.Injections || a.Committed != b.Committed {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v injections/committed",
			a.Injections, a.Committed, b.Injections, b.Committed)
	}
	if len(a.Violations)+len(b.Violations) > 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
}
