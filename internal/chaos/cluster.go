package chaos

import (
	"context"
	"fmt"

	"axmltx/internal/core"
	"axmltx/internal/membership"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/services"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// Cluster wires peers over one simulated network with the injector in every
// transport path, and keeps the WAL handles so conformance checks can read
// each peer's log after the run.
type Cluster struct {
	Net   *p2p.Network
	Inj   *Injector
	Peers map[p2p.PeerID]*core.Peer
	Logs  map[p2p.PeerID]wal.Log
	// Sink, when set before Add, becomes every peer's TraceSink (unless the
	// peer's own Options already name one), so a run's trace interleaves
	// protocol spans with the injector's fault spans in one stream.
	Sink obs.Sink
	// Gossip, when set before Add, gives every subsequently added peer a
	// membership instance (over the same chaos-wrapped transport, so the
	// schedule's partitions and crashes drive the failure detector). Seeds
	// are ignored; call ConnectGossip once the topology is built.
	Gossip *membership.Config
	// Members holds the gossip instance of each peer added while Gossip was
	// set.
	Members map[p2p.PeerID]*membership.Gossip

	snaps map[string]*xmldom.Document
}

// NewCluster builds a cluster whose transports route through the injector.
func NewCluster(inj *Injector) *Cluster {
	return &Cluster{
		Net:     p2p.NewNetwork(0),
		Inj:     inj,
		Peers:   make(map[p2p.PeerID]*core.Peer),
		Logs:    make(map[p2p.PeerID]wal.Log),
		Members: make(map[p2p.PeerID]*membership.Gossip),
		snaps:   make(map[string]*xmldom.Document),
	}
}

// Add joins a peer with a fresh in-memory WAL behind a chaos-wrapped
// transport. Super peers are protected from crash faults (the paper's super
// peers "do not disconnect", §3.3); every peer gets a restart hook running
// core.Peer.Restart — drop volatile transaction state, WAL-replay recovery.
func (c *Cluster) Add(id p2p.PeerID, opts core.Options) *core.Peer {
	if opts.TraceSink == nil {
		opts.TraceSink = c.Sink
	}
	t := c.Inj.Wrap(c.Net.Join(id))
	if c.Gossip != nil && opts.Membership == nil {
		cfg := *c.Gossip
		cfg.Seeds = nil
		if cfg.Sink == nil {
			cfg.Sink = opts.TraceSink
		}
		g := membership.New(t, cfg)
		c.Members[id] = g
		opts.Membership = g
	}
	log := wal.NewMemory()
	p := core.NewPeer(t, log, opts)
	c.Peers[id] = p
	c.Logs[id] = log
	c.Inj.OnRestart(id, func() { _, _ = p.Restart() })
	if opts.Super {
		c.Inj.Protect(id)
	}
	return p
}

// ConnectGossip seeds every gossip instance with the full current member
// set — conformance runs start from a converged bootstrap and let the
// schedule churn it, rather than also testing discovery.
func (c *Cluster) ConnectGossip() {
	ids := make([]p2p.PeerID, 0, len(c.Members))
	for id := range c.Members {
		ids = append(ids, id)
	}
	sortPeers(ids)
	for _, g := range c.Members {
		g.Seed(ids...)
	}
}

// GossipRounds drives n deterministic protocol periods across every
// non-crashed peer, in sorted peer order. Crashed peers neither probe nor
// answer (the injector fails their traffic), which is exactly how the
// failure detector notices them.
func (c *Cluster) GossipRounds(ctx context.Context, n int) {
	ids := make([]p2p.PeerID, 0, len(c.Members))
	for id := range c.Members {
		ids = append(ids, id)
	}
	sortPeers(ids)
	for i := 0; i < n; i++ {
		for _, id := range ids {
			if c.Inj.Crashed(id) {
				continue
			}
			c.Members[id].Tick(ctx)
		}
	}
}

// HostEntry gives a peer a work document and an update service inserting
// one <entry/> per invocation.
func (c *Cluster) HostEntry(id p2p.PeerID, service, doc, root string) {
	p := c.Peers[id]
	if err := p.HostDocument(doc, fmt.Sprintf("<%s><log/></%s>", root, root)); err != nil {
		panic(err)
	}
	p.HostUpdateService(services.Descriptor{
		Name: service, ResultName: "updateResult", TargetDocument: doc,
	}, fmt.Sprintf(`<action type="insert"><data><entry svc=%q/></data><location>Select l from l in %s/log;</location></action>`, service, root))
}

// HostComposite gives a peer a composition document embedding the given
// (service, provider) calls — optionally with handler XML on the last call
// — and a query service named svc over it.
func (c *Cluster) HostComposite(id p2p.PeerID, svc, doc, root string, calls [][2]string, lastHandlerXML string) {
	var b []byte
	b = append(b, fmt.Sprintf("<%s>", root)...)
	for i, call := range calls {
		b = append(b, fmt.Sprintf(`<axml:sc mode="replace" methodName=%q serviceURL=%q>`, call[0], call[1])...)
		if i == len(calls)-1 && lastHandlerXML != "" {
			b = append(b, lastHandlerXML...)
		}
		b = append(b, `</axml:sc>`...)
	}
	b = append(b, fmt.Sprintf("</%s>", root)...)
	p := c.Peers[id]
	if err := p.HostDocument(doc, string(b)); err != nil {
		panic(err)
	}
	p.HostQueryService(services.Descriptor{
		Name: svc, ResultName: "updateResult", TargetDocument: doc,
	}, fmt.Sprintf("Select d/updateResult from d in %s", root))
}

// SnapshotAll records every hosted document's pre-transaction state, the
// baseline the global-abort invariant compares against.
func (c *Cluster) SnapshotAll() {
	for id, p := range c.Peers {
		for _, name := range p.Store().Names() {
			if snap, ok := p.Store().Snapshot(name); ok {
				c.snaps[string(id)+"/"+name] = snap
			}
		}
	}
}

// RestoredViolations returns one message per document whose live state
// differs from its snapshot — empty when a global abort restored everything.
func (c *Cluster) RestoredViolations() []string {
	var out []string
	for id, p := range c.Peers {
		for _, name := range p.Store().Names() {
			key := string(id) + "/" + name
			snap, ok := c.snaps[key]
			if !ok {
				continue
			}
			live, ok := p.Store().Snapshot(name)
			if !ok || !live.Equal(snap) {
				out = append(out, fmt.Sprintf("%s: document not restored after abort", key))
			}
		}
	}
	return out
}

// CountEntries counts <entry/> elements in a peer's document (the unit of
// work the standard update services insert).
func (c *Cluster) CountEntries(id p2p.PeerID, doc string) int {
	d, ok := c.Peers[id].Store().Snapshot(doc)
	if !ok || d.Root() == nil {
		return 0
	}
	n := 0
	d.Root().Walk(func(x *xmldom.Node) bool {
		if x.Name() == "entry" {
			n++
		}
		return true
	})
	return n
}

// Reconciler returns an unwrapped transport joined to the network under a
// synthetic ID. The conformance runner uses it after healing to deliver the
// final decision to straggler peers — modeling the eventual outcome
// propagation a rejoined peer performs (§3.3) without routing the decision
// itself through the fault schedule.
func (c *Cluster) Reconciler() p2p.Transport {
	return c.Net.Join("__reconciler__")
}

// FaultSpans counts KindFault spans observed by a sink collecting the run's
// trace (nil-safe helper for reports).
func FaultSpans(spans []*obs.Span) int {
	n := 0
	for _, s := range spans {
		if s.Kind == obs.KindFault {
			n++
		}
	}
	return n
}
