package chaos

import "testing"

// TestCanonicalScenarios runs every scenario with its scripted fault only
// (no noise): the paper's outcomes must reproduce exactly, and the safety
// invariants must hold — Violations covers both.
func TestCanonicalScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Scenario: sc, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s", v)
			}
			if t.Failed() {
				t.Logf("repro: %s", rep.Repro())
			}
		})
	}
}
