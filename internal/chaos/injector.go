package chaos

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"axmltx/internal/core"
	"axmltx/internal/obs"
	"axmltx/internal/p2p"
	"axmltx/internal/vclock"
)

// Injection records one injected fault, for reports and debugging.
type Injection struct {
	Fault    Fault
	Rule     int // index into the schedule
	From, To p2p.PeerID
	Kind     string
	Victim   p2p.PeerID // crash victim (crash faults only)
}

func (i Injection) String() string {
	s := fmt.Sprintf("%s %s->%s %s", i.Fault, i.From, i.To, i.Kind)
	if i.Victim != "" {
		s += " victim=" + string(i.Victim)
	}
	return s
}

// Injector owns the fault schedule and the injected failure state (crashed
// peers, partitions, held messages). All decisions are deterministic in
// (seed, rule index, directed edge, per-edge match count) — a hash-derived
// coin rather than a shared rand stream, so the engine's internal
// concurrency (parallel materialization, async result pushes, pingers)
// cannot perturb which messages a schedule hits.
type Injector struct {
	seed   int64
	tracer *obs.Tracer
	clock  vclock.Clock

	mu          sync.Mutex
	rules       []Rule
	active      bool
	needDepth   bool
	syncRestart bool
	counts      []map[string]int // per rule: directed-edge key -> matches seen
	injected    []map[string]int // per rule: directed-edge key -> injections fired
	crashed     map[p2p.PeerID]bool
	restartIn   map[p2p.PeerID]int // blocked deliveries until auto-restart
	parts       map[string]bool    // "from->to" blocked directions
	protected   map[p2p.PeerID]bool
	hooks       map[p2p.PeerID]func()
	held        map[string][]heldSend // reorder buffers per directed edge
	log         []Injection
	restarts    int
}

// heldSend is a one-way message parked by a reorder fault.
type heldSend struct {
	to      p2p.PeerID
	msg     *p2p.Message
	deliver func(*p2p.Message) error
}

// NewInjector builds an injector for the given seed and schedule. sink, when
// non-nil, receives a KindFault span per injection (and per crash/restart).
func NewInjector(seed int64, rules []Rule, sink obs.Sink) *Injector {
	in := &Injector{
		seed:      seed,
		tracer:    obs.NewTracer("chaos", sink),
		clock:     vclock.Real,
		rules:     rules,
		active:    true,
		counts:    make([]map[string]int, len(rules)),
		injected:  make([]map[string]int, len(rules)),
		crashed:   make(map[p2p.PeerID]bool),
		restartIn: make(map[p2p.PeerID]int),
		parts:     make(map[string]bool),
		protected: make(map[p2p.PeerID]bool),
		hooks:     make(map[p2p.PeerID]func()),
		held:      make(map[string][]heldSend),
	}
	for i := range rules {
		in.counts[i] = make(map[string]int)
		in.injected[i] = make(map[string]int)
		if rules[i].Depth > 0 {
			in.needDepth = true
		}
	}
	return in
}

// Seed returns the schedule seed.
func (in *Injector) Seed() int64 { return in.seed }

// SetClock swaps the clock delay faults sleep on. The discrete-event
// harness installs its virtual clock so delay rules advance simulated time
// instead of blocking the process. Call before traffic starts.
func (in *Injector) SetClock(c vclock.Clock) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.clock = vclock.Or(c)
}

// SetSynchronousRestart makes countdown restarts (rule option restart=N)
// run inline on the delivery path instead of in a fresh goroutine. The
// discrete-event harness needs this: a single-threaded simulation has no
// scheduler to run the goroutine, and inline execution keeps the event
// order deterministic. Call before traffic starts.
func (in *Injector) SetSynchronousRestart(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.syncRestart = on
}

// sleep waits out an injected delay on the injector's clock.
func (in *Injector) sleep(ctx context.Context, d time.Duration) {
	in.mu.Lock()
	clock := in.clock
	in.mu.Unlock()
	_ = clock.Sleep(ctx, d)
}

// Rules returns the schedule.
func (in *Injector) Rules() []Rule { return in.rules }

// Protect marks peers the schedule must never crash — the paper's super
// peers, which "do not disconnect" (§3.3); partitions and message faults
// still apply.
func (in *Injector) Protect(ids ...p2p.PeerID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, id := range ids {
		in.protected[id] = true
	}
}

// OnRestart registers the hook run when an injected crash of id is followed
// by a restart (rule option restart=N, RestartAll, or Heal). Typically
// core.Peer.Restart — drop volatile state, then WAL-replay recovery.
func (in *Injector) OnRestart(id p2p.PeerID, fn func()) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hooks[id] = fn
}

// Crash marks a peer dead outside any rule — scenario scripts use it for
// deaths that no message precedes (e.g. a peer hanging mid-service).
func (in *Injector) Crash(id p2p.PeerID) {
	in.mu.Lock()
	if in.protected[id] || in.crashed[id] {
		in.mu.Unlock()
		return
	}
	in.crashed[id] = true
	in.mu.Unlock()
	sp := in.tracer.Start("", "", obs.KindFault, string(FaultCrash))
	sp.SetTarget(string(id))
	sp.End("chaos:crash", nil)
}

// PartitionLink blocks both directions between a and b outside any rule —
// scenario scripts use it for clean network partitions (e.g. forcing a
// false suspicion in the gossip failure detector).
func (in *Injector) PartitionLink(a, b p2p.PeerID) {
	in.mu.Lock()
	in.parts[edgeKey(a, b)] = true
	in.parts[edgeKey(b, a)] = true
	in.mu.Unlock()
	sp := in.tracer.Start("", "", obs.KindFault, string(FaultPartition))
	sp.SetTarget(string(a) + "<->" + string(b))
	sp.End("chaos:"+string(FaultPartition), nil)
}

// HealLink reverses PartitionLink for one pair.
func (in *Injector) HealLink(a, b p2p.PeerID) {
	in.mu.Lock()
	delete(in.parts, edgeKey(a, b))
	delete(in.parts, edgeKey(b, a))
	in.mu.Unlock()
}

// Crashed reports whether the peer is currently down.
func (in *Injector) Crashed(id p2p.PeerID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[id]
}

// Restart revives one crashed peer and runs its restart hook.
func (in *Injector) Restart(id p2p.PeerID) {
	in.mu.Lock()
	if !in.crashed[id] {
		in.mu.Unlock()
		return
	}
	delete(in.crashed, id)
	delete(in.restartIn, id)
	in.restarts++
	hook := in.hooks[id]
	in.mu.Unlock()
	if hook != nil {
		hook()
	}
	sp := in.tracer.Start("", "", obs.KindFault, "restart")
	sp.SetTarget(string(id))
	sp.End("", nil)
}

// RestartAll revives every crashed peer (in sorted order, for determinism).
func (in *Injector) RestartAll() {
	in.mu.Lock()
	var ids []p2p.PeerID
	for id := range in.crashed {
		ids = append(ids, id)
	}
	in.mu.Unlock()
	sortPeers(ids)
	for _, id := range ids {
		in.Restart(id)
	}
}

// Heal ends the chaos phase: the schedule stops firing, partitions lift,
// held messages flush, and every crashed peer restarts (running its
// WAL-replay hook). Conformance runs heal before checking invariants — the
// paper's guarantees are about the state the system converges to once
// disconnected peers rejoin, not about mid-partition limbo.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.active = false
	in.parts = make(map[string]bool)
	var flush []heldSend
	for _, hs := range in.held {
		flush = append(flush, hs...)
	}
	in.held = make(map[string][]heldSend)
	in.mu.Unlock()
	for _, h := range flush {
		_ = h.deliver(h.msg)
	}
	in.RestartAll()
}

// Injections returns a copy of the injection record.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Injection(nil), in.log...)
}

// Restarts returns how many injected crashes were followed by a restart.
func (in *Injector) Restarts() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.restarts
}

// verdict is the decision for one message.
type verdict struct {
	err     error // delivery fails outright (crashed peer, partition, drop of a request)
	drop    bool  // one-way message silently vanishes
	hangup  bool  // deliver, then tear down the response path
	dup     bool
	reorder bool
	delay   time.Duration
}

// errInjected builds the typed delivery error: it wraps p2p.ErrUnreachable
// so errors.Is(err, core.ErrPeerDown) holds through the whole engine.
func errInjected(what string, from, to p2p.PeerID) error {
	return fmt.Errorf("chaos: %s (%s -> %s): %w", what, from, to, p2p.ErrUnreachable)
}

// decide evaluates blocked state and the schedule against one outbound
// message. isRequest distinguishes request/response traffic from one-way
// sends (drop semantics differ). The message must carry From/To.
func (in *Injector) decide(msg *p2p.Message, isRequest bool) verdict {
	in.mu.Lock()
	if !in.active {
		in.mu.Unlock()
		return verdict{}
	}

	// A dead sender's I/O fails; a dead receiver is unreachable; a
	// partitioned direction eats the message.
	if in.crashed[msg.From] {
		in.mu.Unlock()
		return verdict{err: errInjected("sender crashed", msg.From, msg.To)}
	}
	if in.crashed[msg.To] {
		fire := in.countdownLocked(msg.To)
		sync := in.syncRestart
		in.mu.Unlock()
		if fire {
			if sync {
				in.Restart(msg.To)
			} else {
				go in.Restart(msg.To)
			}
		}
		return verdict{err: errInjected("peer crashed", msg.From, msg.To)}
	}
	if in.parts[edgeKey(msg.From, msg.To)] {
		in.mu.Unlock()
		return verdict{err: errInjected("partitioned", msg.From, msg.To)}
	}

	depth := 0
	if in.needDepth && msg.Kind == p2p.KindInvoke {
		depth = invokeDepth(msg)
	}

	var v verdict
	var spans []Injection
	for i, r := range in.rules {
		if !r.matches(msg, depth) {
			continue
		}
		edge := edgeKey(msg.From, msg.To)
		n := in.counts[i][edge]
		in.counts[i][edge] = n + 1
		if n < r.After {
			continue
		}
		if r.Times > 0 && in.injected[i][edge] >= r.Times {
			continue
		}
		if r.P > 0 && r.P < 1 && in.roll(i, edge, n) >= r.P {
			continue
		}

		inj := Injection{Fault: r.Fault, Rule: i, From: msg.From, To: msg.To, Kind: msg.Kind}
		switch r.Fault {
		case FaultDrop:
			v.drop = true
		case FaultDelay:
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			v.delay += d
		case FaultDup:
			v.dup = true
		case FaultReorder:
			if !isRequest {
				v.reorder = true
			}
		case FaultHangup:
			v.hangup = true
		case FaultCrash:
			victim := r.Peer
			if victim == "" {
				victim = msg.To
			}
			if in.protected[victim] || in.crashed[victim] {
				continue
			}
			in.crashed[victim] = true
			if r.Restart > 0 {
				in.restartIn[victim] = r.Restart
			}
			inj.Victim = victim
			if victim == msg.To || victim == msg.From {
				v.err = errInjected("crashed "+string(victim), msg.From, msg.To)
			}
		case FaultPartition:
			in.parts[edge] = true
			v.err = errInjected("partitioned", msg.From, msg.To)
		}
		in.injected[i][edge]++
		in.log = append(in.log, inj)
		spans = append(spans, inj)
	}
	in.mu.Unlock()

	for _, inj := range spans {
		// Strip the sampler's drop-eligibility marker before parenting: the
		// fault span must hang under the real span, and a fault forces the
		// transaction to be kept anyway.
		parent, _ := obs.DecodeWireSpan(msg.Span)
		sp := in.tracer.Start(msg.Txn, parent, obs.KindFault, string(inj.Fault))
		sp.SetTarget(string(msg.To))
		sp.SetAttr("rule", in.rules[inj.Rule].String())
		sp.SetAttr("kind", msg.Kind)
		if inj.Victim != "" {
			sp.SetAttr("victim", string(inj.Victim))
		}
		sp.End("chaos:"+string(inj.Fault), nil)
	}
	return v
}

// countdownLocked ticks a crashed peer's restart counter and reports
// whether the peer is due to revive. The caller holds the lock and must
// perform the restart after releasing it (in a goroutine by default, or
// inline under SetSynchronousRestart).
func (in *Injector) countdownLocked(id p2p.PeerID) bool {
	n, ok := in.restartIn[id]
	if !ok {
		return false
	}
	n--
	if n > 0 {
		in.restartIn[id] = n
		return false
	}
	delete(in.restartIn, id)
	return true
}

// roll is the deterministic coin: a hash of (seed, rule, edge, match count)
// mapped to [0,1).
func (in *Injector) roll(rule int, edge string, n int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d", in.seed, rule, edge, n)
	const span = 1 << 52
	return float64(h.Sum64()%span) / float64(span)
}

func edgeKey(from, to p2p.PeerID) string { return string(from) + "->" + string(to) }

// hold parks a reordered one-way message until the next send on its edge
// (or Heal) delivers it.
func (in *Injector) hold(from, to p2p.PeerID, msg *p2p.Message, deliver func(*p2p.Message) error) {
	cp := *msg
	in.mu.Lock()
	in.held[edgeKey(from, to)] = append(in.held[edgeKey(from, to)], heldSend{to: to, msg: &cp, deliver: deliver})
	in.mu.Unlock()
}

// takeHeld removes and returns the messages parked on an edge.
func (in *Injector) takeHeld(from, to p2p.PeerID) []heldSend {
	in.mu.Lock()
	defer in.mu.Unlock()
	hs := in.held[edgeKey(from, to)]
	if hs != nil {
		delete(in.held, edgeKey(from, to))
	}
	return hs
}

// invokeDepth decodes the invoke payload's chain and returns the callee's
// depth (ancestors between it and the origin); 0 when unknown.
func invokeDepth(msg *p2p.Message) int {
	var req core.InvokeRequest
	if err := gob.NewDecoder(bytes.NewReader(msg.Payload)).Decode(&req); err != nil {
		return 0
	}
	if req.Chain == nil {
		return 0
	}
	return len(req.Chain.AncestorsOf(msg.To))
}

func sortPeers(ids []p2p.PeerID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
