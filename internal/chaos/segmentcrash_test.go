package chaos

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/core"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// segModes are the durability modes the segment crash matrix sweeps.
var segModes = []struct {
	name string
	sync wal.SyncMode
}{
	{"SyncNone", wal.SyncNone},
	{"SyncEach", wal.SyncEach},
	{"SyncGroup", wal.SyncGroup},
}

// segWorkload drives the shared crash workload against a store over log:
// transaction C commits three inserts, transaction T leaves two more in
// flight. Returns the dirty document snapshot at the kill instant.
func segWorkload(t *testing.T, log wal.Log) *xmldom.Document {
	t.Helper()
	loc, err := axml.ParseQuery(`Select d/log from d in D`)
	if err != nil {
		t.Fatal(err)
	}
	store := axml.NewStore(log)
	if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(&wal.Record{Txn: "C", Type: wal.TypeBegin}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := store.Apply("C", axml.NewInsert(loc, fmt.Sprintf(`<entry n="%d"/>`, i)), nil, axml.Lazy); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := log.Append(&wal.Record{Txn: "C", Type: wal.TypeCommit}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeBegin}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := store.Apply("T", axml.NewInsert(loc, fmt.Sprintf(`<wip n="%d"/>`, i)), nil, axml.Lazy); err != nil {
			t.Fatal(err)
		}
	}
	// The kill instant: everything appended so far is durable (the engine's
	// commit path runs the same explicit barrier), then the process dies.
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	dirty, _ := store.Snapshot("D.xml")
	return dirty
}

// segWant is the no-fault outcome of segWorkload after restart recovery:
// C's inserts applied, T's compensated away.
func segWant(t *testing.T) string {
	t.Helper()
	log := wal.NewMemory()
	dirty := segWorkload(t, log)
	restore := axml.NewStore(log)
	restore.Add(dirty)
	if _, err := core.RecoverPending(restore); err != nil {
		t.Fatal(err)
	}
	doc, _ := restore.Get("D.xml")
	return xmldom.MarshalString(doc.Root())
}

// segRecover reopens dir, replays, runs restart recovery over the dirty
// document and checks the outcome against the no-fault run.
func segRecover(t *testing.T, dir string, opts wal.SegmentOptions, dirty *xmldom.Document, want string) *wal.SegmentedLog {
	t.Helper()
	relog, err := wal.OpenDir(dir, opts)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	t.Cleanup(func() { _ = relog.Close() })
	// Checkpointed views may carry LSN gaps where resolved transactions
	// were trimmed; order must still be strictly monotonic.
	if err := core.CheckLSNMonotonic(relog.Records()); err != nil {
		t.Fatalf("reopened log: %v", err)
	}
	restore := axml.NewStore(relog)
	restore.Add(dirty)
	recovered, err := core.RecoverPending(restore)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "T" {
		t.Fatalf("recovery acted on %v, want exactly [T]", recovered)
	}
	live, _ := restore.Get("D.xml")
	if got := xmldom.MarshalString(live.Root()); got != want {
		t.Fatalf("replayed document diverged from no-fault run:\n got: %s\nwant: %s", got, want)
	}
	if err := core.CheckReverseCompensationOrder(relog, "T"); err != nil {
		t.Fatal(err)
	}
	if err := core.CheckCompensationComplete(relog, "T"); err != nil {
		t.Fatal(err)
	}
	return relog
}

// TestSegmentCrashTornTailAtBoundary kills the peer right as the active
// segment fills to its rotation threshold, with a torn record fragment
// dying in the write. Replay must truncate the tear and recover exactly
// the no-fault state under every durability mode.
func TestSegmentCrashTornTailAtBoundary(t *testing.T) {
	want := segWant(t)
	for _, mode := range segModes {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			// The workload appends 8 records; at 4 per segment the active
			// segment is exactly full at the kill instant — the tear lands
			// on a segment boundary.
			opts := wal.SegmentOptions{
				FileOptions:       wal.FileOptions{Sync: mode.sync},
				MaxSegmentRecords: 4,
			}
			log, err := wal.OpenDir(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = log.Close() })
			dirty := segWorkload(t, log)
			tornWrite(t, filepath.Join(dir, lastSegment(t, dir)), []byte("\x07torn-record-fragment"))
			segRecover(t, dir, opts, dirty, want)
		})
	}
}

// TestSegmentCrashMidCheckpoint kills the peer between a checkpoint's
// rotation and the checkpoint frame becoming durable: the fresh segment
// holds a torn checkpoint frame. Replay must discard the torn head and
// fall back to the fully durable prior segments.
func TestSegmentCrashMidCheckpoint(t *testing.T) {
	want := segWant(t)
	for _, mode := range segModes {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := wal.SegmentOptions{
				FileOptions:       wal.FileOptions{Sync: mode.sync},
				MaxSegmentRecords: 4,
			}
			log, err := wal.OpenDir(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = log.Close() })
			dirty := segWorkload(t, log)
			// Rotation fsynced and closed the full segments; the dying write
			// left the successor holding a frame header that promises more
			// checkpoint bytes than ever reached the disk.
			n, ok := parseSeg(lastSegment(t, dir))
			if !ok {
				t.Fatal("no segment files")
			}
			var torn [18]byte
			binary.LittleEndian.PutUint32(torn[0:4], 200) // length the body never reaches
			binary.LittleEndian.PutUint32(torn[4:8], 0xdeadbeef)
			torn[8] = 0x03 // checkpoint blob version byte
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%08d.seg", n+1)), torn[:], 0o644); err != nil {
				t.Fatal(err)
			}
			segRecover(t, dir, opts, dirty, want)
		})
	}
}

// TestSegmentCrashMidCompaction takes a real checkpoint, then kills the
// peer partway through compaction — some covered segments already deleted,
// others still on disk. Replay must supersede the stale survivors at the
// checkpoint, and the next compaction must reclaim them despite the hole.
func TestSegmentCrashMidCompaction(t *testing.T) {
	want := segWant(t)
	for _, mode := range segModes {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := wal.SegmentOptions{
				FileOptions:       wal.FileOptions{Sync: mode.sync},
				MaxSegmentRecords: 3,
			}
			log, err := wal.OpenDir(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = log.Close() })
			dirty := segWorkload(t, log)
			if err := log.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ckName := lastSegment(t, dir)
			ck, _ := parseSeg(ckName)
			if ck < 3 {
				t.Fatalf("workload produced only %d segments, cannot model a partial compaction", ck)
			}
			// Compaction deletes newest-first; the crash lands after the
			// highest covered segment is gone but before the older ones are.
			if err := os.Remove(filepath.Join(dir, fmt.Sprintf("%08d.seg", ck-1))); err != nil {
				t.Fatal(err)
			}
			relog := segRecover(t, dir, opts, dirty, want)
			// The survivors below the hole must still be reclaimable.
			removed, err := relog.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if removed == 0 {
				t.Fatal("post-crash compaction reclaimed nothing despite leftover covered segments")
			}
			files := segFileNames(t, dir)
			for _, f := range files {
				if n, _ := parseSeg(f); n < ck {
					t.Fatalf("covered segment %s survived compaction (on disk: %v)", f, files)
				}
			}
		})
	}
}

// tornWrite appends a dying write to path, as a crashing process would.
func tornWrite(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
}

// segFileNames lists the segment files in dir, sorted by name.
func segFileNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, ok := parseSeg(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

// lastSegment returns the highest-numbered segment file name in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	files := segFileNames(t, dir)
	if len(files) == 0 {
		t.Fatal("no segment files")
	}
	return files[len(files)-1]
}

// parseSeg inverts the wal segment file naming scheme.
func parseSeg(name string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "%08d.seg", &n); err != nil || fmt.Sprintf("%08d.seg", n) != name {
		return 0, false
	}
	return n, true
}
