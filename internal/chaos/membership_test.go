package chaos

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"axmltx/internal/core"
	"axmltx/internal/membership"
	"axmltx/internal/p2p"
)

// quickGossip is the membership config the chaos tests drive by hand: short
// probe timeout (the memory network answers in microseconds), small fanout.
func quickGossip(suspectRounds int) *membership.Config {
	return &membership.Config{
		ProbeInterval:  5 * time.Millisecond,
		SuspectRounds:  suspectRounds,
		IndirectProbes: 2,
		Fanout:         2,
	}
}

// TestFalseSuspicionHealsWithoutCompensation partitions one peer away from
// the cluster just long enough to be suspected — not declared dead — then
// heals the link. The suspicion must dissolve through refutation: no OnDown,
// no catalog pruning, and a transaction that then invokes the once-suspected
// peer commits with its work intact (nothing was compensated).
func TestFalseSuspicionHealsWithoutCompensation(t *testing.T) {
	inj := NewInjector(1, nil, nil)
	c := NewCluster(inj)
	// SuspectRounds is set far beyond the blackout so suspicion can never
	// escalate to dead — the scenario under test is a *false* positive.
	c.Gossip = quickGossip(50)
	for _, id := range []p2p.PeerID{"AP1", "AP2", "AP3"} {
		c.Add(id, core.Options{Super: id == "AP1"})
	}
	c.HostEntry("AP2", "S2w", "D2.xml", "D2")
	c.HostEntry("AP3", "S3w", "D3.xml", "D3")

	var downs atomic.Int64
	for _, g := range c.Members {
		g.OnDown(func(p2p.PeerID) { downs.Add(1) })
	}

	ctx := context.Background()
	c.ConnectGossip()
	ap1 := c.Peers["AP1"]
	for i := 0; i < 100 && !hasProvider(ap1.Replicas(), "S3w", "AP3"); i++ {
		c.GossipRounds(ctx, 1)
	}
	if !hasProvider(ap1.Replicas(), "S3w", "AP3") {
		t.Fatal("catalog never converged: AP1 does not list AP3 as S3w provider")
	}

	// Blackout: AP3 unreachable from everyone. Probes and ping-reqs fail, so
	// AP1/AP2 must move AP3 to suspect.
	inj.PartitionLink("AP3", "AP1")
	inj.PartitionLink("AP3", "AP2")
	c.GossipRounds(ctx, 12)
	if st, ok := c.Members["AP1"].StateOf("AP3"); !ok || st != membership.StateSuspect {
		t.Fatalf("after blackout AP1 sees AP3 as %v (known=%v), want suspect", st, ok)
	}
	if !hasProvider(ap1.Replicas(), "S3w", "AP3") {
		t.Fatal("suspicion pruned the catalog: suspect peers must stay listed")
	}

	// Heal. AP3 learns it is suspected, refutes with a higher incarnation,
	// and everyone returns to alive.
	inj.HealLink("AP3", "AP1")
	inj.HealLink("AP3", "AP2")
	healed := func() bool {
		for _, id := range []p2p.PeerID{"AP1", "AP2"} {
			if st, ok := c.Members[id].StateOf("AP3"); !ok || st != membership.StateAlive {
				return false
			}
		}
		return true
	}
	for i := 0; i < 200 && !healed(); i++ {
		c.GossipRounds(ctx, 1)
	}
	if !healed() {
		t.Fatal("false suspicion never healed back to alive")
	}
	if inc := c.Members["AP3"].Info().Incarnation; inc == 0 {
		t.Fatal("AP3 healed without refuting: incarnation still 0")
	}
	if n := downs.Load(); n != 0 {
		t.Fatalf("OnDown fired %d time(s) for a false suspicion, want 0", n)
	}

	// The healed peer serves a transaction normally: commit, work kept.
	txc := ap1.Begin()
	if _, err := ap1.Call(ctx, txc, "AP3", "S3w", nil); err != nil {
		t.Fatalf("invoking the healed peer: %v", err)
	}
	if err := ap1.Commit(ctx, txc); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	if n := c.CountEntries("AP3", "D3.xml"); n != 1 {
		t.Fatalf("AP3 holds %d entr(ies) after commit, want 1 (work compensated away?)", n)
	}
}

// TestGossipCatalogConvergesUnderChurn runs N peers under seeded gossip-layer
// chaos — probabilistic drops of gossip and ping traffic plus one partitioned
// link — then heals and requires every peer to converge to the identical
// member view and replica catalog, with every placement restored even for
// peers that were falsely declared dead mid-churn.
func TestGossipCatalogConvergesUnderChurn(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	const n = 6
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rules := []Rule{
				{Fault: FaultDrop, Kind: p2p.KindGossip, P: 0.4},
				{Fault: FaultDrop, Kind: p2p.KindPing, P: 0.4},
			}
			inj := NewInjector(seed, rules, nil)
			c := NewCluster(inj)
			c.Gossip = quickGossip(2)
			ids := make([]p2p.PeerID, n)
			for i := range ids {
				ids[i] = p2p.PeerID(fmt.Sprintf("N%d", i+1))
				c.Add(ids[i], core.Options{})
				c.HostEntry(ids[i], fmt.Sprintf("S%d", i+1), fmt.Sprintf("D%d.xml", i+1), fmt.Sprintf("R%d", i+1))
			}
			c.ConnectGossip()
			ctx := context.Background()
			a, b := ids[int(seed)%n], ids[(int(seed)+3)%n]
			inj.PartitionLink(a, b)

			c.GossipRounds(ctx, 40) // churn: drops + the dead link
			inj.Heal()
			converged := func() bool { return gossipConverged(c, ids) == "" }
			for i := 0; i < 400 && !converged(); i++ {
				c.GossipRounds(ctx, 1)
			}
			if why := gossipConverged(c, ids); why != "" {
				t.Fatalf("cluster never reconverged after heal: %s", why)
			}
		})
	}
}

// gossipConverged reports why the cluster has not converged ("" when it has):
// every peer sees every other alive, all catalogs are identical, and every
// table lists every peer's service placement.
func gossipConverged(c *Cluster, ids []p2p.PeerID) string {
	var want string
	for i, id := range ids {
		g := c.Members[id]
		for _, other := range ids {
			if other == id {
				continue
			}
			if st, ok := g.StateOf(other); !ok || st != membership.StateAlive {
				return fmt.Sprintf("%s sees %s as %v (known=%v)", id, other, st, ok)
			}
		}
		key := catalogKey(g)
		if i == 0 {
			want = key
		} else if key != want {
			return fmt.Sprintf("%s catalog diverges:\n  %s\nvs %s:\n  %s", id, key, ids[0], want)
		}
		for j, other := range ids {
			svc := fmt.Sprintf("S%d", j+1)
			if !hasProvider(c.Peers[id].Replicas(), svc, other) {
				return fmt.Sprintf("%s table misses %s@%s", id, svc, other)
			}
		}
	}
	return ""
}

// catalogKey canonicalizes a catalog snapshot, ignoring announce timestamps
// (gob round-trips strip the monotonic clock, so times are not comparable).
func catalogKey(g *membership.Gossip) string {
	var b strings.Builder
	for _, e := range g.CatalogSnapshot() {
		fmt.Fprintf(&b, "%s v%d docs=%v svcs=%v; ", e.Origin, e.Version, e.Docs, e.Services)
	}
	return b.String()
}
