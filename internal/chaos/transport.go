package chaos

import (
	"context"

	"axmltx/internal/p2p"
)

// Transport wraps an inner p2p.Transport and interposes the injector on
// every message in both directions. It is safe for concurrent use to the
// same degree the inner transport is.
type Transport struct {
	inner p2p.Transport
	inj   *Injector
}

var _ p2p.Transport = (*Transport)(nil)

// Wrap interposes the injector on a transport. Engine code keeps seeing a
// plain p2p.Transport; only the wiring layer knows chaos is in the path.
func (in *Injector) Wrap(t p2p.Transport) *Transport {
	return &Transport{inner: t, inj: in}
}

// Inner returns the wrapped transport.
func (t *Transport) Inner() p2p.Transport { return t.inner }

func (t *Transport) Self() p2p.PeerID { return t.inner.Self() }

func (t *Transport) Close() error { return t.inner.Close() }

// SetHandler installs h behind a guard: a crashed peer processes nothing —
// messages reaching it from unwrapped transports (or racing a crash) fail
// exactly as if the process were gone.
func (t *Transport) SetHandler(h p2p.Handler) {
	self := t.inner.Self()
	t.inner.SetHandler(func(ctx context.Context, msg *p2p.Message) (*p2p.Message, error) {
		if t.inj.Crashed(self) {
			return nil, errInjected("receiver crashed", msg.From, self)
		}
		return h(ctx, msg)
	})
}

// Send delivers a one-way message through the fault schedule. Drops vanish
// silently (a lost datagram, not an error); reorders hold the message until
// the next send on the same edge; dups deliver twice; hangups deliver but
// report failure to the sender.
func (t *Transport) Send(ctx context.Context, to p2p.PeerID, msg *p2p.Message) error {
	msg.From = t.inner.Self()
	msg.To = to
	v := t.inj.decide(msg, false)
	if v.delay > 0 {
		t.inj.sleep(ctx, v.delay)
	}
	if v.err != nil {
		return v.err
	}
	if v.drop {
		return nil
	}
	if v.reorder {
		t.inj.hold(msg.From, to, msg, func(m *p2p.Message) error {
			return t.inner.Send(context.Background(), to, m)
		})
		return nil
	}
	held := t.inj.takeHeld(msg.From, to)
	err := t.inner.Send(ctx, to, msg)
	for _, h := range held {
		_ = h.deliver(h.msg) // the reordered message lands after this one
	}
	if v.dup {
		cp := *msg
		_ = t.inner.Send(ctx, to, &cp)
	}
	if v.hangup && err == nil {
		return errInjected("connection lost after send", msg.From, to)
	}
	return err
}

// Request delivers a request through the fault schedule. A dropped request
// fails like a timeout; a hangup lets the receiver do the work but tears
// down the response path; a crash injected by this very message (or racing
// it) loses the response even when the handler ran.
func (t *Transport) Request(ctx context.Context, to p2p.PeerID, msg *p2p.Message) (*p2p.Message, error) {
	self := t.inner.Self()
	msg.From = self
	msg.To = to
	v := t.inj.decide(msg, true)
	if v.delay > 0 {
		t.inj.sleep(ctx, v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	if v.drop {
		return nil, errInjected("request dropped", self, to)
	}
	if v.hangup {
		_, _ = t.inner.Request(ctx, to, msg)
		return nil, errInjected("connection lost mid-request", self, to)
	}
	resp, err := t.inner.Request(ctx, to, msg)
	if v.dup && err == nil {
		cp := *msg
		_, _ = t.inner.Request(ctx, to, &cp)
	}
	// A crash that fired while the handler ran (a crash rule matched this
	// request's own delivery, or a concurrent path) loses the response.
	if err == nil && (t.inj.Crashed(to) || t.inj.Crashed(self)) {
		return nil, errInjected("response lost", self, to)
	}
	return resp, err
}
