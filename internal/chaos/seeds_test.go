package chaos

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSeedReplayRegressions replays every run recorded in
// testdata/chaos_seeds.txt — the regression corpus of seeds that once broke
// an invariant. Determinism makes each line a permanent test case: same
// scenario, seed and schedule, same message-level decisions.
func TestSeedReplayRegressions(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "chaos_seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	lineNo := 0
	ran := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 2 {
			t.Fatalf("line %d: malformed %q (want: scenario seed [faults])", lineNo, line)
		}
		seed, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("line %d: bad seed in %q: %v", lineNo, line, err)
		}
		cfg := Config{Scenario: fields[0], Seed: seed}
		if len(fields) == 3 {
			cfg.Faults = fields[2]
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Errorf("line %d (%s): %v", lineNo, line, err)
			continue
		}
		for _, v := range rep.Violations {
			t.Errorf("line %d (%s): %s", lineNo, line, v)
		}
		ran++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if ran == 0 {
		t.Fatal("corpus empty: testdata/chaos_seeds.txt has no runnable lines")
	}
}
