package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"axmltx/internal/axml"
	"axmltx/internal/core"
	"axmltx/internal/wal"
	"axmltx/internal/xmldom"
)

// TestCrashRestartMatrix kills a peer mid-commit under every WAL sync mode
// and at both sides of the commit record, then replays: the recovered
// document bytes must equal the no-fault outcome — the pre-transaction
// document when the decision record was not yet durable (presumed abort),
// the fully updated document when it was. The reopened log also has to pass
// the replay-consistency and compensation invariants, torn tail included.
func TestCrashRestartMatrix(t *testing.T) {
	modes := []struct {
		name string
		opts wal.FileOptions
	}{
		{"SyncNone", wal.FileOptions{Sync: wal.SyncNone}},
		{"SyncEach", wal.FileOptions{Sync: wal.SyncEach}},
		{"SyncGroup", wal.FileOptions{Sync: wal.SyncGroup}},
	}
	kills := []struct {
		name      string
		committed bool // the commit record was durable at the kill instant
	}{
		{"beforeCommit", false},
		{"afterCommit", true},
	}
	const inserts = 3

	// The no-fault outcomes, built once on an in-memory store.
	loc, err := axml.ParseQuery(`Select d/log from d in D`)
	if err != nil {
		t.Fatal(err)
	}
	baseline := func(commit bool) string {
		log := wal.NewMemory()
		store := axml.NewStore(log)
		if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
			t.Fatal(err)
		}
		if commit {
			for i := 0; i < inserts; i++ {
				if _, err := store.Apply("T", axml.NewInsert(loc, fmt.Sprintf(`<entry n="%d"/>`, i)), nil, axml.Lazy); err != nil {
					t.Fatal(err)
				}
			}
		}
		doc, _ := store.Get("D.xml")
		return xmldom.MarshalString(doc.Root())
	}
	wantAborted, wantCommitted := baseline(false), baseline(true)

	for _, mode := range modes {
		for _, kill := range kills {
			t.Run(mode.name+"/"+kill.name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "peer.wal")
				log, err := wal.OpenFileWith(path, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				store := axml.NewStore(log)
				if _, err := store.AddParsed("D.xml", `<D><log/></D>`); err != nil {
					t.Fatal(err)
				}
				if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeBegin}); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < inserts; i++ {
					if _, err := store.Apply("T", axml.NewInsert(loc, fmt.Sprintf(`<entry n="%d"/>`, i)), nil, axml.Lazy); err != nil {
						t.Fatal(err)
					}
				}
				if kill.committed {
					if _, err := log.Append(&wal.Record{Txn: "T", Type: wal.TypeCommit}); err != nil {
						t.Fatal(err)
					}
				}
				// The kill instant: everything appended so far is durable
				// (the engine's commit path runs the same explicit barrier),
				// then the process dies — the handle is abandoned, never
				// closed, and the dying write leaves a torn tail.
				if err := log.Sync(); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = log.Close() })
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("\x07torn-record-fragment")); err != nil {
					t.Fatal(err)
				}
				_ = f.Close()

				// Restart: the dirty document is the persistent state, the
				// reopened log drives recovery.
				relog, err := wal.OpenFileWith(path, mode.opts)
				if err != nil {
					t.Fatalf("reopen with torn tail: %v", err)
				}
				defer relog.Close()
				if err := core.CheckReplayConsistency(relog.Records()); err != nil {
					t.Fatalf("reopened log: %v", err)
				}
				restore := axml.NewStore(relog)
				dirty, _ := store.Snapshot("D.xml")
				restore.Add(dirty)
				recovered, err := core.RecoverPending(restore)
				if err != nil {
					t.Fatal(err)
				}
				if kill.committed && len(recovered) != 0 {
					t.Fatalf("recovery rolled back a committed txn: %v", recovered)
				}
				if !kill.committed && len(recovered) != 1 {
					t.Fatalf("recovery missed the in-flight txn: %v", recovered)
				}

				live, _ := restore.Get("D.xml")
				got := xmldom.MarshalString(live.Root())
				want := wantAborted
				if kill.committed {
					want = wantCommitted
				}
				if got != want {
					t.Fatalf("replayed document diverged from no-fault run:\n got: %s\nwant: %s", got, want)
				}
				if err := core.CheckReverseCompensationOrder(relog, "T"); err != nil {
					t.Fatal(err)
				}
				if err := core.CheckCompensationComplete(relog, "T"); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
