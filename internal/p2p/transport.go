// Package p2p provides the peer-to-peer infrastructure beneath the AXML
// transactional framework: peer identities, a message transport abstraction
// with an in-memory simulated network (deterministic failure injection) and
// a real TCP implementation, and a ping/keep-alive failure detector.
//
// The recovery protocols never talk to sockets directly; they see only
// Transport, so the same protocol code runs in simulation (benchmarks,
// tests) and over TCP (cmd/axmlpeer).
package p2p

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"axmltx/internal/vclock"
)

// PeerID identifies an AXML peer (the paper's AP1, AP2, ...).
type PeerID string

// Message kinds used by the transactional framework. The transport treats
// kinds opaquely; they are listed here so metrics can aggregate by kind.
const (
	KindInvoke      = "invoke"       // service invocation request
	KindResult      = "result"       // invocation result
	KindAbort       = "abort"        // "Abort TA" (nested recovery, §3.2)
	KindCommit      = "commit"       // commit notification
	KindCompensate  = "compensate"   // peer-independent compensation request
	KindCompDef     = "compdef"      // compensating-service definition sent to the origin
	KindPing        = "ping"         // keep-alive probe
	KindPong        = "pong"         // keep-alive reply
	KindDisconnect  = "disconnect"   // disconnection notice (chaining, §3.3)
	KindRedirect    = "redirect"     // result re-routed past a dead parent (§3.3 case b)
	KindStream      = "stream"       // continuous-service data (§3.3 case d)
	KindChainUpdate = "chain"        // active-peer-list propagation to ancestors (§3.3)
	KindAdmin       = "admin"        // document/service administration
	KindGossip      = "gossip"       // SWIM membership sync / indirect probe; sync payloads piggyback the replica catalog and per-peer metric summaries (internal/membership)
	KindCacheFetch  = "cache-fetch"  // cached materialization result fetch from an advertising peer
	KindFragFetch   = "frag-fetch"   // document-fragment fetch from a catalog-advertised holder
	KindFragMigrate = "frag-migrate" // heat-driven fragment handoff to its dominant caller
)

// Message is the unit of communication. Payload encoding is the caller's
// concern (the core layer uses XML for actions and gob for control data).
type Message struct {
	From    PeerID
	To      PeerID
	Kind    string
	Txn     string // transaction ID the message belongs to, "" for none
	Subject string // kind-specific discriminator (service name, fault name…)
	Payload []byte
	Err     string // error carried by a response
	// Code is the typed error-taxonomy code matching Err (core.ErrCode), so
	// receivers reconstruct errors.Is-compatible errors instead of matching
	// strings.
	Code string
	// Span is the sender's active span ID; the receiver parents its own
	// spans under it, stitching one trace tree across peers. When the
	// sender samples traces adaptively, the ID carries a trailing "~"
	// drop-eligibility marker (obs.EncodeWireSpan/DecodeWireSpan) so every
	// peer of a transaction agrees on the keep/drop decision.
	Span string
}

// Handler processes an incoming message and returns a response for requests
// (nil response is valid for one-way messages).
type Handler func(ctx context.Context, msg *Message) (*Message, error)

// Transport moves messages between peers.
type Transport interface {
	// Self returns the local peer ID.
	Self() PeerID
	// Send delivers msg to `to` without waiting for a response.
	Send(ctx context.Context, to PeerID, msg *Message) error
	// Request delivers msg and waits for the handler's response.
	Request(ctx context.Context, to PeerID, msg *Message) (*Message, error)
	// SetHandler installs the callback for incoming messages. It must be
	// called before the first message arrives.
	SetHandler(h Handler)
	// Close detaches the transport from the network.
	Close() error
}

// Errors surfaced by transports. ErrUnreachable is how peers *detect*
// disconnection when actively sending (§3.3 scenario b: AP6 notices AP3 is
// gone when returning results); passive detection uses the Pinger.
var (
	ErrUnreachable = errors.New("p2p: peer unreachable")
	ErrNoHandler   = errors.New("p2p: peer has no handler installed")
	ErrClosed      = errors.New("p2p: transport closed")
)

// Stats aggregates message counts on the simulated network; experiments use
// it to report protocol message costs.
type Stats struct {
	Total  int64
	ByKind map[string]int64
}

// Network is an in-memory network of peers for simulation and tests. It
// supports per-message latency, peer disconnection and link blocking; all
// failure injection is deterministic (no randomness inside the transport —
// workloads decide what fails and when).
type Network struct {
	mu      sync.Mutex
	peers   map[PeerID]*memTransport
	down    map[PeerID]bool
	blocked map[[2]PeerID]bool
	latency time.Duration
	clock   vclock.Clock

	total  atomic.Int64
	kindMu sync.Mutex
	byKind map[string]int64
}

// NewNetwork returns an empty network with the given per-delivery latency
// (0 for fastest simulation).
func NewNetwork(latency time.Duration) *Network {
	return &Network{
		peers:   make(map[PeerID]*memTransport),
		down:    make(map[PeerID]bool),
		blocked: make(map[[2]PeerID]bool),
		latency: latency,
		clock:   vclock.Real,
		byKind:  make(map[string]int64),
	}
}

// SetClock swaps the clock the per-delivery latency wait runs on. The
// discrete-event harness installs its virtual clock here so latency is
// accounted without wall-clock sleeping. Call before traffic starts.
func (n *Network) SetClock(c vclock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clock = vclock.Or(c)
}

// Join registers a peer and returns its transport. Joining an existing ID
// replaces the previous transport (a peer rejoining after disconnection).
func (n *Network) Join(id PeerID) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := &memTransport{net: n, id: id}
	n.peers[id] = t
	delete(n.down, id)
	return t
}

// Disconnect makes a peer unreachable: every send to or from it fails with
// ErrUnreachable, modeling the peer leaving the system (§3.3).
func (n *Network) Disconnect(id PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = true
}

// Reconnect reverses Disconnect.
func (n *Network) Reconnect(id PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, id)
}

// Down reports whether the peer is currently disconnected.
func (n *Network) Down(id PeerID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[id]
}

// BlockLink makes messages between a and b (both directions) fail,
// modeling a network partition between two peers.
func (n *Network) BlockLink(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey(a, b)] = true
}

// UnblockLink reverses BlockLink.
func (n *Network) UnblockLink(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey(a, b))
}

func linkKey(a, b PeerID) [2]PeerID {
	if a > b {
		a, b = b, a
	}
	return [2]PeerID{a, b}
}

// Stats returns a snapshot of message counters.
func (n *Network) Stats() Stats {
	n.kindMu.Lock()
	defer n.kindMu.Unlock()
	byKind := make(map[string]int64, len(n.byKind))
	for k, v := range n.byKind {
		byKind[k] = v
	}
	return Stats{Total: n.total.Load(), ByKind: byKind}
}

// ResetStats zeroes the counters (between experiment repetitions).
func (n *Network) ResetStats() {
	n.kindMu.Lock()
	defer n.kindMu.Unlock()
	n.total.Store(0)
	n.byKind = make(map[string]int64)
}

func (n *Network) count(kind string) {
	n.total.Add(1)
	n.kindMu.Lock()
	n.byKind[kind]++
	n.kindMu.Unlock()
}

// deliver routes a message, enforcing failure state, and invokes the target
// handler synchronously. Synchronous delivery keeps simulations
// deterministic; re-entrant request chains (A→B→A) are plain nested calls.
func (n *Network) deliver(ctx context.Context, msg *Message) (*Message, error) {
	n.mu.Lock()
	if n.down[msg.From] || n.down[msg.To] || n.blocked[linkKey(msg.From, msg.To)] {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, msg.From, msg.To)
	}
	target, ok := n.peers[msg.To]
	clock := n.clock
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s (unknown peer)", ErrUnreachable, msg.To)
	}
	n.count(msg.Kind)
	if n.latency > 0 {
		if err := clock.Sleep(ctx, n.latency); err != nil {
			return nil, err
		}
	}
	h := target.handler()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, msg.To)
	}
	return h(ctx, msg)
}

type memTransport struct {
	net    *Network
	id     PeerID
	mu     sync.Mutex
	h      Handler
	closed bool
}

func (t *memTransport) Self() PeerID { return t.id }

func (t *memTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.h = h
}

func (t *memTransport) handler() Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	return t.h
}

func (t *memTransport) Send(ctx context.Context, to PeerID, msg *Message) error {
	if t.isClosed() {
		return ErrClosed
	}
	msg.From = t.id
	msg.To = to
	_, err := t.net.deliver(ctx, msg)
	return err
}

func (t *memTransport) Request(ctx context.Context, to PeerID, msg *Message) (*Message, error) {
	if t.isClosed() {
		return nil, ErrClosed
	}
	msg.From = t.id
	msg.To = to
	resp, err := t.net.deliver(ctx, msg)
	if err != nil {
		return nil, err
	}
	if resp == nil {
		resp = &Message{From: to, To: t.id, Kind: msg.Kind + "-ack"}
	}
	// The response travels back over the same (possibly failing) network:
	// if either end died during processing, the requester must not see the
	// result (it observes ErrUnreachable instead, like a broken socket).
	t.net.mu.Lock()
	dead := t.net.down[t.id] || t.net.down[to] || t.net.blocked[linkKey(t.id, to)]
	t.net.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("%w: %s -> %s (response lost)", ErrUnreachable, to, t.id)
	}
	return resp, nil
}

func (t *memTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *memTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return nil
}
