package p2p

import (
	"context"
	"testing"
	"time"
)

func TestStatsSnapshotIsolated(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("A")
	b := net.Join("B")
	b.SetHandler(echoHandler("B"))
	if _, err := a.Request(context.Background(), "B", &Message{Kind: KindInvoke}); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	st.ByKind[KindInvoke] = 999
	if net.Stats().ByKind[KindInvoke] != 1 {
		t.Fatal("stats map aliased to internal state")
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	net := NewNetwork(10 * time.Millisecond)
	a := net.Join("A")
	b := net.Join("B")
	b.SetHandler(echoHandler("B"))
	start := time.Now()
	if _, err := a.Request(context.Background(), "B", &Message{Kind: KindInvoke}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestNetworkLatencyRespectsContext(t *testing.T) {
	net := NewNetwork(time.Hour)
	a := net.Join("A")
	net.Join("B")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.Request(ctx, "B", &Message{Kind: KindInvoke}); err == nil {
		t.Fatal("expected context deadline")
	}
}

func TestPingerUnwatchStopsProbing(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("A")
	b := net.Join("B")
	b.SetHandler(AnswerPings(nil))
	fired := false
	p := NewPinger(a, time.Millisecond, 1, func(PeerID) { fired = true })
	p.Watch("B")
	p.Unwatch("B")
	net.Disconnect("B")
	p.ProbeNow(context.Background())
	if fired {
		t.Fatal("unwatched peer still probed")
	}
	if p.Probes() != 0 {
		t.Fatalf("probes = %d", p.Probes())
	}
}

func TestPingerStopBeforeStart(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("A")
	p := NewPinger(a, time.Millisecond, 1, nil)
	p.Stop() // must not panic or hang
}

func TestRejoinAfterDisconnect(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("A")
	net.Join("B")
	net.Disconnect("B")
	if !net.Down("B") {
		t.Fatal("Down() false after disconnect")
	}
	// The peer rejoins (new transport, same ID) — reachable again.
	b2 := net.Join("B")
	b2.SetHandler(echoHandler("B"))
	if net.Down("B") {
		t.Fatal("join did not clear down state")
	}
	if _, err := a.Request(context.Background(), "B", &Message{Kind: KindInvoke}); err != nil {
		t.Fatal(err)
	}
}
